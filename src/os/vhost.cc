#include "os/vhost.hh"

#include "os/kernel.hh"
#include "sim/attrib.hh"
#include "sim/log.hh"

namespace virtsim {

VhostBackend::VhostBackend(Machine &m, Vm &guest,
                           const NetstackCosts &net, Params params)
    : mach(m), guest(guest), net(net), p(params),
      rx(m, guest), tx(m, guest)
{
    VIRTSIM_ASSERT(p.workerPcpu < m.numCpus() &&
                   p.hostIrqPcpu < m.numCpus(),
                   "vhost pinned outside machine");

    // Virtio/vhost queue-depth gauges, on the worker's CPU track.
    // The backend outlives the sampler's use of these captures: the
    // harness clears the sampler (Machine::reset) before tearing the
    // hypervisor — and with it this backend — down.
    TimelineSampler &tl = m.probe().timeline;
    const auto track = static_cast<std::uint16_t>(p.workerPcpu);
    tl.addGauge("vhost.rx_backlog",
                [this] {
                    return static_cast<std::int64_t>(rxBacklogDepth());
                },
                track);
    tl.addGauge("virtio.rx.avail",
                [this] {
                    return static_cast<std::int64_t>(rx.availDepth());
                },
                track);
    tl.addGauge("virtio.rx.used",
                [this] {
                    return static_cast<std::int64_t>(rx.usedDepth());
                },
                track);
    tl.addGauge("virtio.tx.avail",
                [this] {
                    return static_cast<std::int64_t>(tx.availDepth());
                },
                track);
}

void
VhostBackend::hostRxToGuest(Cycles t, const Packet &pkt,
                            bool aggregate_leader,
                            std::function<void(Cycles)> ready)
{
    const Frequency &f = mach.freq();
    PhysicalCpu &irq_cpu = mach.cpu(p.hostIrqPcpu);

    // Host stack + bridge + tap on the IRQ CPU (softirq context).
    // A GRO-aggregate leader pays the full traversal; followers only
    // the marginal per-frame cost, and ack-sized frames in a hot
    // stream take the amortized softirq path.
    const bool hot =
        everRx && t - lastRxAt < f.cycles(p.hotWindowUs);
    lastRxAt = t;
    everRx = true;
    Cycles stack = net.perGroFrame;
    if (aggregate_leader) {
        stack = (hot && pkt.bytes < 200)
            ? f.cycles(p.smallFrameHotUs)
            : net.rxStack + f.cycles(p.bridgeTapRxUs);
    }
    const Cycles at_tap = irq_cpu.charge(t, stack);

    // Hand off to the vhost worker kthread on its own CPU; the
    // worker drains its queue in simulated-time order so ring state
    // advances in step with the clock.
    if (rxJobs.size() >= rxJobCap) {
        mach.stats().counter("vhost.rx_backlog_dropped")
            .inc(static_cast<std::uint64_t>(framesFor(pkt.bytes)));
        return;
    }
    // Causal edge: the softirq-to-worker wakeup. Attribution links
    // the handoff (and any worker queueing delay) across CPUs.
    const std::uint64_t token = mach.trace().edgeOut(
        at_tap, edgeWakeTap(), TraceCat::Io,
        static_cast<std::uint16_t>(p.hostIrqPcpu));
    rxJobs.push_back(
        RxJob{pkt, aggregate_leader, std::move(ready), token});
    if (rxPumpActive)
        return;
    rxPumpActive = true;
    PhysicalCpu &worker = mach.cpu(p.workerPcpu);
    const Cycles start = std::max(at_tap, worker.frontier());
    EventFn wake = [this, start] { pumpRx(start); };
    if (wakeCh)
        wakeCh->send(start, std::move(wake));
    else
        mach.queue().scheduleAt(start, std::move(wake));
}

void
VhostBackend::pumpRx(Cycles t)
{
    if (rxJobs.empty()) {
        rxPumpActive = false;
        return;
    }
    RxJob job = std::move(rxJobs.front());
    rxJobs.pop_front();
    PhysicalCpu &worker = mach.cpu(p.workerPcpu);
    mach.trace().edgeIn(t, job.edgeToken, edgeWakeTap(), TraceCat::Io,
                        static_cast<std::uint16_t>(p.workerPcpu));

    // Worker fills a guest rx descriptor: zero copy, the payload
    // stays where the stack left it and the guest buffer is written
    // directly.
    bool ok = false;
    VirtioDesc desc;
    Cycles cost = rx.hostPop(desc, ok);
    if (!ok) {
        // Guest hasn't replenished rx descriptors; account a drop.
        mach.stats().counter("vhost.rx_no_descriptor").inc();
        mach.queue().scheduleAt(t, [this, t] { pumpRx(t); });
        return;
    }
    desc.pkt = job.pkt;
    cost += mach.freq().cycles(p.vhostRxWorkUs);
    cost += rx.hostPushUsed(desc);
    const Cycles done = worker.charge(t, cost);
    mach.queue().scheduleAt(done,
                            [done, ready = std::move(job.ready)] {
                                ready(done);
                            });
    mach.queue().scheduleAt(done, [this, done] { pumpRx(done); });
}

void
VhostBackend::txFromGuest(Cycles t,
                          std::function<void(Cycles, const Packet &)>
                              on_datalink_tx)
{
    PhysicalCpu &worker = mach.cpu(p.workerPcpu);
    bool ok = false;
    VirtioDesc desc;
    Cycles cost = tx.hostPop(desc, ok);
    if (!ok) {
        mach.stats().counter("vhost.tx_spurious_kick").inc();
        return;
    }
    // Streaming transmit keeps the worker and the stack hot:
    // per-packet costs amortize; a lone send pays the cold path
    // (the Table V single-transaction case).
    const bool hot = everTx &&
                     t - lastTxAt < mach.freq().cycles(p.hotWindowUs);
    lastTxAt = t;
    everTx = true;
    if (hot) {
        cost += mach.freq().cycles(p.vhostTxHotUs);
        cost += mach.freq().cycles(0.9); // amortized forwarding
    } else {
        cost += mach.freq().cycles(p.vhostTxWorkUs);
        cost += mach.freq().cycles(p.bridgeTapTxUs);
        cost += net.txStack;
    }
    cost += net.doorbell;
    const Cycles done = worker.charge(t, cost);
    mach.queue().scheduleAt(done, [done, pkt = desc.pkt,
                                   on_datalink_tx] {
        on_datalink_tx(done, pkt);
    });
}

} // namespace virtsim
