#include "os/netstack.hh"

namespace virtsim {

NetstackCosts
NetstackCosts::linux(const Frequency &f)
{
    NetstackCosts c;
    // [calibrated] Sum of irqPath + rxStack + socketWake + app echo
    // (charged by the workload) + txStack + doorbell must reproduce
    // the native recv-to-send of 14.5 us (Table V).
    c.irqPath = f.cycles(0.46);
    c.rxStack = f.cycles(5.20);
    c.txStack = f.cycles(6.30);
    c.socketWake = f.cycles(1.05);
    c.perGroFrame = f.cycles(0.09);
    c.perTsoFrame = f.cycles(0.11);
    c.doorbell = f.cycles(0.20);
    // [calibrated] VM recv-to-VM send (16.9 us) minus the shared
    // stack path above.
    c.guestResidual = f.cycles(3.30);
    return c;
}

} // namespace virtsim
