/**
 * @file
 * Kernel-behaviour helpers shared by the native, host, Dom0 and guest
 * OS models: segmentation (TSO) and coalescing (GRO) arithmetic, and
 * the feature flags of the tested kernel.
 *
 * All systems in the paper ran the same Linux 4.0-rc4 (Section III),
 * including its TSO-autosizing regression that depressed Xen
 * TCP_MAERTS results (Section V) — represented here as a config flag
 * so the E8 ablation can turn it off.
 */

#ifndef VIRTSIM_OS_KERNEL_HH
#define VIRTSIM_OS_KERNEL_HH

#include <cstdint>
#include <vector>

#include "hw/nic.hh"
#include "os/netstack.hh"

namespace virtsim {

/** Feature configuration of the Linux build under test. */
struct LinuxConfig
{
    /**
     * The Linux 4.0-rc1 "tcp: refine TSO autosizing" change: on the
     * Xen PV transmit path it shrinks TSO batches drastically,
     * multiplying per-segment costs. The paper confirmed that older
     * kernels or sysfs tuning removed the effect.
     */
    bool tsoAutosizeRegression = true;

    /** GRO enabled on the receive path. */
    bool groEnabled = true;
};

/** Number of wire frames needed for a payload of n bytes. */
int framesFor(std::uint64_t bytes);

/**
 * Split a payload into TSO segments of at most seg_bytes.
 * @return per-segment byte counts (last may be short).
 */
std::vector<std::uint32_t> tsoSegments(std::uint64_t bytes,
                                       std::uint32_t seg_bytes);

/** Number of GRO aggregates the stack sees for frame_count frames. */
int groAggregates(int frame_count, int gro_frames);

/**
 * Drain a NIC's rx queue, coalescing consecutive same-flow frames
 * into GRO aggregates of at most gro_frames frames / 64 KiB.
 * @return the aggregates, in arrival order.
 */
std::vector<Packet> groDrain(Nic &nic, int gro_frames);

} // namespace virtsim

#endif // VIRTSIM_OS_KERNEL_HH
