/**
 * @file
 * Linux network stack cost model (the guests, the KVM host and Xen's
 * Dom0 all ran Ubuntu 14.04 with the same Linux 4.0-rc4 kernel,
 * Section III).
 *
 * Constants are in microseconds and converted at the platform's
 * frequency. Calibration anchors (ARM, Table V):
 *  - native recv-to-send = 14.5 us = IRQ path + rx stack + socket
 *    wakeup + app echo + tx stack + doorbell;
 *  - VM recv-to-VM send = 16.9 us = the same guest-side path plus
 *    paravirtual-driver and in-VM virtualization extras.
 *
 * GRO/TSO segment sizes control the throughput benchmarks: the stack
 * coalesces received frames into aggregates and segments large sends,
 * so per-frame costs amortize — except where a backend works at frame
 * granularity (Xen netback) or a regression shrinks TSO batches (the
 * Linux 4.0-rc1 TSO-autosizing regression the paper hit on Xen
 * TCP_MAERTS).
 */

#ifndef VIRTSIM_OS_NETSTACK_HH
#define VIRTSIM_OS_NETSTACK_HH

#include <cstdint>

#include "hw/cost_model.hh"
#include "sim/types.hh"

namespace virtsim {

/** Per-packet / per-transaction kernel network path costs. */
struct NetstackCosts
{
    /** IRQ entry + driver rx + NAPI schedule. */
    Cycles irqPath = 0;
    /** Datalink rx to socket delivery, one packet. */
    Cycles rxStack = 0;
    /** Socket send to datalink tx, one packet. */
    Cycles txStack = 0;
    /** Waking the blocked application thread (same CPU). */
    Cycles socketWake = 0;
    /** Marginal cost per extra frame inside a GRO aggregate. */
    Cycles perGroFrame = 0;
    /** Marginal cost per extra frame produced by TSO segmentation. */
    Cycles perTsoFrame = 0;
    /** NIC doorbell write. */
    Cycles doorbell = 0;
    /**
     * Residual per-transaction cost of running the same stack inside
     * a VM: paravirtual driver bookkeeping, virtual interrupt
     * completion, Stage-2 TLB pressure. [calibrated] so that the
     * VM-internal Table V leg (16.9 us) sits just above the native
     * recv-to-send time (14.5 us), as the paper observes.
     */
    Cycles guestResidual = 0;

    /** Frames the NIC+GRO coalesce into one stack traversal. */
    int groFrames = 21;
    /** TSO segment size in bytes under normal operation. */
    std::uint32_t tsoBytes = 64 * 1024;
    /** TSO segment size under the Linux 4.0-rc1 autosizing
     *  regression (paper, TCP_MAERTS analysis). */
    std::uint32_t tsoBytesRegressed = 2 * 1024;

    /** Ethernet MTU payload per wire frame. */
    static constexpr std::uint32_t mtuBytes = 1500;

    /** Build the Linux 4.0 model at a platform frequency. */
    static NetstackCosts linux(const Frequency &f);
};

} // namespace virtsim

#endif // VIRTSIM_OS_NETSTACK_HH
