#include "os/netback.hh"

#include "sim/attrib.hh"
#include "sim/log.hh"

namespace virtsim {

NetbackBackend::NetbackBackend(Machine &m, Vm &dom0, Vm &domU,
                               const NetstackCosts &net, Params params)
    : mach(m), dom0(dom0), domU(domU), net(net), p(params),
      grants(m, domU), rx(m), tx(m)
{
    VIRTSIM_ASSERT(p.dom0Pcpu < m.numCpus(), "dom0 pinned outside machine");

    // PV ring and grant-table gauges on Dom0's CPU track; same
    // lifetime argument as the vhost gauges (sampler cleared before
    // the backend is destroyed).
    TimelineSampler &tl = m.probe().timeline;
    const auto track = static_cast<std::uint16_t>(p.dom0Pcpu);
    tl.addGauge("netback.rx_backlog",
                [this] {
                    return static_cast<std::int64_t>(rxBacklogDepth());
                },
                track);
    tl.addGauge("xenring.rx.requests",
                [this] {
                    return static_cast<std::int64_t>(rx.requestDepth());
                },
                track);
    tl.addGauge("xenring.tx.requests",
                [this] {
                    return static_cast<std::int64_t>(tx.requestDepth());
                },
                track);
    tl.addGauge("grant.active",
                [this] {
                    return static_cast<std::int64_t>(
                        grants.activeGrants());
                },
                track);
}

Cycles
NetbackBackend::grantCopyBatchedFixedCost() const
{
    return mach.freq().cycles(0.6);
}

Cycles
NetbackBackend::transferCost(GrantRef ref, std::uint32_t bytes,
                             bool batched)
{
    if (!p.zeroCopyGrants) {
        if (!batched)
            return grants.copy(ref, bytes);
        // Ride in the current GNTTABOP_copy batch: pay the per-op
        // validation + memcpy but not the hypercall entry.
        mach.stats().counter("grant.copies_batched").inc();
        return grantCopyBatchedFixedCost() +
               mach.memory().copyCost(bytes);
    }
    // Zero-copy alternative: map the granted page, access in place,
    // unmap (which triggers the cross-CPU TLB invalidation whose cost
    // killed this design on x86 — E6 ablation). Map/unmap ops batch
    // into shared hypercalls like copies do; the TLB maintenance
    // cannot be avoided either way.
    if (!batched)
        return grants.map(ref) + grants.unmap(ref);
    mach.stats().counter("grant.maps_batched").inc();
    const Cycles amortized = mach.freq().cycles(0.35) * 2;
    // Charge the unmap's TLB invalidation exactly as GrantTable
    // does, without the hypercall entry cost.
    const Cycles tlb = mach.mmu().invalidatePageBroadcast(
        domU.id(), static_cast<Ipa>(ref));
    return amortized + tlb;
}

void
NetbackBackend::dom0RxToDomU(Cycles t, const Packet &pkt,
                             bool aggregate_leader,
                             std::function<void(Cycles)> ready)
{
    if (rxJobs.size() >= rxJobCap) {
        // Count dropped frames, not aggregates, so conservation
        // accounting stays exact.
        mach.stats().counter("netback.rx_backlog_dropped")
            .inc(static_cast<std::uint64_t>(framesFor(pkt.bytes)));
        return;
    }
    // Causal edge: the NAPI-to-netback-kthread handoff inside Dom0.
    const std::uint64_t token = mach.trace().edgeOut(
        t, edgeWakeTap(), TraceCat::Io,
        static_cast<std::uint16_t>(p.dom0Pcpu));
    rxJobs.push_back(
        RxJob{pkt, aggregate_leader, std::move(ready), token});
    if (rxPumpActive)
        return;
    rxPumpActive = true;
    PhysicalCpu &cpu = mach.cpu(p.dom0Pcpu);
    const Cycles start = std::max(t, cpu.frontier());
    EventFn wake = [this, start] { pumpRx(start); };
    if (wakeCh)
        wakeCh->send(start, std::move(wake));
    else
        mach.queue().scheduleAt(start, std::move(wake));
}

void
NetbackBackend::pumpRx(Cycles t)
{
    if (rxJobs.empty()) {
        rxPumpActive = false;
        rxFresh = true;
        return;
    }
    // Whether the kthread had gone idle before this job: cold runs
    // pay the wakeup and the full per-packet path; a loaded netback
    // amortizes both.
    const bool fresh = rxFresh;
    rxFresh = false;
    RxJob job = std::move(rxJobs.front());
    rxJobs.pop_front();
    mach.trace().edgeIn(t, job.edgeToken, edgeWakeTap(), TraceCat::Io,
                        static_cast<std::uint16_t>(p.dom0Pcpu));
    const Packet &pkt = job.pkt;
    auto ready = std::move(job.ready);
    const bool aggregate_leader = job.leader;

    const Frequency &f = mach.freq();
    PhysicalCpu &cpu = mach.cpu(p.dom0Pcpu);

    // Dom0 stack + bridge, then hand to the netback kthread (same
    // VCPU in the paper's 4-VCPU Dom0 with default affinities).
    const bool hot =
        everRx && t - lastRxAt < f.cycles(30.0);
    lastRxAt = t;
    everRx = true;
    Cycles cost = 0;
    if (fresh)
        cost += f.cycles(p.kthreadWakeUs);
    if (!aggregate_leader) {
        cost += net.perGroFrame;
    } else if (hot && pkt.bytes < 200) {
        // Hot path for ack-sized frames.
        cost += f.cycles(p.smallFrameHotUs);
    } else {
        cost += net.rxStack + f.cycles(p.dom0BridgeUs);
    }

    // Hot-path ack-sized frames: header-only payloads ride a slim
    // grant op and minimal netback work.
    const bool slim = hot && pkt.bytes < 200;
    // Netback works at frame/page granularity across the isolation
    // boundary even when the Dom0 stack handed it a GRO aggregate:
    // each wire frame needs its own posted frontend rx request and
    // its own grant transfer. This per-frame cost is what saturates
    // Dom0 under TCP_STREAM (paper, Section V).
    const int frames = framesFor(pkt.bytes);
    std::uint32_t left = pkt.bytes;
    int copied = 0;
    for (int i = 0; i < frames; ++i) {
        bool ok = false;
        PvRequest req;
        cost += rx.backPop(req, ok);
        if (!ok) {
            // Frontend has not replenished the rx ring: the
            // remainder of the aggregate is dropped, but whatever
            // was already copied must still be delivered (and its
            // ring slots returned), or the ring slowly leaks away.
            mach.stats().counter("netback.rx_no_request").inc();
            break;
        }
        const std::uint32_t chunk =
            left > NetstackCosts::mtuBytes ? NetstackCosts::mtuBytes
                                           : left;
        left -= chunk;
        req.pkt = pkt;
        req.pkt.bytes = chunk;
        if (slim) {
            cost += f.cycles(0.5);
        } else {
            // Copies batch into shared hypercalls within an
            // aggregate and across back-to-back jobs on a loaded
            // netback.
            cost += transferCost(req.gref, chunk == 0 ? 1 : chunk,
                                 /*batched=*/i > 0 || !fresh);
            cost += f.cycles(p.netbackRxWorkUs);
        }
        cost += rx.backRespond(req);
        ++copied;
    }
    const Cycles done = cpu.charge(t, cost);
    if (copied > 0) {
        mach.queue().scheduleAt(done,
                                [done, ready = std::move(ready)] {
                                    ready(done);
                                });
    }
    mach.queue().scheduleAt(done, [this, done] { pumpRx(done); });
}

void
NetbackBackend::domUTx(Cycles t,
                       std::function<void(Cycles, const Packet &)>
                           on_datalink_tx)
{
    const Frequency &f = mach.freq();
    PhysicalCpu &cpu = mach.cpu(p.dom0Pcpu);

    bool ok = false;
    PvRequest req;
    Cycles cost = tx.backPop(req, ok);
    if (!ok) {
        mach.stats().counter("netback.tx_spurious_kick").inc();
        return;
    }
    // When the tx ring is backed up, netback stays in its inner loop
    // and per-request fixed costs amortize; a lone request pays the
    // full per-kick path (the Table V single-transaction case).
    // Grants batch into shared hypercalls within a multi-page
    // request either way.
    const bool fresh = tx.requestDepth() == 0;
    lastTxAt = t;
    everTx = true;
    // Grants are page-granular: a TSO segment spanning n pages needs
    // n grant transfers, so large segments amortize ring costs but
    // not grant costs.
    constexpr std::uint32_t page = 4096;
    std::uint32_t left = req.pkt.bytes == 0 ? 1 : req.pkt.bytes;
    bool first = true;
    while (left > 0) {
        const std::uint32_t chunk = left > page ? page : left;
        cost += transferCost(req.gref, chunk, !fresh || !first);
        first = false;
        left -= chunk;
    }
    if (fresh) {
        cost += f.cycles(p.netbackTxWorkUs);
        cost += f.cycles(p.dom0BridgeUs);
        cost += f.cycles(p.dom0XmitUs);
    } else {
        cost += f.cycles(p.netbackTxBatchedUs);
        cost += f.cycles(0.9); // amortized bridge forwarding
        cost += static_cast<Cycles>(framesFor(req.pkt.bytes)) *
                net.perTsoFrame;
    }
    cost += net.doorbell;
    cost += tx.backRespond(req);

    const Cycles done = cpu.charge(t, cost);
    mach.queue().scheduleAt(done, [done, pkt = req.pkt,
                                   on_datalink_tx] {
        on_datalink_tx(done, pkt);
    });
}

} // namespace virtsim
