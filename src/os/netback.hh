/**
 * @file
 * Xen's Dom0 network backend (netback).
 *
 * All Xen I/O flows through Dom0 (Section II): the physical driver
 * and network stack live there, and netback shuttles frames between
 * them and the DomU frontend over PV rings. Crucially, netback cannot
 * touch DomU memory directly — every payload crosses the isolation
 * boundary via a grant copy (hv/grant_table.hh), at frame granularity
 * on the receive path. This is the mechanism behind the paper's
 * TCP_STREAM finding (">250% overhead ... due to Xen's lack of
 * zero-copy I/O support ... particularly on the network receive
 * path") and the >3 us per-copy latency in the Table V analysis.
 */

#ifndef VIRTSIM_OS_NETBACK_HH
#define VIRTSIM_OS_NETBACK_HH

#include <deque>
#include <functional>

#include "hv/grant_table.hh"
#include "hv/xen_pv.hh"
#include "hw/machine.hh"
#include "os/kernel.hh"
#include "os/netstack.hh"
#include "sim/channel.hh"
#include "sim/types.hh"

namespace virtsim {

/**
 * The netback instance serving one DomU.
 */
class NetbackBackend
{
  public:
    struct Params
    {
        /** Dom0 VCPU0's physical CPU (driver + netback kthread). */
        PcpuId dom0Pcpu = 4;
        /** Dom0 bridge traversal, each direction. [calibrated] with
         *  Table V's recv-to-VM-recv (25.9 us). */
        double dom0BridgeUs = 3.6;
        /** netback per-frame rx processing besides grant work (ring
         *  handling, response construction). [calibrated] */
        double netbackRxWorkUs = 2.0;
        /** netback per-kick tx processing (skb setup, scheduling).
         *  [calibrated] with Table V's VM-send-to-send (21.4 us). */
        double netbackTxWorkUs = 4.4;
        /** Marginal tx work per segment inside a hot batch. */
        double netbackTxBatchedUs = 1.0;
        /** Dom0 physical driver xmit path per kick. */
        double dom0XmitUs = 2.4;
        /** Hot-path handling of a tiny (ack-sized) frame: the
         *  cold per-packet stack+bridge costs amortize away. */
        double smallFrameHotUs = 1.8;
        /** NAPI-to-netback kthread handoff inside Dom0.
         *  [calibrated] */
        double kthreadWakeUs = 2.0;
        /**
         * Use grant *mapping* instead of grant copies (the zero-copy
         * design Xen abandoned; E6 ablation). Map + unmap replaces
         * the copy, trading memcpy for TLB maintenance.
         */
        bool zeroCopyGrants = false;
    };

    NetbackBackend(Machine &m, Vm &dom0, Vm &domU,
                   const NetstackCosts &net, Params params);

    /**
     * Receive path inside Dom0: from the Dom0 datalink-rx point
     * (caller stamps it) through stack, bridge, netback and the grant
     * copy into a DomU buffer. ready(t) fires when the response is on
     * the PV ring and netback would notify the frontend.
     */
    void dom0RxToDomU(Cycles t, const Packet &pkt,
                      bool aggregate_leader,
                      std::function<void(Cycles)> ready);

    /** Depth of the netback rx work queue (for tests). */
    std::size_t rxBacklogDepth() const { return rxJobs.size(); }

    /**
     * Transmit path: a frontend tx request is on the ring (the
     * event channel kick has been delivered to Dom0); netback pops
     * it, grant-copies the payload into Dom0, forwards through the
     * bridge and rings the NIC doorbell. on_datalink_tx fires at the
     * physical "send" tap. The first request after a kick pays the
     * cold path; queue-driven followers amortize.
     */
    void domUTx(Cycles t,
                std::function<void(Cycles, const Packet &)>
                    on_datalink_tx);

    /** Note an event-channel kick: the next domUTx is a cold run. */
    void markTxKick() { txFresh = true; }

    /**
     * Route the NAPI-to-kthread wakeup through a declared shard
     * channel (zero modelled latency: both run on Dom0's CPU, so the
     * endpoints must share a lane). Unbound backends schedule on the
     * machine queue, exactly as before.
     */
    void bindWakeChannel(ShardChannel *ch) { wakeCh = ch; }

    XenPvRing &rxRing() { return rx; }
    XenPvRing &txRing() { return tx; }
    GrantTable &grantTable() { return grants; }

    const Params &params() const { return p; }

    /**
     * Cycle cost of one payload transfer across the isolation
     * boundary under the active policy (copy vs map/unmap).
     * @param batched whether this op rides in a multi-op
     *        GNTTABOP_copy hypercall (amortized fixed cost) — true
     *        for all but the first op of a batch.
     */
    Cycles transferCost(GrantRef ref, std::uint32_t bytes,
                        bool batched = false);

    /** Amortized per-op cost inside a batched grant-copy hypercall.
     *  [calibrated] grant validation + mapping, no hypercall entry. */
    Cycles grantCopyBatchedFixedCost() const;

  private:
    struct RxJob
    {
        Packet pkt;
        bool leader;
        std::function<void(Cycles)> ready;
        /** Causal-edge token: NAPI handoff -> netback kthread. */
        std::uint64_t edgeToken = 0;
    };

    /** Process one queued rx aggregate at the netback kthread's
     *  actual execution time, so ring state advances in step with
     *  simulated time. */
    void pumpRx(Cycles t);

    Machine &mach;
    Vm &dom0;
    Vm &domU;
    NetstackCosts net;
    Params p;
    GrantTable grants;
    XenPvRing rx;
    XenPvRing tx;
    std::deque<RxJob> rxJobs;
    ShardChannel *wakeCh = nullptr;
    bool rxPumpActive = false;
    bool txFresh = true;
    bool rxFresh = true;
    Cycles lastRxAt = 0;
    bool everRx = false;
    Cycles lastTxAt = 0;
    bool everTx = false;
    /** Cap on queued aggregates: beyond it the driver drops (the
     *  receive-livelock guard real netback applies). */
    static constexpr std::size_t rxJobCap = 256;
};

} // namespace virtsim

#endif // VIRTSIM_OS_NETBACK_HH
