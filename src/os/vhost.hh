/**
 * @file
 * The VHOST in-kernel virtio backend — KVM's I/O engine in the
 * paper's configuration ("KVM was configured with its standard VHOST
 * networking feature, allowing data handling to occur in the kernel
 * instead of userspace", Section III).
 *
 * A vhost worker kthread, pinned to a host physical CPU outside the
 * VM's set (Section III pinning methodology), moves packets between
 * the host network stack (bridge + tap) and the guest's virtio rings.
 * Because the host kernel addresses all of machine memory, payload
 * moves are zero copy (hv/virtio.hh); the costs here are stack
 * traversal and worker processing, charged on the host CPUs so
 * saturation effects are real.
 */

#ifndef VIRTSIM_OS_VHOST_HH
#define VIRTSIM_OS_VHOST_HH

#include <deque>
#include <functional>

#include "hv/virtio.hh"
#include "hw/machine.hh"
#include "os/netstack.hh"
#include "sim/channel.hh"
#include "sim/types.hh"

namespace virtsim {

/**
 * The vhost-net backend for one guest VM.
 */
class VhostBackend
{
  public:
    struct Params
    {
        /** Host CPU the vhost worker kthread is pinned to. */
        PcpuId workerPcpu = 4;
        /** Host CPU the physical NIC interrupt is steered to. */
        PcpuId hostIrqPcpu = 5;
        /** Host bridge + tap traversal, receive direction.
         *  [calibrated] with Table V's recv-to-VM-recv = 21.1 us. */
        double bridgeTapRxUs = 6.5;
        /** Bridge + tap, transmit direction. [calibrated] with
         *  Table V's VM-send-to-send = 15.0 us. */
        double bridgeTapTxUs = 3.6;
        /** vhost worker per-packet receive processing. */
        double vhostRxWorkUs = 2.2;
        /** vhost worker per-packet transmit processing (cold: kthread
         *  schedule + skb setup). */
        double vhostTxWorkUs = 2.2;
        /** Hot-path marginal tx work per packet while the worker is
         *  streaming. [calibrated] */
        double vhostTxHotUs = 1.2;
        /** Hot-path handling of a tiny (ack-sized) frame on the host
         *  softirq CPU: the cold per-packet stack+bridge amortizes. */
        double smallFrameHotUs = 1.5;
        /** Gap below which consecutive packets ride the hot paths. */
        double hotWindowUs = 30.0;
    };

    VhostBackend(Machine &m, Vm &guest, const NetstackCosts &net,
                 Params params);

    /**
     * Receive path: a frame the host driver has already pulled from
     * the NIC (datalink-rx stamped by the caller) travels through the
     * host stack, bridge and tap to the vhost worker, which places it
     * in the guest's rx ring. ready(t) fires when the worker has
     * pushed the descriptor and would signal the guest.
     * @param t time at which host stack processing may start
     * @param aggregate_leader true for the first frame of a GRO
     *        aggregate (pays the full stack traversal); false for
     *        coalesced followers (marginal cost only)
     */
    void hostRxToGuest(Cycles t, const Packet &pkt, bool aggregate_leader,
                       std::function<void(Cycles)> ready);

    /**
     * Transmit path: guest descriptors are already in the tx ring;
     * the worker (just signalled via ioeventfd) drains one, runs the
     * host tx stack and rings the NIC doorbell. on_datalink_tx(t)
     * fires at the paper's physical "send" tap, just before the
     * frame is handed to the NIC.
     */
    void txFromGuest(Cycles t,
                     std::function<void(Cycles, const Packet &)>
                         on_datalink_tx);

    VirtioQueue &rxRing() { return rx; }
    VirtioQueue &txRing() { return tx; }

    const Params &params() const { return p; }

    /**
     * Route the softirq-to-worker wakeup through a declared shard
     * channel. The handoff has zero modelled latency, so the IRQ CPU
     * and the worker CPU must share a lane (the sharded kernel
     * enforces this at declaration). Unbound backends schedule on the
     * machine queue, exactly as before.
     */
    void bindWakeChannel(ShardChannel *ch) { wakeCh = ch; }

    /** Depth of the rx work queue (for tests). */
    std::size_t rxBacklogDepth() const { return rxJobs.size(); }

  private:
    struct RxJob
    {
        Packet pkt;
        bool leader;
        std::function<void(Cycles)> ready;
        /** Causal-edge token: softirq handoff -> worker pump. */
        std::uint64_t edgeToken = 0;
    };

    /** Serialize rx work at the worker's actual execution time. */
    void pumpRx(Cycles t);

    Machine &mach;
    Vm &guest;
    NetstackCosts net;
    Params p;
    VirtioQueue rx;
    VirtioQueue tx;
    std::deque<RxJob> rxJobs;
    ShardChannel *wakeCh = nullptr;
    bool rxPumpActive = false;
    static constexpr std::size_t rxJobCap = 256;
    Cycles lastRxAt = 0;
    Cycles lastTxAt = 0;
    bool everRx = false;
    bool everTx = false;
};

} // namespace virtsim

#endif // VIRTSIM_OS_VHOST_HH
