#include "os/kernel.hh"

#include "sim/log.hh"

namespace virtsim {

int
framesFor(std::uint64_t bytes)
{
    if (bytes == 0)
        return 1; // a bare (e.g. 1-byte-less) frame still crosses
    return static_cast<int>((bytes + NetstackCosts::mtuBytes - 1) /
                            NetstackCosts::mtuBytes);
}

std::vector<std::uint32_t>
tsoSegments(std::uint64_t bytes, std::uint32_t seg_bytes)
{
    VIRTSIM_ASSERT(seg_bytes > 0, "zero TSO segment size");
    std::vector<std::uint32_t> segs;
    std::uint64_t left = bytes;
    while (left > 0) {
        const std::uint32_t take = static_cast<std::uint32_t>(
            left > seg_bytes ? seg_bytes : left);
        segs.push_back(take);
        left -= take;
    }
    if (segs.empty())
        segs.push_back(0);
    return segs;
}

int
groAggregates(int frame_count, int gro_frames)
{
    VIRTSIM_ASSERT(gro_frames > 0, "zero GRO window");
    return (frame_count + gro_frames - 1) / gro_frames;
}

std::vector<Packet>
groDrain(Nic &nic, int gro_frames)
{
    std::vector<Packet> aggs;
    Packet pkt;
    int frames_in_agg = 0;
    while (nic.popRx(pkt)) {
        // GRO only aggregates data segments; pure acks and other
        // tiny frames pass through individually.
        if (!aggs.empty() && aggs.back().flow == pkt.flow &&
            pkt.bytes >= 200 && aggs.back().bytes >= 200 &&
            frames_in_agg < gro_frames &&
            aggs.back().bytes + pkt.bytes <= 64 * 1024) {
            aggs.back().bytes += pkt.bytes;
            ++frames_in_agg;
        } else {
            aggs.push_back(pkt);
            frames_in_agg = 1;
        }
    }
    return aggs;
}

} // namespace virtsim
