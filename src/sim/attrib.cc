#include "sim/attrib.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <tuple>

#include "sim/log.hh"

namespace virtsim {

namespace {

std::string
fmtRow(const char *name, std::uint64_t cycles, std::uint64_t count)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-32s %12llu cy %10llu x\n",
                  name, static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(count));
    return buf;
}

} // namespace

TapId
edgeIpiTap()
{
    static const TapId tap = internTap("edge.ipi");
    return tap;
}

TapId
edgeLrTap()
{
    static const TapId tap = internTap("edge.lr");
    return tap;
}

TapId
edgeWireTap()
{
    static const TapId tap = internTap("edge.wire");
    return tap;
}

TapId
edgeWakeTap()
{
    static const TapId tap = internTap("edge.wake");
    return tap;
}

Cycles
BlameReport::attributed() const
{
    Cycles total = 0;
    for (const BlameTerm &t : terms)
        total += t.cycles;
    return total;
}

const BlameTerm *
BlameReport::find(std::string_view name) const
{
    for (const BlameTerm &t : terms) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

const BlameTerm *
BlameReport::top() const
{
    const BlameTerm *best = nullptr;
    for (const BlameTerm &t : terms) {
        if (!best || t.cycles > best->cycles ||
            (t.cycles == best->cycles && t.name < best->name)) {
            best = &t;
        }
    }
    return best;
}

std::string
BlameReport::render() const
{
    char head[256];
    std::snprintf(head, sizeof(head),
                  "== blame[%s] ops=%llu attributed=%llu cy "
                  "edges=%llu linked/%llu dangling truncated=%llu ==\n",
                  label.c_str(),
                  static_cast<unsigned long long>(operations),
                  static_cast<unsigned long long>(attributed()),
                  static_cast<unsigned long long>(edgesLinked),
                  static_cast<unsigned long long>(edgesDangling),
                  static_cast<unsigned long long>(truncatedSpans));
    std::string out = head;

    // Rank by cycles for reading; ties fall back to the name order
    // the terms are stored in, so rendering stays deterministic.
    std::vector<const BlameTerm *> ranked;
    ranked.reserve(terms.size());
    for (const BlameTerm &t : terms)
        ranked.push_back(&t);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const BlameTerm *a, const BlameTerm *b) {
                         if (a->cycles != b->cycles)
                             return a->cycles > b->cycles;
                         return a->name < b->name;
                     });
    for (const BlameTerm *t : ranked)
        out += fmtRow(t->name.c_str(), t->cycles, t->count);
    return out;
}

std::string
BlameReport::toJson() const
{
    std::string out = "{\"label\":\"" + label + "\",\"operations\":" +
                      std::to_string(operations) +
                      ",\"edgesLinked\":" +
                      std::to_string(edgesLinked) +
                      ",\"edgesDangling\":" +
                      std::to_string(edgesDangling) +
                      ",\"truncatedSpans\":" +
                      std::to_string(truncatedSpans) + ",\"terms\":[";
    bool first = true;
    for (const BlameTerm &t : terms) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"name\":\"" + t.name + "\",\"cycles\":" +
               std::to_string(t.cycles) + ",\"count\":" +
               std::to_string(t.count) + "}";
    }
    out += "]}";
    return out;
}

const DiffRow *
DiffReport::top() const
{
    return rows.empty() ? nullptr : &rows.front();
}

std::string
DiffReport::render() const
{
    std::string out = "== why is " + aLabel + " slower than " +
                      bLabel + "? (positive: " + aLabel +
                      " spends more) ==\n";
    for (const DiffRow &r : rows) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "  %-32s %12llu %12llu %+12lld\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.a),
                      static_cast<unsigned long long>(r.b),
                      static_cast<long long>(r.delta()));
        out += buf;
    }
    return out;
}

DiffReport
diffBlame(const BlameReport &a, const BlameReport &b)
{
    DiffReport d;
    d.aLabel = a.label;
    d.bLabel = b.label;
    std::map<std::string, DiffRow> merged;
    for (const BlameTerm &t : a.terms) {
        DiffRow &r = merged[t.name];
        r.name = t.name;
        r.a = t.cycles;
    }
    for (const BlameTerm &t : b.terms) {
        DiffRow &r = merged[t.name];
        r.name = t.name;
        r.b = t.cycles;
    }
    for (auto &[name, row] : merged)
        d.rows.push_back(row);
    std::stable_sort(d.rows.begin(), d.rows.end(),
                     [](const DiffRow &x, const DiffRow &y) {
                         if (x.delta() != y.delta())
                             return x.delta() > y.delta();
                         return x.name < y.name;
                     });
    return d;
}

CausalAnalyzer::CausalAnalyzer(std::string label)
    : _label(std::move(label))
{
}

CausalAnalyzer::Track &
CausalAnalyzer::track(std::uint16_t id)
{
    return tracks[id];
}

void
CausalAnalyzer::onTraceRecord(const TraceRecord &r)
{
    switch (r.kind) {
      case TraceKind::Begin:
        track(r.track).opens.push_back(
            Open{r.tap.raw(), r.when, r.arg});
        return;
      case TraceKind::End:
        completeSpan(track(r.track), r);
        return;
      case TraceKind::EdgeOut:
        outstanding[r.arg] = EdgeOrigin{r.when, r.tap.raw()};
        if (outstanding.size() > edgeCap) {
            outstanding.erase(outstanding.begin());
            ++_edgesDangling;
        }
        return;
      case TraceKind::EdgeIn: {
        auto it = outstanding.find(r.arg);
        if (it == outstanding.end()) {
            ++_edgesDangling;
            return;
        }
        // Blame the in-flight latency on the edge tap (IPI flight,
        // LR write-to-ack, wire delay, wakeup queueing).
        const Cycles flight =
            r.when >= it->second.when ? r.when - it->second.when : 0;
        BlameTerm &term = blame[r.tap.raw()];
        term.cycles += flight;
        term.count += 1;
        // In-flight time is not on any span stack; surface it in the
        // flamegraph as a root-level frame so edge-dominated worlds
        // (device wires, vIRQ delivery) still produce folds.
        Fold &cell = folded[std::vector<std::uint32_t>{r.tap.raw()}];
        cell.cycles += flight;
        cell.count += 1;
        ++_edgesLinked;
        outstanding.erase(it);
        return;
      }
      case TraceKind::Instant:
        return; // point events carry no duration to attribute
    }
}

void
CausalAnalyzer::completeSpan(Track &tr, const TraceRecord &r)
{
    // Match the innermost open Begin with the same tap.
    const std::uint32_t tap = r.tap.raw();
    auto open = tr.opens.end();
    for (auto it = tr.opens.rbegin(); it != tr.opens.rend(); ++it) {
        if (it->tap == tap) {
            open = std::next(it).base();
            break;
        }
    }
    if (open == tr.opens.end()) {
        ++_unmatched;
        return;
    }

    Span s;
    s.tap = tap;
    s.t0 = open->t0;
    s.t1 = r.when;
    s.self = s.t1 >= s.t0 ? s.t1 - s.t0 : 0;
    tr.opens.erase(open);

    // Containment parenting: children were emitted (and completed)
    // before this span and lie inside its interval — consume them,
    // subtracting their duration from our self time and folding
    // their stacks under ours.
    for (auto it = tr.pending.begin(); it != tr.pending.end();) {
        if (it->t0 >= s.t0 && it->t1 <= s.t1) {
            const Cycles dur =
                it->t1 >= it->t0 ? it->t1 - it->t0 : 0;
            s.self = s.self > dur ? s.self - dur : 0;
            std::vector<std::uint32_t> path{it->tap};
            Fold &leaf = s.frags[path];
            leaf.cycles += it->self;
            leaf.count += 1;
            for (auto &[sub, f] : it->frags) {
                path.resize(1);
                path.insert(path.end(), sub.begin(), sub.end());
                Fold &cell = s.frags[path];
                cell.cycles += f.cycles;
                cell.count += f.count;
            }
            it = tr.pending.erase(it);
        } else {
            ++it;
        }
    }

    BlameTerm &term = blame[tap];
    term.cycles += s.self;
    term.count += 1;

    if (r.cat == TraceCat::Op) {
        // Guest-visible operations never nest; finalize immediately
        // so the pending window stays small across long runs.
        ++_operations;
        finalizeRoot(s);
        return;
    }

    tr.pending.push_back(std::move(s));
    if (tr.pending.size() > pendingCap)
        flushTrack(tr, pendingCap / 2);
}

void
CausalAnalyzer::finalizeRoot(const Span &s)
{
    std::vector<std::uint32_t> path{s.tap};
    Fold &leaf = folded[path];
    leaf.cycles += s.self;
    leaf.count += 1;
    for (const auto &[sub, f] : s.frags) {
        path.resize(1);
        path.insert(path.end(), sub.begin(), sub.end());
        Fold &cell = folded[path];
        cell.cycles += f.cycles;
        cell.count += f.count;
    }
}

void
CausalAnalyzer::flushTrack(Track &tr, std::size_t keep)
{
    while (tr.pending.size() > keep) {
        finalizeRoot(tr.pending.front());
        tr.pending.erase(tr.pending.begin());
    }
}

void
CausalAnalyzer::flushAll()
{
    for (auto &[id, tr] : tracks)
        flushTrack(tr, 0);
}

BlameReport
CausalAnalyzer::report(const TraceSink *sink)
{
    flushAll();
    BlameReport rep;
    rep.label = _label;
    rep.operations = _operations;
    rep.edgesLinked = _edgesLinked;
    rep.edgesDangling = _edgesDangling + outstanding.size();
    rep.truncatedSpans = sink ? sink->truncatedSpans() : 0;
    for (const auto &[raw, term] : blame) {
        BlameTerm t = term;
        t.name = tapName(TapId::fromRaw(raw));
        rep.terms.push_back(std::move(t));
    }
    // Sort by name: raw ids are interning-order and differ across
    // sweep workers; names do not.
    std::sort(rep.terms.begin(), rep.terms.end(),
              [](const BlameTerm &a, const BlameTerm &b) {
                  return a.name < b.name;
              });
    return rep;
}

void
CausalAnalyzer::writeFolded(std::ostream &os, const std::string &root)
{
    flushAll();
    std::vector<std::string> lines;
    lines.reserve(folded.size());
    for (const auto &[path, f] : folded) {
        std::string line = root;
        for (std::uint32_t raw : path) {
            if (!line.empty())
                line += ";";
            line += tapName(TapId::fromRaw(raw));
        }
        line += ' ';
        line += std::to_string(f.cycles);
        lines.push_back(std::move(line));
    }
    // Lexicographic by the *name* path, deterministic across runs.
    std::sort(lines.begin(), lines.end());
    for (const std::string &line : lines)
        os << line << "\n";
}

bool
CausalAnalyzer::writeFoldedFile(const std::string &path,
                                const std::string &root)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open folded-stack file ", path);
        return false;
    }
    writeFolded(os, root);
    return true;
}

void
CausalAnalyzer::reset()
{
    tracks.clear();
    outstanding.clear();
    blame.clear();
    folded.clear();
    _operations = 0;
    _edgesLinked = 0;
    _edgesDangling = 0;
    _unmatched = 0;
}

namespace {

/** Shared graph construction over any record source: the retained
 *  sink ring (buildCausalGraph) or a frozen record array (the flight
 *  recorder's incident windows). @p forEach invokes its callback once
 *  per record in stream order. */
template <typename ForEach>
CausalGraph
buildGraphImpl(ForEach &&forEach)
{
    CausalGraph g;

    struct OpenRec
    {
        std::uint32_t tap;
        std::uint16_t track;
        Cycles t0;
    };
    std::vector<OpenRec> opens;

    struct EdgeHalf
    {
        std::uint32_t tap;
        std::uint16_t track;
        Cycles when;
    };
    std::map<std::uint64_t, EdgeHalf> outs;
    std::map<std::uint64_t, EdgeHalf> ins;

    forEach([&](const TraceRecord &r) {
        switch (r.kind) {
          case TraceKind::Begin:
            opens.push_back(OpenRec{r.tap.raw(), r.track, r.when});
            break;
          case TraceKind::End: {
            for (auto it = opens.rbegin(); it != opens.rend(); ++it) {
                if (it->tap == r.tap.raw() &&
                    it->track == r.track) {
                    CausalGraph::Node n;
                    n.name = tapName(r.tap);
                    n.track = r.track;
                    n.t0 = it->t0;
                    n.t1 = r.when;
                    g.nodes.push_back(std::move(n));
                    opens.erase(std::next(it).base());
                    break;
                }
            }
            break;
          }
          case TraceKind::EdgeOut:
            outs[r.arg] = EdgeHalf{r.tap.raw(), r.track, r.when};
            break;
          case TraceKind::EdgeIn:
            ins[r.arg] = EdgeHalf{r.tap.raw(), r.track, r.when};
            break;
          case TraceKind::Instant:
            break;
        }
    });

    // Innermost containing node on a track: minimal duration wins.
    auto innermost = [&g](std::uint16_t track, Cycles t,
                          int exclude) -> int {
        int best = -1;
        Cycles bestDur = 0;
        for (std::size_t i = 0; i < g.nodes.size(); ++i) {
            if (static_cast<int>(i) == exclude)
                continue;
            const CausalGraph::Node &n = g.nodes[i];
            if (n.track != track || n.t0 > t || n.t1 < t)
                continue;
            const Cycles dur = n.t1 - n.t0;
            if (best < 0 || dur < bestDur) {
                best = static_cast<int>(i);
                bestDur = dur;
            }
        }
        return best;
    };

    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        CausalGraph::Node &n = g.nodes[i];
        int best = -1;
        Cycles bestDur = 0;
        for (std::size_t j = 0; j < g.nodes.size(); ++j) {
            if (j == i)
                continue;
            const CausalGraph::Node &p = g.nodes[j];
            if (p.track != n.track || p.t0 > n.t0 || p.t1 < n.t1)
                continue;
            const Cycles dur = p.t1 - p.t0;
            if (best < 0 || dur < bestDur) {
                best = static_cast<int>(j);
                bestDur = dur;
            }
        }
        n.parent = best;
        if (best >= 0)
            g.nodes[static_cast<std::size_t>(best)].leaf = false;
    }

    for (const auto &[token, out] : outs) {
        CausalGraph::Edge e;
        e.name = tapName(TapId::fromRaw(out.tap));
        e.token = token;
        e.fromTrack = out.track;
        e.out = out.when;
        e.fromNode = innermost(out.track, out.when, -1);
        auto it = ins.find(token);
        if (it != ins.end()) {
            e.toTrack = it->second.track;
            e.in = it->second.when;
            e.toNode = innermost(it->second.track, it->second.when,
                                 -1);
        }
        g.edges.push_back(std::move(e));
    }
    // `outs` iterates in token order, and tokens encode the stamping
    // lane — a lane-count-dependent order. Re-sort edges by payload so
    // downstream consumers (critical-path tie-breaks, incident JSON)
    // are byte-identical at every VIRTSIM_SHARDS.
    std::sort(g.edges.begin(), g.edges.end(),
              [](const CausalGraph::Edge &a,
                 const CausalGraph::Edge &b) {
                  return std::tie(a.out, a.in, a.name, a.fromTrack,
                                  a.toTrack) <
                         std::tie(b.out, b.in, b.name, b.fromTrack,
                                  b.toTrack);
              });
    return g;
}

} // namespace

CausalGraph
buildCausalGraph(const TraceSink &sink, std::uint64_t mark)
{
    return buildGraphImpl([&](auto &&fn) {
        sink.forEachSince(mark, fn);
    });
}

CausalGraph
buildCausalGraphFromRecords(const TraceRecord *records,
                            std::size_t count)
{
    return buildGraphImpl([&](auto &&fn) {
        for (std::size_t i = 0; i < count; ++i)
            fn(records[i]);
    });
}

std::string
CriticalPath::render() const
{
    char head[128];
    std::snprintf(head, sizeof(head),
                  "critical path: span=%llu cy attributed=%llu cy "
                  "unattributed=%llu cy\n",
                  static_cast<unsigned long long>(span),
                  static_cast<unsigned long long>(attributed),
                  static_cast<unsigned long long>(unattributed()));
    std::string out = head;
    for (const CriticalPathStep &s : steps) {
        char buf[192];
        if (s.track == noTrack) {
            std::snprintf(buf, sizeof(buf),
                          "  %s %-32s [%llu..%llu] +%llu cy\n",
                          s.isEdge ? "~>" : "  ", s.name.c_str(),
                          static_cast<unsigned long long>(s.t0),
                          static_cast<unsigned long long>(s.t1),
                          static_cast<unsigned long long>(s.t1 -
                                                          s.t0));
        } else {
            std::snprintf(buf, sizeof(buf),
                          "  %s cpu%u %-32s [%llu..%llu] +%llu cy\n",
                          s.isEdge ? "~>" : "  ",
                          static_cast<unsigned>(s.track),
                          s.name.c_str(),
                          static_cast<unsigned long long>(s.t0),
                          static_cast<unsigned long long>(s.t1),
                          static_cast<unsigned long long>(s.t1 -
                                                          s.t0));
        }
        out += buf;
    }
    return out;
}

CriticalPath
extractCriticalPath(const CausalGraph &g)
{
    CriticalPath path;
    if (g.nodes.empty())
        return path;

    // The operation ends where the last span ends; among spans tied
    // on end time prefer the innermost (shortest), deterministically.
    int cur = -1;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        const CausalGraph::Node &n = g.nodes[i];
        if (cur < 0) {
            cur = static_cast<int>(i);
            continue;
        }
        const CausalGraph::Node &b =
            g.nodes[static_cast<std::size_t>(cur)];
        const Cycles nd = n.t1 - n.t0;
        const Cycles bd = b.t1 - b.t0;
        if (n.t1 > b.t1 || (n.t1 == b.t1 && nd < bd) ||
            (n.t1 == b.t1 && nd == bd && n.name < b.name)) {
            cur = static_cast<int>(i);
        }
    }

    std::vector<CriticalPathStep> rev;
    // A span may receive an edge from itself or from a span already
    // on the path (an intra-span LR hand-off, a ring of wakeups);
    // walking into one again would cycle until the guard. Visit each
    // node at most once.
    std::vector<char> seen(g.nodes.size(), 0);
    seen[static_cast<std::size_t>(cur)] = 1;
    for (int guard = 0; cur >= 0 && guard < 256; ++guard) {
        const CausalGraph::Node &n =
            g.nodes[static_cast<std::size_t>(cur)];
        rev.push_back(
            CriticalPathStep{n.name, n.track, n.t0, n.t1, false});

        // Prefer hopping through the causal edge that delivered
        // work into this span: continue on the originating track.
        int bestEdge = -1;
        for (std::size_t e = 0; e < g.edges.size(); ++e) {
            const CausalGraph::Edge &ed = g.edges[e];
            if (ed.toNode != cur)
                continue;
            if (ed.fromNode >= 0 &&
                seen[static_cast<std::size_t>(ed.fromNode)])
                continue;
            if (bestEdge < 0 ||
                ed.in > g.edges[static_cast<std::size_t>(bestEdge)]
                            .in) {
                bestEdge = static_cast<int>(e);
            }
        }
        if (bestEdge >= 0) {
            const CausalGraph::Edge &ed =
                g.edges[static_cast<std::size_t>(bestEdge)];
            rev.push_back(CriticalPathStep{ed.name, ed.toTrack,
                                           ed.out, ed.in, true});
            cur = ed.fromNode;
            if (cur >= 0)
                seen[static_cast<std::size_t>(cur)] = 1;
            continue;
        }

        // Otherwise: latest-finishing predecessor on the same track.
        int prev = -1;
        for (std::size_t j = 0; j < g.nodes.size(); ++j) {
            const CausalGraph::Node &p = g.nodes[j];
            if (p.track != n.track || p.t1 > n.t0 || seen[j]) {
                continue;
            }
            if (prev < 0) {
                prev = static_cast<int>(j);
                continue;
            }
            const CausalGraph::Node &b =
                g.nodes[static_cast<std::size_t>(prev)];
            const Cycles pd = p.t1 - p.t0;
            const Cycles bd = b.t1 - b.t0;
            if (p.t1 > b.t1 || (p.t1 == b.t1 && pd < bd) ||
                (p.t1 == b.t1 && pd == bd && p.name < b.name)) {
                prev = static_cast<int>(j);
            }
        }
        cur = prev;
        if (cur >= 0)
            seen[static_cast<std::size_t>(cur)] = 1;
    }

    std::reverse(rev.begin(), rev.end());
    path.steps = std::move(rev);
    for (const CriticalPathStep &s : path.steps)
        path.attributed += s.t1 >= s.t0 ? s.t1 - s.t0 : 0;
    path.span = path.steps.back().t1 - path.steps.front().t0;
    return path;
}

} // namespace virtsim
