#include "sim/random.hh"

#include <cmath>

#include "sim/log.hh"

namespace virtsim {

namespace {

/** splitmix64, used to expand the user seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t x = seed;
    s0 = splitmix64(x);
    s1 = splitmix64(x);
    if (s0 == 0 && s1 == 0)
        s1 = 1; // xorshift state must not be all-zero
}

std::uint64_t
Random::next()
{
    std::uint64_t x = s0;
    const std::uint64_t y = s1;
    s0 = y;
    x ^= x << 23;
    s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1 + y;
}

double
Random::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Random::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Random::below(std::uint64_t n)
{
    VIRTSIM_ASSERT(n > 0, "below(0)");
    return next() % n;
}

double
Random::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 1e-18;
    return -mean * std::log(u);
}

double
Random::normal(double mean, double stddev)
{
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 1e-18;
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = mean + stddev * z;
    return v < 0.0 ? 0.0 : v;
}

bool
Random::chance(double p)
{
    return uniform() < p;
}

} // namespace virtsim
