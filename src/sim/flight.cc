#include "sim/flight.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <tuple>

#include "sim/lane.hh"
#include "sim/log.hh"

namespace virtsim {

void
flightRecordBridge(FlightRecorder &fr, const TraceRecord &r)
{
    fr.record(r);
}

namespace {

/** Same fixed-precision formatting as the other exporters so merged
 *  artifacts line up byte-for-byte. */
std::string
flFormatUs(double us)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", us);
    return buf;
}

std::string
flJsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
FlightRecorder::configure(Cycles windowHalf, Cycles period,
                          std::uint32_t incidentCap)
{
    VIRTSIM_ASSERT(windowHalf > 0,
                   "flight recorder window must be positive");
    VIRTSIM_ASSERT(period > 0,
                   "flight recorder period must be positive");
    VIRTSIM_ASSERT(incidentCap > 0,
                   "flight recorder incident cap must be positive");
    window = windowHalf;
    _period = period;
    // Covers any window at its capture tick: capture runs at the
    // first barrier tick past end, so now - begin <= 2W + period.
    // The slack absorbs coarse tick alignment.
    _retention = 2 * window + 8 * period;
    cap = incidentCap;
}

void
FlightRecorder::prepareForParallel(int lanes)
{
    VIRTSIM_ASSERT(lanes >= 1, "flight recorder needs >= 1 lane");
    segs = std::vector<Seg>(static_cast<std::size_t>(lanes));
    if (_enabled) {
        for (Seg &s : segs)
            s.ring = std::make_unique<TraceRecord[]>(segCapacity);
    }
}

void
FlightRecorder::enable()
{
    VIRTSIM_ASSERT(window > 0 && _period > 0,
                   "FlightRecorder::enable() before configure()");
    for (Seg &s : segs) {
        if (!s.ring)
            s.ring = std::make_unique<TraceRecord[]>(segCapacity);
    }
    nGauges = timeline ? timeline->gaugeCount() : 0;
    rowCap = static_cast<std::size_t>(_retention / _period) + 4;
    rowWhen = std::make_unique<Cycles[]>(rowCap);
    rowGauge = std::make_unique<std::int64_t[]>(
        rowCap * (nGauges ? nGauges : 1));
    rowPhase =
        std::make_unique<std::uint64_t[]>(rowCap * numLatencyPhases * 2);
    rowHead = 0;
    rowCount = 0;
    _enabled = true;
}

FlightRecorder::Seg &
FlightRecorder::laneSeg()
{
    const int l = currentExecLane();
    const std::size_t i =
        (l < 1 || static_cast<std::size_t>(l) >= segs.size())
            ? 0
            : static_cast<std::size_t>(l);
    return segs[i];
}

void
FlightRecorder::pushRecord(const TraceRecord &r)
{
    Seg &s = laneSeg();
    constexpr std::size_t mask = segCapacity - 1;
    if (s.count == segCapacity) {
        // Overwriting a record retention has not evicted yet: the
        // window it belonged to may capture incomplete. Count it and
        // remember how recent the loss was so capture can flag it.
        const TraceRecord &old = s.ring[s.head];
        ++s.forced;
        if (old.when > s.maxForcedWhen)
            s.maxForcedWhen = old.when;
        --s.count;
    }
    s.ring[s.head] = r;
    s.head = (s.head + 1) & mask;
    ++s.count;
    ++s.total;
}

void
FlightRecorder::evict(Cycles now)
{
    if (now <= _retention)
        return;
    const Cycles cut = now - _retention;
    constexpr std::size_t mask = segCapacity - 1;
    for (Seg &s : segs) {
        // Pop oldest-first by stamp time. Records may be stamped out
        // of when-order (frontier charging future-dates span Ends;
        // completion-time stamping back-dates whole spans), so a
        // young-stamped record near the tail stops this fast path
        // early — which only under-evicts.
        while (s.count > 0) {
            const std::size_t tail =
                (s.head + segCapacity - s.count) & mask;
            if (s.ring[tail].when >= cut)
                break;
            --s.count;
        }
        // When under-eviction has let the segment grow near capacity,
        // compact in place: drop every stale record wherever it sits,
        // preserving relative order (the canonical-merge tiebreak
        // cares about order, not absolute positions). Barrier
        // context, so the owning lane is quiescent.
        if (s.count >= segCapacity - segCapacity / 4) {
            const std::size_t start =
                (s.head + segCapacity - s.count) & mask;
            std::size_t kept = 0;
            for (std::size_t i = 0; i < s.count; ++i) {
                const TraceRecord &r =
                    s.ring[(start + i) & mask];
                if (r.when < cut)
                    continue;
                s.ring[(start + kept) & mask] = r;
                ++kept;
            }
            s.head = (start + kept) & mask;
            s.count = kept;
        }
    }
    while (rowCount > 0) {
        const std::size_t tail =
            (rowHead + rowCap - rowCount) % rowCap;
        if (rowWhen[tail] >= cut)
            break;
        --rowCount;
    }
}

void
FlightRecorder::appendRow(Cycles now)
{
    if (rowCount == rowCap)
        --rowCount; // drop the oldest row
    const std::size_t slot = rowHead;
    rowWhen[slot] = now;
    for (std::size_t g = 0; g < nGauges; ++g)
        rowGauge[slot * nGauges + g] = timeline->gaugeLive(g);
    for (std::size_t p = 0; p < numLatencyPhases; ++p) {
        const auto phase = static_cast<LatencyPhase>(p);
        const std::size_t base = (slot * numLatencyPhases + p) * 2;
        rowPhase[base] = tracker ? tracker->totalCount(phase) : 0;
        rowPhase[base + 1] = tracker ? tracker->totalSum(phase) : 0;
    }
    rowHead = (rowHead + 1) % rowCap;
    ++rowCount;
}

std::vector<TraceRecord>
FlightRecorder::collectWindow(Cycles begin, Cycles end) const
{
    // Canonical merge: the TraceSink::forEachMerged key. Records
    // sharing a track are stamped by one lane, so the per-lane write
    // position breaks (when, kind, track) ties deterministically and
    // the result is a pure function of the record multiset —
    // byte-identical at every lane count.
    struct Ref
    {
        TraceRecord rec;
        std::uint64_t pos;
    };
    std::vector<Ref> refs;
    constexpr std::size_t mask = segCapacity - 1;
    for (const Seg &s : segs) {
        for (std::size_t i = 0; i < s.count; ++i) {
            const std::size_t slot =
                (s.head + segCapacity - s.count + i) & mask;
            const TraceRecord &r = s.ring[slot];
            if (r.when < begin || r.when > end)
                continue;
            refs.push_back(Ref{r, s.total - s.count + i});
        }
    }
    std::sort(refs.begin(), refs.end(), [](const Ref &a, const Ref &b) {
        const std::uint8_t ka =
            a.rec.kind == TraceKind::EdgeOut ? 0 : 1;
        const std::uint8_t kb =
            b.rec.kind == TraceKind::EdgeOut ? 0 : 1;
        return std::tie(a.rec.when, ka, a.rec.track, a.pos) <
               std::tie(b.rec.when, kb, b.rec.track, b.pos);
    });
    std::vector<TraceRecord> out;
    out.reserve(refs.size());
    for (const Ref &r : refs)
        out.push_back(r.rec);
    return out;
}

void
FlightRecorder::sealReference(Cycles now)
{
    refSealed = true;
    refEnd = now;
    const std::vector<TraceRecord> recs = collectWindow(0, now);
    refRecords = recs.size();
    CausalAnalyzer an("reference");
    for (const TraceRecord &r : recs)
        an.onTraceRecord(r);
    refBlame = an.report();
}

void
FlightRecorder::trigger(Cycles now, std::string source)
{
    if (!_enabled)
        return;
    for (Pending &p : pendings) {
        if (p.at == now) {
            p.sources.push_back(std::move(source));
            return;
        }
    }
    if (incidents.size() + pendings.size() >=
        static_cast<std::size_t>(cap)) {
        ++_dropped;
        return;
    }
    Pending p;
    p.at = now;
    p.begin = now > window ? now - window : 0;
    p.end = now + window;
    p.sources.push_back(std::move(source));
    pendings.push_back(std::move(p));
}

void
FlightRecorder::onAnomaly(Cycles now, const std::string &rule,
                          bool open)
{
    trigger(now, "watchdog." + rule + (open ? ".open" : ".close"));
}

void
FlightRecorder::onSample(Cycles now)
{
    if (!_enabled)
        return;
    evict(now);
    appendRow(now);
    if (!refSealed && now >= 2 * window)
        sealReference(now);
    std::size_t w = 0;
    for (std::size_t i = 0; i < pendings.size(); ++i) {
        Pending &p = pendings[i];
        if (p.end < now) {
            capture(p, false);
        } else {
            if (w != i)
                pendings[w] = std::move(p);
            ++w;
        }
    }
    pendings.resize(w);
}

void
FlightRecorder::finalize(Cycles now)
{
    if (!_enabled)
        return;
    if (!refSealed && (!pendings.empty() || !incidents.empty()))
        sealReference(now);
    for (Pending &p : pendings) {
        const bool clip = p.end > now;
        if (clip)
            p.end = now;
        capture(p, clip);
    }
    pendings.clear();
}

void
FlightRecorder::capture(Pending &p, bool clipped)
{
    FlightIncident inc;
    inc.seq = static_cast<std::uint32_t>(incidents.size());
    inc.triggerAt = p.at;
    std::sort(p.sources.begin(), p.sources.end());
    p.sources.erase(std::unique(p.sources.begin(), p.sources.end()),
                    p.sources.end());
    inc.sources = std::move(p.sources);
    inc.begin = p.begin;
    inc.end = p.end;
    inc.clipped = clipped;
    for (const Seg &s : segs) {
        if (s.forced > 0 && s.maxForcedWhen >= inc.begin)
            inc.truncated = true;
    }

    inc.records = collectWindow(inc.begin, inc.end);

    CausalAnalyzer an("incident");
    for (const TraceRecord &r : inc.records)
        an.onTraceRecord(r);
    inc.blame = an.report();

    const CausalGraph g = buildCausalGraphFromRecords(
        inc.records.data(), inc.records.size());
    inc.critical = extractCriticalPath(g);

    // Gauge series: the last row at/before begin carries the level
    // into the window; in-window rows append on change only (the
    // timeline's own deduplication idiom).
    if (timeline && nGauges > 0) {
        inc.gauges.resize(nGauges);
        for (std::size_t gi = 0; gi < nGauges; ++gi) {
            FlightIncident::GaugeSeries &gs = inc.gauges[gi];
            gs.name = timeline->gaugeName(gi);
            gs.track = timeline->gaugeTrack(gi);
            bool have = false;
            std::int64_t last = 0;
            for (std::size_t i = 0; i < rowCount; ++i) {
                const std::size_t slot =
                    (rowHead + rowCap - rowCount + i) % rowCap;
                const Cycles when = rowWhen[slot];
                if (when > inc.end)
                    break;
                const std::int64_t v = rowGauge[slot * nGauges + gi];
                if (when <= inc.begin) {
                    // Carry-in: keep only the latest pre-window level.
                    if (!gs.samples.empty())
                        gs.samples.clear();
                    gs.samples.push_back(TimelineSample{when, v});
                    have = true;
                    last = v;
                    continue;
                }
                if (have && last == v)
                    continue;
                gs.samples.push_back(TimelineSample{when, v});
                have = true;
                last = v;
            }
        }
    }

    // Latency: window deltas between the rows bracketing the window,
    // cumulative quantiles at capture time.
    for (std::size_t pi = 0; pi < numLatencyPhases; ++pi) {
        FlightIncident::PhaseStat &ps = inc.phases[pi];
        std::uint64_t baseCount = 0, baseSum = 0;
        std::uint64_t endCount = 0, endSum = 0;
        for (std::size_t i = 0; i < rowCount; ++i) {
            const std::size_t slot =
                (rowHead + rowCap - rowCount + i) % rowCap;
            const Cycles when = rowWhen[slot];
            if (when > inc.end)
                break;
            const std::size_t base =
                (slot * numLatencyPhases + pi) * 2;
            if (when <= inc.begin) {
                baseCount = rowPhase[base];
                baseSum = rowPhase[base + 1];
            }
            endCount = rowPhase[base];
            endSum = rowPhase[base + 1];
        }
        ps.windowCount =
            endCount > baseCount ? endCount - baseCount : 0;
        ps.windowSum = endSum > baseSum ? endSum - baseSum : 0;
        if (tracker) {
            const auto phase = static_cast<LatencyPhase>(pi);
            ps.p50 = tracker->quantileAcross(phase, 0.5);
            ps.p99 = tracker->quantileAcross(phase, 0.99);
        }
    }

    incidents.push_back(std::move(inc));
}

const FlightIncident &
FlightRecorder::incident(std::size_t i) const
{
    VIRTSIM_ASSERT(i < incidents.size(),
                   "incident index out of range");
    return incidents[i];
}

std::size_t
FlightRecorder::retainedRecords() const
{
    std::size_t n = 0;
    for (const Seg &s : segs)
        n += s.count;
    return n;
}

std::string
FlightRecorder::renderIncidentJson(std::size_t i,
                                   const Frequency &freq,
                                   const std::string &world) const
{
    const FlightIncident &inc = incident(i);
    std::ostringstream os;
    os << "{\"schema\":\"virtsim-incident-1\""
       << ",\"world\":\"" << flJsonEscape(world) << "\""
       << ",\"seq\":" << inc.seq
       << ",\"frequency_ghz\":" << flFormatUs(freq.ghz())
       << ",\"window_us\":" << flFormatUs(freq.us(window));

    os << ",\n\"trigger\":{\"at_cycles\":" << inc.triggerAt
       << ",\"at_us\":" << flFormatUs(freq.us(inc.triggerAt))
       << ",\"sources\":[";
    for (std::size_t s = 0; s < inc.sources.size(); ++s) {
        if (s)
            os << ",";
        os << "\"" << flJsonEscape(inc.sources[s]) << "\"";
    }
    os << "]}";

    os << ",\n\"window\":{\"begin_cycles\":" << inc.begin
       << ",\"begin_us\":" << flFormatUs(freq.us(inc.begin))
       << ",\"end_cycles\":" << inc.end
       << ",\"end_us\":" << flFormatUs(freq.us(inc.end))
       << ",\"clipped\":" << (inc.clipped ? "true" : "false")
       << ",\"truncated\":" << (inc.truncated ? "true" : "false")
       << ",\"records\":" << inc.records.size() << "}";

    os << ",\n\"critical_path\":{\"span_cycles\":" << inc.critical.span
       << ",\"attributed_cycles\":" << inc.critical.attributed
       << ",\"steps\":[";
    for (std::size_t s = 0; s < inc.critical.steps.size(); ++s) {
        const CriticalPathStep &st = inc.critical.steps[s];
        if (s)
            os << ",";
        os << "\n{\"name\":\"" << flJsonEscape(st.name) << "\""
           << ",\"track\":" << st.track << ",\"t0\":" << st.t0
           << ",\"t1\":" << st.t1 << ",\"edge\":"
           << (st.isEdge ? "true" : "false") << "}";
    }
    os << "]}";

    os << ",\n\"blame\":" << inc.blame.toJson();

    os << ",\n\"reference\":{\"begin_cycles\":0,\"end_cycles\":"
       << refEnd << ",\"records\":" << refRecords
       << ",\"blame\":" << refBlame.toJson() << "}";

    const DiffReport diff = diffBlame(inc.blame, refBlame);
    os << ",\n\"blame_diff\":{\"incident_total_cycles\":"
       << inc.blame.attributed() << ",\"reference_total_cycles\":"
       << refBlame.attributed() << ",\"rows\":[";
    for (std::size_t r = 0; r < diff.rows.size(); ++r) {
        const DiffRow &row = diff.rows[r];
        if (r)
            os << ",";
        os << "\n{\"name\":\"" << flJsonEscape(row.name) << "\""
           << ",\"incident_cycles\":" << row.a
           << ",\"reference_cycles\":" << row.b
           << ",\"delta_cycles\":" << row.delta() << "}";
    }
    os << "]}";

    os << ",\n\"gauges\":[";
    for (std::size_t g = 0; g < inc.gauges.size(); ++g) {
        const FlightIncident::GaugeSeries &gs = inc.gauges[g];
        if (g)
            os << ",";
        os << "\n{\"name\":\"" << flJsonEscape(gs.name) << "\""
           << ",\"track\":" << gs.track << ",\"samples\":[";
        for (std::size_t s = 0; s < gs.samples.size(); ++s) {
            if (s)
                os << ",";
            os << "[" << gs.samples[s].when << ","
               << gs.samples[s].value << "]";
        }
        os << "]}";
    }
    os << "]";

    os << ",\n\"latency\":{\"phases\":[";
    for (std::size_t p = 0; p < numLatencyPhases; ++p) {
        const FlightIncident::PhaseStat &ps = inc.phases[p];
        if (p)
            os << ",";
        const double meanUs =
            ps.windowCount == 0
                ? 0.0
                : freq.us(ps.windowSum) /
                      static_cast<double>(ps.windowCount);
        os << "\n{\"phase\":\""
           << to_string(static_cast<LatencyPhase>(p)) << "\""
           << ",\"window_count\":" << ps.windowCount
           << ",\"window_sum_cycles\":" << ps.windowSum
           << ",\"window_mean_us\":" << flFormatUs(meanUs)
           << ",\"p50_us\":" << flFormatUs(freq.us(ps.p50))
           << ",\"p99_us\":" << flFormatUs(freq.us(ps.p99)) << "}";
    }
    os << "]}";

    os << ",\n\"health\":{\"incidents_dropped\":" << _dropped
       << "}}\n";
    return os.str();
}

bool
FlightRecorder::exportIncidents(const std::string &dir,
                                const Frequency &freq,
                                const std::string &world) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("cannot create incident directory ", dir, ": ",
             ec.message());
        return false;
    }
    bool ok = true;
    for (std::size_t i = 0; i < incidents.size(); ++i) {
        char name[64];
        std::snprintf(name, sizeof(name), "incident.%s.%03zu.json",
                      world.c_str(), i);
        const std::string path = dir + "/" + name;
        std::ofstream os(path);
        if (!os) {
            warn("cannot open incident file ", path);
            ok = false;
            continue;
        }
        os << renderIncidentJson(i, freq, world);
    }
    return ok;
}

void
FlightRecorder::writeAnnotationEvents(std::ostream &os,
                                      const Frequency &freq) const
{
    for (const FlightIncident &inc : incidents) {
        std::string sources;
        for (const std::string &s : inc.sources) {
            if (!sources.empty())
                sources += ",";
            sources += s;
        }
        os << ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
           << flFormatUs(freq.us(inc.begin)) << ",\"dur\":"
           << flFormatUs(freq.us(inc.end - inc.begin))
           << ",\"name\":\"incident #" << inc.seq
           << "\",\"cat\":\"incident\",\"args\":{\"sources\":\""
           << flJsonEscape(sources) << "\"}}";
        os << ",\n{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":"
           << flFormatUs(freq.us(inc.triggerAt))
           << ",\"name\":\"incident.trigger\",\"s\":\"g\""
           << ",\"cat\":\"incident\",\"args\":{\"seq\":" << inc.seq
           << "}}";
    }
}

void
FlightRecorder::reset()
{
    for (Seg &s : segs) {
        s.head = 0;
        s.count = 0;
        s.total = 0;
        s.forced = 0;
        s.maxForcedWhen = 0;
    }
    rowHead = 0;
    rowCount = 0;
    pendings.clear();
    incidents.clear();
    _dropped = 0;
    refSealed = false;
    refEnd = 0;
    refRecords = 0;
    refBlame = BlameReport{};
}

} // namespace virtsim
