/**
 * @file
 * Incident forensics: an always-on flight recorder with automated
 * anomaly root-cause reports.
 *
 * The interesting behavior in the paper's multicore results — IPI
 * storms, LR maintenance bursts, vhost wakeup stalls — is transient:
 * by the time a 256-VM overload run exports its rings, the trace
 * context surrounding a watchdog anomaly has long been overwritten.
 * The FlightRecorder fixes that by retaining a *sliding simulated-time
 * window* of trace records, timeline tick rows and latency-phase
 * cumulatives independently of the export rings, and freezing that
 * window into a structured incident the instant a trigger fires.
 *
 * Cost model mirrors TraceSink: the stamping tee (record()) is one
 * predictable branch while disabled and lane-local ring stores while
 * enabled — zero cross-lane synchronization, zero allocation. All
 * bookkeeping (eviction, reference sealing, incident capture) runs in
 * a timeline post-sample hook: barrier context, every lane quiescent,
 * at period-aligned simulated instants — so it is race-free and its
 * results are lane-count independent.
 *
 * Window model: a trigger at simulated time t freezes [t−W, t+W]
 * (W = VIRTSIM_INCIDENT_WINDOW_US, owned by the world that arms the
 * recorder). Records are retained for R = 2W + 8·period behind the
 * barrier clock, which always covers a full window at the moment it
 * is captured: capture happens at the first barrier tick strictly
 * after t+W, i.e. at now ≤ t+W+period, and now − (t−W) ≤ 2W+period
 * < R. Span End records may be stamped *ahead* of the event that
 * produced them (frontier charging), so eviction is driven by the
 * barrier clock only — never by stamped record times.
 *
 * Trigger sources: watchdog anomaly open/close (TimelineSampler's
 * anomaly hook) and SLO burn breach (SloEngine's breach hook).
 * Same-tick firings merge into one incident. Each captured incident
 * carries: the in-window record multiset (canonically sorted — the
 * same key TraceSink::forEachMerged uses, so bytes are identical at
 * every VIRTSIM_SHARDS), a CausalAnalyzer blame report over just the
 * window, the window's critical path, a blame diff against a healthy
 * reference window sealed early in the run ("what changed when the
 * anomaly started"), in-window gauge series, and per-phase latency
 * deltas. Export is one "virtsim-incident-1" JSON per incident under
 * VIRTSIM_INCIDENTS=<dir>, capped with drop accounting.
 */

#ifndef VIRTSIM_SIM_FLIGHT_HH
#define VIRTSIM_SIM_FLIGHT_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/attrib.hh"
#include "sim/latency.hh"
#include "sim/probe.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace virtsim {

/** One frozen incident: the forensic context around a trigger. */
struct FlightIncident
{
    std::uint32_t seq = 0;  ///< 0-based capture order
    Cycles triggerAt = 0;   ///< simulated instant of the first firing
    /** Trigger source labels ("watchdog.<rule>.open",
     *  "slo.<name>.burn", ...), sorted and deduplicated. */
    std::vector<std::string> sources;

    Cycles begin = 0; ///< window start, max(triggerAt − W, 0)
    Cycles end = 0;   ///< window end, triggerAt + W (clamped when clipped)
    /** Run ended before the post-trigger half of the window elapsed;
     *  end was clamped to the final time. */
    bool clipped = false;
    /** A lane ring overwrote records stamped at/after begin — the
     *  window may be missing context (surfaced, never silent). */
    bool truncated = false;

    /** In-window records, canonically sorted (when, EdgeOut-first,
     *  track, per-lane write position). */
    std::vector<TraceRecord> records;

    /** Per-primitive self-cycle blame over just the window. */
    BlameReport blame;
    /** Latency-critical chain through the window's causal graph. */
    CriticalPath critical;

    /** One in-window gauge series (carry-in sample plus changes). */
    struct GaugeSeries
    {
        std::string name;
        std::uint16_t track = gaugeNoTrack;
        std::vector<TimelineSample> samples;
    };
    std::vector<GaugeSeries> gauges; ///< timeline registration order

    /** Per-phase latency inside the window plus cumulative quantiles
     *  at capture time. */
    struct PhaseStat
    {
        std::uint64_t windowCount = 0; ///< samples recorded in-window
        std::uint64_t windowSum = 0;   ///< their summed cycles
        std::uint64_t p50 = 0;         ///< cumulative p50 at capture
        std::uint64_t p99 = 0;         ///< cumulative p99 at capture
    };
    std::array<PhaseStat, numLatencyPhases> phases{};
};

/**
 * The always-on flight recorder. Owned by a world (Testbed /
 * FleetWorld — the SloEngine pattern), fed by the TraceSink tee
 * (TraceSink::setFlightRecorder) and by a timeline post-sample hook.
 *
 * Setup order: configure() the window, bind() the timeline and
 * request tracker, prepareForParallel() alongside the sink, then
 * enable() *last* — after every gauge is registered (installTimeline,
 * registerGauges) — since enable() sizes the tick-row storage from
 * the bound timeline's gauge count.
 */
class FlightRecorder
{
  public:
    /** Per-lane window ring capacity (records). Sized so a serial
     *  (single-segment) overload window never wraps; more lanes only
     *  add capacity. */
    static constexpr std::size_t segCapacity = 1u << 15;

    FlightRecorder() = default;
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Set the window half-width W, the timeline period driving the
     * maintenance hook, and the captured-incident cap. Retention is
     * derived (2W + 8·period). Call before enable().
     */
    void configure(Cycles windowHalf, Cycles period,
                   std::uint32_t incidentCap);

    /** Bind the gauge source and the latency tracker (either may be
     *  null: the matching incident sections export empty). */
    void
    bind(const TimelineSampler *tl, const RequestTracker *lat)
    {
        timeline = tl;
        tracker = lat;
    }

    /** Partition the window ring into `lanes` lane-local segments
     *  (the TraceSink shape). Setup thread only. */
    void prepareForParallel(int lanes);

    int laneCount() const { return static_cast<int>(segs.size()); }

    /** Arm recording. Allocates the ring segments and tick-row
     *  storage; call after configure()/bind()/prepareForParallel()
     *  and after the bound timeline registered every gauge. */
    void enable();

    void disable() { _enabled = false; }
    bool enabled() const { return _enabled; }

    Cycles windowHalf() const { return window; }
    Cycles retention() const { return _retention; }

    /** @name Stamping tee
     *  Hot path, called for every TraceSink push. Disabled: one
     *  predictable branch. Enabled: lane-local ring stores only. */
    ///@{
    void
    record(const TraceRecord &r)
    {
        if (!_enabled) [[likely]]
            return;
        pushRecord(r);
    }
    ///@}

    /**
     * Open a pending incident around simulated instant `now`.
     * Triggers at the same instant merge into one incident; beyond
     * the incident cap the firing is counted in incidentsDropped().
     * Barrier/setup context only (trigger sources are timeline and
     * SLO hooks, which run at barrier ticks).
     */
    void trigger(Cycles now, std::string source);

    /** Watchdog anomaly trigger adapter: labels the source
     *  "watchdog.<rule>.open" / ".close". */
    void onAnomaly(Cycles now, const std::string &rule, bool open);

    /**
     * Window maintenance, run as a timeline post-sample hook at every
     * barrier tick: evict records and tick rows past retention,
     * append the tick row (gauge values + latency cumulatives), seal
     * the healthy reference window once 2W of run has elapsed, and
     * capture any pending incident whose window has fully elapsed.
     */
    void onSample(Cycles now);

    /** End-of-run flush: capture still-pending incidents with their
     *  windows clipped to `now`. Call before exporting. */
    void finalize(Cycles now);

    std::size_t incidentCount() const { return incidents.size(); }
    const FlightIncident &incident(std::size_t i) const;
    /** Trigger firings lost to the incident cap. */
    std::uint64_t incidentsDropped() const { return _dropped; }

    /** Records currently retained across all lane segments. */
    std::size_t retainedRecords() const;

    /** The healthy reference window, once sealed. */
    bool referenceSealed() const { return refSealed; }
    Cycles referenceEnd() const { return refEnd; }
    const BlameReport &referenceBlame() const { return refBlame; }

    /** One incident as a "virtsim-incident-1" JSON document. */
    std::string renderIncidentJson(std::size_t i, const Frequency &freq,
                                   const std::string &world) const;

    /**
     * Write one JSON file per captured incident into `dir`
     * ("incident.<world>.<NNN>.json"), creating the directory as
     * needed. @return false when the directory or a file could not
     * be created (logged). */
    bool exportIncidents(const std::string &dir, const Frequency &freq,
                         const std::string &world) const;

    /** Emit Chrome-trace annotation events (one complete event per
     *  incident window plus a trigger instant), each preceded by
     *  ",\n" — the TimelineSampler::writeCounterEvents contract. */
    void writeAnnotationEvents(std::ostream &os,
                               const Frequency &freq) const;

    /** Drop records, rows, incidents, pendings and the reference;
     *  keep configuration, binding, segmentation and the enabled
     *  flag (the Probe::reset() contract). */
    void reset();

  private:
    /** One lane's window ring. While lanes run it is written only by
     *  its lane's thread; segment 0 doubles as the setup-context
     *  segment (the TraceSink clamp). */
    struct Seg
    {
        std::unique_ptr<TraceRecord[]> ring;
        std::size_t head = 0;  ///< next write slot
        std::size_t count = 0; ///< live records
        std::uint64_t total = 0;  ///< records ever written here
        std::uint64_t forced = 0; ///< overwrites of unevicted records
        Cycles maxForcedWhen = 0; ///< newest stamp lost to overwrite
    };

    /** A trigger whose post-window has not elapsed yet. */
    struct Pending
    {
        Cycles at = 0;
        Cycles begin = 0;
        Cycles end = 0;
        std::vector<std::string> sources;
    };

    Seg &laneSeg();
    void pushRecord(const TraceRecord &r);
    void evict(Cycles now);
    void appendRow(Cycles now);
    void sealReference(Cycles now);
    void capture(Pending &p, bool clipped);
    std::vector<TraceRecord> collectWindow(Cycles begin,
                                           Cycles end) const;

    const TimelineSampler *timeline = nullptr;
    const RequestTracker *tracker = nullptr;

    Cycles window = 0;     ///< half-width W
    Cycles _period = 0;
    Cycles _retention = 0; ///< 2W + 8·period
    std::uint32_t cap = 0; ///< captured-incident cap

    std::vector<Seg> segs = std::vector<Seg>(1);

    /** Tick-row ring: per-tick gauge values and latency cumulatives,
     *  laid out flat (row r at r·stride). */
    std::unique_ptr<Cycles[]> rowWhen;
    std::unique_ptr<std::int64_t[]> rowGauge;    ///< rows × nGauges
    std::unique_ptr<std::uint64_t[]> rowPhase;   ///< rows × phases × 2
    std::size_t rowCap = 0;
    std::size_t rowHead = 0;  ///< next write row
    std::size_t rowCount = 0; ///< live rows
    std::size_t nGauges = 0;

    std::vector<Pending> pendings;
    std::vector<FlightIncident> incidents;
    std::uint64_t _dropped = 0;

    bool refSealed = false;
    Cycles refEnd = 0;
    std::uint64_t refRecords = 0;
    BlameReport refBlame;

    bool _enabled = false;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_FLIGHT_HH
