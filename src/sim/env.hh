/**
 * @file
 * Validated environment-variable parsing.
 *
 * Every numeric VIRTSIM_* knob goes through one parser with one
 * failure mode: a clear fatal() naming the variable and the offending
 * value. Silent fallbacks are banned — a typo'd VIRTSIM_TRACE_CAPACITY
 * that quietly kept the default once cost a day of confusion over a
 * "lossy" trace.
 */

#ifndef VIRTSIM_SIM_ENV_HH
#define VIRTSIM_SIM_ENV_HH

#include <cstdint>
#include <optional>

namespace virtsim {

/**
 * Parse environment variable `name` as a strictly positive integer.
 * @return nullopt when unset or empty; the value otherwise.
 *
 * fatal()s (user error, exit(1)) on anything else: non-numeric text,
 * trailing garbage ("4k"), zero, negative values, or values that
 * overflow either uint64 or the caller's `max`.
 */
std::optional<std::uint64_t> envPositiveCount(const char *name,
                                              std::uint64_t max =
                                                  UINT64_MAX);

/**
 * Parse environment variable `name` as a strictly positive real
 * number (decimal notation, e.g. "60" or "12.5").
 * @return nullopt when unset or empty; the value otherwise.
 *
 * fatal()s on non-numeric text, trailing garbage, a leading sign,
 * zero, non-finite values, or values above `max`.
 */
std::optional<double> envPositiveReal(const char *name,
                                      double max = 1e18);

/**
 * Parse environment variable `name` as a fraction in [0, 1]
 * (e.g. "0.01"). Zero is allowed — "no violations tolerated" is a
 * meaningful SLO.
 * @return nullopt when unset or empty; the value otherwise.
 *
 * fatal()s on non-numeric text, trailing garbage, a leading sign, or
 * values outside [0, 1].
 */
std::optional<double> envUnitFraction(const char *name);

} // namespace virtsim

#endif // VIRTSIM_SIM_ENV_HH
