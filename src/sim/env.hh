/**
 * @file
 * Validated environment-variable parsing.
 *
 * Every numeric VIRTSIM_* knob goes through one parser with one
 * failure mode: a clear fatal() naming the variable and the offending
 * value. Silent fallbacks are banned — a typo'd VIRTSIM_TRACE_CAPACITY
 * that quietly kept the default once cost a day of confusion over a
 * "lossy" trace.
 */

#ifndef VIRTSIM_SIM_ENV_HH
#define VIRTSIM_SIM_ENV_HH

#include <cstdint>
#include <optional>

namespace virtsim {

/**
 * Parse environment variable `name` as a strictly positive integer.
 * @return nullopt when unset or empty; the value otherwise.
 *
 * fatal()s (user error, exit(1)) on anything else: non-numeric text,
 * trailing garbage ("4k"), zero, negative values, or values that
 * overflow either uint64 or the caller's `max`.
 */
std::optional<std::uint64_t> envPositiveCount(const char *name,
                                              std::uint64_t max =
                                                  UINT64_MAX);

} // namespace virtsim

#endif // VIRTSIM_SIM_ENV_HH
