/**
 * @file
 * Timestamp taps — the simulator's substitute for the paper's
 * instrumented tcpdump plus synchronized ARM architected counters.
 *
 * The Netperf TCP_RR analysis (Table V) decomposes a transaction into
 * legs by timestamping packets at the datalink layer in the host/Dom0
 * and inside the VM. Components in virtsim call Tracer::stamp() at
 * those same points; analysis code then pairs up stamps per
 * transaction to compute the leg durations.
 */

#ifndef VIRTSIM_SIM_TRACE_HH
#define VIRTSIM_SIM_TRACE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace virtsim {

/** One trace record: a named point in time, tagged with a flow id. */
struct TraceRecord
{
    Cycles when;
    /** Flow identifier, e.g. a transaction sequence number. */
    std::uint64_t flow;
    /** Tap name, e.g. "host.datalink.rx" or "vm.app.recv". */
    std::string tap;
};

/**
 * Collects TraceRecords during a run. Disabled by default so the
 * hot paths of long application-benchmark runs pay a single branch.
 */
class Tracer
{
  public:
    void enable() { enabled = true; }
    void disable() { enabled = false; }
    bool isEnabled() const { return enabled; }

    void
    stamp(Cycles when, std::uint64_t flow, const std::string &tap)
    {
        if (enabled)
            records.push_back(TraceRecord{when, flow, tap});
    }

    const std::vector<TraceRecord> &all() const { return records; }

    void clear() { records.clear(); }

    /** First stamp of tap for the given flow, if any. */
    std::optional<Cycles> find(std::uint64_t flow,
                               const std::string &tap) const;

    /**
     * Duration between two taps of the same flow.
     * @return nullopt if either tap is missing or ordering is reversed.
     */
    std::optional<Cycles> between(std::uint64_t flow,
                                  const std::string &from,
                                  const std::string &to) const;

  private:
    bool enabled = false;
    std::vector<TraceRecord> records;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_TRACE_HH
