/**
 * @file
 * The calling thread's execution lane.
 *
 * The sharded kernel (sim/shard) marks each thread with the lane it
 * is currently executing events for. Lane-partitioned observability
 * state (TraceSink ring segments, EventKernelProfiler histograms)
 * keys off the same mark, so the hot stamp path stays free of
 * cross-lane synchronization: each lane writes only its own segment.
 *
 * This lives outside sim/shard.hh so sim/probe.hh can read the lane
 * without depending on the kernel (probe is lower in the include
 * graph than shard).
 */

#ifndef VIRTSIM_SIM_LANE_HH
#define VIRTSIM_SIM_LANE_HH

namespace virtsim {

namespace detail {
/** Lane the current thread is executing events for; -1 outside lane
 *  execution (setup, coordinator, export). Written only by LaneScope. */
extern thread_local int tl_exec_lane;
} // namespace detail

/** Lane the calling thread is currently executing events for, or -1
 *  outside lane execution. Consumers that index per-lane storage
 *  should clamp -1 to 0: setup-context stamping (tap warming, world
 *  construction) lands in segment 0, which is also the only segment
 *  a single-lane kernel ever uses. */
inline int
currentExecLane()
{
    return detail::tl_exec_lane;
}

/** RAII lane marker, set around every lane execution phase (parallel
 *  workers and the serial round loop alike). */
struct LaneScope
{
    explicit LaneScope(int lane) { detail::tl_exec_lane = lane; }
    ~LaneScope() { detail::tl_exec_lane = -1; }

    LaneScope(const LaneScope &) = delete;
    LaneScope &operator=(const LaneScope &) = delete;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_LANE_HH
