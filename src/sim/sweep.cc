#include "sim/sweep.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include <limits>

#include "sim/env.hh"
#include "sim/log.hh"
#include "sim/probe.hh"

namespace virtsim {

int
sweepJobs()
{
    if (const char *env = std::getenv("VIRTSIM_JOBS")) {
        // An explicitly empty VIRTSIM_JOBS is a user error, not a
        // request for the hardware default (envPositiveCount treats
        // empty as unset).
        if (*env == '\0') {
            fatal("VIRTSIM_JOBS must be a positive integer, "
                  "got \"\"");
        }
        const auto v = envPositiveCount(
            "VIRTSIM_JOBS",
            static_cast<std::uint64_t>(
                std::numeric_limits<int>::max()));
        return static_cast<int>(*v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

/** A thread already inside a sweep task: nested sweeps run serially
 *  (the pool dispatches one job at a time), which is byte-identical
 *  anyway. */
thread_local bool in_sweep_task = false;

/**
 * Process-lifetime worker pool. Workers are created lazily the first
 * time a sweep wants them, sleep on a condition variable between
 * sweeps, and are joined at static destruction. One job runs at a
 * time — sweeps at this level are never concurrent with each other —
 * so the job state is a single slot guarded by the pool mutex.
 *
 * Determinism: the pool changes *which host thread* runs a task, but
 * tasks are still handed out by an atomic index and committed at
 * their input index, so results are byte-identical to the old
 * spawn/join runner (and to serial) for every VIRTSIM_JOBS value.
 */
class SweepPool
{
  public:
    static SweepPool &
    instance()
    {
        static SweepPool pool;
        return pool;
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &task,
        std::size_t width)
    {
        Job job;
        job.task = &task;
        job.n = n;
        {
            std::unique_lock<std::mutex> lock(m);
            // Helpers beyond the calling thread; cap the persistent
            // pool so a huge VIRTSIM_JOBS cannot pin thousands of
            // idle threads (extra width beyond the cap only idles on
            // the atomic index anyway).
            const std::size_t helpers =
                std::min(width - 1, maxThreads);
            while (threads.size() < helpers)
                threads.emplace_back([this] { workerLoop(); });
            current = &job;
            wanted = std::min(helpers, threads.size());
            ++statParallelSweeps;
            cv.notify_all();
        }
        drain(job); // the calling thread participates
        {
            std::unique_lock<std::mutex> lock(m);
            wanted = 0; // cancel pickups that never happened
            doneCv.wait(lock, [this] { return active == 0; });
            current = nullptr;
        }
        if (job.firstError)
            std::rethrow_exception(job.firstError);
    }

    SweepPoolStats
    stats()
    {
        std::lock_guard<std::mutex> lock(m);
        SweepPoolStats s;
        s.threads = threads.size();
        s.parallelSweeps = statParallelSweeps;
        s.serialSweeps = statSerialSweeps;
        s.tasksExecuted =
            statTasksExecuted.load(std::memory_order_relaxed);
        s.workerWakes = statWakes;
        return s;
    }

    void
    countSerialSweep(std::uint64_t tasks)
    {
        std::lock_guard<std::mutex> lock(m);
        ++statSerialSweeps;
        statTasksExecuted.fetch_add(tasks, std::memory_order_relaxed);
    }

    ~SweepPool()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            stop = true;
            cv.notify_all();
        }
        for (auto &t : threads)
            t.join();
    }

  private:
    struct Job
    {
        const std::function<void(std::size_t)> *task = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        /** Set on the first task exception: remaining indices are
         *  abandoned instead of drained to completion. */
        std::atomic<bool> abort{false};
        std::exception_ptr firstError;
        std::mutex errorMutex;
    };

    /** Largest number of persistent helper threads ever retained. */
    static constexpr std::size_t maxThreads = 256;

    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lock(m);
        for (;;) {
            cv.wait(lock,
                    [this] { return stop || (current && wanted > 0); });
            if (stop)
                return;
            --wanted;
            ++active;
            ++statWakes;
            Job *job = current;
            lock.unlock();
            drain(*job);
            lock.lock();
            if (--active == 0)
                doneCv.notify_all();
        }
    }

    void
    drain(Job &job)
    {
        in_sweep_task = true;
        for (;;) {
            if (job.abort.load(std::memory_order_relaxed))
                break;
            const std::size_t i =
                job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.n)
                break;
            try {
                (*job.task)(i);
                statTasksExecuted.fetch_add(1,
                                            std::memory_order_relaxed);
            } catch (...) {
                std::lock_guard<std::mutex> g(job.errorMutex);
                if (!job.firstError)
                    job.firstError = std::current_exception();
                job.abort.store(true, std::memory_order_relaxed);
            }
        }
        in_sweep_task = false;
    }

    std::mutex m;
    std::condition_variable cv;     ///< workers sleep here
    std::condition_variable doneCv; ///< caller waits for quiescence
    std::vector<std::thread> threads;
    Job *current = nullptr;  ///< the one in-flight job, if any
    std::size_t wanted = 0;  ///< pickups still to hand out
    std::size_t active = 0;  ///< workers inside the current job
    bool stop = false;
    std::uint64_t statParallelSweeps = 0;
    std::uint64_t statSerialSweeps = 0;
    std::uint64_t statWakes = 0;
    std::atomic<std::uint64_t> statTasksExecuted{0};
};

} // namespace

SweepPoolStats
sweepPoolStats()
{
    return SweepPool::instance().stats();
}

void
publishSweepPoolStats(MetricsRegistry &metrics)
{
    const SweepPoolStats s = sweepPoolStats();
    MetricsDomain &mach = metrics.machine();
    auto set = [&mach](const char *name, std::uint64_t v) {
        Counter &c = mach.counter(internTap(name));
        c.reset();
        c.inc(v);
    };
    set("sweep.pool.threads", s.threads);
    set("sweep.pool.parallel_sweeps", s.parallelSweeps);
    set("sweep.pool.serial_sweeps", s.serialSweeps);
    set("sweep.pool.tasks_executed", s.tasksExecuted);
    set("sweep.pool.worker_wakes", s.workerWakes);
}

bool
inSweepTask()
{
    return in_sweep_task;
}

namespace sweep_detail {

void
runIndexed(std::size_t n,
           const std::function<void(std::size_t)> &task, int jobs)
{
    if (jobs <= 1 || n <= 1 || in_sweep_task) {
        // The old serial path, byte-identical by construction. Also
        // taken for sweeps nested inside a sweep task: the pool runs
        // one job at a time, and nesting deadlocking on it would buy
        // nothing over the (deterministic) inline loop.
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        SweepPool::instance().countSerialSweep(n);
        return;
    }

    const std::size_t width =
        std::min(static_cast<std::size_t>(jobs), n);
    SweepPool::instance().run(n, task, width);
}

} // namespace sweep_detail

} // namespace virtsim
