#include "sim/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "sim/log.hh"

namespace virtsim {

int
sweepJobs()
{
    if (const char *env = std::getenv("VIRTSIM_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 1)
            fatal("VIRTSIM_JOBS must be a positive integer, got \"",
                  env, "\"");
        return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace sweep_detail {

void
runIndexed(std::size_t n,
           const std::function<void(std::size_t)> &task, int jobs)
{
    if (jobs <= 1 || n <= 1) {
        // The old serial path, byte-identical by construction.
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }

    const std::size_t nthreads =
        std::min(static_cast<std::size_t>(jobs), n);
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(nthreads - 1);
    for (std::size_t t = 1; t < nthreads; ++t)
        pool.emplace_back(worker);
    worker(); // the calling thread participates
    for (auto &t : pool)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace sweep_detail

} // namespace virtsim
