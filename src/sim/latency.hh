/**
 * @file
 * Request-latency observability: a bounded-memory HDR-style histogram
 * and a lane-partitioned per-request phase tracker.
 *
 * ROADMAP item 1 asks for p99/p999 tail percentiles and SLO violation
 * rates, not just the paper's means. SampleStat answers exact
 * percentile queries but keeps every sample (unbounded at fleet
 * scale), and HistogramStat's 64 log2 buckets cannot separate a 30 us
 * p50 from a 35 us p99 — both land in one power-of-two bucket.
 * LatencyHistogram fills the gap: log-linear buckets (HdrHistogram's
 * scheme) give a fixed <=0.79% relative error at every magnitude in a
 * fixed 58 KB footprint, and merging is bucket-wise integer addition —
 * exact and order-independent, so per-lane shards fold into the same
 * view a serial run records directly (the PR 7 determinism bar).
 *
 * RequestTracker layers the fleet/request model on top: per-CPU
 * histograms for each latency phase of a request/response transaction
 * (RTT plus its decomposition into client think, wire flight, server
 * queue wait, and service), partitioned per execution lane exactly
 * like TraceSink ring segments and the EventKernelProfiler arrays —
 * record() writes only the calling lane's own pre-sized storage, so
 * the hot stamp path performs no allocation and no cross-lane
 * synchronization, and the disabled path is one predicted branch.
 */

#ifndef VIRTSIM_SIM_LATENCY_HH
#define VIRTSIM_SIM_LATENCY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/lane.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace virtsim {

/**
 * Fixed-capacity log-linear histogram of unsigned cycle values.
 *
 * Bucket scheme (subBucketBits = m = 7): values below 2^(m+1) = 256
 * are recorded exactly, one bucket per value. Above that, each
 * power-of-two octave [2^k, 2^(k+1)) splits into 2^m equal sub-
 * buckets, so a bucket spanning [low, low + 2^s) has relative width
 * (2^s - 1)/low < 2^-m ~= 0.79% — the quantile error bound at every
 * magnitude, covering the full uint64 range in 7424 buckets.
 * Exact count, sum, min and max are tracked alongside, so means are
 * exact and quantiles clamp into the observed range.
 *
 * merge() is bucket-wise integer addition plus exact count/sum/
 * min/max folds: exact, commutative and associative, which is what
 * makes per-lane shards deterministic to merge in any order.
 */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^-subBucketBits relative error. */
    static constexpr unsigned subBucketBits = 7;
    static constexpr std::uint64_t subBuckets = std::uint64_t{1}
                                                << subBucketBits;
    /** Largest value recorded exactly (one bucket per value). */
    static constexpr std::uint64_t exactLimit = 2 * subBuckets;
    /** Octaves above the exact region: bit widths m+2 .. 64. */
    static constexpr std::size_t numBuckets = static_cast<std::size_t>(
        (64 - subBucketBits + 1) * subBuckets);

    /** Bucket index a value lands in. */
    static constexpr std::size_t
    bucketOf(std::uint64_t v)
    {
        if (v < exactLimit)
            return static_cast<std::size_t>(v);
        const unsigned s = static_cast<unsigned>(std::bit_width(v)) -
                           (subBucketBits + 1);
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(s + 1) << subBucketBits) +
            ((v >> s) - subBuckets));
    }

    /** Smallest value mapping to bucket i. */
    static constexpr std::uint64_t
    bucketLow(std::size_t i)
    {
        if (i < exactLimit)
            return static_cast<std::uint64_t>(i);
        const unsigned s =
            static_cast<unsigned>(i >> subBucketBits) - 1;
        const std::uint64_t sub = i & (subBuckets - 1);
        return (subBuckets + sub) << s;
    }

    /** Largest value mapping to bucket i. */
    static constexpr std::uint64_t
    bucketHigh(std::size_t i)
    {
        if (i < exactLimit)
            return static_cast<std::uint64_t>(i);
        const unsigned s =
            static_cast<unsigned>(i >> subBucketBits) - 1;
        const std::uint64_t sub = i & (subBuckets - 1);
        // The next bucket's low minus one; the top bucket saturates.
        const std::uint64_t next = subBuckets + sub + 1;
        if (s >= 56 && sub == subBuckets - 1)
            return UINT64_MAX;
        return (next << s) - 1;
    }

    void
    add(std::uint64_t v)
    {
        ++buckets[bucketOf(v)];
        ++_count;
        _sum += v;
        _min = v < _min ? v : _min;
        _max = v > _max ? v : _max;
    }

    std::uint64_t count() const { return _count; }
    bool empty() const { return _count == 0; }

    /** Smallest recorded value (exact). @pre !empty() */
    std::uint64_t min() const { return _min; }
    /** Largest recorded value (exact). @pre !empty() */
    std::uint64_t max() const { return _max; }
    /** Sum of all recorded values (exact). */
    std::uint64_t sum() const { return _sum; }

    /** Arithmetic mean (exact). Returns 0 when empty. */
    double
    mean() const
    {
        return _count == 0 ? 0.0
                           : static_cast<double>(_sum) /
                                 static_cast<double>(_count);
    }

    /**
     * Value at quantile q in [0, 1] with nearest-rank semantics at
     * bucket resolution: the highest value equivalent to the sample
     * of rank ceil(q * count), clamped into [min(), max()] so exact
     * extrema are returned exactly. Returns 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p90() const { return quantile(0.90); }
    std::uint64_t p99() const { return quantile(0.99); }
    std::uint64_t p999() const { return quantile(0.999); }

    /**
     * Samples strictly above `threshold`, at bucket resolution: the
     * mass of every bucket whose low bound exceeds `threshold` (the
     * bucket containing the threshold counts as within). Exact for
     * thresholds below exactLimit or on a bucket boundary; what SLO
     * violation fractions are computed from, and reproducible from
     * the exported bucket array (scripts/validate_latency.py does).
     */
    std::uint64_t countAbove(std::uint64_t threshold) const;

    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets[i];
    }

    /** Fold another histogram in: exact and order-independent. */
    void
    merge(const LatencyHistogram &o)
    {
        for (std::size_t i = 0; i < numBuckets; ++i)
            buckets[i] += o.buckets[i];
        _count += o._count;
        _sum += o._sum;
        _min = o._min < _min ? o._min : _min;
        _max = o._max > _max ? o._max : _max;
    }

    void reset();

    /** One-line summary: n/min/p50/p99/max (cycle values). */
    std::string render() const;

  private:
    std::array<std::uint64_t, numBuckets> buckets{};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = UINT64_MAX;
    std::uint64_t _max = 0;
};

/**
 * The phases a request/response transaction decomposes into. The
 * fleet records the exact modelled identity
 *   rtt = wire_flight(req) + server_queue + service + wire_flight(rsp)
 * per transaction; client think sits between transactions and is
 * deliberately outside the RTT.
 */
enum class LatencyPhase : std::uint8_t {
    Rtt = 0,     ///< request departure -> response arrival
    ClientThink, ///< response arrival -> next request departure
    WireFlight,  ///< one wire traversal (either direction)
    ServerQueue, ///< arrival at the server -> service start
    Service,     ///< service start -> service completion
};

inline constexpr std::size_t numLatencyPhases = 5;

/** Stable lower-case phase name ("rtt", "server_queue", ...). */
const char *to_string(LatencyPhase phase);

/**
 * Per-CPU, per-phase latency recording with lane-partitioned storage.
 *
 * Life cycle mirrors the other lane-native sinks: configure(nCpus)
 * sizes the serial (single-segment) storage, prepareForParallel(lanes)
 * re-partitions it so each kernel lane owns a private histogram array,
 * enable() arms recording. record() then indexes the calling thread's
 * lane segment (clamping the setup/export context, lane -1, to
 * segment 0 — also the only segment a single-lane kernel uses) and
 * does two dozen integer operations on pre-sized arrays: no locks, no
 * allocation. While disabled, record() is one predicted branch.
 *
 * The read side (merged()/aggregate()/quantile helpers) folds lane
 * segments with LatencyHistogram::merge — exact and order-independent
 * — so every derived number is byte-identical at any lane count.
 * Reads must not race recording: call them from the setup/export
 * context or a barrier (timeline sample hooks run at barrier rounds
 * with all lanes quiescent).
 */
class RequestTracker
{
  public:
    /** Size storage for `nCpus` server CPUs, one (serial) segment.
     *  Drops previously recorded data. */
    void configure(int nCpus);

    /** Re-partition into `lanes` private segments. @pre configured.
     *  Call from the setup thread before lanes run. */
    void prepareForParallel(int lanes);

    /** Arm recording. @pre configured. */
    void
    enable()
    {
        VIRTSIM_ASSERT(_cpus > 0,
                       "RequestTracker::enable() before configure()");
        _enabled = true;
    }
    void disable() { _enabled = false; }
    bool enabled() const { return _enabled; }

    int cpus() const { return _cpus; }

    /** Fresh request id. Client-side only: call from one lane (the
     *  fleet's lane 0) or the setup thread. */
    std::uint64_t nextRequestId() { return ++lastId; }
    std::uint64_t requestsIssued() const { return lastId; }

    /** Record one phase latency for a request served by `cpu`. The
     *  hot path: one predicted branch when disabled, zero-alloc
     *  lane-local bucket increments when enabled. */
    void
    record(int cpu, LatencyPhase phase, Cycles value)
    {
        if (!_enabled) [[likely]]
            return;
        recordEnabled(cpu, phase, value);
    }

    /** Lane-merged histogram for one (cpu, phase) slot. */
    LatencyHistogram merged(int cpu, LatencyPhase phase) const;

    /** Lane-merged histogram for a phase across every CPU. */
    LatencyHistogram aggregate(LatencyPhase phase) const;

    /** Streaming aggregate count for a phase (no 58 KB copies) —
     *  cpu = -1 folds every CPU. */
    std::uint64_t totalCount(LatencyPhase phase, int cpu = -1) const;

    /** Streaming aggregate sum of recorded values (cycles) — the
     *  flight recorder's per-window mean comes from delta(sum)/
     *  delta(count) between two barrier instants. */
    std::uint64_t totalSum(LatencyPhase phase, int cpu = -1) const;

    /** Streaming aggregate of LatencyHistogram::countAbove. */
    std::uint64_t totalAbove(LatencyPhase phase,
                             std::uint64_t threshold,
                             int cpu = -1) const;

    /**
     * Streaming aggregate quantile: walks the bucket axis summing
     * lane segments on the fly, so the per-sample cost is bucket
     * visits rather than histogram copies. Used by the SLO engine's
     * per-tick rolling quantile gauge. Same result as
     * aggregate(phase).quantile(q), byte for byte.
     */
    std::uint64_t quantileAcross(LatencyPhase phase, double q,
                                 int cpu = -1) const;

    /** Zero recorded data; keep configuration, partitioning and the
     *  enabled flag (the Probe::reset() contract, like
     *  TimelineSampler::resetSeries). */
    void reset();

    /** Drop everything including configuration — back to the
     *  never-configured state. */
    void clear();

  private:
    void recordEnabled(int cpu, LatencyPhase phase, Cycles value);

    std::size_t
    slotOf(int cpu, LatencyPhase phase) const
    {
        return static_cast<std::size_t>(cpu) * numLatencyPhases +
               static_cast<std::size_t>(phase);
    }

    /** Lane segment the calling thread records into. */
    std::vector<LatencyHistogram> &
    laneSeg()
    {
        const int l = currentExecLane();
        const std::size_t li =
            (l < 1 || static_cast<std::size_t>(l) >= segs.size())
                ? 0
                : static_cast<std::size_t>(l);
        return segs[li];
    }

    int _cpus = 0;
    bool _enabled = false;
    std::uint64_t lastId = 0;
    /** [lane][cpu * numLatencyPhases + phase]; one entry in serial
     *  mode, resized only by configure()/prepareForParallel(). */
    std::vector<std::vector<LatencyHistogram>> segs;
};

class Frequency;

/**
 * Standalone JSON export (schema "virtsim-latency-1"): per-CPU and
 * aggregate histograms for every phase — quantiles in exact cycles
 * and in microseconds, plus the sparse nonzero-bucket array so
 * external tooling can recompute quantiles and violation counts and
 * cross-check the exported values (scripts/validate_latency.py).
 * `sloJson` is a pre-rendered JSON array of SLO verdicts (sim/slo) or
 * empty for "[]"; latency stays below slo in the include graph.
 * Deterministic: derived from lane-merged exact integers only.
 */
std::string renderLatencyJson(const RequestTracker &tracker,
                              const Frequency &freq,
                              const std::string &world,
                              const std::string &sloJson);

} // namespace virtsim

#endif // VIRTSIM_SIM_LATENCY_HH
