#include "sim/timeline.hh"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/probe.hh"

namespace virtsim {

namespace {

/** Same fixed-precision formatting as the TraceSink exporter, so
 *  merged counter events line up byte-for-byte with span timestamps. */
std::string
tlFormatUs(double us)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", us);
    return buf;
}

std::string
tlJsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
kindName(TimelineSampler::GaugeKind k)
{
    return k == TimelineSampler::GaugeKind::Rate ? "rate" : "gauge";
}

} // namespace

void
TimelineSampler::addGauge(std::string name, GaugeFn fn,
                          std::uint16_t track)
{
    VIRTSIM_ASSERT(findGauge(name) < 0,
                   "duplicate timeline gauge: ", name);
    Series s;
    s.name = std::move(name);
    s.fn = std::move(fn);
    s.track = track;
    s.kind = GaugeKind::Level;
    if (_enabled)
        s.samples = std::make_unique<TimelineSample[]>(seriesCapacity);
    series.push_back(std::move(s));
}

void
TimelineSampler::addRateGauge(std::string name, GaugeFn fn,
                              std::uint16_t track)
{
    addGauge(std::move(name), std::move(fn), track);
    series.back().kind = GaugeKind::Rate;
}

int
TimelineSampler::findGauge(std::string_view name) const
{
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (series[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

const std::string &
TimelineSampler::gaugeName(std::size_t g) const
{
    VIRTSIM_ASSERT(g < series.size(), "gauge index out of range");
    return series[g].name;
}

std::uint16_t
TimelineSampler::gaugeTrack(std::size_t g) const
{
    VIRTSIM_ASSERT(g < series.size(), "gauge index out of range");
    return series[g].track;
}

std::int64_t
TimelineSampler::gaugeLive(std::size_t g) const
{
    VIRTSIM_ASSERT(g < series.size(), "gauge index out of range");
    return series[g].live;
}

void
TimelineSampler::addRule(std::string name, std::string_view gauge,
                         std::int64_t threshold, Cycles minDuration)
{
    const int g = findGauge(gauge);
    VIRTSIM_ASSERT(g >= 0, "watchdog rule \"", name,
                   "\" references unknown gauge \"", gauge, "\"");
    Rule r;
    r.name = std::move(name);
    r.gauge = static_cast<std::uint32_t>(g);
    r.threshold = threshold;
    r.minDuration = minDuration;
    rules.push_back(std::move(r));
}

void
TimelineSampler::enable(Cycles period)
{
    VIRTSIM_ASSERT(period > 0, "timeline period must be positive");
    _period = period;
    _enabled = true;
    for (Series &s : series) {
        if (!s.samples)
            s.samples =
                std::make_unique<TimelineSample[]>(seriesCapacity);
    }
    if (!anomalyBuf)
        anomalyBuf = std::make_unique<Anomaly[]>(anomalyCapacity);
}

std::uint32_t
TimelineSampler::sampleCount(std::size_t g) const
{
    VIRTSIM_ASSERT(g < series.size(), "gauge index out of range");
    return series[g].used;
}

const TimelineSample *
TimelineSampler::samplesFor(std::size_t g) const
{
    VIRTSIM_ASSERT(g < series.size(), "gauge index out of range");
    return series[g].samples.get();
}

const std::string &
TimelineSampler::ruleName(std::uint32_t r) const
{
    VIRTSIM_ASSERT(r < rules.size(), "rule index out of range");
    return rules[r].name;
}

void
TimelineSampler::scheduleOn(EventQueue &eq)
{
    if (scheduled)
        return;
    scheduled = true;
    // Ticks land on period-aligned simulated timestamps so a reset
    // run (time rewound to zero) reproduces a fresh run exactly.
    const Cycles now = eq.now();
    const Cycles first =
        (now % _period == 0) ? now : ((now / _period) + 1) * _period;
    eq.scheduleAt(first, [this, &eq] { tick(eq); });
}

void
TimelineSampler::store(Series &s, Cycles now, std::int64_t value)
{
    // Change deduplication: a gauge that sits at the same level for
    // thousands of ticks costs one stored sample, which is also
    // exactly how Perfetto counter tracks render (value holds until
    // the next event).
    if (s.hasStored && s.lastStored == value)
        return;
    if (s.used >= seriesCapacity) {
        ++_dropped;
        return;
    }
    s.samples[s.used++] = TimelineSample{now, value};
    s.lastStored = value;
    s.hasStored = true;
}

void
TimelineSampler::evaluateRules(Cycles now)
{
    for (Rule &r : rules) {
        const std::uint32_t ri =
            static_cast<std::uint32_t>(&r - rules.data());
        const std::int64_t v = series[r.gauge].live;
        if (v < r.threshold) {
            if ((r.openAnomaly >= 0 || r.droppedOpen) && anomalyHook)
                anomalyHook(now, ri, false);
            r.above = false;
            r.openAnomaly = -1;
            r.droppedOpen = false;
            continue;
        }
        if (!r.above) {
            r.above = true;
            r.aboveSince = now;
            r.peak = v;
        } else if (v > r.peak) {
            r.peak = v;
        }
        if (now - r.aboveSince < r.minDuration)
            continue;
        if (r.openAnomaly >= 0) {
            Anomaly &a = anomalyBuf[r.openAnomaly];
            a.end = now;
            a.peak = r.peak;
        } else if (r.droppedOpen) {
            // Already accounted: a saturated buffer drops the whole
            // window once, not once per tick it stays above threshold.
        } else if (anomalyUsed < anomalyCapacity) {
            r.openAnomaly = static_cast<std::int32_t>(anomalyUsed);
            anomalyBuf[anomalyUsed++] =
                Anomaly{ri, r.aboveSince, now, r.peak};
            if (anomalyHook)
                anomalyHook(now, ri, true);
        } else {
            r.droppedOpen = true;
            ++_anomaliesDropped;
            if (anomalyHook)
                anomalyHook(now, ri, true);
        }
    }
}

void
TimelineSampler::addSampleHook(SampleHookFn fn)
{
    hooks.push_back(std::move(fn));
}

void
TimelineSampler::addPostSampleHook(SampleHookFn fn)
{
    postHooks.push_back(std::move(fn));
}

void
TimelineSampler::sampleTick(Cycles now)
{
    if (!_enabled)
        return;
    ++_ticks;
    for (SampleHookFn &h : hooks)
        h(now);
    for (Series &s : series) {
        const std::int64_t raw = s.fn();
        std::int64_t value = raw;
        if (s.kind == GaugeKind::Rate) {
            value = s.hasPrev ? raw - s.prev : 0;
            s.prev = raw;
            s.hasPrev = true;
        }
        s.live = value;
        store(s, now, value);
    }
    evaluateRules(now);
    for (SampleHookFn &h : postHooks)
        h(now);
}

void
TimelineSampler::tick(EventQueue &eq)
{
    scheduled = false;
    if (!_enabled)
        return;
    const Cycles now = eq.now();
    sampleTick(now);
    // step() retires the firing event before invoking it, so
    // pending() here counts only *other* live events: reschedule
    // while real work remains, and let run() drain otherwise.
    if (eq.pending() > 0) {
        scheduled = true;
        eq.scheduleAt(now + _period, [this, &eq] { tick(eq); });
    }
}

void
TimelineSampler::publishAnomalies(MetricsRegistry &metrics) const
{
    if (anomalyUsed == 0 && _anomaliesDropped == 0)
        return;
    if (anomalyUsed > 0)
        metrics.machine().counter(internTap("watchdog.anomalies"))
            .inc(anomalyUsed);
    if (_anomaliesDropped > 0)
        metrics.machine()
            .counter(internTap("watchdog.anomalies_dropped"))
            .inc(_anomaliesDropped);
    for (std::uint32_t i = 0; i < anomalyUsed; ++i) {
        const std::string name =
            "watchdog." + rules[anomalyBuf[i].rule].name;
        metrics.machine().counter(internTap(name)).inc(1);
    }
}

void
TimelineSampler::resetSeries()
{
    for (Series &s : series) {
        s.used = 0;
        s.lastStored = 0;
        s.hasStored = false;
        s.live = 0;
        s.prev = 0;
        s.hasPrev = false;
    }
    for (Rule &r : rules) {
        r.above = false;
        r.aboveSince = 0;
        r.peak = 0;
        r.openAnomaly = -1;
        r.droppedOpen = false;
    }
    anomalyUsed = 0;
    _anomaliesDropped = 0;
    _dropped = 0;
    _ticks = 0;
    scheduled = false;
}

void
TimelineSampler::clear()
{
    series.clear();
    rules.clear();
    hooks.clear();
    postHooks.clear();
    anomalyHook.reset();
    anomalyBuf.reset();
    anomalyUsed = 0;
    _anomaliesDropped = 0;
    _dropped = 0;
    _ticks = 0;
    _period = 0;
    _enabled = false;
    scheduled = false;
}

std::string
TimelineSampler::renderJson(const Frequency &freq) const
{
    std::ostringstream os;
    os << "{\"schema\":\"virtsim-timeline-1\""
       << ",\"period_cycles\":" << _period
       << ",\"frequency_ghz\":" << tlFormatUs(freq.ghz())
       << ",\"ticks\":" << _ticks
       << ",\"dropped_samples\":" << _dropped << ",\"series\":[";
    bool firstSeries = true;
    for (const Series &s : series) {
        if (!firstSeries)
            os << ",";
        firstSeries = false;
        os << "{\"name\":\"" << tlJsonEscape(s.name) << "\""
           << ",\"track\":" << s.track << ",\"kind\":\""
           << kindName(s.kind) << "\",\"samples\":[";
        for (std::uint32_t i = 0; i < s.used; ++i) {
            if (i)
                os << ",";
            os << "[" << s.samples[i].when << ","
               << s.samples[i].value << "]";
        }
        os << "]}";
    }
    os << "],\"anomaly_count\":" << anomalyUsed
       << ",\"anomalies_dropped\":" << _anomaliesDropped
       << ",\"anomalies\":[";
    for (std::uint32_t i = 0; i < anomalyUsed; ++i) {
        if (i)
            os << ",";
        const Anomaly &a = anomalyBuf[i];
        os << "{\"rule\":\"" << tlJsonEscape(rules[a.rule].name)
           << "\",\"begin_cycles\":" << a.begin
           << ",\"end_cycles\":" << a.end << ",\"peak\":" << a.peak
           << "}";
    }
    os << "]}";
    return os.str();
}

std::string
TimelineSampler::renderCsv(const Frequency &freq) const
{
    std::string out = "series,track,kind,cycles,us,value\n";
    for (const Series &s : series) {
        for (std::uint32_t i = 0; i < s.used; ++i) {
            out += s.name;
            out += ",";
            out += std::to_string(s.track);
            out += ",";
            out += kindName(s.kind);
            out += ",";
            out += std::to_string(s.samples[i].when);
            out += ",";
            out += tlFormatUs(freq.us(s.samples[i].when));
            out += ",";
            out += std::to_string(s.samples[i].value);
            out += "\n";
        }
    }
    return out;
}

void
TimelineSampler::writeCounterEvents(std::ostream &os,
                                    const Frequency &freq) const
{
    for (const Series &s : series) {
        const std::string name = tlJsonEscape(s.name);
        for (std::uint32_t i = 0; i < s.used; ++i) {
            os << ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":"
               << tlFormatUs(freq.us(s.samples[i].when))
               << ",\"name\":\"" << name << "\",\"args\":{\"value\":"
               << s.samples[i].value << "}}";
        }
    }
}

} // namespace virtsim
