/**
 * @file
 * Explicit cross-shard channels for the sharded event kernel.
 *
 * Every cross-CPU interaction in the simulated machine already flows
 * through a small set of mechanisms with *nonzero modelled latency*:
 * IPIs (CostModel::ipiFlight), GIC list-register programming followed
 * by guest ack, the 10 GbE wire (Wire::oneWayLatency), and backend
 * worker wakeups. A ShardChannel names one such mechanism, declares
 * its minimum latency, and becomes the only way the owning component
 * schedules work across shard boundaries.
 *
 * The declared minimum latency is the *lookahead* of conservative
 * parallel discrete-event simulation (Chandy-Misra-Bryant family): if
 * every message from shard A to shard B arrives at least L cycles
 * after the event that sent it, then B can safely execute all events
 * earlier than clock(A) + L without waiting for A. The sharded kernel
 * (sim/shard.hh) aggregates the per-channel declarations into a
 * lane-to-lane lookahead matrix and computes each lane's safe horizon
 * from it.
 *
 * Sends through a channel whose endpoints live on the same lane
 * degenerate to a plain EventQueue::scheduleAt on that lane — exactly
 * the serial kernel's behavior, byte for byte. Cross-lane sends are
 * buffered in per-lane-pair mailboxes and merged deterministically at
 * the next synchronization round. Channel declarations are therefore
 * free when the simulation is not actually partitioned
 * (VIRTSIM_SHARDS=1, the default).
 */

#ifndef VIRTSIM_SIM_CHANNEL_HH
#define VIRTSIM_SIM_CHANNEL_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace virtsim {

class ShardedEventKernel;

/**
 * Identifier of a shard: a partition of the simulated world whose
 * components share one event lane. Convention (hw/machine.cc,
 * core/testbed.cc): shard 0 holds the device/wire/client side, shard
 * 1+i holds PhysicalCpu i. Several shards may map onto one lane
 * (laneOf); components coupled through zero-latency shared state must
 * map to the same lane.
 */
using ShardId = int;

/** Shard 0: NIC, wire, client model, timers. */
inline constexpr ShardId deviceShard = 0;

/** Wildcard source for channels any shard may send through (IPIs:
 *  the sender is whichever CPU executes the send). */
inline constexpr ShardId anyShard = -1;

/** Shard of PhysicalCpu `cpu` under the standard assignment. */
constexpr ShardId
cpuShard(PcpuId cpu)
{
    return 1 + cpu;
}

/**
 * One directed lane-to-lane edge of the channel graph, as aggregated
 * by the kernel from every channel declaration: `peer` is the other
 * endpoint's lane and `look` the tightest declared lookahead on the
 * edge. The kernel keeps per-lane in/out adjacency lists of these so
 * the per-round LBTS propagation walks O(edges declared), not the
 * full lane × lane matrix — the matrix is only the build-time
 * aggregation structure, never the per-round working set.
 */
struct LaneEdge
{
    int peer;
    Cycles look;
};

/**
 * One declared cross-shard edge. Obtained from
 * ShardedEventKernel::channel(); never constructed directly. Sends
 * are deterministic for a fixed workload regardless of how shards map
 * to lanes or threads.
 */
class ShardChannel
{
  public:
    ShardChannel(const ShardChannel &) = delete;
    ShardChannel &operator=(const ShardChannel &) = delete;

    /**
     * Schedule fn at absolute time `when` on the destination shard's
     * lane.
     * @pre when is at least the sending lane's current time plus
     *      lookahead() — the declared minimum latency is a contract,
     *      checked, not a hint.
     * @return the event id when the send was same-lane (cancellable,
     *         exactly scheduleAt); invalidEventId for cross-lane
     *         sends, which cannot be cancelled once in flight.
     */
    EventId
    send(Cycles when, EventFn fn)
    {
        return send(when, TapId(), std::move(fn));
    }

    /** Labeled variant; the label feeds the kernel profiler exactly
     *  as the labeled scheduleAt does. */
    EventId send(Cycles when, TapId label, EventFn fn);

    const std::string &name() const { return _name; }
    ShardId srcShard() const { return src; }
    ShardId dstShard() const { return dst; }

    /** Declared minimum latency (the conservative lookahead). */
    Cycles lookahead() const { return look; }

    /** Whether the endpoints resolved to different lanes (if not,
     *  every send is a plain same-lane scheduleAt). */
    bool crossLane() const { return _crossLane; }

    /** Lane messages through this channel arrive on. */
    int dstLane() const { return _dstLane; }

    /** Messages sent so far (same-lane and cross-lane alike). */
    std::uint64_t
    sent() const
    {
        return _sent.load(std::memory_order_relaxed);
    }

  private:
    friend class ShardedEventKernel;

    ShardChannel(ShardedEventKernel *kern, std::string name,
                 ShardId src, ShardId dst, Cycles look, int dstLane,
                 bool crossLane)
        : kern(kern), _name(std::move(name)), src(src), dst(dst),
          look(look), _dstLane(dstLane), _crossLane(crossLane)
    {
    }

    ShardedEventKernel *kern;
    std::string _name;
    ShardId src;
    ShardId dst;
    Cycles look;
    int _dstLane;
    bool _crossLane;
    /** Relaxed: from-any channels (IPIs) are sent through by several
     *  lanes concurrently; the total is order-independent. */
    std::atomic<std::uint64_t> _sent{0};
};

} // namespace virtsim

#endif // VIRTSIM_SIM_CHANNEL_HH
