/**
 * @file
 * Minimal logging and error-exit helpers, following the gem5
 * fatal()/panic() distinction:
 *
 *  - panic():  an internal simulator invariant was violated (a bug in
 *              virtsim itself). Aborts, so a debugger or core dump can
 *              capture the state.
 *  - fatal():  the *user* asked for something impossible (bad
 *              configuration, invalid parameters). Exits cleanly with
 *              an error code.
 *  - warn()/inform(): advisory output on stderr; never stop the run.
 */

#ifndef VIRTSIM_SIM_LOG_HH
#define VIRTSIM_SIM_LOG_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace virtsim {

namespace log_detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace log_detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: "
              << log_detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::abort();
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::cerr << "fatal: "
              << log_detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::cerr << "warn: "
              << log_detail::concat(std::forward<Args>(args)...)
              << std::endl;
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::cerr << "info: "
              << log_detail::concat(std::forward<Args>(args)...)
              << std::endl;
}

/** panic() unless the given invariant holds. */
#define VIRTSIM_ASSERT(cond, ...)                                        \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::virtsim::panic("assertion failed: ", #cond, " ",           \
                             ::virtsim::log_detail::concat(__VA_ARGS__), \
                             " (", __FILE__, ":", __LINE__, ")");        \
        }                                                                \
    } while (0)

} // namespace virtsim

#endif // VIRTSIM_SIM_LOG_HH
