/**
 * @file
 * Deterministic parallel sweep runner over a persistent worker pool.
 *
 * The large experiment sweeps — Figure 4's twelve workloads x five
 * configurations, the ablation grids, the Table II microbenchmark
 * matrix — are embarrassingly parallel: every cell builds its own
 * Testbed with its own EventQueue and PRNG and shares nothing with
 * its neighbors. parallelSweep() farms such cells out to a pool of
 * host threads while keeping the output *bit-identical* to a serial
 * run:
 *
 *  - tasks are handed out by an atomic index (no work stealing, no
 *    reordering queues), and
 *  - each task commits its result into results[i] for input index i,
 *    so the assembled vector is independent of execution
 *    interleaving — any scheduling of the same tasks yields the same
 *    output bytes.
 *
 * Worker threads are created lazily on the first parallel sweep and
 * persist for the life of the process: back-to-back sweeps (the
 * bench harness, parameter grids, repeated Figure 4 runs) reuse the
 * same threads instead of paying spawn/join per call. Reuse also
 * keeps each worker's thread_local state alive across sweeps, which
 * the testbed cache (core/testbed.hh) builds on. A sweep that throws
 * sets an abort flag so the remaining task indices are abandoned
 * rather than drained; the first exception is rethrown on the
 * calling thread.
 *
 * Thread count comes from the VIRTSIM_JOBS environment variable
 * (default: std::thread::hardware_concurrency). VIRTSIM_JOBS=1
 * forces the plain serial path — same code the harness always ran —
 * which is also used automatically for single-item sweeps and for
 * sweeps nested inside a sweep task.
 */

#ifndef VIRTSIM_SIM_SWEEP_HH
#define VIRTSIM_SIM_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace virtsim {

class MetricsRegistry;

/** Worker-thread count a sweep will use: VIRTSIM_JOBS if set (must
 *  be a positive integer), else hardware_concurrency, else 1. Read
 *  per call so tests and benches can adjust the environment. */
int sweepJobs();

/**
 * Counters describing the persistent sweep pool, for tests and for
 * publishing into a MetricsRegistry. All values are cumulative over
 * the life of the process.
 */
struct SweepPoolStats
{
    /** Persistent worker threads currently alive (never shrinks). */
    std::size_t threads = 0;
    /** runIndexed() calls that dispatched through the pool. */
    std::uint64_t parallelSweeps = 0;
    /** runIndexed() calls that took the serial path. */
    std::uint64_t serialSweeps = 0;
    /** Tasks completed without throwing (pool and serial paths). */
    std::uint64_t tasksExecuted = 0;
    /** Worker job pickups (how often a sleeping worker was handed a
     *  sweep; compare against parallelSweeps to see reuse). */
    std::uint64_t workerWakes = 0;
};

/** Snapshot of the pool counters. */
SweepPoolStats sweepPoolStats();

/** True on a thread currently executing a sweep task. Nested
 *  parallelism guards (the sweep runner itself, the sharded event
 *  kernel) use this to fall back to their serial paths — which are
 *  byte-identical by construction — instead of oversubscribing the
 *  host from inside a pool worker. */
bool inSweepTask();

/**
 * Publish the pool counters into machine-domain metrics
 * ("sweep.pool.threads", "sweep.pool.parallel_sweeps", ...).
 * Explicit opt-in: pool totals are process-wide and scheduling
 * dependent, so they are never mixed into per-testbed snapshots
 * (which must stay byte-identical across VIRTSIM_JOBS).
 */
void publishSweepPoolStats(MetricsRegistry &metrics);

namespace sweep_detail {

/** Run task(0..n-1), spreading across up to jobs pool workers;
 *  serial when jobs <= 1. A throwing task aborts the remaining
 *  indices; the first exception is rethrown after the sweep quiesces. */
void runIndexed(std::size_t n,
                const std::function<void(std::size_t)> &task,
                int jobs);

} // namespace sweep_detail

/**
 * Evaluate fn(0), ..., fn(n-1) — each must be independent of the
 * others — and return their results in input order.
 *
 * Result types must be default-constructible and movable. The output
 * is byte-identical for every jobs value, 1 included.
 */
template <typename Fn>
auto
parallelSweepIndexed(std::size_t n, Fn fn, int jobs = sweepJobs())
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(n);
    sweep_detail::runIndexed(
        n, [&](std::size_t i) { results[i] = fn(i); }, jobs);
    return results;
}

/**
 * Map fn over items in parallel; results come back in item order.
 */
template <typename Item, typename Fn>
auto
parallelSweep(const std::vector<Item> &items, Fn fn,
              int jobs = sweepJobs())
    -> std::vector<decltype(fn(items.front()))>
{
    return parallelSweepIndexed(
        items.size(), [&](std::size_t i) { return fn(items[i]); },
        jobs);
}

} // namespace virtsim

#endif // VIRTSIM_SIM_SWEEP_HH
