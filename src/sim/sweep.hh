/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * The large experiment sweeps — Figure 4's twelve workloads x five
 * configurations, the ablation grids, the Table II microbenchmark
 * matrix — are embarrassingly parallel: every cell builds its own
 * Testbed with its own EventQueue and PRNG and shares nothing with
 * its neighbors. parallelSweep() farms such cells out to a fixed
 * pool of host threads while keeping the output *bit-identical* to a
 * serial run:
 *
 *  - tasks are handed out by an atomic index (no work stealing, no
 *    reordering queues), and
 *  - each task commits its result into results[i] for input index i,
 *    so the assembled vector is independent of execution
 *    interleaving — any scheduling of the same tasks yields the same
 *    output bytes.
 *
 * Thread count comes from the VIRTSIM_JOBS environment variable
 * (default: std::thread::hardware_concurrency). VIRTSIM_JOBS=1
 * forces the plain serial path — same code the harness always ran —
 * which is also used automatically for single-item sweeps.
 */

#ifndef VIRTSIM_SIM_SWEEP_HH
#define VIRTSIM_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace virtsim {

/** Worker-thread count a sweep will use: VIRTSIM_JOBS if set (must
 *  be a positive integer), else hardware_concurrency, else 1. Read
 *  per call so tests and benches can adjust the environment. */
int sweepJobs();

namespace sweep_detail {

/** Run task(0..n-1), spreading across up to jobs threads; serial
 *  when jobs <= 1. Rethrows the first task exception after joining. */
void runIndexed(std::size_t n,
                const std::function<void(std::size_t)> &task,
                int jobs);

} // namespace sweep_detail

/**
 * Evaluate fn(0), ..., fn(n-1) — each must be independent of the
 * others — and return their results in input order.
 *
 * Result types must be default-constructible and movable. The output
 * is byte-identical for every jobs value, 1 included.
 */
template <typename Fn>
auto
parallelSweepIndexed(std::size_t n, Fn fn, int jobs = sweepJobs())
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(n);
    sweep_detail::runIndexed(
        n, [&](std::size_t i) { results[i] = fn(i); }, jobs);
    return results;
}

/**
 * Map fn over items in parallel; results come back in item order.
 */
template <typename Item, typename Fn>
auto
parallelSweep(const std::vector<Item> &items, Fn fn,
              int jobs = sweepJobs())
    -> std::vector<decltype(fn(items.front()))>
{
    return parallelSweepIndexed(
        items.size(), [&](std::size_t i) { return fn(items[i]); },
        jobs);
}

} // namespace virtsim

#endif // VIRTSIM_SIM_SWEEP_HH
