/**
 * @file
 * Structured observability: interned trace taps, a fixed-capacity
 * ring-buffer trace sink with span events, a hierarchical metrics
 * registry, and an event-kernel dispatch profiler.
 *
 * This subsystem replaces the old string-keyed Tracer and is the
 * simulator's substitute for the paper's measurement apparatus:
 * instrumented tcpdump with synchronized ARM architected counters
 * (Table V), the world-switch instrumentation behind Table III, and
 * the per-operation cycle accounting of Table II. Three design rules
 * keep it safe in the hot paths PR 1 optimized:
 *
 *  - Tap names are interned once into small integer TapIds; stamping
 *    a record is a branch plus two stores into a preallocated ring —
 *    no allocation, no string compare.
 *  - The ring has fixed capacity and overwrites the oldest records
 *    when full; overwritten records are *counted* (dropped()), never
 *    silently lost.
 *  - Metrics counters are plain array slots indexed by TapId;
 *    snapshots are sorted by name so output is deterministic even
 *    when taps were interned from parallel sweep workers in
 *    nondeterministic order.
 *
 * Traces export in the Chrome trace-event JSON format, loadable in
 * ui.perfetto.dev, with one timeline track per physical CPU.
 */

#ifndef VIRTSIM_SIM_PROBE_HH
#define VIRTSIM_SIM_PROBE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/lane.hh"
#include "sim/latency.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace virtsim {

struct ShardProfile;
class FlightRecorder;

/**
 * Interned identifier of a trace tap (a named instrumentation point
 * such as "host.datalink.rx" or "kvm.exit"). Value 0 never names a
 * tap. Intern once (at static-init time or on first use) and stamp
 * with the id; the hot path never touches the intern table.
 */
class TapId
{
  public:
    constexpr TapId() = default;

    constexpr bool valid() const { return idx != 0; }
    constexpr std::uint32_t raw() const { return idx; }

    /** Rebuild an id from raw() — for containers indexed by raw id
     *  (MetricsDomain, EventKernelProfiler), not for minting ids. */
    static constexpr TapId
    fromRaw(std::uint32_t raw)
    {
        return TapId(raw);
    }

    friend constexpr bool operator==(TapId a, TapId b) = default;

  private:
    friend TapId internTap(std::string_view name);
    explicit constexpr TapId(std::uint32_t i) : idx(i) {}

    std::uint32_t idx = 0;
};

/**
 * Intern a tap name, thread-safely. Idempotent: the same name always
 * returns the same id. Ids are assigned in interning order, which may
 * differ between runs under parallel sweeps — consumers must key
 * persistent output by *name* (MetricsRegistry::snapshot does).
 */
TapId internTap(std::string_view name);

/** Name of an interned tap ("?" for the invalid id). */
std::string tapName(TapId tap);

/** Number of interned taps (invalid id excluded). */
std::size_t internedTapCount();

/** Record shape: a point event, one end of a span, or one end of a
 *  cross-CPU causal edge (arg carries the edge token). */
enum class TraceKind : std::uint8_t
{
    Instant,
    Begin,
    End,
    EdgeOut, ///< causal edge leaves this track (IPI send, LR write)
    EdgeIn,  ///< causal edge arrives on this track (delivery, ack)
};

/** Coarse category of a trace record (Perfetto "cat" field). */
enum class TraceCat : std::uint8_t
{
    Tap,    ///< Table V style packet timestamp tap
    Switch, ///< world switch / trap / hypercall legs
    Irq,    ///< interrupt delivery and list-register maintenance
    Io,     ///< virtio / grant-table / event-channel I/O
    Sched,  ///< event-kernel scheduling
    Op,     ///< one guest-visible operation (hypercall, vIPI, I/O)
};

const char *to_string(TraceCat cat);

/** Track id for records not tied to a physical CPU. */
inline constexpr std::uint16_t noTrack = 0xffff;

/** One trace record. 24 bytes, POD. */
struct TraceRecord
{
    Cycles when;       ///< simulated time in cycles
    std::uint64_t arg; ///< flow id, cycle cost, irq number, ...
    TapId tap;
    std::uint16_t track; ///< physical CPU, or noTrack
    TraceKind kind;
    TraceCat cat;
};

static_assert(sizeof(TraceRecord) == 24, "TraceRecord grew");

/** Feed one record into a flight recorder's lane-local window ring.
 *  Defined in sim/flight.cc; declared here so TraceSink::push can tee
 *  without including the flight header (probe.hh sits below it). */
void flightRecordBridge(FlightRecorder &fr, const TraceRecord &r);

/**
 * Streaming consumer of trace records. Attach one to a TraceSink with
 * setObserver() to see every record as it is pushed — the basis of
 * online analysis (sim/attrib) that never needs the ring to retain
 * the whole run. Called only when the sink is enabled, on the thread
 * doing the stamping (one sink per sweep worker, so no locking).
 */
class TraceObserver
{
  public:
    virtual ~TraceObserver() = default;
    virtual void onTraceRecord(const TraceRecord &r) = 0;
};

/**
 * Fixed-capacity ring buffer of trace records, partitioned into
 * lane-local segments. Disabled by default: every stamping call is
 * then a single predictable branch. When a segment is full its oldest
 * records are overwritten and counted in dropped() — overflow is
 * never silent (the exporter and reports surface the count).
 *
 * Lane model: the sink owns one ring segment per kernel lane
 * (prepareForParallel(); one segment — the classic serial shape — by
 * default). A stamping call writes only the calling thread's own
 * segment (currentExecLane(), clamped to segment 0 for setup-context
 * stamping), so concurrent lanes never synchronize, share a cache
 * line, or contend while stamping. Exports visit the segments through
 * a canonical merge (see forEachMerged) whose order is a pure
 * function of the record multiset, making exported bytes identical at
 * every lane count as long as no records were dropped. Capacity is
 * per segment.
 */
class TraceSink
{
  public:
    static constexpr std::size_t defaultCapacity = 1u << 15;

    /** Edge tokens reserve this many low bits for the issuing lane,
     *  so per-lane token sequences never collide. */
    static constexpr int laneTokenBits = 10;
    static constexpr int maxLanes = 1 << laneTokenBits;

    /** Start recording (allocates the ring on first use). */
    void
    enable()
    {
        if (cap == 0)
            setCapacity(defaultCapacity);
        _enabled = true;
    }

    void disable() { _enabled = false; }
    bool enabled() const { return _enabled; }

    /**
     * Resize each lane segment (rounded up to a power of two) and
     * drop all records. Call before enabling, or between runs.
     */
    void setCapacity(std::size_t records);

    /** Capacity of each lane segment. */
    std::size_t capacity() const { return cap; }

    /**
     * Partition the sink into `lanes` ring segments (dropping any
     * held records), so each kernel lane stamps into its own segment
     * with zero cross-lane synchronization. Call from the setup
     * thread, before lanes run. A single-lane world needs no call:
     * the default single segment is the serial shape.
     */
    void prepareForParallel(int lanes);

    int laneCount() const { return static_cast<int>(segs.size()); }

    /** Drop all records, the dropped/truncated counts and the edge
     *  token sequences; capacity, segmentation, the enabled flag and
     *  any attached observer are retained. */
    void
    clear()
    {
        for (Seg &s : segs) {
            s.head = 0;
            s.total = 0;
            s.truncated = 0;
            s.edgeSeq = 0;
            s.obsMark = 0;
        }
    }

    /** Records currently retained, across all segments. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Seg &s : segs)
            n += segSize(s);
        return n;
    }

    /** Records ever written (retained + dropped), all segments. */
    std::uint64_t
    total() const
    {
        std::uint64_t n = 0;
        for (const Seg &s : segs)
            n += s.total;
        return n;
    }

    /** Records overwritten because a segment wrapped. */
    std::uint64_t
    dropped() const
    {
        std::uint64_t n = 0;
        for (const Seg &s : segs)
            n += s.total > cap ? s.total - cap : 0;
        return n;
    }

    /**
     * Spans whose opening edge (a Begin, or the `from` stamp of a
     * Tap pair) was overwritten by ring wrap. Post-hoc pairing such
     * as between() would otherwise silently pair the surviving close
     * with a *later* open; this counter makes that hazard visible —
     * reports and the exporter surface it, and Probe::syncTraceHealth
     * publishes it into the metrics snapshot.
     */
    std::uint64_t
    truncatedSpans() const
    {
        std::uint64_t n = 0;
        for (const Seg &s : segs)
            n += s.truncated;
        return n;
    }

    /** Attach (or detach, with nullptr) a streaming observer that
     *  sees every record pushed while the sink is enabled. */
    void setObserver(TraceObserver *o) { obs = o; }

    TraceObserver *observer() const { return obs; }

    /**
     * Tee every pushed record into a flight recorder's sliding window
     * (or stop, with nullptr). Unlike observers there is no deferred
     * mode: the recorder keeps lane-partitioned rings of its own, so
     * the tee is lane-local and race-free from concurrent stamping
     * lanes.
     */
    void setFlightRecorder(FlightRecorder *fr) { flight_ = fr; }

    FlightRecorder *flightRecorder() const { return flight_; }

    /**
     * Switch observer dispatch from inline (at every push, on the
     * stamping thread — the classic streaming mode) to deferred:
     * records accumulate in their lane segments and are delivered in
     * canonical merged order by flushObserver(), which the sharded
     * kernel calls at every barrier round. Multi-lane worlds MUST use
     * deferred mode — inline dispatch from concurrent lanes would
     * race on the observer.
     */
    void setObserverDeferred(bool on) { obsDeferred = on; }
    bool observerDeferred() const { return obsDeferred; }

    /**
     * Deliver every not-yet-delivered record to the observer, merged
     * across segments in canonical order. Call between rounds (or
     * after a run) from one thread. Records a segment overwrote
     * before a flush reached them are lost to the observer and show
     * up in dropped() — flush at least once per ring-fill to stream
     * losslessly.
     */
    void flushObserver();

    /** @name Stamping
     *
     * Hot path. With the sink disabled — the default for every sweep
     * cell unless VIRTSIM_TRACE/VIRTSIM_FLAME asked for records —
     * each call is a single predictable branch and nothing else: no
     * stores, no allocation, no observer dispatch. The [[likely]]
     * hints bias codegen for that dead-probe path; enabling tracing
     * is the explicitly-paid-for slow mode. When enabled, a call is
     * a branch plus stores into the preallocated ring (still no
     * allocation).
     */
    ///@{
    /** Table V style tap: a named timestamp bound to a flow id. */
    void
    stamp(Cycles when, std::uint64_t flow, TapId tap,
          std::uint16_t track = noTrack)
    {
        if (!_enabled) [[likely]]
            return;
        push(TraceRecord{when, flow, tap, track, TraceKind::Instant,
                         TraceCat::Tap});
    }

    /** A categorized point event. */
    void
    instant(Cycles when, TapId tap, TraceCat cat,
            std::uint16_t track = noTrack, std::uint64_t arg = 0)
    {
        if (!_enabled) [[likely]]
            return;
        push(TraceRecord{when, arg, tap, track, TraceKind::Instant,
                         cat});
    }

    /** Open a span on a track. Must be matched by end() with the
     *  same tap and track. */
    void
    begin(Cycles when, TapId tap, TraceCat cat,
          std::uint16_t track = noTrack, std::uint64_t arg = 0)
    {
        if (!_enabled) [[likely]]
            return;
        push(TraceRecord{when, arg, tap, track, TraceKind::Begin, cat});
    }

    /** Close the innermost open span with this tap on this track. */
    void
    end(Cycles when, TapId tap, TraceCat cat,
        std::uint16_t track = noTrack, std::uint64_t arg = 0)
    {
        if (!_enabled) [[likely]]
            return;
        push(TraceRecord{when, arg, tap, track, TraceKind::End, cat});
    }

    /** Emit a complete [t0, t1] span in one call. */
    void
    span(Cycles t0, Cycles t1, TapId tap, TraceCat cat,
         std::uint16_t track = noTrack, std::uint64_t arg = 0)
    {
        if (!_enabled) [[likely]]
            return;
        push(TraceRecord{t0, arg, tap, track, TraceKind::Begin, cat});
        push(TraceRecord{t1, arg, tap, track, TraceKind::End, cat});
    }

    /**
     * Open a cross-CPU causal edge (IPI send, LR write, wire tx,
     * backend wakeup) and return its token. The token travels with
     * the simulated payload and is redeemed by edgeIn() where the
     * effect lands, linking spans on different tracks into one causal
     * graph. A token is (per-lane sequence << laneTokenBits) | lane —
     * nonzero, never reused across lanes without any cross-lane
     * counter, reset by clear(). Token *values* depend on the lane
     * partition; exporters renumber flows by first appearance in
     * canonical merged order, which does not.
     * @return 0 when disabled (edgeIn ignores token 0).
     */
    std::uint64_t
    edgeOut(Cycles when, TapId tap, TraceCat cat,
            std::uint16_t track = noTrack)
    {
        if (!_enabled) [[likely]]
            return 0;
        Seg &s = laneSeg();
        const std::uint64_t token =
            (++s.edgeSeq << laneTokenBits) |
            static_cast<std::uint64_t>(&s - segs.data());
        push(s, TraceRecord{when, token, tap, track, TraceKind::EdgeOut,
                            cat});
        return token;
    }

    /** Close a causal edge where its effect lands. No-op for token 0
     *  (edge opened while the sink was disabled). */
    void
    edgeIn(Cycles when, std::uint64_t token, TapId tap, TraceCat cat,
           std::uint16_t track = noTrack)
    {
        if (!_enabled || token == 0) [[likely]]
            return;
        push(TraceRecord{when, token, tap, track, TraceKind::EdgeIn,
                         cat});
    }
    ///@}

    /** @name Analysis */
    ///@{
    /** i-th retained record, i in [0, size()): segment concatenation
     *  order — segment 0 in write order, then segment 1, and so on.
     *  With one segment (the classic serial shape) this is exactly
     *  historical write order. */
    const TraceRecord &
    at(std::size_t i) const
    {
        for (const Seg &s : segs) {
            const std::size_t n = segSize(s);
            if (i < n)
                return s.ring[s.total <= cap
                                  ? i
                                  : (s.head + i) & (cap - 1)];
            i -= n;
        }
        VIRTSIM_ASSERT(false, "TraceSink::at(): index out of range");
        return segs[0].ring[0];
    }

    /** Visit retained records in concatenation order (see at()). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            fn(at(i));
    }

    /** Visit only records written at or after a total() watermark
     *  taken earlier (records before it may have been dropped).
     *  Single-segment sinks only — post-hoc incremental analysis of
     *  classic worlds; lane-partitioned sinks stream through the
     *  deferred observer instead. */
    template <typename Fn>
    void
    forEachSince(std::uint64_t mark, Fn &&fn) const
    {
        VIRTSIM_ASSERT(segs.size() == 1,
                       "forEachSince() needs a single-segment sink");
        const Seg &s = segs[0];
        const std::uint64_t first = s.total - segSize(s);
        const std::uint64_t from = mark > first ? mark : first;
        for (std::uint64_t i = from; i < s.total; ++i)
            fn(at(static_cast<std::size_t>(i - first)));
    }

    /**
     * Visit every retained record, merged across segments in
     * canonical order: ascending (when, EdgeOut-before-other-kinds,
     * track, lane, per-lane write position). Under the stamping
     * contract that records sharing a track are stamped by a single
     * lane, ties inside one lane keep model order and cross-lane ties
     * cannot share a track — the order is a pure function of the
     * retained record multiset, so exports built from it are
     * byte-identical at every lane count. Cold path: sorts an index
     * of size() entries per call.
     */
    template <typename Fn>
    void
    forEachMerged(Fn &&fn) const
    {
        for (const MergeRef &m : mergeOrder())
            fn(segs[m.seg].ring[m.slot]);
    }

    /** First tap stamp of the given flow, if retained. */
    std::optional<Cycles> find(std::uint64_t flow, TapId tap) const;

    /**
     * Duration between two tap stamps of the same flow: the first
     * `from` stamp paired with the nearest *following* `to` stamp.
     * Repeated stamps of the same flow (retries, multi-packet
     * transactions) therefore pair up causally instead of matching a
     * stale earlier `to`.
     * @return nullopt if either stamp is missing.
     */
    std::optional<Cycles> between(std::uint64_t flow, TapId from,
                                  TapId to) const;
    ///@}

  private:
    /** One lane's ring segment. While lanes run it is written only by
     *  its lane's thread; segment 0 doubles as the setup-context
     *  segment (lane -1 clamps to it). */
    struct Seg
    {
        /** Ring storage, allocated uninitialized: slots beyond the
         *  retained count are never read, and skipping the zero-fill
         *  keeps per-run setup from faulting in pages the run never
         *  touches. */
        std::unique_ptr<TraceRecord[]> ring;
        std::size_t head = 0;        ///< next write position
        std::uint64_t total = 0;     ///< records ever written here
        std::uint64_t truncated = 0; ///< span opens lost to overwrite
        std::uint64_t edgeSeq = 0;   ///< last edge sequence issued
        std::uint64_t obsMark = 0;   ///< total already flushed to obs
    };

    /** Sort key for the canonical merge; see forEachMerged(). */
    struct MergeRef
    {
        Cycles when;
        std::uint64_t pos;     ///< per-segment absolute write index
        std::uint32_t seg;
        std::uint32_t slot;    ///< ring slot holding the record
        std::uint16_t track;
        std::uint8_t kindPrio; ///< 0 for EdgeOut, 1 otherwise
    };

    static bool mergeLess(const MergeRef &a, const MergeRef &b);

    /** Canonical visiting order over all retained records. */
    std::vector<MergeRef> mergeOrder() const;

    std::size_t
    segSize(const Seg &s) const
    {
        return s.total < cap ? static_cast<std::size_t>(s.total) : cap;
    }

    /** The calling thread's segment: its execution lane, clamped to
     *  segment 0 for setup-context stamping (lane -1) and for sinks
     *  never partitioned by prepareForParallel(). */
    Seg &
    laneSeg()
    {
        const int l = currentExecLane();
        const std::size_t i =
            (l < 1 || static_cast<std::size_t>(l) >= segs.size())
                ? 0
                : static_cast<std::size_t>(l);
        return segs[i];
    }

    void
    push(Seg &s, const TraceRecord &r)
    {
        if (s.total >= cap) {
            // About to overwrite: losing a span's opening edge makes
            // post-hoc pairing unsound, so count it instead of
            // letting between()/analysis mispair silently.
            const TraceRecord &old = s.ring[s.head];
            if (old.kind == TraceKind::Begin ||
                (old.kind == TraceKind::Instant &&
                 old.cat == TraceCat::Tap)) {
                ++s.truncated;
            }
        }
        s.ring[s.head] = r;
        s.head = (s.head + 1) & (cap - 1);
        ++s.total;
        if (flight_)
            flightRecordBridge(*flight_, r);
        if (obs && !obsDeferred)
            obs->onTraceRecord(r);
    }

    void push(const TraceRecord &r) { push(laneSeg(), r); }

    std::vector<Seg> segs = std::vector<Seg>(1);
    std::size_t cap = 0; ///< per-segment capacity, power of two
    TraceObserver *obs = nullptr; ///< streaming consumer, not owned
    FlightRecorder *flight_ = nullptr; ///< window tee, not owned
    bool obsDeferred = false;     ///< deliver at flushObserver() only
    bool _enabled = false;
};

/**
 * Serialize a sink as Chrome trace-event JSON ("traceEvents" array),
 * loadable in ui.perfetto.dev / chrome://tracing. Each track becomes
 * a thread named "cpu<N>"; timestamps convert to microseconds at the
 * machine frequency. Dropped records are reported in the metadata.
 * Records are emitted in canonical merged order (forEachMerged) with
 * flow ids renumbered by first appearance, so the bytes are identical
 * at every lane count. When a timeline with stored samples is passed,
 * its series are merged in as counter tracks ("ph":"C") so gauges
 * render on the same Perfetto timeline as spans and flow arrows; a
 * shard profile likewise merges in as per-lane wall-time counter
 * tracks (host-time measurements — pass it only when its run-to-run
 * variance is acceptable in the output).
 */
void writeChromeTrace(std::ostream &os, const TraceSink &sink,
                      const Frequency &freq,
                      const std::string &process = "virtsim",
                      const TimelineSampler *timeline = nullptr,
                      const ShardProfile *profile = nullptr,
                      const FlightRecorder *flight = nullptr);

/** writeChromeTrace to a file, warning on stderr when the sink lost
 *  records (dropped or truncated spans) so a lossy trace is visible
 *  without opening the JSON. @return false if the file failed to
 *  open (the failure is also logged). */
bool exportChromeTrace(const std::string &path, const TraceSink &sink,
                       const Frequency &freq,
                       const std::string &process = "virtsim",
                       const TimelineSampler *timeline = nullptr,
                       const ShardProfile *profile = nullptr,
                       const FlightRecorder *flight = nullptr);

/** A copyable relaxed-atomic byte flag. Used for MetricsDomain's
 *  used-tap marks so concurrent shard lanes can register the same tap
 *  without a data race, while the flag array stays resizable (plain
 *  std::atomic is not copy-insertable into a vector). */
struct RelaxedFlag
{
    RelaxedFlag() = default;
    RelaxedFlag(const RelaxedFlag &o)
        : v(o.v.load(std::memory_order_relaxed))
    {}
    RelaxedFlag &
    operator=(const RelaxedFlag &o)
    {
        v.store(o.v.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        return *this;
    }

    void set() { v.store(1, std::memory_order_relaxed); }
    bool get() const { return v.load(std::memory_order_relaxed) != 0; }

    std::atomic<std::uint8_t> v{0};
};

/**
 * One level of the metrics hierarchy (machine, one VM, or one CPU):
 * counters and bounded-memory cycle histograms keyed by TapId.
 * Lookup is an array index off the tap id — cheap enough to leave on
 * unconditionally in hypervisor paths.
 *
 * Concurrency contract under the sharded kernel: after
 * prepareForParallel() the counter() path performs no vector growth,
 * so lanes may bump counters in a shared domain concurrently (Counter
 * is internally atomic, the used-flag store is relaxed atomic).
 * Histograms are NOT lane-safe and must stay confined to one lane.
 */
class MetricsDomain
{
  public:
    explicit MetricsDomain(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    Counter &
    counter(TapId tap)
    {
        const std::size_t i = tap.raw();
        if (i >= counters.size()) {
            // Growing under a concurrent reader is UB; once the
            // domain is prepared for parallel lanes a late-interned
            // tap is a deterministic failure, not a latent race.
            VIRTSIM_ASSERT(!parallelPrepared,
                           "tap ", i, " in domain '", _name,
                           "' first touched after ",
                           "prepareForParallel(); intern and warm ",
                           "taps before the parallel phase");
            counters.resize(i + 1);
            used.resize(counters.size());
        }
        used[i].set();
        return counters[i];
    }

    /**
     * Pre-size the tap-indexed arrays to cover ids [0, tapCount), so
     * later counter()/histogram() calls never reallocate. Must be
     * called (with internedTapCount()) before this domain is touched
     * from concurrent shard lanes.
     */
    void
    prepareForParallel(std::size_t tapCount)
    {
        if (counters.size() < tapCount + 1) {
            counters.resize(tapCount + 1);
            used.resize(counters.size());
        }
        if (hists.size() < tapCount + 1) {
            hists.resize(tapCount + 1);
            histUsed.resize(hists.size());
        }
        parallelPrepared = true;
    }

    /**
     * Lift the prepareForParallel() growth freeze once the parallel
     * phase is over (every lane joined). Post-run publishers may
     * then intern late taps again from a single thread — the shard
     * health counters use this: their per-lane rows are sparse and
     * lane-count-dependent, so pre-warming every possible name would
     * defeat the point of sparse publication.
     */
    void endParallel() { parallelPrepared = false; }

    HistogramStat &
    histogram(TapId tap)
    {
        const std::size_t i = tap.raw();
        if (i >= hists.size()) {
            VIRTSIM_ASSERT(!parallelPrepared,
                           "tap ", i, " in domain '", _name,
                           "' first touched after ",
                           "prepareForParallel(); intern and warm ",
                           "taps before the parallel phase");
            hists.resize(i + 1);
            histUsed.resize(hists.size());
        }
        histUsed[i].set();
        return hists[i];
    }

    /**
     * Read a counter's value without registering the tap. counter()
     * marks the tap used — which adds a row to every later snapshot —
     * so read-only consumers (timeline rate gauges sampling
     * world-switch counts) must use this instead. Returns 0 for taps
     * never registered in this domain. Never allocates.
     */
    std::uint64_t
    value(TapId tap) const
    {
        const std::size_t i = tap.raw();
        if (i >= counters.size() || !used[i].get())
            return 0;
        return counters[i].value();
    }

    /** Zero every counter and histogram; registered taps stay
     *  registered so reruns report the same rows. */
    void reset();

    /** Visit used counters as (tap, value). */
    template <typename Fn>
    void
    forEachCounter(Fn &&fn) const
    {
        for (std::size_t i = 0; i < counters.size(); ++i) {
            if (used[i].get()) {
                fn(TapId::fromRaw(static_cast<std::uint32_t>(i)),
                   counters[i].value());
            }
        }
    }

    /** Visit used histograms as (tap, stat). */
    template <typename Fn>
    void
    forEachHistogram(Fn &&fn) const
    {
        for (std::size_t i = 0; i < hists.size(); ++i) {
            if (histUsed[i].get()) {
                fn(TapId::fromRaw(static_cast<std::uint32_t>(i)),
                   hists[i]);
            }
        }
    }

  private:
    std::string _name;
    std::vector<Counter> counters;
    std::vector<RelaxedFlag> used;
    std::vector<HistogramStat> hists;
    std::vector<RelaxedFlag> histUsed;
    /** Once set, the tap-indexed arrays are frozen: growth would
     *  race with concurrent shard-lane readers. */
    bool parallelPrepared = false;
};

/** Deterministic, name-sorted snapshot of a MetricsRegistry. */
struct MetricsSnapshot
{
    struct CounterRow
    {
        std::string domain;
        std::string name;
        std::uint64_t value = 0;

        friend bool operator==(const CounterRow &,
                               const CounterRow &) = default;
    };

    struct HistogramRow
    {
        std::string domain;
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        double mean = 0.0;

        friend bool operator==(const HistogramRow &,
                               const HistogramRow &) = default;
    };

    std::vector<CounterRow> counters;   ///< sorted by (domain, name)
    std::vector<HistogramRow> histograms;

    friend bool operator==(const MetricsSnapshot &,
                           const MetricsSnapshot &) = default;

    /** All rows, one per line ("domain/name = value"). */
    std::string render() const;

    /** Compact per-VM digest for bench reports: traps, world
     *  switches, and virtual IRQs per VM domain. */
    std::string brief() const;

    /** JSON object {"counters": [...], "histograms": [...]}. */
    std::string toJson() const;
};

/**
 * Hierarchical metrics: one machine domain, one domain per VM and per
 * physical CPU. Domains are created on first use and never move.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();

    MetricsDomain &machine() { return *_machine; }

    /** Per-VM domain, keyed by VM name (rendered as "vm:<name>"). */
    MetricsDomain &vm(const std::string &name);

    /** Per-physical-CPU domain (rendered as "cpu:<N>"). */
    MetricsDomain &cpu(int pcpu);

    /**
     * Pre-create the per-CPU domains for nCpus CPUs and pre-size
     * every existing domain for all currently interned taps, so no
     * domain lookup or counter registration allocates afterwards.
     * Call once (from one thread) before shard lanes run in parallel;
     * has no effect on snapshot contents.
     */
    void prepareForParallel(int nCpus);

    /** Lift every domain's growth freeze after the parallel phase
     *  (see MetricsDomain::endParallel). */
    void endParallel();

    /** Zero all counters and histograms in every domain. */
    void reset();

    /** Drop every domain and registration, returning to the
     *  just-constructed state. Invalidates references previously
     *  handed out by machine()/vm()/cpu(); reset() keeps them valid
     *  but leaves zero-valued rows in snapshots. Testbed reuse uses
     *  clear() so a recycled world snapshots byte-identically to a
     *  fresh one. */
    void clear();

    MetricsSnapshot snapshot() const;

  private:
    // Domains are held by pointer so references handed out by
    // vm()/cpu() stay valid as the maps grow.
    std::unique_ptr<MetricsDomain> _machine;
    std::vector<std::pair<std::string, std::unique_ptr<MetricsDomain>>>
        _vms;
    std::vector<std::unique_ptr<MetricsDomain>> _cpus;
};

/**
 * Event-kernel dispatch profiler: per-label histograms of the latency
 * between an event's scheduling time and the simulated time it fired
 * (how far ahead work is scheduled — the shape of the event kernel's
 * workload). Installed into an EventQueue via setProfiler(); when not
 * installed the kernel pays one predictable branch per event.
 *
 * Under the sharded kernel, call prepareForParallel() and install the
 * profiler into every lane: record() then lands in the calling
 * thread's own lane-local histogram array (fixed-size — no growth, no
 * sharing, no synchronization) and the read side merges lanes into
 * one deterministic view (HistogramStat::merge is exact and
 * order-independent).
 */
class EventKernelProfiler
{
  public:
    void
    record(TapId label, Cycles wait)
    {
        const std::size_t i = label.raw();
        if (!laneHists.empty()) {
            const int l = currentExecLane();
            const std::size_t li =
                (l < 1 || static_cast<std::size_t>(l) >= laneHists.size())
                    ? 0
                    : static_cast<std::size_t>(l);
            std::vector<HistogramStat> &h = laneHists[li];
            VIRTSIM_ASSERT(i < h.size(),
                           "tap interned after "
                           "EventKernelProfiler::prepareForParallel()");
            h[i].add(wait);
            return;
        }
        if (i >= hists.size())
            hists.resize(i + 1);
        hists[i].add(wait);
    }

    /**
     * Partition into `lanes` histogram arrays pre-sized for every tap
     * interned so far (see internedTapCount()), so concurrent lanes
     * record without synchronization. Call from the setup thread
     * after all event labels are interned; recording a later-interned
     * label is a deterministic assert. reset() drops the partition.
     */
    void prepareForParallel(int lanes, std::size_t tapCount);

    /**
     * Histogram for a label, or null if never recorded. Lanes merged;
     * the pointer aliases a scratch slot that the next histogram()
     * call reuses, so copy (or finish reading) before asking for
     * another label.
     */
    const HistogramStat *histogram(TapId label) const;

    void
    reset()
    {
        hists.clear();
        laneHists.clear();
    }

    /** One line per label, sorted by name; the invalid label renders
     *  as "(unlabeled)". Lanes merged. */
    std::string render() const;

  private:
    /** Lanes-merged histogram for raw id i (count 0 if never hit). */
    HistogramStat mergedAt(std::size_t i) const;

    std::size_t labelLimit() const;

    std::vector<HistogramStat> hists; ///< serial mode, by raw tap id
    /** Parallel mode: [lane][raw tap id], fixed-size after
     *  prepareForParallel(). Non-empty iff parallel mode is armed. */
    std::vector<std::vector<HistogramStat>> laneHists;
    mutable HistogramStat mergeScratch; ///< histogram() return slot
};

/**
 * The observability bundle a Machine owns: trace sink + metrics +
 * event-kernel profiler + timeline sampler + request-latency tracker,
 * reset together between workload runs.
 */
struct Probe
{
    TraceSink trace;
    MetricsRegistry metrics;
    EventKernelProfiler profiler;
    TimelineSampler timeline;
    RequestTracker latency;

    void
    reset()
    {
        trace.clear();
        metrics.reset();
        profiler.reset();
        timeline.resetSeries();
        latency.reset();
    }

    /**
     * Publish trace-ring health (dropped records, truncated spans)
     * into machine-domain counters so a metrics snapshot carries the
     * loss alongside the numbers it may have biased. Counters are
     * only created when the count is nonzero — clean runs snapshot
     * byte-identically with or without this call.
     */
    void syncTraceHealth();

    /**
     * Intern the trace-health tap names now. A world that calls
     * MetricsRegistry::prepareForParallel() must warm these first:
     * syncTraceHealth() runs at export time, long after the domains
     * froze their tap arrays, and a lossy trace would otherwise be
     * the first (fatal) late intern. Interning adds no counter rows,
     * so clean snapshots are unchanged.
     */
    void warmTraceHealth();
};

} // namespace virtsim

#endif // VIRTSIM_SIM_PROBE_HH
