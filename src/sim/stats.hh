/**
 * @file
 * Statistics primitives: counters and sample accumulators.
 *
 * The paper reports per-operation cycle counts (Tables II and III),
 * per-transaction microsecond decompositions (Table V), and normalized
 * throughput ratios (Figure 4). SampleStat covers all three: it keeps
 * every sample so exact means, percentiles and min/max can be
 * extracted, which is cheap at the scale of these experiments
 * (thousands to low millions of samples).
 */

#ifndef VIRTSIM_SIM_STATS_HH
#define VIRTSIM_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace virtsim {

/**
 * A monotonically increasing event counter.
 *
 * Increments are relaxed atomics so counters shared across sharded
 * kernel lanes (e.g. a Machine's StatRegistry fed from several CPU
 * shards) stay exact without locking; addition commutes, so the final
 * value is independent of thread interleaving and runs remain
 * byte-identical at every VIRTSIM_SHARDS setting. Copy semantics are
 * value snapshots (needed by the std::map registry nodes).
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &o)
        : _value(o._value.load(std::memory_order_relaxed))
    {}
    Counter &
    operator=(const Counter &o)
    {
        _value.store(o._value.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return *this;
    }

    void
    inc(std::uint64_t by = 1)
    {
        _value.fetch_add(by, std::memory_order_relaxed);
    }
    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }
    void reset() { _value.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * Accumulates a set of samples and answers summary queries.
 *
 * Exact but unbounded: every sample is retained, so means and
 * percentiles are exact while memory grows linearly with the sample
 * count. That is the right trade for the paper-table experiments
 * (thousands to low millions of samples, then the exact numbers go in
 * a table). Streams that scale with fleet size or run length belong
 * in LatencyHistogram (sim/latency) — bounded memory, <=0.79%
 * quantile error — or HistogramStat below; add() asserts the
 * maxSamples ceiling so an accidental unbounded feed fails loudly
 * instead of quietly growing the heap.
 */
class SampleStat
{
  public:
    /** Hard ceiling on retained samples (32 MB of doubles). */
    static constexpr std::size_t maxSamples = std::size_t{1} << 22;

    void add(double sample);

    std::size_t count() const { return samples.size(); }
    bool empty() const { return samples.empty(); }

    /** Arithmetic mean. @pre !empty() */
    double mean() const;

    /** Smallest sample. @pre !empty() */
    double min() const;

    /** Largest sample. @pre !empty() */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return _sum; }

    /** Population standard deviation. @pre !empty() */
    double stddev() const;

    /**
     * p-th percentile with nearest-rank semantics.
     * @param p in [0, 100].  @pre !empty()
     */
    double percentile(double p) const;

    /** Median (50th percentile). @pre !empty() */
    double median() const { return percentile(50.0); }

    void reset();

  private:
    /** Sort samples into sorted_ on demand. */
    void ensureSorted() const;

    std::vector<double> samples;
    mutable std::vector<double> sorted;
    mutable bool sortedValid = false;
    double _sum = 0.0;
};

/**
 * Bounded-memory cycle histogram: 64 log2 buckets plus exact min, max,
 * count and sum. Unlike SampleStat it never grows with the number of
 * samples, so it is safe to leave attached to per-trap-reason metrics
 * over arbitrarily long sweeps.
 */
class HistogramStat
{
  public:
    static constexpr std::size_t numBuckets = 64;

    void
    add(std::uint64_t sample)
    {
        ++buckets[bucketOf(sample)];
        ++_count;
        _sum += sample;
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }

    std::uint64_t count() const { return _count; }
    bool empty() const { return _count == 0; }

    /** Smallest sample (exact). @pre !empty() */
    std::uint64_t min() const { return _min; }

    /** Largest sample (exact). @pre !empty() */
    std::uint64_t max() const { return _max; }

    /** Sum of all samples (exact). */
    std::uint64_t sum() const { return _sum; }

    /** Arithmetic mean (exact). Returns 0 when empty. */
    double
    mean() const
    {
        return _count == 0
                   ? 0.0
                   : static_cast<double>(_sum) /
                         static_cast<double>(_count);
    }

    /** Samples in bucket i, which covers [2^(i-1), 2^i - 1] (bucket 0
     *  holds exactly the value 0). */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return buckets[i];
    }

    /** Bucket index a sample lands in: bit width of the value. */
    static constexpr std::size_t
    bucketOf(std::uint64_t sample)
    {
        return static_cast<std::size_t>(std::bit_width(sample));
    }

    /** Fold another histogram in. Exact and order-independent —
     *  bucket-wise sums plus exact count/sum/min/max — so per-lane
     *  profiler shards merge into the same view the serial run
     *  records directly. */
    void
    merge(const HistogramStat &o)
    {
        for (std::size_t i = 0; i < buckets.size(); ++i)
            buckets[i] += o.buckets[i];
        _count += o._count;
        _sum += o._sum;
        _min = std::min(_min, o._min);
        _max = std::max(_max, o._max);
    }

    void reset();

    /** One-line summary: n/min/mean/max. */
    std::string render() const;

  private:
    std::array<std::uint64_t, numBuckets + 1> buckets{};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = UINT64_MAX;
    std::uint64_t _max = 0;
};

/**
 * A named registry of counters and sample stats, used by machines and
 * hypervisors to expose what happened during a run (VM exits, IPIs,
 * grant copies, packets, ...). Keys are created on first use.
 */
class StatRegistry
{
  public:
    /**
     * Counter by name, created on first use. Safe to call from
     * concurrent shard lanes: lookup takes a shared lock, first-use
     * insertion upgrades to exclusive. std::map nodes never move, so
     * returned references stay valid across later insertions.
     */
    Counter &
    counter(const std::string &name)
    {
        {
            std::shared_lock lock(mtx);
            auto it = counters.find(name);
            if (it != counters.end())
                return it->second;
        }
        std::unique_lock lock(mtx);
        return counters[name];
    }

    /** SampleStat by name. NOT lane-safe: sample accumulators must
     *  stay confined to a single shard lane (they are in practice:
     *  each is fed from one component's lane). */
    SampleStat &stat(const std::string &name) { return stats[name]; }

    const std::map<std::string, Counter> &allCounters() const
    {
        return counters;
    }
    const std::map<std::string, SampleStat> &allStats() const
    {
        return stats;
    }

    /** Value of a counter, or zero if it was never touched. */
    std::uint64_t counterValue(const std::string &name) const;

    void reset();

    /**
     * Drop every registration, not just the values. reset() keeps the
     * key set, so a registry that has seen a run renders zero-valued
     * rows a fresh registry would not have; clear() restores the
     * exact never-used state, which testbed reuse needs to stay
     * byte-identical with a cold-built world.
     */
    void clear();

    /** Render all counters and stat summaries, one per line. */
    std::string render() const;

  private:
    /** Guards the counters map structure (not the Counter values,
     *  which are internally atomic). */
    mutable std::shared_mutex mtx;
    std::map<std::string, Counter> counters;
    std::map<std::string, SampleStat> stats;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_STATS_HH
