#include "sim/env.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "sim/log.hh"

namespace virtsim {

std::optional<std::uint64_t>
envPositiveCount(const char *name, std::uint64_t max)
{
    const char *p = std::getenv(name);
    if (p == nullptr || *p == '\0')
        return std::nullopt;
    // strtoull silently wraps negatives ("-3" parses as a huge
    // positive), so reject a sign up front.
    const char *digits = p;
    while (std::isspace(static_cast<unsigned char>(*digits)))
        ++digits;
    if (*digits == '-' || *digits == '+') {
        fatal(name, " must be a positive integer, got \"", p, "\"");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || *end != '\0')
        fatal(name, " must be a positive integer, got \"", p, "\"");
    if (errno == ERANGE || v > max) {
        fatal(name, " out of range (max ", max, "), got \"", p,
              "\"");
    }
    if (v == 0)
        fatal(name, " must be positive, got \"", p, "\"");
    return static_cast<std::uint64_t>(v);
}

namespace {

/** Shared real-number front end: nullopt when unset/empty, the parsed
 *  value on clean decimal input, fatal() otherwise. Signs are
 *  rejected up front so "-0.5" reports as a sign error rather than a
 *  range error. */
std::optional<double>
envReal(const char *name, const char *what)
{
    const char *p = std::getenv(name);
    if (p == nullptr || *p == '\0')
        return std::nullopt;
    const char *digits = p;
    while (std::isspace(static_cast<unsigned char>(*digits)))
        ++digits;
    if (*digits == '-' || *digits == '+')
        fatal(name, " must be ", what, ", got \"", p, "\"");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || *end != '\0' || !std::isfinite(v))
        fatal(name, " must be ", what, ", got \"", p, "\"");
    return v;
}

} // namespace

std::optional<double>
envPositiveReal(const char *name, double max)
{
    const auto v = envReal(name, "a positive number");
    if (!v)
        return std::nullopt;
    if (!(*v > 0.0))
        fatal(name, " must be positive, got ", *v);
    if (*v > max)
        fatal(name, " out of range (max ", max, "), got ", *v);
    return v;
}

std::optional<double>
envUnitFraction(const char *name)
{
    const auto v = envReal(name, "a fraction in [0,1]");
    if (!v)
        return std::nullopt;
    if (!(*v >= 0.0 && *v <= 1.0))
        fatal(name, " must be a fraction in [0,1], got ", *v);
    return v;
}

} // namespace virtsim
