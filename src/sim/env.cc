#include "sim/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "sim/log.hh"

namespace virtsim {

std::optional<std::uint64_t>
envPositiveCount(const char *name, std::uint64_t max)
{
    const char *p = std::getenv(name);
    if (p == nullptr || *p == '\0')
        return std::nullopt;
    // strtoull silently wraps negatives ("-3" parses as a huge
    // positive), so reject a sign up front.
    const char *digits = p;
    while (std::isspace(static_cast<unsigned char>(*digits)))
        ++digits;
    if (*digits == '-' || *digits == '+') {
        fatal(name, " must be a positive integer, got \"", p, "\"");
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || *end != '\0')
        fatal(name, " must be a positive integer, got \"", p, "\"");
    if (errno == ERANGE || v > max) {
        fatal(name, " out of range (max ", max, "), got \"", p,
              "\"");
    }
    if (v == 0)
        fatal(name, " must be positive, got \"", p, "\"");
    return static_cast<std::uint64_t>(v);
}

} // namespace virtsim
