/**
 * @file
 * Deterministic simulated-time gauge sampling: counter timelines and
 * an anomaly watchdog.
 *
 * Spans (TraceSink) capture *what happened*; the timeline captures
 * *state over time* — how deep the NIC ring sits, which exception
 * level each CPU occupies, how full the GIC list registers are.
 * Components register lightweight gauge providers at construction;
 * a TimelineSampler scheduled on the event kernel reads every gauge
 * at a fixed simulated-time period and accumulates fixed-capacity POD
 * series. Because sampling happens at simulated timestamps driven by
 * the deterministic event queue, the exported series are byte-
 * identical across VIRTSIM_JOBS and across Testbed::reset().
 *
 * Cost model mirrors TraceSink: when disabled, the only per-run cost
 * is one predictable branch in ensureScheduled(); when enabled, the
 * sampling tick touches preallocated arrays only — no heap traffic.
 *
 * The Watchdog layers declarative rules over the live series
 * ("value >= threshold sustained for N cycles") and records
 * structured anomaly windows; benches assert anomalyCount() == 0 so
 * a saturated LR file or a ring-drop burst fails CI instead of
 * silently skewing a table.
 *
 * Include-cycle note: event_queue.hh includes probe.hh which includes
 * this header, so EventQueue and MetricsRegistry are forward-declared
 * and everything that needs their definitions lives in timeline.cc.
 */

#ifndef VIRTSIM_SIM_TIMELINE_HH
#define VIRTSIM_SIM_TIMELINE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace virtsim {

class EventQueue;
class MetricsRegistry;

/** Gauge callbacks capture raw pointers into the owning component;
 *  48 bytes covers a this-pointer plus a couple of indices. */
using GaugeFn = InlineFunction<std::int64_t(), 48>;

/** Pre-gauge sample hook: runs at the top of every sampling tick,
 *  before gauges are read (see addSampleHook). */
using SampleHookFn = InlineFunction<void(Cycles), 48>;

/** Watchdog anomaly notification: (now, rule index, open). Fires once
 *  when a rule first crosses its minDuration (open = true) and once
 *  when the gauge drops back below threshold (open = false) — also for
 *  windows the saturated anomaly buffer could not record. */
using AnomalyHookFn = InlineFunction<void(Cycles, std::uint32_t, bool), 48>;

/** Track id for gauges with no per-CPU affinity. */
inline constexpr std::uint16_t gaugeNoTrack = 0xffff;

/** One stored sample: 16-byte POD, memcpy-friendly. */
struct TimelineSample {
    Cycles when;
    std::int64_t value;
};

class TimelineSampler
{
  public:
    /** How the sampler interprets a gauge's return value. */
    enum class GaugeKind : std::uint8_t {
        Level, ///< instantaneous level, stored as read
        Rate,  ///< monotone cumulative count, stored as per-period delta
    };

    /** Per-gauge samples kept once enabled. Sized so a full Table V
     *  netperf run (tens of thousands of ticks) fits after change
     *  deduplication; overflow drops newest with accounting. */
    static constexpr std::uint32_t seriesCapacity = 4096;
    /** Upper bound on recorded anomaly windows per run. */
    static constexpr std::uint32_t anomalyCapacity = 64;

    TimelineSampler() = default;
    TimelineSampler(const TimelineSampler &) = delete;
    TimelineSampler &operator=(const TimelineSampler &) = delete;

    /** Register an instantaneous-level gauge. Registration order is
     *  the export order, so callers must register deterministically.
     *  Setup-path only; never called while sampling. */
    void addGauge(std::string name, GaugeFn fn,
                  std::uint16_t track = gaugeNoTrack);

    /** Register a gauge over a monotone cumulative counter; the
     *  sampler stores the per-period delta. */
    void addRateGauge(std::string name, GaugeFn fn,
                      std::uint16_t track = gaugeNoTrack);

    /**
     * Register a hook that runs at the top of every sampling tick,
     * before any gauge is read. Sampling ticks execute with every
     * kernel lane quiescent (the barrier under the sharded kernel,
     * plain event context otherwise), so a hook is the one place a
     * consumer may fold lane-partitioned observability state —
     * the SLO engine refreshes its rolling-quantile readings here.
     * Hooks run in registration order; like gauges, registration
     * must be deterministic. Kept by resetSeries(), dropped by
     * clear().
     */
    void addSampleHook(SampleHookFn fn);

    /**
     * Register a hook that runs at the bottom of every sampling tick,
     * after every gauge has been read and the watchdog rules have been
     * evaluated. Same quiescence and determinism contract as
     * addSampleHook(); the flight recorder folds its window
     * maintenance (eviction, reference sealing, incident finalization)
     * here. Kept by resetSeries(), dropped by clear().
     */
    void addPostSampleHook(SampleHookFn fn);

    /** Install the (single) anomaly open/close observer. */
    void setAnomalyHook(AnomalyHookFn fn) { anomalyHook = std::move(fn); }

    /** Index of a registered gauge, or -1 when absent. */
    int findGauge(std::string_view name) const;

    std::size_t gaugeCount() const { return series.size(); }
    const std::string &gaugeName(std::size_t g) const;
    std::uint16_t gaugeTrack(std::size_t g) const;
    /** Value read on the most recent tick (what watchdog rules judge). */
    std::int64_t gaugeLive(std::size_t g) const;

    /**
     * Declare a watchdog rule: fire when `gauge`'s sampled value sits
     * at or above `threshold` for at least `minDuration` consecutive
     * simulated cycles (0 = fire on first offending sample).
     */
    void addRule(std::string name, std::string_view gauge,
                 std::int64_t threshold, Cycles minDuration);

    std::size_t ruleCount() const { return rules.size(); }

    /** Arm sampling at the given simulated-time period. Idempotent;
     *  allocates the per-gauge sample buffers on first call. */
    void enable(Cycles period);
    void disable() { _enabled = false; }
    bool enabled() const { return _enabled; }
    Cycles period() const { return _period; }

    /**
     * Schedule the next sampling tick if sampling is enabled and no
     * tick is pending. Called at the top of every Testbed::run(); the
     * disabled path is a single predicted branch.
     */
    void
    ensureScheduled(EventQueue &eq)
    {
        if (!_enabled) [[likely]]
            return;
        scheduleOn(eq);
    }

    /**
     * Take one sample of every gauge at simulated instant `now`, as
     * the in-queue tick does but without touching an event queue.
     * The sharded kernel drives this from its barrier rounds at
     * period-aligned instants (all lanes quiescent and past every
     * event below `now`), giving the same time-only semantics at
     * every lane count: a sample at instant t reads state after all
     * events with time < t and before any event at time >= t.
     * No-op while disabled. Do not mix with the in-queue tick chain
     * in one run.
     */
    void sampleTick(Cycles now);

    /** Samples stored for gauge `g` (after change deduplication). */
    std::uint32_t sampleCount(std::size_t g) const;
    const TimelineSample *samplesFor(std::size_t g) const;
    /** Samples discarded because a series hit capacity. */
    std::uint64_t droppedSamples() const { return _dropped; }
    /** Total sampling ticks taken since the last resetSeries(). */
    std::uint64_t tickCount() const { return _ticks; }

    /** One recorded rule violation window. */
    struct Anomaly {
        std::uint32_t rule;  ///< index into rules, stable per run
        Cycles begin;        ///< first sample at/above threshold
        Cycles end;          ///< latest sample still above threshold
        std::int64_t peak;   ///< maximum sampled value in the window
    };

    std::uint32_t anomalyCount() const { return anomalyUsed; }
    const Anomaly *anomalies() const { return anomalyBuf.get(); }
    /** Anomaly windows lost to a saturated buffer (one per window, not
     *  per tick) — nonzero means anomalyCount() undercounts. */
    std::uint64_t anomaliesDropped() const { return _anomaliesDropped; }
    const std::string &ruleName(std::uint32_t r) const;

    /** Publish anomaly totals as watchdog.* machine counters —
     *  watchdog.anomalies plus one counter per offending rule.
     *  Export-path; allocation is fine here. */
    void publishAnomalies(MetricsRegistry &metrics) const;

    /**
     * Drop sampled data and live rule state but keep gauge and rule
     * registrations and the enable/period configuration. Called from
     * Probe::reset() (Testbed::beginRun()) so back-to-back workloads
     * on one testbed start from an empty timeline.
     */
    void resetSeries();

    /** Drop everything: gauges, rules, series, configuration. Called
     *  from Machine::reset(); components re-register afterwards. */
    void clear();

    /** Standalone JSON export (schema "virtsim-timeline-1"). */
    std::string renderJson(const Frequency &freq) const;
    /** Standalone CSV export: series,track,kind,cycles,us,value. */
    std::string renderCsv(const Frequency &freq) const;
    /**
     * Emit Chrome-trace counter events ("ph":"C") for every stored
     * sample, one counter track per gauge, for merging into the
     * TraceSink Perfetto export. Writes nothing when no samples are
     * stored. Each event is preceded by ",\n" so the caller can
     * append directly after its last event object.
     */
    void writeCounterEvents(std::ostream &os,
                            const Frequency &freq) const;

  private:
    struct Series {
        std::string name;
        GaugeFn fn;
        std::uint16_t track = gaugeNoTrack;
        GaugeKind kind = GaugeKind::Level;
        std::unique_ptr<TimelineSample[]> samples;
        std::uint32_t used = 0;
        /** Last *stored* value, for change deduplication. */
        std::int64_t lastStored = 0;
        bool hasStored = false;
        /** Value read on the most recent tick (updated even when
         *  deduplication or capacity suppressed the append) — what
         *  watchdog rules judge. */
        std::int64_t live = 0;
        /** Previous cumulative reading for Rate gauges. */
        std::int64_t prev = 0;
        bool hasPrev = false;
    };

    struct Rule {
        std::string name;
        std::uint32_t gauge = 0;
        std::int64_t threshold = 0;
        Cycles minDuration = 0;
        // Live evaluation state, cleared by resetSeries().
        bool above = false;
        Cycles aboveSince = 0;
        std::int64_t peak = 0;
        /** Open anomaly record index, or -1 while below threshold or
         *  under minDuration. */
        std::int32_t openAnomaly = -1;
        /** The current window fired past a saturated anomaly buffer;
         *  it was counted dropped once and must not count again. */
        bool droppedOpen = false;
    };

    void scheduleOn(EventQueue &eq);
    void tick(EventQueue &eq);
    void store(Series &s, Cycles now, std::int64_t value);
    void evaluateRules(Cycles now);

    std::vector<Series> series;
    std::vector<Rule> rules;
    std::vector<SampleHookFn> hooks;
    std::vector<SampleHookFn> postHooks;
    AnomalyHookFn anomalyHook;
    std::unique_ptr<Anomaly[]> anomalyBuf;
    std::uint32_t anomalyUsed = 0;
    std::uint64_t _anomaliesDropped = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _ticks = 0;
    Cycles _period = 0;
    bool _enabled = false;
    /** A sampling tick is sitting in the event queue. */
    bool scheduled = false;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_TIMELINE_HH
