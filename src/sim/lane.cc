#include "sim/lane.hh"

namespace virtsim {
namespace detail {

thread_local int tl_exec_lane = -1;

} // namespace detail
} // namespace virtsim
