#include "sim/shard_profile.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sim/log.hh"

namespace virtsim {

namespace {

std::string
formatFixed(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

} // namespace

std::uint64_t
ShardProfile::busyNsTotal() const
{
    std::uint64_t n = 0;
    for (const Lane &ln : lanes)
        n += ln.busyNs;
    return n;
}

std::size_t
ShardProfile::lanesProfiled() const
{
    std::size_t n = 0;
    for (const Lane &ln : lanes) {
        if (ln.busyNs != 0 || ln.stallNs != 0 || ln.events != 0 ||
            ln.stallRounds != 0)
            ++n;
    }
    return n;
}

double
ShardProfile::speedupEstimate() const
{
    if (wallNs == 0)
        return 0.0;
    return static_cast<double>(busyNsTotal()) /
           static_cast<double>(wallNs);
}

std::string
ShardProfile::toJson() const
{
    const std::size_t n = lanes.size();
    std::string out = "{\"schema\":\"virtsim-shard-profile-2\"";
    out += ",\"lanes\":" + std::to_string(n);
    out += ",\"lanes_profiled\":" + std::to_string(lanesProfiled());
    out += ",\"rounds\":" + std::to_string(rounds);
    out += ",\"parallel_rounds\":" + std::to_string(parallelRounds);
    out += ",\"wall_ns\":" + std::to_string(wallNs);
    out += ",\"busy_ns_total\":" + std::to_string(busyNsTotal());
    out += ",\"speedup_estimate\":" + formatFixed(speedupEstimate());
    out += ",\"lane_detail\":[";
    // Sparse, like the coordinator itself: a lane that never ran and
    // never stalled contributes one spare-capacity row's worth of
    // nothing — on a 256-lane fleet the idle tail would dwarf the
    // signal. Rows stay in lane order and carry their lane id.
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
        const Lane &ln = lanes[i];
        if (ln.busyNs == 0 && ln.stallNs == 0 && ln.events == 0 &&
            ln.stallRounds == 0)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "{\"lane\":" + std::to_string(i);
        out += ",\"busy_ns\":" + std::to_string(ln.busyNs);
        out += ",\"wait_ns\":" + std::to_string(waitNs(i));
        out += ",\"stall_ns\":" + std::to_string(ln.stallNs);
        out += ",\"events\":" + std::to_string(ln.events);
        out += ",\"stall_rounds\":" + std::to_string(ln.stallRounds);
        out += "}";
    }
    out += "],\"critical_channels\":[";
    // Nonzero edges only, worst first; (dst, src) breaks ties so the
    // structural part of the export is deterministic even though the
    // round counts are host-timing dependent.
    struct Edge
    {
        std::uint64_t rounds;
        std::size_t dst;
        std::size_t src;
    };
    std::vector<Edge> edges;
    for (std::size_t d = 0; d < n; ++d) {
        for (std::size_t s = 0; s < n; ++s) {
            const std::uint64_t r = d * n + s < critRounds.size()
                                        ? critRounds[d * n + s]
                                        : 0;
            if (r > 0)
                edges.push_back({r, d, s});
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.rounds != b.rounds)
                      return a.rounds > b.rounds;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  return a.src < b.src;
              });
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i)
            out += ",";
        const Edge &e = edges[i];
        const std::size_t flat = e.dst * n + e.src;
        out += "{\"dst\":" + std::to_string(e.dst);
        out += ",\"src\":" + std::to_string(e.src);
        out += ",\"rounds\":" + std::to_string(e.rounds);
        out += ",\"channel\":\"";
        if (flat < critChannel.size())
            out += critChannel[flat];
        out += "\"}";
    }
    out += "]}";
    return out;
}

bool
exportShardProfile(const std::string &path,
                   const ShardProfile &profile)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open shard profile file ", path);
        return false;
    }
    os << profile.toJson() << "\n";
    return os.good();
}

} // namespace virtsim
