/**
 * @file
 * Small-buffer-optimized, non-allocating callable — the event
 * kernel's replacement for std::function.
 *
 * Every simulated primitive (hypercall, vIRQ injection, world switch,
 * netperf transaction) is dispatched as an event callback, so the
 * per-event cost of the callback type is the hottest constant in the
 * whole harness. std::function heap-allocates once the capture
 * exceeds its tiny internal buffer (16 bytes on libstdc++), which put
 * one malloc/free pair on nearly every scheduled event. InlineFunction
 * stores the capture inline — always — and *statically rejects*
 * callables that do not fit, so the no-allocation property is a
 * compile-time guarantee rather than a hope: if an in-tree capture
 * grows past the buffer, the build breaks at the offending lambda
 * instead of silently reintroducing allocator traffic.
 *
 * Deliberately minimal: move-only, no allocator fallback, no
 * target_type introspection. Calling an empty InlineFunction panics.
 */

#ifndef VIRTSIM_SIM_INLINE_FUNCTION_HH
#define VIRTSIM_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/log.hh"

namespace virtsim {

/** Inline capture budget, in bytes. The largest in-tree captures are
 *  the (para)virtual rx delivery closures — a Packet (32) plus a Done
 *  continuation (32) plus hypervisor/VM context and a timestamp
 *  (24) = 88 bytes; 96 covers them and, given max_align_t padding,
 *  occupies no more storage than 88 would. */
inline constexpr std::size_t inlineFunctionCapacity = 96;

template <typename Signature,
          std::size_t Capacity = inlineFunctionCapacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)
    {
        static_assert(sizeof(D) <= Capacity,
                      "event callback capture exceeds the inline "
                      "buffer; shrink the capture (box rarely-used "
                      "state, capture pointers not objects) rather "
                      "than reintroducing per-event heap allocation");
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "over-aligned event callback capture");
        static_assert(std::is_nothrow_move_constructible_v<D>,
                      "event callbacks must be nothrow-movable (the "
                      "event arena relocates them)");
        ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
        call = [](void *p, Args... args) -> R {
            return (*std::launder(reinterpret_cast<D *>(p)))(
                std::forward<Args>(args)...);
        };
        relocateOrDestroy = [](void *src, void *dst) noexcept {
            D *s = std::launder(reinterpret_cast<D *>(src));
            if (dst)
                ::new (dst) D(std::move(*s));
            s->~D();
        };
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    R
    operator()(Args... args)
    {
        VIRTSIM_ASSERT(call, "calling an empty InlineFunction");
        return call(buf, std::forward<Args>(args)...);
    }

    explicit operator bool() const noexcept { return call != nullptr; }

    /** Destroy the held callable, leaving the function empty. */
    void
    reset() noexcept
    {
        if (relocateOrDestroy)
            relocateOrDestroy(buf, nullptr);
        call = nullptr;
        relocateOrDestroy = nullptr;
    }

  private:
    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (!other.call)
            return;
        other.relocateOrDestroy(other.buf, buf);
        call = other.call;
        relocateOrDestroy = other.relocateOrDestroy;
        other.call = nullptr;
        other.relocateOrDestroy = nullptr;
    }

    alignas(std::max_align_t) std::byte buf[Capacity];
    R (*call)(void *, Args...) = nullptr;
    /** Move the callable into dst (or just destroy it when dst is
     *  null); one pointer covers both relocation and destruction. */
    void (*relocateOrDestroy)(void *src, void *dst) noexcept = nullptr;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_INLINE_FUNCTION_HH
