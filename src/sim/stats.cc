#include "sim/stats.hh"

#include <cmath>
#include <sstream>

#include "sim/log.hh"

namespace virtsim {

void
SampleStat::add(double sample)
{
    VIRTSIM_ASSERT(samples.size() < maxSamples,
                   "SampleStat exceeded ", maxSamples,
                   " samples; this stream needs a bounded-memory "
                   "LatencyHistogram (sim/latency) instead");
    samples.push_back(sample);
    _sum += sample;
    sortedValid = false;
}

double
SampleStat::mean() const
{
    VIRTSIM_ASSERT(!empty(), "mean of empty stat");
    return _sum / static_cast<double>(samples.size());
}

double
SampleStat::min() const
{
    VIRTSIM_ASSERT(!empty(), "min of empty stat");
    ensureSorted();
    return sorted.front();
}

double
SampleStat::max() const
{
    VIRTSIM_ASSERT(!empty(), "max of empty stat");
    ensureSorted();
    return sorted.back();
}

double
SampleStat::stddev() const
{
    VIRTSIM_ASSERT(!empty(), "stddev of empty stat");
    const double m = mean();
    double acc = 0.0;
    for (double s : samples) {
        const double d = s - m;
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples.size()));
}

double
SampleStat::percentile(double p) const
{
    VIRTSIM_ASSERT(!empty(), "percentile of empty stat");
    VIRTSIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    ensureSorted();
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
SampleStat::reset()
{
    samples.clear();
    sorted.clear();
    sortedValid = false;
    _sum = 0.0;
}

void
SampleStat::ensureSorted() const
{
    if (sortedValid)
        return;
    sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    sortedValid = true;
}

void
HistogramStat::reset()
{
    buckets.fill(0);
    _count = 0;
    _sum = 0;
    _min = UINT64_MAX;
    _max = 0;
}

std::string
HistogramStat::render() const
{
    std::ostringstream oss;
    oss << "n=" << _count;
    if (_count > 0) {
        oss << " min=" << _min << " mean=" << mean()
            << " max=" << _max;
    }
    return oss.str();
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    std::shared_lock lock(mtx);
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

void
StatRegistry::reset()
{
    std::unique_lock lock(mtx);
    for (auto &kv : counters)
        kv.second.reset();
    for (auto &kv : stats)
        kv.second.reset();
}

void
StatRegistry::clear()
{
    std::unique_lock lock(mtx);
    counters.clear();
    stats.clear();
}

std::string
StatRegistry::render() const
{
    std::ostringstream oss;
    for (const auto &kv : counters)
        oss << kv.first << " = " << kv.second.value() << "\n";
    for (const auto &kv : stats) {
        oss << kv.first << ": n=" << kv.second.count();
        if (!kv.second.empty()) {
            oss << " mean=" << kv.second.mean()
                << " min=" << kv.second.min()
                << " max=" << kv.second.max();
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace virtsim
