/**
 * @file
 * Streaming causal attribution over the trace-record stream.
 *
 * The paper's central argument is attribution, not absolute numbers:
 * Table III explains KVM ARM's hypercall cost as a sum of register
 * save/restore classes; Table II explains ARM-vs-x86 crossovers by
 * which primitives each design eliminates; Table V decomposes a
 * TCP_RR transaction into hypervisor-induced legs. This module turns
 * the raw span/edge stream (sim/probe) into those explanatory
 * artifacts mechanically:
 *
 *  - CausalAnalyzer consumes records *online* through TraceObserver,
 *    so attribution never requires the ring to retain a whole run.
 *    Per-track containment parenting (children are emitted before
 *    their enclosing span, and lie inside its interval) rebuilds the
 *    span hierarchy; cross-CPU edges (IPI flight, LR write-to-ack,
 *    wire latency, backend wakeups) link tracks causally.
 *  - BlameReport rolls self-time per primitive — trap legs, each
 *    RegClass save/restore, GIC distributor vs LR maintenance,
 *    stage-2 faults, backend copies — into name-keyed terms.
 *  - diffBlame() ranks two SUTs' reports into a "why is A slower
 *    than B" table, the machine-checked form of the paper's
 *    crossover explanations.
 *  - The folded-stack export feeds standard flamegraph tooling
 *    (VIRTSIM_FLAME=out.folded).
 *  - buildCausalGraph()/extractCriticalPath() reconstruct a single
 *    operation's cross-CPU graph post hoc from the retained ring and
 *    walk its latency-critical chain.
 *
 * Everything rendered here is keyed and sorted by tap *name*, never
 * raw TapId — ids are interned in nondeterministic order under
 * parallel sweeps, names are not — so all output is byte-identical
 * across VIRTSIM_JOBS widths.
 */

#ifndef VIRTSIM_SIM_ATTRIB_HH
#define VIRTSIM_SIM_ATTRIB_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/probe.hh"
#include "sim/types.hh"

namespace virtsim {

/** @name Cross-CPU causal edge taps
 *  Interned once; shared by every producer so the analyzer can name
 *  edge blame uniformly.
 */
///@{
TapId edgeIpiTap();  ///< "edge.ipi": IPI send -> delivery
TapId edgeLrTap();   ///< "edge.lr": LR write -> guest ack
TapId edgeWireTap(); ///< "edge.wire": NIC wire tx -> rx
TapId edgeWakeTap(); ///< "edge.wake": backend queue -> worker pump
///@}

/** One attribution term: total self-cycles blamed on a primitive. */
struct BlameTerm
{
    std::string name;          ///< tap name ("ws.save.VGIC Regs", ...)
    Cycles cycles = 0;         ///< self time (children subtracted)
    std::uint64_t count = 0;   ///< spans / edges contributing

    friend bool operator==(const BlameTerm &,
                           const BlameTerm &) = default;
};

/**
 * Per-primitive cycle blame for one SUT run. Terms are stored sorted
 * by name (deterministic); render() ranks by cycles for reading.
 */
struct BlameReport
{
    std::string label;            ///< SUT name ("kvm_arm", ...)
    std::vector<BlameTerm> terms; ///< sorted by name

    std::uint64_t operations = 0;    ///< guest-visible ops completed
    std::uint64_t edgesLinked = 0;   ///< causal edges out->in paired
    std::uint64_t edgesDangling = 0; ///< edges missing one end
    std::uint64_t truncatedSpans = 0; ///< ring-wrap span losses

    /** Total cycles attributed across all terms. */
    Cycles attributed() const;

    /** Term by exact name, or null. */
    const BlameTerm *find(std::string_view name) const;

    /** Highest-cycle term (ties broken by name), or null. */
    const BlameTerm *top() const;

    /** Ranked human-readable table (cycles descending). */
    std::string render() const;

    /** JSON object, terms name-sorted (byte-stable). */
    std::string toJson() const;
};

/** One row of a differential report: A's vs B's cycles on a term. */
struct DiffRow
{
    std::string name;
    Cycles a = 0;
    Cycles b = 0;

    /** Positive: A spends more here than B. */
    std::int64_t
    delta() const
    {
        return static_cast<std::int64_t>(a) -
               static_cast<std::int64_t>(b);
    }
};

/**
 * Ranked "why is A slower than B" table: the union of both reports'
 * terms sorted by signed delta, largest A-excess first.
 */
struct DiffReport
{
    std::string aLabel;
    std::string bLabel;
    std::vector<DiffRow> rows; ///< delta descending, ties by name

    /** Largest A-excess row, or null if empty. */
    const DiffRow *top() const;

    std::string render() const;
};

/** Diff two blame reports (A minus B). */
DiffReport diffBlame(const BlameReport &a, const BlameReport &b);

/**
 * Streaming attribution engine. Attach to a sink with
 * `sink.setObserver(&analyzer)`; it maintains per-track span stacks
 * and a bounded pending window, assigns each completed span's self
 * time (duration minus contained children) to its tap, folds stacks
 * for flamegraph export, and times cross-CPU edges. Memory is
 * bounded by track count and the pending cap, not run length.
 *
 * One analyzer per sink: sweep cells own their own Testbed, sink and
 * analyzer, so reports are deterministic under VIRTSIM_JOBS > 1.
 */
class CausalAnalyzer : public TraceObserver
{
  public:
    explicit CausalAnalyzer(std::string label = "");

    void setLabel(std::string l) { _label = std::move(l); }
    const std::string &label() const { return _label; }

    void onTraceRecord(const TraceRecord &r) override;

    /**
     * Finalize pending state and build the report. May be called
     * repeatedly (later calls see the same totals plus any records
     * observed in between). @p sink, when given, contributes its
     * truncated-span count.
     */
    BlameReport report(const TraceSink *sink = nullptr);

    /** Write folded flamegraph stacks ("a;b;c cycles" lines, sorted
     *  lexicographically). @p root prefixes every stack (typically
     *  the SUT label). Linked edges contribute a root-level frame
     *  per edge tap carrying the summed in-flight cycles. */
    void writeFolded(std::ostream &os, const std::string &root = "");

    /** writeFolded to a file. @return false if it failed to open. */
    bool writeFoldedFile(const std::string &path,
                         const std::string &root = "");

    /** Forget all state (blame, folds, pending, edges). */
    void reset();

  private:
    struct Fold
    {
        Cycles cycles = 0;
        std::uint64_t count = 0;
    };

    /** Raw-id stack path -> accumulated self time. Rendered by name
     *  (and re-sorted) only at export time. */
    using FoldMap = std::map<std::vector<std::uint32_t>, Fold>;

    struct Span
    {
        std::uint32_t tap = 0;
        Cycles t0 = 0;
        Cycles t1 = 0;
        Cycles self = 0; ///< duration minus consumed children
        FoldMap frags;   ///< descendant stacks, relative to this span
    };

    struct Open
    {
        std::uint32_t tap = 0;
        Cycles t0 = 0;
        std::uint64_t arg = 0;
    };

    struct Track
    {
        std::vector<Open> opens;    ///< Begin seen, End pending
        std::vector<Span> pending;  ///< completed, awaiting a parent
    };

    struct EdgeOrigin
    {
        Cycles when = 0;
        std::uint32_t tap = 0;
    };

    /** Pending spans kept per track before the oldest are flushed as
     *  roots. Deep enough for any real nesting (ops nest ~4 deep);
     *  bounds memory on pathological streams. */
    static constexpr std::size_t pendingCap = 96;

    /** Outstanding edge-origin cap; beyond it the oldest tokens are
     *  dropped as dangling. */
    static constexpr std::size_t edgeCap = 4096;

    Track &track(std::uint16_t id);
    void completeSpan(Track &tr, const TraceRecord &r);
    void finalizeRoot(const Span &s);
    void flushTrack(Track &tr, std::size_t keep);
    void flushAll();

    std::string _label;
    std::map<std::uint16_t, Track> tracks;
    std::map<std::uint64_t, EdgeOrigin> outstanding; ///< by token
    std::map<std::uint32_t, BlameTerm> blame; ///< by raw tap id
    FoldMap folded;
    std::uint64_t _operations = 0;
    std::uint64_t _edgesLinked = 0;
    std::uint64_t _edgesDangling = 0;
    std::uint64_t _unmatched = 0; ///< Ends with no open Begin
};

/**
 * Post-hoc causal graph of one operation window, rebuilt from the
 * retained ring (take a `sink.total()` watermark before the op and
 * pass it as @p mark). Nodes are spans parented by per-track
 * containment; edges pair EdgeOut/EdgeIn records by token and anchor
 * into the innermost containing node on each side.
 */
struct CausalGraph
{
    struct Node
    {
        std::string name;
        std::uint16_t track = noTrack;
        Cycles t0 = 0;
        Cycles t1 = 0;
        int parent = -1; ///< index of innermost containing node
        bool leaf = true;
    };

    struct Edge
    {
        std::string name;
        std::uint64_t token = 0;
        std::uint16_t fromTrack = noTrack;
        std::uint16_t toTrack = noTrack;
        Cycles out = 0;
        Cycles in = 0;
        int fromNode = -1;
        int toNode = -1;
    };

    std::vector<Node> nodes;
    std::vector<Edge> edges;
};

CausalGraph buildCausalGraph(const TraceSink &sink,
                             std::uint64_t mark = 0);

/** Same reconstruction over a frozen, time-sorted record array — the
 *  flight recorder's captured incident windows. */
CausalGraph buildCausalGraphFromRecords(const TraceRecord *records,
                                        std::size_t count);

/** One hop of a critical path: a span, or an edge in flight (track
 *  is the *destination* track for edges). */
struct CriticalPathStep
{
    std::string name;
    std::uint16_t track = noTrack;
    Cycles t0 = 0;
    Cycles t1 = 0;
    bool isEdge = false;
};

/** The latency-critical chain ending at the last-finishing span. */
struct CriticalPath
{
    std::vector<CriticalPathStep> steps; ///< chronological
    Cycles span = 0;       ///< end.t1 - begin.t0
    Cycles attributed = 0; ///< sum of step durations

    Cycles
    unattributed() const
    {
        return span > attributed ? span - attributed : 0;
    }

    std::string render() const;
};

/**
 * Walk backward from the node with the greatest end time, hopping
 * through causal edges onto the originating track and otherwise
 * stepping to the latest-finishing predecessor on the same track.
 */
CriticalPath extractCriticalPath(const CausalGraph &g);

} // namespace virtsim

#endif // VIRTSIM_SIM_ATTRIB_HH
