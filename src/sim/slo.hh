/**
 * @file
 * Declarative service-level objectives over request latency.
 *
 * An SloSpec states the contract a workload must meet in the
 * SRE idiom: "quantile q of phase P stays at or under threshold T,
 * and no more than fraction F of requests exceed T", judged both
 * end-of-run and continuously over burn-rate windows of simulated
 * time. The engine reads the lane-merged RequestTracker histograms —
 * exact integer counts, so every verdict is byte-identical at every
 * VIRTSIM_SHARDS/VIRTSIM_JOBS setting — and surfaces breaches through
 * three channels:
 *
 *  - timeline gauges: "slo.<name>.q_us" (the rolling observed
 *    quantile, a Perfetto counter track) and "slo.<name>.burn"
 *    (1 while the latest burn window violated the contract),
 *  - the PR 5 watchdog: a rule named "slo.<name>" over the burn gauge
 *    turns sustained violation into a recorded anomaly window, which
 *    benches already fail on,
 *  - metrics: "slo.<name>.violations" / ".requests" / ".breached"
 *    machine counters in the snapshot.
 *
 * Live evaluation runs in a timeline sample hook: the sharded kernel
 * samples at barrier rounds with every lane quiescent, which is the
 * only point a cross-lane histogram read is race-free — and because
 * sample instants are period-aligned simulated times, the readings
 * (and therefore burn verdicts and anomalies) are lane-count
 * independent.
 */

#ifndef VIRTSIM_SIM_SLO_HH
#define VIRTSIM_SIM_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/latency.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace virtsim {

class TimelineSampler;
class MetricsRegistry;

/** Burn-breach notification: (now, spec index). Fires on the 0→1 edge
 *  of a spec's burn state — the instant a completed burn window first
 *  violates the contract after a clean one. */
using SloBreachHookFn = InlineFunction<void(Cycles, std::size_t), 48>;

/** One latency objective. */
struct SloSpec
{
    /** Short stable identifier; gauges, rules and metrics derive
     *  their names from it ("slo.<name>..."). */
    std::string name = "rtt_p99";
    /** Which request phase the objective constrains. */
    LatencyPhase phase = LatencyPhase::Rtt;
    /** Target quantile in (0, 1) — e.g. 0.99 for p99. */
    double quantile = 0.99;
    /** Latency threshold the quantile must not exceed. */
    Cycles thresholdCycles = 0;
    /** Highest tolerable fraction of requests above the threshold. */
    double maxViolationFraction = 0.01;
    /** Burn-rate window in simulated cycles; each completed window's
     *  violation fraction is judged against maxViolationFraction.
     *  0 disables windowed (live) judging — end-of-run only. */
    Cycles burnWindow = 0;
};

/** End-of-run judgment of one spec. */
struct SloVerdict
{
    SloSpec spec;
    std::uint64_t requests = 0;   ///< samples of the judged phase
    std::uint64_t violations = 0; ///< samples above the threshold
    Cycles observedQuantile = 0;  ///< spec.quantile over the run
    /** Completed burn windows and how many of them violated. */
    std::uint64_t windows = 0;
    std::uint64_t burntWindows = 0;

    double
    violationFraction() const
    {
        return requests == 0 ? 0.0
                             : static_cast<double>(violations) /
                                   static_cast<double>(requests);
    }
    bool
    quantileOk() const
    {
        return observedQuantile <= spec.thresholdCycles;
    }
    bool
    fractionOk() const
    {
        return static_cast<double>(violations) <=
               spec.maxViolationFraction *
                   static_cast<double>(requests);
    }
    bool pass() const { return quantileOk() && fractionOk(); }
};

/**
 * Judges a set of SloSpecs against one RequestTracker. Setup order:
 * addSpec() the objectives, bind() the tracker, warmTaps() before the
 * owning world freezes its metrics domains
 * (MetricsRegistry::prepareForParallel), installTimeline() after the
 * world's own gauges are registered. Everything else is driven by the
 * timeline (onSample via the sample hook) and the export path
 * (judge/publish/verdictsJson).
 */
class SloEngine
{
  public:
    void
    addSpec(SloSpec spec)
    {
        VIRTSIM_ASSERT(spec.quantile > 0.0 && spec.quantile < 1.0,
                       "SLO quantile must be in (0,1)");
        VIRTSIM_ASSERT(spec.maxViolationFraction >= 0.0 &&
                           spec.maxViolationFraction <= 1.0,
                       "SLO violation fraction must be in [0,1]");
        VIRTSIM_ASSERT(spec.thresholdCycles > 0,
                       "SLO threshold must be positive");
        specs_.push_back(std::move(spec));
        live.emplace_back();
    }

    const std::vector<SloSpec> &specs() const { return specs_; }
    bool armed() const { return !specs_.empty(); }

    void bind(const RequestTracker *t) { tracker = t; }

    /**
     * Intern every metric tap this engine (and the watchdog rules it
     * installs) may create at export time. Must run before the
     * owning world calls MetricsRegistry::prepareForParallel() — the
     * domains freeze their tap-indexed arrays there, and a breach
     * would otherwise be the first (fatal) late intern.
     */
    void warmTaps() const;

    /**
     * Register the gauges, watchdog rules and the sample hook with a
     * timeline sampler. `freq` converts the rolling quantile gauge to
     * microseconds for the counter track. Call once per run, after
     * the world's own gauges (registration order is export order).
     */
    void installTimeline(TimelineSampler &tl, const Frequency &freq);

    /**
     * Refresh rolling readings and close elapsed burn windows at
     * simulated instant `now`. Runs in the timeline sample hook —
     * barrier context, all lanes quiescent. Public for tests.
     */
    void onSample(Cycles now);

    /** End-of-run verdicts, one per spec, from the final merged
     *  histograms. */
    std::vector<SloVerdict> judge() const;

    /** Count of failing end-of-run verdicts. */
    std::uint64_t breaches() const;

    /** Publish slo.* machine counters (export path). */
    void publish(MetricsRegistry &metrics) const;

    /** JSON array of verdicts for the virtsim-latency-1 export. */
    std::string verdictsJson(const Frequency &freq) const;

    /** Install the (single) burn-breach observer — the flight
     *  recorder's SLO trigger source. Kept across reset(). */
    void setBreachHook(SloBreachHookFn fn) { breachHook = std::move(fn); }

    /** Drop live window state; keep specs, binding and hook. */
    void reset();

  private:
    /** Per-spec rolling state the gauges read. */
    struct LiveState
    {
        std::int64_t quantileUs = 0; ///< rolling observed quantile
        std::int64_t burning = 0;    ///< latest window violated
        bool windowOpen = false;
        Cycles windowStart = 0;
        /** Cumulative (requests, violations) at window start. */
        std::uint64_t baseRequests = 0;
        std::uint64_t baseViolations = 0;
        std::uint64_t windows = 0;
        std::uint64_t burnt = 0;
    };

    const RequestTracker *tracker = nullptr;
    std::vector<SloSpec> specs_;
    std::vector<LiveState> live;
    SloBreachHookFn breachHook;
    double usPerCycle = 0.0;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_SLO_HH
