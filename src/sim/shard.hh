/**
 * @file
 * Sharded event kernel: conservative-lookahead parallel DES.
 *
 * A ShardedEventKernel owns N EventQueue lanes and advances them in
 * synchronization rounds. Each round:
 *
 *  1. Cross-lane messages buffered since the last round are merged
 *     into their destination lanes in a fixed (source lane,
 *     destination lane, send order) sequence, so (time, seq) tie
 *     breaks are independent of thread timing.
 *  2. Every lane's next event time is read, and each lane's safe
 *     horizon is computed from the declared channel lookaheads as
 *     the LBTS (lower bound on time stamp) fixed point
 *       N[i] = min(nextEvent[i],
 *                  min over edges j->i of (N[j] + minLookahead[j][i]))
 *     iterated to convergence, then
 *       target[i] = min over edges j->i of (N[j] + minLookahead[j][i])
 *     N[i] lower-bounds the time of anything lane i could still
 *     execute or emit. Crucially an *empty* lane with in-edges still
 *     bounds its downstream lanes through its own earliest possible
 *     receive time: a message can wake it and make it send (request/
 *     response chains, an idle CPU woken by an injected IRQ), so it
 *     must not be treated as unconstraining. Only a lane with no
 *     in-edges at all leaves its targets unbounded. Because any
 *     message lane j emits while executing an event at time t >=
 *     N[j] arrives no earlier than t + lookahead >= N[j] + lookahead
 *     >= target[i], no lane can ever receive a message in its own
 *     past — the classic conservative (Chandy-Misra-Bryant) safety
 *     argument, with the barrier round standing in for null
 *     messages.
 *  3. Lanes execute their events strictly below their horizons, in
 *     parallel on a persistent worker crew when more than one lane
 *     has work (and parallelism is permitted), serially on the
 *     calling thread otherwise. Progress is guaranteed: the lane
 *     holding the globally earliest event always has
 *     target > nextEvent because every cross-lane lookahead is
 *     positive.
 *
 * The coordinator is *sparse*: per-round cost is O(active lanes +
 * traffic edges), not O(lanes^2), so a 256-lane fleet with a dozen
 * busy lanes pays for a dozen. Concretely:
 *
 *  - The lookahead matrix is flattened once per run into per-lane
 *    in/out adjacency lists (LaneEdge, sim/channel.hh); the LBTS
 *    fixed point is computed by worklist relaxation over those edges
 *    seeded from the lanes that hold events. Min-plus relaxation has
 *    a unique least fixed point, so the worklist result is
 *    byte-identical to the dense iteration (assert-checked every
 *    round in debug builds, and on demand via
 *    enableHorizonCrossCheck()).
 *  - The mailbox merge visits only (src, dst) pairs that actually
 *    buffered messages this round: each sending lane privately
 *    records the destinations it touched, and the coordinator drains
 *    exactly those, still in (src asc, dst asc, send order).
 *  - Next-event times are cached and refreshed only for lanes that
 *    ran or received a merged message — the only ways a lane's queue
 *    legally changes during a run.
 *  - Idle lanes are elided: a lane whose next event is at or beyond
 *    its round target is neither handed to a worker nor counted as a
 *    stall. The worker crew itself is sized by the host's core
 *    count, not the lane count, and drains the runnable-lane list
 *    work-stealing style.
 *
 * The legacy dense coordinator survives as a reference
 * implementation (VIRTSIM_SHARD_DENSE=1, or setDenseCoordinator());
 * it produces byte-identical modelled results and exists for
 * differential tests and as the baseline the fleet-scale benchmarks
 * measure against.
 *
 * Determinism is absolute, not statistical: mailboxes are drained in
 * declaration order before any lane runs, each lane is itself a
 * deterministic (time, seq) total order, and horizon computation
 * depends only on lane states — so the simulated behavior is
 * byte-identical whether lanes run on one thread or eight, and
 * whether the kernel has 1 lane or N. Observability rides along at
 * full parallelism: sinks are lane-partitioned (TraceSink segments,
 * EventKernelProfiler lane histograms — see sim/lane.hh) so stamping
 * stays synchronization-free, exports merge the partitions in a
 * canonical order that is a pure function of what was recorded, the
 * streaming observer is flushed in that order at every barrier
 * (TraceSink::flushObserver), and timeline gauges are sampled by the
 * coordinator between rounds at period-aligned instants no lane has
 * yet reached (attachProbe). Exported bytes are identical at every
 * VIRTSIM_SHARDS; no serial fallback is needed or provided.
 *
 * VIRTSIM_SHARDS=1 (the default) constructs a single lane and run()
 * is a literal passthrough to EventQueue::run() — unless a probe is
 * attached, in which case even one lane takes the round path so
 * barrier-driven sampling and observer flushing behave identically.
 */

#ifndef VIRTSIM_SIM_SHARD_HH
#define VIRTSIM_SIM_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/shard_profile.hh"
#include "sim/types.hh"

namespace virtsim {

class MetricsRegistry;
class TimelineSampler;
struct Probe;

/** Lane count a kernel built from the environment will use:
 *  VIRTSIM_SHARDS if set (validated positive integer), else 1. */
int shardLanes();

/**
 * N event lanes plus the conservative coordinator. See file comment.
 */
class ShardedEventKernel
{
  public:
    explicit ShardedEventKernel(int laneCount = 1);
    ~ShardedEventKernel();

    ShardedEventKernel(const ShardedEventKernel &) = delete;
    ShardedEventKernel &operator=(const ShardedEventKernel &) = delete;

    int laneCount() const { return static_cast<int>(lanes_.size()); }

    /** Lane i's event queue. References stay valid for the kernel's
     *  lifetime. Lane 0 is the serial kernel when laneCount() == 1. */
    EventQueue &
    lane(int i)
    {
        return *lanes_[static_cast<std::size_t>(i)];
    }

    /** @name Shard-to-lane assignment */
    ///@{
    /** Map a shard onto a lane (default: shard % laneCount, with
     *  every shard on lane 0 when laneCount == 1). Components coupled
     *  through zero-latency shared state must share a lane. */
    void assignShard(ShardId shard, int lane);

    int laneOf(ShardId shard) const;
    ///@}

    /**
     * Declare a channel from shard src to shard dst with the given
     * minimum latency. src may be anyShard (every lane can send; used
     * for IPIs, where the sender is whichever CPU executes the send).
     * @pre lookahead > 0 when the endpoints resolve to different
     *      lanes — a zero-latency cross-lane edge would deadlock the
     *      conservative horizon. Zero is fine same-lane.
     * @return a stable reference, valid for the kernel's lifetime.
     */
    ShardChannel &channel(std::string name, ShardId src, ShardId dst,
                          Cycles lookahead);

    /** @name Execution */
    ///@{
    /** Run until every lane drains. @return final time (max lane). */
    Cycles run();

    /** Run events with timestamps <= limit on every lane; lanes are
     *  then advanced to limit. @return the final time. */
    Cycles runUntil(Cycles limit);

    /** Fire exactly one event on the single lane. Only meaningful —
     *  and only allowed — for single-lane kernels (unit-test
     *  stepping); multi-lane execution is round-based. */
    bool step();

    /** Drop all pending events and buffered cross-lane messages. */
    void clear();

    /** clear() plus rewind every lane's clock and sequence counter
     *  and zero the round statistics (testbed reuse). */
    void reset();

    /** Latest lane clock (the simulation's notion of "now" between
     *  runs; lanes may transiently differ during a run). */
    Cycles now() const;
    ///@}

    /**
     * Attach the observability bundle the kernel must service while
     * running rounds (or nullptr to detach): the coordinator flushes
     * the trace sink's deferred observer at every barrier and, when
     * the probe's timeline is enabled, samples its gauges at
     * period-aligned simulated instants between rounds — each sample
     * taken after every event below the instant and before any event
     * at or above it, at every lane count. Also routes single-lane
     * run()s through the round loop so the same machinery engages.
     * The harness remains responsible for lane-partitioning the
     * sinks (prepareForParallel) and arming deferred observer mode.
     */
    void attachProbe(Probe *p) { probe_ = p; }
    Probe *attachedProbe() const { return probe_; }

    /**
     * Start recording the parallel-kernel profile: per-lane busy /
     * barrier-wait / stall wall time and per-round critical-channel
     * attribution (see sim/shard_profile.hh). Host-clock
     * measurements — cheap (two steady_clock reads per lane phase),
     * but nonzero, so opt-in; exports of the profile are excluded
     * from byte-identity guarantees.
     */
    void enableShardProfile();

    const ShardProfile &shardProfile() const { return profile_; }

    /**
     * Switch to the legacy dense O(lanes^2) coordinator (reference
     * implementation). Modelled results and lane statistics are
     * byte-identical either way; only wall-clock cost and execution
     * counters (parallelRounds, laneDispatches) may differ. Also
     * selectable via VIRTSIM_SHARD_DENSE=1 for benchmarks.
     */
    void setDenseCoordinator(bool dense) { dense_ = dense; }
    bool denseCoordinator() const { return dense_; }

    /**
     * Recompute every round's horizons with the dense fixed point and
     * assert the sparse worklist result is identical (bounds and
     * targets). Always on in debug (!NDEBUG) builds; this switch
     * exists so differential tests can force the check in release
     * builds too.
     */
    void enableHorizonCrossCheck() { crossCheck_ = true; }

    /** @name Shard health telemetry */
    ///@{
    struct LaneStats
    {
        std::uint64_t events = 0;   ///< events fired via rounds
        std::uint64_t advances = 0; ///< rounds that fired >= 1 event
        std::uint64_t stalls = 0;   ///< rounds blocked by the horizon
        std::uint64_t msgsIn = 0;   ///< cross-lane messages received
        Cycles maxHorizonLag = 0;   ///< max clock deficit vs front
    };

    struct Stats
    {
        std::uint64_t rounds = 0;         ///< synchronization rounds
        std::uint64_t parallelRounds = 0; ///< rounds using the crew
        std::uint64_t crossMsgs = 0;      ///< total cross-lane sends
        /** Lane executions handed to the execute phase, summed over
         *  rounds. The sparse coordinator's elision shows up here:
         *  laneDispatches / rounds is the mean number of *runnable*
         *  lanes per round, far below laneCount() on a mostly idle
         *  fleet (the dense coordinator always dispatches every
         *  lane). */
        std::uint64_t laneDispatches = 0;
        std::vector<LaneStats> lanes;
    };

    const Stats &stats() const { return st; }

    /**
     * Publish the round statistics as machine-domain "shard.*"
     * counters. Explicit opt-in, like publishSweepPoolStats(): lane
     * counts are a host-side execution detail, so they are never
     * mixed into per-testbed snapshots (which must stay byte-identical
     * across VIRTSIM_SHARDS). Per-lane counter rows are emitted only
     * for lanes that did anything — at fleet scale most lanes of a
     * generously sized kernel stay empty, and 256 all-zero rows would
     * drown the export; "shard.lanes_active" carries the count of
     * emitted rows.
     */
    void publishStats(MetricsRegistry &metrics) const;

    /**
     * Register shard-health gauges with a timeline sampler. Opt-in
     * for the same reason as publishStats: lane topology is a
     * host-side execution detail that must not leak into exports
     * meant to be byte-identical across VIRTSIM_SHARDS.
     *
     * Always registers three aggregate gauges (shard.lanes_live,
     * shard.stall_total, shard.lag_max); the per-lane trio (depth,
     * lag, stalls) is added only when laneCount() <=
     * perLaneGaugeCap — a 256-lane fleet must not flood the timeline
     * with 768 per-lane series.
     */
    void registerGauges(TimelineSampler &tl);

    /** Largest lane count for which registerGauges() emits per-lane
     *  series in addition to the aggregates. */
    static constexpr int perLaneGaugeCap = 16;
    ///@}

    /** Lane the calling thread is currently executing events for, or
     *  -1 outside lane execution (setup, coordinator). */
    static int currentLane();

  private:
    friend class ShardChannel;

    /** A buffered cross-lane message. */
    struct Pending
    {
        Cycles when;
        TapId label;
        EventFn fn;
    };

    /** Mailbox for one (source lane, destination lane) pair. Written
     *  only by the source lane's thread during a round, drained only
     *  by the coordinator between rounds — no locking needed; the
     *  round barrier provides the happens-before edges. */
    struct Mailbox
    {
        std::vector<Pending> msgs;
    };

    /** Implementation of ShardChannel::send. */
    EventId channelSend(ShardChannel &ch, Cycles when, TapId label,
                        EventFn fn);

    Mailbox &
    mailbox(int srcLane, int dstLane)
    {
        return mail[static_cast<std::size_t>(srcLane) *
                        lanes_.size() +
                    static_cast<std::size_t>(dstLane)];
    }

    /** Record (or tighten) the lookahead edge srcLane -> dstLane,
     *  remembering the channel that owns the tightest bound for
     *  critical-channel attribution. */
    void addLookahead(int srcLane, int dstLane, Cycles look,
                      const std::string &channelName);

    /** Flatten the lookahead matrix into the in/out adjacency lists.
     *  Called lazily at run start after any channel declaration. */
    void rebuildEdges();

    /** Re-read lane i's next event time into the cache, keeping the
     *  live-lane set consistent. */
    void refreshLane(int i);

    /** The round loop shared by run() and runUntil(). */
    Cycles runRounds(bool bounded, Cycles limit);

    /** One full run's round loop, sparse coordinator. */
    void runSparseRounds(bool bounded, Cycles limit,
                         TimelineSampler *tl, Cycles tickAt,
                         bool prof);

    /** One full run's round loop, dense reference coordinator. */
    void runDenseRounds(bool bounded, Cycles limit,
                        TimelineSampler *tl, Cycles tickAt, bool prof);

    /** Dense recomputation of this round's bounds and targets,
     *  asserted equal to the sparse worklist result. */
    void verifyHorizons(bool bounded, Cycles limit,
                        TimelineSampler *tl, Cycles tickAt) const;

    /** Execute one round's lane phase over dispatch_ (parallel or
     *  serial), filling roundFired for the dispatched lanes. */
    void executePhase(bool parallel);

    /** Pop and run dispatch_ entries until the list is drained.
     *  Called concurrently by the coordinator and every worker. */
    void drainDispatch();

    /** Run one lane up to its round target under its LaneScope,
     *  recording fired count (and busy time when profiling). */
    void runLane(int i);

    /** @name Worker crew (sized by host cores, not lanes; the
     *  coordinator thread drains the dispatch list alongside it) */
    ///@{
    void startCrew();
    void stopCrew();
    void workerLoop();
    ///@}

    std::vector<std::unique_ptr<EventQueue>> lanes_;
    std::vector<std::unique_ptr<ShardChannel>> channels_;
    std::vector<int> shardLane;  ///< shard -> lane, assignShard()
    std::vector<Cycles> minLook; ///< lane x lane lookahead matrix
    /** Channel owning the tightest lookahead per lane pair, for
     *  critical-channel attribution in the shard profile. */
    std::vector<std::string> lookChannel;
    std::vector<Mailbox> mail;   ///< lane x lane mailboxes

    /** @name Sparse channel graph (rebuilt from minLook on demand) */
    ///@{
    std::vector<std::vector<LaneEdge>> inEdges_;
    std::vector<std::vector<LaneEdge>> outEdges_;
    bool edgesDirty_ = true;
    ///@}

    /** Destinations lane s buffered a first message for this round:
     *  written only by lane s's thread (mailbox discipline), read and
     *  cleared only by the coordinator between rounds. */
    std::vector<std::vector<int>> touchedDst_;

    /** @name Cached lane state (coordinator-owned)
     *  nextEv_ mirrors every lane's nextEventTime(); liveLanes_ is
     *  the unordered set of lanes with a pending event, with
     *  livePos_/laneLive_ the swap-erase bookkeeping. Valid because a
     *  lane's queue only changes by running, by a merged message, or
     *  by setup between runs — all refresh points. */
    ///@{
    std::vector<Cycles> nextEv_;
    std::vector<int> liveLanes_;
    std::vector<int> livePos_;
    std::vector<unsigned char> laneLive_;
    ///@}

    /** @name Worklist-relaxation scratch (bound_ stays noBound
     *  everywhere between rounds; touchedBound_ undoes each round) */
    ///@{
    std::vector<Cycles> bound_;
    std::vector<int> work_;
    std::vector<unsigned char> inWork_;
    std::vector<int> touchedBound_;
    ///@}

    /** Runnable lanes this round, ascending; doubles as the merge
     *  scan list next round (only dispatched lanes can have sent). */
    std::vector<int> dispatch_;
    std::vector<unsigned char> dispatched_;
    /** Next dispatch_ index to claim (work-stealing pop). */
    std::atomic<std::size_t> dispatchNext_{0};

    /** Per-round scratch, owned by the coordinator; workers read
     *  their own targets slot and write their own fired slot. */
    std::vector<Cycles> roundTarget;
    std::vector<std::size_t> roundFired;
    /** Per-round, per-lane busy wall time, written by each lane's
     *  executor inside the round barrier (profiler only). */
    std::vector<std::uint64_t> roundBusyNs;

    Stats st;
    Probe *probe_ = nullptr;
    ShardProfile profile_;
    bool profileEnabled_ = false;
    bool dense_ = false;
    bool crossCheck_ = false;

    /** Crew synchronization: generation-counted round barrier. */
    std::mutex crewMutex;
    std::condition_variable crewStart;
    std::condition_variable crewDone;
    std::vector<std::thread> crew;
    std::uint64_t crewGen = 0;
    int crewRunning = 0;
    bool crewQuit = false;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_SHARD_HH
