#include "sim/latency.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/units.hh"

namespace virtsim {

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    if (_count == 0)
        return 0;
    if (q <= 0.0)
        return _min;
    if (q >= 1.0)
        return _max;
    // Nearest rank: the k-th smallest sample, k = ceil(q * count).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    if (rank < 1)
        rank = 1;
    if (rank > _count)
        rank = _count;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        cum += buckets[i];
        if (cum >= rank) {
            // Highest equivalent value, clamped into the exact
            // observed range.
            std::uint64_t v = bucketHigh(i);
            v = v > _max ? _max : v;
            v = v < _min ? _min : v;
            return v;
        }
    }
    return _max; // unreachable: cum == _count by then
}

std::uint64_t
LatencyHistogram::countAbove(std::uint64_t threshold) const
{
    if (_count == 0 || threshold >= _max)
        return 0;
    std::uint64_t above = 0;
    for (std::size_t i = bucketOf(threshold) + 1; i < numBuckets; ++i)
        above += buckets[i];
    return above;
}

void
LatencyHistogram::reset()
{
    buckets.fill(0);
    _count = 0;
    _sum = 0;
    _min = UINT64_MAX;
    _max = 0;
}

std::string
LatencyHistogram::render() const
{
    std::ostringstream oss;
    if (_count == 0) {
        oss << "n=0";
        return oss.str();
    }
    oss << "n=" << _count << " min=" << _min << " p50=" << p50()
        << " p99=" << p99() << " max=" << _max;
    return oss.str();
}

const char *
to_string(LatencyPhase phase)
{
    switch (phase) {
      case LatencyPhase::Rtt:
        return "rtt";
      case LatencyPhase::ClientThink:
        return "client_think";
      case LatencyPhase::WireFlight:
        return "wire_flight";
      case LatencyPhase::ServerQueue:
        return "server_queue";
      case LatencyPhase::Service:
        return "service";
    }
    return "?";
}

void
RequestTracker::configure(int nCpus)
{
    VIRTSIM_ASSERT(nCpus > 0, "RequestTracker needs >= 1 CPU");
    _cpus = nCpus;
    segs.assign(1, std::vector<LatencyHistogram>(
                       static_cast<std::size_t>(nCpus) *
                       numLatencyPhases));
}

void
RequestTracker::prepareForParallel(int lanes)
{
    VIRTSIM_ASSERT(_cpus > 0,
                   "RequestTracker::prepareForParallel() before "
                   "configure()");
    VIRTSIM_ASSERT(lanes >= 1, "need >= 1 lane");
    segs.assign(static_cast<std::size_t>(lanes),
                std::vector<LatencyHistogram>(
                    static_cast<std::size_t>(_cpus) *
                    numLatencyPhases));
}

void
RequestTracker::recordEnabled(int cpu, LatencyPhase phase,
                              Cycles value)
{
    VIRTSIM_ASSERT(cpu >= 0 && cpu < _cpus,
                   "RequestTracker: cpu ", cpu, " out of range");
    laneSeg()[slotOf(cpu, phase)].add(value);
}

LatencyHistogram
RequestTracker::merged(int cpu, LatencyPhase phase) const
{
    VIRTSIM_ASSERT(cpu >= 0 && cpu < _cpus,
                   "RequestTracker: cpu ", cpu, " out of range");
    LatencyHistogram out;
    for (const auto &seg : segs)
        out.merge(seg[slotOf(cpu, phase)]);
    return out;
}

LatencyHistogram
RequestTracker::aggregate(LatencyPhase phase) const
{
    LatencyHistogram out;
    for (const auto &seg : segs)
        for (int c = 0; c < _cpus; ++c)
            out.merge(seg[slotOf(c, phase)]);
    return out;
}

std::uint64_t
RequestTracker::totalCount(LatencyPhase phase, int cpu) const
{
    std::uint64_t n = 0;
    for (const auto &seg : segs) {
        for (int c = 0; c < _cpus; ++c) {
            if (cpu >= 0 && c != cpu)
                continue;
            n += seg[slotOf(c, phase)].count();
        }
    }
    return n;
}

std::uint64_t
RequestTracker::totalSum(LatencyPhase phase, int cpu) const
{
    std::uint64_t n = 0;
    for (const auto &seg : segs) {
        for (int c = 0; c < _cpus; ++c) {
            if (cpu >= 0 && c != cpu)
                continue;
            n += seg[slotOf(c, phase)].sum();
        }
    }
    return n;
}

std::uint64_t
RequestTracker::totalAbove(LatencyPhase phase,
                           std::uint64_t threshold, int cpu) const
{
    std::uint64_t n = 0;
    for (const auto &seg : segs) {
        for (int c = 0; c < _cpus; ++c) {
            if (cpu >= 0 && c != cpu)
                continue;
            n += seg[slotOf(c, phase)].countAbove(threshold);
        }
    }
    return n;
}

std::uint64_t
RequestTracker::quantileAcross(LatencyPhase phase, double q,
                               int cpu) const
{
    const std::uint64_t total = totalCount(phase, cpu);
    if (total == 0)
        return 0;
    // Exact min/max across the selected slots for clamping.
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto &seg : segs) {
        for (int c = 0; c < _cpus; ++c) {
            if (cpu >= 0 && c != cpu)
                continue;
            const LatencyHistogram &h = seg[slotOf(c, phase)];
            if (h.empty())
                continue;
            lo = h.min() < lo ? h.min() : lo;
            hi = h.max() > hi ? h.max() : hi;
        }
    }
    if (q <= 0.0)
        return lo;
    if (q >= 1.0)
        return hi;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < LatencyHistogram::numBuckets; ++i) {
        for (const auto &seg : segs) {
            for (int c = 0; c < _cpus; ++c) {
                if (cpu >= 0 && c != cpu)
                    continue;
                cum += seg[slotOf(c, phase)].bucketCount(i);
            }
        }
        if (cum >= rank) {
            std::uint64_t v = LatencyHistogram::bucketHigh(i);
            v = v > hi ? hi : v;
            v = v < lo ? lo : v;
            return v;
        }
    }
    return hi;
}

void
RequestTracker::reset()
{
    for (auto &seg : segs)
        for (auto &h : seg)
            h.reset();
    lastId = 0;
}

void
RequestTracker::clear()
{
    segs.clear();
    _cpus = 0;
    _enabled = false;
    lastId = 0;
}

namespace {

/** %.4f without locale surprises (matches the timeline exporter). */
std::string
latFormatUs(double us)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", us);
    return std::string(buf);
}

void
writeHistJson(std::ostream &os, const LatencyHistogram &h,
              const Frequency &f)
{
    os << "{\"count\":" << h.count();
    if (!h.empty()) {
        os << ",\"min_cycles\":" << h.min()
           << ",\"max_cycles\":" << h.max()
           << ",\"sum_cycles\":" << h.sum()
           << ",\"mean_us\":"
           << latFormatUs(f.us(h.sum()) /
                          static_cast<double>(h.count()))
           << ",\"p50_cycles\":" << h.p50()
           << ",\"p90_cycles\":" << h.p90()
           << ",\"p99_cycles\":" << h.p99()
           << ",\"p999_cycles\":" << h.p999()
           << ",\"p50_us\":" << latFormatUs(f.us(h.p50()))
           << ",\"p90_us\":" << latFormatUs(f.us(h.p90()))
           << ",\"p99_us\":" << latFormatUs(f.us(h.p99()))
           << ",\"p999_us\":" << latFormatUs(f.us(h.p999()))
           << ",\"max_us\":" << latFormatUs(f.us(h.max()));
    }
    // Sparse nonzero buckets: validators recompute quantiles and
    // violation mass from these and cross-check the fields above.
    os << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < LatencyHistogram::numBuckets; ++i) {
        if (h.bucketCount(i) == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "[" << i << "," << h.bucketCount(i) << "]";
    }
    os << "]}";
}

void
writePhaseSet(std::ostream &os, const RequestTracker &t,
              const Frequency &f, int cpu)
{
    for (std::size_t p = 0; p < numLatencyPhases; ++p) {
        const LatencyPhase ph = static_cast<LatencyPhase>(p);
        if (p > 0)
            os << ",";
        os << "\"" << to_string(ph) << "\":";
        const LatencyHistogram h =
            cpu < 0 ? t.aggregate(ph) : t.merged(cpu, ph);
        writeHistJson(os, h, f);
    }
}

} // namespace

std::string
renderLatencyJson(const RequestTracker &tracker,
                  const Frequency &freq, const std::string &world,
                  const std::string &sloJson)
{
    std::ostringstream os;
    os << "{\n\"schema\":\"virtsim-latency-1\",\n"
       << "\"world\":\"" << world << "\",\n"
       << "\"frequency_ghz\":" << freq.ghz() << ",\n"
       << "\"sub_bucket_bits\":" << LatencyHistogram::subBucketBits
       << ",\n"
       << "\"requests\":"
       << tracker.totalCount(LatencyPhase::Rtt) << ",\n"
       << "\"phases\":[";
    for (std::size_t p = 0; p < numLatencyPhases; ++p) {
        if (p > 0)
            os << ",";
        os << "\"" << to_string(static_cast<LatencyPhase>(p)) << "\"";
    }
    os << "],\n\"aggregate\":{";
    writePhaseSet(os, tracker, freq, -1);
    os << "},\n\"per_cpu\":[";
    for (int c = 0; c < tracker.cpus(); ++c) {
        if (c > 0)
            os << ",";
        os << "\n{\"cpu\":" << c << ",";
        writePhaseSet(os, tracker, freq, c);
        os << "}";
    }
    os << "\n],\n\"slo\":"
       << (sloJson.empty() ? std::string("[]") : sloJson) << "\n}";
    return os.str();
}

} // namespace virtsim
