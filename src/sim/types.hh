/**
 * @file
 * Fundamental simulation-wide type aliases.
 *
 * All simulated time in virtsim is expressed in CPU cycles of the
 * platform being simulated (the paper reports microbenchmark results
 * in cycles precisely to be comparable across the 2.4 GHz ARM and
 * 2.1 GHz x86 testbeds). Conversions to wall-clock units live in
 * sim/units.hh.
 */

#ifndef VIRTSIM_SIM_TYPES_HH
#define VIRTSIM_SIM_TYPES_HH

#include <cstdint>

namespace virtsim {

/** Simulated time and durations, in CPU cycles. */
using Cycles = std::uint64_t;

/** Identifier of a physical CPU within a Machine. */
using PcpuId = int;

/** Identifier of a virtual CPU within a Vm. */
using VcpuId = int;

/** Hardware / virtual interrupt number (GIC INTID or x86 vector). */
using IrqId = int;

/** Sentinel for "no CPU". */
inline constexpr PcpuId invalidPcpu = -1;

/** Sentinel for "no VCPU". */
inline constexpr VcpuId invalidVcpu = -1;

} // namespace virtsim

#endif // VIRTSIM_SIM_TYPES_HH
