/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives an entire simulated testbed (both server
 * machines and the client). Time advances in CPU cycles. Events
 * scheduled for the same cycle fire in scheduling order (FIFO via a
 * monotonically increasing sequence number), which keeps runs fully
 * deterministic — a property the paper's measurement methodology works
 * hard to achieve on real hardware via pinning and interrupt
 * isolation, and which we get for free here.
 */

#ifndef VIRTSIM_SIM_EVENT_QUEUE_HH
#define VIRTSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace virtsim {

/** Callback type fired when an event's time arrives. */
using EventFn = std::function<void()>;

/**
 * A deterministic min-heap event queue keyed on (time, sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Cycles now() const { return _now; }

    /** Number of events not yet fired. */
    std::size_t pending() const { return heap.size(); }

    /**
     * Schedule fn to run at absolute time when.
     * @pre when >= now(), otherwise the simulation would go backwards.
     */
    void
    scheduleAt(Cycles when, EventFn fn)
    {
        VIRTSIM_ASSERT(when >= _now, "scheduling into the past: when=",
                       when, " now=", _now);
        heap.push(Entry{when, nextSeq++, std::move(fn)});
    }

    /** Schedule fn to run delay cycles from now. */
    void
    scheduleAfter(Cycles delay, EventFn fn)
    {
        scheduleAt(_now + delay, std::move(fn));
    }

    /**
     * Run events until the queue drains.
     * @return the final simulated time.
     */
    Cycles run();

    /**
     * Run events with timestamps <= limit; the clock is then advanced
     * to limit even if the queue drained earlier.
     * @return the final simulated time (== limit unless already past).
     */
    Cycles runUntil(Cycles limit);

    /** Fire exactly one event, if any. @return true if one fired. */
    bool step();

    /** Drop all pending events (used between experiment repetitions). */
    void clear();

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Cycles _now = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_EVENT_QUEUE_HH
