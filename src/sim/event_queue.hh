/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives an entire simulated testbed (both server
 * machines and the client). Time advances in CPU cycles. Events
 * scheduled for the same cycle fire in scheduling order (FIFO via a
 * monotonically increasing sequence number), which keeps runs fully
 * deterministic — a property the paper's measurement methodology works
 * hard to achieve on real hardware via pinning and interrupt
 * isolation, and which we get for free here.
 *
 * The implementation is built for throughput:
 *
 *  - Callbacks live in non-allocating inline storage
 *    (sim/inline_function.hh) inside a chunked slot arena recycled
 *    through a LIFO free list. Chunks never move, so growing the
 *    arena relocates nothing, and freshly-freed (cache-hot) slots
 *    are reused first.
 *  - The ready queue is a 4-ary implicit min-heap whose entries
 *    carry their (time, seq) sort key inline: sifting compares and
 *    moves small contiguous PODs and never dereferences the arena.
 *    The 4-ary layout halves the tree depth of a binary heap and
 *    keeps each sift level within two cache lines.
 *  - cancel() is O(1) lazy deletion: the slot is recycled
 *    immediately and the heap entry is discarded when it surfaces,
 *    detected by a per-slot generation count.
 *
 * In steady state scheduleAt/step/cancel never touch the allocator;
 * the only allocations are arena chunks and amortized heap-vector
 * growth up to the run's high-water mark of in-flight events.
 */

#ifndef VIRTSIM_SIM_EVENT_QUEUE_HH
#define VIRTSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/log.hh"
#include "sim/probe.hh"
#include "sim/types.hh"

namespace virtsim {

/** Callback type fired when an event's time arrives. Captures are
 *  stored inline; oversized captures fail to compile. */
using EventFn = InlineFunction<void()>;

/** Handle to a scheduled event, usable to cancel it. Stale handles
 *  (event already fired, cancelled, or cleared) are detected via a
 *  per-slot generation count and are safe to cancel again. */
using EventId = std::uint64_t;

/** Never names an event. */
inline constexpr EventId invalidEventId = 0;

/** Returned by EventQueue::nextEventTime() when nothing is pending;
 *  later than any representable event time. */
inline constexpr Cycles noPendingEvent = ~Cycles{0};

/**
 * A deterministic min-heap event queue keyed on (time, sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in cycles. */
    Cycles now() const { return _now; }

    /** Number of events not yet fired (cancelled events excluded). */
    std::size_t pending() const { return liveCount; }

    /**
     * Schedule fn to run at absolute time when.
     * @pre when >= now(), otherwise the simulation would go backwards.
     * @return a handle that can cancel the event while pending.
     */
    EventId
    scheduleAt(Cycles when, EventFn fn)
    {
        return scheduleAt(when, TapId(), std::move(fn));
    }

    /**
     * Schedule fn with a label the kernel profiler (if attached)
     * aggregates queue-wait histograms under. With no profiler the
     * label costs one predictable branch.
     */
    EventId
    scheduleAt(Cycles when, TapId label, EventFn fn)
    {
        VIRTSIM_ASSERT(when >= _now, "scheduling into the past: when=",
                       when, " now=", _now);
        const std::uint32_t slot = allocSlot();
        Slot &s = slotAt(slot);
        s.fn = std::move(fn);
        if (profiler) {
            if (profMeta.size() <= slot)
                profMeta.resize(slot + 1);
            profMeta[slot] = ProfMeta{_now, label};
        }
        heap.push_back(HeapEntry{when, nextSeq++, slot, s.gen});
        siftUp(heap.size() - 1);
        ++liveCount;
        return idOf(slot, s.gen);
    }

    /** Schedule fn to run delay cycles from now. */
    EventId
    scheduleAfter(Cycles delay, EventFn fn)
    {
        return scheduleAt(_now + delay, std::move(fn));
    }

    /** Labeled scheduleAfter; see the labeled scheduleAt. */
    EventId
    scheduleAfter(Cycles delay, TapId label, EventFn fn)
    {
        return scheduleAt(_now + delay, label, std::move(fn));
    }

    /**
     * Attach (or detach, with nullptr) a profiler recording
     * queue-wait time per event label at every dispatch. Slots
     * carry the label/enqueue timestamp only while attached, so the
     * hot path is unchanged when profiling is off.
     */
    void setProfiler(EventKernelProfiler *p) { profiler = p; }

    /**
     * Cancel a pending event in O(1) amortized. The slot is recycled
     * immediately; the heap entry is discarded lazily. When dead
     * entries come to outnumber live ones (cancel-heavy phases: timer
     * churn, teardown bursts), the heap is compacted in place so
     * sift depth tracks the live population instead of the cancel
     * history.
     * @return true if the event was still pending (and is now gone);
     *         false for already-fired, already-cancelled, or cleared
     *         events (stale handles are harmless).
     */
    bool
    cancel(EventId id)
    {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(id & 0xffffffffu);
        if (slot >= slotCount)
            return false;
        Slot &s = slotAt(slot);
        if (idOf(slot, s.gen) != id)
            return false; // stale: already fired, cancelled, cleared
        releaseSlot(slot, s);
        --liveCount;
        ++deadCount;
        if (deadCount * 2 > heap.size() && heap.size() >= compactFloor)
            compact();
        return true;
    }

    /** Cancelled entries still occupying heap slots (reclaimed by
     *  compaction or as they surface). */
    std::size_t deadEntries() const { return deadCount; }

    /** Heap slots in use, live plus dead (for hygiene tests). */
    std::size_t heapSize() const { return heap.size(); }

    /** Times the heap was compacted to purge dead entries. */
    std::uint64_t compactions() const { return _compactions; }

    /**
     * Earliest pending event's timestamp, or noPendingEvent when the
     * queue is drained. Dead entries surfacing at the top are purged
     * as a side effect. This is the lane-clock probe the sharded
     * kernel's conservative horizon computation is built on.
     */
    Cycles
    nextEventTime()
    {
        purgeTop();
        return heap.empty() ? noPendingEvent : heap.front().when;
    }

    /**
     * Fire every event with timestamp strictly below bound, leaving
     * the clock at the last fired event (unlike runUntil, the clock
     * is NOT advanced to the bound). Used by the sharded kernel to
     * advance one lane to its conservative horizon: events at or past
     * the bound might still be preceded by a cross-shard message.
     * @return number of events fired.
     */
    std::size_t runBefore(Cycles bound);

    /**
     * Advance the clock to t without firing anything.
     * @pre no pending event earlier than t. No-op when already past.
     */
    void
    advanceClockTo(Cycles t)
    {
        VIRTSIM_ASSERT(nextEventTime() >= t,
                       "advanceClockTo(", t, ") would skip an event at ",
                       nextEventTime());
        if (_now < t)
            _now = t;
    }

    /**
     * Run events until the queue drains.
     * @return the final simulated time.
     */
    Cycles run();

    /**
     * Run events with timestamps <= limit; the clock is then advanced
     * to limit even if the queue drained earlier.
     * @return the final simulated time (== limit unless already past).
     */
    Cycles runUntil(Cycles limit);

    /** Fire exactly one event, if any. @return true if one fired. */
    bool step();

    /** Drop all pending events (used between experiment repetitions).
     *  Arena slots are retained and recycled by later schedules. */
    void clear();

    /** clear() plus rewind simulated time and the tie-break sequence
     *  to zero, so a recycled queue schedules and fires in exactly
     *  the order a newly constructed one would. Arena slot
     *  generations persist, which only changes EventId encodings —
     *  never firing order or simulated timing. */
    void
    reset()
    {
        clear();
        _now = 0;
        nextSeq = 0;
    }

  private:
    /** Heap entry: sort key plus the arena slot holding the
     *  callback. POD-small so sifting stays in contiguous memory and
     *  never dereferences the arena; gen detects entries whose event
     *  was cancelled (the slot has moved on). */
    struct HeapEntry
    {
        Cycles when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** One arena cell: the callback and its reuse generation. Kept
     *  minimal so the arena stays cache-dense; profiling metadata
     *  lives in the parallel profMeta array, touched only while a
     *  profiler is attached. */
    struct Slot
    {
        EventFn fn;
        std::uint32_t gen = 0;
    };

    /** Per-slot enqueue metadata for the kernel profiler. */
    struct ProfMeta
    {
        Cycles enqueuedAt = 0;
        TapId label;
    };

    static constexpr std::size_t heapArity = 4;
    /** Minimum heap size before cancel() considers compaction; below
     *  this, dead entries drain fast enough through purgeTop(). */
    static constexpr std::size_t compactFloor = 64;
    /** Slots per arena chunk; chunks are allocated on demand and
     *  never move or shrink. */
    static constexpr std::size_t chunkShift = 6;
    static constexpr std::size_t chunkSlots = 1u << chunkShift;

    /** Strict (time, sequence) order; seq is unique, so this is a
     *  total order and heap pops are fully deterministic. */
    static bool
    firesBefore(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    Slot &
    slotAt(std::uint32_t slot)
    {
        return chunks[slot >> chunkShift][slot & (chunkSlots - 1)];
    }

    std::uint32_t
    allocSlot()
    {
        if (!freeSlots.empty()) {
            const std::uint32_t slot = freeSlots.back();
            freeSlots.pop_back();
            return slot;
        }
        if (slotCount == chunks.size() * chunkSlots)
            chunks.push_back(std::make_unique<Slot[]>(chunkSlots));
        return static_cast<std::uint32_t>(slotCount++);
    }

    /** Recycle a slot: destroy the callback and bump gen so any
     *  outstanding EventId / heap entry for it turns stale. */
    void
    releaseSlot(std::uint32_t slot, Slot &s)
    {
        s.fn.reset();
        ++s.gen;
        freeSlots.push_back(slot);
    }

    static EventId
    idOf(std::uint32_t slot, std::uint32_t gen)
    {
        // gen+1 in the high half keeps every valid id nonzero.
        return (static_cast<EventId>(gen) + 1) << 32 | slot;
    }

    /** Pop the top heap entry (which must exist). */
    void popTop();
    /** Discard cancelled entries surfacing at the top. */
    void purgeTop();
    /** Drop every dead entry and re-heapify the survivors. */
    void compact();
    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);

    /** Arena of callback slots, in chunks that never relocate. */
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::size_t slotCount = 0;
    std::vector<std::uint32_t> freeSlots; ///< LIFO free slot stack
    /** Enqueue time + label per slot, maintained only while a
     *  profiler is attached (empty and never touched otherwise). */
    std::vector<ProfMeta> profMeta;
    std::vector<HeapEntry> heap;          ///< 4-ary implicit min-heap
    std::size_t liveCount = 0;            ///< pending minus cancelled
    std::size_t deadCount = 0;            ///< cancelled entries in heap
    Cycles _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t _compactions = 0;
    EventKernelProfiler *profiler = nullptr;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_EVENT_QUEUE_HH
