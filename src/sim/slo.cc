#include "sim/slo.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/probe.hh"
#include "sim/timeline.hh"

namespace virtsim {

void
SloEngine::warmTaps() const
{
    internTap("watchdog.anomalies");
    internTap("watchdog.anomalies_dropped");
    for (const SloSpec &s : specs_) {
        internTap("slo." + s.name + ".requests");
        internTap("slo." + s.name + ".violations");
        internTap("slo." + s.name + ".breached");
        // The watchdog rule this engine installs is named
        // "slo.<name>"; publishAnomalies prefixes "watchdog.".
        internTap("watchdog.slo." + s.name);
    }
}

void
SloEngine::installTimeline(TimelineSampler &tl, const Frequency &freq)
{
    VIRTSIM_ASSERT(tracker != nullptr,
                   "SloEngine::installTimeline() before bind()");
    usPerCycle = 1.0 / freq.cyclesPerUs();
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const std::string base = "slo." + specs_[i].name;
        // Rolling observed quantile as a Perfetto counter track, in
        // microseconds so the track reads like the paper's tables.
        tl.addGauge(base + ".q_us",
                    [this, i] { return live[i].quantileUs; });
        // 1 while the most recently completed burn window violated
        // the contract; the rule below turns that into a named
        // anomaly that benches fail on.
        tl.addGauge(base + ".burn",
                    [this, i] { return live[i].burning; });
        tl.addRule(base, base + ".burn", 1, 0);
    }
    // Refresh runs before gauges are read on each tick, in barrier
    // context (all lanes quiescent) — the one race-free point to
    // fold lane-local histograms.
    tl.addSampleHook([this](Cycles now) { onSample(now); });
}

void
SloEngine::onSample(Cycles now)
{
    if (tracker == nullptr)
        return;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const SloSpec &s = specs_[i];
        LiveState &st = live[i];
        const std::uint64_t q =
            tracker->quantileAcross(s.phase, s.quantile);
        st.quantileUs = static_cast<std::int64_t>(
            std::llround(static_cast<double>(q) * usPerCycle));
        if (s.burnWindow == 0)
            continue;
        const std::uint64_t requests = tracker->totalCount(s.phase);
        const std::uint64_t violations =
            tracker->totalAbove(s.phase, s.thresholdCycles);
        if (!st.windowOpen) {
            st.windowOpen = true;
            st.windowStart = now;
            st.baseRequests = requests;
            st.baseViolations = violations;
            continue;
        }
        if (now - st.windowStart < s.burnWindow)
            continue;
        // Close the elapsed window: judge its exact request mass.
        const std::uint64_t dReq = requests - st.baseRequests;
        const std::uint64_t dViol = violations - st.baseViolations;
        ++st.windows;
        const bool burnt =
            dReq > 0 && static_cast<double>(dViol) >
                            s.maxViolationFraction *
                                static_cast<double>(dReq);
        const bool was = st.burning != 0;
        st.burning = burnt ? 1 : 0;
        if (burnt) {
            ++st.burnt;
            if (!was && breachHook)
                breachHook(now, i);
        }
        st.windowStart = now;
        st.baseRequests = requests;
        st.baseViolations = violations;
    }
}

std::vector<SloVerdict>
SloEngine::judge() const
{
    std::vector<SloVerdict> out;
    if (tracker == nullptr)
        return out;
    out.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const SloSpec &s = specs_[i];
        SloVerdict v;
        v.spec = s;
        v.requests = tracker->totalCount(s.phase);
        v.violations =
            tracker->totalAbove(s.phase, s.thresholdCycles);
        v.observedQuantile =
            tracker->quantileAcross(s.phase, s.quantile);
        v.windows = live[i].windows;
        v.burntWindows = live[i].burnt;
        out.push_back(std::move(v));
    }
    return out;
}

std::uint64_t
SloEngine::breaches() const
{
    std::uint64_t n = 0;
    for (const SloVerdict &v : judge())
        if (!v.pass())
            ++n;
    return n;
}

void
SloEngine::publish(MetricsRegistry &metrics) const
{
    for (const SloVerdict &v : judge()) {
        const std::string base = "slo." + v.spec.name;
        metrics.machine()
            .counter(internTap(base + ".requests"))
            .inc(v.requests);
        metrics.machine()
            .counter(internTap(base + ".violations"))
            .inc(v.violations);
        metrics.machine()
            .counter(internTap(base + ".breached"))
            .inc(v.pass() ? 0 : 1);
    }
}

namespace {

std::string
sloFormat(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return std::string(buf);
}

} // namespace

std::string
SloEngine::verdictsJson(const Frequency &freq) const
{
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const SloVerdict &v : judge()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << v.spec.name << "\",\"phase\":\""
           << to_string(v.spec.phase) << "\",\"quantile\":"
           << sloFormat(v.spec.quantile, 4)
           << ",\"threshold_cycles\":" << v.spec.thresholdCycles
           << ",\"threshold_us\":"
           << sloFormat(freq.us(v.spec.thresholdCycles), 4)
           << ",\"max_violation_fraction\":"
           << sloFormat(v.spec.maxViolationFraction, 6)
           << ",\"requests\":" << v.requests
           << ",\"violations\":" << v.violations
           << ",\"violation_fraction\":"
           << sloFormat(v.violationFraction(), 6)
           << ",\"observed_quantile_cycles\":" << v.observedQuantile
           << ",\"observed_quantile_us\":"
           << sloFormat(freq.us(v.observedQuantile), 4)
           << ",\"windows\":" << v.windows << ",\"burnt_windows\":"
           << v.burntWindows << ",\"pass\":"
           << (v.pass() ? "true" : "false") << "}";
    }
    os << (first ? "]" : "\n]");
    return os.str();
}

void
SloEngine::reset()
{
    for (LiveState &st : live)
        st = LiveState{};
}

} // namespace virtsim
