#include "sim/event_queue.hh"

#include <utility>

namespace virtsim {

Cycles
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Cycles
EventQueue::runUntil(Cycles limit)
{
    while (!heap.empty() && heap.top().when <= limit)
        step();
    if (_now < limit)
        _now = limit;
    return _now;
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // priority_queue::top() is const; the entry must be copied out
    // before pop. The callback is moved from the copy, not the heap.
    Entry e = heap.top();
    heap.pop();
    VIRTSIM_ASSERT(e.when >= _now, "event in the past");
    _now = e.when;
    EventFn fn = std::move(e.fn);
    fn();
    return true;
}

void
EventQueue::clear()
{
    while (!heap.empty())
        heap.pop();
}

} // namespace virtsim
