#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

namespace virtsim {

void
EventQueue::siftUp(std::size_t pos)
{
    const HeapEntry e = heap[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / heapArity;
        if (!firesBefore(e, heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = e;
}

void
EventQueue::siftDown(std::size_t pos)
{
    const HeapEntry e = heap[pos];
    const std::size_t n = heap.size();
    for (;;) {
        const std::size_t first = pos * heapArity + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + heapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (firesBefore(heap[c], heap[best]))
                best = c;
        }
        if (!firesBefore(heap[best], e))
            break;
        heap[pos] = heap[best];
        pos = best;
    }
    heap[pos] = e;
}

void
EventQueue::popTop()
{
    const HeapEntry moved = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
        heap[0] = moved;
        siftDown(0);
    }
}

void
EventQueue::purgeTop()
{
    // deadCount == 0 is the common case and skips the per-pop arena
    // generation probe entirely.
    while (deadCount != 0 && !heap.empty()) {
        const HeapEntry &top = heap.front();
        if (slotAt(top.slot).gen == top.gen)
            return; // live
        popTop();
        --deadCount;
    }
}

void
EventQueue::compact()
{
    // Keep only entries whose slot generation still matches (live),
    // then rebuild heap order bottom-up (Floyd): O(n) over the live
    // population, versus O(dead * log n) to drain them via purgeTop.
    std::size_t out = 0;
    for (const HeapEntry &e : heap) {
        if (slotAt(e.slot).gen == e.gen)
            heap[out++] = e;
    }
    heap.resize(out);
    deadCount = 0;
    if (!heap.empty()) {
        for (std::size_t i = (heap.size() - 1) / heapArity + 1; i-- > 0;)
            siftDown(i);
    }
    ++_compactions;
}

std::size_t
EventQueue::runBefore(Cycles bound)
{
    std::size_t fired = 0;
    for (;;) {
        purgeTop();
        if (heap.empty() || heap.front().when >= bound)
            break;
        step();
        ++fired;
    }
    return fired;
}

Cycles
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Cycles
EventQueue::runUntil(Cycles limit)
{
    for (;;) {
        purgeTop();
        if (heap.empty() || heap.front().when > limit)
            break;
        step();
    }
    if (_now < limit)
        _now = limit;
    return _now;
}

bool
EventQueue::step()
{
    purgeTop();
    if (heap.empty())
        return false;
    const HeapEntry top = heap.front();
    VIRTSIM_ASSERT(top.when >= _now, "event in the past");
    _now = top.when;
    popTop();
    Slot &s = slotAt(top.slot);
    if (profiler && top.slot < profMeta.size()) {
        const ProfMeta &m = profMeta[top.slot];
        profiler->record(m.label, top.when - m.enqueuedAt);
    }
    // Move the callback out and recycle the slot *before* firing so
    // the callback can freely schedule into the vacated slot.
    EventFn fn = std::move(s.fn);
    releaseSlot(top.slot, s);
    --liveCount;
    fn();
    return true;
}

void
EventQueue::clear()
{
    while (!heap.empty()) {
        const HeapEntry &e = heap.back();
        Slot &s = slotAt(e.slot);
        if (s.gen == e.gen)
            releaseSlot(e.slot, s);
        heap.pop_back();
    }
    liveCount = 0;
    deadCount = 0;
}

} // namespace virtsim
