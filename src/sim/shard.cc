#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <utility>

#include "sim/env.hh"
#include "sim/lane.hh"
#include "sim/log.hh"
#include "sim/probe.hh"
#include "sim/sweep.hh"
#include "sim/timeline.hh"

namespace virtsim {

namespace {

// The lane marker (currentExecLane / LaneScope, sim/lane.hh) is set
// around every runBefore() phase — parallel workers and the serial
// round loop alike — so ShardChannel sends can infer their source
// lane, and lane-partitioned sinks their segment, without threading a
// context argument through every component.

constexpr Cycles noBound = std::numeric_limits<Cycles>::max();

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

/** Saturating add for horizon arithmetic: an unbounded time plus a
 *  finite lookahead stays unbounded instead of wrapping. */
constexpr Cycles
satAdd(Cycles t, Cycles look)
{
    return t > noBound - look ? noBound : t + look;
}

} // namespace

int
shardLanes()
{
    // Cap well below anything sane; a typo like VIRTSIM_SHARDS=1e9
    // should fail loudly, not allocate a billion queues.
    const auto v = envPositiveCount("VIRTSIM_SHARDS", 1024);
    return v ? static_cast<int>(*v) : 1;
}

int
ShardedEventKernel::currentLane()
{
    return currentExecLane();
}

ShardedEventKernel::ShardedEventKernel(int laneCount)
{
    VIRTSIM_ASSERT(laneCount >= 1, "kernel needs at least one lane");
    lanes_.reserve(static_cast<std::size_t>(laneCount));
    for (int i = 0; i < laneCount; ++i)
        lanes_.push_back(std::make_unique<EventQueue>());
    const auto n = static_cast<std::size_t>(laneCount);
    minLook.assign(n * n, noBound);
    lookChannel.assign(n * n, std::string());
    mail.resize(n * n);
    touchedDst_.resize(n);
    nextEv_.assign(n, noPendingEvent);
    livePos_.assign(n, -1);
    laneLive_.assign(n, 0);
    bound_.assign(n, noBound);
    inWork_.assign(n, 0);
    dispatched_.assign(n, 0);
    roundTarget.resize(n);
    roundFired.resize(n);
    roundBusyNs.resize(n);
    st.lanes.resize(n);
    // The dense coordinator only survives as a reference: the
    // differential tests and the fleet-scale benchmarks run it to
    // prove the sparse one is equivalent and faster.
    if (envPositiveCount("VIRTSIM_SHARD_DENSE", 1))
        dense_ = true;
#ifndef NDEBUG
    crossCheck_ = true;
#endif
}

ShardedEventKernel::~ShardedEventKernel()
{
    stopCrew();
}

void
ShardedEventKernel::assignShard(ShardId shard, int lane)
{
    VIRTSIM_ASSERT(shard >= 0, "bad shard ", shard);
    VIRTSIM_ASSERT(lane >= 0 && lane < laneCount(), "bad lane ", lane);
    const auto s = static_cast<std::size_t>(shard);
    if (shardLane.size() <= s)
        shardLane.resize(s + 1, -1);
    shardLane[s] = lane;
}

int
ShardedEventKernel::laneOf(ShardId shard) const
{
    if (shard >= 0 &&
        static_cast<std::size_t>(shard) < shardLane.size() &&
        shardLane[static_cast<std::size_t>(shard)] >= 0) {
        return shardLane[static_cast<std::size_t>(shard)];
    }
    return shard < 0 ? 0 : shard % laneCount();
}

void
ShardedEventKernel::addLookahead(int srcLane, int dstLane, Cycles look,
                                 const std::string &channelName)
{
    if (srcLane == dstLane)
        return;
    const std::size_t flat = static_cast<std::size_t>(srcLane) *
                                 lanes_.size() +
                             static_cast<std::size_t>(dstLane);
    Cycles &slot = minLook[flat];
    // Remember which channel owns the tightest bound on this edge:
    // that is the name the shard profile reports when the edge limits
    // a lane's horizon. First declaration wins ties.
    if (look < slot || lookChannel[flat].empty())
        lookChannel[flat] = channelName;
    slot = std::min(slot, look);
    edgesDirty_ = true;
}

void
ShardedEventKernel::rebuildEdges()
{
    const int n = laneCount();
    inEdges_.assign(static_cast<std::size_t>(n), {});
    outEdges_.assign(static_cast<std::size_t>(n), {});
    for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
            const Cycles look =
                minLook[static_cast<std::size_t>(s) * lanes_.size() +
                        static_cast<std::size_t>(d)];
            if (look == noBound)
                continue;
            // Built with both endpoints ascending, so walking
            // inEdges_[d] visits sources in the same order the dense
            // reference scans them — identical deterministic
            // tie-breaks in critical-channel attribution.
            outEdges_[static_cast<std::size_t>(s)].push_back(
                LaneEdge{d, look});
            inEdges_[static_cast<std::size_t>(d)].push_back(
                LaneEdge{s, look});
        }
    }
    edgesDirty_ = false;
}

ShardChannel &
ShardedEventKernel::channel(std::string name, ShardId src, ShardId dst,
                            Cycles lookahead)
{
    const int dstLane = laneOf(dst);
    bool cross = false;
    if (src == anyShard) {
        for (int l = 0; l < laneCount(); ++l) {
            if (l != dstLane) {
                cross = true;
                addLookahead(l, dstLane, lookahead, name);
            }
        }
    } else if (laneOf(src) != dstLane) {
        cross = true;
        addLookahead(laneOf(src), dstLane, lookahead, name);
    }
    VIRTSIM_ASSERT(!cross || lookahead > 0,
                   "channel '", name, "' crosses lanes with zero ",
                   "lookahead; conservative sync needs latency > 0");
    // Redeclaration — a harness rebuilding its world on a long-lived
    // kernel (testbed reset), possibly with retuned latencies — reuses
    // the existing channel and keeps the tighter of the two
    // lookaheads; the matrix update above already took the min, which
    // is always the safe direction (stale edges from an earlier shard
    // plan can only tighten horizons, never unsafely widen them).
    for (auto &ch : channels_) {
        if (ch->_name == name) {
            VIRTSIM_ASSERT(ch->src == src && ch->dst == dst,
                           "channel '", name,
                           "' redeclared with different endpoints");
            ch->look = std::min(ch->look, lookahead);
            // The shard-to-lane plan may have changed since the first
            // declaration (assignShard before the rebuild): refresh
            // the cached routing so sends follow the current plan
            // instead of silently targeting a stale lane.
            ch->_dstLane = dstLane;
            ch->_crossLane = cross;
            return *ch;
        }
    }
    channels_.push_back(std::unique_ptr<ShardChannel>(
        new ShardChannel(this, std::move(name), src, dst, lookahead,
                         dstLane, cross)));
    return *channels_.back();
}

EventId
ShardChannel::send(Cycles when, TapId label, EventFn fn)
{
    _sent.fetch_add(1, std::memory_order_relaxed);
    return kern->channelSend(*this, when, label, std::move(fn));
}

EventId
ShardedEventKernel::channelSend(ShardChannel &ch, Cycles when,
                                TapId label, EventFn fn)
{
    const int dst = ch.dstLane();
    const int cur = currentExecLane();
    if (cur < 0 || cur == dst) {
        // Setup/coordinator context (single-threaded) or a same-lane
        // send: exactly the serial kernel's scheduleAt. The declared
        // latency is still a contract: checked here too (same-lane,
        // the destination clock IS the sender's clock), so a world
        // that undershoots a channel's latency fails in the default
        // serial configuration instead of only once the endpoints
        // land on different lanes. Setup-context sends (cur < 0)
        // have no sender clock to check against.
        VIRTSIM_ASSERT(cur < 0 ||
                           when >= lane(dst).now() + ch.lookahead(),
                       "channel '", ch.name(), "' send at ", when,
                       " violates declared lookahead ", ch.lookahead(),
                       " from lane time ", lane(dst).now());
        return lane(dst).scheduleAt(when, label, std::move(fn));
    }
    EventQueue &src = lane(cur);
    VIRTSIM_ASSERT(when >= src.now() + ch.lookahead(),
                   "channel '", ch.name(), "' send at ", when,
                   " violates declared lookahead ", ch.lookahead(),
                   " from lane time ", src.now());
    Mailbox &mb = mailbox(cur, dst);
    // First message into this mailbox this round: record the
    // destination so the sparse merge visits exactly the pairs that
    // buffered traffic. Mailboxes are fully drained every round, so
    // empty-before-push is equivalent to first-touch — the list never
    // holds duplicates.
    if (mb.msgs.empty())
        touchedDst_[static_cast<std::size_t>(cur)].push_back(dst);
    mb.msgs.push_back(Pending{when, label, std::move(fn)});
    return invalidEventId;
}

Cycles
ShardedEventKernel::run()
{
    // An attached probe needs the round loop even at one lane, so
    // barrier-driven timeline sampling and observer flushing behave
    // identically at every VIRTSIM_SHARDS; likewise the shard
    // profiler, which measures the round loop.
    if (laneCount() == 1 && !probe_ && !profileEnabled_) {
        // Mark the lane even on the passthrough path so channel sends
        // from inside events check their lookahead contract in the
        // serial configuration too.
        LaneScope scope(0);
        return lane(0).run();
    }
    return runRounds(false, 0);
}

Cycles
ShardedEventKernel::runUntil(Cycles limit)
{
    if (laneCount() == 1 && !probe_ && !profileEnabled_) {
        LaneScope scope(0);
        return lane(0).runUntil(limit);
    }
    return runRounds(true, limit);
}

bool
ShardedEventKernel::step()
{
    VIRTSIM_ASSERT(laneCount() == 1,
                   "step() is single-lane only; multi-lane execution ",
                   "is round-based");
    LaneScope scope(0);
    return lane(0).step();
}

void
ShardedEventKernel::refreshLane(int i)
{
    const auto ii = static_cast<std::size_t>(i);
    const Cycles t = lane(i).nextEventTime();
    nextEv_[ii] = t;
    const bool live = t != noPendingEvent;
    if (live && !laneLive_[ii]) {
        laneLive_[ii] = 1;
        livePos_[ii] = static_cast<int>(liveLanes_.size());
        liveLanes_.push_back(i);
    } else if (!live && laneLive_[ii]) {
        const int hole = livePos_[ii];
        const int back = liveLanes_.back();
        liveLanes_[static_cast<std::size_t>(hole)] = back;
        livePos_[static_cast<std::size_t>(back)] = hole;
        liveLanes_.pop_back();
        laneLive_[ii] = 0;
        livePos_[ii] = -1;
    }
}

Cycles
ShardedEventKernel::runRounds(bool bounded, Cycles limit)
{
    using clock = std::chrono::steady_clock;
    if (edgesDirty_)
        rebuildEdges();

    // Barrier-driven timeline sampling: the coordinator samples every
    // gauge at period-aligned simulated instants between rounds, with
    // every lane's horizon capped at the next sampling instant so no
    // lane ever runs past an unsampled tick. A sample at instant a is
    // taken after all events below a and before any event at or above
    // a — a time-only rule, so the sampled instants and values are a
    // pure function of the model, identical at every lane count.
    TimelineSampler *const tl =
        (probe_ && probe_->timeline.enabled()) ? &probe_->timeline
                                               : nullptr;
    Cycles tickAt = 0;
    if (tl) {
        const Cycles period = tl->period();
        const Cycles t0 = now();
        tickAt = (t0 % period == 0) ? t0
                                    : ((t0 / period) + 1) * period;
    }

    const bool prof = profileEnabled_;
    clock::time_point wallStart;
    if (prof) {
        wallStart = clock::now();
        // Snapshot the channel names now: every channel relevant to
        // this run is declared by the time it starts.
        profile_.critChannel = lookChannel;
    }

    if (dense_)
        runDenseRounds(bounded, limit, tl, tickAt, prof);
    else
        runSparseRounds(bounded, limit, tl, tickAt, prof);

    // Records stamped since the last completed round (or before a
    // run that drained immediately) still need delivering.
    if (probe_)
        probe_->trace.flushObserver();

    if (prof) {
        profile_.wallNs += elapsedNs(wallStart, clock::now());
        profile_.rounds = st.rounds;
        profile_.parallelRounds = st.parallelRounds;
    }

    if (bounded) {
        for (int i = 0; i < laneCount(); ++i)
            lane(i).advanceClockTo(limit);
        return limit;
    }
    return now();
}

void
ShardedEventKernel::runSparseRounds(bool bounded, Cycles limit,
                                    TimelineSampler *tl, Cycles tickAt,
                                    bool prof)
{
    using clock = std::chrono::steady_clock;
    const int n = laneCount();
    const bool parallelAllowed = !inSweepTask();
    const Cycles period = tl ? tl->period() : 0;

    // Reconcile the lane caches with whatever happened since the last
    // run: setup-context scheduleAt, cancellations, clear()/reset().
    // From here on only merged messages and the lanes' own execution
    // mutate the queues, and both refresh the cache at the spot.
    for (int i = 0; i < n; ++i)
        refreshLane(i);
    // Stale from the previous run; its sends were all drained before
    // that run could end.
    dispatch_.clear();
    Cycles front = 0;
    for (int i = 0; i < n; ++i)
        front = std::max(front, lane(i).now());

    for (;;) {
        ++st.rounds;

        // 1. Deterministic merge, sparse: only lanes dispatched last
        //    round can have sent, and each privately recorded the
        //    destinations it buffered a first message for. Sorting
        //    each source's destination list restores the canonical
        //    (src asc, dst asc, send order) drain of the dense scan,
        //    byte for byte. Message times never precede the
        //    destination lane's clock (safety argument in the
        //    header), so these scheduleAt calls cannot go backwards.
        for (int s : dispatch_) {
            auto &td = touchedDst_[static_cast<std::size_t>(s)];
            if (td.empty())
                continue;
            std::sort(td.begin(), td.end());
            for (int d : td) {
                Mailbox &mb = mailbox(s, d);
                st.lanes[static_cast<std::size_t>(d)].msgsIn +=
                    mb.msgs.size();
                st.crossMsgs += mb.msgs.size();
                for (Pending &p : mb.msgs) {
                    lane(d).scheduleAt(p.when, p.label,
                                       std::move(p.fn));
                }
                mb.msgs.clear();
                refreshLane(d);
            }
            td.clear();
        }

        // 2. Horizons, over the live set only.
        Cycles minNext = noPendingEvent;
        for (int i : liveLanes_)
            minNext = std::min(minNext,
                               nextEv_[static_cast<std::size_t>(i)]);
        if (minNext == noPendingEvent)
            break; // drained, and the drain above emptied all mail
        if (bounded && minNext > limit)
            break;

        // Sample every aligned instant the whole simulation has now
        // passed. All events below tickAt have fired (horizons were
        // capped there) and the earliest pending event is at or above
        // it, so gauges read exactly the model state at that instant.
        if (tl) {
            while (tickAt <= minNext &&
                   (!bounded || tickAt <= limit)) {
                tl->sampleTick(tickAt);
                tickAt += period;
            }
        }

        // The LBTS fixed point:
        //   N[i] = min(nextEv[i], min_j (N[j] + look[j][i]))
        // by worklist relaxation over the out-adjacency lists, seeded
        // from the lanes that hold events. Min-plus relaxation with
        // positive edge weights has a unique least fixed point, so
        // the result is identical to the dense iteration no matter
        // the relaxation order (verifyHorizons checks exactly that).
        // An empty lane is NOT unconstraining: a message can wake it
        // and make it send, so relaxation lowers its bound from
        // noBound through its in-edges, covering transitive chains
        // and cycles through idle lanes. bound_ holds noBound
        // everywhere between rounds; touchedBound_ undoes this
        // round's writes in O(work).
        work_.clear();
        std::size_t workHead = 0;
        for (int i : liveLanes_) {
            const auto ii = static_cast<std::size_t>(i);
            bound_[ii] = nextEv_[ii];
            touchedBound_.push_back(i);
            inWork_[ii] = 1;
            work_.push_back(i);
        }
        while (workHead < work_.size()) {
            const int j = work_[workHead++];
            inWork_[static_cast<std::size_t>(j)] = 0;
            const Cycles bj = bound_[static_cast<std::size_t>(j)];
            for (const LaneEdge &e :
                 outEdges_[static_cast<std::size_t>(j)]) {
                const auto pp = static_cast<std::size_t>(e.peer);
                const Cycles c = satAdd(bj, e.look);
                if (c < bound_[pp]) {
                    if (bound_[pp] == noBound)
                        touchedBound_.push_back(e.peer);
                    bound_[pp] = c;
                    if (!inWork_[pp]) {
                        inWork_[pp] = 1;
                        work_.push_back(e.peer);
                    }
                }
            }
        }

        // Lane i may execute strictly below the earliest time any
        // other lane could still send to it. Only live lanes need a
        // target: an empty lane has nothing to run below any target,
        // and is precisely the lane the elision skips.
        dispatch_.clear();
        for (int i : liveLanes_) {
            const auto ii = static_cast<std::size_t>(i);
            Cycles target = noBound;
            for (const LaneEdge &e : inEdges_[ii])
                target = std::min(
                    target,
                    satAdd(bound_[static_cast<std::size_t>(e.peer)],
                           e.look));
            if (bounded && (target == noBound || target > limit))
                target = limit + 1;
            // Never run past an unsampled timeline tick. The lane
            // holding minNext keeps target > minNext either way
            // (tickAt was advanced past minNext above), so progress
            // survives the cap.
            if (tl && tickAt < target)
                target = tickAt;
            roundTarget[ii] = target;
            if (nextEv_[ii] < target) {
                dispatch_.push_back(i);
                dispatched_[ii] = 1;
            }
        }
        // liveLanes_ is unordered (swap-erase set); the merge next
        // round needs sources ascending.
        std::sort(dispatch_.begin(), dispatch_.end());

        if (crossCheck_)
            verifyHorizons(bounded, limit, tl, tickAt);

        // Positive cross-lane lookaheads guarantee the earliest lane
        // always clears its horizon; no runnable lane while events
        // remain in bounds means a modelling bug (e.g. an undeclared
        // channel).
        VIRTSIM_ASSERT(!dispatch_.empty(),
                       "sharded kernel made no progress in a round ",
                       "(undeclared cross-lane edge?)");

        // 3. Execute — runnable lanes only; an idle lane is neither
        //    handed to a worker nor counted below. The crew only
        //    earns its keep when two or more lanes have work.
        const bool parallel =
            parallelAllowed && dispatch_.size() >= 2;
        clock::time_point roundStart;
        if (prof)
            roundStart = clock::now();
        executePhase(parallel);
        if (parallel)
            ++st.parallelRounds;
        st.laneDispatches += dispatch_.size();
        const std::uint64_t roundNs =
            prof ? elapsedNs(roundStart, clock::now()) : 0;

        // 4. Account. Stall = a lane that had a pending event inside
        //    the bound (and below any timeline tick cap) but whose
        //    horizon blocked it entirely — exactly the lanes the
        //    dense coordinator would have dispatched for zero fired
        //    events, so the counters agree between the two.
        std::size_t firedTotal = 0;
        for (int i : dispatch_)
            front = std::max(front, lane(i).now());
        for (int i : dispatch_) {
            const auto ii = static_cast<std::size_t>(i);
            LaneStats &ls = st.lanes[ii];
            firedTotal += roundFired[ii];
            ls.events += roundFired[ii];
            ++ls.advances;
            ls.maxHorizonLag =
                std::max(ls.maxHorizonLag, front - lane(i).now());
            if (prof) {
                ShardProfile::Lane &pl = profile_.lanes[ii];
                pl.busyNs += roundBusyNs[ii];
                pl.events += roundFired[ii];
            }
        }
        for (int i : liveLanes_) {
            const auto ii = static_cast<std::size_t>(i);
            if (dispatched_[ii])
                continue;
            if (bounded && nextEv_[ii] > limit)
                continue;
            if (tl && nextEv_[ii] >= tickAt)
                continue;
            LaneStats &ls = st.lanes[ii];
            ++ls.stalls;
            ls.maxHorizonLag =
                std::max(ls.maxHorizonLag, front - lane(i).now());
            if (prof) {
                ShardProfile::Lane &pl = profile_.lanes[ii];
                ++pl.stallRounds;
                // The lane never ran, so the whole round was wait.
                pl.stallNs += roundNs;
                // Critical-channel attribution: the in-edge whose
                // bound was the binding horizon limit. inEdges_ keeps
                // sources ascending, so ties go to the lowest source
                // lane, deterministically — same as the dense scan.
                Cycles best = noBound;
                int bestJ = -1;
                for (const LaneEdge &e : inEdges_[ii]) {
                    const Cycles c = satAdd(
                        bound_[static_cast<std::size_t>(e.peer)],
                        e.look);
                    if (c < best) {
                        best = c;
                        bestJ = e.peer;
                    }
                }
                if (bestJ >= 0 && best == roundTarget[ii]) {
                    ++profile_.critRounds
                          [ii * static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(bestJ)];
                }
            }
        }
        VIRTSIM_ASSERT(firedTotal > 0,
                       "sharded kernel made no progress in a round ",
                       "(undeclared cross-lane edge?)");

        // Undo this round's scratch writes and re-read the lanes that
        // ran; nothing else can have changed.
        for (int i : touchedBound_)
            bound_[static_cast<std::size_t>(i)] = noBound;
        touchedBound_.clear();
        for (int i : dispatch_) {
            dispatched_[static_cast<std::size_t>(i)] = 0;
            refreshLane(i);
        }

        // Stream this round's trace records to the observer in
        // canonical merged order. Single-threaded here between
        // barriers; a no-op without a deferred observer.
        if (probe_)
            probe_->trace.flushObserver();
    }
}

void
ShardedEventKernel::runDenseRounds(bool bounded, Cycles limit,
                                   TimelineSampler *tl, Cycles tickAt,
                                   bool prof)
{
    using clock = std::chrono::steady_clock;
    const int n = laneCount();
    const bool parallelAllowed = !inSweepTask();
    const Cycles period = tl ? tl->period() : 0;
    std::vector<Cycles> nextEv(static_cast<std::size_t>(n));
    std::vector<Cycles> bound(static_cast<std::size_t>(n));

    // Every lane, every round: the reference coordinator the sparse
    // one is checked against and benchmarked against.
    dispatch_.resize(static_cast<std::size_t>(n));
    std::iota(dispatch_.begin(), dispatch_.end(), 0);

    for (;;) {
        ++st.rounds;

        // 1. Deterministic merge: drain mailboxes in (src, dst, send
        //    order), scanning every pair.
        for (int s = 0; s < n; ++s) {
            for (int d = 0; d < n; ++d) {
                Mailbox &mb = mailbox(s, d);
                if (mb.msgs.empty())
                    continue;
                st.lanes[static_cast<std::size_t>(d)].msgsIn +=
                    mb.msgs.size();
                st.crossMsgs += mb.msgs.size();
                for (Pending &p : mb.msgs) {
                    lane(d).scheduleAt(p.when, p.label,
                                       std::move(p.fn));
                }
                mb.msgs.clear();
            }
        }
        // The sends above were recorded for the sparse merge too;
        // the full scan superseded them.
        for (auto &td : touchedDst_)
            td.clear();

        // 2. Horizons.
        Cycles minNext = noPendingEvent;
        int activeLanes = 0;
        for (int i = 0; i < n; ++i) {
            const Cycles t = lane(i).nextEventTime();
            nextEv[static_cast<std::size_t>(i)] = t;
            if (t != noPendingEvent) {
                ++activeLanes;
                minNext = std::min(minNext, t);
            }
        }
        if (minNext == noPendingEvent)
            break; // drained, and the drain above emptied all mail
        if (bounded && minNext > limit)
            break;

        if (tl) {
            while (tickAt <= minNext &&
                   (!bounded || tickAt <= limit)) {
                tl->sampleTick(tickAt);
                tickAt += period;
            }
        }

        // The LBTS fixed point by dense Gauss-Seidel iteration over
        // the full lane x lane matrix (see the sparse loop for the
        // algorithmic commentary; the fixed point is the same).
        for (int i = 0; i < n; ++i)
            bound[static_cast<std::size_t>(i)] =
                nextEv[static_cast<std::size_t>(i)];
        for (bool changed = true; changed;) {
            changed = false;
            for (int i = 0; i < n; ++i) {
                Cycles b = bound[static_cast<std::size_t>(i)];
                for (int j = 0; j < n; ++j) {
                    if (j == i)
                        continue;
                    const Cycles look =
                        minLook[static_cast<std::size_t>(j) *
                                    lanes_.size() +
                                static_cast<std::size_t>(i)];
                    if (look == noBound)
                        continue;
                    b = std::min(
                        b, satAdd(bound[static_cast<std::size_t>(j)],
                                  look));
                }
                if (b < bound[static_cast<std::size_t>(i)]) {
                    bound[static_cast<std::size_t>(i)] = b;
                    changed = true;
                }
            }
        }
        for (int i = 0; i < n; ++i) {
            Cycles target = noBound;
            for (int j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                const Cycles look =
                    minLook[static_cast<std::size_t>(j) *
                                lanes_.size() +
                            static_cast<std::size_t>(i)];
                if (look == noBound)
                    continue;
                target = std::min(
                    target,
                    satAdd(bound[static_cast<std::size_t>(j)], look));
            }
            if (bounded && (target == noBound || target > limit))
                target = limit + 1;
            if (tl && tickAt < target)
                target = tickAt;
            roundTarget[static_cast<std::size_t>(i)] = target;
        }

        // 3. Execute — every lane, runnable or not.
        const bool parallel = parallelAllowed && activeLanes >= 2;
        clock::time_point roundStart;
        if (prof)
            roundStart = clock::now();
        executePhase(parallel);
        if (parallel)
            ++st.parallelRounds;
        st.laneDispatches += static_cast<std::uint64_t>(n);
        const std::uint64_t roundNs =
            prof ? elapsedNs(roundStart, clock::now()) : 0;

        // 4. Account. Stall = a lane that had a pending event inside
        //    the bound (and below any timeline tick cap) but whose
        //    horizon blocked it entirely.
        std::size_t firedTotal = 0;
        Cycles front = 0;
        for (int i = 0; i < n; ++i)
            front = std::max(front, lane(i).now());
        for (int i = 0; i < n; ++i) {
            const auto ii = static_cast<std::size_t>(i);
            LaneStats &ls = st.lanes[ii];
            firedTotal += roundFired[ii];
            if (prof) {
                ShardProfile::Lane &pl = profile_.lanes[ii];
                pl.busyNs += roundBusyNs[ii];
                pl.events += roundFired[ii];
            }
            if (roundFired[ii] > 0) {
                ls.events += roundFired[ii];
                ++ls.advances;
                ls.maxHorizonLag = std::max(
                    ls.maxHorizonLag, front - lane(i).now());
            } else if (nextEv[ii] != noPendingEvent &&
                       (!bounded || nextEv[ii] <= limit) &&
                       (!tl || nextEv[ii] < tickAt)) {
                ++ls.stalls;
                ls.maxHorizonLag = std::max(
                    ls.maxHorizonLag, front - lane(i).now());
                if (prof) {
                    ShardProfile::Lane &pl = profile_.lanes[ii];
                    ++pl.stallRounds;
                    pl.stallNs += roundNs > roundBusyNs[ii]
                                      ? roundNs - roundBusyNs[ii]
                                      : 0;
                    // Critical-channel attribution: the in-edge whose
                    // bound was the binding horizon limit. Ties go to
                    // the lowest source lane, deterministically.
                    Cycles best = noBound;
                    int bestJ = -1;
                    for (int j = 0; j < n; ++j) {
                        if (j == i)
                            continue;
                        const Cycles look =
                            minLook[static_cast<std::size_t>(j) *
                                        lanes_.size() +
                                    ii];
                        if (look == noBound)
                            continue;
                        const Cycles c = satAdd(
                            bound[static_cast<std::size_t>(j)], look);
                        if (c < best) {
                            best = c;
                            bestJ = j;
                        }
                    }
                    if (bestJ >= 0 && best == roundTarget[ii]) {
                        ++profile_.critRounds
                              [ii * static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(bestJ)];
                    }
                }
            }
        }
        // Positive cross-lane lookaheads guarantee the earliest lane
        // always clears its horizon; a zero-progress round means a
        // modelling bug (e.g. an undeclared channel).
        VIRTSIM_ASSERT(firedTotal > 0,
                       "sharded kernel made no progress in a round ",
                       "(undeclared cross-lane edge?)");

        if (probe_)
            probe_->trace.flushObserver();
    }

    // A later sparse run must not mistake the full-lane list for a
    // real previous dispatch.
    dispatch_.clear();
}

void
ShardedEventKernel::verifyHorizons(bool bounded, Cycles limit,
                                   TimelineSampler *tl,
                                   Cycles tickAt) const
{
    const int n = laneCount();
    std::vector<Cycles> bound(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        bound[static_cast<std::size_t>(i)] =
            nextEv_[static_cast<std::size_t>(i)];
    for (bool changed = true; changed;) {
        changed = false;
        for (int i = 0; i < n; ++i) {
            Cycles b = bound[static_cast<std::size_t>(i)];
            for (int j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                const Cycles look =
                    minLook[static_cast<std::size_t>(j) *
                                lanes_.size() +
                            static_cast<std::size_t>(i)];
                if (look == noBound)
                    continue;
                b = std::min(
                    b, satAdd(bound[static_cast<std::size_t>(j)],
                              look));
            }
            if (b < bound[static_cast<std::size_t>(i)]) {
                bound[static_cast<std::size_t>(i)] = b;
                changed = true;
            }
        }
    }
    for (int i = 0; i < n; ++i) {
        const auto ii = static_cast<std::size_t>(i);
        // Untouched sparse entries sit at noBound == noPendingEvent,
        // exactly where the dense iteration leaves an unreachable
        // empty lane.
        VIRTSIM_ASSERT(bound_[ii] == bound[ii],
                       "sparse LBTS bound for lane ", i, " (",
                       bound_[ii], ") != dense fixed point (",
                       bound[ii], ")");
        if (nextEv_[ii] == noPendingEvent)
            continue; // elided: no target computed, none needed
        Cycles target = noBound;
        for (int j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const Cycles look =
                minLook[static_cast<std::size_t>(j) * lanes_.size() +
                        ii];
            if (look == noBound)
                continue;
            target = std::min(
                target,
                satAdd(bound[static_cast<std::size_t>(j)], look));
        }
        if (bounded && (target == noBound || target > limit))
            target = limit + 1;
        if (tl && tickAt < target)
            target = tickAt;
        VIRTSIM_ASSERT(roundTarget[ii] == target,
                       "sparse round target for lane ", i, " (",
                       roundTarget[ii], ") != dense target (", target,
                       ")");
    }
}

void
ShardedEventKernel::enableShardProfile()
{
    profileEnabled_ = true;
    const std::size_t n = lanes_.size();
    profile_ = ShardProfile{};
    profile_.lanes.assign(n, ShardProfile::Lane{});
    profile_.critRounds.assign(n * n, 0);
    profile_.critChannel.assign(n * n, std::string());
}

void
ShardedEventKernel::runLane(int i)
{
    const auto ii = static_cast<std::size_t>(i);
    LaneScope scope(i);
    if (profileEnabled_) {
        const auto t0 = std::chrono::steady_clock::now();
        roundFired[ii] = lane(i).runBefore(roundTarget[ii]);
        roundBusyNs[ii] =
            elapsedNs(t0, std::chrono::steady_clock::now());
        return;
    }
    roundFired[ii] = lane(i).runBefore(roundTarget[ii]);
}

void
ShardedEventKernel::drainDispatch()
{
    const std::size_t total = dispatch_.size();
    for (;;) {
        const std::size_t k =
            dispatchNext_.fetch_add(1, std::memory_order_relaxed);
        if (k >= total)
            return;
        runLane(dispatch_[k]);
    }
}

void
ShardedEventKernel::executePhase(bool parallel)
{
    if (!parallel) {
        for (int i : dispatch_)
            runLane(i);
        return;
    }

    startCrew();
    dispatchNext_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(crewMutex);
        crewRunning = static_cast<int>(crew.size());
        ++crewGen;
    }
    crewStart.notify_all();
    // The coordinator thread pulls lanes alongside the crew instead
    // of idling at the barrier.
    drainDispatch();
    // Wait for every worker, not merely for the list to drain: a
    // worker between its last pop and its check-out must not overlap
    // the coordinator mutating next round's dispatch state.
    std::unique_lock<std::mutex> lock(crewMutex);
    crewDone.wait(lock, [this] { return crewRunning == 0; });
}

void
ShardedEventKernel::startCrew()
{
    if (!crew.empty())
        return;
    const int n = laneCount();
    const unsigned hwRaw = std::thread::hardware_concurrency();
    const int hw = hwRaw ? static_cast<int>(hwRaw) : 1;
    // Sized by the host, not the lane count: a 256-lane fleet on an
    // 8-way box gets 7 workers plus the coordinator, not 255 idle
    // threads. At least one worker so parallel rounds exercise real
    // cross-thread execution even on a single-core host.
    const int workers = std::max(1, std::min(n, hw) - 1);
    crew.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        crew.emplace_back([this] { workerLoop(); });
}

void
ShardedEventKernel::stopCrew()
{
    if (crew.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(crewMutex);
        crewQuit = true;
        ++crewGen;
    }
    crewStart.notify_all();
    for (std::thread &t : crew)
        t.join();
    crew.clear();
    crewQuit = false;
}

void
ShardedEventKernel::workerLoop()
{
    std::uint64_t seenGen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(crewMutex);
            crewStart.wait(lock, [this, seenGen] {
                return crewQuit || crewGen != seenGen;
            });
            if (crewQuit)
                return;
            seenGen = crewGen;
        }
        drainDispatch();
        bool last = false;
        {
            std::lock_guard<std::mutex> lock(crewMutex);
            last = --crewRunning == 0;
        }
        if (last)
            crewDone.notify_one();
    }
}

void
ShardedEventKernel::clear()
{
    for (auto &q : lanes_)
        q->clear();
    for (Mailbox &mb : mail)
        mb.msgs.clear();
    for (auto &td : touchedDst_)
        td.clear();
}

void
ShardedEventKernel::reset()
{
    clear();
    for (auto &q : lanes_)
        q->reset();
    st.rounds = 0;
    st.parallelRounds = 0;
    st.crossMsgs = 0;
    st.laneDispatches = 0;
    for (LaneStats &ls : st.lanes)
        ls = LaneStats{};
    if (profileEnabled_)
        enableShardProfile(); // re-zero the profile for the next run
}

Cycles
ShardedEventKernel::now() const
{
    Cycles t = 0;
    for (const auto &q : lanes_)
        t = std::max(t, q->now());
    return t;
}

void
ShardedEventKernel::publishStats(MetricsRegistry &metrics) const
{
    MetricsDomain &mach = metrics.machine();
    const auto set = [&mach](const std::string &name,
                             std::uint64_t v) {
        Counter &c = mach.counter(internTap(name));
        c.reset();
        c.inc(v);
    };
    set("shard.lanes", static_cast<std::uint64_t>(laneCount()));
    set("shard.rounds", st.rounds);
    set("shard.parallel_rounds", st.parallelRounds);
    set("shard.cross_msgs", st.crossMsgs);
    set("shard.lane_dispatches", st.laneDispatches);
    std::uint64_t active = 0;
    for (std::size_t i = 0; i < st.lanes.size(); ++i) {
        const LaneStats &ls = st.lanes[i];
        // A lane that never held an event, never stalled and never
        // received a message has nothing to say; at fleet scale most
        // lanes of a generously sized kernel are exactly that, and
        // 256 all-zero six-counter blocks would drown the export.
        if (ls.events == 0 && ls.advances == 0 && ls.stalls == 0 &&
            ls.msgsIn == 0 && ls.maxHorizonLag == 0)
            continue;
        ++active;
        const std::string p = "shard.lane" + std::to_string(i);
        set(p + ".events", ls.events);
        set(p + ".advances", ls.advances);
        set(p + ".stalls", ls.stalls);
        set(p + ".msgs_in", ls.msgsIn);
        set(p + ".horizon_lag_max", ls.maxHorizonLag);
        // Events per advancing round, scaled by 100 to survive the
        // integer counter (ISSUE satellite: events/advance).
        set(p + ".events_per_advance_x100",
            ls.advances == 0 ? 0 : ls.events * 100 / ls.advances);
    }
    set("shard.lanes_active", active);
}

void
ShardedEventKernel::registerGauges(TimelineSampler &tl)
{
    // Aggregates first: these stay a handful of series at any lane
    // count, so fleet-scale kernels keep shard health on the
    // timeline without per-lane flooding.
    tl.addGauge("shard.lanes_live", [this] {
        std::int64_t live = 0;
        for (const auto &q : lanes_)
            live += q->pending() > 0 ? 1 : 0;
        return live;
    });
    tl.addGauge("shard.stall_total", [this] {
        std::uint64_t s = 0;
        for (const LaneStats &ls : st.lanes)
            s += ls.stalls;
        return static_cast<std::int64_t>(s);
    });
    tl.addGauge("shard.lag_max", [this] {
        const Cycles front = now();
        Cycles lag = 0;
        for (const auto &q : lanes_)
            lag = std::max(lag, front - q->now());
        return static_cast<std::int64_t>(lag);
    });
    if (laneCount() > perLaneGaugeCap)
        return;
    for (int i = 0; i < laneCount(); ++i) {
        const std::string p = "shard.lane" + std::to_string(i);
        EventQueue *q = lanes_[static_cast<std::size_t>(i)].get();
        tl.addGauge(p + ".depth", [q] {
            return static_cast<std::int64_t>(q->pending());
        });
        tl.addGauge(p + ".lag", [this, q] {
            return static_cast<std::int64_t>(now() - q->now());
        });
        LaneStats *ls = &st.lanes[static_cast<std::size_t>(i)];
        tl.addGauge(p + ".stalls", [ls] {
            return static_cast<std::int64_t>(ls->stalls);
        });
    }
}

} // namespace virtsim
