#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "sim/env.hh"
#include "sim/lane.hh"
#include "sim/log.hh"
#include "sim/probe.hh"
#include "sim/sweep.hh"
#include "sim/timeline.hh"

namespace virtsim {

namespace {

// The lane marker (currentExecLane / LaneScope, sim/lane.hh) is set
// around every runBefore() phase — parallel workers and the serial
// round loop alike — so ShardChannel sends can infer their source
// lane, and lane-partitioned sinks their segment, without threading a
// context argument through every component.

constexpr Cycles noBound = std::numeric_limits<Cycles>::max();

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

/** Saturating add for horizon arithmetic: an unbounded time plus a
 *  finite lookahead stays unbounded instead of wrapping. */
constexpr Cycles
satAdd(Cycles t, Cycles look)
{
    return t > noBound - look ? noBound : t + look;
}

} // namespace

int
shardLanes()
{
    // Cap well below anything sane; a typo like VIRTSIM_SHARDS=1e9
    // should fail loudly, not allocate a billion queues.
    const auto v = envPositiveCount("VIRTSIM_SHARDS", 1024);
    return v ? static_cast<int>(*v) : 1;
}

int
ShardedEventKernel::currentLane()
{
    return currentExecLane();
}

ShardedEventKernel::ShardedEventKernel(int laneCount)
{
    VIRTSIM_ASSERT(laneCount >= 1, "kernel needs at least one lane");
    lanes_.reserve(static_cast<std::size_t>(laneCount));
    for (int i = 0; i < laneCount; ++i)
        lanes_.push_back(std::make_unique<EventQueue>());
    const auto n = static_cast<std::size_t>(laneCount);
    minLook.assign(n * n, noBound);
    lookChannel.assign(n * n, std::string());
    mail.resize(n * n);
    roundTarget.resize(n);
    roundFired.resize(n);
    roundBusyNs.resize(n);
    st.lanes.resize(n);
}

ShardedEventKernel::~ShardedEventKernel()
{
    stopCrew();
}

void
ShardedEventKernel::assignShard(ShardId shard, int lane)
{
    VIRTSIM_ASSERT(shard >= 0, "bad shard ", shard);
    VIRTSIM_ASSERT(lane >= 0 && lane < laneCount(), "bad lane ", lane);
    const auto s = static_cast<std::size_t>(shard);
    if (shardLane.size() <= s)
        shardLane.resize(s + 1, -1);
    shardLane[s] = lane;
}

int
ShardedEventKernel::laneOf(ShardId shard) const
{
    if (shard >= 0 &&
        static_cast<std::size_t>(shard) < shardLane.size() &&
        shardLane[static_cast<std::size_t>(shard)] >= 0) {
        return shardLane[static_cast<std::size_t>(shard)];
    }
    return shard < 0 ? 0 : shard % laneCount();
}

void
ShardedEventKernel::addLookahead(int srcLane, int dstLane, Cycles look,
                                 const std::string &channelName)
{
    if (srcLane == dstLane)
        return;
    const std::size_t flat = static_cast<std::size_t>(srcLane) *
                                 lanes_.size() +
                             static_cast<std::size_t>(dstLane);
    Cycles &slot = minLook[flat];
    // Remember which channel owns the tightest bound on this edge:
    // that is the name the shard profile reports when the edge limits
    // a lane's horizon. First declaration wins ties.
    if (look < slot || lookChannel[flat].empty())
        lookChannel[flat] = channelName;
    slot = std::min(slot, look);
}

ShardChannel &
ShardedEventKernel::channel(std::string name, ShardId src, ShardId dst,
                            Cycles lookahead)
{
    const int dstLane = laneOf(dst);
    bool cross = false;
    if (src == anyShard) {
        for (int l = 0; l < laneCount(); ++l) {
            if (l != dstLane) {
                cross = true;
                addLookahead(l, dstLane, lookahead, name);
            }
        }
    } else if (laneOf(src) != dstLane) {
        cross = true;
        addLookahead(laneOf(src), dstLane, lookahead, name);
    }
    VIRTSIM_ASSERT(!cross || lookahead > 0,
                   "channel '", name, "' crosses lanes with zero ",
                   "lookahead; conservative sync needs latency > 0");
    // Redeclaration — a harness rebuilding its world on a long-lived
    // kernel (testbed reset), possibly with retuned latencies — reuses
    // the existing channel and keeps the tighter of the two
    // lookaheads; the matrix update above already took the min, which
    // is always the safe direction (stale edges from an earlier shard
    // plan can only tighten horizons, never unsafely widen them).
    for (auto &ch : channels_) {
        if (ch->_name == name) {
            VIRTSIM_ASSERT(ch->src == src && ch->dst == dst,
                           "channel '", name,
                           "' redeclared with different endpoints");
            ch->look = std::min(ch->look, lookahead);
            // The shard-to-lane plan may have changed since the first
            // declaration (assignShard before the rebuild): refresh
            // the cached routing so sends follow the current plan
            // instead of silently targeting a stale lane.
            ch->_dstLane = dstLane;
            ch->_crossLane = cross;
            return *ch;
        }
    }
    channels_.push_back(std::unique_ptr<ShardChannel>(
        new ShardChannel(this, std::move(name), src, dst, lookahead,
                         dstLane, cross)));
    return *channels_.back();
}

EventId
ShardChannel::send(Cycles when, TapId label, EventFn fn)
{
    _sent.fetch_add(1, std::memory_order_relaxed);
    return kern->channelSend(*this, when, label, std::move(fn));
}

EventId
ShardedEventKernel::channelSend(ShardChannel &ch, Cycles when,
                                TapId label, EventFn fn)
{
    const int dst = ch.dstLane();
    const int cur = currentExecLane();
    if (cur < 0 || cur == dst) {
        // Setup/coordinator context (single-threaded) or a same-lane
        // send: exactly the serial kernel's scheduleAt. The declared
        // latency is still a contract: checked here too (same-lane,
        // the destination clock IS the sender's clock), so a world
        // that undershoots a channel's latency fails in the default
        // serial configuration instead of only once the endpoints
        // land on different lanes. Setup-context sends (cur < 0)
        // have no sender clock to check against.
        VIRTSIM_ASSERT(cur < 0 ||
                           when >= lane(dst).now() + ch.lookahead(),
                       "channel '", ch.name(), "' send at ", when,
                       " violates declared lookahead ", ch.lookahead(),
                       " from lane time ", lane(dst).now());
        return lane(dst).scheduleAt(when, label, std::move(fn));
    }
    EventQueue &src = lane(cur);
    VIRTSIM_ASSERT(when >= src.now() + ch.lookahead(),
                   "channel '", ch.name(), "' send at ", when,
                   " violates declared lookahead ", ch.lookahead(),
                   " from lane time ", src.now());
    mailbox(cur, dst).msgs.push_back(
        Pending{when, label, std::move(fn)});
    return invalidEventId;
}

Cycles
ShardedEventKernel::run()
{
    // An attached probe needs the round loop even at one lane, so
    // barrier-driven timeline sampling and observer flushing behave
    // identically at every VIRTSIM_SHARDS; likewise the shard
    // profiler, which measures the round loop.
    if (laneCount() == 1 && !probe_ && !profileEnabled_) {
        // Mark the lane even on the passthrough path so channel sends
        // from inside events check their lookahead contract in the
        // serial configuration too.
        LaneScope scope(0);
        return lane(0).run();
    }
    return runRounds(false, 0);
}

Cycles
ShardedEventKernel::runUntil(Cycles limit)
{
    if (laneCount() == 1 && !probe_ && !profileEnabled_) {
        LaneScope scope(0);
        return lane(0).runUntil(limit);
    }
    return runRounds(true, limit);
}

bool
ShardedEventKernel::step()
{
    VIRTSIM_ASSERT(laneCount() == 1,
                   "step() is single-lane only; multi-lane execution ",
                   "is round-based");
    LaneScope scope(0);
    return lane(0).step();
}

Cycles
ShardedEventKernel::runRounds(bool bounded, Cycles limit)
{
    using clock = std::chrono::steady_clock;
    const int n = laneCount();
    const bool parallelAllowed = !inSweepTask();
    std::vector<Cycles> nextEv(static_cast<std::size_t>(n));
    std::vector<Cycles> bound(static_cast<std::size_t>(n));

    // Barrier-driven timeline sampling: the coordinator samples every
    // gauge at period-aligned simulated instants between rounds, with
    // every lane's horizon capped at the next sampling instant so no
    // lane ever runs past an unsampled tick. A sample at instant a is
    // taken after all events below a and before any event at or above
    // a — a time-only rule, so the sampled instants and values are a
    // pure function of the model, identical at every lane count.
    TimelineSampler *const tl =
        (probe_ && probe_->timeline.enabled()) ? &probe_->timeline
                                               : nullptr;
    const Cycles period = tl ? tl->period() : 0;
    Cycles tickAt = 0;
    if (tl) {
        const Cycles t0 = now();
        tickAt = (t0 % period == 0) ? t0
                                    : ((t0 / period) + 1) * period;
    }

    const bool prof = profileEnabled_;
    clock::time_point wallStart;
    if (prof) {
        wallStart = clock::now();
        // Snapshot the channel names now: every channel relevant to
        // this run is declared by the time it starts.
        profile_.critChannel = lookChannel;
    }

    for (;;) {
        ++st.rounds;

        // 1. Deterministic merge: drain mailboxes in (src, dst, send
        //    order). Message times never precede the destination
        //    lane's clock (safety argument in the header), so these
        //    scheduleAt calls cannot go backwards.
        for (int s = 0; s < n; ++s) {
            for (int d = 0; d < n; ++d) {
                Mailbox &mb = mailbox(s, d);
                if (mb.msgs.empty())
                    continue;
                st.lanes[static_cast<std::size_t>(d)].msgsIn +=
                    mb.msgs.size();
                st.crossMsgs += mb.msgs.size();
                for (Pending &p : mb.msgs) {
                    lane(d).scheduleAt(p.when, p.label,
                                       std::move(p.fn));
                }
                mb.msgs.clear();
            }
        }

        // 2. Horizons.
        Cycles minNext = noPendingEvent;
        int activeLanes = 0;
        for (int i = 0; i < n; ++i) {
            const Cycles t = lane(i).nextEventTime();
            nextEv[static_cast<std::size_t>(i)] = t;
            if (t != noPendingEvent) {
                ++activeLanes;
                minNext = std::min(minNext, t);
            }
        }
        if (minNext == noPendingEvent)
            break; // drained, and the drain above emptied all mail
        if (bounded && minNext > limit)
            break;

        // Sample every aligned instant the whole simulation has now
        // passed. All events below tickAt have fired (horizons were
        // capped there) and the earliest pending event is at or above
        // it, so gauges read exactly the model state at that instant.
        if (tl) {
            while (tickAt <= minNext &&
                   (!bounded || tickAt <= limit)) {
                tl->sampleTick(tickAt);
                tickAt += period;
            }
        }

        // The LBTS fixed point:
        //   N[i] = min(nextEv[i], min_j (N[j] + look[j][i]))
        // iterated to convergence. N[i] lower-bounds the time of
        // anything lane i could still execute or emit — its own
        // earliest event or a message arriving over an in-edge. An
        // empty lane is NOT unconstraining: a message can wake it
        // and make it send, so its earliest possible receive time
        // still bounds every lane downstream of it, covering
        // transitive chains and cycles through idle lanes.
        // Relaxation converges in <= n passes (edge weights are
        // positive) over an n*n matrix of lanes, all tiny.
        for (int i = 0; i < n; ++i)
            bound[static_cast<std::size_t>(i)] =
                nextEv[static_cast<std::size_t>(i)];
        for (bool changed = true; changed;) {
            changed = false;
            for (int i = 0; i < n; ++i) {
                Cycles b = bound[static_cast<std::size_t>(i)];
                for (int j = 0; j < n; ++j) {
                    if (j == i)
                        continue;
                    const Cycles look =
                        minLook[static_cast<std::size_t>(j) *
                                    lanes_.size() +
                                static_cast<std::size_t>(i)];
                    if (look == noBound)
                        continue;
                    b = std::min(
                        b, satAdd(bound[static_cast<std::size_t>(j)],
                                  look));
                }
                if (b < bound[static_cast<std::size_t>(i)]) {
                    bound[static_cast<std::size_t>(i)] = b;
                    changed = true;
                }
            }
        }
        // Lane i may execute strictly below the earliest time any
        // other lane could still send to it.
        for (int i = 0; i < n; ++i) {
            Cycles target = noBound;
            for (int j = 0; j < n; ++j) {
                if (j == i)
                    continue;
                const Cycles look =
                    minLook[static_cast<std::size_t>(j) *
                                lanes_.size() +
                            static_cast<std::size_t>(i)];
                if (look == noBound)
                    continue;
                target = std::min(
                    target,
                    satAdd(bound[static_cast<std::size_t>(j)], look));
            }
            if (bounded && (target == noBound || target > limit))
                target = limit + 1;
            // Never run past an unsampled timeline tick. The lane
            // holding minNext keeps target > minNext either way
            // (tickAt was advanced past minNext above), so progress
            // survives the cap.
            if (tl && tickAt < target)
                target = tickAt;
            roundTarget[static_cast<std::size_t>(i)] = target;
        }

        // 3. Execute. The crew only earns its keep when two or more
        //    lanes have work this round.
        const bool parallel = parallelAllowed && activeLanes >= 2;
        clock::time_point roundStart;
        if (prof)
            roundStart = clock::now();
        executePhase(parallel);
        if (parallel)
            ++st.parallelRounds;
        const std::uint64_t roundNs =
            prof ? elapsedNs(roundStart, clock::now()) : 0;

        // 4. Account. Stall = a lane that had a pending event inside
        //    the bound (and below any timeline tick cap) but whose
        //    horizon blocked it entirely.
        std::size_t firedTotal = 0;
        Cycles front = 0;
        for (int i = 0; i < n; ++i)
            front = std::max(front, lane(i).now());
        for (int i = 0; i < n; ++i) {
            const auto ii = static_cast<std::size_t>(i);
            LaneStats &ls = st.lanes[ii];
            firedTotal += roundFired[ii];
            if (prof) {
                ShardProfile::Lane &pl = profile_.lanes[ii];
                pl.busyNs += roundBusyNs[ii];
                pl.events += roundFired[ii];
            }
            if (roundFired[ii] > 0) {
                ls.events += roundFired[ii];
                ++ls.advances;
                ls.maxHorizonLag = std::max(
                    ls.maxHorizonLag, front - lane(i).now());
            } else if (nextEv[ii] != noPendingEvent &&
                       (!bounded || nextEv[ii] <= limit) &&
                       (!tl || nextEv[ii] < tickAt)) {
                ++ls.stalls;
                ls.maxHorizonLag = std::max(
                    ls.maxHorizonLag, front - lane(i).now());
                if (prof) {
                    ShardProfile::Lane &pl = profile_.lanes[ii];
                    ++pl.stallRounds;
                    pl.stallNs += roundNs > roundBusyNs[ii]
                                      ? roundNs - roundBusyNs[ii]
                                      : 0;
                    // Critical-channel attribution: the in-edge whose
                    // bound was the binding horizon limit. Ties go to
                    // the lowest source lane, deterministically.
                    Cycles best = noBound;
                    int bestJ = -1;
                    for (int j = 0; j < n; ++j) {
                        if (j == i)
                            continue;
                        const Cycles look =
                            minLook[static_cast<std::size_t>(j) *
                                        lanes_.size() +
                                    ii];
                        if (look == noBound)
                            continue;
                        const Cycles c = satAdd(
                            bound[static_cast<std::size_t>(j)], look);
                        if (c < best) {
                            best = c;
                            bestJ = j;
                        }
                    }
                    if (bestJ >= 0 && best == roundTarget[ii]) {
                        ++profile_.critRounds
                              [ii * static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(bestJ)];
                    }
                }
            }
        }
        // Positive cross-lane lookaheads guarantee the earliest lane
        // always clears its horizon; a zero-progress round means a
        // modelling bug (e.g. an undeclared channel).
        VIRTSIM_ASSERT(firedTotal > 0,
                       "sharded kernel made no progress in a round ",
                       "(undeclared cross-lane edge?)");

        // Stream this round's trace records to the observer in
        // canonical merged order. Single-threaded here between
        // barriers; a no-op without a deferred observer.
        if (probe_)
            probe_->trace.flushObserver();
    }

    // Records stamped since the last completed round (or before a
    // run that drained immediately) still need delivering.
    if (probe_)
        probe_->trace.flushObserver();

    if (prof) {
        profile_.wallNs += elapsedNs(wallStart, clock::now());
        profile_.rounds = st.rounds;
        profile_.parallelRounds = st.parallelRounds;
    }

    if (bounded) {
        for (int i = 0; i < n; ++i)
            lane(i).advanceClockTo(limit);
        return limit;
    }
    return now();
}

void
ShardedEventKernel::enableShardProfile()
{
    profileEnabled_ = true;
    const std::size_t n = lanes_.size();
    profile_ = ShardProfile{};
    profile_.lanes.assign(n, ShardProfile::Lane{});
    profile_.critRounds.assign(n * n, 0);
    profile_.critChannel.assign(n * n, std::string());
}

void
ShardedEventKernel::runLane(int i)
{
    const auto ii = static_cast<std::size_t>(i);
    LaneScope scope(i);
    if (profileEnabled_) {
        const auto t0 = std::chrono::steady_clock::now();
        roundFired[ii] = lane(i).runBefore(roundTarget[ii]);
        roundBusyNs[ii] =
            elapsedNs(t0, std::chrono::steady_clock::now());
        return;
    }
    roundFired[ii] = lane(i).runBefore(roundTarget[ii]);
}

void
ShardedEventKernel::executePhase(bool parallel)
{
    const int n = laneCount();
    if (!parallel) {
        for (int i = 0; i < n; ++i)
            runLane(i);
        return;
    }

    startCrew();
    {
        std::lock_guard<std::mutex> lock(crewMutex);
        crewRunning = n - 1;
        ++crewGen;
    }
    crewStart.notify_all();
    // Lane 0 runs on the calling thread while the crew covers lanes
    // 1..n-1.
    runLane(0);
    std::unique_lock<std::mutex> lock(crewMutex);
    crewDone.wait(lock, [this] { return crewRunning == 0; });
}

void
ShardedEventKernel::startCrew()
{
    if (!crew.empty())
        return;
    const int n = laneCount();
    crew.reserve(static_cast<std::size_t>(n - 1));
    for (int i = 1; i < n; ++i)
        crew.emplace_back([this, i] { workerLoop(i); });
}

void
ShardedEventKernel::stopCrew()
{
    if (crew.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(crewMutex);
        crewQuit = true;
        ++crewGen;
    }
    crewStart.notify_all();
    for (std::thread &t : crew)
        t.join();
    crew.clear();
    crewQuit = false;
}

void
ShardedEventKernel::workerLoop(int laneIdx)
{
    std::uint64_t seenGen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(crewMutex);
            crewStart.wait(lock, [this, seenGen] {
                return crewQuit || crewGen != seenGen;
            });
            if (crewQuit)
                return;
            seenGen = crewGen;
        }
        runLane(laneIdx);
        bool last = false;
        {
            std::lock_guard<std::mutex> lock(crewMutex);
            last = --crewRunning == 0;
        }
        if (last)
            crewDone.notify_one();
    }
}

void
ShardedEventKernel::clear()
{
    for (auto &q : lanes_)
        q->clear();
    for (Mailbox &mb : mail)
        mb.msgs.clear();
}

void
ShardedEventKernel::reset()
{
    clear();
    for (auto &q : lanes_)
        q->reset();
    st.rounds = 0;
    st.parallelRounds = 0;
    st.crossMsgs = 0;
    for (LaneStats &ls : st.lanes)
        ls = LaneStats{};
    if (profileEnabled_)
        enableShardProfile(); // re-zero the profile for the next run
}

Cycles
ShardedEventKernel::now() const
{
    Cycles t = 0;
    for (const auto &q : lanes_)
        t = std::max(t, q->now());
    return t;
}

void
ShardedEventKernel::publishStats(MetricsRegistry &metrics) const
{
    MetricsDomain &mach = metrics.machine();
    const auto set = [&mach](const std::string &name,
                             std::uint64_t v) {
        Counter &c = mach.counter(internTap(name));
        c.reset();
        c.inc(v);
    };
    set("shard.lanes", static_cast<std::uint64_t>(laneCount()));
    set("shard.rounds", st.rounds);
    set("shard.parallel_rounds", st.parallelRounds);
    set("shard.cross_msgs", st.crossMsgs);
    for (std::size_t i = 0; i < st.lanes.size(); ++i) {
        const LaneStats &ls = st.lanes[i];
        const std::string p = "shard.lane" + std::to_string(i);
        set(p + ".events", ls.events);
        set(p + ".advances", ls.advances);
        set(p + ".stalls", ls.stalls);
        set(p + ".msgs_in", ls.msgsIn);
        set(p + ".horizon_lag_max", ls.maxHorizonLag);
        // Events per advancing round, scaled by 100 to survive the
        // integer counter (ISSUE satellite: events/advance).
        set(p + ".events_per_advance_x100",
            ls.advances == 0 ? 0 : ls.events * 100 / ls.advances);
    }
}

void
ShardedEventKernel::registerGauges(TimelineSampler &tl)
{
    for (int i = 0; i < laneCount(); ++i) {
        const std::string p = "shard.lane" + std::to_string(i);
        EventQueue *q = lanes_[static_cast<std::size_t>(i)].get();
        tl.addGauge(p + ".depth", [q] {
            return static_cast<std::int64_t>(q->pending());
        });
        tl.addGauge(p + ".lag", [this, q] {
            return static_cast<std::int64_t>(now() - q->now());
        });
        LaneStats *ls = &st.lanes[static_cast<std::size_t>(i)];
        tl.addGauge(p + ".stalls", [ls] {
            return static_cast<std::int64_t>(ls->stalls);
        });
    }
}

} // namespace virtsim
