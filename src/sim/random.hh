/**
 * @file
 * Seeded deterministic pseudo-random number generation.
 *
 * Everything stochastic in virtsim (workload inter-arrival jitter,
 * request service-time variation) draws from a Random instance owned
 * by the experiment, so a run is reproducible from its seed alone.
 * The generator is xorshift128+, which is plenty for workload
 * modelling and has no global state.
 */

#ifndef VIRTSIM_SIM_RANDOM_HH
#define VIRTSIM_SIM_RANDOM_HH

#include <cstdint>

namespace virtsim {

/** Deterministic xorshift128+ PRNG with distribution helpers. */
class Random
{
  public:
    /** Construct from a seed; equal seeds give equal streams. */
    explicit Random(std::uint64_t seed = 42);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t below(std::uint64_t n);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /**
     * Normally distributed value (Box-Muller), truncated at zero so
     * it can be used directly as a duration.
     */
    double normal(double mean, double stddev);

    /** Bernoulli trial. */
    bool chance(double p);

  private:
    std::uint64_t s0;
    std::uint64_t s1;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_RANDOM_HH
