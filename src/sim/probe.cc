#include "sim/probe.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "sim/flight.hh"
#include "sim/log.hh"
#include "sim/shard_profile.hh"

namespace virtsim {

namespace {

/** Global tap intern table. Guarded by a mutex so parallel sweep
 *  workers can intern concurrently; the hot stamping path never
 *  comes here. */
struct InternTable
{
    std::mutex mu;
    std::unordered_map<std::string, std::uint32_t> ids;
    std::deque<std::string> names; ///< stable element addresses

    InternTable() { names.push_back("?"); }
};

InternTable &
internTable()
{
    static InternTable table;
    return table;
}

/** Format cycles as microseconds with fixed sub-ns precision, so
 *  exported JSON is byte-stable. */
std::string
formatUs(double us)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", us);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

TapId
internTap(std::string_view name)
{
    VIRTSIM_ASSERT(!name.empty(), "interning an empty tap name");
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    std::string key(name);
    auto it = t.ids.find(key);
    if (it != t.ids.end())
        return TapId(it->second);
    const auto id = static_cast<std::uint32_t>(t.names.size());
    t.names.push_back(key);
    t.ids.emplace(std::move(key), id);
    return TapId(id);
}

std::string
tapName(TapId tap)
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    if (tap.raw() >= t.names.size())
        return "?";
    return t.names[tap.raw()];
}

std::size_t
internedTapCount()
{
    InternTable &t = internTable();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.names.size() - 1;
}

const char *
to_string(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Tap:
        return "tap";
      case TraceCat::Switch:
        return "switch";
      case TraceCat::Irq:
        return "irq";
      case TraceCat::Io:
        return "io";
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Op:
        return "op";
    }
    return "?";
}

void
TraceSink::setCapacity(std::size_t records)
{
    std::size_t n = 1;
    while (n < records)
        n <<= 1;
    cap = n;
    for (Seg &s : segs) {
        // Uninitialized on purpose: slots are write-before-read, and
        // a zero-fill here would fault in every page of a ring most
        // runs only partially use.
        s.ring = std::make_unique_for_overwrite<TraceRecord[]>(n);
        s.head = 0;
        s.total = 0;
        s.truncated = 0;
        s.edgeSeq = 0;
        s.obsMark = 0;
    }
}

void
TraceSink::prepareForParallel(int lanes)
{
    VIRTSIM_ASSERT(lanes >= 1 && lanes <= maxLanes,
                   "bad trace lane count ", lanes);
    segs.resize(static_cast<std::size_t>(lanes));
    if (cap > 0)
        setCapacity(cap); // re-ring every segment, dropping records
}

bool
TraceSink::mergeLess(const MergeRef &a, const MergeRef &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.kindPrio != b.kindPrio)
        return a.kindPrio < b.kindPrio;
    if (a.track != b.track)
        return a.track < b.track;
    if (a.seg != b.seg)
        return a.seg < b.seg;
    return a.pos < b.pos;
}

std::vector<TraceSink::MergeRef>
TraceSink::mergeOrder() const
{
    std::vector<MergeRef> order;
    order.reserve(size());
    for (std::size_t si = 0; si < segs.size(); ++si) {
        const Seg &s = segs[si];
        const std::size_t n = segSize(s);
        const std::uint64_t first = s.total - n;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t slot =
                s.total <= cap ? i : (s.head + i) & (cap - 1);
            const TraceRecord &r = s.ring[slot];
            order.push_back({r.when, first + i,
                             static_cast<std::uint32_t>(si),
                             static_cast<std::uint32_t>(slot), r.track,
                             static_cast<std::uint8_t>(
                                 r.kind == TraceKind::EdgeOut ? 0
                                                              : 1)});
        }
    }
    // No ties: (seg, pos) is unique, so the non-stable sort is
    // deterministic.
    std::sort(order.begin(), order.end(), mergeLess);
    return order;
}

void
TraceSink::flushObserver()
{
    if (!obs || !obsDeferred)
        return;
    std::vector<MergeRef> batch;
    for (std::size_t si = 0; si < segs.size(); ++si) {
        Seg &s = segs[si];
        const std::size_t n = segSize(s);
        const std::uint64_t first = s.total - n;
        const std::uint64_t from =
            s.obsMark > first ? s.obsMark : first;
        for (std::uint64_t i = from; i < s.total; ++i) {
            const auto idx = static_cast<std::size_t>(i - first);
            const std::size_t slot =
                s.total <= cap ? idx : (s.head + idx) & (cap - 1);
            batch.push_back({s.ring[slot].when, i,
                             static_cast<std::uint32_t>(si),
                             static_cast<std::uint32_t>(slot),
                             s.ring[slot].track,
                             static_cast<std::uint8_t>(
                                 s.ring[slot].kind ==
                                         TraceKind::EdgeOut
                                     ? 0
                                     : 1)});
        }
        s.obsMark = s.total;
    }
    if (batch.empty())
        return;
    std::sort(batch.begin(), batch.end(), mergeLess);
    for (const MergeRef &m : batch)
        obs->onTraceRecord(segs[m.seg].ring[m.slot]);
}

std::optional<Cycles>
TraceSink::find(std::uint64_t flow, TapId tap) const
{
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = at(i);
        if (r.kind == TraceKind::Instant && r.cat == TraceCat::Tap &&
            r.tap == tap && r.arg == flow) {
            return r.when;
        }
    }
    return std::nullopt;
}

std::optional<Cycles>
TraceSink::between(std::uint64_t flow, TapId from, TapId to) const
{
    const std::size_t n = size();
    std::optional<Cycles> t0;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = at(i);
        if (r.kind != TraceKind::Instant || r.cat != TraceCat::Tap ||
            r.arg != flow) {
            continue;
        }
        if (!t0) {
            if (r.tap == from)
                t0 = r.when;
            continue;
        }
        // First `from` found: pair with the nearest following `to`.
        if (r.tap == to && r.when >= *t0)
            return r.when - *t0;
    }
    return std::nullopt;
}

namespace {

/** Emit a shard profile's per-lane wall-time splits as Chrome counter
 *  events ("ph":"C"), one track per lane, pinned at ts 0 (the values
 *  are whole-run host-time totals, not simulated-time samples). */
void
writeShardProfileCounters(std::ostream &os, const ShardProfile &p)
{
    for (std::size_t i = 0; i < p.lanes.size(); ++i) {
        const ShardProfile::Lane &ln = p.lanes[i];
        // Sparse like the JSON export: spare fleet lanes that never
        // ran or stalled get no counter track.
        if (ln.busyNs == 0 && ln.stallNs == 0 && ln.events == 0 &&
            ln.stallRounds == 0)
            continue;
        os << ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0.0000,"
              "\"name\":\"shard.lane"
           << i << ".walltime_us\",\"cat\":\"shard\",\"args\":{"
              "\"busy\":"
           << formatUs(static_cast<double>(ln.busyNs) / 1e3)
           << ",\"wait\":"
           << formatUs(static_cast<double>(p.waitNs(i)) / 1e3)
           << ",\"stall\":"
           << formatUs(static_cast<double>(ln.stallNs) / 1e3) << "}}";
    }
}

} // namespace

void
writeChromeTrace(std::ostream &os, const TraceSink &sink,
                 const Frequency &freq, const std::string &process,
                 const TimelineSampler *timeline,
                 const ShardProfile *profile,
                 const FlightRecorder *flight)
{
    os << "{\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"" << jsonEscape(process) << "\"}}";

    // Name one thread track per physical CPU seen in the records.
    std::vector<std::uint16_t> tracks;
    sink.forEach([&tracks](const TraceRecord &r) {
        if (std::find(tracks.begin(), tracks.end(), r.track) ==
            tracks.end()) {
            tracks.push_back(r.track);
        }
    });
    std::sort(tracks.begin(), tracks.end());
    for (std::uint16_t tr : tracks) {
        os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\"" << ":" << tr
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        if (tr == noTrack)
            os << "global";
        else
            os << "cpu" << tr;
        os << "\"}}";
    }

    // Overflow is never silent: emit a warning instant so anyone
    // reading the timeline sees that the ring wrapped and spans may
    // have lost their opening edges.
    if (sink.dropped() > 0) {
        os << ",\n{\"ph\":\"i\",\"pid\":0,\"tid\":" << noTrack
           << ",\"ts\":0.0000,\"s\":\"g\",\"name\":"
              "\"trace_ring_overflow\",\"cat\":\"warning\","
              "\"args\":{\"droppedRecords\":" << sink.dropped()
           << ",\"truncatedSpans\":" << sink.truncatedSpans()
           << "}}";
    }

    // Raw edge tokens encode the issuing lane, so their values depend
    // on the lane partition; renumber flows by first appearance in
    // canonical merged order, which does not.
    std::unordered_map<std::uint64_t, std::uint64_t> flowIds;
    sink.forEachMerged([&os, &freq, &flowIds](const TraceRecord &r) {
        // Causal edges render as Chrome flow events: an arrow from
        // the EdgeOut record to the matching EdgeIn, tied by token.
        if (r.kind == TraceKind::EdgeOut ||
            r.kind == TraceKind::EdgeIn) {
            const bool out = r.kind == TraceKind::EdgeOut;
            const auto it =
                flowIds.try_emplace(r.arg, flowIds.size() + 1).first;
            os << ",\n{\"ph\":\"" << (out ? "s" : "f") << "\"";
            if (!out)
                os << ",\"bp\":\"e\"";
            os << ",\"pid\":0,\"tid\":" << r.track
               << ",\"ts\":" << formatUs(freq.us(r.when))
               << ",\"id\":" << it->second << ",\"name\":\""
               << jsonEscape(tapName(r.tap)) << "\",\"cat\":\""
               << to_string(r.cat) << "\"}";
            return;
        }
        const char *ph = r.kind == TraceKind::Begin ? "B"
                         : r.kind == TraceKind::End ? "E"
                                                    : "i";
        os << ",\n{\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":"
           << r.track << ",\"ts\":" << formatUs(freq.us(r.when))
           << ",\"name\":\"" << jsonEscape(tapName(r.tap))
           << "\",\"cat\":\"" << to_string(r.cat) << "\"";
        if (r.kind == TraceKind::Instant)
            os << ",\"s\":\"t\",\"args\":{\"arg\":" << r.arg << "}";
        os << "}";
    });

    // Sampled gauges merge in as counter tracks so queue depths and
    // occupancy levels render under the spans that caused them.
    if (timeline)
        timeline->writeCounterEvents(os, freq);

    // Per-lane kernel wall-time splits render alongside, one counter
    // track per lane. Host-clock measurements: only merged in when
    // explicitly passed, so deterministic exports stay deterministic.
    if (profile)
        writeShardProfileCounters(os, *profile);

    // Captured incident windows annotate the timeline so the forensic
    // JSON and the Perfetto view line up on the same instants.
    if (flight)
        flight->writeAnnotationEvents(os, freq);

    os << "\n],\"otherData\":{\"recordCount\":" << sink.size()
       << ",\"droppedRecords\":" << sink.dropped()
       << ",\"truncatedSpans\":" << sink.truncatedSpans() << "}}\n";
}

bool
exportChromeTrace(const std::string &path, const TraceSink &sink,
                  const Frequency &freq, const std::string &process,
                  const TimelineSampler *timeline,
                  const ShardProfile *profile,
                  const FlightRecorder *flight)
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open trace file ", path);
        return false;
    }
    if (sink.dropped() > 0 || sink.truncatedSpans() > 0) {
        warn("trace ", path, " is lossy: ", sink.dropped(),
             " dropped records, ", sink.truncatedSpans(),
             " truncated spans (raise VIRTSIM_TRACE_CAPACITY)");
    }
    writeChromeTrace(os, sink, freq, process, timeline, profile,
                     flight);
    return true;
}

void
Probe::syncTraceHealth()
{
    // Counter has no set(): top up to the current value so repeated
    // syncs stay idempotent within a run (reset() zeroes both sides).
    auto topUp = [this](const char *name, std::uint64_t target) {
        if (target == 0)
            return;
        Counter &c = metrics.machine().counter(internTap(name));
        if (target > c.value())
            c.inc(target - c.value());
    };
    topUp("trace.health.dropped_records", trace.dropped());
    topUp("trace.health.truncated_spans", trace.truncatedSpans());
}

void
Probe::warmTraceHealth()
{
    // Interning alone is enough: prepareForParallel() sizes the
    // counter arrays from internedTapCount(), and no counter row is
    // registered until a sync actually reports loss.
    internTap("trace.health.dropped_records");
    internTap("trace.health.truncated_spans");
}

void
MetricsDomain::reset()
{
    for (Counter &c : counters)
        c.reset();
    for (HistogramStat &h : hists)
        h.reset();
}

MetricsRegistry::MetricsRegistry()
    : _machine(std::make_unique<MetricsDomain>("machine"))
{
}

MetricsDomain &
MetricsRegistry::vm(const std::string &name)
{
    for (auto &[key, dom] : _vms) {
        if (key == name)
            return *dom;
    }
    _vms.emplace_back(name,
                      std::make_unique<MetricsDomain>("vm:" + name));
    return *_vms.back().second;
}

MetricsDomain &
MetricsRegistry::cpu(int pcpu)
{
    VIRTSIM_ASSERT(pcpu >= 0, "bad pcpu ", pcpu);
    const auto i = static_cast<std::size_t>(pcpu);
    while (_cpus.size() <= i) {
        _cpus.push_back(std::make_unique<MetricsDomain>(
            "cpu:" + std::to_string(_cpus.size())));
    }
    return *_cpus[i];
}

void
MetricsRegistry::prepareForParallel(int nCpus)
{
    const std::size_t taps = internedTapCount();
    if (nCpus > 0)
        cpu(nCpus - 1); // materialize cpu:0 .. cpu:nCpus-1
    _machine->prepareForParallel(taps);
    for (auto &[key, dom] : _vms)
        dom->prepareForParallel(taps);
    for (auto &dom : _cpus)
        dom->prepareForParallel(taps);
}

void
MetricsRegistry::endParallel()
{
    _machine->endParallel();
    for (auto &[key, dom] : _vms)
        dom->endParallel();
    for (auto &dom : _cpus)
        dom->endParallel();
}

void
MetricsRegistry::reset()
{
    _machine->reset();
    for (auto &[key, dom] : _vms)
        dom->reset();
    for (auto &dom : _cpus)
        dom->reset();
}

void
MetricsRegistry::clear()
{
    _machine = std::make_unique<MetricsDomain>("machine");
    _vms.clear();
    _cpus.clear();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    auto collect = [&snap](const MetricsDomain &dom) {
        dom.forEachCounter([&snap, &dom](TapId tap,
                                         std::uint64_t value) {
            snap.counters.push_back(
                {dom.name(), tapName(tap), value});
        });
        dom.forEachHistogram([&snap, &dom](TapId tap,
                                           const HistogramStat &h) {
            MetricsSnapshot::HistogramRow row;
            row.domain = dom.name();
            row.name = tapName(tap);
            row.count = h.count();
            if (h.count() > 0) {
                row.min = h.min();
                row.max = h.max();
                row.mean = h.mean();
            }
            snap.histograms.push_back(std::move(row));
        });
    };
    collect(*_machine);
    for (const auto &[key, dom] : _vms)
        collect(*dom);
    for (const auto &dom : _cpus)
        collect(*dom);

    // Sort by name, not tap id: interning order differs between runs
    // under parallel sweeps, names do not.
    auto byName = [](const auto &a, const auto &b) {
        if (a.domain != b.domain)
            return a.domain < b.domain;
        return a.name < b.name;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), byName);
    std::sort(snap.histograms.begin(), snap.histograms.end(), byName);
    return snap;
}

std::string
MetricsSnapshot::render() const
{
    std::string out;
    for (const CounterRow &r : counters) {
        out += r.domain + "/" + r.name + " = " +
               std::to_string(r.value) + "\n";
    }
    for (const HistogramRow &r : histograms) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f", r.mean);
        out += r.domain + "/" + r.name + " : n=" +
               std::to_string(r.count) + " min=" +
               std::to_string(r.min) + " mean=" + buf +
               " max=" + std::to_string(r.max) + "\n";
    }
    return out;
}

std::string
MetricsSnapshot::brief() const
{
    // The acceptance digest: traps, world switches and virtual IRQs
    // per VM domain, one line per VM.
    struct Digest
    {
        std::uint64_t traps = 0;
        std::uint64_t switches = 0;
        std::uint64_t virqs = 0;
    };
    std::vector<std::pair<std::string, Digest>> vms;
    auto digestOf = [&vms](const std::string &domain) -> Digest & {
        for (auto &[name, d] : vms) {
            if (name == domain)
                return d;
        }
        vms.emplace_back(domain, Digest{});
        return vms.back().second;
    };
    for (const CounterRow &r : counters) {
        if (r.domain.rfind("vm:", 0) != 0)
            continue;
        Digest &d = digestOf(r.domain);
        if (r.name.find(".trap.") != std::string::npos)
            d.traps += r.value;
        else if (r.name.find("world_switch") != std::string::npos)
            d.switches += r.value;
        else if (r.name.find("virq") != std::string::npos)
            d.virqs += r.value;
    }
    // Trap costs are recorded as per-reason histograms; their sample
    // counts are the trap counts.
    for (const HistogramRow &r : histograms) {
        if (r.domain.rfind("vm:", 0) != 0)
            continue;
        if (r.name.find(".trap.") != std::string::npos)
            digestOf(r.domain).traps += r.count;
    }
    std::string out;
    for (const auto &[name, d] : vms) {
        out += name + ": traps=" + std::to_string(d.traps) +
               " world_switches=" + std::to_string(d.switches) +
               " virqs=" + std::to_string(d.virqs) + "\n";
    }
    if (out.empty())
        out = "(no VM metrics)\n";
    return out;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"counters\":[";
    bool first = true;
    for (const CounterRow &r : counters) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"domain\":\"" + jsonEscape(r.domain) +
               "\",\"name\":\"" + jsonEscape(r.name) +
               "\",\"value\":" + std::to_string(r.value) + "}";
    }
    out += "],\"histograms\":[";
    first = true;
    for (const HistogramRow &r : histograms) {
        if (!first)
            out += ",";
        first = false;
        char mean[64];
        std::snprintf(mean, sizeof(mean), "%.4f", r.mean);
        out += "{\"domain\":\"" + jsonEscape(r.domain) +
               "\",\"name\":\"" + jsonEscape(r.name) +
               "\",\"count\":" + std::to_string(r.count) +
               ",\"min\":" + std::to_string(r.min) +
               ",\"max\":" + std::to_string(r.max) +
               ",\"mean\":" + mean + "}";
    }
    out += "]}";
    return out;
}

void
EventKernelProfiler::prepareForParallel(int lanes,
                                        std::size_t tapCount)
{
    VIRTSIM_ASSERT(lanes >= 1, "bad profiler lane count ", lanes);
    hists.clear();
    // Raw tap ids are 1-based; slot 0 holds the invalid label.
    laneHists.assign(static_cast<std::size_t>(lanes),
                     std::vector<HistogramStat>(tapCount + 1));
}

std::size_t
EventKernelProfiler::labelLimit() const
{
    return laneHists.empty() ? hists.size() : laneHists[0].size();
}

HistogramStat
EventKernelProfiler::mergedAt(std::size_t i) const
{
    HistogramStat h;
    for (const std::vector<HistogramStat> &lane : laneHists) {
        if (i < lane.size())
            h.merge(lane[i]);
    }
    return h;
}

const HistogramStat *
EventKernelProfiler::histogram(TapId label) const
{
    const std::size_t i = label.raw();
    if (laneHists.empty()) {
        if (i >= hists.size() || hists[i].count() == 0)
            return nullptr;
        return &hists[i];
    }
    if (i >= labelLimit())
        return nullptr;
    mergeScratch = mergedAt(i);
    return mergeScratch.count() == 0 ? nullptr : &mergeScratch;
}

std::string
EventKernelProfiler::render() const
{
    std::vector<std::pair<std::string, HistogramStat>> rows;
    for (std::size_t i = 0; i < labelLimit(); ++i) {
        HistogramStat h = laneHists.empty() ? hists[i] : mergedAt(i);
        if (h.count() == 0)
            continue;
        const TapId tap = TapId::fromRaw(static_cast<std::uint32_t>(i));
        rows.emplace_back(tap.valid() ? tapName(tap) : "(unlabeled)",
                          h);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::string out;
    for (const auto &[name, h] : rows) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f", h.mean());
        out += name + " : n=" + std::to_string(h.count()) +
               " min=" + std::to_string(h.min()) + " mean=" + buf +
               " max=" + std::to_string(h.max()) + "\n";
    }
    return out;
}

} // namespace virtsim
