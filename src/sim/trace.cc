#include "sim/trace.hh"

namespace virtsim {

std::optional<Cycles>
Tracer::find(std::uint64_t flow, const std::string &tap) const
{
    for (const auto &r : records) {
        if (r.flow == flow && r.tap == tap)
            return r.when;
    }
    return std::nullopt;
}

std::optional<Cycles>
Tracer::between(std::uint64_t flow, const std::string &from,
                const std::string &to) const
{
    const auto a = find(flow, from);
    const auto b = find(flow, to);
    if (!a || !b || *b < *a)
        return std::nullopt;
    return *b - *a;
}

} // namespace virtsim
