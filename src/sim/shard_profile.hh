/**
 * @file
 * Parallel-kernel profiler: where does the wall time of a sharded run
 * go, and which channel's lookahead is the scaling bottleneck?
 *
 * The sharded kernel (sim/shard) is a conservative-lookahead PDES:
 * every round each lane runs to a horizon derived from the other
 * lanes' next events plus the declared channel lookaheads. When a run
 * does not scale, the interesting question is rarely "how much work
 * per lane" (see shard.* metrics) but "what does each lane's wall
 * clock consist of" — executing events (busy), waiting at the barrier
 * for slower lanes (wait), or stalled with no runnable events because
 * an inbound channel's lookahead bounded its horizon below its next
 * event (stall). For stalls, the profiler attributes each stalled
 * round to the in-edge whose bound was binding — the *critical
 * channel*: tighten that channel's declared latency (or repartition)
 * and the run scales further.
 *
 * ShardedEventKernel fills this while running (host steady-clock
 * measurements, enabled via enableShardProfile() — zero overhead when
 * off); core/report renders the human summary and toJson() emits the
 * machine-readable export behind VIRTSIM_SHARD_PROFILE. Exports carry
 * host wall times and are therefore NOT covered by the byte-identity
 * guarantee the simulated-time exports meet.
 */

#ifndef VIRTSIM_SIM_SHARD_PROFILE_HH
#define VIRTSIM_SIM_SHARD_PROFILE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace virtsim {

struct ShardProfile
{
    struct Lane
    {
        std::uint64_t busyNs = 0;   ///< executing events
        std::uint64_t stallNs = 0;  ///< rounds spent with nothing runnable
        std::uint64_t events = 0;   ///< events fired
        std::uint64_t stallRounds = 0; ///< rounds this lane fired nothing
    };

    /** Per-lane splits; empty until the kernel arms the profiler. */
    std::vector<Lane> lanes;

    std::uint64_t wallNs = 0;  ///< whole-run wall time of the round loop
    std::uint64_t rounds = 0;
    std::uint64_t parallelRounds = 0;

    /** critRounds[dst * lanes.size() + src]: stalled rounds of `dst`
     *  whose binding horizon limit was the in-edge from `src`. */
    std::vector<std::uint64_t> critRounds;
    /** critChannel[dst * lanes.size() + src]: name of the channel
     *  whose declared lookahead forms that edge (the tightest one
     *  when several share the pair; empty if none declared). */
    std::vector<std::string> critChannel;

    bool enabled() const { return !lanes.empty(); }

    /** Barrier wait: wall time not spent busy or stalled. */
    std::uint64_t
    waitNs(std::size_t lane) const
    {
        const std::uint64_t used =
            lanes[lane].busyNs + lanes[lane].stallNs;
        return used < wallNs ? wallNs - used : 0;
    }

    /** Aggregate busy time across lanes. */
    std::uint64_t busyNsTotal() const;

    /** Lanes that ever ran an event or stalled — the rows toJson()
     *  emits. A fleet-scale kernel keeps spare lanes; their all-zero
     *  splits are elided from the export just as the coordinator
     *  elides them from the rounds. */
    std::size_t lanesProfiled() const;

    /** Achieved parallelism: total busy time over wall time — the
     *  speedup this run realized over a serial execution of the same
     *  event work (ignoring per-round coordination the serial path
     *  would not pay). */
    double speedupEstimate() const;

    /** Machine-readable export (schema "virtsim-shard-profile-2":
     *  sparse lane_detail — all-zero lanes elided, rows keyed by
     *  their "lane" field). */
    std::string toJson() const;
};

/** ShardProfile::toJson() to a file. @return false if the file failed
 *  to open (the failure is also logged). */
bool exportShardProfile(const std::string &path,
                        const ShardProfile &profile);

} // namespace virtsim

#endif // VIRTSIM_SIM_SHARD_PROFILE_HH
