/**
 * @file
 * Conversions between cycles and wall-clock units at a platform's CPU
 * frequency.
 *
 * The paper's two testbeds run at different frequencies (ARM Atlas at
 * 2.4 GHz, Xeon E5-2450 at 2.1 GHz); microbenchmarks are reported in
 * cycles and the Netperf TCP_RR analysis in microseconds, so both
 * directions are needed.
 */

#ifndef VIRTSIM_SIM_UNITS_HH
#define VIRTSIM_SIM_UNITS_HH

#include <cmath>

#include "sim/types.hh"

namespace virtsim {

/** CPU clock of a simulated platform. */
class Frequency
{
  public:
    /** Construct a frequency from a value in GHz. */
    explicit constexpr Frequency(double ghz) : _ghz(ghz) {}

    constexpr double ghz() const { return _ghz; }

    /** Cycles in one microsecond at this frequency. */
    constexpr double cyclesPerUs() const { return _ghz * 1000.0; }

    /** Convert a duration in microseconds to (rounded) cycles. */
    Cycles
    cycles(double us) const
    {
        return static_cast<Cycles>(std::llround(us * cyclesPerUs()));
    }

    /** Convert a duration in nanoseconds to (rounded) cycles. */
    Cycles
    cyclesFromNs(double ns) const
    {
        return static_cast<Cycles>(std::llround(ns * _ghz));
    }

    /** Convert a cycle count to microseconds. */
    constexpr double
    us(Cycles c) const
    {
        return static_cast<double>(c) / cyclesPerUs();
    }

    /** Convert a cycle count to seconds. */
    constexpr double
    seconds(Cycles c) const
    {
        return us(c) / 1e6;
    }

    /** Convert a duration in seconds to (rounded) cycles. */
    Cycles
    cyclesFromSeconds(double s) const
    {
        return cycles(s * 1e6);
    }

  private:
    double _ghz;
};

} // namespace virtsim

#endif // VIRTSIM_SIM_UNITS_HH
