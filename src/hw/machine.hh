/**
 * @file
 * A complete simulated server machine: CPUs, interrupt controller,
 * timers, MMU/TLBs, memory and NIC, bound to one event queue.
 *
 * Factory configurations reproduce the paper's testbeds (Section III):
 * HP Moonshot m400 (8-core ARMv8 X-Gene, 64 GB, 10 GbE) and Dell
 * PowerEdge r320 (8-core Xeon E5-2450 with hyperthreading off, 16 GB,
 * 10 GbE).
 */

#ifndef VIRTSIM_HW_MACHINE_HH
#define VIRTSIM_HW_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "hw/cost_model.hh"
#include "hw/cpu.hh"
#include "hw/gic.hh"
#include "hw/memory.hh"
#include "hw/mmu.hh"
#include "hw/nic.hh"
#include "hw/vtimer.hh"
#include "sim/event_queue.hh"
#include "sim/probe.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"

namespace virtsim {

/** Static description of a machine. */
struct MachineConfig
{
    std::string name = "machine";
    CostModel costs = CostModel::armAtlas();
    int nCpus = 8;
    /** RAM in GiB (configuration bookkeeping; Section III uses it to
     *  carve VM / Dom0 / hypervisor shares). */
    int ramGib = 64;
    Nic::Params nicParams{};

    /** The paper's ARM testbed node. */
    static MachineConfig hpMoonshotM400();

    /** The paper's x86 testbed node. */
    static MachineConfig dellR320();
};

/**
 * How a machine's components map onto the shards of a sharded kernel
 * (sim/shard.hh). The standard assignment gives PhysicalCpu i shard
 * 1+i and the device side (NIC, timers, wire, client) shard 0; this
 * plan then says which *lane* each of those shards runs on. The
 * default plan (everything on one lane) reproduces the serial kernel
 * exactly. Any two components coupled through zero-latency shared
 * state — a hypervisor's run queues, vhost worker and vring, client
 * and server of a MAERTS stream — must share a lane; only the
 * channel-mediated interactions (IPIs, the wire) may cross lanes.
 */
struct MachineShardPlan
{
    /** Lane of PhysicalCpu i; empty = every CPU on deviceLane. */
    std::vector<int> cpuLane;
    /** Lane of shard 0 (devices, wire, client). */
    int deviceLane = 0;
    /**
     * Declare the per-CPU from-any IPI channels. The channels are
     * what lets IPIs cross lanes, but their lookahead (ipiFlight,
     * ~360 cycles) is the tightest latency in the machine, so the
     * conservative horizon of every lane shrinks to IPI quanta even
     * in worlds that never send one. A world that routes all of its
     * cross-CPU interaction through its own channels and sends no
     * cross-lane IPIs may opt out; the delivery-queue lane assert
     * still catches an IPI that then tries to cross lanes.
     */
    bool ipiChannels = true;

    int
    laneFor(PcpuId cpu) const
    {
        return cpuLane.empty()
                   ? deviceLane
                   : cpuLane[static_cast<std::size_t>(cpu)];
    }

    /**
     * Load-balanced planning: pack nCpus per-CPU shards onto at most
     * maxLanes lanes by longest-processing-time greedy packing —
     * heaviest shard first onto the least-loaded lane, ties broken
     * toward the lowest lane (and, among equal weights, the lowest
     * CPU), so the plan is a pure function of its inputs.
     *
     * weights[i] estimates CPU i's event traffic: per-shard event
     * counts from a profiling warmup (ShardedEventKernel::stats()
     * lane events after a short representative run), or static
     * weights like per-VM connection counts. Empty = uniform.
     * deviceWeight preloads lane 0 with the device/wire/client
     * side's share so CPUs prefer other lanes while any remain.
     *
     * The kernel's determinism bar (modelled results byte-identical
     * at every VIRTSIM_SHARDS) already guarantees the plan cannot
     * change results — only wall-clock balance. This is what lets
     * VIRTSIM_SHARDS stay far below the CPU count on huge fleets:
     * 256 VMs on a 16-lane kernel get ~16 CPUs per lane instead of
     * demanding 257 lanes.
     */
    static MachineShardPlan
    balanced(int nCpus, int maxLanes,
             const std::vector<std::uint64_t> &weights = {},
             std::uint64_t deviceWeight = 0);
};

/**
 * A running machine instance.
 */
class Machine
{
  public:
    Machine(EventQueue &eq, MachineConfig config);

    /**
     * Shard-aware construction: CPUs schedule on the lanes the plan
     * assigns, the interrupt chip's IPIs travel through declared
     * from-any channels (lookahead = ipiFlight), and the machine's
     * shards are registered with the kernel. With a default plan and
     * a single-lane kernel this is behaviorally identical to the
     * EventQueue constructor.
     */
    Machine(ShardedEventKernel &kern, const MachineShardPlan &plan,
            MachineConfig config);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return cfg; }
    Arch arch() const { return cfg.costs.arch; }
    const CostModel &costs() const { return cfg.costs; }
    const Frequency &freq() const { return cfg.costs.freq; }

    EventQueue &queue() { return eq; }
    StatRegistry &stats() { return _stats; }

    /** Queue PhysicalCpu `id` schedules on (its lane queue under a
     *  shard plan; the machine queue otherwise). */
    EventQueue &cpuQueue(PcpuId id) { return cpu(id).queue(); }

    /** Observability bundle (trace sink + metrics + profiler). */
    Probe &probe() { return _probe; }
    TraceSink &trace() { return _probe.trace; }
    MetricsRegistry &metrics() { return _probe.metrics; }

    int numCpus() const { return static_cast<int>(cpus.size()); }
    PhysicalCpu &cpu(PcpuId id);

    IrqChip &irqChip() { return *chip; }

    /** ARM-only accessor. @pre arch() == Arch::Arm */
    Gic &gic();

    /** x86-only accessor. @pre arch() == Arch::X86 */
    Apic &apic();

    TimerBank &timers() { return *_timers; }
    Mmu &mmu() { return _mmu; }
    MainMemory &memory() { return _memory; }
    Nic &nic() { return *_nic; }

    /**
     * Return the machine to its just-constructed state so a cached
     * instance is indistinguishable from a cold-built one: CPUs,
     * interrupt chip, timers, TLBs, memory and NIC rewound; stats and
     * metrics registries *cleared* (registrations dropped, not just
     * zeroed — a reset-but-registered counter would render rows a
     * fresh machine lacks); trace ring and profiler emptied. Does NOT
     * touch the trace sink's enabled flag, capacity or observer, nor
     * the NIC's onWireTx hook — those belong to the harness (Testbed)
     * that owns the machine. Does not drain the event queue either:
     * the queue is shared with the harness, which resets it.
     */
    void reset();

  private:
    /**
     * Register this machine's hardware gauges with the timeline
     * sampler: per-CPU exception level / run mode and busy-cycle
     * rate, GIC list-register occupancy (ARM), event-queue depth,
     * NIC rx queue depth and drop rate, and the stage-2 fault rate.
     * Called from the constructor and again from reset() (reset
     * clears the sampler, mirroring the metrics registry).
     */
    void registerTimelineGauges();

    MachineConfig cfg;
    EventQueue &eq;
    /** Owning kernel under shard-aware construction; null for the
     *  plain EventQueue constructor. Lets world-wide gauges sum over
     *  lanes instead of reporting one lane's share. */
    ShardedEventKernel *_kern = nullptr;
    StatRegistry _stats;
    Probe _probe;
    std::vector<std::unique_ptr<PhysicalCpu>> cpus;
    std::unique_ptr<IrqChip> chip;
    std::unique_ptr<TimerBank> _timers;
    Mmu _mmu;
    MainMemory _memory;
    std::unique_ptr<Nic> _nic;
};

} // namespace virtsim

#endif // VIRTSIM_HW_MACHINE_HH
