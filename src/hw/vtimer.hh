/**
 * @file
 * Generic timer model.
 *
 * ARM provides a virtual timer a VM can program without trapping;
 * when it fires it raises a *physical* interrupt that is taken to EL2
 * and must be translated into a virtual interrupt by the hypervisor
 * (paper, Section II). This class models the per-CPU timer hardware:
 * programming a deadline schedules a future PPI through the IrqChip.
 */

#ifndef VIRTSIM_HW_VTIMER_HH
#define VIRTSIM_HW_VTIMER_HH

#include <cstdint>
#include <vector>

#include "hw/gic.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace virtsim {

/** Per-CPU programmable timer bank. */
class TimerBank
{
  public:
    TimerBank(EventQueue &eq, IrqChip &chip, int n_cpus,
              IrqId irq = ppiVtimerIrq);

    /**
     * Arm the timer of cpu to fire at absolute time deadline.
     * Reprogramming replaces any previously armed deadline.
     */
    void program(PcpuId cpu, Cycles deadline);

    /** Disarm the timer of cpu. */
    void cancel(PcpuId cpu);

    /** @return true if the timer of cpu is armed. */
    bool armed(PcpuId cpu) const;

    /** Armed deadline; only meaningful when armed(). */
    Cycles deadline(PcpuId cpu) const;

    /** Disarm every slot and rewind the stale-fire generation
     *  counters to their just-constructed values. */
    void
    reset()
    {
        for (Slot &s : slots)
            s = Slot{};
    }

  private:
    struct Slot
    {
        bool isArmed = false;
        Cycles when = 0;
        /** Generation counter: fires from stale program() calls are
         *  ignored, implementing cancel/reprogram without removing
         *  events from the queue. */
        std::uint64_t gen = 0;
    };

    EventQueue &eq;
    IrqChip &chip;
    IrqId irq;
    std::vector<Slot> slots;
};

} // namespace virtsim

#endif // VIRTSIM_HW_VTIMER_HH
