#include "hw/nic.hh"

#include <algorithm>

#include "sim/log.hh"

namespace virtsim {

Nic::Nic(EventQueue &eq, IrqChip &chip, StatRegistry &stats,
         const Frequency &freq, Params params)
    : eq(eq), chip(chip), stats(stats), freq(freq), params(params)
{
}

Nic::Nic(EventQueue &eq, IrqChip &chip, StatRegistry &stats,
         const Frequency &freq)
    : Nic(eq, chip, stats, freq, Params{})
{
}

void
Nic::receiveFromWire(Cycles t, const Packet &pkt)
{
    stats.counter("nic.rx_packets").inc();
    stats.counter("nic.rx_bytes").inc(pkt.bytes);
    const Cycles ready = t + params.rxDmaLatency;
    eq.scheduleAt(ready, [this, ready, pkt] {
        if (rxQueue.size() >= params.rxQueueCap) {
            stats.counter("nic.rx_dropped").inc();
            return;
        }
        rxQueue.push_back(pkt);
        if (params.coalesceWindow > 0 && ready < coalesceUntil) {
            // Within a coalescing window: no immediate interrupt,
            // but arm the end-of-window flush so a burst that stops
            // mid-window is still delivered (real adaptive
            // moderation fires at the window boundary).
            stats.counter("nic.rx_coalesced").inc();
            if (!windowIrqPending) {
                windowIrqPending = true;
                eq.scheduleAt(coalesceUntil, [this] {
                    windowIrqPending = false;
                    if (!rxQueue.empty())
                        chip.raiseExternal(eq.now(), spiNicIrq);
                });
            }
            return;
        }
        coalesceUntil = ready + params.coalesceWindow;
        chip.raiseExternal(ready, spiNicIrq);
    });
}

bool
Nic::popRx(Packet &out)
{
    if (rxQueue.empty())
        return false;
    out = rxQueue.front();
    rxQueue.pop_front();
    return true;
}

void
Nic::transmit(Cycles t, const Packet &pkt)
{
    stats.counter("nic.tx_packets").inc();
    stats.counter("nic.tx_bytes").inc(pkt.bytes);
    const Cycles fetch_done = t + params.txDmaLatency;
    // Serialize onto the wire at line rate: packets queue behind the
    // transmitter when the CPU outruns 10 GbE.
    const Cycles start = std::max(fetch_done, txWireFree);
    const Cycles done = start + serializationDelay(pkt.bytes);
    txWireFree = done;
    eq.scheduleAt(done, [this, done, pkt] {
        if (onWireTx)
            onWireTx(done, pkt);
    });
}

Cycles
Nic::serializationDelay(std::uint32_t bytes) const
{
    // bits / (Gbit/s) = ns; convert to cycles.
    const double ns =
        static_cast<double>(bytes) * 8.0 / params.lineRateGbps;
    return freq.cyclesFromNs(ns);
}

} // namespace virtsim
