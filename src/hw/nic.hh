/**
 * @file
 * Network interface model: a 10 GbE-class NIC (the testbed used
 * dual-port Mellanox ConnectX-3 adapters) with DMA, rx/tx queues, and
 * interrupt generation.
 *
 * The paper stresses that 10 GbE mattered: at 1 GbE the wire, not the
 * hypervisor, was the bottleneck. The model therefore includes a line
 * rate so that throughput benchmarks can (and do, natively) run into
 * the wire limit rather than a CPU limit.
 */

#ifndef VIRTSIM_HW_NIC_HH
#define VIRTSIM_HW_NIC_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "hw/cost_model.hh"
#include "hw/gic.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace virtsim {

/** A network packet (or large send segment). */
struct Packet
{
    /** Flow/transaction identifier for trace correlation. */
    std::uint64_t flow = 0;
    /** Payload size in bytes. */
    std::uint32_t bytes = 0;
    /** Time the packet was created at its origin. */
    Cycles born = 0;
    /** Monotonic sequence number assigned by the sender. */
    std::uint64_t seq = 0;
};

/**
 * The machine's NIC.
 */
class Nic
{
  public:
    /** Tunable device latencies (defaults approximate ConnectX-3). */
    struct Params
    {
        /** Wire-side arrival to descriptor DMA'd + IRQ asserted. */
        Cycles rxDmaLatency = 2400; // ~1 us at 2.4 GHz
        /** Doorbell to first byte on the wire. */
        Cycles txDmaLatency = 1700; // ~0.7 us
        /** Line rate in bits per nanosecond (10 GbE = 10). */
        double lineRateGbps = 10.0;
        /** Interrupt coalescing window; 0 = interrupt per packet. */
        Cycles coalesceWindow = 0;
        /** Rx descriptor ring capacity; arrivals beyond it are
         *  dropped (as on real hardware under receive livelock). */
        std::size_t rxQueueCap = 4096;
    };

    Nic(EventQueue &eq, IrqChip &chip, StatRegistry &stats,
        const Frequency &freq, Params params);

    Nic(EventQueue &eq, IrqChip &chip, StatRegistry &stats,
        const Frequency &freq);

    /** @name Wire side */
    ///@{
    /** A packet arrives from the wire; DMA it and raise the rx IRQ. */
    void receiveFromWire(Cycles t, const Packet &pkt);

    /** Hook invoked when a packet leaves on the wire. */
    std::function<void(Cycles, const Packet &)> onWireTx;
    ///@}

    /** @name Driver side */
    ///@{
    /** Pop the next received packet, if any. */
    bool popRx(Packet &out);

    std::size_t rxQueueDepth() const { return rxQueue.size(); }

    /**
     * Driver posts a packet for transmission (doorbell write). The
     * NIC serializes packets onto the wire at line rate.
     */
    void transmit(Cycles t, const Packet &pkt);
    ///@}

    /** Serialization delay of a packet at line rate. */
    Cycles serializationDelay(std::uint32_t bytes) const;

    /** Drop queued packets and rewind wire/coalescing state. Keeps
     *  the onWireTx hook: it belongs to the harness that wired the
     *  machine up, not to a single run. */
    void
    reset()
    {
        rxQueue.clear();
        txWireFree = 0;
        coalesceUntil = 0;
        windowIrqPending = false;
    }

  private:
    EventQueue &eq;
    IrqChip &chip;
    StatRegistry &stats;
    Frequency freq;
    Params params;
    std::deque<Packet> rxQueue;
    /** Time the transmit wire becomes free (line-rate serialization). */
    Cycles txWireFree = 0;
    /** End of the current interrupt-coalescing window, if any. */
    Cycles coalesceUntil = 0;
    /** Whether an end-of-window flush interrupt is already armed. */
    bool windowIrqPending = false;
};

} // namespace virtsim

#endif // VIRTSIM_HW_NIC_HH
