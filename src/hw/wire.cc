#include "hw/wire.hh"

#include "sim/log.hh"

namespace virtsim {

void
Wire::sendToServer(Cycles t, const Packet &pkt)
{
    VIRTSIM_ASSERT(toServer, "wire has no server endpoint");
    stats.counter("wire.to_server").inc();
    eq.scheduleAt(t + latency, [this, t, pkt] {
        toServer(t + latency, pkt);
    });
}

void
Wire::sendToClient(Cycles t, const Packet &pkt)
{
    VIRTSIM_ASSERT(toClient, "wire has no client endpoint");
    stats.counter("wire.to_client").inc();
    eq.scheduleAt(t + latency, [this, t, pkt] {
        toClient(t + latency, pkt);
    });
}

} // namespace virtsim
