#include "hw/wire.hh"

#include "sim/attrib.hh"
#include "sim/log.hh"

namespace virtsim {

void
Wire::sendToServer(Cycles t, const Packet &pkt)
{
    VIRTSIM_ASSERT(toServer, "wire has no server endpoint");
    stats.counter("wire.to_server").inc();
    std::uint64_t token = 0;
    if (probe)
        token = probe->trace.edgeOut(t, edgeWireTap(), TraceCat::Io);
    EventFn deliver = [this, t, pkt, token] {
        if (probe) {
            probe->trace.edgeIn(t + latency, token, edgeWireTap(),
                                TraceCat::Io);
            // Request-phase view of the traversal. CPU 0: the wire
            // is the single-flow testbed worlds' one wire, and their
            // workload runs on CPU 0.
            probe->latency.record(0, LatencyPhase::WireFlight,
                                  latency);
        }
        toServer(t + latency, pkt);
    };
    if (chToServer)
        chToServer->send(t + latency, std::move(deliver));
    else
        eq.scheduleAt(t + latency, std::move(deliver));
}

void
Wire::sendToClient(Cycles t, const Packet &pkt)
{
    VIRTSIM_ASSERT(toClient, "wire has no client endpoint");
    stats.counter("wire.to_client").inc();
    std::uint64_t token = 0;
    if (probe)
        token = probe->trace.edgeOut(t, edgeWireTap(), TraceCat::Io);
    EventFn deliver = [this, t, pkt, token] {
        if (probe) {
            probe->trace.edgeIn(t + latency, token, edgeWireTap(),
                                TraceCat::Io);
            probe->latency.record(0, LatencyPhase::WireFlight,
                                  latency);
        }
        toClient(t + latency, pkt);
    };
    if (chToClient)
        chToClient->send(t + latency, std::move(deliver));
    else
        eq.scheduleAt(t + latency, std::move(deliver));
}

} // namespace virtsim
