#include "hw/memory.hh"

#include "sim/log.hh"

namespace virtsim {

MainMemory::MainMemory(const CostModel &cm, StatRegistry &stats)
    : cm(cm), stats(stats)
{
}

BufferId
MainMemory::alloc(const std::string &owner, std::uint32_t bytes)
{
    const BufferId id = nextId++;
    buffers[id] = Buffer{owner, bytes};
    stats.counter("mem.buffers_allocated").inc();
    return id;
}

void
MainMemory::free(BufferId id)
{
    VIRTSIM_ASSERT(buffers.erase(id) > 0, "double free of buffer ", id);
}

bool
MainMemory::valid(BufferId id) const
{
    return buffers.count(id) > 0;
}

const std::string &
MainMemory::owner(BufferId id) const
{
    auto it = buffers.find(id);
    VIRTSIM_ASSERT(it != buffers.end(), "owner of invalid buffer ", id);
    return it->second.owner;
}

std::uint32_t
MainMemory::size(BufferId id) const
{
    auto it = buffers.find(id);
    VIRTSIM_ASSERT(it != buffers.end(), "size of invalid buffer ", id);
    return it->second.bytes;
}

Cycles
MainMemory::copyCost(std::uint32_t bytes)
{
    stats.counter("mem.bytes_copied").inc(bytes);
    stats.counter("mem.copies").inc();
    // Round up to whole KiB; small copies still pay setup of ~1 KiB.
    const std::uint32_t kib = (bytes + 1023) / 1024;
    return static_cast<Cycles>(kib == 0 ? 1 : kib) * cm.copyPerKb;
}

} // namespace virtsim
