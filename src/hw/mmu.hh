/**
 * @file
 * Memory virtualization: Stage-2 page tables and TLBs.
 *
 * When Stage-2 translation is enabled, the paper's three address
 * spaces apply: a VM's virtual addresses (VA) translate to
 * intermediate physical addresses (IPA) via the guest's Stage-1
 * tables, and IPAs translate to machine physical addresses (PA) via
 * the hypervisor-controlled Stage-2 tables. virtsim models Stage-2
 * explicitly (it is what hypervisors manipulate: faults, grant
 * mappings, zero-copy buffers) and charges Stage-1 costs statistically
 * inside workload models.
 *
 * The TLB model matters for one paper finding: removing a Xen grant
 * mapping requires invalidating TLB entries on every physical CPU. On
 * x86 that is an IPI shootdown that made zero-copy grants a net loss
 * (Section V); ARM has hardware broadcast invalidation.
 */

#ifndef VIRTSIM_HW_MMU_HH
#define VIRTSIM_HW_MMU_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hw/cost_model.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace virtsim {

/** Page number types (4 KiB granules). */
using Ipa = std::uint64_t; ///< intermediate physical page number
using Pa = std::uint64_t;  ///< machine physical page number

/** Address-space identifier of a Stage-2 translation regime (VMID). */
using VmId = int;

/**
 * Stage-2 page tables for one VM, owned by the hypervisor.
 */
class Stage2Tables
{
  public:
    explicit Stage2Tables(VmId vmid) : _vmid(vmid) {}

    VmId vmid() const { return _vmid; }

    /** Install a mapping ipa -> pa. Overwrites an existing one. */
    void map(Ipa ipa, Pa pa, bool writable = true);

    /** Remove a mapping. @return true if one existed. */
    bool unmap(Ipa ipa);

    /** Look up a mapping. */
    std::optional<Pa> lookup(Ipa ipa) const;

    bool isWritable(Ipa ipa) const;

    std::size_t mappedPages() const { return table.size(); }

  private:
    struct Entry
    {
        Pa pa;
        bool writable;
    };

    VmId _vmid;
    std::unordered_map<Ipa, Entry> table;
};

/**
 * Per-physical-CPU TLB caching (vmid, ipa) -> pa translations, with a
 * bounded capacity and FIFO-ish eviction. Determinism matters more
 * than replacement fidelity here.
 */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity = 512) : capacity(capacity) {}

    /** @return true on hit; misses do not auto-fill. */
    bool lookup(VmId vmid, Ipa ipa) const;

    /** Fill after a walk. Evicts the oldest entry when full. */
    void fill(VmId vmid, Ipa ipa);

    /** Invalidate one page of one VMID. */
    void invalidatePage(VmId vmid, Ipa ipa);

    /** Invalidate everything belonging to a VMID. */
    void invalidateVmid(VmId vmid);

    /** Invalidate everything. */
    void invalidateAll();

    std::size_t size() const { return entries.size(); }

  private:
    static std::uint64_t
    key(VmId vmid, Ipa ipa)
    {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(vmid))
                << 40) ^ ipa;
    }

    std::size_t capacity;
    std::unordered_set<std::uint64_t> entries;
    std::vector<std::uint64_t> order; ///< insertion order for eviction
};

/**
 * The machine's memory-management hardware: one TLB per physical CPU
 * plus the cost accounting for walks and invalidations.
 */
class Mmu
{
  public:
    /** probe is optional: standalone MMUs (unit tests) pass none. */
    Mmu(const CostModel &cm, StatRegistry &stats, int n_cpus,
        Probe *probe = nullptr);

    /**
     * Translate an IPA on a CPU under the given Stage-2 tables.
     * Charges nothing itself; returns the *cycle cost* of the
     * translation (0 on TLB hit, combined-walk cost on miss) so the
     * caller can put it on the right CPU's timeline.
     * @return pair of (pa, cost); pa is nullopt on translation fault.
     */
    std::pair<std::optional<Pa>, Cycles>
    translate(PcpuId cpu, const Stage2Tables &tables, Ipa ipa);

    /**
     * Invalidate a page on every CPU.
     * @return cost on the *initiating* CPU. On ARM this is one
     *         broadcast instruction; on x86 it is an IPI shootdown
     *         whose cost scales with CPU count.
     */
    Cycles invalidatePageBroadcast(VmId vmid, Ipa ipa);

    /** Invalidate a whole VMID on every CPU. @return initiator cost. */
    Cycles invalidateVmidBroadcast(VmId vmid);

    Tlb &tlb(PcpuId cpu) { return tlbs.at(static_cast<std::size_t>(cpu)); }

    int numCpus() const { return static_cast<int>(tlbs.size()); }

    /** Invalidate every TLB (cost-free: recycling a machine, not a
     *  modelled hardware operation). */
    void
    reset()
    {
        for (Tlb &t : tlbs)
            t.invalidateAll();
    }

  private:
    const CostModel &cm;
    StatRegistry &stats;
    Probe *probe; ///< may be null (standalone MMU)
    std::vector<Tlb> tlbs;
};

} // namespace virtsim

#endif // VIRTSIM_HW_MMU_HH
