#include "hw/gic.hh"

#include "sim/attrib.hh"
#include "sim/log.hh"
#include "sim/shard.hh"

namespace virtsim {

namespace {

/** Taps interned once; the chip hot paths then use plain ids. */
struct ChipTaps
{
    TapId ipiSent = internTap("irqchip.ipi_sent");
    TapId virqInjected = internTap("gic.virq_injected");
    TapId lrWrite = internTap("gic.lr_write");
    TapId lrOverflow = internTap("gic.lr_overflow");
    TapId irqDeliver = internTap("ev.irq_deliver");
};

const ChipTaps &
chipTaps()
{
    static const ChipTaps taps;
    return taps;
}

} // namespace

IrqChip::IrqChip(EventQueue &eq, const CostModel &cm,
                 StatRegistry &stats, Probe *probe)
    : eq(eq), cm(cm), stats(stats), probe(probe)
{
}

PcpuId
IrqChip::externalRoute(IrqId irq) const
{
    auto it = routes.find(irq);
    return it == routes.end() ? PcpuId{0} : it->second;
}

void
IrqChip::raiseExternal(Cycles t, IrqId irq)
{
    stats.counter("irqchip.external_raised").inc();
    deliver(t, externalRoute(irq), irq);
}

void
IrqChip::raisePpi(Cycles t, PcpuId cpu, IrqId irq)
{
    stats.counter("irqchip.ppi_raised").inc();
    deliver(t, cpu, irq);
}

void
IrqChip::sendIpi(Cycles t, PcpuId target, IrqId irq)
{
    stats.counter("irqchip.ipi_sent").inc();
    std::uint64_t token = 0;
    if (probe) {
        probe->metrics.machine().counter(chipTaps().ipiSent).inc();
        probe->metrics.cpu(target).counter(chipTaps().ipiSent).inc();
        token = probe->trace.edgeOut(t, edgeIpiTap(), TraceCat::Irq,
                                     noTrack);
    }
    // Inline the delivery scheduling (rather than deliver()) so the
    // causal edge closes at the exact delivery instant on the target
    // track.
    VIRTSIM_ASSERT(handler, "no physical IRQ handler installed");
    const Cycles td = t + cm.ipiFlight;
    EventFn fire = [this, td, target, irq, token] {
        if (probe) {
            probe->trace.edgeIn(td, token, edgeIpiTap(),
                                TraceCat::Irq,
                                static_cast<std::uint16_t>(target));
        }
        handler(td, target, irq);
    };
    // The IPI flight time is the cross-shard lookahead: when bound,
    // the send goes through the target CPU's declared channel and may
    // safely cross lanes.
    if (static_cast<std::size_t>(target) < ipiCh.size() &&
        ipiCh[static_cast<std::size_t>(target)]) {
        ipiCh[static_cast<std::size_t>(target)]->send(
            td, chipTaps().irqDeliver, std::move(fire));
    } else {
        // No channel for this target: the IPI must stay on the
        // target's own lane (deliveryQueue asserts that when the
        // chip is shard-bound, e.g. under a plan that opted out of
        // IPI channels).
        deliveryQueue(target).scheduleAt(td, chipTaps().irqDeliver,
                                         std::move(fire));
    }
}

EventQueue &
IrqChip::deliveryQueue(PcpuId cpu)
{
    if (static_cast<std::size_t>(cpu) < cpuQueues.size() &&
        cpuQueues[static_cast<std::size_t>(cpu)]) {
        // Zero-latency delivery is only sound within one lane: a
        // raiseExternal/raisePpi for a CPU on another lane must
        // instead be modelled through a channel with real latency.
        const int lane = ShardedEventKernel::currentLane();
        VIRTSIM_ASSERT(
            lane < 0 ||
                lane == cpuLanes[static_cast<std::size_t>(cpu)],
            "zero-latency IRQ delivery to cpu ", cpu,
            " from another lane; route it through a channel");
        return *cpuQueues[static_cast<std::size_t>(cpu)];
    }
    return eq;
}

void
IrqChip::deliver(Cycles t, PcpuId cpu, IrqId irq)
{
    VIRTSIM_ASSERT(handler, "no physical IRQ handler installed");
    // Schedule rather than call: delivery must respect event ordering
    // even when t == now.
    deliveryQueue(cpu).scheduleAt(
        t, chipTaps().irqDeliver,
        [this, t, cpu, irq] { handler(t, cpu, irq); });
}

Gic::Gic(EventQueue &eq, const CostModel &cm, StatRegistry &stats,
         int n_cpus, Probe *probe)
    : IrqChip(eq, cm, stats, probe),
      lrs(static_cast<std::size_t>(n_cpus))
{
}

int
Gic::injectVirq(Cycles t, PcpuId cpu, IrqId virq)
{
    auto &regs = listRegs(cpu);
    for (std::size_t i = 0; i < regs.size(); ++i) {
        if (regs[i].empty()) {
            regs[i].virq = virq;
            regs[i].pending = true;
            regs[i].active = false;
            stats.counter("gic.virq_injected").inc();
            if (probe) {
                auto &mach = probe->metrics.machine();
                mach.counter(chipTaps().virqInjected).inc();
                probe->trace.instant(
                    t, chipTaps().lrWrite, TraceCat::Irq,
                    static_cast<std::uint16_t>(cpu),
                    static_cast<std::uint64_t>(virq));
                regs[i].edgeToken = probe->trace.edgeOut(
                    t, edgeLrTap(), TraceCat::Irq,
                    static_cast<std::uint16_t>(cpu));
            }
            return static_cast<int>(i);
        }
    }
    stats.counter("gic.lr_overflow").inc();
    if (probe) {
        probe->metrics.machine().counter(chipTaps().lrOverflow).inc();
        probe->metrics.cpu(cpu).counter(chipTaps().lrOverflow).inc();
    }
    return -1;
}

std::array<ListReg, numListRegs> &
Gic::listRegs(PcpuId cpu)
{
    VIRTSIM_ASSERT(cpu >= 0 && static_cast<std::size_t>(cpu) < lrs.size(),
                   "bad pcpu ", cpu);
    return lrs[static_cast<std::size_t>(cpu)];
}

IrqId
Gic::guestAckVirq(PcpuId cpu, Cycles t)
{
    auto &regs = listRegs(cpu);
    for (auto &lr : regs) {
        if (!lr.empty() && lr.pending) {
            lr.pending = false;
            lr.active = true;
            stats.counter("gic.guest_ack").inc();
            if (probe && lr.edgeToken != 0 && t != 0) {
                probe->trace.edgeIn(t, lr.edgeToken, edgeLrTap(),
                                    TraceCat::Irq,
                                    static_cast<std::uint16_t>(cpu));
            }
            lr.edgeToken = 0;
            return lr.virq;
        }
    }
    return -1;
}

Cycles
Gic::guestCompleteVirq(PcpuId cpu, IrqId virq)
{
    auto &regs = listRegs(cpu);
    for (auto &lr : regs) {
        if (lr.virq == virq && lr.active) {
            lr.clear();
            stats.counter("gic.guest_complete").inc();
            return cm.virqCompletionInVm;
        }
    }
    // Completing an interrupt that is not active is a guest bug in a
    // real system; tolerate it but count it.
    stats.counter("gic.spurious_complete").inc();
    return cm.virqCompletionInVm;
}

bool
Gic::anyVirqLive(PcpuId cpu) const
{
    const auto &regs = lrs[static_cast<std::size_t>(cpu)];
    for (const auto &lr : regs) {
        if (!lr.empty())
            return true;
    }
    return false;
}

Apic::Apic(EventQueue &eq, const CostModel &cm, StatRegistry &stats,
           int n_cpus, Probe *probe)
    : IrqChip(eq, cm, stats, probe),
      pendingVirq(static_cast<std::size_t>(n_cpus), -1)
{
}

Cycles
Apic::injectVirq(Cycles t, PcpuId cpu, IrqId virq)
{
    VIRTSIM_ASSERT(cpu >= 0 &&
                   static_cast<std::size_t>(cpu) < pendingVirq.size(),
                   "bad pcpu ", cpu);
    pendingVirq[static_cast<std::size_t>(cpu)] = virq;
    stats.counter("apic.virq_injected").inc();
    if (probe) {
        probe->metrics.machine().counter(chipTaps().virqInjected).inc();
        probe->trace.instant(t, chipTaps().lrWrite, TraceCat::Irq,
                             static_cast<std::uint16_t>(cpu),
                             static_cast<std::uint64_t>(virq));
    }
    return cm.listRegWrite;
}

IrqId
Apic::guestAckVirq(PcpuId cpu)
{
    auto &slot = pendingVirq[static_cast<std::size_t>(cpu)];
    const IrqId virq = slot;
    slot = -1;
    if (virq >= 0)
        stats.counter("apic.guest_ack").inc();
    return virq;
}

} // namespace virtsim
