/**
 * @file
 * Architecture-level enumerations shared by the hardware substrate and
 * the hypervisor models: CPU architectures, privilege modes, and the
 * register classes whose save/restore costs the paper's Table III
 * quantifies.
 */

#ifndef VIRTSIM_HW_ARCH_HH
#define VIRTSIM_HW_ARCH_HH

#include <array>
#include <cstddef>
#include <string>

namespace virtsim {

/** The two server architectures studied by the paper. */
enum class Arch
{
    Arm, ///< ARMv8-A (HP Moonshot m400, APM X-Gene Atlas, 2.4 GHz)
    X86, ///< x86-64 with VT-x (Dell r320, Xeon E5-2450, 2.1 GHz)
};

std::string to_string(Arch arch);

/**
 * CPU execution mode.
 *
 * ARM exposes exception levels EL0/EL1/EL2; EL2 is a *separate* mode
 * with its own register state. x86 root/non-root mode is orthogonal to
 * the privilege rings, so we enumerate the four combinations that
 * matter for hypervisor control flow.
 */
enum class CpuMode
{
    // ARM
    El0,           ///< user (VM user or host user)
    El1,           ///< kernel (VM kernel or host kernel)
    El2,           ///< hypervisor
    // x86
    UserNonRoot,   ///< VM user
    KernelNonRoot, ///< VM kernel
    UserRoot,      ///< host user
    KernelRoot,    ///< host kernel / hypervisor
};

std::string to_string(CpuMode mode);

/** @return true if the mode is a guest (VM) execution mode. */
bool isGuestMode(CpuMode mode);

/** @return true if the mode belongs to the given architecture. */
bool modeBelongsTo(CpuMode mode, Arch arch);

/**
 * Classes of register state that a world switch may need to save and
 * restore. The ARM entries are exactly the rows of the paper's
 * Table III; Vmcs represents the x86 state block that the hardware
 * itself transfers on VM entry/exit.
 */
enum class RegClass
{
    Gp,         ///< general-purpose registers
    Fp,         ///< floating-point/SIMD registers
    El1Sys,     ///< EL1 system registers (TTBRx_EL1, SCTLR_EL1, ...)
    Vgic,       ///< GIC virtual interface control (list registers etc.)
    Timer,      ///< generic timer registers
    El2Config,  ///< EL2 configuration (HCR_EL2, trap configuration)
    El2VirtMem, ///< EL2 virtual memory config (VTTBR_EL2, VTCR_EL2)
    Vmcs,       ///< x86: state switched to/from the VMCS by hardware
};

inline constexpr std::size_t numRegClasses = 8;

std::string to_string(RegClass cls);

/** All ARM register classes, in Table III order. */
inline constexpr std::array<RegClass, 7> armRegClasses = {
    RegClass::Gp,        RegClass::Fp,       RegClass::El1Sys,
    RegClass::Vgic,      RegClass::Timer,    RegClass::El2Config,
    RegClass::El2VirtMem,
};

} // namespace virtsim

#endif // VIRTSIM_HW_ARCH_HH
