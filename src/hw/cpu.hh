/**
 * @file
 * Physical CPU model.
 *
 * A PhysicalCpu is a serialized execution resource with a time
 * "frontier": work items reserve [start, start + cost) intervals where
 * start is never before either the requested ready time or the end of
 * previously reserved work. This models contention on a pinned core —
 * e.g. a vhost thread and host IRQ handling competing for the same
 * PCPU — without needing a full instruction-level CPU.
 *
 * Each CPU also carries a live RegFile (actual register *values*, not
 * just costs) so that world switches really move state around and
 * tests can verify that VM register state is preserved and isolated
 * across switches, the functional property underlying the paper's
 * split-mode discussion.
 */

#ifndef VIRTSIM_HW_CPU_HH
#define VIRTSIM_HW_CPU_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/arch.hh"
#include "hw/cost_model.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace virtsim {

/**
 * A bank of architectural register values, organized by RegClass.
 * Sizes approximate the real architecture (31 GP registers, 32 SIMD
 * registers, etc.); what matters functionally is that state written
 * while one context runs must survive a world switch round trip.
 */
class RegFile
{
  public:
    RegFile();

    /** Number of registers in a class. */
    static std::size_t bankSize(RegClass cls);

    std::vector<std::uint64_t> &bank(RegClass cls);
    const std::vector<std::uint64_t> &bank(RegClass cls) const;

    /** Fill every register of every class with a recognizable value
     *  derived from tag (used by isolation tests). */
    void fillPattern(std::uint64_t tag);

    /** @return true if every register of every class matches the
     *  pattern written by fillPattern(tag). */
    bool matchesPattern(std::uint64_t tag) const;

    /** Copy one class of registers from another file. */
    void copyClassFrom(const RegFile &other, RegClass cls);

  private:
    std::array<std::vector<std::uint64_t>, numRegClasses> banks;
};

/**
 * One physical CPU core of a simulated machine.
 */
class PhysicalCpu
{
  public:
    PhysicalCpu(PcpuId id, EventQueue &eq, const CostModel &cm);

    PhysicalCpu(const PhysicalCpu &) = delete;
    PhysicalCpu &operator=(const PhysicalCpu &) = delete;

    PcpuId id() const { return _id; }

    /** @name Execution-time accounting */
    ///@{
    /**
     * Reserve cost cycles of execution starting no earlier than ready
     * and no earlier than the end of previously reserved work.
     * @return the completion time of the reserved work.
     */
    Cycles charge(Cycles ready, Cycles cost);

    /** charge() and then run fn at the completion time. */
    void run(Cycles ready, Cycles cost, EventFn fn);

    /** Time at which the CPU becomes free. */
    Cycles frontier() const { return _frontier; }

    /** Total busy cycles reserved so far (for utilization stats). */
    Cycles busyCycles() const { return _busy; }

    /** Utilization over [0, now]. */
    double utilization(Cycles now) const;
    ///@}

    /** @name Mode and context tracking */
    ///@{
    CpuMode mode() const { return _mode; }
    void setMode(CpuMode m) { _mode = m; }

    /** Debug label of what is currently running ("vm0/vcpu1",
     *  "dom0", "host", "idle-domain", ...). */
    const std::string &context() const { return _context; }
    void setContext(std::string c) { _context = std::move(c); }
    ///@}

    /** Live architectural register values. */
    RegFile &regs() { return _regs; }
    const RegFile &regs() const { return _regs; }

    const CostModel &costs() const { return cm; }
    EventQueue &queue() { return eq; }

    /** Return to the just-constructed state: frontier and busy time
     *  rewound, mode restored for the machine architecture, context
     *  "idle", registers zeroed. */
    void reset();

  private:
    PcpuId _id;
    EventQueue &eq;
    const CostModel &cm;
    Cycles _frontier = 0;
    Cycles _busy = 0;
    CpuMode _mode;
    std::string _context = "idle";
    RegFile _regs;
};

} // namespace virtsim

#endif // VIRTSIM_HW_CPU_HH
