#include "hw/machine.hh"

#include "sim/log.hh"

namespace virtsim {

MachineConfig
MachineConfig::hpMoonshotM400()
{
    MachineConfig c;
    c.name = "hp-moonshot-m400";
    c.costs = CostModel::armAtlas();
    c.nCpus = 8;
    c.ramGib = 64;
    // Adaptive interrupt moderation: immediate at request-response
    // rates, coalescing under streaming load (~30 us window).
    c.nicParams.coalesceWindow = 72000;
    return c;
}

MachineConfig
MachineConfig::dellR320()
{
    MachineConfig c;
    c.name = "dell-r320";
    c.costs = CostModel::x86Xeon();
    c.nCpus = 8; // hyperthreading disabled: 8 physical cores
    c.ramGib = 16;
    c.nicParams.coalesceWindow = 63000; // ~30 us at 2.1 GHz
    return c;
}

Machine::Machine(EventQueue &eq, MachineConfig config)
    : cfg(std::move(config)), eq(eq),
      _mmu(cfg.costs, _stats, cfg.nCpus, &_probe),
      _memory(cfg.costs, _stats)
{
    VIRTSIM_ASSERT(cfg.nCpus > 0, "machine needs at least one cpu");
    for (int i = 0; i < cfg.nCpus; ++i)
        cpus.push_back(std::make_unique<PhysicalCpu>(i, eq, cfg.costs));

    if (cfg.costs.arch == Arch::Arm) {
        chip = std::make_unique<Gic>(eq, cfg.costs, _stats, cfg.nCpus,
                                     &_probe);
    } else {
        chip = std::make_unique<Apic>(eq, cfg.costs, _stats, cfg.nCpus,
                                      &_probe);
    }

    _timers = std::make_unique<TimerBank>(eq, *chip, cfg.nCpus);
    _nic = std::make_unique<Nic>(eq, *chip, _stats, cfg.costs.freq,
                                 cfg.nicParams);
}

void
Machine::reset()
{
    for (auto &c : cpus)
        c->reset();
    chip->reset();
    _timers->reset();
    _mmu.reset();
    _memory.reset();
    _nic->reset();
    // clear(), not reset(): reset keeps registered keys alive, so a
    // recycled machine would render zero-valued rows a fresh one has
    // never heard of.
    _stats.clear();
    _probe.metrics.clear();
    _probe.trace.clear();
    _probe.profiler.reset();
}

PhysicalCpu &
Machine::cpu(PcpuId id)
{
    VIRTSIM_ASSERT(id >= 0 && id < numCpus(), "bad pcpu id ", id);
    return *cpus[static_cast<std::size_t>(id)];
}

Gic &
Machine::gic()
{
    VIRTSIM_ASSERT(arch() == Arch::Arm, "gic() on non-ARM machine");
    return static_cast<Gic &>(*chip);
}

Apic &
Machine::apic()
{
    VIRTSIM_ASSERT(arch() == Arch::X86, "apic() on non-x86 machine");
    return static_cast<Apic &>(*chip);
}

} // namespace virtsim
