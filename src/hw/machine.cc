#include "hw/machine.hh"

#include <algorithm>
#include <numeric>

#include "sim/log.hh"

namespace virtsim {

MachineShardPlan
MachineShardPlan::balanced(int nCpus, int maxLanes,
                           const std::vector<std::uint64_t> &weights,
                           std::uint64_t deviceWeight)
{
    VIRTSIM_ASSERT(nCpus > 0, "balanced plan needs at least one cpu");
    VIRTSIM_ASSERT(maxLanes > 0,
                   "balanced plan needs at least one lane");
    VIRTSIM_ASSERT(weights.empty() ||
                       weights.size() ==
                           static_cast<std::size_t>(nCpus),
                   "balanced plan: ", weights.size(),
                   " weights for ", nCpus, " cpus");
    MachineShardPlan plan;
    plan.deviceLane = 0;
    plan.cpuLane.assign(static_cast<std::size_t>(nCpus), 0);
    if (maxLanes == 1)
        return plan; // everything on lane 0; nothing to balance

    // Heaviest first (LPT): sort CPU indices by descending weight,
    // ascending CPU on ties, so the packing is deterministic.
    std::vector<int> order(static_cast<std::size_t>(nCpus));
    std::iota(order.begin(), order.end(), 0);
    const auto weightOf = [&weights](int cpu) {
        if (weights.empty())
            return std::uint64_t{1};
        // An idle shard still costs a queue slot; floor at 1 so the
        // packing spreads zero-weight CPUs instead of piling them
        // all onto one lane.
        return std::max<std::uint64_t>(
            1, weights[static_cast<std::size_t>(cpu)]);
    };
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const std::uint64_t wa = weightOf(a), wb = weightOf(b);
        return wa != wb ? wa > wb : a < b;
    });

    std::vector<std::uint64_t> load(
        static_cast<std::size_t>(maxLanes), 0);
    load[0] = deviceWeight;
    for (int cpu : order) {
        int best = 0;
        for (int l = 1; l < maxLanes; ++l) {
            if (load[static_cast<std::size_t>(l)] <
                load[static_cast<std::size_t>(best)])
                best = l;
        }
        plan.cpuLane[static_cast<std::size_t>(cpu)] = best;
        load[static_cast<std::size_t>(best)] += weightOf(cpu);
    }
    return plan;
}

MachineConfig
MachineConfig::hpMoonshotM400()
{
    MachineConfig c;
    c.name = "hp-moonshot-m400";
    c.costs = CostModel::armAtlas();
    c.nCpus = 8;
    c.ramGib = 64;
    // Adaptive interrupt moderation: immediate at request-response
    // rates, coalescing under streaming load (~30 us window).
    c.nicParams.coalesceWindow = 72000;
    return c;
}

MachineConfig
MachineConfig::dellR320()
{
    MachineConfig c;
    c.name = "dell-r320";
    c.costs = CostModel::x86Xeon();
    c.nCpus = 8; // hyperthreading disabled: 8 physical cores
    c.ramGib = 16;
    c.nicParams.coalesceWindow = 63000; // ~30 us at 2.1 GHz
    return c;
}

Machine::Machine(EventQueue &eq, MachineConfig config)
    : cfg(std::move(config)), eq(eq),
      _mmu(cfg.costs, _stats, cfg.nCpus, &_probe),
      _memory(cfg.costs, _stats)
{
    VIRTSIM_ASSERT(cfg.nCpus > 0, "machine needs at least one cpu");
    for (int i = 0; i < cfg.nCpus; ++i)
        cpus.push_back(std::make_unique<PhysicalCpu>(i, eq, cfg.costs));

    if (cfg.costs.arch == Arch::Arm) {
        chip = std::make_unique<Gic>(eq, cfg.costs, _stats, cfg.nCpus,
                                     &_probe);
    } else {
        chip = std::make_unique<Apic>(eq, cfg.costs, _stats, cfg.nCpus,
                                      &_probe);
    }

    _timers = std::make_unique<TimerBank>(eq, *chip, cfg.nCpus);
    _nic = std::make_unique<Nic>(eq, *chip, _stats, cfg.costs.freq,
                                 cfg.nicParams);

    registerTimelineGauges();
}

Machine::Machine(ShardedEventKernel &kern,
                 const MachineShardPlan &plan, MachineConfig config)
    : cfg(std::move(config)), eq(kern.lane(plan.deviceLane)),
      _kern(&kern), _mmu(cfg.costs, _stats, cfg.nCpus, &_probe),
      _memory(cfg.costs, _stats)
{
    VIRTSIM_ASSERT(cfg.nCpus > 0, "machine needs at least one cpu");
    VIRTSIM_ASSERT(plan.cpuLane.empty() ||
                       static_cast<int>(plan.cpuLane.size()) ==
                           cfg.nCpus,
                   "shard plan covers ", plan.cpuLane.size(),
                   " cpus, machine has ", cfg.nCpus);

    kern.assignShard(deviceShard, plan.deviceLane);
    std::vector<EventQueue *> cpuQs;
    std::vector<int> cpuLanes;
    for (int i = 0; i < cfg.nCpus; ++i) {
        const int lane = plan.laneFor(i);
        kern.assignShard(cpuShard(i), lane);
        cpuQs.push_back(&kern.lane(lane));
        cpuLanes.push_back(lane);
        cpus.push_back(std::make_unique<PhysicalCpu>(
            i, kern.lane(lane), cfg.costs));
    }

    if (cfg.costs.arch == Arch::Arm) {
        chip = std::make_unique<Gic>(eq, cfg.costs, _stats, cfg.nCpus,
                                     &_probe);
    } else {
        chip = std::make_unique<Apic>(eq, cfg.costs, _stats, cfg.nCpus,
                                      &_probe);
    }

    // Every IPI, regardless of sender, flows through the target CPU's
    // declared channel; the flight time is the conservative lookahead
    // that lets IPIs cross lanes. Worlds that never send cross-lane
    // IPIs opt out via the plan so the tight ipiFlight lookahead does
    // not throttle every lane's horizon.
    std::vector<ShardChannel *> ipi;
    if (plan.ipiChannels) {
        for (int i = 0; i < cfg.nCpus; ++i) {
            ipi.push_back(&kern.channel("ipi.cpu" + std::to_string(i),
                                        anyShard, cpuShard(i),
                                        cfg.costs.ipiFlight));
        }
    }
    chip->bindShards(std::move(cpuQs), std::move(cpuLanes),
                     std::move(ipi));

    _timers = std::make_unique<TimerBank>(eq, *chip, cfg.nCpus);
    _nic = std::make_unique<Nic>(eq, *chip, _stats, cfg.costs.freq,
                                 cfg.nicParams);

    registerTimelineGauges();
}

void
Machine::registerTimelineGauges()
{
    TimelineSampler &tl = _probe.timeline;
    const bool arm = cfg.costs.arch == Arch::Arm;
    for (int i = 0; i < cfg.nCpus; ++i) {
        PhysicalCpu *c = cpus[static_cast<std::size_t>(i)].get();
        const std::string prefix = "cpu" + std::to_string(i);
        const auto track = static_cast<std::uint16_t>(i);
        // Exception level (ARM: EL0/EL1/EL2) or root/non-root mode
        // (x86) as the CpuMode ordinal — the paper's Table I state.
        tl.addGauge(prefix + (arm ? ".el" : ".mode"),
                    [c] {
                        return static_cast<std::int64_t>(c->mode());
                    },
                    track);
        tl.addRateGauge(prefix + ".busy.rate",
                        [c] {
                            return static_cast<std::int64_t>(
                                c->busyCycles());
                        },
                        track);
        if (arm) {
            Gic *g = static_cast<Gic *>(chip.get());
            tl.addGauge(prefix + ".gic.lr_used",
                        [g, i] {
                            std::int64_t used = 0;
                            for (const ListReg &lr : g->listRegs(i)) {
                                if (!lr.empty())
                                    ++used;
                            }
                            return used;
                        },
                        track);
        }
    }
    // Pending events across the whole world, not just the home lane:
    // under a shard plan the count must not depend on how the events
    // happen to be partitioned. Safe to read from a sampling tick —
    // classic worlds keep every component (and so every event) on the
    // home lane, and the fleet samples at barriers, lanes quiesced.
    tl.addGauge("event_queue.depth", [this] {
        if (!_kern)
            return static_cast<std::int64_t>(eq.pending());
        std::int64_t total = 0;
        for (int i = 0; i < _kern->laneCount(); ++i)
            total += static_cast<std::int64_t>(
                _kern->lane(i).pending());
        return total;
    });
    tl.addGauge("nic.rx_queue", [this] {
        return static_cast<std::int64_t>(_nic->rxQueueDepth());
    });
    // counterValue() takes const std::string&; the names live in
    // statics so a sampling tick never constructs a heap-backed
    // temporary ("mmu.stage2_fault" is past libstdc++'s 15-char SSO).
    static const std::string rxDroppedKey{"nic.rx_dropped"};
    static const std::string stage2FaultKey{"mmu.stage2_fault"};
    tl.addRateGauge("nic.rx_drop.rate", [this] {
        return static_cast<std::int64_t>(
            _stats.counterValue(rxDroppedKey));
    });
    tl.addRateGauge("mmu.stage2_fault.rate", [this] {
        return static_cast<std::int64_t>(
            _stats.counterValue(stage2FaultKey));
    });
}

void
Machine::reset()
{
    for (auto &c : cpus)
        c->reset();
    chip->reset();
    _timers->reset();
    _mmu.reset();
    _memory.reset();
    _nic->reset();
    // clear(), not reset(): reset keeps registered keys alive, so a
    // recycled machine would render zero-valued rows a fresh one has
    // never heard of.
    _stats.clear();
    _probe.metrics.clear();
    _probe.trace.clear();
    _probe.profiler.reset();
    // Drop gauge registrations wholesale and re-register the hardware
    // set in constructor order; hypervisor and backend gauges
    // re-register when the harness rebuilds those layers, so a
    // recycled machine's timeline is gauge-for-gauge identical to a
    // fresh one. clear() also drops the enable/period configuration —
    // the harness (Testbed::applyObservability) re-arms it.
    _probe.timeline.clear();
    // Same contract as the timeline: back to the never-configured
    // state; the harness re-arms request-latency tracking if it wants
    // it (Testbed::applyObservability).
    _probe.latency.clear();
    registerTimelineGauges();
}

PhysicalCpu &
Machine::cpu(PcpuId id)
{
    VIRTSIM_ASSERT(id >= 0 && id < numCpus(), "bad pcpu id ", id);
    return *cpus[static_cast<std::size_t>(id)];
}

Gic &
Machine::gic()
{
    VIRTSIM_ASSERT(arch() == Arch::Arm, "gic() on non-ARM machine");
    return static_cast<Gic &>(*chip);
}

Apic &
Machine::apic()
{
    VIRTSIM_ASSERT(arch() == Arch::X86, "apic() on non-x86 machine");
    return static_cast<Apic &>(*chip);
}

} // namespace virtsim
