#include "hw/cost_model.hh"

namespace virtsim {

Cycles
CostModel::saveCost(std::initializer_list<RegClass> classes) const
{
    Cycles total = 0;
    for (RegClass c : classes)
        total += cost(c).save;
    return total;
}

Cycles
CostModel::restoreCost(std::initializer_list<RegClass> classes) const
{
    Cycles total = 0;
    for (RegClass c : classes)
        total += cost(c).restore;
    return total;
}

CostModel
CostModel::armAtlas()
{
    CostModel m;
    m.arch = Arch::Arm;
    m.freq = Frequency{2.4};

    // [paper] Table III, verbatim.
    m.cost(RegClass::Gp) = {152, 184};
    m.cost(RegClass::Fp) = {282, 310};
    m.cost(RegClass::El1Sys) = {230, 511};
    m.cost(RegClass::Vgic) = {3250, 181};
    m.cost(RegClass::Timer) = {104, 106};
    m.cost(RegClass::El2Config) = {92, 107};
    m.cost(RegClass::El2VirtMem) = {92, 107};
    // Not applicable on ARM; world switches are software-managed.
    m.cost(RegClass::Vmcs) = {0, 0};

    // [derived] Xen ARM Hypercall = 376 cycles and consists of: trap
    // to EL2, save GP, a trivial handler, restore GP, eret (paper
    // Section IV: "little more than context switching the general
    // purpose registers"). 376 - 152 - 184 = 40 cycles split across
    // trap + eret + handler. Prior work cited by the paper ([2])
    // showed the raw trap is cheap.
    m.trapToEl2 = 12;
    m.eretToEl1 = 12;

    // [calibrated] Toggling HCR_EL2 trap bits and VTTBR on each
    // KVM-style transition; a handful of system register writes plus
    // the required isb barriers.
    m.stage2Toggle = 60;

    // x86-only transitions unused on ARM.
    m.vmexitHw = 0;
    m.vmentryHw = 0;
    m.vmcsSwitch = 0;

    // [derived] VGIC save reads ~11 GIC virtual-interface registers
    // over the X-Gene's slow interconnect and costs 3,250 cycles
    // (Table III), i.e. roughly 300 cycles per GIC register access.
    // Physical GICC accesses (IAR read, EOIR write) traverse the same
    // path.
    m.irqChipRegAccess = 295;

    // [calibrated] SGI propagation through the GIC distributor to a
    // remote core's interface. X-Gene interrupt delivery is slow; this
    // value makes the Virtual IPI microbenchmark land near Table II
    // while the structural path contributes the rest.
    m.ipiFlight = 360;

    // [paper] Table II: Virtual IRQ Completion on ARM is 71 cycles for
    // both hypervisors: the VM EOIs the virtual interrupt directly via
    // the GIC virtual CPU interface, no trap.
    m.virqCompletionInVm = 71;

    // [calibrated] One list-register write plus bookkeeping.
    m.listRegWrite = 55;

    // [calibrated] Memory-system primitives. A 4-level walk with warm
    // page-table caches; combined stage-1+stage-2 walks touch up to
    // 4x as many descriptors, modelled as a flat extra.
    m.pageTableWalk = 140;
    m.stage2WalkExtra = 280;
    m.tlbInvalidateLocal = 45;
    // ARM has broadcast TLBI instructions in hardware (the paper notes
    // this as the reason zero-copy grants might be viable on ARM
    // where they were not on x86).
    m.tlbInvalidateBroadcast = 450;
    // ~0.36 us per 4 KiB page -> ~216 cycles/KiB at 2.4 GHz.
    m.copyPerKb = 216;
    m.cacheLineTransfer = 180;

    // [calibrated] OS-level costs on this core (A57-class, in-order
    // memory system): syscall ~ hundreds of cycles; IRQ entry/exit,
    // remote thread wakeup and context switch are in the low
    // thousands, consistent with the gap between the raw transition
    // microbenchmarks and the I/O latency microbenchmarks (Table II).
    m.syscall = 380;
    m.irqEntryExit = 620;
    m.threadWakeRemote = 1450;
    m.schedSwitch = 1750;
    m.softirqDispatch = 520;

    return m;
}

CostModel
CostModel::x86Xeon()
{
    CostModel m;
    m.arch = Arch::X86;
    m.freq = Frequency{2.1};

    // On x86 the hardware saves/restores the register state to the
    // VMCS as part of vmexit/vmentry; software-managed classes only
    // cover what KVM/Xen touch on top (negligible for the paths the
    // paper measures). FP state is switched lazily via XSAVE and not
    // part of the measured hypercall path.
    m.cost(RegClass::Gp) = {60, 60};
    m.cost(RegClass::Fp) = {180, 180};
    m.cost(RegClass::El1Sys) = {0, 0};
    m.cost(RegClass::Vgic) = {0, 0};
    m.cost(RegClass::Timer) = {0, 0};
    m.cost(RegClass::El2Config) = {0, 0};
    m.cost(RegClass::El2VirtMem) = {0, 0};
    // [derived] KVM x86 Hypercall = 1,300 cycles (Table II), and both
    // x86 hypervisors use the identical hardware mechanism. With a
    // ~100 cycle handler, exit+entry ~ 1,200 cycles; hardware state
    // transfer is the dominant part of both directions (Section IV:
    // "switching ... involves switching a substantial portion of the
    // CPU register state to the VMCS in memory").
    m.cost(RegClass::Vmcs) = {0, 0}; // folded into vmexitHw/vmentryHw

    m.trapToEl2 = 0;
    m.eretToEl1 = 0;
    m.stage2Toggle = 0;

    // [derived] KVM x86 Hypercall = 1,300 = vmexit + dispatch(60) +
    // handler(100) + vmentry. Section IV pins the split: "for KVM
    // x86, transitioning from the VM to the hypervisor accounts for
    // only about 40% of the Hypercall cost, while transitioning from
    // the hypervisor to the VM is the majority of the cost"; the
    // 560-cycle I/O Latency Out row (vmexit + ioeventfd signal)
    // confirms the exit side.
    m.vmexitHw = 520;
    m.vmentryHw = 620;
    m.vmcsSwitch = 120;

    // [calibrated] APIC register access via MMIO/MSR is much cheaper
    // than X-Gene GIC accesses.
    m.irqChipRegAccess = 90;

    // [calibrated] x2APIC IPI delivery between sockets/cores.
    m.ipiFlight = 300;

    // [paper] Table II: Virtual IRQ Completion costs ~1.5k cycles on
    // x86 because the EOI write traps to the hypervisor (the test
    // hardware lacked vAPIC). The trap dominates; this constant holds
    // the EOI emulation work on top of vmexit+vmentry.
    m.virqCompletionInVm = 0; // EOI traps; see Apic::vApicEnabled
    m.listRegWrite = 40;      // virtual-interrupt injection via VMCS

    m.pageTableWalk = 120;
    m.stage2WalkExtra = 220;
    m.tlbInvalidateLocal = 40;
    // [paper, Section V] x86 has no broadcast-invalidate instruction:
    // removing a grant mapping requires IPI-ing all physical CPUs,
    // "which proved more expensive than simply copying the data".
    // Modelled as per-CPU shootdown cost applied by GrantTable.
    m.tlbInvalidateBroadcast = 4200;
    m.copyPerKb = 140;
    m.cacheLineTransfer = 150;

    // [calibrated] Host Linux path costs at 2.1 GHz.
    m.syscall = 250;
    m.irqEntryExit = 480;
    m.threadWakeRemote = 1250;
    m.schedSwitch = 1500;
    m.softirqDispatch = 430;

    return m;
}

} // namespace virtsim
