#include "hw/arch.hh"

#include "sim/log.hh"

namespace virtsim {

std::string
to_string(Arch arch)
{
    switch (arch) {
      case Arch::Arm:
        return "ARM";
      case Arch::X86:
        return "x86";
    }
    panic("bad Arch");
}

std::string
to_string(CpuMode mode)
{
    switch (mode) {
      case CpuMode::El0:
        return "EL0";
      case CpuMode::El1:
        return "EL1";
      case CpuMode::El2:
        return "EL2";
      case CpuMode::UserNonRoot:
        return "user/non-root";
      case CpuMode::KernelNonRoot:
        return "kernel/non-root";
      case CpuMode::UserRoot:
        return "user/root";
      case CpuMode::KernelRoot:
        return "kernel/root";
    }
    panic("bad CpuMode");
}

bool
isGuestMode(CpuMode mode)
{
    switch (mode) {
      case CpuMode::El0:
      case CpuMode::El1:
        // On ARM, EL0/EL1 host both guests and (for Type 2) the host
        // OS; whether the occupant is a guest is tracked by the
        // hypervisor, not the mode. These are the modes guests *can*
        // run in.
        return true;
      case CpuMode::UserNonRoot:
      case CpuMode::KernelNonRoot:
        return true;
      default:
        return false;
    }
}

bool
modeBelongsTo(CpuMode mode, Arch arch)
{
    switch (mode) {
      case CpuMode::El0:
      case CpuMode::El1:
      case CpuMode::El2:
        return arch == Arch::Arm;
      default:
        return arch == Arch::X86;
    }
}

std::string
to_string(RegClass cls)
{
    switch (cls) {
      case RegClass::Gp:
        return "GP Regs";
      case RegClass::Fp:
        return "FP Regs";
      case RegClass::El1Sys:
        return "EL1 System Regs";
      case RegClass::Vgic:
        return "VGIC Regs";
      case RegClass::Timer:
        return "Timer Regs";
      case RegClass::El2Config:
        return "EL2 Config Regs";
      case RegClass::El2VirtMem:
        return "EL2 Virtual Memory Regs";
      case RegClass::Vmcs:
        return "VMCS State";
    }
    panic("bad RegClass");
}

} // namespace virtsim
