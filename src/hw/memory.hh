/**
 * @file
 * Machine memory model: a registry of named buffers with ownership
 * tags plus data-copy cost accounting.
 *
 * Ownership is what distinguishes the two I/O models the paper
 * contrasts: KVM's host kernel owns *all* machine memory including VM
 * memory (enabling zero-copy virtio), while Xen's Dom0 can only reach
 * VM memory through explicit grants (forcing copies). Buffer
 * ownership checks in virtio/grant code enforce exactly that.
 */

#ifndef VIRTSIM_HW_MEMORY_HH
#define VIRTSIM_HW_MEMORY_HH

#include <cstdint>
#include <map>
#include <string>

#include "hw/cost_model.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace virtsim {

/** Handle to a buffer in machine memory. */
using BufferId = int;

inline constexpr BufferId invalidBuffer = -1;

/**
 * Main memory of a machine.
 */
class MainMemory
{
  public:
    MainMemory(const CostModel &cm, StatRegistry &stats);

    /**
     * Allocate a buffer owned by the named domain ("vm0", "dom0",
     * "host", ...).
     */
    BufferId alloc(const std::string &owner, std::uint32_t bytes);

    void free(BufferId id);

    bool valid(BufferId id) const;

    const std::string &owner(BufferId id) const;
    std::uint32_t size(BufferId id) const;

    /**
     * Cycle cost of copying n bytes (the caller charges it to the CPU
     * doing the copy). Also bumps the copied-bytes counter, which the
     * zero-copy ablation reads.
     */
    Cycles copyCost(std::uint32_t bytes);

    std::size_t liveBuffers() const { return buffers.size(); }

    /** Free every buffer and rewind the id allocator, so a recycled
     *  memory hands out the same BufferId sequence as a fresh one. */
    void
    reset()
    {
        buffers.clear();
        nextId = 0;
    }

  private:
    struct Buffer
    {
        std::string owner;
        std::uint32_t bytes;
    };

    const CostModel &cm;
    StatRegistry &stats;
    std::map<BufferId, Buffer> buffers;
    BufferId nextId = 0;
};

} // namespace virtsim

#endif // VIRTSIM_HW_MEMORY_HH
