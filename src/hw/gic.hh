/**
 * @file
 * Interrupt controller hardware models.
 *
 * IrqChip is the architecture-neutral surface (route external device
 * interrupts, send IPIs, deliver physical interrupts to a handler the
 * hypervisor or native kernel installs).
 *
 * Gic models the ARM Generic Interrupt Controller with the GICv2
 * virtualization extensions the paper's testbed used: per-CPU list
 * registers into which a hypervisor (executing in EL2) programs
 * virtual interrupts, and a virtual CPU interface that lets a VM
 * acknowledge and *complete* virtual interrupts without trapping —
 * the feature behind the 71-cycle Virtual IRQ Completion row of
 * Table II. Register accesses traverse the X-Gene's slow interconnect
 * (CostModel::irqChipRegAccess), which is what makes VGIC state save
 * cost 3,250 cycles.
 *
 * Apic models the x86 local APIC of the Xeon testbed: virtual
 * interrupts are injected through the VMCS, and a guest EOI *traps* to
 * the hypervisor because the machines lacked vAPIC support (the paper
 * notes newer hardware with vAPIC should behave more like ARM; the
 * flag is modelled for the ablation bench).
 */

#ifndef VIRTSIM_HW_GIC_HH
#define VIRTSIM_HW_GIC_HH

#include <array>
#include <functional>
#include <map>
#include <vector>

#include "hw/cost_model.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace virtsim {

/** @name Well-known interrupt numbers */
///@{
inline constexpr IrqId sgiRescheduleIrq = 1;  ///< SGI used for kicks
inline constexpr IrqId ppiVtimerIrq = 27;     ///< virtual timer PPI
inline constexpr IrqId ppiMaintenanceIrq = 25; ///< GIC maintenance PPI
inline constexpr IrqId spiNicIrq = 64;        ///< NIC SPI
inline constexpr IrqId spiBlockIrq = 65;      ///< block device SPI
///@}

/**
 * Architecture-neutral interrupt controller interface.
 */
class IrqChip
{
  public:
    /** Called when a physical interrupt is pended at a CPU. */
    using Handler = std::function<void(Cycles when, PcpuId cpu, IrqId irq)>;

    /** probe is optional: standalone chips (unit tests) pass none and
     *  skip trace/metrics emission. */
    IrqChip(EventQueue &eq, const CostModel &cm, StatRegistry &stats,
            Probe *probe = nullptr);
    virtual ~IrqChip() = default;

    IrqChip(const IrqChip &) = delete;
    IrqChip &operator=(const IrqChip &) = delete;

    /** Install the receiver of physical interrupts (the hypervisor
     *  when virtualization is enabled, else the native kernel). */
    void setPhysIrqHandler(Handler h) { handler = std::move(h); }

    /** Set the target CPU of an external (device) interrupt line. */
    void routeExternal(IrqId irq, PcpuId target) { routes[irq] = target; }

    PcpuId externalRoute(IrqId irq) const;

    /** A device raises an external interrupt line at time t. */
    virtual void raiseExternal(Cycles t, IrqId irq);

    /** Raise a private per-CPU interrupt (ARM PPI) at a specific CPU,
     *  bypassing the external routing table (used by timers). */
    void raisePpi(Cycles t, PcpuId cpu, IrqId irq);

    /**
     * Send an inter-processor interrupt. The *sender-side* register
     * access cost must already have been charged by the caller (it is
     * part of the sender CPU's critical path); this method models
     * the propagation delay and delivery.
     */
    virtual void sendIpi(Cycles t, PcpuId target, IrqId irq);

    /** Cycle cost of one controller register access. */
    Cycles regAccessCost() const { return cm.irqChipRegAccess; }

    /**
     * Bind the chip to a sharded machine: deliveries land on each
     * target CPU's own lane queue, and IPIs travel through the
     * declared from-any channels (lookahead = ipiFlight), one per
     * target CPU. Unbound chips (the default; unit tests, classic
     * single-lane worlds) keep scheduling on their constructor queue.
     * cpuQueue[i]/cpuLane[i]/ipiChannel[i] describe PhysicalCpu i.
     */
    void
    bindShards(std::vector<EventQueue *> cpuQueue,
               std::vector<int> cpuLane,
               std::vector<ShardChannel *> ipiChannel)
    {
        cpuQueues = std::move(cpuQueue);
        cpuLanes = std::move(cpuLane);
        ipiCh = std::move(ipiChannel);
    }

    /** Drop the installed handler, routing table, and any
     *  architecture-specific virtual-interrupt state, returning the
     *  chip to its just-constructed state. */
    virtual void
    reset()
    {
        handler = nullptr;
        routes.clear();
    }

  protected:
    /** Deliver irq at cpu at time t by invoking the handler. */
    void deliver(Cycles t, PcpuId cpu, IrqId irq);

    /** Queue delivery to this CPU lands on (its lane queue when
     *  shard-bound, else the chip's constructor queue). */
    EventQueue &deliveryQueue(PcpuId cpu);

    EventQueue &eq;
    const CostModel &cm;
    StatRegistry &stats;
    Probe *probe; ///< may be null (standalone chip)
    Handler handler;
    std::map<IrqId, PcpuId> routes;
    /** Shard bindings (empty when unbound). */
    std::vector<EventQueue *> cpuQueues;
    std::vector<int> cpuLanes;
    std::vector<ShardChannel *> ipiCh;
};

/**
 * One GIC list register: a slot the hypervisor fills with a pending
 * virtual interrupt for the VM currently on that physical CPU.
 */
struct ListReg
{
    IrqId virq = -1;
    /** Causal-edge token stamped at LR write, redeemed at guest ack
     *  (sim/attrib links the write->ack latency across the trace). */
    std::uint64_t edgeToken = 0;
    bool pending = false;
    bool active = false;

    bool empty() const { return virq < 0; }
    void clear() { *this = ListReg{}; }
};

/** Number of list registers per CPU (4 on the paper's hardware). */
inline constexpr std::size_t numListRegs = 4;

/**
 * ARM GIC with virtualization extensions.
 */
class Gic : public IrqChip
{
  public:
    Gic(EventQueue &eq, const CostModel &cm, StatRegistry &stats,
        int n_cpus, Probe *probe = nullptr);

    /** @name Hypervisor-side (EL2) virtual interface control */
    ///@{
    /**
     * Program a pending virtual interrupt into a free list register
     * of the given physical CPU.
     * @return index of the list register used, or -1 if all are full
     *         (caller must then track the overflow in software).
     */
    int injectVirq(Cycles t, PcpuId cpu, IrqId virq);

    /** Cycle cost of programming one list register. */
    Cycles lrWriteCost() const { return cm.listRegWrite; }

    /** Cycle cost of reading back all virtual-interface state
     *  (GICH_*), the dominant term of the Table III VGIC row. */
    Cycles vgicStateReadCost() const
    {
        return cm.cost(RegClass::Vgic).save;
    }

    std::array<ListReg, numListRegs> &listRegs(PcpuId cpu);
    ///@}

    /** @name Guest-side (EL1) virtual CPU interface */
    ///@{
    /**
     * VM acknowledges the highest-priority pending virtual interrupt
     * (reads GICV_IAR). @p t , when given, closes the LR causal edge
     * opened at injection (write-to-ack latency attribution).
     * @return the virq acknowledged, or -1 if none pending.
     */
    IrqId guestAckVirq(PcpuId cpu, Cycles t = 0);

    /**
     * VM completes a virtual interrupt (writes GICV_EOIR/DIR). No
     * trap: this is the ARM hardware fast path of Table II.
     * @return the cycle cost of the completion (71 on the testbed).
     */
    Cycles guestCompleteVirq(PcpuId cpu, IrqId virq);

    /** @return true if any list register holds a pending/active virq. */
    bool anyVirqLive(PcpuId cpu) const;
    ///@}

    /** Cost of the guest ack register read. */
    Cycles guestAckCost() const { return cm.irqChipRegAccess; }

    void
    reset() override
    {
        IrqChip::reset();
        for (auto &cpuLrs : lrs)
            for (ListReg &lr : cpuLrs)
                lr.clear();
    }

  private:
    std::vector<std::array<ListReg, numListRegs>> lrs;
};

/**
 * x86 local APIC (one per CPU, modelled collectively).
 */
class Apic : public IrqChip
{
  public:
    Apic(EventQueue &eq, const CostModel &cm, StatRegistry &stats,
         int n_cpus, Probe *probe = nullptr);

    /**
     * Whether the hardware supports vAPIC (APIC virtualization): with
     * it, guest EOIs need no exit. The paper's r320 nodes did not
     * have it; the ablation bench flips this.
     */
    bool vApicEnabled() const { return vapic; }
    void setVApic(bool on) { vapic = on; }

    /** Inject a virtual interrupt for the VM on this CPU (through the
     *  VMCS interrupt-information field). @return injection cost. */
    Cycles injectVirq(Cycles t, PcpuId cpu, IrqId virq);

    /** VM acknowledges its pending virtual interrupt. */
    IrqId guestAckVirq(PcpuId cpu);

    /**
     * Whether a guest EOI traps to the hypervisor on this hardware.
     */
    bool guestEoiTraps() const { return !vapic; }

    void
    reset() override
    {
        IrqChip::reset();
        vapic = false;
        for (IrqId &v : pendingVirq)
            v = -1;
    }

  private:
    bool vapic = false;
    std::vector<IrqId> pendingVirq;
};

} // namespace virtsim

#endif // VIRTSIM_HW_GIC_HH
