#include "hw/mmu.hh"

#include <algorithm>

#include "sim/log.hh"

namespace virtsim {

void
Stage2Tables::map(Ipa ipa, Pa pa, bool writable)
{
    table[ipa] = Entry{pa, writable};
}

bool
Stage2Tables::unmap(Ipa ipa)
{
    return table.erase(ipa) > 0;
}

std::optional<Pa>
Stage2Tables::lookup(Ipa ipa) const
{
    auto it = table.find(ipa);
    if (it == table.end())
        return std::nullopt;
    return it->second.pa;
}

bool
Stage2Tables::isWritable(Ipa ipa) const
{
    auto it = table.find(ipa);
    return it != table.end() && it->second.writable;
}

bool
Tlb::lookup(VmId vmid, Ipa ipa) const
{
    return entries.count(key(vmid, ipa)) > 0;
}

void
Tlb::fill(VmId vmid, Ipa ipa)
{
    const std::uint64_t k = key(vmid, ipa);
    if (entries.count(k))
        return;
    if (entries.size() >= capacity && !order.empty()) {
        entries.erase(order.front());
        order.erase(order.begin());
    }
    entries.insert(k);
    order.push_back(k);
}

void
Tlb::invalidatePage(VmId vmid, Ipa ipa)
{
    const std::uint64_t k = key(vmid, ipa);
    if (entries.erase(k) > 0)
        order.erase(std::remove(order.begin(), order.end(), k),
                    order.end());
}

void
Tlb::invalidateVmid(VmId vmid)
{
    // Key layout places the vmid in the high bits; filter by re-check.
    for (auto it = order.begin(); it != order.end();) {
        const std::uint64_t k = *it;
        if ((k >> 40) ==
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(vmid))) {
            entries.erase(k);
            it = order.erase(it);
        } else {
            ++it;
        }
    }
}

void
Tlb::invalidateAll()
{
    entries.clear();
    order.clear();
}

Mmu::Mmu(const CostModel &cm, StatRegistry &stats, int n_cpus,
         Probe *probe)
    : cm(cm), stats(stats), probe(probe),
      tlbs(static_cast<std::size_t>(n_cpus))
{
}

std::pair<std::optional<Pa>, Cycles>
Mmu::translate(PcpuId cpu, const Stage2Tables &tables, Ipa ipa)
{
    Tlb &t = tlb(cpu);
    if (t.lookup(tables.vmid(), ipa)) {
        stats.counter("mmu.tlb_hit").inc();
        const auto pa = tables.lookup(ipa);
        VIRTSIM_ASSERT(pa, "TLB hit for unmapped page; stale TLB entry: "
                       "vmid=", tables.vmid(), " ipa=", ipa);
        return {pa, 0};
    }
    stats.counter("mmu.tlb_miss").inc();
    const Cycles cost = cm.pageTableWalk + cm.stage2WalkExtra;
    const auto pa = tables.lookup(ipa);
    if (!pa) {
        stats.counter("mmu.stage2_fault").inc();
        if (probe) {
            static const TapId tap = internTap("mmu.stage2_fault");
            probe->metrics.machine().counter(tap).inc();
            probe->metrics.cpu(cpu).counter(tap).inc();
        }
        return {std::nullopt, cost};
    }
    t.fill(tables.vmid(), ipa);
    return {pa, cost};
}

Cycles
Mmu::invalidatePageBroadcast(VmId vmid, Ipa ipa)
{
    for (auto &t : tlbs)
        t.invalidatePage(vmid, ipa);
    stats.counter("mmu.broadcast_invalidate").inc();
    if (cm.arch == Arch::Arm) {
        // Hardware DVM broadcast: single instruction on the initiator.
        return cm.tlbInvalidateBroadcast;
    }
    // x86: IPI shootdown; initiator waits for acknowledgements from
    // every other CPU (the documented reason Xen x86 gave up on
    // zero-copy grants).
    return cm.tlbInvalidateBroadcast +
           static_cast<Cycles>(tlbs.size() - 1) * cm.ipiFlight;
}

Cycles
Mmu::invalidateVmidBroadcast(VmId vmid)
{
    for (auto &t : tlbs)
        t.invalidateVmid(vmid);
    stats.counter("mmu.broadcast_invalidate_vmid").inc();
    if (cm.arch == Arch::Arm)
        return cm.tlbInvalidateBroadcast;
    return cm.tlbInvalidateBroadcast +
           static_cast<Cycles>(tlbs.size() - 1) * cm.ipiFlight;
}

} // namespace virtsim
