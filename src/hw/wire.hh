/**
 * @file
 * The 10 GbE link between the server under test and the client
 * machine, plus a model of the client.
 *
 * The paper runs clients natively on a dedicated machine and ensures
 * they are never saturated, so the client needs no CPU contention
 * model: it is a fixed processing delay plus the wire. The testbed's
 * interconnect (HP Moonshot 45XGc switch) is modelled as isolated,
 * per the paper's claim that cross-traffic was negligible.
 */

#ifndef VIRTSIM_HW_WIRE_HH
#define VIRTSIM_HW_WIRE_HH

#include <functional>

#include "hw/nic.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace virtsim {

/**
 * Point-to-point link with fixed one-way latency. Endpoints are
 * callbacks installed by the server NIC glue and the client model.
 */
class Wire
{
  public:
    using Endpoint = std::function<void(Cycles, const Packet &)>;

    /** probe is optional: when given, each transit stamps a causal
     *  edge ("edge.wire") linking tx and rx across the link. */
    Wire(EventQueue &eq, StatRegistry &stats, Cycles one_way_latency,
         Probe *probe = nullptr)
        : eq(eq), stats(stats), latency(one_way_latency), probe(probe)
    {
    }

    void setServerEndpoint(Endpoint e) { toServer = std::move(e); }
    void setClientEndpoint(Endpoint e) { toClient = std::move(e); }

    /**
     * Route the two wire legs through declared shard channels
     * (lookahead = the one-way latency) instead of the raw queue.
     * The harness declares them so the wire's causal edges double as
     * the client<->server lookahead when the simulation is sharded;
     * unbound wires (unit tests) keep scheduling on their own queue.
     */
    void
    bindChannels(ShardChannel *to_server, ShardChannel *to_client)
    {
        chToServer = to_server;
        chToClient = to_client;
    }

    /** Client -> server direction. */
    void sendToServer(Cycles t, const Packet &pkt);

    /** Server -> client direction. */
    void sendToClient(Cycles t, const Packet &pkt);

    Cycles oneWayLatency() const { return latency; }

  private:
    EventQueue &eq;
    StatRegistry &stats;
    Cycles latency;
    Probe *probe; ///< may be null (standalone wire)
    Endpoint toServer;
    Endpoint toClient;
    ShardChannel *chToServer = nullptr; ///< may be null (unbound)
    ShardChannel *chToClient = nullptr; ///< may be null (unbound)
};

} // namespace virtsim

#endif // VIRTSIM_HW_WIRE_HH
