#include "hw/cpu.hh"

#include <algorithm>

#include "sim/log.hh"

namespace virtsim {

RegFile::RegFile()
{
    for (std::size_t i = 0; i < numRegClasses; ++i)
        banks[i].assign(bankSize(static_cast<RegClass>(i)), 0);
}

std::size_t
RegFile::bankSize(RegClass cls)
{
    switch (cls) {
      case RegClass::Gp:
        return 31; // x0-x30
      case RegClass::Fp:
        return 32; // v0-v31
      case RegClass::El1Sys:
        return 20; // TTBRx_EL1, SCTLR_EL1, TCR_EL1, VBAR_EL1, ...
      case RegClass::Vgic:
        return 11; // GICH_HCR, GICH_VMCR, GICH_APR, 4+ list registers
      case RegClass::Timer:
        return 3;  // CNTV_CTL, CNTV_CVAL, CNTVOFF
      case RegClass::El2Config:
        return 4;  // HCR_EL2, CPTR_EL2, HSTR_EL2, CNTHCTL_EL2
      case RegClass::El2VirtMem:
        return 2;  // VTTBR_EL2, VTCR_EL2
      case RegClass::Vmcs:
        return 32; // x86 state block switched by hardware
    }
    panic("bad RegClass");
}

std::vector<std::uint64_t> &
RegFile::bank(RegClass cls)
{
    return banks[static_cast<std::size_t>(cls)];
}

const std::vector<std::uint64_t> &
RegFile::bank(RegClass cls) const
{
    return banks[static_cast<std::size_t>(cls)];
}

void
RegFile::fillPattern(std::uint64_t tag)
{
    for (std::size_t c = 0; c < numRegClasses; ++c) {
        auto &b = banks[c];
        for (std::size_t i = 0; i < b.size(); ++i)
            b[i] = (tag << 16) ^ (static_cast<std::uint64_t>(c) << 8) ^ i;
    }
}

bool
RegFile::matchesPattern(std::uint64_t tag) const
{
    for (std::size_t c = 0; c < numRegClasses; ++c) {
        const auto &b = banks[c];
        for (std::size_t i = 0; i < b.size(); ++i) {
            const std::uint64_t want =
                (tag << 16) ^ (static_cast<std::uint64_t>(c) << 8) ^ i;
            if (b[i] != want)
                return false;
        }
    }
    return true;
}

void
RegFile::copyClassFrom(const RegFile &other, RegClass cls)
{
    bank(cls) = other.bank(cls);
}

PhysicalCpu::PhysicalCpu(PcpuId id, EventQueue &eq, const CostModel &cm)
    : _id(id), eq(eq), cm(cm),
      _mode(cm.arch == Arch::Arm ? CpuMode::El1 : CpuMode::KernelRoot)
{
}

void
PhysicalCpu::reset()
{
    _frontier = 0;
    _busy = 0;
    _mode = cm.arch == Arch::Arm ? CpuMode::El1 : CpuMode::KernelRoot;
    _context = "idle";
    _regs = RegFile();
}

Cycles
PhysicalCpu::charge(Cycles ready, Cycles cost)
{
    const Cycles start = std::max(ready, _frontier);
    _frontier = start + cost;
    _busy += cost;
    return _frontier;
}

void
PhysicalCpu::run(Cycles ready, Cycles cost, EventFn fn)
{
    const Cycles done = charge(ready, cost);
    eq.scheduleAt(done, std::move(fn));
}

double
PhysicalCpu::utilization(Cycles now) const
{
    if (now == 0)
        return 0.0;
    return static_cast<double>(_busy) / static_cast<double>(now);
}

} // namespace virtsim
