#include "hw/vtimer.hh"

#include "sim/log.hh"

namespace virtsim {

TimerBank::TimerBank(EventQueue &eq, IrqChip &chip, int n_cpus, IrqId irq)
    : eq(eq), chip(chip), irq(irq),
      slots(static_cast<std::size_t>(n_cpus))
{
}

void
TimerBank::program(PcpuId cpu, Cycles deadline)
{
    auto &slot = slots.at(static_cast<std::size_t>(cpu));
    slot.isArmed = true;
    slot.when = deadline;
    const std::uint64_t gen = ++slot.gen;
    eq.scheduleAt(deadline, [this, cpu, gen, deadline] {
        auto &s = slots[static_cast<std::size_t>(cpu)];
        if (!s.isArmed || s.gen != gen)
            return; // cancelled or reprogrammed
        s.isArmed = false;
        // The timer raises a physical PPI on its own CPU; no routing.
        chip.raisePpi(deadline, cpu, irq);
    });
}

void
TimerBank::cancel(PcpuId cpu)
{
    auto &slot = slots.at(static_cast<std::size_t>(cpu));
    slot.isArmed = false;
    ++slot.gen;
}

bool
TimerBank::armed(PcpuId cpu) const
{
    return slots.at(static_cast<std::size_t>(cpu)).isArmed;
}

Cycles
TimerBank::deadline(PcpuId cpu) const
{
    return slots.at(static_cast<std::size_t>(cpu)).when;
}

} // namespace virtsim
