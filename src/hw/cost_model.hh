/**
 * @file
 * Per-platform primitive cycle costs — the calibration table of the
 * whole simulator.
 *
 * Every microbenchmark and application result in virtsim is an
 * *emergent sum* of these primitives along the control path a real
 * hypervisor executes; no result value appears anywhere else in the
 * code base. Constants fall into three tiers, annotated per field in
 * cost_model.cc:
 *
 *  [paper]       taken verbatim from the paper (Table III register
 *                save/restore costs, the 71-cycle ARM virtual IRQ
 *                completion, native Netperf legs of Table V).
 *  [derived]     solved from paper totals given the documented control
 *                path (e.g. ARM trap cost from Xen's 376-cycle
 *                hypercall = trap + GP save + handler + GP restore +
 *                eret).
 *  [calibrated]  plausible values for costs the paper does not
 *                decompose (IPI flight, thread wakeup, GIC register
 *                access latency), tuned so simulated totals land near
 *                the paper's measurements while keeping the documented
 *                structure.
 */

#ifndef VIRTSIM_HW_COST_MODEL_HH
#define VIRTSIM_HW_COST_MODEL_HH

#include <array>

#include "hw/arch.hh"
#include "sim/types.hh"
#include "sim/units.hh"

namespace virtsim {

/** Save and restore cycle costs for one register class. */
struct SaveRestoreCost
{
    Cycles save = 0;
    Cycles restore = 0;
};

/**
 * The primitive-cost table for one platform (one CPU implementation).
 *
 * Factory functions provide the two testbeds of the paper; tests and
 * ablation benches construct modified copies to explore design points
 * (e.g. "what if VGIC access were as cheap as a system register?").
 */
struct CostModel
{
    Arch arch = Arch::Arm;
    Frequency freq{2.4};

    /** Per-register-class world-switch costs (Table III on ARM). */
    std::array<SaveRestoreCost, numRegClasses> regCost{};

    /** @name ARM mode transitions */
    ///@{
    Cycles trapToEl2 = 0;      ///< hardware trap EL1/EL0 -> EL2
    Cycles eretToEl1 = 0;      ///< ERET EL2 -> EL1/EL0
    Cycles stage2Toggle = 0;   ///< enable or disable Stage-2 + traps
    ///@}

    /** @name x86 mode transitions */
    ///@{
    Cycles vmexitHw = 0;  ///< VM exit incl. hardware VMCS state save
    Cycles vmentryHw = 0; ///< VM entry incl. hardware VMCS state load
    Cycles vmcsSwitch = 0; ///< VMCS pointer switch between VMs
    ///@}

    /** @name Interrupt hardware */
    ///@{
    /** One MMIO access to a GIC/APIC register (distributor or CPU
     *  interface). Dominated by the interconnect on X-Gene, which is
     *  why VGIC save costs 3,250 cycles. */
    Cycles irqChipRegAccess = 0;
    /** Physical IPI: from initiating register write on the sender
     *  until the interrupt is pended at the target CPU. */
    Cycles ipiFlight = 0;
    /** Completing (EOI) a *virtual* interrupt from inside a VM.
     *  ARM hardware does this without trapping (71 cycles); on x86
     *  without vAPIC this constant is unused because the EOI traps. */
    Cycles virqCompletionInVm = 0;
    /** Programming one GIC list register from the hypervisor. */
    Cycles listRegWrite = 0;
    ///@}

    /** @name Memory system */
    ///@{
    Cycles pageTableWalk = 0;      ///< one-stage walk on TLB miss
    Cycles stage2WalkExtra = 0;    ///< extra cost of combined 2-stage walk
    Cycles tlbInvalidateLocal = 0; ///< local TLB invalidate
    /** Broadcast TLB invalidate. ARM has a hardware broadcast
     *  instruction; x86 must interrupt every CPU (shootdown), which is
     *  the documented reason Xen x86 abandoned zero-copy grants. */
    Cycles tlbInvalidateBroadcast = 0;
    Cycles copyPerKb = 0;          ///< memcpy cost per KiB
    Cycles cacheLineTransfer = 0;  ///< cross-CPU cache line transfer
    ///@}

    /** @name OS-level path costs (host Linux / Dom0 Linux) */
    ///@{
    Cycles syscall = 0;            ///< native syscall entry+exit
    Cycles irqEntryExit = 0;       ///< kernel IRQ prologue + epilogue
    Cycles threadWakeRemote = 0;   ///< wake_up_process() to another CPU
                                   ///  (excluding the IPI flight)
    Cycles schedSwitch = 0;        ///< kernel context switch
    Cycles softirqDispatch = 0;    ///< raise + run a softirq
    ///@}

    /** Convenience: total save cost of a set of register classes. */
    Cycles saveCost(std::initializer_list<RegClass> classes) const;
    /** Convenience: total restore cost of a set of register classes. */
    Cycles restoreCost(std::initializer_list<RegClass> classes) const;

    const SaveRestoreCost &
    cost(RegClass cls) const
    {
        return regCost[static_cast<std::size_t>(cls)];
    }

    SaveRestoreCost &
    cost(RegClass cls)
    {
        return regCost[static_cast<std::size_t>(cls)];
    }

    /** The ARM testbed: HP Moonshot m400 (APM X-Gene, 2.4 GHz). */
    static CostModel armAtlas();

    /** The x86 testbed: Dell r320 (Xeon E5-2450, 2.1 GHz). */
    static CostModel x86Xeon();
};

} // namespace virtsim

#endif // VIRTSIM_HW_COST_MODEL_HH
