/**
 * @file
 * The hypervisor interface: every operation the paper's
 * microbenchmarks measure (Table I), plus the full network I/O paths
 * the application benchmarks and the Netperf TCP_RR decomposition
 * exercise.
 *
 * All path operations are asynchronous, continuation-passing, and
 * cycle-accounted on the physical CPUs involved: a completion callback
 * receives the simulated time at which the operation's measurement
 * endpoint is reached. The seven Table I operations are *measured
 * through these same entry points* by core/microbench; the application
 * benchmarks reuse them, which is what lets the simulator reproduce
 * the paper's headline finding that microbenchmark performance and
 * application performance do not correlate.
 */

#ifndef VIRTSIM_HV_HYPERVISOR_HH
#define VIRTSIM_HV_HYPERVISOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hv/vgic.hh"
#include "hv/vm.hh"
#include "hv/world_switch.hh"
#include "hw/machine.hh"

namespace virtsim {

/** Completion continuation carrying the finish time. */
using Done = std::function<void(Cycles)>;

/** Hypervisor structural design, per the paper's Figure 1. */
enum class HvType
{
    Type1, ///< bare-metal (Xen)
    Type2, ///< hosted (KVM)
};

std::string to_string(HvType t);

/**
 * Policy for routing device virtual interrupts to guest VCPUs.
 * The paper (Section V) finds that both KVM and Xen deliver all
 * virtual interrupts to VCPU0, saturating it under Apache/Memcached,
 * and measures the improvement from distributing them (E5 ablation).
 */
enum class VirqDistribution
{
    SingleVcpu, ///< everything to VCPU0 (the measured default)
    Spread,     ///< round-robin across VCPUs
};

/**
 * Abstract hypervisor running on one Machine.
 */
class Hypervisor
{
  public:
    explicit Hypervisor(Machine &m);
    virtual ~Hypervisor() = default;

    Hypervisor(const Hypervisor &) = delete;
    Hypervisor &operator=(const Hypervisor &) = delete;

    virtual std::string name() const = 0;
    virtual HvType type() const = 0;

    Machine &machine() { return mach; }
    StatRegistry &stats() { return mach.stats(); }
    EventQueue &queue() { return mach.queue(); }
    WorldSwitchEngine &switchEngine() { return wse; }

    /** The machine's trace sink (the engine's spans go there too). */
    TraceSink &trace() { return mach.trace(); }

    /** Per-VM metrics domain, cached by VM id so hot hypervisor
     *  paths pay an array index, not a name lookup. */
    MetricsDomain &vmMetrics(const Vm &vm);

    /** Per-physical-CPU metrics domain. */
    MetricsDomain &cpuMetrics(PcpuId cpu)
    {
        return mach.metrics().cpu(cpu);
    }

    /** @name VM lifecycle */
    ///@{
    /**
     * Create a guest VM with n_vcpus VCPUs pinned to the given
     * physical CPUs (Section III methodology: one VCPU per PCPU).
     */
    virtual Vm &createVm(const std::string &name, int n_vcpus,
                         const std::vector<PcpuId> &pinning);

    /** Install interrupt handlers and begin running. Call once after
     *  all VMs are created. The base implementation registers the
     *  per-VM timeline gauges (world-switch rate, per-VCPU run
     *  state); overrides must call it. */
    virtual void start();

    /**
     * Declare this hypervisor family's cross-CPU interactions as
     * shard channels on the kernel the machine runs on, and bind them
     * to the components that send through them (backend worker
     * wakeups, ioeventfd kicks). The machine's per-CPU IPI channels —
     * which carry VCPU kicks, virtual IPIs and Xen's event-channel
     * notifications — are declared by its shard-aware constructor.
     * Harnesses call this after the I/O backends are attached and
     * before start(); declarations are idempotent by channel name, so
     * a rebuild on a long-lived kernel is safe. The base
     * implementation declares nothing.
     */
    virtual void declareShardChannels(ShardedEventKernel &) {}

    /**
     * Tap id of this family's per-VM world-switch counter
     * ("kvm.world_switch" / "xen.world_switch"), so the base class
     * can wire world-switch-rate timeline gauges without knowing
     * each implementation's tap table.
     */
    virtual TapId worldSwitchTap() const = 0;

    const std::vector<std::unique_ptr<Vm>> &vms() const { return _vms; }
    ///@}

    /** @name Table I microbenchmark operations */
    ///@{
    /** Transition VM -> hypervisor -> VM with a no-op handler. */
    virtual void hypercall(Cycles t, Vcpu &v, Done done) = 0;

    /** VM access to a register of the emulated interrupt controller
     *  (distributor), then return to the VM. */
    virtual void irqControllerTrap(Cycles t, Vcpu &v, Done done) = 0;

    /**
     * Virtual IPI from src to dst, which runs on a different PCPU and
     * is executing VM code. done fires when the *receiving* VCPU's
     * handler runs (the paper's measurement endpoint).
     */
    virtual void virtualIpi(Cycles t, Vcpu &src, Vcpu &dst,
                            Done done) = 0;

    /** VM acknowledges and completes a pending virtual interrupt. */
    virtual void virqComplete(Cycles t, Vcpu &v, Done done) = 0;

    /** Switch the physical CPU from one VM's VCPU to another VM's
     *  VCPU (both pinned to the same PCPU). */
    virtual void vmSwitch(Cycles t, Vcpu &from, Vcpu &to,
                          Done done) = 0;

    /** Guest driver signals the virtual I/O device; done fires when
     *  the backend (host vhost / Dom0 netback) receives the signal. */
    virtual void ioSignalOut(Cycles t, Vcpu &v, Done done) = 0;

    /** Backend signals the guest; done fires when the VM receives the
     *  corresponding virtual interrupt. */
    virtual void ioSignalIn(Cycles t, Vcpu &v, Done done) = 0;
    ///@}

    /** @name Virtual interrupt injection (timer / device) */
    ///@{
    /**
     * Inject virq into a VCPU from hypervisor context; done fires when
     * the guest's handler starts executing.
     */
    virtual void injectVirq(Cycles t, Vcpu &v, IrqId virq,
                            Done done) = 0;
    ///@}

    /** @name Full network I/O paths */
    ///@{
    /**
     * Carry a packet that has arrived at the physical NIC through the
     * I/O backend into the guest. done fires at the paper's
     * "VM recv" tap: the guest driver receiving the frame. The
     * target VCPU is chosen by the VirqDistribution policy.
     */
    virtual void deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt,
                                   Done done) = 0;

    /**
     * Guest sends a frame: from the guest driver enqueue ("VM send"
     * tap) through the backend to the physical NIC. done fires at the
     * physical datalink-tx point, after which the frame is on the
     * wire via Machine::nic().
     */
    virtual void guestTransmit(Cycles t, Vcpu &v, const Packet &pkt,
                               Done done) = 0;

    /** Hook: host/Dom0 physical driver saw the frame (datalink rx
     *  tap of Table V; fires before backend processing). */
    std::function<void(Cycles, const Packet &)> onHostDatalinkRx;

    /** Hook: a packet reached the guest driver ("VM recv" tap). */
    std::function<void(Cycles, Vm &, const Packet &)> onGuestRx;
    ///@}

    /** @name Policy knobs */
    ///@{
    VirqDistribution virqDistribution() const { return virqDist; }
    void setVirqDistribution(VirqDistribution d) { virqDist = d; }
    ///@}

    /**
     * Mark a VCPU blocked (guest executed WFI / blocked in a wait):
     * the hypervisor regains the physical CPU, which then idles (the
     * host run-loop parks for KVM; the idle domain runs for Xen).
     * No cycles are charged: this is the quiescent state between
     * I/O events, not a measured transition.
     */
    virtual void blockVcpu(Vcpu &v) = 0;

    /**
     * Charge plain guest execution (application / guest kernel work)
     * on the VCPU's physical CPU. Runs at native speed: CPU and
     * memory virtualization are handled in hardware (Section V:
     * "CPU and memory virtualization has been highly optimized
     * directly in hardware ... performed largely without the
     * hypervisor's involvement").
     * @return completion time.
     */
    Cycles chargeGuest(Cycles t, Vcpu &v, Cycles work);

  protected:
    /** Pick the VCPU that receives the next device virtual IRQ. */
    VcpuId pickVirqTarget(Vm &vm);

    Machine &mach;
    WorldSwitchEngine wse;
    std::vector<std::unique_ptr<Vm>> _vms;
    /** vmMetrics cache, indexed by VM id. */
    std::vector<MetricsDomain *> vmDomains;
    VirqDistribution virqDist = VirqDistribution::SingleVcpu;
    VcpuId nextVirqRr = 0;
    VmId nextVmId = 1; // 0 is reserved for Xen's Dom0
};

} // namespace virtsim

#endif // VIRTSIM_HV_HYPERVISOR_HH
