/**
 * @file
 * KVM ARM: the split-mode Type 2 hypervisor (paper Sections II, IV).
 *
 * KVM cannot run Linux in EL2, so it splits itself: a minimal lowvisor
 * in EL2 plus the bulk of KVM inside the host kernel in EL1, sharing
 * EL1 with the VMs. Every VM-to-hypervisor transition therefore pays
 * the four overheads Section IV enumerates:
 *
 *  1. a double trap (VM EL1 -> EL2 -> host EL1, and back);
 *  2. a full context switch of EL1 system state between guest and
 *     host, including the expensive VGIC read-back (Table III);
 *  3. disabling/enabling Stage-2 translation and traps on each
 *     direction (the host must own the hardware);
 *  4. VM control state only reachable from EL2 — KVM copies it all to
 *     memory on every transition (the paper notes KVM chooses this
 *     over repeated EL2 round trips).
 *
 * The exit/enter primitives below implement exactly that sequence;
 * every Table II KVM ARM row is an emergent composition of them.
 */

#ifndef VIRTSIM_HV_KVM_ARM_HH
#define VIRTSIM_HV_KVM_ARM_HH

#include <deque>
#include <map>
#include <memory>

#include "hv/hypervisor.hh"
#include "os/netstack.hh"
#include "os/vhost.hh"

namespace virtsim {

/**
 * Software path costs of KVM ARM (Linux 4.0-rc4 era). These are
 * hypervisor *software* constants, distinct from the hardware
 * CostModel; ablation benches modify them before start().
 */
struct KvmArmParams
{
    /** EL2 lowvisor entry/dispatch code, per direction.
     *  [derived] closes the Table II Hypercall total (6,500) over the
     *  Table III register costs, traps, and Stage-2 toggles. */
    Cycles el2Dispatch = 260;
    /** No-op hypercall handling in the host. [derived] as above. */
    Cycles hypercallHandler = 104;
    /** GIC distributor MMIO emulation in the host kernel.
     *  [derived] Interrupt Controller Trap (7,370) minus the
     *  hypercall-equivalent round trip. */
    Cycles vgicDistEmulation = 974;
    /** SGI (IPI) register emulation: pending update + target lookup.
     *  [calibrated] lighter than a full distributor access. */
    Cycles sgiEmulation = 420;
    /** kvm_vcpu_kick bookkeeping before the physical SGI write. */
    Cycles kickInitiate = 120;
    /** Host handler body for the reschedule SGI. */
    Cycles reschedIrqHandler = 80;
    /** Host scheduler switch between VCPU threads plus
     *  vcpu_put/vcpu_load. [derived] VM Switch (10,387) minus
     *  exit+enter. */
    Cycles vcpuSwitchWork = 3991;
    /** ioeventfd signal on a guest kick. [derived] with
     *  vhostNotifyLatency from I/O Latency Out (6,024). */
    Cycles ioeventfdSignal = 250;
    /** Latency until the vhost worker runs after an ioeventfd signal
     *  (kthread wake on its own dedicated CPU). [derived] see above. */
    Cycles vhostNotifyLatency = 1228;
    /** Full wake of a blocked VCPU thread: cross-CPU wake_up, idle
     *  exit, schedule, KVM run-loop re-entry — everything between the
     *  irqfd signal and the world-switch back into the VM.
     *  [derived] I/O Latency In (13,872) minus irqfd + LR + entry +
     *  guest ack. The magnitude (≈4.7 us) is the paper's point: I/O
     *  latency is dominated by hypervisor software, not traps. */
    Cycles vcpuWakeFromIdle = 11272;
    /** irqfd injection path from the signalling context. */
    Cycles irqfdInject = 300;
    /** Guest vector entry to handler dispatch. */
    Cycles guestIrqDispatch = 100;
    /** Guest virtio driver: reap one rx descriptor + repost. */
    Cycles guestDriverRxPop = 720;
};

/**
 * The KVM ARM hypervisor model.
 */
class KvmArm : public Hypervisor
{
  public:
    explicit KvmArm(Machine &m);

    std::string name() const override { return "KVM ARM"; }
    HvType type() const override { return HvType::Type2; }

    Vm &createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning) override;
    void start() override;
    TapId worldSwitchTap() const override;
    void declareShardChannels(ShardedEventKernel &kern) override;

    void hypercall(Cycles t, Vcpu &v, Done done) override;
    void irqControllerTrap(Cycles t, Vcpu &v, Done done) override;
    void virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done) override;
    void virqComplete(Cycles t, Vcpu &v, Done done) override;
    void vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done) override;
    void ioSignalOut(Cycles t, Vcpu &v, Done done) override;
    void ioSignalIn(Cycles t, Vcpu &v, Done done) override;
    void injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done) override;
    void blockVcpu(Vcpu &v) override;
    void deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt,
                           Done done) override;
    void guestTransmit(Cycles t, Vcpu &v, const Packet &pkt,
                       Done done) override;

    /** @name Split-mode world-switch primitives (public for tests
     *  and for the Table III breakdown bench). */
    ///@{
    /** Full exit: trap to EL2, save all VM state, flip to the host.
     *  @return completion time on the VCPU's physical CPU. */
    virtual Cycles exitToHost(Cycles t, Vcpu &v);

    /** Full entry: trap to EL2, restore all VM state, eret to VM. */
    virtual Cycles enterVm(Cycles t, Vcpu &v);
    ///@}

    /** Attach paravirtual networking (virtio + vhost) to a VM. */
    void attachVirtualNic(Vm &vm, VhostBackend::Params params);

    VhostBackend *vhost() { return _vhost.get(); }
    const NetstackCosts &netCosts() const { return net; }

    KvmArmParams params;

  protected:
    /** Per-physical-CPU host-side state. */
    struct HostCtx
    {
        RegFile regs;       ///< host EL1 register values
        Vcpu *loaded = nullptr;
        bool inVm = false;
    };

    VgicDistributor &dist(Vm &vm);

    void onPhysIrq(Cycles t, PcpuId cpu, IrqId irq);
    void handleKick(Cycles t, PcpuId cpu);
    void handleNicIrq(Cycles t, PcpuId cpu);

    /** Host-context work: inject a pending virq into a VCPU that the
     *  host has just kicked out of guest mode, then re-enter. Fires
     *  done after the guest acknowledges and dispatches. */
    Cycles flushAndResume(Cycles t, Vcpu &v, Done done);

    /** Deliver-to-guest notification decision: wake, kick, or ride on
     *  notification suppression. done at the guest driver rx point. */
    void notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done);

    /** Drain the guest tx ring through vhost onto the NIC. */
    void pumpTx(Cycles t);

    std::vector<HostCtx> hostCtx;
    std::map<VmId, std::unique_ptr<VgicDistributor>> dists;
    /** Receiver-side actions waiting for a reschedule SGI, per CPU. */
    std::vector<std::deque<std::function<void(Cycles)>>> kickActions;
    std::unique_ptr<VhostBackend> _vhost;
    /** Guest-kick-to-worker channel ("kvm.ioeventfd"); null until
     *  declareShardChannels. */
    ShardChannel *chIoeventfd = nullptr;
    Vm *netVm = nullptr;
    NetstackCosts net;
    /** Per-packet transmit completions, keyed by packet seq. */
    std::map<std::uint64_t, Done> txDone;
    /** Whether the vhost worker is actively draining the tx ring
     *  (guest kicks are suppressed while it is). */
    bool txPumpActive = false;
    /** End of the current NAPI-poll window: rx events landing
     *  inside it ride the in-progress notification instead of
     *  raising another interrupt (virtio EVENT_IDX / event-channel
     *  masking). */
    Cycles rxQuietUntil = 0;
    /** Frames waiting for tx ring space (virtio backpressure). */
    std::deque<std::pair<Vcpu *, std::pair<Packet, Done>>> txBacklog;
};

} // namespace virtsim

#endif // VIRTSIM_HV_KVM_ARM_HH
