/**
 * @file
 * Xen ARM: the Type 1 hypervisor (paper Sections II, IV).
 *
 * Xen maps naturally onto the ARM virtualization extensions: the
 * whole hypervisor lives in EL2 with its own register bank, so a
 * hypercall costs "little more than context switching the general
 * purpose registers" — 376 cycles against KVM's 6,500 (Table II).
 * The GIC distributor is emulated directly in EL2, making interrupt
 * traps and virtual IPIs far cheaper than on split-mode KVM.
 *
 * The flip side is the I/O architecture: Xen itself implements only
 * scheduling, memory management, the interrupt controller and timers.
 * Everything else — device drivers, the network stack — lives in the
 * privileged Dom0 VM. A guest I/O operation therefore involves
 * event-channel signalling between domains, physical IPIs, switching
 * the target PCPU away from the *idle domain*, and grant-mediated
 * data movement, which is why Xen loses to KVM on the paper's I/O
 * latency microbenchmarks and most I/O-heavy applications despite its
 * vastly cheaper transitions.
 */

#ifndef VIRTSIM_HV_XEN_ARM_HH
#define VIRTSIM_HV_XEN_ARM_HH

#include <deque>
#include <map>
#include <memory>

#include "hv/hypervisor.hh"
#include "hv/xen_pv.hh"
#include "os/netback.hh"
#include "os/netstack.hh"

namespace virtsim {

/** Software path costs of Xen ARM 4.5. */
struct XenArmParams
{
    /** Hypercall decode + no-op handler in EL2.
     *  [derived] Hypercall (376) = trap + GP save + this + GP
     *  restore + eret. */
    Cycles hypercallDispatch = 16;
    /** GIC distributor emulation in EL2. [derived] Interrupt
     *  Controller Trap (1,356) minus the hypercall skeleton. */
    Cycles vgicDistEmulation = 980;
    /** GICD_SGIR (IPI) emulation: distributor lock, per-target rank
     *  bookkeeping, vcpu kick logic — far heavier than a plain
     *  distributor read. [derived] closes Virtual IPI (5,978). */
    Cycles sgiEmulation = 3280;
    /** Xen's do_IRQ body for a physical interrupt taken in EL2. */
    Cycles xenIrqDispatch = 150;
    /** vgic_vcpu_inject_irq software path (excl. LR write). */
    Cycles vgicInject = 300;
    /** Credit-scheduler work on a domain switch. [derived]
     *  VM Switch (8,799) minus trap/eret and full state switch. */
    Cycles schedWork = 3067;
    /** Waking a blocked VCPU of an idle domain: vcpu_wake, credit
     *  accounting, idle-domain exit on the target PCPU — everything
     *  up to the register switch-in. [derived] from the I/O Latency
     *  rows (16,491 / 15,650); its ~5.5 us magnitude is the paper's
     *  "Xen must first switch from the idle domain" cost. */
    Cycles domainWakeFromIdle = 13100;
    /** Guest vector entry to handler dispatch. */
    Cycles guestIrqDispatch = 100;
    /** Netback noticing a pending event channel once Dom0 runs. */
    Cycles backendDequeue = 510;
    /** Frontend driver: reap one rx response + re-grant + repost. */
    Cycles guestDriverRxPop = 1400;
    /** Guest-side event-channel upcall demux: the Linux evtchn
     *  path from vector entry to the bound handler is markedly
     *  heavier than a native IRQ path. [calibrated] */
    Cycles evtchnUpcall = 5280; // ~2.2 us
    /** Frontend cost of granting one page for I/O. */
    Cycles grantSetup = 450;
};

/**
 * The Xen ARM hypervisor model.
 */
class XenArm : public Hypervisor
{
  public:
    explicit XenArm(Machine &m);

    std::string name() const override { return "Xen ARM"; }
    HvType type() const override { return HvType::Type1; }

    Vm &createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning) override;
    void start() override;
    TapId worldSwitchTap() const override;
    void declareShardChannels(ShardedEventKernel &kern) override;

    void hypercall(Cycles t, Vcpu &v, Done done) override;
    void irqControllerTrap(Cycles t, Vcpu &v, Done done) override;
    void virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done) override;
    void virqComplete(Cycles t, Vcpu &v, Done done) override;
    void vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done) override;
    void ioSignalOut(Cycles t, Vcpu &v, Done done) override;
    void ioSignalIn(Cycles t, Vcpu &v, Done done) override;
    void injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done) override;
    void blockVcpu(Vcpu &v) override;
    void deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt,
                           Done done) override;
    void guestTransmit(Cycles t, Vcpu &v, const Packet &pkt,
                       Done done) override;

    /** @name EL2 primitives (public for tests) */
    ///@{
    /** Trap into Xen: hardware trap + GP save + dispatch. */
    Cycles trapToXen(Cycles t, Vcpu &v);

    /** Return to the trapped VM: GP restore + eret. */
    Cycles resumeVm(Cycles t, Vcpu &v);

    /**
     * Full domain switch on one PCPU: save the outgoing world's EL1
     * state (the idle domain has almost none), run the scheduler,
     * restore the incoming VCPU. from == nullptr means the PCPU was
     * running the idle domain.
     */
    Cycles switchDomains(Cycles t, Vcpu *from, Vcpu &to,
                         bool charge_sched = true);
    ///@}

    /** The privileged I/O domain (created in the constructor; pinned
     *  to the upper half of the machine per Section III). */
    Vm &dom0() { return *_dom0; }

    /** Attach PV networking (netfront/netback + grants) to a VM. */
    void attachVirtualNic(Vm &vm, NetbackBackend::Params params);

    /** @name Test/bench scaffolding
     *  Force Dom0's scheduling state without charging cycles, so a
     *  measurement can start from a known state (the paper's
     *  microbenchmark loops naturally settle into these states
     *  between iterations). */
    ///@{
    void forceDom0Running();
    void forceDom0Idle();
    ///@}

    NetbackBackend *netback() { return _netback.get(); }
    const NetstackCosts &netCosts() const { return net; }

    XenArmParams params;

  protected:
    /** What a physical CPU is currently running. */
    struct PcpuSched
    {
        /** Loaded VCPU, or nullptr for the idle domain. */
        Vcpu *current = nullptr;
        /** Whether the current VCPU is executing guest code (vs
         *  having trapped into Xen). */
        bool inGuest = false;
    };

    VgicDistributor &dist(Vm &vm);

    void onPhysIrq(Cycles t, PcpuId cpu, IrqId irq);
    void handleNicIrq(Cycles t, PcpuId cpu);
    void handleKick(Cycles t, PcpuId cpu);

    /**
     * Ensure a VCPU is running on its PCPU at time t, waking it from
     * the idle domain if necessary.
     * @return the time at which the VCPU is executing.
     */
    Cycles ensureRunning(Cycles t, Vcpu &v);

    /** Receiver-side completion of a virq injection into a VCPU that
     *  is executing guest code (physical SGI path). */
    Cycles injectIntoRunning(Cycles t, Vcpu &v, Done done);

    void notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done);
    void pumpTx(Cycles t);

    /** Dom0's VCPU0, which hosts the physical driver and netback. */
    Vcpu &dom0Vcpu();

    /** Arrange for Dom0 to block (yield to the idle domain) if it
     *  stays quiescent for a grace period. */
    void scheduleDom0IdleCheck(Cycles t);

    std::unique_ptr<Vm> _dom0;
    std::map<VmId, std::unique_ptr<VgicDistributor>> dists;
    std::vector<PcpuSched> sched;
    std::vector<std::deque<std::function<void(Cycles)>>> kickActions;
    std::unique_ptr<NetbackBackend> _netback;
    std::unique_ptr<EventChannel> evtchn;
    int portDomU = -1; ///< event channel: backend -> frontend
    int portDom0 = -1; ///< event channel: frontend -> backend
    Vm *netVm = nullptr;
    NetstackCosts net;
    std::map<std::uint64_t, Done> txDone;
    /** Per-packet (grant ref, buffer) released at tx completion. */
    std::map<std::uint64_t, std::pair<GrantRef, BufferId>> txBufs;
    bool txPumpActive = false;
    /** End of the current NAPI-poll window: rx events landing
     *  inside it ride the in-progress notification instead of
     *  raising another interrupt (virtio EVENT_IDX / event-channel
     *  masking). */
    Cycles rxQuietUntil = 0;
    /** Frames waiting for tx ring space (netfront backpressure). */
    std::deque<std::pair<Vcpu *, std::pair<Packet, Done>>> txBacklog;
    std::uint64_t idleGen = 0;
};

} // namespace virtsim

#endif // VIRTSIM_HV_XEN_ARM_HH
