/**
 * @file
 * KVM ARM with the Virtualization Host Extensions (ARMv8.1 VHE) —
 * the architecture improvement the paper proposes in Section VI and
 * that ARM adopted.
 *
 * With the E2H bit set, EL2 gains a full complement of EL1-equivalent
 * registers, transparent register-access redirection, and an
 * EL1-compatible page-table format, so the *whole host kernel* runs
 * in EL2 unmodified. A VM-to-hypervisor transition then no longer
 * context-switches EL1 state: the guest's EL1 system registers, VGIC
 * and timer state stay live in hardware while the host works from its
 * own EL2-backed copies. Only the general-purpose registers move —
 * exactly the Type 1 fast path, now available to a Type 2 design.
 *
 * The paper could not measure VHE (no silicon existed; KVM's VHE
 * patches were developed on ARM software models), so this model is
 * the projection apparatus for the E7 bench: Section VI predicts
 * "improving Hypercall and I/O Latency Out performance by more than
 * an order of magnitude" and "more realistic I/O workloads by 10% to
 * 20%".
 */

#ifndef VIRTSIM_HV_KVM_ARM_VHE_HH
#define VIRTSIM_HV_KVM_ARM_VHE_HH

#include "hv/kvm_arm.hh"

namespace virtsim {

/**
 * KVM ARM running on VHE hardware (host kernel in EL2).
 */
class KvmArmVhe : public KvmArm
{
  public:
    explicit KvmArmVhe(Machine &m);

    std::string name() const override { return "KVM ARM (VHE)"; }

    /** VHE stamps the same kvm.world_switch counter but interns it
     *  in its own tap table; resolve through it for symmetry with
     *  the other four implementations. */
    TapId worldSwitchTap() const override;

    /** VHE exit: a plain trap into the (EL2-resident) host — GP
     *  registers only, no Stage-2 toggling, no EL1 switch. */
    Cycles exitToHost(Cycles t, Vcpu &v) override;

    /** VHE entry: restore GP registers and eret. */
    Cycles enterVm(Cycles t, Vcpu &v) override;

    /** VM switch still moves the full EL1 world between VMs — VHE
     *  removes the host from EL1 but the VMs still live there. */
    void vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done) override;

    /** Host-kernel dispatch after a trap to EL2 (replaces the
     *  split-mode lowvisor + host round trip). [calibrated] */
    Cycles vheDispatch = 100;
};

} // namespace virtsim

#endif // VIRTSIM_HV_KVM_ARM_VHE_HH
