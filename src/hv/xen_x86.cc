#include "hv/xen_x86.hh"

#include "os/kernel.hh"
#include "sim/log.hh"
#include "sim/probe.hh"

namespace virtsim {

namespace {

/** Xen x86 instrumentation taps, interned once per process. */
struct XenX86Taps
{
    TapId worldSwitch = internTap("xen.world_switch");
    TapId trapHypercall = internTap("xen.trap.hypercall");
    TapId trapIrqchip = internTap("xen.trap.irqchip");
    TapId trapVmSwitch = internTap("xen.trap.vm_switch");
    TapId trapEoi = internTap("xen.trap.eoi");
    TapId virqInjected = internTap("xen.virq_injected");
    // Guest-visible operation envelopes, shared across hypervisors so
    // differential reports line up by name.
    TapId opHypercall = internTap("op.hypercall");
    TapId opIrqTrap = internTap("op.irq_trap");
    TapId opVipi = internTap("op.vipi");
    TapId opVmSwitch = internTap("op.vm_switch");
    TapId opIoOut = internTap("op.io_out");
    TapId opIoIn = internTap("op.io_in");
};

const XenX86Taps &
xenX86Taps()
{
    static const XenX86Taps taps;
    return taps;
}

} // namespace

XenX86::XenX86(Machine &m)
    : Hypervisor(m),
      sched(static_cast<std::size_t>(m.numCpus())),
      kickActions(static_cast<std::size_t>(m.numCpus())),
      net(NetstackCosts::linux(m.freq()))
{
    VIRTSIM_ASSERT(m.arch() == Arch::X86, "XenX86 needs an x86 machine");
    const int half = m.numCpus() / 2;
    std::vector<PcpuId> dom0_pins;
    for (int i = 0; i < half; ++i)
        dom0_pins.push_back(half + i);
    // Dom0 runs as a PV instance on x86 (Section III: HVM domains
    // were used "except for Dom0 which was only supported as a PV
    // instance").
    _dom0 = std::make_unique<Vm>(0, "dom0", VmKind::Dom0, half,
                                 dom0_pins);
    dists[0] = std::make_unique<VgicDistributor>(*_dom0);
    evtchn = std::make_unique<EventChannel>(m);
}

Vm &
XenX86::createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning)
{
    Vm &vm = Hypervisor::createVm(name, n_vcpus, pinning);
    dists[vm.id()] = std::make_unique<VgicDistributor>(vm);
    return vm;
}

TapId
XenX86::worldSwitchTap() const
{
    return xenX86Taps().worldSwitch;
}

void
XenX86::start()
{
    Hypervisor::start();
    mach.irqChip().setPhysIrqHandler(
        [this](Cycles t, PcpuId cpu, IrqId irq) {
            onPhysIrq(t, cpu, irq);
        });
    for (auto &vmp : _vms) {
        for (int i = 0; i < vmp->numVcpus(); ++i) {
            Vcpu &v = vmp->vcpu(i);
            auto &s = sched[static_cast<std::size_t>(v.pcpu())];
            if (s.current == nullptr) {
                s.current = &v;
                s.inGuest = true;
                v.setLoaded(true);
                v.setState(VcpuState::Running);
                mach.cpu(v.pcpu()).regs() = v.savedRegs();
                mach.cpu(v.pcpu()).setContext(v.name());
            }
        }
    }
    for (int i = 0; i < _dom0->numVcpus(); ++i) {
        _dom0->vcpu(i).setState(VcpuState::Idle);
        mach.cpu(_dom0->vcpu(i).pcpu()).setContext("idle-domain");
    }
}

VgicDistributor &
XenX86::dist(Vm &vm)
{
    auto it = dists.find(vm.id());
    VIRTSIM_ASSERT(it != dists.end(), "no irq state for vm ", vm.name());
    return *it->second;
}

Cycles
XenX86::trapToXen(Cycles t, Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v && s.inGuest,
                   "trapToXen: ", v.name(), " not executing");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    // Hardware exit: the VMCS state switch is the same mechanism KVM
    // pays — Type 1 gains nothing here on x86 (Section IV).
    v.savedRegs().copyClassFrom(cpu.regs(), RegClass::Gp);
    v.savedRegs().copyClassFrom(cpu.regs(), RegClass::Vmcs);
    const Cycles c = mach.costs().vmexitHw + params.hypercallDispatch;
    s.inGuest = false;
    cpu.setMode(CpuMode::KernelRoot);
    stats().counter("xen.traps").inc();
    vmMetrics(v.vm()).counter(xenX86Taps().worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(xenX86Taps().worldSwitch).inc();
    return cpu.charge(t, c);
}

Cycles
XenX86::resumeVm(Cycles t, Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v && !s.inGuest,
                   "resumeVm: ", v.name(), " not trapped");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    cpu.regs().copyClassFrom(v.savedRegs(), RegClass::Gp);
    cpu.regs().copyClassFrom(v.savedRegs(), RegClass::Vmcs);
    const Cycles c = mach.costs().vmentryHw;
    s.inGuest = true;
    cpu.setMode(CpuMode::KernelNonRoot);
    vmMetrics(v.vm()).counter(xenX86Taps().worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(xenX86Taps().worldSwitch).inc();
    return cpu.charge(t, c);
}

Cycles
XenX86::switchDomains(Cycles t, Vcpu *from, Vcpu &to, bool charge_sched)
{
    auto &s = sched[static_cast<std::size_t>(to.pcpu())];
    PhysicalCpu &cpu = mach.cpu(to.pcpu());

    Cycles c = 0;
    if (from != nullptr) {
        VIRTSIM_ASSERT(from->pcpu() == to.pcpu(),
                       "domain switch across pcpus");
        from->savedRegs().copyClassFrom(cpu.regs(), RegClass::Gp);
        from->savedRegs().copyClassFrom(cpu.regs(), RegClass::Vmcs);
        from->setLoaded(false);
    } else {
        stats().counter("xen.idle_domain_switches").inc();
    }
    if (charge_sched)
        c += params.schedWork;
    c += mach.costs().vmcsSwitch;

    Cycles inject = 0;
    VgicDistributor &d = dist(to.vm());
    if (d.hasPending(to.id())) {
        const IrqId virq = d.popPending(to.id());
        inject = mach.apic().injectVirq(t, to.pcpu(), virq);
    }

    cpu.regs().copyClassFrom(to.savedRegs(), RegClass::Gp);
    cpu.regs().copyClassFrom(to.savedRegs(), RegClass::Vmcs);
    c += mach.costs().vmentryHw + inject;

    s.current = &to;
    s.inGuest = true;
    to.setLoaded(true);
    to.setState(VcpuState::Running);
    cpu.setContext(to.name());
    stats().counter("xen.domain_switches").inc();
    return cpu.charge(t, c);
}

Cycles
XenX86::ensureRunning(Cycles t, Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    if (s.current == &v && s.inGuest)
        return t;
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    if (s.current == nullptr) {
        const Cycles tw = cpu.charge(t, params.domainWakeFromIdle);
        return switchDomains(tw, nullptr, v, false);
    }
    if (s.current == &v && !s.inGuest)
        return resumeVm(t, v);
    return switchDomains(t, s.current, v, true);
}

void
XenX86::hypercall(Cycles t, Vcpu &v, Done done)
{
    const Cycles t1 = trapToXen(t, v);
    const Cycles th =
        mach.cpu(v.pcpu()).charge(t1, params.hypercallHandler);
    const Cycles t2 = resumeVm(th, v);
    stats().counter("xen.hypercalls").inc();
    vmMetrics(v.vm()).histogram(xenX86Taps().trapHypercall)
        .add(t2 - t);
    trace().span(t, t2, xenX86Taps().opHypercall, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t2, [t2, done] { done(t2); });
}

void
XenX86::irqControllerTrap(Cycles t, Vcpu &v, Done done)
{
    const Cycles t1 = trapToXen(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.apicEmulation);
    const Cycles t3 = resumeVm(t2, v);
    stats().counter("xen.irqchip_traps").inc();
    vmMetrics(v.vm()).histogram(xenX86Taps().trapIrqchip)
        .add(t3 - t);
    trace().span(t, t3, xenX86Taps().opIrqTrap, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

Cycles
XenX86::injectIntoRunning(Cycles t, Vcpu &v, Done done)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v && s.inGuest,
                   "injectIntoRunning: ", v.name(), " not running");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();

    Cycles c = cm.vmexitHw;
    c += cm.irqChipRegAccess; // APIC ack
    c += params.xenIrqDispatch;
    c += cm.irqChipRegAccess; // APIC EOI
    const IrqId virq = dist(v.vm()).popPending(v.id());
    if (virq >= 0)
        c += mach.apic().injectVirq(t, v.pcpu(), virq);
    c += cm.vmentryHw;
    c += cm.irqChipRegAccess + params.guestIrqDispatch;
    const IrqId acked = mach.apic().guestAckVirq(v.pcpu());

    const Cycles t1 = cpu.charge(t, c);
    queue().scheduleAt(t1, [t1, done] { done(t1); });
    // HVM guest EOI traps (no vAPIC): charged after the handler.
    if (acked >= 0 && !mach.apic().vApicEnabled()) {
        cpu.charge(t1, cm.vmexitHw + params.eoiEmulation +
                           cm.vmentryHw);
        stats().counter("xen.virq_complete_trap").inc();
    }
    return t1;
}

void
XenX86::injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done)
{
    dist(v.vm()).setPending(v.id(), virq);
    stats().counter("xen.virq_injected").inc();
    vmMetrics(v.vm()).counter(xenX86Taps().virqInjected).inc();

    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    if (s.current == &v && s.inGuest) {
        kickActions[static_cast<std::size_t>(v.pcpu())].push_back(
            [this, &v, done](Cycles th) {
                injectIntoRunning(th, v, done);
            });
        mach.apic().sendIpi(t, v.pcpu(), sgiRescheduleIrq);
        return;
    }
    kickActions[static_cast<std::size_t>(v.pcpu())].push_back(
        [this, &v, done](Cycles th) {
            const Cycles tr = ensureRunning(th, v);
            PhysicalCpu &cpu = mach.cpu(v.pcpu());
            const Cycles ta = cpu.charge(
                tr,
                mach.costs().irqChipRegAccess + params.guestIrqDispatch);
            mach.apic().guestAckVirq(v.pcpu());
            queue().scheduleAt(ta, [ta, done] { done(ta); });
        });
    mach.apic().sendIpi(t, v.pcpu(), sgiRescheduleIrq);
}

void
XenX86::virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done)
{
    VIRTSIM_ASSERT(src.pcpu() != dst.pcpu(),
                   "virtual IPI microbenchmark requires distinct pcpus");
    stats().counter("xen.virtual_ipis").inc();
    const Cycles t1 = trapToXen(t, src);
    PhysicalCpu &scpu = mach.cpu(src.pcpu());
    const Cycles t2 = scpu.charge(
        t1, params.apicEmulation + params.kickPath +
                mach.costs().irqChipRegAccess);
    Done wrapped = [this, t, track = static_cast<std::uint16_t>(src.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, xenX86Taps().opVipi, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t2, dst, sgiRescheduleIrq + 8, std::move(wrapped));
    resumeVm(t2, src);
}

void
XenX86::virqComplete(Cycles t, Vcpu &v, Done done)
{
    if (mach.apic().vApicEnabled()) {
        PhysicalCpu &cpu = mach.cpu(v.pcpu());
        const Cycles t1 =
            cpu.charge(t, mach.costs().irqChipRegAccess);
        stats().counter("xen.virq_complete_vapic").inc();
        queue().scheduleAt(t1, [t1, done] { done(t1); });
        return;
    }
    const Cycles t1 = trapToXen(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.eoiEmulation);
    const Cycles t3 = resumeVm(t2, v);
    stats().counter("xen.virq_complete_trap").inc();
    vmMetrics(v.vm()).histogram(xenX86Taps().trapEoi).add(t3 - t);
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
XenX86::vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done)
{
    VIRTSIM_ASSERT(from.pcpu() == to.pcpu(),
                   "vm switch is a same-pcpu operation");
    PhysicalCpu &cpu = mach.cpu(from.pcpu());
    const Cycles t1 = cpu.charge(t, mach.costs().vmexitHw);
    auto &s = sched[static_cast<std::size_t>(from.pcpu())];
    s.inGuest = false;
    from.setState(VcpuState::Idle);
    const Cycles t2 = switchDomains(t1, &from, to, true);
    stats().counter("xen.vm_switches").inc();
    vmMetrics(to.vm()).histogram(xenX86Taps().trapVmSwitch)
        .add(t2 - t);
    trace().span(t, t2, xenX86Taps().opVmSwitch, TraceCat::Op,
                 static_cast<std::uint16_t>(from.pcpu()));
    queue().scheduleAt(t2, [t2, done] { done(t2); });
}

void
XenX86::ioSignalOut(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_netback, "ioSignalOut requires an attached vNIC");
    const Cycles t1 = trapToXen(t, v);
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const Cycles t2 = cpu.charge(t1, evtchn->notify(portDom0));
    stats().counter("xen.io_signal_out").inc();

    Vcpu &d0 = dom0Vcpu();
    Done wrapped = [this, t, track = static_cast<std::uint16_t>(v.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, xenX86Taps().opIoOut, TraceCat::Op, track);
        done(ta);
    };
    kickActions[static_cast<std::size_t>(d0.pcpu())].push_back(
        [this, &d0, done = std::move(wrapped)](Cycles th) {
            const Cycles tr = ensureRunning(th, d0);
            PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
            const Cycles t3 = dcpu.charge(
                tr, mach.costs().irqChipRegAccess +
                        params.guestIrqDispatch + params.backendDequeue);
            mach.apic().guestAckVirq(d0.pcpu());
            queue().scheduleAt(t3, [t3, done] { done(t3); });
        });
    mach.apic().sendIpi(t2, d0.pcpu(), sgiRescheduleIrq);
    resumeVm(t2, v);
}

void
XenX86::ioSignalIn(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_netback, "ioSignalIn requires an attached vNIC");
    Vcpu &d0 = dom0Vcpu();
    const Cycles tr = ensureRunning(t, d0);
    const Cycles t1 = trapToXen(tr, d0);
    PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
    const Cycles t2 = dcpu.charge(t1, evtchn->notify(portDomU));
    stats().counter("xen.io_signal_in").inc();
    Done wrapped = [this, t, track = static_cast<std::uint16_t>(v.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, xenX86Taps().opIoIn, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t2, v, spiNicIrq, std::move(wrapped));
    resumeVm(t2, d0);
}

void
XenX86::declareShardChannels(ShardedEventKernel &kern)
{
    if (!_netback)
        return;
    const NetbackBackend::Params &np = _netback->params();
    // Same channel as Xen ARM: all netback work happens on Dom0's
    // CPU; only the tx kick crosses CPUs, via the IPI channels.
    _netback->bindWakeChannel(
        &kern.channel("netback.wake", cpuShard(np.dom0Pcpu),
                      cpuShard(np.dom0Pcpu), 0));
}

void
XenX86::attachVirtualNic(Vm &vm, NetbackBackend::Params np)
{
    VIRTSIM_ASSERT(!_netback, "only one virtual NIC supported");
    netVm = &vm;
    _netback = std::make_unique<NetbackBackend>(mach, *_dom0, vm, net,
                                                np);
    portDomU = evtchn->allocate();
    portDom0 = evtchn->allocate();
    for (int i = 0; i < 256; ++i) {
        PvRequest req;
        const BufferId buf = mach.memory().alloc(vm.name(), 4096);
        req.gref = _netback->grantTable().grant(buf, false);
        _netback->rxRing().frontPost(req);
    }
    mach.irqChip().routeExternal(spiNicIrq, np.dom0Pcpu);
}

void
XenX86::deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_netback && netVm == &vm,
                   "deliverPacketToVm: vm has no attached vNIC");
    _netback->dom0RxToDomU(t, pkt, true,
                           [this, &vm, pkt, done](Cycles tr) {
                               notifyGuestRx(tr, vm, pkt, done);
                           });
}

void
XenX86::notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    const VcpuId target = pickVirqTarget(vm);
    Vcpu &v = vm.vcpu(target);
    const int frames = framesFor(pkt.bytes);

    auto guest_pop = [this, &vm, pkt, frames, done, target](Cycles ti) {
        PhysicalCpu &vcpu_cpu = mach.cpu(vm.vcpu(target).pcpu());
        Cycles c = params.evtchnUpcall;
        for (int i = 0; i < frames; ++i) {
            bool ok = false;
            PvRequest resp;
            _netback->rxRing().frontPopResponse(resp, ok);
            if (ok)
                _netback->rxRing().frontPost(resp);
            c += params.guestDriverRxPop;
        }
        const Cycles tg = vcpu_cpu.charge(ti, c);
        queue().scheduleAt(tg, [this, tg, &vm, pkt, done] {
            if (onGuestRx)
                onGuestRx(tg, vm, pkt);
            done(tg);
        });
    };

    if (v.state() != VcpuState::Idle && t < rxQuietUntil) {
        // Event channel masked while the frontend polls the ring.
        stats().counter("xen.rx_event_suppressed").inc();
        guest_pop(t);
        return;
    }
    rxQuietUntil = t + mach.freq().cycles(2.5);

    PhysicalCpu &dcpu = mach.cpu(_netback->params().dom0Pcpu);
    const Cycles t1 = dcpu.charge(t, evtchn->notify(portDomU));
    injectVirq(t1, v, spiNicIrq,
               [guest_pop](Cycles ti) { guest_pop(ti); });
}

void
XenX86::guestTransmit(Cycles t, Vcpu &v, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_netback, "guestTransmit requires an attached vNIC");
    if (_netback->txRing().full()) {
        // Ring full: netfront blocks the frame until netback frees
        // slots (TCP backpressure).
        txBacklog.emplace_back(&v, std::make_pair(pkt, std::move(done)));
        stats().counter("xen.tx_backpressure").inc();
        return;
    }
    PhysicalCpu &cpu = mach.cpu(v.pcpu());

    const std::uint32_t pages4k = (pkt.bytes + 4095) / 4096;
    const Cycles grant_cost =
        static_cast<Cycles>(pages4k == 0 ? 1 : pages4k) *
        params.grantSetup;
    PvRequest req;
    req.pkt = pkt;
    const BufferId buf = mach.memory().alloc(v.vm().name(), pkt.bytes);
    req.gref = _netback->grantTable().grant(buf, true);
    const Cycles c = grant_cost + _netback->txRing().frontPost(req);
    const Cycles t0 = cpu.charge(t, c);
    txDone[pkt.seq] = std::move(done);
    txBufs[pkt.seq] = std::make_pair(req.gref, buf);

    if (txPumpActive) {
        stats().counter("xen.tx_kick_suppressed").inc();
        return;
    }

    const Cycles t1 = trapToXen(t0, v);
    const Cycles t2 = cpu.charge(t1, evtchn->notify(portDom0));
    resumeVm(t2, v);

    Vcpu &d0 = dom0Vcpu();
    txPumpActive = true;
    kickActions[static_cast<std::size_t>(d0.pcpu())].push_back(
        [this, &d0](Cycles th) {
            const Cycles tr = ensureRunning(th, d0);
            PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
            const Cycles t3 = dcpu.charge(
                tr, mach.costs().irqChipRegAccess +
                        params.guestIrqDispatch + params.backendDequeue);
            mach.apic().guestAckVirq(d0.pcpu());
            _netback->markTxKick();
            pumpTx(t3);
        });
    mach.apic().sendIpi(t2, d0.pcpu(), sgiRescheduleIrq);
}

void
XenX86::pumpTx(Cycles t)
{
    if (_netback->txRing().requestDepth() == 0) {
        txPumpActive = false;
        scheduleDom0IdleCheck(t);
        return;
    }
    _netback->domUTx(t, [this](Cycles td, const Packet &pkt) {
        auto it = txDone.find(pkt.seq);
        if (it != txDone.end()) {
            Done done = std::move(it->second);
            txDone.erase(it);
            done(td);
        }
        auto bit = txBufs.find(pkt.seq);
        if (bit != txBufs.end()) {
            _netback->grantTable().end(bit->second.first);
            mach.memory().free(bit->second.second);
            txBufs.erase(bit);
        }
        mach.nic().transmit(td, pkt);
        while (!txBacklog.empty() && !_netback->txRing().full()) {
            auto item = std::move(txBacklog.front());
            txBacklog.pop_front();
            guestTransmit(td, *item.first, item.second.first,
                          std::move(item.second.second));
        }
        pumpTx(td);
    });
}

Vcpu &
XenX86::dom0Vcpu()
{
    return _dom0->vcpu(0);
}

void
XenX86::scheduleDom0IdleCheck(Cycles t)
{
    Vcpu &d0 = dom0Vcpu();
    const PcpuId p = d0.pcpu();
    const std::uint64_t gen = ++idleGen;
    const Cycles grace = mach.freq().cycles(20.0);
    queue().scheduleAt(t + grace, [this, p, gen, &d0] {
        if (idleGen != gen)
            return;
        auto &s = sched[static_cast<std::size_t>(p)];
        if (s.current != &d0)
            return;
        if (mach.cpu(p).frontier() > queue().now()) {
            // Work arrived (or is still draining) since the check
            // was armed: try again once the queue quiesces.
            scheduleDom0IdleCheck(mach.cpu(p).frontier());
            return;
        }
        s.current = nullptr;
        s.inGuest = false;
        d0.setState(VcpuState::Idle);
        d0.setLoaded(false);
        mach.cpu(p).setContext("idle-domain");
        stats().counter("xen.dom0_blocked").inc();
    });
}

void
XenX86::onPhysIrq(Cycles t, PcpuId cpu, IrqId irq)
{
    if (irq == sgiRescheduleIrq) {
        handleKick(t, cpu);
        return;
    }
    if (irq == spiNicIrq) {
        handleNicIrq(t, cpu);
        return;
    }
    stats().counter("xen.unhandled_phys_irq").inc();
}

void
XenX86::handleKick(Cycles t, PcpuId cpu)
{
    auto &q = kickActions[static_cast<std::size_t>(cpu)];
    if (q.empty()) {
        stats().counter("xen.spurious_kick").inc();
        return;
    }
    auto action = std::move(q.front());
    q.pop_front();
    action(t);
}

void
XenX86::handleNicIrq(Cycles t, PcpuId cpu)
{
    if (!netVm)
        return;
    PhysicalCpu &xcpu = mach.cpu(cpu);
    const CostModel &cm = mach.costs();
    const Cycles t1 = xcpu.charge(
        t, cm.irqChipRegAccess + params.xenIrqDispatch +
               cm.irqChipRegAccess);

    Vcpu &d0 = dom0Vcpu();
    const Cycles t2 = ensureRunning(t1, d0);
    PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
    const Cycles t3 = dcpu.charge(
        t2, cm.irqChipRegAccess + net.irqPath);
    mach.apic().guestAckVirq(d0.pcpu());

    const auto aggs = groDrain(mach.nic(), net.groFrames);
    Cycles tcur = t3;
    for (const auto &agg : aggs) {
        if (onHostDatalinkRx)
            onHostDatalinkRx(tcur, agg);
        deliverPacketToVm(tcur, *netVm, agg, [](Cycles) {});
        tcur = dcpu.frontier();
    }
    scheduleDom0IdleCheck(dcpu.frontier());
}


void
XenX86::forceDom0Running()
{
    Vcpu &d0 = dom0Vcpu();
    auto &s = sched[static_cast<std::size_t>(d0.pcpu())];
    s.current = &d0;
    s.inGuest = true;
    d0.setLoaded(true);
    d0.setState(VcpuState::Running);
    mach.cpu(d0.pcpu()).setContext(d0.name());
}

void
XenX86::forceDom0Idle()
{
    Vcpu &d0 = dom0Vcpu();
    auto &s = sched[static_cast<std::size_t>(d0.pcpu())];
    s.current = nullptr;
    s.inGuest = false;
    d0.setLoaded(false);
    d0.setState(VcpuState::Idle);
    mach.cpu(d0.pcpu()).setContext("idle-domain");
}


void
XenX86::blockVcpu(Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v,
                   "blockVcpu: ", v.name(), " not current");
    // Guest blocked: Xen schedules the idle domain onto the PCPU.
    s.current = nullptr;
    s.inGuest = false;
    v.setLoaded(false);
    v.setState(VcpuState::Idle);
    mach.cpu(v.pcpu()).setContext("idle-domain");
    stats().counter("xen.vcpu_blocked").inc();
}

} // namespace virtsim
