/**
 * @file
 * Virtual machines and virtual CPUs.
 *
 * A Vm owns VCPUs, Stage-2 tables and software interrupt state. The
 * VCPU save area is a real RegFile: world switches move actual
 * register values between it and the physical CPU, so isolation and
 * state-preservation are testable properties, not assumptions.
 *
 * Xen's special domains are ordinary Vms with a different kind: Dom0
 * (privileged, runs the I/O backends) and the idle domain (what a
 * physical CPU runs when no real domain is runnable — switching away
 * from it is a real cost the paper identifies on Xen's I/O paths).
 */

#ifndef VIRTSIM_HV_VM_HH
#define VIRTSIM_HV_VM_HH

#include <memory>
#include <string>
#include <vector>

#include "hw/cpu.hh"
#include "hw/mmu.hh"
#include "sim/types.hh"

namespace virtsim {

class Vm;

/** What a VCPU is currently doing. */
enum class VcpuState
{
    Running, ///< executing guest code on its physical CPU
    Idle,    ///< guest is idle (WFI / blocked); PCPU may run others
    InHyp,   ///< trapped; the hypervisor is handling an exit
};

/**
 * A virtual CPU, pinned to a physical CPU (the paper pins every VCPU
 * to a dedicated PCPU per Section III's methodology).
 */
class Vcpu
{
  public:
    Vcpu(Vm &vm, VcpuId id, PcpuId pinned);

    Vm &vm() const { return *_vm; }
    VcpuId id() const { return _id; }
    PcpuId pcpu() const { return _pcpu; }

    VcpuState state() const { return _state; }
    void setState(VcpuState s) { _state = s; }

    /** In-memory register save area used while not loaded. */
    RegFile &savedRegs() { return _saved; }
    const RegFile &savedRegs() const { return _saved; }

    /** Whether this VCPU's state is live on its physical CPU. */
    bool loaded() const { return _loaded; }
    void setLoaded(bool l) { _loaded = l; }

    /** Debug name like "vm1/vcpu0". */
    std::string name() const;

  private:
    Vm *_vm;
    VcpuId _id;
    PcpuId _pcpu;
    VcpuState _state = VcpuState::Idle;
    RegFile _saved;
    bool _loaded = false;
};

/** Role of a VM in the system. */
enum class VmKind
{
    Guest, ///< ordinary VM (Xen DomU / KVM guest)
    Dom0,  ///< Xen privileged I/O domain
    Idle,  ///< Xen idle domain
};

/**
 * A virtual machine.
 */
class Vm
{
  public:
    Vm(VmId id, std::string name, VmKind kind, int n_vcpus,
       const std::vector<PcpuId> &pinning);

    Vm(const Vm &) = delete;
    Vm &operator=(const Vm &) = delete;

    VmId id() const { return _id; }
    const std::string &name() const { return _name; }
    VmKind kind() const { return _kind; }

    int numVcpus() const { return static_cast<int>(vcpus.size()); }
    Vcpu &vcpu(VcpuId id);
    const Vcpu &vcpu(VcpuId id) const;

    Stage2Tables &stage2() { return _stage2; }

    /** Software-pending virtual interrupts per VCPU, maintained by
     *  the hypervisor's distributor emulation (see hv/vgic.hh). */
    std::vector<std::vector<IrqId>> &pendingVirqs() { return _pending; }

  private:
    VmId _id;
    std::string _name;
    VmKind _kind;
    std::vector<std::unique_ptr<Vcpu>> vcpus;
    Stage2Tables _stage2;
    std::vector<std::vector<IrqId>> _pending;
};

} // namespace virtsim

#endif // VIRTSIM_HV_VM_HH
