/**
 * @file
 * The world-switch engine: saving and restoring register state between
 * physical CPUs and in-memory save areas, with per-class cycle
 * accounting.
 *
 * This is the mechanism behind the paper's central architectural
 * observation: ARM leaves the *choice* of what to switch to software.
 * Xen ARM switches only GP registers on a hypercall; split-mode KVM
 * ARM must switch everything (Table III); VHE lets a Type 2 hypervisor
 * switch almost nothing. The engine both moves the actual register
 * values (so tests can check isolation) and returns the cycle cost,
 * and emits one trace span per register class into an attached
 * TraceSink — which is exactly how the Table III bench gets its
 * numbers.
 */

#ifndef VIRTSIM_HV_WORLD_SWITCH_HH
#define VIRTSIM_HV_WORLD_SWITCH_HH

#include <initializer_list>
#include <optional>

#include "hw/cost_model.hh"
#include "hw/cpu.hh"
#include "sim/probe.hh"
#include "sim/types.hh"

namespace virtsim {

/** What a world-switch span tap stands for, recovered from its id. */
struct SwitchTapInfo
{
    RegClass cls;
    bool isSave;
};

/** Interned tap for one (register class, save/restore) leg; e.g.
 *  "ws.save.Vgic". Stable across calls. */
TapId switchTap(RegClass cls, bool isSave);

/** Reverse of switchTap: nullopt if the tap is not a switch leg. */
std::optional<SwitchTapInfo> switchTapInfo(TapId tap);

/**
 * Moves register state and accounts cycles.
 */
class WorldSwitchEngine
{
  public:
    explicit WorldSwitchEngine(const CostModel &cm) : cm(cm) {}

    /**
     * Attach the sink that receives per-class spans (category
     * TraceCat::Switch, one span per register class, tracked on the
     * CPU's id). Pass nullptr to detach. The sink must outlive the
     * engine's use of it.
     */
    void attachTrace(TraceSink *sink) { trace = sink; }

    /**
     * Save the listed register classes from the CPU's live registers
     * into a save area. When a sink is attached and enabled, each
     * class emits a span starting at t (the simulated time the switch
     * begins; legs are laid out back to back in class order).
     * @return total cycle cost (the caller charges it to the CPU).
     */
    Cycles save(PhysicalCpu &cpu, RegFile &save_area,
                std::initializer_list<RegClass> classes, Cycles t = 0);

    /** Restore the listed classes from a save area into the CPU. */
    Cycles restore(PhysicalCpu &cpu, const RegFile &save_area,
                   std::initializer_list<RegClass> classes,
                   Cycles t = 0);

    const CostModel &costs() const { return cm; }

  private:
    const CostModel &cm;
    TraceSink *trace = nullptr;
};

/** The full ARM VM state a split-mode Type 2 hypervisor must switch
 *  on every transition (paper Section IV, Table III). */
inline constexpr std::initializer_list<RegClass> kvmArmSwitchedState = {
    RegClass::Gp,        RegClass::Fp,       RegClass::El1Sys,
    RegClass::Vgic,      RegClass::Timer,    RegClass::El2Config,
    RegClass::El2VirtMem,
};

/** What Xen ARM switches on a plain hypercall: GP registers only. */
inline constexpr std::initializer_list<RegClass> xenHypercallState = {
    RegClass::Gp,
};

/** The EL1 state Xen ARM switches when switching *between VMs*
 *  (it shares none of it with a host OS, but a different VM needs its
 *  own EL1 world — paper Section IV, VM Switch discussion). */
inline constexpr std::initializer_list<RegClass> xenVmSwitchState = {
    RegClass::Gp,        RegClass::Fp,    RegClass::El1Sys,
    RegClass::Vgic,      RegClass::Timer, RegClass::El2Config,
    RegClass::El2VirtMem,
};

} // namespace virtsim

#endif // VIRTSIM_HV_WORLD_SWITCH_HH
