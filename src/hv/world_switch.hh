/**
 * @file
 * The world-switch engine: saving and restoring register state between
 * physical CPUs and in-memory save areas, with per-class cycle
 * accounting.
 *
 * This is the mechanism behind the paper's central architectural
 * observation: ARM leaves the *choice* of what to switch to software.
 * Xen ARM switches only GP registers on a hypercall; split-mode KVM
 * ARM must switch everything (Table III); VHE lets a Type 2 hypervisor
 * switch almost nothing. The engine both moves the actual register
 * values (so tests can check isolation) and returns the cycle cost,
 * and can record a per-class breakdown — which is exactly how the
 * Table III bench gets its numbers.
 */

#ifndef VIRTSIM_HV_WORLD_SWITCH_HH
#define VIRTSIM_HV_WORLD_SWITCH_HH

#include <initializer_list>
#include <vector>

#include "hw/cost_model.hh"
#include "hw/cpu.hh"
#include "sim/types.hh"

namespace virtsim {

/** One recorded save or restore of one register class. */
struct SwitchRecord
{
    RegClass cls;
    bool isSave;
    Cycles cost;
};

/**
 * Moves register state and accounts cycles.
 */
class WorldSwitchEngine
{
  public:
    explicit WorldSwitchEngine(const CostModel &cm) : cm(cm) {}

    /**
     * Save the listed register classes from the CPU's live registers
     * into a save area.
     * @return total cycle cost (the caller charges it to the CPU).
     */
    Cycles save(PhysicalCpu &cpu, RegFile &save_area,
                std::initializer_list<RegClass> classes);

    /** Restore the listed classes from a save area into the CPU. */
    Cycles restore(PhysicalCpu &cpu, const RegFile &save_area,
                   std::initializer_list<RegClass> classes);

    /** @name Breakdown recording (Table III) */
    ///@{
    /** Start recording per-class costs. Clears prior records. */
    void startRecording();
    void stopRecording();
    const std::vector<SwitchRecord> &records() const { return recs; }
    ///@}

    const CostModel &costs() const { return cm; }

  private:
    const CostModel &cm;
    bool recording = false;
    std::vector<SwitchRecord> recs;
};

/** The full ARM VM state a split-mode Type 2 hypervisor must switch
 *  on every transition (paper Section IV, Table III). */
inline constexpr std::initializer_list<RegClass> kvmArmSwitchedState = {
    RegClass::Gp,        RegClass::Fp,       RegClass::El1Sys,
    RegClass::Vgic,      RegClass::Timer,    RegClass::El2Config,
    RegClass::El2VirtMem,
};

/** What Xen ARM switches on a plain hypercall: GP registers only. */
inline constexpr std::initializer_list<RegClass> xenHypercallState = {
    RegClass::Gp,
};

/** The EL1 state Xen ARM switches when switching *between VMs*
 *  (it shares none of it with a host OS, but a different VM needs its
 *  own EL1 world — paper Section IV, VM Switch discussion). */
inline constexpr std::initializer_list<RegClass> xenVmSwitchState = {
    RegClass::Gp,        RegClass::Fp,    RegClass::El1Sys,
    RegClass::Vgic,      RegClass::Timer, RegClass::El2Config,
    RegClass::El2VirtMem,
};

} // namespace virtsim

#endif // VIRTSIM_HV_WORLD_SWITCH_HH
