/**
 * @file
 * Xen x86: the Type 1 hypervisor on VT-x.
 *
 * On x86 the Type 1 / Type 2 distinction loses its ARM-specific
 * transition asymmetry: Xen and KVM use the identical hardware
 * VMCS mechanism, so their hypercall costs are nearly equal
 * (1,228 vs 1,300 cycles, Table II). What remains is Xen's software
 * architecture: Dom0-mediated I/O with event channels, idle-domain
 * switches and grant copies — plus a notably heavyweight domain
 * context switch (10,534 cycles, the slowest VM Switch of all four
 * hypervisors).
 *
 * The paper could not run Apache on Xen x86 at all (a Mellanox
 * driver bug in Dom0 exposed by Xen's I/O model caused a kernel
 * panic); the model reproduces that as a configurable fault so the
 * Figure 4 bench reports the same N/A.
 */

#ifndef VIRTSIM_HV_XEN_X86_HH
#define VIRTSIM_HV_XEN_X86_HH

#include <deque>
#include <map>
#include <memory>

#include "hv/hypervisor.hh"
#include "hv/xen_pv.hh"
#include "os/netback.hh"
#include "os/netstack.hh"

namespace virtsim {

/** Software path costs of Xen x86 4.5. */
struct XenX86Params
{
    /** Hypercall decode + no-op handler. [derived] Hypercall
     *  (1,228) minus hardware exit+entry. */
    Cycles hypercallDispatch = 28;
    /** No-op hypercall handler body. [derived] Hypercall (1,228). */
    Cycles hypercallHandler = 60;
    /** APIC emulation. [derived] Interrupt Controller Trap (1,734). */
    Cycles apicEmulation = 566;
    /** Kick path after ICR emulation: event checks, softirq
     *  processing. [derived] closes Virtual IPI (5,562). */
    Cycles kickPath = 2358;
    /** EOI-exit emulation. [derived] Virtual IRQ Completion (1,464). */
    Cycles eoiEmulation = 296;
    /** Xen's do_IRQ body for a physical interrupt. */
    Cycles xenIrqDispatch = 150;
    /** Credit-scheduler + full domain state sync on a switch:
    *   [derived] VM Switch (10,534) — by far the heaviest of the
    *   four hypervisors. */
    Cycles schedWork = 9274;
    /** Waking a blocked domain from idle. [derived] I/O Latency
     *  rows (11,262 / 10,050). */
    Cycles domainWakeFromIdle = 8550;
    Cycles guestIrqDispatch = 100;
    Cycles backendDequeue = 510;
    Cycles guestDriverRxPop = 760;
    /** Guest-side event-channel upcall demux (see XenArmParams). */
    Cycles evtchnUpcall = 4620; // ~2.2 us at 2.1 GHz
    Cycles grantSetup = 380;
    /**
     * Reproduces the paper's Dom0 kernel panic: the Mellanox driver
     * bug surfaced under Apache's workload pattern on Xen x86. When
     * a workload marks itself as triggering it, the appbench reports
     * N/A instead of a number.
     */
    bool dom0MellanoxBug = true;
};

/**
 * The Xen x86 hypervisor model.
 */
class XenX86 : public Hypervisor
{
  public:
    explicit XenX86(Machine &m);

    std::string name() const override { return "Xen x86"; }
    HvType type() const override { return HvType::Type1; }

    Vm &createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning) override;
    void start() override;
    TapId worldSwitchTap() const override;
    void declareShardChannels(ShardedEventKernel &kern) override;

    void hypercall(Cycles t, Vcpu &v, Done done) override;
    void irqControllerTrap(Cycles t, Vcpu &v, Done done) override;
    void virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done) override;
    void virqComplete(Cycles t, Vcpu &v, Done done) override;
    void vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done) override;
    void ioSignalOut(Cycles t, Vcpu &v, Done done) override;
    void ioSignalIn(Cycles t, Vcpu &v, Done done) override;
    void injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done) override;
    void blockVcpu(Vcpu &v) override;
    void deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt,
                           Done done) override;
    void guestTransmit(Cycles t, Vcpu &v, const Packet &pkt,
                       Done done) override;

    /** @name VT-x primitives (public for tests) */
    ///@{
    Cycles trapToXen(Cycles t, Vcpu &v);
    Cycles resumeVm(Cycles t, Vcpu &v);
    Cycles switchDomains(Cycles t, Vcpu *from, Vcpu &to,
                         bool charge_sched = true);
    ///@}

    Vm &dom0() { return *_dom0; }

    void attachVirtualNic(Vm &vm, NetbackBackend::Params params);

    /** @name Test/bench scaffolding
     *  Force Dom0's scheduling state without charging cycles, so a
     *  measurement can start from a known state (the paper's
     *  microbenchmark loops naturally settle into these states
     *  between iterations). */
    ///@{
    void forceDom0Running();
    void forceDom0Idle();
    ///@}

    NetbackBackend *netback() { return _netback.get(); }
    const NetstackCosts &netCosts() const { return net; }

    XenX86Params params;

  protected:
    struct PcpuSched
    {
        Vcpu *current = nullptr;
        bool inGuest = false;
    };

    VgicDistributor &dist(Vm &vm);
    void onPhysIrq(Cycles t, PcpuId cpu, IrqId irq);
    void handleNicIrq(Cycles t, PcpuId cpu);
    void handleKick(Cycles t, PcpuId cpu);
    Cycles ensureRunning(Cycles t, Vcpu &v);
    Cycles injectIntoRunning(Cycles t, Vcpu &v, Done done);
    void notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done);
    void pumpTx(Cycles t);
    Vcpu &dom0Vcpu();
    void scheduleDom0IdleCheck(Cycles t);

    std::unique_ptr<Vm> _dom0;
    std::map<VmId, std::unique_ptr<VgicDistributor>> dists;
    std::vector<PcpuSched> sched;
    std::vector<std::deque<std::function<void(Cycles)>>> kickActions;
    std::unique_ptr<NetbackBackend> _netback;
    std::unique_ptr<EventChannel> evtchn;
    int portDomU = -1;
    int portDom0 = -1;
    Vm *netVm = nullptr;
    NetstackCosts net;
    std::map<std::uint64_t, Done> txDone;
    std::map<std::uint64_t, std::pair<GrantRef, BufferId>> txBufs;
    bool txPumpActive = false;
    /** End of the current NAPI-poll window: rx events landing
     *  inside it ride the in-progress notification instead of
     *  raising another interrupt (virtio EVENT_IDX / event-channel
     *  masking). */
    Cycles rxQuietUntil = 0;
    /** Frames waiting for tx ring space (netfront backpressure). */
    std::deque<std::pair<Vcpu *, std::pair<Packet, Done>>> txBacklog;
    std::uint64_t idleGen = 0;
};

} // namespace virtsim

#endif // VIRTSIM_HV_XEN_X86_HH
