/**
 * @file
 * Xen PV transport: shared-memory I/O rings between a DomU frontend
 * and the Dom0 backend, plus event channels for notification.
 *
 * Unlike virtio (hv/virtio.hh), a request's payload is not directly
 * reachable by the backend: each request carries a grant reference
 * and the backend must map or grant-copy it (hv/grant_table.hh) —
 * Xen's strict I/O isolation policy, which the paper identifies as
 * the root cause of its I/O overheads.
 */

#ifndef VIRTSIM_HV_XEN_PV_HH
#define VIRTSIM_HV_XEN_PV_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/machine.hh"
#include "hw/nic.hh"
#include "hv/grant_table.hh"
#include "sim/types.hh"

namespace virtsim {

/** One PV ring request/response. */
struct PvRequest
{
    GrantRef gref = -1;
    Packet pkt{};
};

/**
 * A Xen PV I/O ring (one direction).
 */
class XenPvRing
{
  public:
    XenPvRing(Machine &m, std::size_t capacity = 256);

    /** Frontend (DomU) posts a request. @return cycle cost. */
    Cycles frontPost(const PvRequest &req);

    /** Backend (Dom0) pops a request. */
    Cycles backPop(PvRequest &out, bool &ok);

    /** Backend pushes a response. */
    Cycles backRespond(const PvRequest &req);

    /** Frontend reaps a response. */
    Cycles frontPopResponse(PvRequest &out, bool &ok);

    std::size_t requestDepth() const { return reqs.size(); }
    std::size_t responseDepth() const { return resps.size(); }
    bool full() const { return reqs.size() >= capacity; }

    Cycles ringOpCost() const;

  private:
    Machine &mach;
    std::size_t capacity;
    std::deque<PvRequest> reqs;
    std::deque<PvRequest> resps;
};

/**
 * Xen event channels: the notification fabric between domains and
 * the hypervisor. Setting a pending bit is cheap; the expensive part
 * — possibly having to schedule the target domain in from the idle
 * domain — is charged by XenArm/XenX86 when delivering.
 */
class EventChannel
{
  public:
    explicit EventChannel(Machine &m);

    /** Allocate a channel between two endpoints. @return port. */
    int allocate();

    /** Mark the port pending. @return cycle cost of the set. */
    Cycles notify(int port);

    /** Consume a pending port. @return true if it was pending. */
    bool consume(int port);

    bool pending(int port) const;

  private:
    Machine &mach;
    std::vector<bool> bits;
};

} // namespace virtsim

#endif // VIRTSIM_HV_XEN_PV_HH
