#include "hv/xen_pv.hh"

#include "sim/log.hh"

namespace virtsim {

XenPvRing::XenPvRing(Machine &m, std::size_t capacity)
    : mach(m), capacity(capacity)
{
}

Cycles
XenPvRing::frontPost(const PvRequest &req)
{
    VIRTSIM_ASSERT(!full(), "PV ring overflow");
    reqs.push_back(req);
    mach.stats().counter("xenpv.front_post").inc();
    return ringOpCost();
}

Cycles
XenPvRing::backPop(PvRequest &out, bool &ok)
{
    if (reqs.empty()) {
        ok = false;
        return 0;
    }
    out = reqs.front();
    reqs.pop_front();
    ok = true;
    mach.stats().counter("xenpv.back_pop").inc();
    return ringOpCost() + mach.costs().cacheLineTransfer;
}

Cycles
XenPvRing::backRespond(const PvRequest &req)
{
    resps.push_back(req);
    mach.stats().counter("xenpv.back_respond").inc();
    return ringOpCost();
}

Cycles
XenPvRing::frontPopResponse(PvRequest &out, bool &ok)
{
    if (resps.empty()) {
        ok = false;
        return 0;
    }
    out = resps.front();
    resps.pop_front();
    ok = true;
    return ringOpCost();
}

Cycles
XenPvRing::ringOpCost() const
{
    // [calibrated] shared ring descriptor + producer index update.
    return 110;
}

EventChannel::EventChannel(Machine &m) : mach(m)
{
}

int
EventChannel::allocate()
{
    bits.push_back(false);
    return static_cast<int>(bits.size()) - 1;
}

Cycles
EventChannel::notify(int port)
{
    VIRTSIM_ASSERT(port >= 0 &&
                   static_cast<std::size_t>(port) < bits.size(),
                   "bad event channel port ", port);
    bits[static_cast<std::size_t>(port)] = true;
    mach.stats().counter("xenpv.evtchn_notify").inc();
    // Setting the pending bit in the shared info page.
    return 70;
}

bool
EventChannel::consume(int port)
{
    VIRTSIM_ASSERT(port >= 0 &&
                   static_cast<std::size_t>(port) < bits.size(),
                   "bad event channel port ", port);
    const bool was = bits[static_cast<std::size_t>(port)];
    bits[static_cast<std::size_t>(port)] = false;
    return was;
}

bool
EventChannel::pending(int port) const
{
    return port >= 0 && static_cast<std::size_t>(port) < bits.size() &&
           bits[static_cast<std::size_t>(port)];
}

} // namespace virtsim
