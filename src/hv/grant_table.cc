#include "hv/grant_table.hh"

#include "sim/log.hh"

namespace virtsim {

namespace {

struct GrantTaps
{
    TapId map = internTap("grant.map");
    TapId unmap = internTap("grant.unmap");
    TapId copy = internTap("grant.copy");
};

const GrantTaps &
grantTaps()
{
    static const GrantTaps taps;
    return taps;
}

} // namespace

GrantTable::GrantTable(Machine &m, Vm &granter)
    : mach(m), granter(granter)
{
}

GrantRef
GrantTable::grant(BufferId buf, bool readonly)
{
    VIRTSIM_ASSERT(mach.memory().valid(buf), "granting invalid buffer");
    VIRTSIM_ASSERT(mach.memory().owner(buf) == granter.name(),
                   "vm ", granter.name(), " granting buffer it does not"
                   " own (owner: ", mach.memory().owner(buf), ")");
    const GrantRef ref = nextRef++;
    grants[ref] = Entry{buf, readonly, false};
    mach.stats().counter("grant.granted").inc();
    return ref;
}

void
GrantTable::end(GrantRef ref)
{
    auto it = grants.find(ref);
    VIRTSIM_ASSERT(it != grants.end(), "ending unknown grant ", ref);
    VIRTSIM_ASSERT(!it->second.mapped,
                   "ending grant ", ref, " while still mapped");
    grants.erase(it);
}

Cycles
GrantTable::map(GrantRef ref)
{
    auto it = grants.find(ref);
    VIRTSIM_ASSERT(it != grants.end(), "mapping unknown grant ", ref);
    VIRTSIM_ASSERT(!it->second.mapped, "double map of grant ", ref);
    it->second.mapped = true;
    mach.stats().counter("grant.maps").inc();
    mach.trace().instant(mach.queue().now(), grantTaps().map,
                         TraceCat::Io, noTrack,
                         static_cast<std::uint64_t>(ref));
    return grantMapFixedCost();
}

Cycles
GrantTable::unmap(GrantRef ref)
{
    auto it = grants.find(ref);
    VIRTSIM_ASSERT(it != grants.end(), "unmapping unknown grant ", ref);
    VIRTSIM_ASSERT(it->second.mapped, "unmap of unmapped grant ", ref);
    it->second.mapped = false;
    mach.stats().counter("grant.unmaps").inc();
    mach.trace().instant(mach.queue().now(), grantTaps().unmap,
                         TraceCat::Io, noTrack,
                         static_cast<std::uint64_t>(ref));
    // Removing the mapping requires invalidating any cached
    // translation on every physical CPU before the page can be
    // considered private again.
    const Cycles tlb = mach.mmu().invalidatePageBroadcast(
        granter.id(), static_cast<Ipa>(it->second.buf));
    return grantUnmapFixedCost() + tlb;
}

Cycles
GrantTable::copy(GrantRef ref, std::uint32_t bytes)
{
    auto it = grants.find(ref);
    VIRTSIM_ASSERT(it != grants.end(), "copy via unknown grant ", ref);
    mach.stats().counter("grant.copies").inc();
    mach.trace().instant(mach.queue().now(), grantTaps().copy,
                         TraceCat::Io, noTrack, bytes);
    return grantCopyFixedCost() + mach.memory().copyCost(bytes);
}

bool
GrantTable::isMapped(GrantRef ref) const
{
    auto it = grants.find(ref);
    return it != grants.end() && it->second.mapped;
}

Cycles
GrantTable::grantCopyFixedCost() const
{
    // [calibrated] Table V analysis: "Each data copy incurs more than
    // 3 us of additional latency ... even though only a single byte
    // needs to be copied". 3 us at 2.4 GHz = 7,200 cycles; the
    // fixed part (hypercall into Xen, grant validation, temporary
    // kernel mapping) is most of it.
    return mach.costs().freq.cycles(3.2);
}

Cycles
GrantTable::grantMapFixedCost() const
{
    return mach.costs().freq.cycles(0.7);
}

Cycles
GrantTable::grantUnmapFixedCost() const
{
    return mach.costs().freq.cycles(0.5);
}

} // namespace virtsim
