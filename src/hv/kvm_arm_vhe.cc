#include "hv/kvm_arm_vhe.hh"

#include "sim/log.hh"

namespace virtsim {

namespace {

struct VheTaps
{
    TapId exit = internTap("kvm.exit");
    TapId enter = internTap("kvm.enter");
    TapId worldSwitch = internTap("kvm.world_switch");
    TapId trapVmSwitch = internTap("kvm.trap.vm_switch");
    TapId opVmSwitch = internTap("op.vm_switch");
};

const VheTaps &
vheTaps()
{
    static const VheTaps taps;
    return taps;
}

} // namespace

KvmArmVhe::KvmArmVhe(Machine &m) : KvmArm(m)
{
}

TapId
KvmArmVhe::worldSwitchTap() const
{
    return vheTaps().worldSwitch;
}

Cycles
KvmArmVhe::exitToHost(Cycles t, Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(ctx.inVm && ctx.loaded == &v,
                   "exitToHost: ", v.name(), " not running on pcpu ",
                   v.pcpu());
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();

    // The trap lands directly in the EL2-resident host kernel. The
    // guest's EL1 system registers, VGIC and timer state stay live:
    // the host's own state is backed by the extra EL2 registers, so
    // nothing but the GP registers needs to reach memory (Section
    // VI: "trapping from EL1 to EL2 does not require saving and
    // restoring state beyond general purpose registers").
    const Cycles c = cm.trapToEl2 + vheDispatch +
                     wse.save(cpu, v.savedRegs(), {RegClass::Gp},
                              t + cm.trapToEl2 + vheDispatch);

    ctx.inVm = false;
    v.setState(VcpuState::InHyp);
    cpu.setMode(CpuMode::El2);
    cpu.setContext("host-el2");
    stats().counter("kvm.vm_exits").inc();
    const Cycles tr = cpu.charge(t, c);
    const VheTaps &taps = vheTaps();
    trace().span(t, tr, taps.exit, TraceCat::Switch,
                 static_cast<std::uint16_t>(v.pcpu()), c);
    vmMetrics(v.vm()).counter(taps.worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(taps.worldSwitch).inc();
    return tr;
}

Cycles
KvmArmVhe::enterVm(Cycles t, Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(!ctx.inVm, "enterVm: pcpu ", v.pcpu(),
                   " already in a VM");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();

    // Flush any software-pending virqs, restore GP, eret.
    Cycles flush = 0;
    VgicDistributor &d = dist(v.vm());
    while (d.hasPending(v.id())) {
        const IrqId virq = d.popPending(v.id());
        if (mach.gic().injectVirq(t, v.pcpu(), virq) < 0) {
            d.setPending(v.id(), virq);
            break;
        }
        flush += mach.gic().lrWriteCost();
    }
    const Cycles c =
        flush +
        wse.restore(cpu, v.savedRegs(), {RegClass::Gp}, t + flush) +
        cm.eretToEl1;

    ctx.inVm = true;
    ctx.loaded = &v;
    v.setLoaded(true);
    v.setState(VcpuState::Running);
    cpu.setMode(CpuMode::El1);
    cpu.setContext(v.name());
    stats().counter("kvm.vm_entries").inc();
    const Cycles tr = cpu.charge(t, c);
    const VheTaps &taps = vheTaps();
    trace().span(t, tr, taps.enter, TraceCat::Switch,
                 static_cast<std::uint16_t>(v.pcpu()), c);
    vmMetrics(v.vm()).counter(taps.worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(taps.worldSwitch).inc();
    return tr;
}

void
KvmArmVhe::vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done)
{
    VIRTSIM_ASSERT(from.pcpu() == to.pcpu(),
                   "vm switch is a same-pcpu operation");
    // Between two VMs the full EL1 world must still move: VHE only
    // removed the *host* from EL1.
    const Cycles t1 = exitToHost(t, from);
    from.setState(VcpuState::Idle);
    from.setLoaded(false);
    PhysicalCpu &cpu = mach.cpu(from.pcpu());
    Cycles c = wse.save(cpu, from.savedRegs(),
                        {RegClass::Fp, RegClass::El1Sys, RegClass::Vgic,
                         RegClass::Timer, RegClass::El2Config,
                         RegClass::El2VirtMem}, t1);
    c += params.vcpuSwitchWork;
    c += wse.restore(cpu, to.savedRegs(),
                     {RegClass::Fp, RegClass::El1Sys, RegClass::Vgic,
                      RegClass::Timer, RegClass::El2Config,
                      RegClass::El2VirtMem},
                     t1 + c);
    const Cycles t2 = cpu.charge(t1, c);
    const Cycles t3 = enterVm(t2, to);
    stats().counter("kvm.vm_switches").inc();
    vmMetrics(to.vm()).histogram(vheTaps().trapVmSwitch).add(t3 - t);
    trace().span(t, t3, vheTaps().opVmSwitch, TraceCat::Op,
                 static_cast<std::uint16_t>(from.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

} // namespace virtsim
