#include "hv/kvm_arm.hh"

#include "os/kernel.hh"
#include "sim/log.hh"

namespace virtsim {

namespace {

/** KVM instrumentation taps, interned once per process. */
struct KvmTaps
{
    TapId exit = internTap("kvm.exit");
    TapId enter = internTap("kvm.enter");
    TapId worldSwitch = internTap("kvm.world_switch");
    TapId trapHypercall = internTap("kvm.trap.hypercall");
    TapId trapIrqchip = internTap("kvm.trap.irqchip");
    TapId trapVipi = internTap("kvm.trap.vipi");
    TapId trapVmSwitch = internTap("kvm.trap.vm_switch");
    TapId trapIoOut = internTap("kvm.trap.io_out");
    TapId ioIn = internTap("kvm.io_in");
    TapId virqInjected = internTap("kvm.virq_injected");
    TapId txKick = internTap("kvm.io.tx_kick");
    TapId rxDeliver = internTap("kvm.io.rx_deliver");
    /** Guest-visible operation envelopes (TraceCat::Op): emitted
     *  after their constituent spans so sim/attrib can parent by
     *  interval containment and count operations. Names are shared
     *  with the other hypervisors so differential reports align. */
    TapId opHypercall = internTap("op.hypercall");
    TapId opIrqTrap = internTap("op.irq_trap");
    TapId opVipi = internTap("op.vipi");
    TapId opVmSwitch = internTap("op.vm_switch");
    TapId opIoOut = internTap("op.io_out");
    TapId opIoIn = internTap("op.io_in");
};

const KvmTaps &
kvmTaps()
{
    static const KvmTaps taps;
    return taps;
}

} // namespace

KvmArm::KvmArm(Machine &m)
    : Hypervisor(m),
      hostCtx(static_cast<std::size_t>(m.numCpus())),
      kickActions(static_cast<std::size_t>(m.numCpus())),
      net(NetstackCosts::linux(m.freq()))
{
    VIRTSIM_ASSERT(m.arch() == Arch::Arm, "KvmArm needs an ARM machine");
    // Give every physical CPU a distinguishable host context so that
    // isolation tests can detect cross-context leaks.
    for (std::size_t i = 0; i < hostCtx.size(); ++i)
        hostCtx[i].regs.fillPattern(0x405700 + i);
}

Vm &
KvmArm::createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning)
{
    Vm &vm = Hypervisor::createVm(name, n_vcpus, pinning);
    dists[vm.id()] = std::make_unique<VgicDistributor>(vm);
    return vm;
}

TapId
KvmArm::worldSwitchTap() const
{
    return kvmTaps().worldSwitch;
}

void
KvmArm::start()
{
    Hypervisor::start();
    mach.irqChip().setPhysIrqHandler(
        [this](Cycles t, PcpuId cpu, IrqId irq) {
            onPhysIrq(t, cpu, irq);
        });
    // Load the first VM's VCPUs onto their physical CPUs; they begin
    // executing guest code at t=0 (initial condition, not charged).
    for (auto &vmp : _vms) {
        for (int i = 0; i < vmp->numVcpus(); ++i) {
            Vcpu &v = vmp->vcpu(i);
            auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
            if (ctx.loaded == nullptr) {
                ctx.loaded = &v;
                ctx.inVm = true;
                v.setLoaded(true);
                v.setState(VcpuState::Running);
                mach.cpu(v.pcpu()).regs() = v.savedRegs();
                mach.cpu(v.pcpu()).setContext(v.name());
            }
        }
    }
}

VgicDistributor &
KvmArm::dist(Vm &vm)
{
    auto it = dists.find(vm.id());
    VIRTSIM_ASSERT(it != dists.end(), "no vgic for vm ", vm.name());
    return *it->second;
}

Cycles
KvmArm::exitToHost(Cycles t, Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(ctx.inVm && ctx.loaded == &v,
                   "exitToHost: ", v.name(), " not running on pcpu ",
                   v.pcpu());
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();

    // Trap to the EL2 lowvisor and dispatch.
    Cycles c = cm.trapToEl2 + params.el2Dispatch;
    // Save the complete VM state to memory — including reading the
    // VGIC state back from the interrupt controller, the dominant
    // term (Table III). The host's EL1 state is re-established as
    // part of the same sequence.
    c += wse.save(cpu, v.savedRegs(), kvmArmSwitchedState, t + c);
    // The host needs full hardware access: disable Stage-2 and traps.
    c += cm.stage2Toggle;
    // Return to the host kernel in EL1 (second half of the double
    // trap).
    c += cm.eretToEl1;

    // Host register values become live (transfer cost accounted
    // above, in the measured per-class numbers).
    for (RegClass cls : {RegClass::Gp, RegClass::Fp, RegClass::El1Sys,
                         RegClass::Timer})
        cpu.regs().copyClassFrom(ctx.regs, cls);

    ctx.inVm = false;
    v.setState(VcpuState::InHyp);
    cpu.setMode(CpuMode::El1);
    cpu.setContext("host");
    stats().counter("kvm.vm_exits").inc();
    const Cycles tr = cpu.charge(t, c);
    const KvmTaps &taps = kvmTaps();
    trace().span(t, tr, taps.exit, TraceCat::Switch,
                 static_cast<std::uint16_t>(v.pcpu()), c);
    vmMetrics(v.vm()).counter(taps.worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(taps.worldSwitch).inc();
    return tr;
}

Cycles
KvmArm::enterVm(Cycles t, Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(!ctx.inVm, "enterVm: pcpu ", v.pcpu(),
                   " already in a VM");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();

    // Preserve the host's live EL1 values before the guest's own
    // state overwrites them.
    for (RegClass cls : {RegClass::Gp, RegClass::Fp, RegClass::El1Sys,
                         RegClass::Timer})
        ctx.regs.copyClassFrom(cpu.regs(), cls);

    // Any software-pending virtual interrupts get flushed into the
    // hardware list registers before entry.
    Cycles flush = 0;
    VgicDistributor &d = dist(v.vm());
    while (d.hasPending(v.id())) {
        const IrqId virq = d.popPending(v.id());
        if (mach.gic().injectVirq(t, v.pcpu(), virq) < 0) {
            // No free list register; keep it software-pending.
            d.setPending(v.id(), virq);
            break;
        }
        flush += mach.gic().lrWriteCost();
    }

    Cycles c = cm.trapToEl2 + params.el2Dispatch + flush;
    c += wse.restore(cpu, v.savedRegs(), kvmArmSwitchedState, t + c);
    c += cm.stage2Toggle; // re-enable Stage-2 translation and traps
    c += cm.eretToEl1;

    ctx.inVm = true;
    ctx.loaded = &v;
    v.setLoaded(true);
    v.setState(VcpuState::Running);
    cpu.setMode(CpuMode::El1);
    cpu.setContext(v.name());
    stats().counter("kvm.vm_entries").inc();
    const Cycles tr = cpu.charge(t, c);
    const KvmTaps &taps = kvmTaps();
    trace().span(t, tr, taps.enter, TraceCat::Switch,
                 static_cast<std::uint16_t>(v.pcpu()), c);
    vmMetrics(v.vm()).counter(taps.worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(taps.worldSwitch).inc();
    return tr;
}

void
KvmArm::hypercall(Cycles t, Vcpu &v, Done done)
{
    const Cycles t1 = exitToHost(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.hypercallHandler);
    const Cycles t3 = enterVm(t2, v);
    stats().counter("kvm.hypercalls").inc();
    vmMetrics(v.vm()).histogram(kvmTaps().trapHypercall).add(t3 - t);
    trace().span(t, t3, kvmTaps().opHypercall, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
KvmArm::irqControllerTrap(Cycles t, Vcpu &v, Done done)
{
    // The distributor access traps to EL2, and because the emulation
    // lives in the host kernel (Figure 3), the exit must complete all
    // the way to host EL1.
    const Cycles t1 = exitToHost(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.vgicDistEmulation);
    const Cycles t3 = enterVm(t2, v);
    stats().counter("kvm.irqchip_traps").inc();
    vmMetrics(v.vm()).histogram(kvmTaps().trapIrqchip).add(t3 - t);
    trace().span(t, t3, kvmTaps().opIrqTrap, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

Cycles
KvmArm::flushAndResume(Cycles t, Vcpu &v, Done done)
{
    // Host context on v's pcpu: program the list register(s) and
    // world-switch back into the VM; the guest then acknowledges the
    // interrupt from its virtual CPU interface and dispatches.
    const Cycles te = enterVm(t, v);
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const IrqId virq = mach.gic().guestAckVirq(v.pcpu(), te);
    Cycles c = mach.gic().guestAckCost() + params.guestIrqDispatch;
    if (virq < 0)
        stats().counter("kvm.spurious_wakeup").inc();
    const Cycles ta = cpu.charge(te, c);
    queue().scheduleAt(ta, [ta, done] { done(ta); });
    // After the handler runs the guest completes the interrupt — the
    // 71-cycle hardware fast path — freeing the list register. This
    // trails the measurement endpoint (handler entry), as in the
    // paper's methodology.
    if (virq >= 0)
        cpu.charge(ta, mach.gic().guestCompleteVirq(v.pcpu(), virq));
    return ta;
}

void
KvmArm::injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done)
{
    VgicDistributor &d = dist(v.vm());
    d.setPending(v.id(), virq);
    stats().counter("kvm.virq_injected").inc();
    vmMetrics(v.vm()).counter(kvmTaps().virqInjected).inc();
    trace().instant(t, kvmTaps().virqInjected, TraceCat::Irq,
                    static_cast<std::uint16_t>(v.pcpu()),
                    static_cast<std::uint64_t>(virq));

    switch (v.state()) {
      case VcpuState::Running: {
        // Target is executing guest code: kick it with a physical
        // SGI; the receiver-side action completes the injection.
        kickActions[static_cast<std::size_t>(v.pcpu())].push_back(
            [this, &v, done](Cycles th) {
                flushAndResume(th, v, done);
            });
        mach.gic().sendIpi(t, v.pcpu(), sgiRescheduleIrq);
        break;
      }
      case VcpuState::Idle: {
        // Blocked VCPU thread: the full wake path — cross-CPU
        // wake_up, idle exit, schedule, KVM run-loop re-entry — then
        // world switch in.
        PhysicalCpu &cpu = mach.cpu(v.pcpu());
        const Cycles tw = cpu.charge(t, params.vcpuWakeFromIdle);
        flushAndResume(tw, v, done);
        break;
      }
      case VcpuState::InHyp: {
        // Already in the hypervisor on its pcpu; the pending virq
        // rides along with the next VM entry. Approximate the
        // residual cost with the flush that entry will perform.
        PhysicalCpu &cpu = mach.cpu(v.pcpu());
        const Cycles tw = cpu.charge(t, mach.gic().lrWriteCost());
        queue().scheduleAt(tw, [tw, done] { done(tw); });
        break;
      }
    }
}

void
KvmArm::virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done)
{
    VIRTSIM_ASSERT(src.pcpu() != dst.pcpu(),
                   "virtual IPI microbenchmark requires distinct pcpus");
    stats().counter("kvm.virtual_ipis").inc();

    // Sender: the GICD_SGIR write traps; emulation happens in the
    // host kernel after a full exit.
    const Cycles t1 = exitToHost(t, src);
    PhysicalCpu &scpu = mach.cpu(src.pcpu());
    Cycles c = params.sgiEmulation;
    c += params.kickInitiate;
    c += mach.costs().irqChipRegAccess; // physical SGIR write
    const Cycles t2 = scpu.charge(t1, c);

    // The kick races ahead; the sender's own re-entry is off the
    // measured path but still consumes its CPU.
    vmMetrics(src.vm()).histogram(kvmTaps().trapVipi).add(t2 - t);
    // The operation envelope closes when the receiver dispatches its
    // handler — after every constituent span, as attribution needs.
    Done wrapped = [this, t,
                    track = static_cast<std::uint16_t>(src.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, kvmTaps().opVipi, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t2, dst, sgiRescheduleIrq + 8, std::move(wrapped));
    enterVm(t2, src);
}

void
KvmArm::virqComplete(Cycles t, Vcpu &v, Done done)
{
    // The ARM fast path: the VM completes the interrupt directly via
    // the GIC virtual CPU interface. No trap (Table II: 71 cycles).
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    IrqId virq = -1;
    for (auto &lr : mach.gic().listRegs(v.pcpu())) {
        if (!lr.empty() && lr.active) {
            virq = lr.virq;
            break;
        }
    }
    const Cycles c = mach.gic().guestCompleteVirq(v.pcpu(), virq);
    const Cycles t1 = cpu.charge(t, c);
    queue().scheduleAt(t1, [t1, done] { done(t1); });
}

void
KvmArm::vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done)
{
    VIRTSIM_ASSERT(from.pcpu() == to.pcpu(),
                   "vm switch is a same-pcpu operation");
    VIRTSIM_ASSERT(&from.vm() != &to.vm(), "vm switch between two VMs");
    // Exit to the host, let the host scheduler switch VCPU threads
    // (vcpu_put / vcpu_load), enter the other VM.
    const Cycles t1 = exitToHost(t, from);
    from.setState(VcpuState::Idle);
    from.setLoaded(false);
    const Cycles t2 =
        mach.cpu(from.pcpu()).charge(t1, params.vcpuSwitchWork);
    const Cycles t3 = enterVm(t2, to);
    stats().counter("kvm.vm_switches").inc();
    vmMetrics(to.vm()).histogram(kvmTaps().trapVmSwitch).add(t3 - t);
    trace().span(t, t3, kvmTaps().opVmSwitch, TraceCat::Op,
                 static_cast<std::uint16_t>(from.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
KvmArm::ioSignalOut(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_vhost, "ioSignalOut requires an attached vNIC");
    // Guest kick -> trap -> host ioeventfd signal -> vhost worker
    // notices. Measurement ends when the virtual device has the
    // signal (Table I).
    const Cycles t1 = exitToHost(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.ioeventfdSignal);
    enterVm(t2, v); // guest resumes; off the measured path
    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t3 = worker.charge(t2, params.vhostNotifyLatency);
    stats().counter("kvm.io_signal_out").inc();
    vmMetrics(v.vm()).histogram(kvmTaps().trapIoOut).add(t3 - t);
    trace().span(t, t3, kvmTaps().opIoOut, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
KvmArm::ioSignalIn(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_vhost, "ioSignalIn requires an attached vNIC");
    // vhost signals the VM: irqfd from the worker's CPU, then the
    // injection path (wake or kick depending on the VCPU state).
    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t1 = worker.charge(t, params.irqfdInject);
    stats().counter("kvm.io_signal_in").inc();
    trace().instant(t, kvmTaps().ioIn, TraceCat::Io,
                    static_cast<std::uint16_t>(v.pcpu()));
    Done wrapped = [this, t,
                    track = static_cast<std::uint16_t>(v.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, kvmTaps().opIoIn, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t1, v, spiNicIrq, std::move(wrapped));
}

void
KvmArm::declareShardChannels(ShardedEventKernel &kern)
{
    if (!_vhost)
        return;
    const VhostBackend::Params &vp = _vhost->params();
    // Softirq-to-worker rx handoff: zero modelled latency, so the
    // host IRQ CPU and the vhost worker must share a lane (the kernel
    // checks at declaration).
    _vhost->bindWakeChannel(
        &kern.channel("vhost.wake", cpuShard(vp.hostIrqPcpu),
                      cpuShard(vp.workerPcpu), 0));
    // Guest tx kick: any VCPU may trap and signal the ioeventfd; the
    // kthread notify latency is the conservative lookahead that lets
    // the kick cross lanes.
    chIoeventfd = &kern.channel("kvm.ioeventfd", anyShard,
                                cpuShard(vp.workerPcpu),
                                params.vhostNotifyLatency);
}

void
KvmArm::attachVirtualNic(Vm &vm, VhostBackend::Params vp)
{
    VIRTSIM_ASSERT(!_vhost, "only one virtual NIC supported");
    netVm = &vm;
    _vhost = std::make_unique<VhostBackend>(mach, vm, net, vp);
    // The frontend pre-posts rx descriptors backed by guest buffers,
    // exactly like virtio-net keeps its rx ring replenished.
    for (int i = 0; i < 256; ++i) {
        VirtioDesc d;
        d.buf = mach.memory().alloc(vm.name(), 2048);
        _vhost->rxRing().guestPost(d);
    }
    // Physical NIC interrupts go to the host IRQ CPU.
    mach.irqChip().routeExternal(spiNicIrq, vp.hostIrqPcpu);
}

void
KvmArm::deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_vhost && netVm == &vm,
                   "deliverPacketToVm: vm has no attached vNIC");
    trace().instant(t, kvmTaps().rxDeliver, TraceCat::Io, noTrack,
                    pkt.seq);
    _vhost->hostRxToGuest(t, pkt, true,
                          [this, &vm, pkt, done](Cycles tr) {
                              notifyGuestRx(tr, vm, pkt, done);
                          });
}

void
KvmArm::notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    const VcpuId target = pickVirqTarget(vm);
    Vcpu &v = vm.vcpu(target);
    PhysicalCpu &cpu = mach.cpu(v.pcpu());

    auto guest_pop = [this, &vm, pkt, done](Cycles tg) {
        // Guest driver reaps the used descriptor and reposts it.
        bool ok = false;
        VirtioDesc d;
        _vhost->rxRing().guestPopUsed(d, ok);
        if (ok)
            _vhost->rxRing().guestPost(d);
        if (onGuestRx)
            onGuestRx(tg, vm, pkt);
        done(tg);
    };

    if (v.state() != VcpuState::Idle && t < rxQuietUntil) {
        // The guest's NAPI poll from a just-delivered notification is
        // still active: no further interrupt (virtio EVENT_IDX); the
        // poll loop reaps this descriptor too. Every event outside
        // the window pays a full interrupt — the per-event delivery
        // cost that saturates VCPU0 in Section V.
        stats().counter("kvm.rx_notification_suppressed").inc();
        const Cycles tg = cpu.charge(t, params.guestDriverRxPop);
        queue().scheduleAt(tg, [tg, guest_pop] { guest_pop(tg); });
        return;
    }
    rxQuietUntil = t + mach.freq().cycles(2.5);

    // Interrupt path: irqfd from the vhost worker, then wake/kick.
    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t1 = worker.charge(t, params.irqfdInject);
    injectVirq(t1, v, spiNicIrq,
               [this, &v, guest_pop](Cycles ti) {
                   const Cycles tg = mach.cpu(v.pcpu())
                                         .charge(ti,
                                                 params.guestDriverRxPop);
                   queue().scheduleAt(tg,
                                      [tg, guest_pop] { guest_pop(tg); });
               });
}

void
KvmArm::guestTransmit(Cycles t, Vcpu &v, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_vhost, "guestTransmit requires an attached vNIC");
    if (_vhost->txRing().availFull()) {
        // Ring full: the virtio driver stops the queue until the
        // backend frees descriptors (TCP backpressure).
        txBacklog.emplace_back(&v, std::make_pair(pkt, std::move(done)));
        stats().counter("kvm.tx_backpressure").inc();
        return;
    }
    PhysicalCpu &cpu = mach.cpu(v.pcpu());

    // Guest driver: fill a descriptor referencing the guest buffer
    // (zero copy) and publish it.
    VirtioDesc d;
    d.buf = invalidBuffer; // payload stays in guest memory in place
    d.pkt = pkt;
    const Cycles c = _vhost->txRing().guestPost(d) + 150;
    const Cycles t0 = cpu.charge(t, c);
    txDone[pkt.seq] = std::move(done);

    if (txPumpActive) {
        // Backend is actively draining the ring: notification
        // suppressed, no kick, no exit.
        stats().counter("kvm.tx_kick_suppressed").inc();
        return;
    }

    // Kick: MMIO write traps, host signals the ioeventfd, the vhost
    // worker wakes and starts draining.
    const Cycles t1 = exitToHost(t0, v);
    const Cycles t2 = cpu.charge(t1, params.ioeventfdSignal);
    enterVm(t2, v);
    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t3 = worker.charge(t2, params.vhostNotifyLatency);
    trace().span(t0, t3, kvmTaps().txKick, TraceCat::Io,
                 static_cast<std::uint16_t>(v.pcpu()), pkt.seq);
    txPumpActive = true;
    EventFn kick = [this, t3] { pumpTx(t3); };
    if (chIoeventfd)
        chIoeventfd->send(t3, std::move(kick));
    else
        queue().scheduleAt(t3, std::move(kick));
}

void
KvmArm::pumpTx(Cycles t)
{
    if (_vhost->txRing().availDepth() == 0) {
        txPumpActive = false;
        return;
    }
    _vhost->txFromGuest(t, [this](Cycles td, const Packet &pkt) {
        // Physical datalink-tx point: the paper's "send" tap.
        auto it = txDone.find(pkt.seq);
        if (it != txDone.end()) {
            Done done = std::move(it->second);
            txDone.erase(it);
            done(td);
        }
        mach.nic().transmit(td, pkt);
        while (!txBacklog.empty() && !_vhost->txRing().availFull()) {
            auto item = std::move(txBacklog.front());
            txBacklog.pop_front();
            guestTransmit(td, *item.first, item.second.first,
                          std::move(item.second.second));
        }
        pumpTx(td);
    });
}

void
KvmArm::onPhysIrq(Cycles t, PcpuId cpu, IrqId irq)
{
    if (irq == sgiRescheduleIrq) {
        handleKick(t, cpu);
        return;
    }
    if (irq == spiNicIrq) {
        handleNicIrq(t, cpu);
        return;
    }
    if (irq == ppiVtimerIrq) {
        // The virtual timer fired while a VM ran: the physical
        // interrupt is taken to EL2 and translated into a virtual
        // timer interrupt for the loaded VCPU (Section II).
        auto &ctx = hostCtx[static_cast<std::size_t>(cpu)];
        if (ctx.loaded && ctx.inVm)
            injectVirq(t, *ctx.loaded, ppiVtimerIrq, [](Cycles) {});
        return;
    }
    stats().counter("kvm.unhandled_phys_irq").inc();
}

void
KvmArm::handleKick(Cycles t, PcpuId cpu)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(cpu)];
    auto &queue_ = kickActions[static_cast<std::size_t>(cpu)];

    Cycles th = t;
    if (ctx.inVm && ctx.loaded) {
        // Physical IRQ while in guest: full exit, host acknowledges
        // the SGI (IAR read, handler, EOI write).
        Vcpu &v = *ctx.loaded;
        th = exitToHost(t, v);
        const Cycles ack = mach.costs().irqChipRegAccess +
                           params.reschedIrqHandler +
                           mach.costs().irqChipRegAccess;
        th = mach.cpu(cpu).charge(th, ack);
        if (queue_.empty()) {
            // Spurious kick: just resume the guest.
            enterVm(th, v);
            return;
        }
        auto action = std::move(queue_.front());
        queue_.pop_front();
        action(th);
        return;
    }
    // Host context: cheap IRQ handling, then run the action.
    th = mach.cpu(cpu).charge(t, mach.costs().irqEntryExit);
    if (!queue_.empty()) {
        auto action = std::move(queue_.front());
        queue_.pop_front();
        action(th);
    }
}

void
KvmArm::handleNicIrq(Cycles t, PcpuId cpu)
{
    if (!netVm)
        return;
    PhysicalCpu &irq_cpu = mach.cpu(cpu);
    Cycles t1 = irq_cpu.charge(t, net.irqPath);

    // Drain the rx queue, GRO-coalescing same-flow frames into
    // aggregates the stack processes as one unit.
    Packet pkt;
    Packet agg{};
    int agg_frames = 0;
    auto flush_agg = [&](Cycles ts) {
        if (agg_frames == 0)
            return;
        if (onHostDatalinkRx)
            onHostDatalinkRx(ts, agg);
        deliverPacketToVm(ts, *netVm, agg, [](Cycles) {});
        agg = Packet{};
        agg_frames = 0;
    };
    while (mach.nic().popRx(pkt)) {
        if (agg_frames == 0) {
            agg = pkt;
            agg_frames = 1;
        } else if (agg.flow == pkt.flow && pkt.bytes >= 200 &&
                   agg.bytes >= 200 &&
                   agg_frames < net.groFrames &&
                   agg.bytes + pkt.bytes <= 64 * 1024) {
            agg.bytes += pkt.bytes;
            ++agg_frames;
        } else {
            flush_agg(t1);
            agg = pkt;
            agg_frames = 1;
        }
    }
    flush_agg(t1);
}


void
KvmArm::blockVcpu(Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(ctx.loaded == &v,
                   "blockVcpu: ", v.name(), " not loaded");
    // Guest blocked: the VCPU thread sits in the host run loop; the
    // PCPU is in host context awaiting a wakeup.
    ctx.inVm = false;
    v.setState(VcpuState::Idle);
    mach.cpu(v.pcpu()).setContext("host (vcpu blocked)");
}

} // namespace virtsim
