#include "hv/xen_arm.hh"

#include "os/kernel.hh"
#include "sim/log.hh"

namespace virtsim {

namespace {

/** Xen instrumentation taps, interned once per process. */
struct XenTaps
{
    TapId trap = internTap("xen.trap");
    TapId resume = internTap("xen.resume");
    TapId domainSwitch = internTap("xen.domain_switch");
    TapId worldSwitch = internTap("xen.world_switch");
    TapId trapHypercall = internTap("xen.trap.hypercall");
    TapId trapIrqchip = internTap("xen.trap.irqchip");
    TapId trapVipi = internTap("xen.trap.vipi");
    TapId trapVmSwitch = internTap("xen.trap.vm_switch");
    TapId trapIoOut = internTap("xen.trap.io_out");
    TapId virqInjected = internTap("xen.virq_injected");
    TapId txKick = internTap("xen.io.tx_kick");
    TapId rxDeliver = internTap("xen.io.rx_deliver");
    /** Guest-visible operation envelopes (TraceCat::Op), shared
     *  names across hypervisors for differential attribution. */
    TapId opHypercall = internTap("op.hypercall");
    TapId opIrqTrap = internTap("op.irq_trap");
    TapId opVipi = internTap("op.vipi");
    TapId opVmSwitch = internTap("op.vm_switch");
    TapId opIoOut = internTap("op.io_out");
    TapId opIoIn = internTap("op.io_in");
};

const XenTaps &
xenTaps()
{
    static const XenTaps taps;
    return taps;
}

} // namespace

XenArm::XenArm(Machine &m)
    : Hypervisor(m),
      sched(static_cast<std::size_t>(m.numCpus())),
      kickActions(static_cast<std::size_t>(m.numCpus())),
      net(NetstackCosts::linux(m.freq()))
{
    VIRTSIM_ASSERT(m.arch() == Arch::Arm, "XenArm needs an ARM machine");
    // Dom0: 4 VCPUs on the upper half of the machine (Section III:
    // Dom0 capped at 4 VCPUs / 4 GB, pinned away from the DomU).
    const int half = m.numCpus() / 2;
    std::vector<PcpuId> dom0_pins;
    for (int i = 0; i < half; ++i)
        dom0_pins.push_back(half + i);
    _dom0 = std::make_unique<Vm>(0, "dom0", VmKind::Dom0, half,
                                 dom0_pins);
    dists[0] = std::make_unique<VgicDistributor>(*_dom0);
    evtchn = std::make_unique<EventChannel>(m);
}

Vm &
XenArm::createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning)
{
    Vm &vm = Hypervisor::createVm(name, n_vcpus, pinning);
    dists[vm.id()] = std::make_unique<VgicDistributor>(vm);
    return vm;
}

TapId
XenArm::worldSwitchTap() const
{
    return xenTaps().worldSwitch;
}

void
XenArm::start()
{
    Hypervisor::start();
    mach.irqChip().setPhysIrqHandler(
        [this](Cycles t, PcpuId cpu, IrqId irq) {
            onPhysIrq(t, cpu, irq);
        });
    // Guest VCPUs start executing; Dom0 VCPUs start blocked, so
    // their PCPUs run the idle domain (the paper's default state
    // when no I/O is in flight).
    for (auto &vmp : _vms) {
        for (int i = 0; i < vmp->numVcpus(); ++i) {
            Vcpu &v = vmp->vcpu(i);
            auto &s = sched[static_cast<std::size_t>(v.pcpu())];
            if (s.current == nullptr) {
                s.current = &v;
                s.inGuest = true;
                v.setLoaded(true);
                v.setState(VcpuState::Running);
                mach.cpu(v.pcpu()).regs() = v.savedRegs();
                mach.cpu(v.pcpu()).setContext(v.name());
            }
        }
    }
    for (int i = 0; i < _dom0->numVcpus(); ++i) {
        _dom0->vcpu(i).setState(VcpuState::Idle);
        mach.cpu(_dom0->vcpu(i).pcpu()).setContext("idle-domain");
    }
}

VgicDistributor &
XenArm::dist(Vm &vm)
{
    auto it = dists.find(vm.id());
    VIRTSIM_ASSERT(it != dists.end(), "no vgic for vm ", vm.name());
    return *it->second;
}

Cycles
XenArm::trapToXen(Cycles t, Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v && s.inGuest,
                   "trapToXen: ", v.name(), " not executing");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();
    const Cycles c = cm.trapToEl2 + cm.cost(RegClass::Gp).save +
                     params.hypercallDispatch;
    v.savedRegs().copyClassFrom(cpu.regs(), RegClass::Gp);
    s.inGuest = false;
    cpu.setMode(CpuMode::El2);
    stats().counter("xen.traps").inc();
    const Cycles tr = cpu.charge(t, c);
    const XenTaps &taps = xenTaps();
    trace().span(t, tr, taps.trap, TraceCat::Switch,
                 static_cast<std::uint16_t>(v.pcpu()), c);
    vmMetrics(v.vm()).counter(taps.worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(taps.worldSwitch).inc();
    return tr;
}

Cycles
XenArm::resumeVm(Cycles t, Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v && !s.inGuest,
                   "resumeVm: ", v.name(), " not trapped");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();
    const Cycles c = cm.cost(RegClass::Gp).restore + cm.eretToEl1;
    cpu.regs().copyClassFrom(v.savedRegs(), RegClass::Gp);
    s.inGuest = true;
    cpu.setMode(CpuMode::El1);
    const Cycles tr = cpu.charge(t, c);
    trace().span(t, tr, xenTaps().resume, TraceCat::Switch,
                 static_cast<std::uint16_t>(v.pcpu()), c);
    return tr;
}

Cycles
XenArm::switchDomains(Cycles t, Vcpu *from, Vcpu &to, bool charge_sched)
{
    auto &s = sched[static_cast<std::size_t>(to.pcpu())];
    PhysicalCpu &cpu = mach.cpu(to.pcpu());
    const CostModel &cm = mach.costs();

    Cycles c = 0;
    if (from != nullptr) {
        VIRTSIM_ASSERT(from->pcpu() == to.pcpu(),
                       "domain switch across pcpus");
        c += wse.save(cpu, from->savedRegs(), xenVmSwitchState, t);
        from->setLoaded(false);
    } else {
        // Leaving the idle domain: next to nothing to save.
        c += cm.cost(RegClass::Gp).save;
        stats().counter("xen.idle_domain_switches").inc();
    }
    if (charge_sched)
        c += params.schedWork;

    // Flush software-pending virqs into the list registers.
    VgicDistributor &d = dist(to.vm());
    while (d.hasPending(to.id())) {
        const IrqId virq = d.popPending(to.id());
        if (mach.gic().injectVirq(t, to.pcpu(), virq) < 0) {
            d.setPending(to.id(), virq);
            break;
        }
        c += mach.gic().lrWriteCost();
    }

    c += wse.restore(cpu, to.savedRegs(), xenVmSwitchState, t + c);
    c += cm.eretToEl1;

    s.current = &to;
    s.inGuest = true;
    to.setLoaded(true);
    to.setState(VcpuState::Running);
    cpu.setContext(to.name());
    stats().counter("xen.domain_switches").inc();
    const Cycles tr = cpu.charge(t, c);
    const XenTaps &taps = xenTaps();
    trace().span(t, tr, taps.domainSwitch, TraceCat::Switch,
                 static_cast<std::uint16_t>(to.pcpu()), c);
    vmMetrics(to.vm()).counter(taps.worldSwitch).inc();
    cpuMetrics(to.pcpu()).counter(taps.worldSwitch).inc();
    return tr;
}

Cycles
XenArm::ensureRunning(Cycles t, Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    if (s.current == &v && s.inGuest)
        return t;
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    if (s.current == nullptr) {
        // Wake from the idle domain: scheduler wake path, then the
        // register switch-in.
        const Cycles tw = cpu.charge(t, params.domainWakeFromIdle);
        return switchDomains(tw, nullptr, v, false);
    }
    if (s.current == &v && !s.inGuest)
        return resumeVm(t, v);
    // Preempt whoever runs there (full switch).
    Vcpu *from = s.current;
    return switchDomains(t, from, v, true);
}

void
XenArm::hypercall(Cycles t, Vcpu &v, Done done)
{
    // The whole round trip happens in EL2: trap, GP save, handler,
    // GP restore, eret (Table II: 376 cycles).
    const Cycles t1 = trapToXen(t, v);
    const Cycles t2 = resumeVm(t1, v);
    stats().counter("xen.hypercalls").inc();
    vmMetrics(v.vm()).histogram(xenTaps().trapHypercall).add(t2 - t);
    trace().span(t, t2, xenTaps().opHypercall, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t2, [t2, done] { done(t2); });
}

void
XenArm::irqControllerTrap(Cycles t, Vcpu &v, Done done)
{
    // The distributor is emulated directly in EL2 (Figure 2): no
    // second world to reach, unlike KVM.
    const Cycles t1 = trapToXen(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.vgicDistEmulation);
    const Cycles t3 = resumeVm(t2, v);
    stats().counter("xen.irqchip_traps").inc();
    vmMetrics(v.vm()).histogram(xenTaps().trapIrqchip).add(t3 - t);
    trace().span(t, t3, xenTaps().opIrqTrap, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

Cycles
XenArm::injectIntoRunning(Cycles t, Vcpu &v, Done done)
{
    // A physical SGI arrives while the VCPU executes guest code: Xen
    // takes it in EL2, acknowledges the GIC, injects the pending virq
    // into a list register and resumes the guest — no other world is
    // involved.
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v && s.inGuest,
                   "injectIntoRunning: ", v.name(), " not running");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const CostModel &cm = mach.costs();

    Cycles c = cm.trapToEl2 + cm.cost(RegClass::Gp).save;
    c += cm.irqChipRegAccess; // physical IAR read
    c += params.xenIrqDispatch;
    c += params.vgicInject;
    const IrqId virq = dist(v.vm()).popPending(v.id());
    if (virq >= 0) {
        mach.gic().injectVirq(t, v.pcpu(), virq);
        c += mach.gic().lrWriteCost();
    }
    c += cm.irqChipRegAccess; // physical EOI write
    c += cm.cost(RegClass::Gp).restore + cm.eretToEl1;

    // Guest side: acknowledge the virtual interrupt and dispatch.
    c += mach.gic().guestAckCost() + params.guestIrqDispatch;

    const Cycles t1 = cpu.charge(t, c);
    const IrqId acked = mach.gic().guestAckVirq(v.pcpu(), t1);
    queue().scheduleAt(t1, [t1, done] { done(t1); });
    // Completion (71-cycle fast path) trails the handler.
    if (acked >= 0)
        cpu.charge(t1, mach.gic().guestCompleteVirq(v.pcpu(), acked));
    return t1;
}

void
XenArm::injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done)
{
    dist(v.vm()).setPending(v.id(), virq);
    stats().counter("xen.virq_injected").inc();
    vmMetrics(v.vm()).counter(xenTaps().virqInjected).inc();
    trace().instant(t, xenTaps().virqInjected, TraceCat::Irq,
                    static_cast<std::uint16_t>(v.pcpu()),
                    static_cast<std::uint64_t>(virq));

    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    if (s.current == &v && s.inGuest) {
        // Running target: physical SGI so the target PCPU programs
        // its own list registers.
        kickActions[static_cast<std::size_t>(v.pcpu())].push_back(
            [this, &v, done](Cycles th) {
                injectIntoRunning(th, v, done);
            });
        mach.gic().sendIpi(t, v.pcpu(), sgiRescheduleIrq);
        return;
    }
    // Blocked / descheduled target: wake it (possibly switching the
    // PCPU away from the idle domain), then it takes the virq.
    kickActions[static_cast<std::size_t>(v.pcpu())].push_back(
        [this, &v, done](Cycles th) {
            const Cycles tr = ensureRunning(th, v);
            PhysicalCpu &cpu = mach.cpu(v.pcpu());
            const Cycles ta = cpu.charge(
                tr, mach.gic().guestAckCost() + params.guestIrqDispatch);
            const IrqId acked = mach.gic().guestAckVirq(v.pcpu(), ta);
            queue().scheduleAt(ta, [ta, done] { done(ta); });
            if (acked >= 0) {
                cpu.charge(ta, mach.gic().guestCompleteVirq(v.pcpu(),
                                                            acked));
            }
        });
    mach.gic().sendIpi(t, v.pcpu(), sgiRescheduleIrq);
}

void
XenArm::virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done)
{
    VIRTSIM_ASSERT(src.pcpu() != dst.pcpu(),
                   "virtual IPI microbenchmark requires distinct pcpus");
    stats().counter("xen.virtual_ipis").inc();

    // Sender: GICD_SGIR write traps into EL2; the SGI emulation runs
    // right there.
    const Cycles t1 = trapToXen(t, src);
    PhysicalCpu &scpu = mach.cpu(src.pcpu());
    const Cycles t2 = scpu.charge(
        t1, params.sgiEmulation + mach.costs().irqChipRegAccess);

    vmMetrics(src.vm()).histogram(xenTaps().trapVipi).add(t2 - t);
    // Operation envelope closes when the receiver dispatches.
    Done wrapped = [this, t,
                    track = static_cast<std::uint16_t>(src.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, xenTaps().opVipi, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t2, dst, sgiRescheduleIrq + 8, std::move(wrapped));
    resumeVm(t2, src);
}

void
XenArm::virqComplete(Cycles t, Vcpu &v, Done done)
{
    // Identical hardware fast path as on KVM: Table II shows 71
    // cycles for both hypervisors.
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    IrqId virq = -1;
    for (auto &lr : mach.gic().listRegs(v.pcpu())) {
        if (!lr.empty() && lr.active) {
            virq = lr.virq;
            break;
        }
    }
    const Cycles c = mach.gic().guestCompleteVirq(v.pcpu(), virq);
    const Cycles t1 = cpu.charge(t, c);
    queue().scheduleAt(t1, [t1, done] { done(t1); });
}

void
XenArm::vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done)
{
    VIRTSIM_ASSERT(from.pcpu() == to.pcpu(),
                   "vm switch is a same-pcpu operation");
    // Both worlds live in EL1, so unlike the Hypercall case Xen must
    // switch the full EL1 state — which is why Table II shows Xen
    // only slightly ahead of KVM here (8,799 vs 10,387).
    PhysicalCpu &cpu = mach.cpu(from.pcpu());
    const Cycles t1 = cpu.charge(t, mach.costs().trapToEl2);
    auto &s = sched[static_cast<std::size_t>(from.pcpu())];
    s.inGuest = false;
    from.setState(VcpuState::Idle);
    const Cycles t2 = switchDomains(t1, &from, to, true);
    stats().counter("xen.vm_switches").inc();
    vmMetrics(to.vm()).histogram(xenTaps().trapVmSwitch).add(t2 - t);
    trace().span(t, t2, xenTaps().opVmSwitch, TraceCat::Op,
                 static_cast<std::uint16_t>(from.pcpu()));
    queue().scheduleAt(t2, [t2, done] { done(t2); });
}

void
XenArm::ioSignalOut(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_netback, "ioSignalOut requires an attached vNIC");
    // DomU kick: hypercall into Xen, event-channel notify, signal
    // Dom0 — which is usually idling, so its PCPU must switch away
    // from the idle domain before netback can see the signal.
    const Cycles t1 = trapToXen(t, v);
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const Cycles t2 = cpu.charge(t1, evtchn->notify(portDom0));
    stats().counter("xen.io_signal_out").inc();
    vmMetrics(v.vm()).histogram(xenTaps().trapIoOut).add(t2 - t);

    Done wrapped = [this, t,
                    track = static_cast<std::uint16_t>(v.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, xenTaps().opIoOut, TraceCat::Op, track);
        done(ta);
    };
    Vcpu &d0 = dom0Vcpu();
    kickActions[static_cast<std::size_t>(d0.pcpu())].push_back(
        [this, &d0, done = std::move(wrapped)](Cycles th) {
            const Cycles tr = ensureRunning(th, d0);
            PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
            Cycles c = mach.gic().guestAckCost() +
                       params.guestIrqDispatch;
            const IrqId acked = mach.gic().guestAckVirq(d0.pcpu(), tr);
            if (acked >= 0)
                c += mach.gic().guestCompleteVirq(d0.pcpu(), acked);
            c += params.backendDequeue;
            const Cycles t3 = dcpu.charge(tr, c);
            queue().scheduleAt(t3, [t3, done] { done(t3); });
        });
    mach.gic().sendIpi(t2, d0.pcpu(), sgiRescheduleIrq);
    resumeVm(t2, v);
}

void
XenArm::ioSignalIn(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_netback, "ioSignalIn requires an attached vNIC");
    // Dom0 signals the guest: trap to Xen, event channel, physical
    // IPI, and the receiving VM — idle in this microbenchmark — is
    // switched in from the idle domain.
    Vcpu &d0 = dom0Vcpu();
    const Cycles tr = ensureRunning(t, d0); // bench setup: not charged
                                            // when already running
    const Cycles t1 = trapToXen(tr, d0);
    PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
    const Cycles t2 = dcpu.charge(t1, evtchn->notify(portDomU));
    stats().counter("xen.io_signal_in").inc();
    Done wrapped = [this, t,
                    track = static_cast<std::uint16_t>(v.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, xenTaps().opIoIn, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t2, v, spiNicIrq, std::move(wrapped));
    resumeVm(t2, d0);
}

void
XenArm::declareShardChannels(ShardedEventKernel &kern)
{
    if (!_netback)
        return;
    const NetbackBackend::Params &np = _netback->params();
    // NAPI-to-kthread rx handoff inside Dom0: zero modelled latency
    // on one CPU, so both endpoints resolve to Dom0's lane. The
    // frontend's tx kick crosses CPUs as a physical SGI and already
    // rides the machine's per-CPU IPI channels.
    _netback->bindWakeChannel(
        &kern.channel("netback.wake", cpuShard(np.dom0Pcpu),
                      cpuShard(np.dom0Pcpu), 0));
}

void
XenArm::attachVirtualNic(Vm &vm, NetbackBackend::Params np)
{
    VIRTSIM_ASSERT(!_netback, "only one virtual NIC supported");
    netVm = &vm;
    _netback = std::make_unique<NetbackBackend>(mach, *_dom0, vm, net,
                                                np);
    portDomU = evtchn->allocate();
    portDom0 = evtchn->allocate();
    // Frontend pre-grants rx buffers and posts the requests, like
    // netfront keeping its rx ring full.
    for (int i = 0; i < 256; ++i) {
        PvRequest req;
        const BufferId buf = mach.memory().alloc(vm.name(), 4096);
        req.gref = _netback->grantTable().grant(buf, false);
        _netback->rxRing().frontPost(req);
    }
    mach.irqChip().routeExternal(spiNicIrq, np.dom0Pcpu);
}

void
XenArm::deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_netback && netVm == &vm,
                   "deliverPacketToVm: vm has no attached vNIC");
    trace().instant(t, xenTaps().rxDeliver, TraceCat::Io, noTrack,
                    pkt.seq);
    _netback->dom0RxToDomU(t, pkt, true,
                           [this, &vm, pkt, done](Cycles tr) {
                               notifyGuestRx(tr, vm, pkt, done);
                           });
}

void
XenArm::notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    const VcpuId target = pickVirqTarget(vm);
    Vcpu &v = vm.vcpu(target);
    const int frames = framesFor(pkt.bytes);

    auto guest_pop = [this, &vm, pkt, frames, done,
                      target](Cycles ti) {
        // Frontend reaps one response (and re-grants + reposts a
        // buffer) per wire frame.
        PhysicalCpu &vcpu_cpu = mach.cpu(vm.vcpu(target).pcpu());
        // Event-channel upcall demux precedes the frontend's ring
        // work on every delivered event.
        Cycles c = params.evtchnUpcall;
        for (int i = 0; i < frames; ++i) {
            bool ok = false;
            PvRequest resp;
            _netback->rxRing().frontPopResponse(resp, ok);
            if (ok)
                _netback->rxRing().frontPost(resp);
            c += params.guestDriverRxPop;
        }
        const Cycles tg = vcpu_cpu.charge(ti, c);
        queue().scheduleAt(tg, [this, tg, &vm, pkt, done] {
            if (onGuestRx)
                onGuestRx(tg, vm, pkt);
            done(tg);
        });
    };

    if (v.state() != VcpuState::Idle && t < rxQuietUntil) {
        // Event channel masked while the frontend polls the ring.
        stats().counter("xen.rx_event_suppressed").inc();
        guest_pop(t);
        return;
    }
    rxQuietUntil = t + mach.freq().cycles(2.5);

    PhysicalCpu &dcpu = mach.cpu(_netback->params().dom0Pcpu);
    const Cycles t1 = dcpu.charge(t, evtchn->notify(portDomU));
    injectVirq(t1, v, spiNicIrq,
               [guest_pop](Cycles ti) { guest_pop(ti); });
}

void
XenArm::guestTransmit(Cycles t, Vcpu &v, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_netback, "guestTransmit requires an attached vNIC");
    if (_netback->txRing().full()) {
        // Ring full: netfront blocks the frame until netback frees
        // slots (TCP backpressure).
        txBacklog.emplace_back(&v, std::make_pair(pkt, std::move(done)));
        stats().counter("xen.tx_backpressure").inc();
        return;
    }
    PhysicalCpu &cpu = mach.cpu(v.pcpu());

    // Frontend: grant each page of the payload, then post the
    // request.
    const int pages =
        static_cast<int>((pkt.bytes + 4095) / 4096 == 0
                             ? 1
                             : (pkt.bytes + 4095) / 4096);
    PvRequest req;
    req.pkt = pkt;
    const BufferId buf = mach.memory().alloc(v.vm().name(), pkt.bytes);
    req.gref = _netback->grantTable().grant(buf, true);
    Cycles c = static_cast<Cycles>(pages) * params.grantSetup;
    c += _netback->txRing().frontPost(req);
    const Cycles t0 = cpu.charge(t, c);
    txDone[pkt.seq] = std::move(done);
    txBufs[pkt.seq] = std::make_pair(req.gref, buf);

    if (txPumpActive) {
        stats().counter("xen.tx_kick_suppressed").inc();
        return;
    }

    // Kick Dom0 via the event channel.
    const Cycles t1 = trapToXen(t0, v);
    const Cycles t2 = cpu.charge(t1, evtchn->notify(portDom0));
    trace().span(t0, t2, xenTaps().txKick, TraceCat::Io,
                 static_cast<std::uint16_t>(v.pcpu()), pkt.seq);
    resumeVm(t2, v);

    Vcpu &d0 = dom0Vcpu();
    txPumpActive = true;
    kickActions[static_cast<std::size_t>(d0.pcpu())].push_back(
        [this, &d0](Cycles th) {
            const Cycles tr = ensureRunning(th, d0);
            PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
            Cycles c2 = mach.gic().guestAckCost() +
                        params.guestIrqDispatch +
                        params.backendDequeue;
            const IrqId acked = mach.gic().guestAckVirq(d0.pcpu(), tr);
            if (acked >= 0)
                c2 += mach.gic().guestCompleteVirq(d0.pcpu(), acked);
            const Cycles t3 = dcpu.charge(tr, c2);
            _netback->markTxKick();
            pumpTx(t3);
        });
    mach.gic().sendIpi(t2, d0.pcpu(), sgiRescheduleIrq);
}

void
XenArm::pumpTx(Cycles t)
{
    if (_netback->txRing().requestDepth() == 0) {
        txPumpActive = false;
        scheduleDom0IdleCheck(t);
        return;
    }
    _netback->domUTx(t, [this](Cycles td, const Packet &pkt) {
        auto it = txDone.find(pkt.seq);
        if (it != txDone.end()) {
            Done done = std::move(it->second);
            txDone.erase(it);
            done(td);
        }
        auto bit = txBufs.find(pkt.seq);
        if (bit != txBufs.end()) {
            _netback->grantTable().end(bit->second.first);
            mach.memory().free(bit->second.second);
            txBufs.erase(bit);
        }
        mach.nic().transmit(td, pkt);
        while (!txBacklog.empty() && !_netback->txRing().full()) {
            auto item = std::move(txBacklog.front());
            txBacklog.pop_front();
            guestTransmit(td, *item.first, item.second.first,
                          std::move(item.second.second));
        }
        pumpTx(td);
    });
}

Vcpu &
XenArm::dom0Vcpu()
{
    return _dom0->vcpu(0);
}

void
XenArm::scheduleDom0IdleCheck(Cycles t)
{
    Vcpu &d0 = dom0Vcpu();
    const PcpuId p = d0.pcpu();
    const std::uint64_t gen = ++idleGen;
    // Dom0 blocks once it has been quiescent for a grace period; the
    // PCPU then runs the idle domain and the next I/O event pays the
    // wake cost — the effect the paper repeatedly observes.
    const Cycles grace = mach.freq().cycles(20.0);
    queue().scheduleAt(t + grace, [this, p, gen, &d0] {
        if (idleGen != gen)
            return;
        auto &s = sched[static_cast<std::size_t>(p)];
        if (s.current != &d0)
            return;
        if (mach.cpu(p).frontier() > queue().now()) {
            // Work arrived (or is still draining) since the check
            // was armed: try again once the queue quiesces.
            scheduleDom0IdleCheck(mach.cpu(p).frontier());
            return;
        }
        s.current = nullptr;
        s.inGuest = false;
        d0.setState(VcpuState::Idle);
        d0.setLoaded(false);
        mach.cpu(p).setContext("idle-domain");
        stats().counter("xen.dom0_blocked").inc();
    });
}

void
XenArm::onPhysIrq(Cycles t, PcpuId cpu, IrqId irq)
{
    if (irq == sgiRescheduleIrq) {
        handleKick(t, cpu);
        return;
    }
    if (irq == spiNicIrq) {
        handleNicIrq(t, cpu);
        return;
    }
    if (irq == ppiVtimerIrq) {
        auto &s = sched[static_cast<std::size_t>(cpu)];
        if (s.current && s.inGuest)
            injectVirq(t, *s.current, ppiVtimerIrq, [](Cycles) {});
        return;
    }
    stats().counter("xen.unhandled_phys_irq").inc();
}

void
XenArm::handleKick(Cycles t, PcpuId cpu)
{
    auto &q = kickActions[static_cast<std::size_t>(cpu)];
    if (q.empty()) {
        stats().counter("xen.spurious_kick").inc();
        return;
    }
    auto action = std::move(q.front());
    q.pop_front();
    action(t);
}

void
XenArm::handleNicIrq(Cycles t, PcpuId cpu)
{
    if (!netVm)
        return;
    // The physical interrupt is taken by Xen in EL2 (all physical
    // interrupts are, while VMs run) and translated into a virtual
    // IRQ for Dom0, whose PCPU is typically running the idle domain:
    // this pre-stamp latency is why Xen's send-to-recv leg in
    // Table V is longer than native.
    PhysicalCpu &xcpu = mach.cpu(cpu);
    const CostModel &cm = mach.costs();
    Cycles c = cm.irqChipRegAccess + params.xenIrqDispatch +
               params.vgicInject + cm.irqChipRegAccess;
    const Cycles t1 = xcpu.charge(t, c);

    Vcpu &d0 = dom0Vcpu();
    const Cycles t2 = ensureRunning(t1, d0);
    PhysicalCpu &dcpu = mach.cpu(d0.pcpu());
    Cycles ack_cost = mach.gic().guestAckCost() + net.irqPath;
    const IrqId acked = mach.gic().guestAckVirq(d0.pcpu(), t2);
    if (acked >= 0)
        ack_cost += mach.gic().guestCompleteVirq(d0.pcpu(), acked);
    const Cycles t3 = dcpu.charge(t2, ack_cost);

    // Dom0's physical driver drains the NIC, GRO-coalescing.
    const auto aggs = groDrain(mach.nic(), net.groFrames);
    Cycles tcur = t3;
    for (const auto &agg : aggs) {
        if (onHostDatalinkRx)
            onHostDatalinkRx(tcur, agg);
        deliverPacketToVm(tcur, *netVm, agg, [](Cycles) {});
        tcur = dcpu.frontier();
    }
    scheduleDom0IdleCheck(dcpu.frontier());
}


void
XenArm::forceDom0Running()
{
    Vcpu &d0 = dom0Vcpu();
    auto &s = sched[static_cast<std::size_t>(d0.pcpu())];
    s.current = &d0;
    s.inGuest = true;
    d0.setLoaded(true);
    d0.setState(VcpuState::Running);
    mach.cpu(d0.pcpu()).setContext(d0.name());
}

void
XenArm::forceDom0Idle()
{
    Vcpu &d0 = dom0Vcpu();
    auto &s = sched[static_cast<std::size_t>(d0.pcpu())];
    s.current = nullptr;
    s.inGuest = false;
    d0.setLoaded(false);
    d0.setState(VcpuState::Idle);
    mach.cpu(d0.pcpu()).setContext("idle-domain");
}


void
XenArm::blockVcpu(Vcpu &v)
{
    auto &s = sched[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(s.current == &v,
                   "blockVcpu: ", v.name(), " not current");
    // Guest blocked: Xen schedules the idle domain onto the PCPU.
    s.current = nullptr;
    s.inGuest = false;
    v.setLoaded(false);
    v.setState(VcpuState::Idle);
    mach.cpu(v.pcpu()).setContext("idle-domain");
    stats().counter("xen.vcpu_blocked").inc();
}

} // namespace virtsim
