#include "hv/virtio.hh"

#include "sim/log.hh"

namespace virtsim {

namespace {

struct VirtioTaps
{
    TapId guestPost = internTap("virtio.guest_post");
    TapId hostPop = internTap("virtio.host_pop");
    TapId hostPush = internTap("virtio.host_push");
};

const VirtioTaps &
virtioTaps()
{
    static const VirtioTaps taps;
    return taps;
}

} // namespace

VirtioQueue::VirtioQueue(Machine &m, Vm &guest, std::size_t capacity)
    : mach(m), guest(guest), capacity(capacity)
{
}

Cycles
VirtioQueue::guestPost(const VirtioDesc &desc)
{
    VIRTSIM_ASSERT(!availFull(), "virtqueue overflow");
    VIRTSIM_ASSERT(desc.buf == invalidBuffer ||
                   mach.memory().owner(desc.buf) == guest.name(),
                   "guest posting buffer it does not own");
    avail.push_back(desc);
    mach.stats().counter("virtio.guest_post").inc();
    mach.trace().instant(mach.queue().now(), virtioTaps().guestPost,
                         TraceCat::Io, noTrack, desc.pkt.seq);
    return ringOpCost();
}

Cycles
VirtioQueue::guestPopUsed(VirtioDesc &out, bool &ok)
{
    if (used.empty()) {
        ok = false;
        return 0;
    }
    out = used.front();
    used.pop_front();
    ok = true;
    return ringOpCost();
}

Cycles
VirtioQueue::hostPop(VirtioDesc &out, bool &ok)
{
    if (avail.empty()) {
        ok = false;
        return 0;
    }
    out = avail.front();
    avail.pop_front();
    ok = true;
    mach.stats().counter("virtio.host_pop").inc();
    mach.trace().instant(mach.queue().now(), virtioTaps().hostPop,
                         TraceCat::Io, noTrack, out.pkt.seq);
    // Zero copy: the host accesses the guest buffer directly — legal
    // because the Type 2 host kernel maps all machine memory. The
    // cross-CPU cache line transfer of the descriptor is the cost.
    return ringOpCost() + mach.costs().cacheLineTransfer;
}

Cycles
VirtioQueue::hostPushUsed(const VirtioDesc &desc)
{
    used.push_back(desc);
    mach.stats().counter("virtio.host_push").inc();
    mach.trace().instant(mach.queue().now(), virtioTaps().hostPush,
                         TraceCat::Io, noTrack, desc.pkt.seq);
    return ringOpCost();
}

Cycles
VirtioQueue::ringOpCost() const
{
    // [calibrated] descriptor + index update: a few cache lines.
    return 90;
}

} // namespace virtsim
