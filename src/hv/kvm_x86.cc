#include "hv/kvm_x86.hh"

#include "os/kernel.hh"
#include "sim/log.hh"
#include "sim/probe.hh"

namespace virtsim {

namespace {

/** KVM x86 instrumentation taps, interned once per process. */
struct KvmX86Taps
{
    TapId worldSwitch = internTap("kvm.world_switch");
    TapId trapHypercall = internTap("kvm.trap.hypercall");
    TapId trapIrqchip = internTap("kvm.trap.irqchip");
    TapId trapVipi = internTap("kvm.trap.vipi");
    TapId trapVmSwitch = internTap("kvm.trap.vm_switch");
    TapId trapEoi = internTap("kvm.trap.eoi");
    TapId virqInjected = internTap("kvm.virq_injected");
    // Guest-visible operation envelopes, shared across hypervisors so
    // differential reports line up by name.
    TapId opHypercall = internTap("op.hypercall");
    TapId opIrqTrap = internTap("op.irq_trap");
    TapId opVipi = internTap("op.vipi");
    TapId opVmSwitch = internTap("op.vm_switch");
    TapId opIoOut = internTap("op.io_out");
    TapId opIoIn = internTap("op.io_in");
};

const KvmX86Taps &
kvmX86Taps()
{
    static const KvmX86Taps taps;
    return taps;
}

} // namespace

KvmX86::KvmX86(Machine &m)
    : Hypervisor(m),
      hostCtx(static_cast<std::size_t>(m.numCpus())),
      kickActions(static_cast<std::size_t>(m.numCpus())),
      net(NetstackCosts::linux(m.freq()))
{
    VIRTSIM_ASSERT(m.arch() == Arch::X86, "KvmX86 needs an x86 machine");
    for (std::size_t i = 0; i < hostCtx.size(); ++i)
        hostCtx[i].regs.fillPattern(0x860000 + i);
}

Vm &
KvmX86::createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning)
{
    Vm &vm = Hypervisor::createVm(name, n_vcpus, pinning);
    dists[vm.id()] = std::make_unique<VgicDistributor>(vm);
    return vm;
}

TapId
KvmX86::worldSwitchTap() const
{
    return kvmX86Taps().worldSwitch;
}

void
KvmX86::start()
{
    Hypervisor::start();
    mach.irqChip().setPhysIrqHandler(
        [this](Cycles t, PcpuId cpu, IrqId irq) {
            onPhysIrq(t, cpu, irq);
        });
    for (auto &vmp : _vms) {
        for (int i = 0; i < vmp->numVcpus(); ++i) {
            Vcpu &v = vmp->vcpu(i);
            auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
            if (ctx.loaded == nullptr) {
                ctx.loaded = &v;
                ctx.inVm = true;
                v.setLoaded(true);
                v.setState(VcpuState::Running);
                mach.cpu(v.pcpu()).regs() = v.savedRegs();
                mach.cpu(v.pcpu()).setContext(v.name());
            }
        }
    }
}

VgicDistributor &
KvmX86::dist(Vm &vm)
{
    auto it = dists.find(vm.id());
    VIRTSIM_ASSERT(it != dists.end(), "no irq state for vm ", vm.name());
    return *it->second;
}

Cycles
KvmX86::exitToHost(Cycles t, Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(ctx.inVm && ctx.loaded == &v,
                   "exitToHost: ", v.name(), " not running");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    // The hardware saves the guest state block to the VMCS and loads
    // the host state as part of the exit itself — no software
    // save/restore choice, unlike ARM.
    v.savedRegs().copyClassFrom(cpu.regs(), RegClass::Gp);
    v.savedRegs().copyClassFrom(cpu.regs(), RegClass::Vmcs);
    cpu.regs().copyClassFrom(ctx.regs, RegClass::Gp);
    cpu.regs().copyClassFrom(ctx.regs, RegClass::Vmcs);
    const Cycles c = mach.costs().vmexitHw + params.exitDispatch;
    ctx.inVm = false;
    v.setState(VcpuState::InHyp);
    cpu.setMode(CpuMode::KernelRoot);
    cpu.setContext("host");
    stats().counter("kvm.vm_exits").inc();
    vmMetrics(v.vm()).counter(kvmX86Taps().worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(kvmX86Taps().worldSwitch).inc();
    return cpu.charge(t, c);
}

Cycles
KvmX86::enterVm(Cycles t, Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(!ctx.inVm, "enterVm: pcpu busy");
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    ctx.regs.copyClassFrom(cpu.regs(), RegClass::Gp);
    ctx.regs.copyClassFrom(cpu.regs(), RegClass::Vmcs);

    // Pending virtual interrupts are injected through the VMCS
    // interrupt-information field on entry.
    Cycles inject = 0;
    VgicDistributor &d = dist(v.vm());
    if (d.hasPending(v.id())) {
        const IrqId virq = d.popPending(v.id());
        inject = mach.apic().injectVirq(t, v.pcpu(), virq);
    }

    cpu.regs().copyClassFrom(v.savedRegs(), RegClass::Gp);
    cpu.regs().copyClassFrom(v.savedRegs(), RegClass::Vmcs);
    const Cycles c = mach.costs().vmentryHw + inject;
    ctx.inVm = true;
    ctx.loaded = &v;
    v.setLoaded(true);
    v.setState(VcpuState::Running);
    cpu.setMode(CpuMode::KernelNonRoot);
    cpu.setContext(v.name());
    stats().counter("kvm.vm_entries").inc();
    vmMetrics(v.vm()).counter(kvmX86Taps().worldSwitch).inc();
    cpuMetrics(v.pcpu()).counter(kvmX86Taps().worldSwitch).inc();
    return cpu.charge(t, c);
}

void
KvmX86::hypercall(Cycles t, Vcpu &v, Done done)
{
    const Cycles t1 = exitToHost(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.hypercallHandler);
    const Cycles t3 = enterVm(t2, v);
    stats().counter("kvm.hypercalls").inc();
    vmMetrics(v.vm()).histogram(kvmX86Taps().trapHypercall)
        .add(t3 - t);
    trace().span(t, t3, kvmX86Taps().opHypercall, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
KvmX86::irqControllerTrap(Cycles t, Vcpu &v, Done done)
{
    const Cycles t1 = exitToHost(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.apicEmulation);
    const Cycles t3 = enterVm(t2, v);
    stats().counter("kvm.irqchip_traps").inc();
    vmMetrics(v.vm()).histogram(kvmX86Taps().trapIrqchip)
        .add(t3 - t);
    trace().span(t, t3, kvmX86Taps().opIrqTrap, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

Cycles
KvmX86::flushAndResume(Cycles t, Vcpu &v, Done done)
{
    const Cycles te = enterVm(t, v);
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const IrqId virq = mach.apic().guestAckVirq(v.pcpu());
    if (virq < 0)
        stats().counter("kvm.spurious_wakeup").inc();
    const Cycles ta = cpu.charge(
        te, mach.costs().irqChipRegAccess + params.guestIrqDispatch);
    queue().scheduleAt(ta, [ta, done] { done(ta); });
    // The handler's EOI write traps on vAPIC-less hardware: a full
    // exit round trip per delivered interrupt, charged after the
    // measurement endpoint — it shows up in application results,
    // not in Table II's delivery latency.
    if (virq >= 0 && !mach.apic().vApicEnabled()) {
        cpu.charge(ta, mach.costs().vmexitHw + params.eoiEmulation +
                           mach.costs().vmentryHw);
        stats().counter("kvm.virq_complete_trap").inc();
    }
    return ta;
}

void
KvmX86::injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done)
{
    dist(v.vm()).setPending(v.id(), virq);
    stats().counter("kvm.virq_injected").inc();
    vmMetrics(v.vm()).counter(kvmX86Taps().virqInjected).inc();

    switch (v.state()) {
      case VcpuState::Running: {
        kickActions[static_cast<std::size_t>(v.pcpu())].push_back(
            [this, &v, done](Cycles th) {
                flushAndResume(th, v, done);
            });
        mach.apic().sendIpi(t, v.pcpu(), sgiRescheduleIrq);
        break;
      }
      case VcpuState::Idle: {
        PhysicalCpu &cpu = mach.cpu(v.pcpu());
        const Cycles tw = cpu.charge(t, params.vcpuWakeFromIdle);
        flushAndResume(tw, v, done);
        break;
      }
      case VcpuState::InHyp: {
        PhysicalCpu &cpu = mach.cpu(v.pcpu());
        const Cycles tw =
            cpu.charge(t, mach.costs().listRegWrite);
        queue().scheduleAt(tw, [tw, done] { done(tw); });
        break;
      }
    }
}

void
KvmX86::virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done)
{
    VIRTSIM_ASSERT(src.pcpu() != dst.pcpu(),
                   "virtual IPI microbenchmark requires distinct pcpus");
    stats().counter("kvm.virtual_ipis").inc();
    // ICR write traps; emulation + kick in the host.
    const Cycles t1 = exitToHost(t, src);
    PhysicalCpu &scpu = mach.cpu(src.pcpu());
    const Cycles t2 = scpu.charge(
        t1, params.apicEmulation + params.kickPath +
                mach.costs().irqChipRegAccess);
    vmMetrics(src.vm()).histogram(kvmX86Taps().trapVipi)
        .add(t2 - t);
    Done wrapped = [this, t, track = static_cast<std::uint16_t>(src.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, kvmX86Taps().opVipi, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t2, dst, sgiRescheduleIrq + 8, std::move(wrapped));
    enterVm(t2, src);
}

void
KvmX86::virqComplete(Cycles t, Vcpu &v, Done done)
{
    // Without vAPIC the EOI write traps to the hypervisor — the ARM
    // vs x86 contrast of Table II (71 vs ~1.5k cycles).
    if (mach.apic().vApicEnabled()) {
        PhysicalCpu &cpu = mach.cpu(v.pcpu());
        const Cycles t1 =
            cpu.charge(t, mach.costs().irqChipRegAccess);
        stats().counter("kvm.virq_complete_vapic").inc();
        queue().scheduleAt(t1, [t1, done] { done(t1); });
        return;
    }
    const Cycles t1 = exitToHost(t, v);
    const Cycles t2 =
        mach.cpu(v.pcpu()).charge(t1, params.eoiEmulation);
    const Cycles t3 = enterVm(t2, v);
    stats().counter("kvm.virq_complete_trap").inc();
    vmMetrics(v.vm()).histogram(kvmX86Taps().trapEoi).add(t3 - t);
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
KvmX86::vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done)
{
    VIRTSIM_ASSERT(from.pcpu() == to.pcpu(),
                   "vm switch is a same-pcpu operation");
    const Cycles t1 = exitToHost(t, from);
    from.setState(VcpuState::Idle);
    from.setLoaded(false);
    const Cycles t2 = mach.cpu(from.pcpu())
                          .charge(t1, params.vcpuSwitchWork +
                                          mach.costs().vmcsSwitch);
    const Cycles t3 = enterVm(t2, to);
    stats().counter("kvm.vm_switches").inc();
    vmMetrics(to.vm()).histogram(kvmX86Taps().trapVmSwitch)
        .add(t3 - t);
    trace().span(t, t3, kvmX86Taps().opVmSwitch, TraceCat::Op,
                 static_cast<std::uint16_t>(from.pcpu()));
    queue().scheduleAt(t3, [t3, done] { done(t3); });
}

void
KvmX86::ioSignalOut(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_vhost, "ioSignalOut requires an attached vNIC");
    // KVM x86's ioeventfd fast path: the kick is recognized and the
    // eventfd signalled inside the inner vmexit loop, before the full
    // exit dispatch, and the guest re-enters immediately — the
    // 560-cycle Table II standout.
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    const Cycles t2 = cpu.charge(
        t, mach.costs().vmexitHw + params.ioeventfdSignal);
    cpu.charge(t2, mach.costs().vmentryHw);
    stats().counter("kvm.io_signal_out").inc();
    trace().span(t, t2, kvmX86Taps().opIoOut, TraceCat::Op,
                 static_cast<std::uint16_t>(v.pcpu()));
    queue().scheduleAt(t2, [t2, done] { done(t2); });
}

void
KvmX86::ioSignalIn(Cycles t, Vcpu &v, Done done)
{
    VIRTSIM_ASSERT(_vhost, "ioSignalIn requires an attached vNIC");
    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t1 = worker.charge(t, params.irqfdInject);
    stats().counter("kvm.io_signal_in").inc();
    Done wrapped = [this, t, track = static_cast<std::uint16_t>(v.pcpu()),
                    done](Cycles ta) {
        trace().span(t, ta, kvmX86Taps().opIoIn, TraceCat::Op, track);
        done(ta);
    };
    injectVirq(t1, v, spiNicIrq, std::move(wrapped));
}

void
KvmX86::declareShardChannels(ShardedEventKernel &kern)
{
    if (!_vhost)
        return;
    const VhostBackend::Params &vp = _vhost->params();
    // Same channel set as KVM ARM: the vhost architecture is
    // identical, only the transition costs differ.
    _vhost->bindWakeChannel(
        &kern.channel("vhost.wake", cpuShard(vp.hostIrqPcpu),
                      cpuShard(vp.workerPcpu), 0));
    chIoeventfd = &kern.channel("kvm.ioeventfd", anyShard,
                                cpuShard(vp.workerPcpu),
                                params.vhostNotifyLatency);
}

void
KvmX86::attachVirtualNic(Vm &vm, VhostBackend::Params vp)
{
    VIRTSIM_ASSERT(!_vhost, "only one virtual NIC supported");
    netVm = &vm;
    _vhost = std::make_unique<VhostBackend>(mach, vm, net, vp);
    for (int i = 0; i < 256; ++i) {
        VirtioDesc d;
        d.buf = mach.memory().alloc(vm.name(), 2048);
        _vhost->rxRing().guestPost(d);
    }
    mach.irqChip().routeExternal(spiNicIrq, vp.hostIrqPcpu);
}

void
KvmX86::deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_vhost && netVm == &vm,
                   "deliverPacketToVm: vm has no attached vNIC");
    _vhost->hostRxToGuest(t, pkt, true,
                          [this, &vm, pkt, done](Cycles tr) {
                              notifyGuestRx(tr, vm, pkt, done);
                          });
}

void
KvmX86::notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done)
{
    const VcpuId target = pickVirqTarget(vm);
    Vcpu &v = vm.vcpu(target);
    PhysicalCpu &cpu = mach.cpu(v.pcpu());

    auto guest_pop = [this, &vm, pkt, done](Cycles tg) {
        bool ok = false;
        VirtioDesc d;
        _vhost->rxRing().guestPopUsed(d, ok);
        if (ok)
            _vhost->rxRing().guestPost(d);
        if (onGuestRx)
            onGuestRx(tg, vm, pkt);
        done(tg);
    };

    if (v.state() != VcpuState::Idle && cpu.frontier() > t) {
        stats().counter("kvm.rx_notification_suppressed").inc();
        const Cycles tg = cpu.charge(t, params.guestDriverRxPop);
        queue().scheduleAt(tg, [tg, guest_pop] { guest_pop(tg); });
        return;
    }

    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t1 = worker.charge(t, params.irqfdInject);
    injectVirq(t1, v, spiNicIrq,
               [this, &v, guest_pop](Cycles ti) {
                   const Cycles tg = mach.cpu(v.pcpu())
                                         .charge(ti,
                                                 params.guestDriverRxPop);
                   queue().scheduleAt(tg,
                                      [tg, guest_pop] { guest_pop(tg); });
               });
}

void
KvmX86::guestTransmit(Cycles t, Vcpu &v, const Packet &pkt, Done done)
{
    VIRTSIM_ASSERT(_vhost, "guestTransmit requires an attached vNIC");
    if (_vhost->txRing().availFull()) {
        // Ring full: the virtio driver stops the queue until the
        // backend frees descriptors (TCP backpressure).
        txBacklog.emplace_back(&v, std::make_pair(pkt, std::move(done)));
        stats().counter("kvm.tx_backpressure").inc();
        return;
    }
    PhysicalCpu &cpu = mach.cpu(v.pcpu());
    VirtioDesc d;
    d.buf = invalidBuffer;
    d.pkt = pkt;
    const Cycles c = _vhost->txRing().guestPost(d) + 130;
    const Cycles t0 = cpu.charge(t, c);
    txDone[pkt.seq] = std::move(done);

    if (txPumpActive) {
        stats().counter("kvm.tx_kick_suppressed").inc();
        return;
    }

    const Cycles t1 = exitToHost(t0, v);
    const Cycles t2 = cpu.charge(t1, params.ioeventfdSignal);
    enterVm(t2, v);
    PhysicalCpu &worker = mach.cpu(_vhost->params().workerPcpu);
    const Cycles t3 = worker.charge(t2, params.vhostNotifyLatency);
    txPumpActive = true;
    EventFn kick = [this, t3] { pumpTx(t3); };
    if (chIoeventfd)
        chIoeventfd->send(t3, std::move(kick));
    else
        queue().scheduleAt(t3, std::move(kick));
}

void
KvmX86::pumpTx(Cycles t)
{
    if (_vhost->txRing().availDepth() == 0) {
        txPumpActive = false;
        return;
    }
    _vhost->txFromGuest(t, [this](Cycles td, const Packet &pkt) {
        auto it = txDone.find(pkt.seq);
        if (it != txDone.end()) {
            Done done = std::move(it->second);
            txDone.erase(it);
            done(td);
        }
        mach.nic().transmit(td, pkt);
        while (!txBacklog.empty() && !_vhost->txRing().availFull()) {
            auto item = std::move(txBacklog.front());
            txBacklog.pop_front();
            guestTransmit(td, *item.first, item.second.first,
                          std::move(item.second.second));
        }
        pumpTx(td);
    });
}

void
KvmX86::onPhysIrq(Cycles t, PcpuId cpu, IrqId irq)
{
    if (irq == sgiRescheduleIrq) {
        handleKick(t, cpu);
        return;
    }
    if (irq == spiNicIrq) {
        handleNicIrq(t, cpu);
        return;
    }
    stats().counter("kvm.unhandled_phys_irq").inc();
}

void
KvmX86::handleKick(Cycles t, PcpuId cpu)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(cpu)];
    auto &q = kickActions[static_cast<std::size_t>(cpu)];

    if (ctx.inVm && ctx.loaded) {
        Vcpu &v = *ctx.loaded;
        Cycles th = exitToHost(t, v);
        th = mach.cpu(cpu).charge(th, params.hostIpiHandler);
        if (q.empty()) {
            enterVm(th, v);
            return;
        }
        auto action = std::move(q.front());
        q.pop_front();
        action(th);
        return;
    }
    const Cycles th =
        mach.cpu(cpu).charge(t, mach.costs().irqEntryExit);
    if (!q.empty()) {
        auto action = std::move(q.front());
        q.pop_front();
        action(th);
    }
}

void
KvmX86::handleNicIrq(Cycles t, PcpuId cpu)
{
    if (!netVm)
        return;
    PhysicalCpu &irq_cpu = mach.cpu(cpu);
    const Cycles t1 = irq_cpu.charge(t, net.irqPath);
    const auto aggs = groDrain(mach.nic(), net.groFrames);
    for (const auto &agg : aggs) {
        if (onHostDatalinkRx)
            onHostDatalinkRx(t1, agg);
        deliverPacketToVm(t1, *netVm, agg, [](Cycles) {});
    }
}


void
KvmX86::blockVcpu(Vcpu &v)
{
    auto &ctx = hostCtx[static_cast<std::size_t>(v.pcpu())];
    VIRTSIM_ASSERT(ctx.loaded == &v,
                   "blockVcpu: ", v.name(), " not loaded");
    // Guest blocked: the VCPU thread sits in the host run loop; the
    // PCPU is in host context awaiting a wakeup.
    ctx.inVm = false;
    v.setState(VcpuState::Idle);
    mach.cpu(v.pcpu()).setContext("host (vcpu blocked)");
}

} // namespace virtsim
