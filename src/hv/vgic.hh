/**
 * @file
 * Virtual GIC distributor emulation state.
 *
 * Both hypervisors emulate the GIC distributor in software; the
 * difference the paper highlights is *where*: Xen ARM emulates it in
 * the hypervisor in EL2 (cheap to reach), KVM ARM in the host kernel
 * in EL1 (reached via a full split-mode world switch). This class is
 * the shared software state — pending virtual interrupts per VCPU —
 * while each hypervisor charges its own access path cost.
 */

#ifndef VIRTSIM_HV_VGIC_HH
#define VIRTSIM_HV_VGIC_HH

#include <vector>

#include "hv/vm.hh"
#include "hw/gic.hh"
#include "sim/types.hh"

namespace virtsim {

/**
 * Software model of one VM's virtual distributor.
 */
class VgicDistributor
{
  public:
    explicit VgicDistributor(Vm &vm) : vm(&vm) {}

    /** Mark a virtual interrupt pending for a VCPU (SPI routed to it,
     *  or an SGI targeting it). */
    void
    setPending(VcpuId target, IrqId virq)
    {
        vm->pendingVirqs()[static_cast<std::size_t>(target)]
            .push_back(virq);
    }

    bool
    hasPending(VcpuId target) const
    {
        return !vm->pendingVirqs()[static_cast<std::size_t>(target)]
                    .empty();
    }

    /**
     * Pop the next pending virtual interrupt for a VCPU, to be
     * programmed into a hardware list register ("flush" in KVM
     * terminology). @return -1 if none pending.
     */
    IrqId
    popPending(VcpuId target)
    {
        auto &q = vm->pendingVirqs()[static_cast<std::size_t>(target)];
        if (q.empty())
            return -1;
        const IrqId virq = q.front();
        q.erase(q.begin());
        return virq;
    }

  private:
    Vm *vm;
};

} // namespace virtsim

#endif // VIRTSIM_HV_VGIC_HH
