#include "hv/vm.hh"

#include <sstream>

#include "sim/log.hh"

namespace virtsim {

Vcpu::Vcpu(Vm &vm, VcpuId id, PcpuId pinned)
    : _vm(&vm), _id(id), _pcpu(pinned)
{
}

std::string
Vcpu::name() const
{
    std::ostringstream oss;
    oss << _vm->name() << "/vcpu" << _id;
    return oss.str();
}

Vm::Vm(VmId id, std::string name, VmKind kind, int n_vcpus,
       const std::vector<PcpuId> &pinning)
    : _id(id), _name(std::move(name)), _kind(kind), _stage2(id),
      _pending(static_cast<std::size_t>(n_vcpus))
{
    VIRTSIM_ASSERT(static_cast<int>(pinning.size()) == n_vcpus,
                   "vm ", _name, ": pinning size ", pinning.size(),
                   " != vcpus ", n_vcpus);
    for (int i = 0; i < n_vcpus; ++i) {
        vcpus.push_back(std::make_unique<Vcpu>(
            *this, i, pinning[static_cast<std::size_t>(i)]));
    }
}

Vcpu &
Vm::vcpu(VcpuId id)
{
    VIRTSIM_ASSERT(id >= 0 && id < numVcpus(), "bad vcpu id ", id,
                   " in ", _name);
    return *vcpus[static_cast<std::size_t>(id)];
}

const Vcpu &
Vm::vcpu(VcpuId id) const
{
    VIRTSIM_ASSERT(id >= 0 && id < numVcpus(), "bad vcpu id ", id,
                   " in ", _name);
    return *vcpus[static_cast<std::size_t>(id)];
}

} // namespace virtsim
