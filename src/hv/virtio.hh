/**
 * @file
 * Virtio rings — KVM's paravirtual I/O transport (Russell's Virtio
 * protocol, which the paper's KVM configuration uses with the VHOST
 * in-kernel backend).
 *
 * The performance-decisive property modelled here is *zero copy*: the
 * ring descriptors reference guest-owned buffers, and because the KVM
 * host kernel has full access to all machine memory including VM
 * memory (paper, Sections II and V), the backend and even the NIC DMA
 * engine touch those buffers directly. Contrast hv/grant_table.hh.
 */

#ifndef VIRTSIM_HV_VIRTIO_HH
#define VIRTSIM_HV_VIRTIO_HH

#include <cstdint>
#include <deque>

#include "hw/machine.hh"
#include "hw/nic.hh"
#include "hv/vm.hh"
#include "sim/types.hh"

namespace virtsim {

/** One virtio descriptor: a guest buffer plus the packet it holds. */
struct VirtioDesc
{
    BufferId buf = invalidBuffer;
    Packet pkt{};
};

/**
 * A single virtqueue (one direction of one device).
 */
class VirtioQueue
{
  public:
    VirtioQueue(Machine &m, Vm &guest, std::size_t capacity = 256);

    /** @name Guest-side operations (frontend driver) */
    ///@{
    /**
     * Guest posts a descriptor into the available ring.
     * @return cycle cost (descriptor write + avail index update);
     *         asserts the buffer really belongs to the guest.
     */
    Cycles guestPost(const VirtioDesc &desc);

    /** Guest reaps a completed descriptor from the used ring.
     *  @return cost, or 0 with ok=false when the ring is empty. */
    Cycles guestPopUsed(VirtioDesc &out, bool &ok);
    ///@}

    /** @name Host-side operations (VHOST backend).
     *  Zero copy: the host reads/writes the guest buffer in place. */
    ///@{
    Cycles hostPop(VirtioDesc &out, bool &ok);
    Cycles hostPushUsed(const VirtioDesc &desc);
    ///@}

    std::size_t availDepth() const { return avail.size(); }
    std::size_t usedDepth() const { return used.size(); }
    bool availFull() const { return avail.size() >= capacity; }

    /** Per-operation ring bookkeeping cost.
     *  [calibrated] a few cache lines of descriptor traffic. */
    Cycles ringOpCost() const;

  private:
    Machine &mach;
    Vm &guest;
    std::size_t capacity;
    std::deque<VirtioDesc> avail;
    std::deque<VirtioDesc> used;
};

} // namespace virtsim

#endif // VIRTSIM_HV_VIRTIO_HH
