/**
 * @file
 * The Xen grant mechanism.
 *
 * Xen enforces strict I/O isolation: Dom0 has no default access to a
 * DomU's memory. To move I/O data, the DomU *grants* access to
 * specific pages and Dom0 either maps them (shared page) or asks the
 * hypervisor to copy ("grant copy"). The paper identifies this as the
 * decisive software-architecture cost behind Xen's I/O results:
 *
 *  - each grant copy adds "more than 3 us of additional latency ...
 *    even though only a single byte of data needs to be copied"
 *    (Table V analysis);
 *  - zero-copy (mapping) was abandoned on Xen x86 because removing a
 *    grant mapping requires a TLB shootdown on all physical CPUs,
 *    which "proved more expensive than simply copying the data";
 *    ARM's hardware broadcast TLB invalidation could change that —
 *    the E6 ablation bench explores exactly this question.
 */

#ifndef VIRTSIM_HV_GRANT_TABLE_HH
#define VIRTSIM_HV_GRANT_TABLE_HH

#include <cstdint>
#include <map>

#include "hw/machine.hh"
#include "hv/vm.hh"
#include "sim/types.hh"

namespace virtsim {

/** Handle to an active grant. */
using GrantRef = int;

/**
 * Per-guest grant table, mediated by the hypervisor.
 */
class GrantTable
{
  public:
    GrantTable(Machine &m, Vm &granter);

    /** Guest grants access to one of its buffers. @return the ref. */
    GrantRef grant(BufferId buf, bool readonly);

    /** Guest revokes a grant. @pre the grant is not mapped. */
    void end(GrantRef ref);

    /** @name Backend-side operations (executed by Dom0)
     *  Each returns the cycle cost to charge on the CPU doing it. */
    ///@{
    /** Map a granted page into Dom0 (hypercall + PTE install). */
    Cycles map(GrantRef ref);

    /**
     * Unmap a granted page. Includes the cross-CPU TLB invalidation
     * of the mapping — one broadcast instruction on ARM, an IPI
     * shootdown on x86 (the cost asymmetry of the E6 ablation).
     */
    Cycles unmap(GrantRef ref);

    /**
     * Hypervisor-mediated copy between a Dom0 buffer and the granted
     * buffer. Fixed overhead dominates small copies (the >3 us the
     * paper measures for a single byte).
     */
    Cycles copy(GrantRef ref, std::uint32_t bytes);
    ///@}

    bool isMapped(GrantRef ref) const;
    std::size_t activeGrants() const { return grants.size(); }

    /** @name Cost constants
     *  [calibrated] against the paper's ">3 us per grant copy". */
    ///@{
    /** Hypercall + grant-entry validation + bookkeeping for a copy:
     *  ~2.8 us at 2.4 GHz before any bytes move. */
    Cycles grantCopyFixedCost() const;
    /** Hypercall + PTE install for a map. */
    Cycles grantMapFixedCost() const;
    /** Hypercall + PTE clear for an unmap, excluding TLB work. */
    Cycles grantUnmapFixedCost() const;
    ///@}

  private:
    struct Entry
    {
        BufferId buf;
        bool readonly;
        bool mapped = false;
    };

    Machine &mach;
    Vm &granter;
    std::map<GrantRef, Entry> grants;
    GrantRef nextRef = 1;
};

} // namespace virtsim

#endif // VIRTSIM_HV_GRANT_TABLE_HH
