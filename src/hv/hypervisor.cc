#include "hv/hypervisor.hh"

#include "sim/log.hh"

namespace virtsim {

std::string
to_string(HvType t)
{
    return t == HvType::Type1 ? "Type 1" : "Type 2";
}

Hypervisor::Hypervisor(Machine &m) : mach(m), wse(m.costs())
{
    wse.attachTrace(&m.trace());
}

MetricsDomain &
Hypervisor::vmMetrics(const Vm &vm)
{
    const auto i = static_cast<std::size_t>(vm.id());
    if (i >= vmDomains.size())
        vmDomains.resize(i + 1, nullptr);
    if (vmDomains[i] == nullptr)
        vmDomains[i] = &mach.metrics().vm(vm.name());
    return *vmDomains[i];
}

Vm &
Hypervisor::createVm(const std::string &name, int n_vcpus,
                     const std::vector<PcpuId> &pinning)
{
    for (PcpuId p : pinning) {
        VIRTSIM_ASSERT(p >= 0 && p < mach.numCpus(),
                       "vm ", name, " pinned to bad pcpu ", p);
    }
    _vms.push_back(std::make_unique<Vm>(nextVmId++, name, VmKind::Guest,
                                        n_vcpus, pinning));
    Vm &vm = *_vms.back();
    // Populate Stage-2 tables with an identity-offset mapping for the
    // VM's RAM (12 GiB per the paper's Section III configuration,
    // 4 KiB granules). Benchmarks touch only a window of it; the map
    // is kept sparse and filled on demand by fault handling instead.
    stats().counter("hv.vms_created").inc();
    return vm;
}

void
Hypervisor::start()
{
    stats().counter("hv.started").inc();

    // Per-VM timeline gauges. Guest VMs only (_vms excludes Xen's
    // Dom0/idle domains), in creation order so exports are
    // deterministic. Captures are stable: VM/VCPU storage never
    // moves, metrics domains are held by pointer, and the sampler is
    // cleared before any of them is torn down (Machine::reset()).
    TimelineSampler &tl = mach.probe().timeline;
    const TapId ws = worldSwitchTap();
    for (const auto &vmPtr : _vms) {
        Vm &vm = *vmPtr;
        MetricsDomain *dom = &vmMetrics(vm);
        // value(), not counter(): a registering read would add a
        // zero-valued world_switch row to every snapshot.
        tl.addRateGauge(vm.name() + ".world_switch.rate",
                        [dom, ws] {
                            return static_cast<std::int64_t>(
                                dom->value(ws));
                        });
        for (VcpuId i = 0; i < vm.numVcpus(); ++i) {
            const Vcpu *vc = &vm.vcpu(i);
            tl.addGauge(vm.name() + ".vcpu" + std::to_string(i) +
                            ".state",
                        [vc] {
                            return static_cast<std::int64_t>(
                                vc->state());
                        },
                        static_cast<std::uint16_t>(vc->pcpu()));
        }
    }
}

Cycles
Hypervisor::chargeGuest(Cycles t, Vcpu &v, Cycles work)
{
    return mach.cpu(v.pcpu()).charge(t, work);
}

VcpuId
Hypervisor::pickVirqTarget(Vm &vm)
{
    if (virqDist == VirqDistribution::SingleVcpu)
        return 0;
    const VcpuId target = nextVirqRr % vm.numVcpus();
    nextVirqRr = (nextVirqRr + 1) % vm.numVcpus();
    return target;
}

} // namespace virtsim
