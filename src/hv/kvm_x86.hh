/**
 * @file
 * KVM x86: the Type 2 hypervisor on VT-x (paper Sections II, IV).
 *
 * x86 root mode is orthogonal to the privilege rings, so the host
 * Linux runs in root mode unmodified and KVM maps onto the hardware
 * as naturally as Xen does. Every VM transition switches a large
 * block of register state to/from the VMCS *in hardware* — fast to
 * initiate but fundamentally a memory transfer, which is why both x86
 * hypervisors land at ~1.2-1.3k cycles per hypercall: more than 3x
 * Xen ARM's register-bank switch, but 5x cheaper than split-mode
 * KVM ARM's software-managed full switch.
 *
 * The testbed's Xeons lacked vAPIC, so guest EOIs trap (Table II:
 * ~1.5k cycles vs ARM's 71); Apic::setVApic flips that for the
 * ablation bench.
 */

#ifndef VIRTSIM_HV_KVM_X86_HH
#define VIRTSIM_HV_KVM_X86_HH

#include <deque>
#include <map>
#include <memory>

#include "hv/hypervisor.hh"
#include "os/netstack.hh"
#include "os/vhost.hh"

namespace virtsim {

/** Software path costs of KVM x86 (Linux 4.0-rc4 era). */
struct KvmX86Params
{
    /** Exit-reason decode and dispatch in kvm. [derived] closes the
     *  Table II Hypercall (1,300) with the hardware exit/entry. */
    Cycles exitDispatch = 60;
    Cycles hypercallHandler = 100;
    /** APIC register emulation. [derived] Interrupt Controller Trap
     *  (2,384) minus the hypercall skeleton. */
    Cycles apicEmulation = 1184;
    /** kvm_vcpu_kick path after ICR emulation (target lookup,
     *  request bits, reschedule). [derived] closes Virtual IPI. */
    Cycles kickPath = 1446;
    /** EOI-exit emulation. [derived] Virtual IRQ Completion (1,556)
     *  minus exit+entry. */
    Cycles eoiEmulation = 356;
    /** Host reschedule-IPI handler incl. APIC ack/EOI accesses. */
    Cycles hostIpiHandler = 260;
    /** Host scheduler switch between VCPU threads + vcpu load/put.
     *  [derived] VM Switch (4,812) minus exit/entry and the VMCS
     *  pointer switch. */
    Cycles vcpuSwitchWork = 3492;
    /** ioeventfd signal. [derived] I/O Latency Out (560) minus the
     *  hardware exit — nearly free, the paper's standout number. */
    Cycles ioeventfdSignal = 40;
    Cycles vhostNotifyLatency = 1100;
    /** Blocked-VCPU wake path. [derived] I/O Latency In (18,923) —
     *  the paper notes KVM x86 is the slowest of all four here. */
    Cycles vcpuWakeFromIdle = 17773;
    Cycles irqfdInject = 300;
    Cycles guestIrqDispatch = 100;
    Cycles guestDriverRxPop = 640;
};

/**
 * The KVM x86 hypervisor model.
 */
class KvmX86 : public Hypervisor
{
  public:
    explicit KvmX86(Machine &m);

    std::string name() const override { return "KVM x86"; }
    HvType type() const override { return HvType::Type2; }

    Vm &createVm(const std::string &name, int n_vcpus,
                 const std::vector<PcpuId> &pinning) override;
    void start() override;
    TapId worldSwitchTap() const override;
    void declareShardChannels(ShardedEventKernel &kern) override;

    void hypercall(Cycles t, Vcpu &v, Done done) override;
    void irqControllerTrap(Cycles t, Vcpu &v, Done done) override;
    void virtualIpi(Cycles t, Vcpu &src, Vcpu &dst, Done done) override;
    void virqComplete(Cycles t, Vcpu &v, Done done) override;
    void vmSwitch(Cycles t, Vcpu &from, Vcpu &to, Done done) override;
    void ioSignalOut(Cycles t, Vcpu &v, Done done) override;
    void ioSignalIn(Cycles t, Vcpu &v, Done done) override;
    void injectVirq(Cycles t, Vcpu &v, IrqId virq, Done done) override;
    void blockVcpu(Vcpu &v) override;
    void deliverPacketToVm(Cycles t, Vm &vm, const Packet &pkt,
                           Done done) override;
    void guestTransmit(Cycles t, Vcpu &v, const Packet &pkt,
                       Done done) override;

    /** @name VT-x primitives (public for tests) */
    ///@{
    /** VM exit: hardware state switch to the VMCS + dispatch. */
    Cycles exitToHost(Cycles t, Vcpu &v);

    /** VM entry: hardware state load from the VMCS. */
    Cycles enterVm(Cycles t, Vcpu &v);
    ///@}

    void attachVirtualNic(Vm &vm, VhostBackend::Params params);

    VhostBackend *vhost() { return _vhost.get(); }
    const NetstackCosts &netCosts() const { return net; }

    KvmX86Params params;

  protected:
    struct HostCtx
    {
        RegFile regs;
        Vcpu *loaded = nullptr;
        bool inVm = false;
    };

    VgicDistributor &dist(Vm &vm);
    void onPhysIrq(Cycles t, PcpuId cpu, IrqId irq);
    void handleKick(Cycles t, PcpuId cpu);
    void handleNicIrq(Cycles t, PcpuId cpu);
    Cycles flushAndResume(Cycles t, Vcpu &v, Done done);
    void notifyGuestRx(Cycles t, Vm &vm, const Packet &pkt, Done done);
    void pumpTx(Cycles t);

    std::vector<HostCtx> hostCtx;
    std::map<VmId, std::unique_ptr<VgicDistributor>> dists;
    std::vector<std::deque<std::function<void(Cycles)>>> kickActions;
    std::unique_ptr<VhostBackend> _vhost;
    /** Guest-kick-to-worker channel ("kvm.ioeventfd"); null until
     *  declareShardChannels. */
    ShardChannel *chIoeventfd = nullptr;
    Vm *netVm = nullptr;
    NetstackCosts net;
    std::map<std::uint64_t, Done> txDone;
    bool txPumpActive = false;
    /** End of the current NAPI-poll window: rx events landing
     *  inside it ride the in-progress notification instead of
     *  raising another interrupt (virtio EVENT_IDX / event-channel
     *  masking). */
    Cycles rxQuietUntil = 0;
    /** Frames waiting for tx ring space (virtio backpressure). */
    std::deque<std::pair<Vcpu *, std::pair<Packet, Done>>> txBacklog;
};

} // namespace virtsim

#endif // VIRTSIM_HV_KVM_X86_HH
