#include "hv/world_switch.hh"

#include <array>
#include <string>

namespace virtsim {

namespace {

/** 2 × numRegClasses leg taps, interned once. */
struct SwitchTaps
{
    std::array<std::array<TapId, numRegClasses>, 2> ids;

    SwitchTaps()
    {
        for (std::size_t c = 0; c < numRegClasses; ++c) {
            const RegClass cls = static_cast<RegClass>(c);
            ids[0][c] = internTap(std::string("ws.restore.") +
                                  to_string(cls));
            ids[1][c] = internTap(std::string("ws.save.") +
                                  to_string(cls));
        }
    }
};

const SwitchTaps &
switchTaps()
{
    static const SwitchTaps taps;
    return taps;
}

} // namespace

TapId
switchTap(RegClass cls, bool isSave)
{
    return switchTaps().ids[isSave ? 1 : 0]
                           [static_cast<std::size_t>(cls)];
}

std::optional<SwitchTapInfo>
switchTapInfo(TapId tap)
{
    const SwitchTaps &taps = switchTaps();
    for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t c = 0; c < numRegClasses; ++c) {
            if (taps.ids[s][c] == tap)
                return SwitchTapInfo{static_cast<RegClass>(c), s == 1};
        }
    }
    return std::nullopt;
}

Cycles
WorldSwitchEngine::save(PhysicalCpu &cpu, RegFile &save_area,
                        std::initializer_list<RegClass> classes,
                        Cycles t)
{
    // Resolve the sink once: the per-class tap lookup is an
    // out-of-line call the disabled path must not pay.
    TraceSink *sink = trace && trace->enabled() ? trace : nullptr;
    Cycles total = 0;
    for (RegClass cls : classes) {
        save_area.copyClassFrom(cpu.regs(), cls);
        const Cycles c = cm.cost(cls).save;
        if (sink) {
            sink->span(t + total, t + total + c, switchTap(cls, true),
                       TraceCat::Switch,
                       static_cast<std::uint16_t>(cpu.id()), c);
        }
        total += c;
    }
    return total;
}

Cycles
WorldSwitchEngine::restore(PhysicalCpu &cpu, const RegFile &save_area,
                           std::initializer_list<RegClass> classes,
                           Cycles t)
{
    TraceSink *sink = trace && trace->enabled() ? trace : nullptr;
    Cycles total = 0;
    for (RegClass cls : classes) {
        cpu.regs().copyClassFrom(save_area, cls);
        const Cycles c = cm.cost(cls).restore;
        if (sink) {
            sink->span(t + total, t + total + c,
                       switchTap(cls, false), TraceCat::Switch,
                       static_cast<std::uint16_t>(cpu.id()), c);
        }
        total += c;
    }
    return total;
}

} // namespace virtsim
