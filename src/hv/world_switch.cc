#include "hv/world_switch.hh"

namespace virtsim {

Cycles
WorldSwitchEngine::save(PhysicalCpu &cpu, RegFile &save_area,
                        std::initializer_list<RegClass> classes)
{
    Cycles total = 0;
    for (RegClass cls : classes) {
        save_area.copyClassFrom(cpu.regs(), cls);
        const Cycles c = cm.cost(cls).save;
        total += c;
        if (recording)
            recs.push_back(SwitchRecord{cls, true, c});
    }
    return total;
}

Cycles
WorldSwitchEngine::restore(PhysicalCpu &cpu, const RegFile &save_area,
                           std::initializer_list<RegClass> classes)
{
    Cycles total = 0;
    for (RegClass cls : classes) {
        cpu.regs().copyClassFrom(save_area, cls);
        const Cycles c = cm.cost(cls).restore;
        total += c;
        if (recording)
            recs.push_back(SwitchRecord{cls, false, c});
    }
    return total;
}

void
WorldSwitchEngine::startRecording()
{
    recs.clear();
    recording = true;
}

void
WorldSwitchEngine::stopRecording()
{
    recording = false;
}

} // namespace virtsim
