/**
 * @file
 * Figure 4 machinery: run every application workload natively and
 * virtualized, and report the normalized performance overhead
 * ("all numbers are normalized to 1 for native performance, so that
 * lower numbers represent better performance").
 */

#ifndef VIRTSIM_CORE_APPBENCH_HH
#define VIRTSIM_CORE_APPBENCH_HH

#include <optional>
#include <string>
#include <vector>

#include "core/testbed.hh"
#include "core/workloads/workload.hh"

namespace virtsim {

/** One workload x configuration cell of Figure 4. */
struct AppBenchCell
{
    SutKind kind;
    double score = 0;
    /** native_score / score; >= 1 means slower than native.
     *  Unset when the configuration could not run the workload
     *  (the Xen x86 Apache Dom0 panic). */
    std::optional<double> normalizedOverhead;
    /** Per-VM metrics digest (traps / world switches / vIRQs) from
     *  the run that produced this score; empty for native cells. */
    std::string metricsBrief;
};

/** One workload row of Figure 4. */
struct AppBenchRow
{
    std::string workload;
    /** Native score per architecture (indexed by Arch). */
    double nativeScoreArm = 0;
    double nativeScoreX86 = 0;
    std::vector<AppBenchCell> cells;
};

/** Options shared by every run in a Figure 4 sweep. */
struct AppBenchOptions
{
    std::vector<SutKind> kinds = {SutKind::KvmArm, SutKind::XenArm,
                                  SutKind::KvmX86, SutKind::XenX86};
    VirqDistribution virqDist = VirqDistribution::SingleVcpu;
    bool tsoRegression = true;
    bool zeroCopyGrants = false;
    /** Model the Dom0 Mellanox driver panic on Xen x86 (reported as
     *  N/A for Apache, as in the paper). */
    bool dom0MellanoxBug = true;
    std::uint64_t seed = 42;
};

/** Run one workload through native + the configured kinds. */
AppBenchRow runAppBenchRow(Workload &w, const AppBenchOptions &opt);

/** Run the full Figure 4 workload set. */
std::vector<AppBenchRow> runFigure4(const AppBenchOptions &opt);

} // namespace virtsim

#endif // VIRTSIM_CORE_APPBENCH_HH
