/**
 * @file
 * Netperf v2.6.0-style benchmarks (paper Table IV):
 *
 *  - TCP_RR: 1-byte request/response ping-pong, measuring latency.
 *    Instrumented with the paper's tcpdump-style datalink/VM
 *    timestamp taps to regenerate the Table V decomposition.
 *  - TCP_STREAM: client-to-server bulk transfer (receive path into
 *    the VM — the path where Xen's grant-copy architecture loses
 *    >250% according to Section V).
 *  - TCP_MAERTS: server-to-client bulk transfer (transmit path, where
 *    the Linux TSO-autosizing regression hits Xen).
 */

#ifndef VIRTSIM_CORE_NETPERF_HH
#define VIRTSIM_CORE_NETPERF_HH

#include <cstdint>

#include "core/testbed.hh"

namespace virtsim {

/** TCP_RR parameters. */
struct NetperfRrConfig
{
    /** Transactions to measure (after warmup). */
    int transactions = 200;
    int warmup = 10;
    /** Client think time per transaction.
     *  [calibrated] with the wire latency so native send-to-recv
     *  lands at 29.7 us (Table V). */
    double clientProcessUs = 3.5;
    /** Server application echo processing.
     *  [calibrated] so native recv-to-send lands at 14.5 us. */
    double appEchoUs = 1.75;
};

/** TCP_RR outcome: the Table V columns. */
struct NetperfRrResult
{
    double transPerSec = 0;
    double timePerTransUs = 0;
    /** Mean leg durations (microseconds). */
    double sendToRecvUs = 0;
    double recvToSendUs = 0;
    /** VM-internal decomposition; zero on native. */
    double recvToVmRecvUs = 0;
    double vmRecvToVmSendUs = 0;
    double vmSendToSendUs = 0;
};

/** Run TCP_RR on a testbed. */
NetperfRrResult runNetperfRr(Testbed &tb,
                             NetperfRrConfig cfg = NetperfRrConfig{});

/** Bulk-transfer outcome. */
struct NetperfStreamResult
{
    double gbps = 0;
    std::uint64_t bytesDelivered = 0;
    double seconds = 0;
    std::uint64_t framesDropped = 0;
};

/** Bulk-transfer parameters. */
struct NetperfStreamConfig
{
    /** Measured window of simulated time, seconds. */
    double windowSeconds = 0.02;
    /** TCP_MAERTS transmit pipelining (segments in flight). */
    int inflightSegments = 24;
    /** Server app consume cost per delivered aggregate. */
    double appConsumeUs = 0.35;
};

/** TCP_STREAM: client -> server(VM) receive-path throughput. */
NetperfStreamResult
runNetperfStream(Testbed &tb,
                 NetperfStreamConfig cfg = NetperfStreamConfig{});

/** TCP_MAERTS: server(VM) -> client transmit-path throughput. */
NetperfStreamResult
runNetperfMaerts(Testbed &tb,
                 NetperfStreamConfig cfg = NetperfStreamConfig{});

} // namespace virtsim

#endif // VIRTSIM_CORE_NETPERF_HH
