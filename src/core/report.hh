/**
 * @file
 * Plain-text table rendering for the bench harnesses, so each bench
 * binary prints rows shaped like the paper's tables.
 */

#ifndef VIRTSIM_CORE_REPORT_HH
#define VIRTSIM_CORE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace virtsim {

class FlightRecorder;
class Frequency;
class RequestTracker;
class TimelineSampler;
struct ShardProfile;

/**
 * A simple right-aligned text table.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (for plotting pipelines). */
    std::string renderCsv() const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** 6500 -> "6,500" (the paper's cycle-count formatting). */
std::string formatCycles(double cycles);

/** Fixed-point decimal with n digits. */
std::string formatFixed(double value, int digits);

/** Percentage delta vs a reference ("+8.3%"). */
std::string formatDelta(double measured, double reference);

/**
 * ASCII sparkline of a sampled gauge: the series resampled into
 * `width` buckets, each rendered " .:-=+*#%@" by its bucket maximum
 * scaled to the series maximum. Empty when the gauge has no samples.
 */
std::string renderSparkline(const TimelineSampler &timeline,
                            std::size_t gauge, std::size_t width = 48);

/**
 * Multi-line summary of an armed timeline for bench stdout: tick and
 * sample totals, a sparkline per named gauge, and every recorded
 * watchdog anomaly window. Benches print this next to their tables so
 * a saturated queue is visible without opening the JSON export.
 */
std::string renderTimelineSummary(
    const TimelineSampler &timeline, const Frequency &freq,
    const std::vector<std::string> &gauges);

/**
 * Multi-line summary of a parallel-kernel profile (sim/shard_profile):
 * realized speedup, a per-lane busy/wait/stall wall-time table, and
 * the top critical channels — which declared lookahead to tighten for
 * the run to scale further. Empty string when the profile was never
 * armed. Host wall-clock numbers: print next to bench tables, never
 * diff byte-for-byte.
 */
std::string renderShardSummary(const ShardProfile &profile);

/**
 * Multi-line summary of a request-latency tracker (sim/latency) for
 * bench stdout: one row per recorded phase with count, mean and the
 * tail quantiles in microseconds, from the lane-merged aggregate
 * histograms — so the printed numbers match the virtsim-latency-1
 * export byte for byte. Empty string when nothing was recorded.
 */
std::string renderLatencySummary(const RequestTracker &latency,
                                 const Frequency &freq);

/**
 * Multi-line summary of a flight recorder's captured incidents for
 * bench stdout: one row per incident with the trigger instant, window
 * bounds, record count, critical-path coverage and the top blame-diff
 * term vs the healthy reference — the "what changed" headline without
 * opening the incident JSON. Empty string when nothing was captured
 * and nothing was dropped.
 */
std::string renderIncidentSummary(const FlightRecorder &flight,
                                  const Frequency &freq);

} // namespace virtsim

#endif // VIRTSIM_CORE_REPORT_HH
