/**
 * @file
 * Plain-text table rendering for the bench harnesses, so each bench
 * binary prints rows shaped like the paper's tables.
 */

#ifndef VIRTSIM_CORE_REPORT_HH
#define VIRTSIM_CORE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace virtsim {

/**
 * A simple right-aligned text table.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV (for plotting pipelines). */
    std::string renderCsv() const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** 6500 -> "6,500" (the paper's cycle-count formatting). */
std::string formatCycles(double cycles);

/** Fixed-point decimal with n digits. */
std::string formatFixed(double value, int digits);

/** Percentage delta vs a reference ("+8.3%"). */
std::string formatDelta(double measured, double reference);

} // namespace virtsim

#endif // VIRTSIM_CORE_REPORT_HH
