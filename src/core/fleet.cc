#include "core/fleet.hh"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/report.hh"
#include "hw/gic.hh"
#include "hw/machine.hh"
#include "sim/attrib.hh"
#include "sim/channel.hh"
#include "sim/env.hh"
#include "sim/flight.hh"
#include "sim/latency.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "sim/shard_profile.hh"
#include "sim/slo.hh"

namespace virtsim {

namespace {

/** "out.json" -> "out.fleet.json": fleet exports carry their own tag
 *  so a bench run arming both a testbed world and the fleet never
 *  clobbers one export with the other. */
std::string
perTagPath(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos ||
        path.find('/', dot) != std::string::npos)
        return path + ".fleet";
    return path.substr(0, dot) + ".fleet" + path.substr(dot);
}

std::string
envPath(const char *name)
{
    const char *p = std::getenv(name);
    return (p && *p) ? std::string(p) : std::string();
}

/** One persistent TCP_RR connection. All fields except `cpu` are
 *  client-side state, touched only by lane-0 events. `remaining`
 *  counts responses still owed in the closed loop, arrivals still to
 *  depart in the open loop. Request departure times are threaded
 *  through the event chain rather than stored here — open-loop
 *  connections can have several requests in flight at once. */
struct FleetConn
{
    int cpu = 0;
    int remaining = 0;
    Cycles rttSum = 0;
    Cycles lastDone = 0;
    std::uint64_t completed = 0;
};

/** The running world: machine, channels, connections. */
struct FleetWorld
{
    FleetConfig cfg;
    ShardedEventKernel kern;
    MachineConfig mc;
    std::unique_ptr<Machine> mach;
    Gic *gic = nullptr;
    Cycles wire = 0;
    std::vector<ShardChannel *> req; ///< per-CPU client -> server
    std::vector<ShardChannel *> rsp; ///< per-CPU server -> client
    std::vector<FleetConn> conns;
    std::uint64_t transactions = 0;

    /** Observability opt-ins (same env knobs as core/testbed, with a
     *  ".fleet" path tag). */
    std::string tracePath;
    std::string metricsPath;
    std::string flamePath;
    std::string timelinePath;
    std::string shardProfilePath;
    std::string latencyPath;
    double timelineHz = 100000.0;
    std::unique_ptr<CausalAnalyzer> attrib;
    /** Request-latency tracking armed (cfg.latency or
     *  VIRTSIM_LATENCY). */
    bool latencyOn = false;
    SloEngine slo;

    /** Incident forensics (VIRTSIM_INCIDENTS): the flight recorder
     *  plus the causal span/edge taps the request path stamps so an
     *  incident window reconstructs a nonempty critical path. The
     *  client side stamps on a pseudo-track one past the last CPU. */
    std::string incidentsDir;
    FlightRecorder flight;
    TapId queueTap;
    TapId serveTap;

    std::uint16_t
    clientTrack() const
    {
        return static_cast<std::uint16_t>(cfg.nCpus);
    }

    /** Open-loop arrival state, touched only by lane-0 events (and
     *  the setup thread): one RNG stream per connection plus the
     *  global MMPP burst chain with its own stream. */
    std::vector<Random> arrivalRng;
    Random burstRng{1};
    bool bursting = false;
    std::uint64_t arrivalsLeft = 0;

    /** Connections VM `i` serves (uniform unless connsByVm skews). */
    int
    connsOf(int i) const
    {
        return cfg.connsByVm.empty()
                   ? cfg.connsPerCpu
                   : cfg.connsByVm[static_cast<std::size_t>(i)];
    }

    FleetWorld(const FleetConfig &c, int lanes)
        : cfg(c), kern(lanes), mc(MachineConfig::hpMoonshotM400())
    {
        VIRTSIM_ASSERT(lanes >= 1, "fleet needs >= 1 lane");
        // The VM-count scale axis: each VM is one netperf-RR service
        // pinned to its own vCPU, so the machine is sized to the VM
        // count. The env override lets CI and benches sweep fleet
        // size without a code change.
        if (const auto vms =
                envPositiveCount("VIRTSIM_FLEET_VMS", maxFleetVms))
            cfg.nVms = static_cast<int>(*vms);
        if (cfg.nVms > 0)
            cfg.nCpus = cfg.nVms;
        VIRTSIM_ASSERT(cfg.nCpus <= maxFleetVms, "fleet of ",
                       cfg.nCpus, " VMs exceeds maxFleetVms (",
                       maxFleetVms, ")");
        VIRTSIM_ASSERT(cfg.nCpus >= 1 && cfg.connsPerCpu >= 1 &&
                           cfg.transactionsPerConn >= 1,
                       "empty fleet workload");
        VIRTSIM_ASSERT(cfg.connsByVm.empty() ||
                           cfg.connsByVm.size() ==
                               static_cast<std::size_t>(cfg.nCpus),
                       "connsByVm has ", cfg.connsByVm.size(),
                       " entries for ", cfg.nCpus, " VMs");
        for (const int k : cfg.connsByVm)
            VIRTSIM_ASSERT(k >= 1, "connsByVm entries must be >= 1");
        mc.name = "fleet";
        mc.nCpus = cfg.nCpus;

        // Overload injection from the environment: a burst factor
        // switches the fleet to open-loop MMPP arrivals so CI can
        // drive the same binary past its SLO without a code change.
        if (const auto bf =
                envPositiveReal("VIRTSIM_FLEET_BURST_FACTOR", 1e6)) {
            cfg.openLoop = true;
            cfg.burstRateFactor = *bf;
        }
        if (const auto us = envPositiveReal(
                "VIRTSIM_FLEET_INTERARRIVAL_US", 1e9)) {
            cfg.openLoop = true;
            cfg.meanInterarrivalUs = *us;
        }
        VIRTSIM_ASSERT(cfg.meanInterarrivalUs > 0.0 &&
                           cfg.burstRateFactor > 0.0 &&
                           cfg.meanBurstUs > 0.0 &&
                           cfg.meanCalmUs > 0.0,
                       "open-loop arrival parameters must be positive");

        MachineShardPlan plan;
        if (cfg.roundRobinPlan) {
            plan.deviceLane = 0;
            plan.cpuLane.resize(static_cast<std::size_t>(cfg.nCpus));
            for (int i = 0; i < cfg.nCpus; ++i)
                plan.cpuLane[static_cast<std::size_t>(i)] = i % lanes;
        } else {
            // Balanced packing by static per-VM weight: a VM's event
            // traffic is proportional to its connection count, and
            // the client side (lane 0) handles every connection's
            // completions, so it is preloaded with the fleet total —
            // VMs prefer other lanes while any remain. (A profiling
            // warmup's per-lane event counts, kern.stats(), would
            // serve as weights the same way for workloads whose cost
            // is not connection-proportional.)
            std::vector<std::uint64_t> w(
                static_cast<std::size_t>(cfg.nCpus));
            std::uint64_t total = 0;
            for (int i = 0; i < cfg.nCpus; ++i) {
                w[static_cast<std::size_t>(i)] =
                    static_cast<std::uint64_t>(connsOf(i));
                total += w[static_cast<std::size_t>(i)];
            }
            plan = MachineShardPlan::balanced(cfg.nCpus, lanes, w,
                                              total);
        }
        // Nothing in this world sends an IPI; see the header comment.
        plan.ipiChannels = false;

        mach = std::make_unique<Machine>(kern, plan, mc);
        gic = static_cast<Gic *>(&mach->irqChip());
        wire = mach->freq().cycles(cfg.wireUs);

        for (int i = 0; i < cfg.nCpus; ++i) {
            const std::string n = "cpu" + std::to_string(i);
            req.push_back(&kern.channel("fleet.req." + n,
                                        deviceShard, cpuShard(i),
                                        wire));
            rsp.push_back(&kern.channel("fleet.rsp." + n,
                                        cpuShard(i), deviceShard,
                                        wire));
        }

        // Latency/SLO configuration must precede the tap warm-up:
        // SloEngine::warmTaps() interns the slo.*/watchdog.* taps the
        // export path stamps, and prepareForParallel below freezes
        // the tap-indexed metric arrays.
        armLatency();

        // The incident critical path walks causal spans on the
        // request path; intern their taps (and the wire-edge tap)
        // before the freeze below.
        queueTap = internTap("fleet.queue");
        serveTap = internTap("fleet.serve");
        edgeWireTap();

        // Warm the tap intern table and the stat-counter registry
        // from the setup thread (inject -> ack -> complete leaves the
        // LR array clean), then pre-size the metrics arrays: the
        // lanes bump these counters concurrently, and counter() must
        // not reallocate under them.
        gic->injectVirq(0, 0, spiNicIrq);
        gic->guestAckVirq(0);
        gic->guestCompleteVirq(0, spiNicIrq);
        mach->probe().warmTraceHealth();
        mach->metrics().prepareForParallel(cfg.nCpus);

        armObservability(lanes);

        // VM 0's connections first, then VM 1's, and so on — a fixed
        // index order independent of shard plan and lane count, which
        // is what keeps the checksum byte-identical across both.
        for (int i = 0; i < cfg.nCpus; ++i) {
            for (int j = 0; j < connsOf(i); ++j) {
                FleetConn conn;
                conn.cpu = i;
                conn.remaining = cfg.transactionsPerConn;
                conns.push_back(conn);
            }
        }

        if (cfg.openLoop) {
            // One independent stream per connection, derived from the
            // single seed with a golden-ratio stride; the burst chain
            // gets its own. Every draw happens in lane-0 events, so
            // the draw order — and with it every arrival instant — is
            // the serial lane-0 event order at any lane count.
            arrivalRng.reserve(conns.size());
            for (std::size_t k = 0; k < conns.size(); ++k) {
                arrivalRng.emplace_back(
                    cfg.arrivalSeed +
                    0x9e3779b97f4a7c15ULL * (k + 1));
            }
            burstRng = Random(cfg.arrivalSeed ^
                              0xc2b2ae3d27d4eb4fULL);
            arrivalsLeft =
                conns.size() *
                static_cast<std::uint64_t>(cfg.transactionsPerConn);
        }
    }

    /**
     * Read the latency/SLO environment and configure the tracker and
     * the SLO engine. Runs before the metrics freeze — see the call
     * site. The default objective (when cfg.slos is empty) is the
     * fleet contract: p99 RTT within fleetDefaultSloP99Us with at
     * most 1% of requests above it, judged live over 2 ms burn
     * windows. VIRTSIM_SLO_P99_US / VIRTSIM_SLO_MAX_VIOLATION
     * override the threshold / tolerated fraction of every spec.
     */
    void
    armLatency()
    {
        latencyPath = envPath("VIRTSIM_LATENCY");
        latencyOn = cfg.latency || !latencyPath.empty();
        if (!latencyOn)
            return;
        mach->probe().latency.configure(cfg.nCpus);

        std::vector<SloSpec> specs = cfg.slos;
        if (specs.empty()) {
            SloSpec def;
            def.name = "rtt_p99";
            def.phase = LatencyPhase::Rtt;
            def.quantile = 0.99;
            def.thresholdCycles =
                mach->freq().cycles(fleetDefaultSloP99Us);
            def.maxViolationFraction = 0.01;
            def.burnWindow = mach->freq().cycles(2000.0);
            specs.push_back(def);
        }
        if (const auto us =
                envPositiveReal("VIRTSIM_SLO_P99_US", 1e12)) {
            for (SloSpec &s : specs)
                s.thresholdCycles = mach->freq().cycles(*us);
        }
        if (const auto f =
                envUnitFraction("VIRTSIM_SLO_MAX_VIOLATION")) {
            for (SloSpec &s : specs)
                s.maxViolationFraction = *f;
        }
        for (SloSpec &s : specs)
            slo.addSpec(std::move(s));
        slo.bind(&mach->probe().latency);
        slo.warmTaps();
    }

    /**
     * Arm the observability sinks the environment asked for, the
     * fleet way: everything lane-partitioned, nothing serialized.
     * Called after the tap warm-up above — prepareForParallel freezes
     * the tap-indexed arrays, so every tap the run will stamp must be
     * interned first.
     */
    void
    armObservability(int lanes)
    {
        tracePath = envPath("VIRTSIM_TRACE");
        metricsPath = envPath("VIRTSIM_METRICS");
        flamePath = envPath("VIRTSIM_FLAME");
        timelinePath = envPath("VIRTSIM_TIMELINE");
        shardProfilePath = envPath("VIRTSIM_SHARD_PROFILE");
        incidentsDir = envPath("VIRTSIM_INCIDENTS");
        if (const auto hz = envPositiveCount("VIRTSIM_TIMELINE_HZ",
                                             std::uint64_t{1} << 40)) {
            timelineHz = static_cast<double>(*hz);
        }
        // Incident forensics needs both the stamping tee (trace) and
        // the barrier-tick maintenance hook (timeline), so arming it
        // arms both.
        const bool incidentsOn = !incidentsDir.empty();

        Probe &probe = mach->probe();
        if (cfg.trace || !tracePath.empty() || !flamePath.empty() ||
            incidentsOn) {
            if (const auto cap = envPositiveCount(
                    "VIRTSIM_TRACE_CAPACITY", std::uint64_t{1} << 32))
                probe.trace.setCapacity(
                    static_cast<std::size_t>(*cap));
            probe.trace.enable();
            probe.trace.prepareForParallel(lanes);
        }
        if (!flamePath.empty()) {
            // The analyzer streams through the deferred observer at
            // every lane count: the kernel flushes records to it in
            // canonical merged order at each barrier round, so the
            // folded stacks come out byte-identical whether one lane
            // stamped everything or eight did.
            attrib = std::make_unique<CausalAnalyzer>("fleet");
            probe.trace.setObserver(attrib.get());
            probe.trace.setObserverDeferred(true);
        }
        if (latencyOn) {
            probe.latency.enable();
            probe.latency.prepareForParallel(lanes);
        }
        // As in the testbed, sampling also arms under VIRTSIM_TRACE
        // alone so the Perfetto export carries counter tracks. The
        // kernel samples gauges between rounds (sampleTick) — the
        // fleet never runs the in-queue tick chain. Latency tracking
        // also arms it: the SLO engine's burn windows and rolling
        // quantile gauges live in the sampling tick.
        if (!timelinePath.empty() || !tracePath.empty() ||
            latencyOn || incidentsOn) {
            const Cycles period = std::max<Cycles>(
                1,
                mach->freq().cyclesFromSeconds(1.0 / timelineHz));
            probe.timeline.enable(period);
        }
        // After the machine's own gauges so registration order (the
        // export order) is stable.
        if (slo.armed())
            slo.installTimeline(probe.timeline, mach->freq());
        if (incidentsOn) {
            // enable() last: it sizes tick rows from the gauge count,
            // so every registration (machine + SLO) must be done.
            const double winUs =
                envPositiveReal("VIRTSIM_INCIDENT_WINDOW_US", 1e9)
                    .value_or(100.0);
            const std::uint32_t icap = static_cast<std::uint32_t>(
                envPositiveCount("VIRTSIM_INCIDENT_CAP",
                                 std::uint64_t{1} << 20)
                    .value_or(16));
            flight.configure(
                std::max<Cycles>(1, mach->freq().cycles(winUs)),
                probe.timeline.period(), icap);
            flight.bind(&probe.timeline,
                        latencyOn ? &probe.latency : nullptr);
            flight.prepareForParallel(lanes);
            flight.enable();
            probe.trace.setFlightRecorder(&flight);
            FlightRecorder *fr = &flight;
            probe.timeline.addPostSampleHook(
                [fr](Cycles now) { fr->onSample(now); });
            const TimelineSampler *tlp = &probe.timeline;
            probe.timeline.setAnomalyHook(
                [fr, tlp](Cycles now, std::uint32_t ri, bool open) {
                    fr->onAnomaly(now, tlp->ruleName(ri), open);
                });
            if (slo.armed()) {
                SloEngine *se = &slo;
                slo.setBreachHook([fr, se](Cycles now,
                                           std::size_t i) {
                    fr->trigger(now, "slo." + se->specs()[i].name +
                                         ".burn");
                });
            }
        }
        if (cfg.trace || !tracePath.empty() || !metricsPath.empty() ||
            !flamePath.empty() || !timelinePath.empty()) {
            probe.profiler.prepareForParallel(lanes,
                                              internedTapCount());
            for (int i = 0; i < lanes; ++i)
                kern.lane(i).setProfiler(&probe.profiler);
        }
        if (probe.trace.enabled() || probe.timeline.enabled())
            kern.attachProbe(&probe);
        if (!shardProfilePath.empty())
            kern.enableShardProfile();
    }

    /** Write every armed export. Called once, after the run. */
    void
    exportObservability()
    {
        const TimelineSampler &tl = mach->probe().timeline;
        const ShardProfile *sp = kern.shardProfile().enabled()
                                     ? &kern.shardProfile()
                                     : nullptr;
        if (!tracePath.empty()) {
            exportChromeTrace(perTagPath(tracePath), mach->trace(),
                              mach->freq(), "fleet", &tl, sp,
                              flight.enabled() ? &flight : nullptr);
        }
        if (!incidentsDir.empty() && flight.enabled()) {
            flight.exportIncidents(incidentsDir, mach->freq(),
                                   "fleet");
            const std::string s =
                renderIncidentSummary(flight, mach->freq());
            if (!s.empty())
                inform("\n", s);
        }
        if (!shardProfilePath.empty()) {
            exportShardProfile(perTagPath(shardProfilePath),
                               kern.shardProfile());
            inform("\n", renderShardSummary(kern.shardProfile()));
        }
        if (!flamePath.empty() && attrib)
            attrib->writeFoldedFile(perTagPath(flamePath), "fleet");
        if (!timelinePath.empty()) {
            const std::string path = perTagPath(timelinePath);
            std::ofstream os(path);
            if (!os) {
                warn("cannot open timeline file ", path);
            } else if (path.size() > 4 &&
                       path.compare(path.size() - 4, 4, ".csv") ==
                           0) {
                os << tl.renderCsv(mach->freq());
            } else {
                os << tl.renderJson(mach->freq()) << "\n";
            }
        }
        if (!latencyPath.empty()) {
            const std::string path = perTagPath(latencyPath);
            std::ofstream os(path);
            if (!os) {
                warn("cannot open latency file ", path);
            } else {
                os << renderLatencyJson(
                          mach->probe().latency, mach->freq(),
                          "fleet",
                          slo.armed()
                              ? slo.verdictsJson(mach->freq())
                              : std::string())
                   << "\n";
            }
            inform("\n", renderLatencySummary(mach->probe().latency,
                                              mach->freq()));
        }
        if (!metricsPath.empty()) {
            mach->probe().syncTraceHealth();
            tl.publishAnomalies(mach->metrics());
            if (slo.armed())
                slo.publish(mach->metrics());
            if (envPositiveCount("VIRTSIM_SHARD_STATS", 1)) {
                // Every lane has joined by export time, so the
                // single-threaded publisher may intern the sparse,
                // lane-count-dependent shard taps that could not be
                // pre-warmed before prepareForParallel().
                mach->metrics().endParallel();
                kern.publishStats(mach->metrics());
            }
            const std::string path = perTagPath(metricsPath);
            std::ofstream os(path);
            if (!os) {
                warn("cannot open metrics file ", path);
            } else {
                os << mach->metrics().snapshot().toJson() << "\n";
            }
        }
    }

    /** Dispatch a request: leaves the client at `depart`, hits the
     *  server CPU one wire flight later. Runs on lane 0 (or the
     *  setup thread for the initial burst). */
    void
    sendRequest(std::size_t connIdx, Cycles depart)
    {
        const int cpu = conns[connIdx].cpu;
        const Cycles at = depart + wire;
        // Open the client->server wire edge on the client's
        // pseudo-track (stamped from lane 0/setup only, so one lane
        // owns the track). The token rides the event chain and is
        // redeemed on the server CPU's track, linking the two tracks
        // in the incident window's causal graph.
        const std::uint64_t token = mach->trace().edgeOut(
            depart, edgeWireTap(), TraceCat::Io, clientTrack());
        req[static_cast<std::size_t>(cpu)]->send(
            at, [this, connIdx, cpu, at, token] {
                serveRequest(connIdx, cpu, at, token);
            });
    }

    /** The server side of one transaction, on the CPU's own lane:
     *  NIC interrupt, LR injection, guest ack, service body, virq
     *  completion — the paper's receive path — then the response
     *  leaves as a separate tx-softirq event. The departure time
     *  (at - wire) rides the event chain so the client can account
     *  the RTT even with several requests of one connection in
     *  flight (open loop). */
    void
    serveRequest(std::size_t connIdx, int cpu, Cycles at,
                 std::uint64_t token)
    {
        PhysicalCpu &p = mach->cpu(cpu);
        const CostModel &cm = mach->costs();
        const Cycles t = std::max(at, p.frontier());

        gic->injectVirq(t, cpu, spiNicIrq);
        Cycles cost = cm.irqEntryExit + gic->lrWriteCost() +
                      gic->regAccessCost();
        const IrqId virq = gic->guestAckVirq(cpu, t);
        cost += cfg.requestWork;
        cost += gic->guestCompleteVirq(cpu, virq);
        const Cycles done = p.charge(t, cost);

        // Phase stamps on the server's own lane: the request's wire
        // flight, the queue wait in front of this CPU and the service
        // body. Together with the stamps in completeTransaction they
        // record the exact identity
        //   rtt = wire + server_queue + service + wire.
        RequestTracker &lat = mach->probe().latency;
        lat.record(cpu, LatencyPhase::WireFlight, wire);
        lat.record(cpu, LatencyPhase::ServerQueue, t - at);
        lat.record(cpu, LatencyPhase::Service, cost);

        mach->cpuQueue(cpu).scheduleAt(
            done, [this, connIdx, cpu, at, t, done, token,
                   sentAt = at - wire] {
                // Causal stamps on the server's own track (this CPU's
                // lane, honoring the one-lane-per-track contract), at
                // the completion event so every when is at or before
                // the stamping instant — never ahead of the barrier
                // clock, which keeps the flight recorder's eviction
                // simple. Redeem the wire edge, then the queue wait
                // and service body as spans, then open the response's
                // wire edge.
                const std::uint16_t trk =
                    static_cast<std::uint16_t>(cpu);
                TraceSink &trace = mach->trace();
                trace.edgeIn(at, token, edgeWireTap(), TraceCat::Io,
                             trk);
                trace.span(at, t, queueTap, TraceCat::Op, trk);
                trace.span(t, done, serveTap, TraceCat::Op, trk);
                const std::uint64_t rtok = trace.edgeOut(
                    done, edgeWireTap(), TraceCat::Io, trk);
                rsp[static_cast<std::size_t>(cpu)]->send(
                    done + wire,
                    [this, connIdx, tr = done + wire, sentAt, rtok] {
                        completeTransaction(connIdx, tr, sentAt,
                                            rtok);
                    });
            });
    }

    /** Client receives the response (lane 0): account the RTT and,
     *  in the closed loop with transactions remaining, think then
     *  send the next one. Open-loop departures are driven by the
     *  arrival chain instead. */
    void
    completeTransaction(std::size_t connIdx, Cycles tr, Cycles sentAt,
                        std::uint64_t token)
    {
        mach->trace().edgeIn(tr, token, edgeWireTap(), TraceCat::Io,
                             clientTrack());
        FleetConn &c = conns[connIdx];
        c.rttSum += tr - sentAt;
        c.lastDone = tr;
        ++c.completed;
        ++transactions;
        RequestTracker &lat = mach->probe().latency;
        lat.record(c.cpu, LatencyPhase::Rtt, tr - sentAt);
        lat.record(c.cpu, LatencyPhase::WireFlight, wire);
        if (!cfg.openLoop && --c.remaining > 0) {
            lat.record(c.cpu, LatencyPhase::ClientThink,
                       cfg.clientThink);
            sendRequest(connIdx, tr + cfg.clientThink);
        }
    }

    /** Next open-loop inter-arrival gap for connection `k`, at the
     *  rate the current MMPP state dictates. Lane 0 only. */
    Cycles
    drawInterarrival(std::size_t k)
    {
        const double mean = bursting
                                ? cfg.meanInterarrivalUs /
                                      cfg.burstRateFactor
                                : cfg.meanInterarrivalUs;
        return std::max<Cycles>(
            1, mach->freq().cycles(arrivalRng[k].exponential(mean)));
    }

    /** Open-loop arrival for connection `k` at `when` (lane 0): the
     *  request departs regardless of outstanding responses, and the
     *  chain reschedules itself while arrivals remain. */
    void
    scheduleArrival(std::size_t k, Cycles when)
    {
        kern.lane(0).scheduleAt(when, [this, k, when] {
            sendRequest(k, when);
            --arrivalsLeft;
            if (--conns[k].remaining > 0)
                scheduleArrival(k, when + drawInterarrival(k));
        });
    }

    /** MMPP state flip (lane 0): toggle burst/calm and reschedule
     *  after an exponential sojourn — unless every arrival has
     *  already departed, so the run can drain. */
    void
    scheduleBurstFlip(Cycles when)
    {
        kern.lane(0).scheduleAt(when, [this, when] {
            bursting = !bursting;
            if (arrivalsLeft == 0)
                return;
            const double mean =
                bursting ? cfg.meanBurstUs : cfg.meanCalmUs;
            const Cycles dt = std::max<Cycles>(
                1, mach->freq().cycles(burstRng.exponential(mean)));
            scheduleBurstFlip(when + dt);
        });
    }

    FleetResult
    run()
    {
        // Stagger the opening requests/arrivals with a prime stride
        // so the initial burst does not land on one cycle; steady
        // state is governed by the modelled RTTs (closed loop) or the
        // arrival process (open loop) from then on.
        if (cfg.openLoop) {
            for (std::size_t k = 0; k < conns.size(); ++k)
                scheduleArrival(k, 1 + static_cast<Cycles>(k) * 97);
            if (cfg.burstRateFactor != 1.0) {
                scheduleBurstFlip(
                    1 + std::max<Cycles>(
                            1, mach->freq().cycles(
                                   burstRng.exponential(
                                       cfg.meanCalmUs))));
            }
        } else {
            for (std::size_t k = 0; k < conns.size(); ++k)
                sendRequest(k, 1 + static_cast<Cycles>(k) * 97);
        }

        FleetResult r;
        r.finalTime = kern.run();
        // Flush incident windows still waiting on their post-trigger
        // half before anything exports.
        if (flight.enabled())
            flight.finalize(r.finalTime);
        r.transactions = transactions;
        if (slo.armed())
            r.sloBreaches = slo.breaches();
        r.anomalies = mach->probe().timeline.anomalyCount();

        std::uint64_t h = 1469598103934665603ULL;
        const auto mix = [&h](std::uint64_t v) {
            for (int b = 0; b < 8; ++b) {
                h ^= (v >> (8 * b)) & 0xff;
                h *= 1099511628211ULL;
            }
        };
        for (std::size_t k = 0; k < conns.size(); ++k) {
            const FleetConn &c = conns[k];
            r.totalRttCycles += c.rttSum;
            mix(k);
            mix(c.completed);
            mix(c.rttSum);
            mix(c.lastDone);
        }
        mix(r.finalTime);
        r.checksum = h;

        r.rounds = kern.stats().rounds;
        r.parallelRounds = kern.stats().parallelRounds;
        r.laneDispatches = kern.stats().laneDispatches;
        exportObservability();
        return r;
    }
};

} // namespace

FleetResult
runNetperfRrFleet(const FleetConfig &cfg, int lanes)
{
    FleetWorld world(cfg, lanes);
    return world.run();
}

} // namespace virtsim
