/**
 * @file
 * Text rendering of grouped bar charts, so the Figure 4 bench can
 * print an actual *figure* — normalized overhead bars per workload
 * and hypervisor — alongside the numeric table, mirroring the paper's
 * presentation.
 */

#ifndef VIRTSIM_CORE_FIGURE_HH
#define VIRTSIM_CORE_FIGURE_HH

#include <optional>
#include <string>
#include <vector>

namespace virtsim {

/**
 * A grouped horizontal bar chart rendered in plain text.
 */
class BarFigure
{
  public:
    /**
     * @param series_names one name per bar within a group (e.g. the
     *        four hypervisor configurations)
     * @param max_value    value at full bar width; longer bars clip
     *        with a ">" marker (Figure 4 clips the same way for Xen
     *        TCP_STREAM)
     * @param width        bar field width in characters
     */
    BarFigure(std::vector<std::string> series_names, double max_value,
              int width = 48);

    /**
     * Append one group (e.g. one workload). Values must match the
     * series count; nullopt renders as "N/A" (the Xen x86 Apache
     * cell).
     */
    void addGroup(const std::string &label,
                  std::vector<std::optional<double>> values);

    /** Render the whole figure. */
    std::string render() const;

    /** Render one bar line (exposed for tests). */
    std::string renderBar(double value) const;

    std::size_t groups() const { return body.size(); }

  private:
    struct Group
    {
        std::string label;
        std::vector<std::optional<double>> values;
    };

    std::vector<std::string> series;
    double maxValue;
    int width;
    std::vector<Group> body;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_FIGURE_HH
