/**
 * @file
 * A multi-CPU netperf TCP_RR fleet: the sharded kernel's parallel
 * showcase world.
 *
 * The paper's multicore experiments (Section V.C) run one netperf
 * instance per core; this world models that shape directly — a bank
 * of server CPUs each serving a set of persistent request/response
 * connections from a client behind the 10 GbE wire. Unlike the
 * single-flow testbed worlds (whose hypervisor run queues, backend
 * rings and workload frontiers are all zero-latency coupled, so they
 * must collapse onto one lane), the per-CPU request streams here only
 * interact through the wire. That makes the wire's one-way latency a
 * real conservative lookahead, so the per-CPU lanes genuinely run in
 * parallel.
 *
 * Topology under VIRTSIM_SHARDS = N:
 *  - lane 0: the client (all connections) and the device shard,
 *  - PhysicalCpu i: the lane MachineShardPlan::balanced() packs it
 *    onto — per-VM connection counts as weights, the client's total
 *    preloading lane 0 so VMs prefer other lanes while any remain
 *    (FleetConfig::roundRobinPlan restores the legacy i mod N
 *    assignment; results are byte-identical either way),
 *  - per-CPU channels "fleet.req.cpu<i>" (client -> cpu) and
 *    "fleet.rsp.cpu<i>" (cpu -> client), lookahead = the wire's
 *    one-way flight time.
 *
 * The machine's IPI channels are opted out (MachineShardPlan
 * ::ipiChannels): nothing here sends an IPI, and their ~360-cycle
 * lookahead would otherwise throttle every lane's horizon to IPI
 * quanta instead of wire quanta.
 *
 * Every modelled quantity (per-connection RTT sums, CPU frontiers,
 * the final clock) depends only on per-connection and per-CPU state,
 * so results are byte-identical at any lane count — the determinism
 * property the sharded kernel promises, and what test_shard verifies.
 */

#ifndef VIRTSIM_CORE_FLEET_HH
#define VIRTSIM_CORE_FLEET_HH

#include <cstdint>
#include <vector>

#include "sim/slo.hh"
#include "sim/types.hh"

namespace virtsim {

/** Shape of the fleet workload. Defaults model the paper's 4-CPU
 *  multicore point: 2.4 GHz ARM server, 12 us one-way wire. */
struct FleetConfig
{
    /** Server CPUs (one netperf service per CPU). */
    int nCpus = 4;
    /**
     * Server VMs, the cloud-consolidation scale axis (ROADMAP item
     * 1): each VM is one netperf-RR service pinned to its own vCPU,
     * so nVms > 0 sizes the machine to nVms CPUs and overrides
     * nCpus. 0 (the default) keeps the classic one-service-per-CPU
     * shape of nCpus. VIRTSIM_FLEET_VMS overrides from the
     * environment, validated against maxFleetVms.
     */
    int nVms = 0;
    /** Persistent TCP_RR connections per server CPU. */
    int connsPerCpu = 32;
    /**
     * Per-VM connection counts — the load-skew axis. Empty = uniform
     * (connsPerCpu everywhere); otherwise one entry per VM, each >=
     * 1, and connsPerCpu is ignored. Skewed fleets are what
     * balanced() planning packs: the per-VM counts double as the
     * static per-shard weights.
     */
    std::vector<int> connsByVm;
    /**
     * Use the legacy round-robin shard plan (VM i on lane i mod
     * lanes) instead of MachineShardPlan::balanced() packing by
     * per-VM connection weight. Modelled results are byte-identical
     * either way — the kernel's determinism bar guarantees the plan
     * only moves wall-clock, never results — so this exists for
     * differential tests and plan comparisons.
     */
    bool roundRobinPlan = false;
    /** Request/response transactions each connection performs. */
    int transactionsPerConn = 250;
    /** One-way wire latency in microseconds (client <-> server). */
    double wireUs = 12.0;
    /** Service body per request (protocol + application work). */
    Cycles requestWork = 9000;
    /** Client think time between a response and the next request. */
    Cycles clientThink = 600;
    /** Force trace recording on even without VIRTSIM_TRACE (no file
     *  export) — benches measuring traced-run overhead use this. */
    bool trace = false;

    /**
     * Open-loop arrivals: each connection's requests depart on a
     * modelled arrival process regardless of outstanding responses
     * (requests from one connection may overlap), instead of the
     * default closed think-send-wait loop. transactionsPerConn then
     * bounds the number of arrivals per connection. This is the
     * overload-injection mode: an arrival rate beyond the service
     * capacity grows the server queues without the closed loop's
     * self-limiting, which is what pushes tail latency past an SLO.
     */
    bool openLoop = false;
    /** Mean request inter-arrival time per connection, microseconds
     *  (open loop only; exponential draws). */
    double meanInterarrivalUs = 30.0;
    /**
     * MMPP burst modulation (open loop only): the fleet alternates
     * between calm and burst states with exponential sojourn times;
     * while bursting, every connection's arrival rate is multiplied
     * by this factor. 1 disables modulation (plain Poisson arrivals).
     */
    double burstRateFactor = 1.0;
    /** Mean burst-state sojourn, microseconds. */
    double meanBurstUs = 400.0;
    /** Mean calm-state sojourn, microseconds. */
    double meanCalmUs = 1600.0;
    /** Seed for the arrival and burst-state processes. */
    std::uint64_t arrivalSeed = 0x1ee7;
    /** Force request-latency tracking on even without VIRTSIM_LATENCY
     *  (no file export) — tests and benches reading the tracker or
     *  the SLO verdicts directly use this. */
    bool latency = false;
    /**
     * Latency objectives judged over the run (sim/slo). Only active
     * while latency tracking is armed. Empty = the default fleet SLO
     * (p99 RTT within fleetDefaultSloP99Us, at most 1% of requests
     * above it, judged over 2 ms burn windows).
     */
    std::vector<SloSpec> slos;
};

/** Ceiling on the fleet's VM count (FleetConfig::nVms and the
 *  VIRTSIM_FLEET_VMS override). 256 covers the scale-out story — a
 *  rack's worth of consolidated netperf-RR VMs — while keeping a
 *  typo'd VIRTSIM_FLEET_VMS=1e6 a loud failure instead of a
 *  melted host. */
inline constexpr int maxFleetVms = 256;

/** Default fleet SLO threshold on p99 RTT, microseconds. Roomy for
 *  the default closed-loop fleet (whose steady-state RTT is governed
 *  by connsPerCpu * service time), tight enough that open-loop
 *  overload trips it. Override per spec or via VIRTSIM_SLO_P99_US. */
inline constexpr double fleetDefaultSloP99Us = 200.0;

/**
 * What a fleet run produced.
 *
 * finalTime/transactions/totalRttCycles/checksum are modelled
 * quantities: byte-identical at every lane count. rounds and
 * parallelRounds describe the host-side execution and legitimately
 * differ with the lane count — they are reported for telemetry and
 * excluded from determinism comparisons.
 */
struct FleetResult
{
    Cycles finalTime = 0;
    std::uint64_t transactions = 0;
    std::uint64_t totalRttCycles = 0;
    /** FNV-1a over every connection's (index, count, rtt-sum, last
     *  completion) in fixed index order, then the final time. */
    std::uint64_t checksum = 0;

    /** SLO objectives that failed end-of-run judgment (0 while
     *  latency tracking is off). Modelled: derived from exact merged
     *  histogram counts, so lane-count independent. */
    std::uint64_t sloBreaches = 0;
    /** Watchdog anomaly windows the timeline recorded (0 while the
     *  timeline is off). Sampling instants are period-aligned
     *  simulated times, so also lane-count independent. */
    std::uint64_t anomalies = 0;

    std::uint64_t rounds = 0;         ///< host-side, lane-dependent
    std::uint64_t parallelRounds = 0; ///< host-side, lane-dependent
    /** Lane executions the coordinator dispatched; laneDispatches /
     *  rounds is the mean runnable-lane count per round, the number
     *  the sparse coordinator's idle-lane elision keeps far below
     *  the lane count on big mostly-idle fleets. Host-side. */
    std::uint64_t laneDispatches = 0;

    bool
    sameModelledResult(const FleetResult &o) const
    {
        return finalTime == o.finalTime &&
               transactions == o.transactions &&
               totalRttCycles == o.totalRttCycles &&
               checksum == o.checksum &&
               sloBreaches == o.sloBreaches &&
               anomalies == o.anomalies;
    }
};

/** Run the fleet on a sharded kernel with the given lane count
 *  (1 = the serial kernel). */
FleetResult runNetperfRrFleet(const FleetConfig &cfg, int lanes);

} // namespace virtsim

#endif // VIRTSIM_CORE_FLEET_HH
