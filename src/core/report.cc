#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/log.hh"

namespace virtsim {

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
    VIRTSIM_ASSERT(!head.empty(), "table needs headers");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    VIRTSIM_ASSERT(cells.size() == head.size(),
                   "row width ", cells.size(), " != header width ",
                   head.size());
    body.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t i = 0; i < head.size(); ++i)
        width[i] = head[i].size();
    for (const auto &row : body) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    }

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << "  ";
            // First column left-aligned (names), rest right-aligned.
            if (i == 0) {
                oss << row[i]
                    << std::string(width[i] - row[i].size(), ' ');
            } else {
                oss << std::string(width[i] - row[i].size(), ' ')
                    << row[i];
            }
        }
        oss << "\n";
    };
    emit(head);
    std::size_t total = head.size() > 0 ? head.size() * 2 - 2 : 0;
    for (std::size_t w : width)
        total += w;
    oss << std::string(total, '-') << "\n";
    for (const auto &row : body)
        emit(row);
    return oss.str();
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
TextTable::renderCsv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << ",";
            oss << csvEscape(row[i]);
        }
        oss << "\n";
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
    return oss.str();
}

std::string
formatCycles(double cycles)
{
    const auto v = static_cast<long long>(std::llround(cycles));
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.insert(out.begin(), ',');
        out.insert(out.begin(), *it);
        ++count;
    }
    if (v < 0)
        out.insert(out.begin(), '-');
    return out;
}

std::string
formatFixed(double value, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << value;
    return oss.str();
}

std::string
formatDelta(double measured, double reference)
{
    if (reference == 0.0)
        return "n/a";
    const double pct = (measured - reference) / reference * 100.0;
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(1);
    if (pct >= 0)
        oss << "+";
    oss << pct << "%";
    return oss.str();
}

} // namespace virtsim
