#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/flight.hh"
#include "sim/latency.hh"
#include "sim/log.hh"
#include "sim/shard_profile.hh"
#include "sim/timeline.hh"
#include "sim/units.hh"

namespace virtsim {

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
    VIRTSIM_ASSERT(!head.empty(), "table needs headers");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    VIRTSIM_ASSERT(cells.size() == head.size(),
                   "row width ", cells.size(), " != header width ",
                   head.size());
    body.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t i = 0; i < head.size(); ++i)
        width[i] = head[i].size();
    for (const auto &row : body) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    }

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << "  ";
            // First column left-aligned (names), rest right-aligned.
            if (i == 0) {
                oss << row[i]
                    << std::string(width[i] - row[i].size(), ' ');
            } else {
                oss << std::string(width[i] - row[i].size(), ' ')
                    << row[i];
            }
        }
        oss << "\n";
    };
    emit(head);
    std::size_t total = head.size() > 0 ? head.size() * 2 - 2 : 0;
    for (std::size_t w : width)
        total += w;
    oss << std::string(total, '-') << "\n";
    for (const auto &row : body)
        emit(row);
    return oss.str();
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
TextTable::renderCsv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << ",";
            oss << csvEscape(row[i]);
        }
        oss << "\n";
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
    return oss.str();
}

std::string
formatCycles(double cycles)
{
    const auto v = static_cast<long long>(std::llround(cycles));
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.insert(out.begin(), ',');
        out.insert(out.begin(), *it);
        ++count;
    }
    if (v < 0)
        out.insert(out.begin(), '-');
    return out;
}

std::string
formatFixed(double value, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << value;
    return oss.str();
}

std::string
renderSparkline(const TimelineSampler &timeline, std::size_t gauge,
                std::size_t width)
{
    static const char ramp[] = " .:-=+*#%@";
    const std::uint32_t n = timeline.sampleCount(gauge);
    if (n == 0 || width == 0)
        return "";
    const TimelineSample *s = timeline.samplesFor(gauge);

    // The stored series is change-deduplicated, so it describes a
    // step function: s[k].value holds from s[k].when until s[k+1].
    const Cycles begin = s[0].when;
    const Cycles end = std::max<Cycles>(s[n - 1].when, begin + 1);
    std::int64_t maxv = 0;
    for (std::uint32_t k = 0; k < n; ++k)
        maxv = std::max(maxv, s[k].value);

    std::string out(width, ' ');
    if (maxv <= 0)
        return out;
    std::uint32_t k = 0;
    for (std::size_t b = 0; b < width; ++b) {
        const Cycles lo =
            begin + (end - begin) * b / width;
        const Cycles hi =
            begin + (end - begin) * (b + 1) / width;
        // Value entering the bucket, then any step inside it.
        while (k + 1 < n && s[k + 1].when <= lo)
            ++k;
        std::int64_t bucket = s[k].value;
        for (std::uint32_t j = k + 1; j < n && s[j].when < hi; ++j)
            bucket = std::max(bucket, s[j].value);
        if (bucket > 0) {
            const std::size_t idx = 1 +
                static_cast<std::size_t>(bucket * 8 / maxv);
            out[b] = ramp[std::min<std::size_t>(idx, 9)];
        }
    }
    return out;
}

std::string
renderTimelineSummary(const TimelineSampler &timeline,
                      const Frequency &freq,
                      const std::vector<std::string> &gauges)
{
    std::ostringstream oss;
    std::uint64_t stored = 0;
    for (std::size_t g = 0; g < timeline.gaugeCount(); ++g)
        stored += timeline.sampleCount(g);
    oss << "Timeline: " << timeline.tickCount() << " ticks @ "
        << timeline.period() << " cy, " << stored
        << " samples stored";
    if (timeline.droppedSamples() > 0)
        oss << ", " << timeline.droppedSamples() << " DROPPED";
    oss << "\n";

    std::size_t label = 0;
    for (const std::string &name : gauges)
        label = std::max(label, name.size());
    for (const std::string &name : gauges) {
        const int g = timeline.findGauge(name);
        if (g < 0)
            continue;
        std::int64_t maxv = 0;
        const TimelineSample *s = timeline.samplesFor(g);
        for (std::uint32_t k = 0; k < timeline.sampleCount(g); ++k)
            maxv = std::max(maxv, s[k].value);
        oss << "  " << name
            << std::string(label - name.size(), ' ') << " |"
            << renderSparkline(timeline, g) << "| max "
            << maxv << "\n";
    }

    if (timeline.anomalyCount() == 0) {
        oss << "Watchdog: 0 anomalies\n";
        return oss.str();
    }
    oss << "Watchdog: " << timeline.anomalyCount()
        << " ANOMALIES\n";
    for (std::uint32_t a = 0; a < timeline.anomalyCount(); ++a) {
        const TimelineSampler::Anomaly &an = timeline.anomalies()[a];
        oss << "  " << timeline.ruleName(an.rule) << ": "
            << formatFixed(freq.us(an.begin), 1) << "us - "
            << formatFixed(freq.us(an.end), 1) << "us, peak "
            << an.peak << "\n";
    }
    return oss.str();
}

std::string
renderShardSummary(const ShardProfile &profile)
{
    if (!profile.enabled())
        return "";
    const std::size_t n = profile.lanes.size();
    std::ostringstream oss;
    oss << "Shard profile: " << n << " lanes ("
        << profile.lanesProfiled() << " active), " << profile.rounds
        << " rounds (" << profile.parallelRounds << " parallel), "
        << formatFixed(
               static_cast<double>(profile.wallNs) / 1e6, 2)
        << " ms wall, speedup x"
        << formatFixed(profile.speedupEstimate(), 2) << "\n";

    TextTable t({"lane", "events", "busy ms", "wait ms", "stall ms",
                 "stall rounds"});
    // Sparse like the export: a fleet-scale kernel keeps spare
    // lanes, and 200 all-zero rows would bury the table's signal.
    for (std::size_t i = 0; i < n; ++i) {
        const ShardProfile::Lane &l = profile.lanes[i];
        if (l.busyNs == 0 && l.stallNs == 0 && l.events == 0 &&
            l.stallRounds == 0)
            continue;
        t.addRow({"lane" + std::to_string(i),
                  std::to_string(l.events),
                  formatFixed(static_cast<double>(l.busyNs) / 1e6, 2),
                  formatFixed(
                      static_cast<double>(profile.waitNs(i)) / 1e6, 2),
                  formatFixed(static_cast<double>(l.stallNs) / 1e6, 2),
                  std::to_string(l.stallRounds)});
    }
    oss << t.render();

    // Top critical channels: the in-edges whose lookahead bound a
    // stalled lane's horizon most often — ranked, worst first.
    struct Edge
    {
        std::uint64_t rounds;
        std::size_t dst, src;
    };
    std::vector<Edge> edges;
    for (std::size_t d = 0; d < n; ++d) {
        for (std::size_t s = 0; s < n; ++s) {
            const std::uint64_t r = profile.critRounds[d * n + s];
            if (r > 0)
                edges.push_back({r, d, s});
        }
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.rounds != b.rounds)
                      return a.rounds > b.rounds;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  return a.src < b.src;
              });
    if (edges.empty()) {
        oss << "Critical channels: none (no horizon stalls)\n";
        return oss.str();
    }
    oss << "Critical channels (stalled rounds, worst first):\n";
    const std::size_t top = std::min<std::size_t>(edges.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
        const Edge &e = edges[i];
        const std::string &name =
            profile.critChannel[e.dst * n + e.src];
        oss << "  lane" << e.src << " -> lane" << e.dst << ": "
            << e.rounds << " rounds"
            << (name.empty() ? "" : " via \"" + name + "\"") << "\n";
    }
    return oss.str();
}

std::string
renderLatencySummary(const RequestTracker &latency,
                     const Frequency &freq)
{
    constexpr LatencyPhase phases[] = {
        LatencyPhase::Rtt, LatencyPhase::ClientThink,
        LatencyPhase::WireFlight, LatencyPhase::ServerQueue,
        LatencyPhase::Service};

    TextTable t({"phase", "count", "mean us", "p50 us", "p90 us",
                 "p99 us", "p999 us", "max us"});
    for (LatencyPhase ph : phases) {
        const LatencyHistogram h = latency.aggregate(ph);
        if (h.empty())
            continue;
        t.addRow({to_string(ph), std::to_string(h.count()),
                  formatFixed(freq.us(h.sum()) /
                                  static_cast<double>(h.count()),
                              2),
                  formatFixed(freq.us(h.p50()), 2),
                  formatFixed(freq.us(h.p90()), 2),
                  formatFixed(freq.us(h.p99()), 2),
                  formatFixed(freq.us(h.p999()), 2),
                  formatFixed(freq.us(h.max()), 2)});
    }
    if (t.rows() == 0)
        return "";

    std::ostringstream oss;
    oss << "Request latency (" << latency.cpus() << " cpus, "
        << latency.totalCount(LatencyPhase::Rtt)
        << " transactions):\n"
        << t.render();
    return oss.str();
}

std::string
renderIncidentSummary(const FlightRecorder &flight,
                      const Frequency &freq)
{
    if (flight.incidentCount() == 0 && flight.incidentsDropped() == 0)
        return "";

    TextTable t({"incident", "trigger us", "window us", "records",
                 "crit path", "top blame-diff term", "sources"});
    for (std::size_t i = 0; i < flight.incidentCount(); ++i) {
        const FlightIncident &inc = flight.incident(i);
        const DiffReport diff =
            diffBlame(inc.blame, flight.referenceBlame());
        const DiffRow *top = diff.top();
        std::string topTerm = "-";
        if (top != nullptr && top->delta() != 0) {
            topTerm = top->name + " +" +
                      formatCycles(static_cast<double>(top->delta())) +
                      " cy";
        }
        std::string sources;
        for (const std::string &s : inc.sources) {
            if (!sources.empty())
                sources += ",";
            sources += s;
        }
        std::string label = "#";
        label += std::to_string(inc.seq);
        t.addRow({std::move(label),
                  formatFixed(freq.us(inc.triggerAt), 2),
                  formatFixed(freq.us(inc.begin), 2) + ".." +
                      formatFixed(freq.us(inc.end), 2) +
                      (inc.clipped ? " (clipped)" : ""),
                  std::to_string(inc.records.size()),
                  std::to_string(inc.critical.steps.size()) + " steps",
                  topTerm, sources});
    }

    std::ostringstream oss;
    oss << "Incidents: " << flight.incidentCount() << " captured";
    if (flight.incidentsDropped() > 0)
        oss << ", " << flight.incidentsDropped()
            << " dropped past the cap";
    if (flight.referenceSealed())
        oss << " (reference window [0.."
            << formatFixed(freq.us(flight.referenceEnd()), 2)
            << " us])";
    oss << "\n" << t.render();
    return oss.str();
}

std::string
formatDelta(double measured, double reference)
{
    if (reference == 0.0)
        return "n/a";
    const double pct = (measured - reference) / reference * 100.0;
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(1);
    if (pct >= 0)
        oss << "+";
    oss << pct << "%";
    return oss.str();
}

} // namespace virtsim
