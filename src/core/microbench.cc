#include "core/microbench.hh"

#include "sim/log.hh"
#include "sim/sweep.hh"

namespace virtsim {

std::string
to_string(MicroOp op)
{
    switch (op) {
      case MicroOp::Hypercall:
        return "Hypercall";
      case MicroOp::InterruptControllerTrap:
        return "Interrupt Controller Trap";
      case MicroOp::VirtualIpi:
        return "Virtual IPI";
      case MicroOp::VirtualIrqCompletion:
        return "Virtual IRQ Completion";
      case MicroOp::VmSwitch:
        return "VM Switch";
      case MicroOp::IoLatencyOut:
        return "I/O Latency Out";
      case MicroOp::IoLatencyIn:
        return "I/O Latency In";
    }
    panic("bad MicroOp");
}

std::string
describe(MicroOp op)
{
    switch (op) {
      case MicroOp::Hypercall:
        return "Transition from VM to hypervisor and return to VM "
               "without doing any work in the hypervisor.";
      case MicroOp::InterruptControllerTrap:
        return "Trap from VM to emulated interrupt controller then "
               "return to VM.";
      case MicroOp::VirtualIpi:
        return "Issue a virtual IPI from a VCPU to another VCPU "
               "running on a different PCPU.";
      case MicroOp::VirtualIrqCompletion:
        return "VM acknowledging and completing a virtual interrupt.";
      case MicroOp::VmSwitch:
        return "Switch from one VM to another on the same physical "
               "core.";
      case MicroOp::IoLatencyOut:
        return "Latency between a driver in the VM signaling the "
               "virtual I/O device and the device receiving the "
               "signal.";
      case MicroOp::IoLatencyIn:
        return "Latency between the virtual I/O device signaling the "
               "VM and the VM receiving the virtual interrupt.";
    }
    panic("bad MicroOp");
}

MicrobenchSuite::MicrobenchSuite(Testbed &tb) : tb(tb)
{
    VIRTSIM_ASSERT(tb.virtualized(),
                   "microbenchmarks run inside a VM");
}

Vm &
MicrobenchSuite::secondVm()
{
    if (vm1 == nullptr) {
        // A second VM pinned to the same PCPUs, initially unloaded —
        // the "oversubscribed physical CPUs" scenario of the VM
        // Switch row.
        vm1 = &tb.hypervisor()->createVm("vm1", tb.width(),
                                         {0, 1, 2, 3});
    }
    return *vm1;
}

void
MicrobenchSuite::setUp(MicroOp op)
{
    Hypervisor *hv = tb.hypervisor();
    Machine &m = tb.machine();
    Vm &vm = *tb.guest();

    switch (op) {
      case MicroOp::VirtualIrqCompletion: {
        // Arm an active virtual interrupt for the VM to complete.
        if (m.arch() == Arch::Arm) {
            m.gic().injectVirq(tb.queue().now(), vm.vcpu(0).pcpu(),
                               spiNicIrq);
            m.gic().guestAckVirq(vm.vcpu(0).pcpu());
        }
        break;
      }
      case MicroOp::IoLatencyOut: {
        // Dom0 idles between iterations in the paper's setup; the
        // cost of waking it is precisely what this row measures for
        // Xen.
        if (auto *xa = dynamic_cast<XenArm *>(hv))
            xa->forceDom0Idle();
        if (auto *xx = dynamic_cast<XenX86 *>(hv))
            xx->forceDom0Idle();
        break;
      }
      case MicroOp::IoLatencyIn: {
        // The backend signals a blocked VM: the receiving VCPU is
        // idle, and (for Xen) Dom0 is the running signaller.
        tb.setIdle(0, true);
        if (auto *xa = dynamic_cast<XenArm *>(hv))
            xa->forceDom0Running();
        if (auto *xx = dynamic_cast<XenX86 *>(hv))
            xx->forceDom0Running();
        break;
      }
      default:
        break;
    }
}

void
MicrobenchSuite::issue(MicroOp op, Cycles t, Done done)
{
    Hypervisor *hv = tb.hypervisor();
    Vm &vm = *tb.guest();

    switch (op) {
      case MicroOp::Hypercall:
        hv->hypercall(t, vm.vcpu(0), std::move(done));
        return;
      case MicroOp::InterruptControllerTrap:
        hv->irqControllerTrap(t, vm.vcpu(0), std::move(done));
        return;
      case MicroOp::VirtualIpi:
        hv->virtualIpi(t, vm.vcpu(0), vm.vcpu(1), std::move(done));
        return;
      case MicroOp::VirtualIrqCompletion:
        hv->virqComplete(t, vm.vcpu(0), std::move(done));
        return;
      case MicroOp::VmSwitch: {
        // Alternate directions so every iteration is a genuine
        // switch.
        Vm &other = secondVm();
        Vcpu &cur = vm1Loaded ? other.vcpu(0) : vm.vcpu(0);
        Vcpu &next = vm1Loaded ? vm.vcpu(0) : other.vcpu(0);
        vm1Loaded = !vm1Loaded;
        hv->vmSwitch(t, cur, next, std::move(done));
        return;
      }
      case MicroOp::IoLatencyOut:
        hv->ioSignalOut(t, vm.vcpu(0), std::move(done));
        return;
      case MicroOp::IoLatencyIn:
        hv->ioSignalIn(t, vm.vcpu(0), std::move(done));
        return;
    }
    panic("bad MicroOp");
}

MicroResult
MicrobenchSuite::run(MicroOp op, int iterations)
{
    VIRTSIM_ASSERT(iterations > 0, "need at least one iteration");
    MicroResult result;
    result.op = op;

    // Iterations chain through the event queue with a settling gap,
    // mirroring a measurement loop with instruction barriers around
    // timestamps.
    const Cycles gap = tb.freq().cycles(60.0);
    auto *res = &result;
    // Iteration driver; outlives tb.run(), so the queued callbacks
    // can hold a plain pointer to it (a self-capturing shared_ptr
    // would form a reference cycle and leak).
    std::function<void(int)> iterate;
    auto *iter = &iterate;
    iterate = [this, res, iterations, gap, iter](int i) {
        if (i >= iterations)
            return;
        setUp(res->op);
        const Cycles t0 = std::max(tb.queue().now(),
                                   tb.frontier(0)) + gap;
        tb.queue().scheduleAt(t0, [this, res, i, t0, iter] {
            issue(res->op, t0, [res, i, t0, iter](Cycles t1) {
                res->cycles.add(static_cast<double>(t1 - t0));
                (*iter)(i + 1);
            });
        });
    };
    iterate(0);
    tb.run();
    if (op == MicroOp::VmSwitch && vm1Loaded) {
        // Leave the testbed with the measured VM loaded so later
        // operations target a running vm0 (uncounted switch back).
        const Cycles t = std::max(tb.queue().now(), tb.frontier(0));
        tb.hypervisor()->vmSwitch(t, vm1->vcpu(0),
                                  tb.guest()->vcpu(0), [](Cycles) {});
        tb.run();
        vm1Loaded = false;
    }
    VIRTSIM_ASSERT(res->cycles.count() ==
                   static_cast<std::size_t>(iterations),
                   "microbenchmark lost iterations: ",
                   res->cycles.count(), " of ", iterations);
    return result;
}

std::vector<MicroResult>
MicrobenchSuite::runAll(int iterations)
{
    std::vector<MicroResult> out;
    for (MicroOp op : allMicroOps)
        out.push_back(run(op, iterations));
    return out;
}

std::vector<MicroSweepColumn>
runMicrobenchSweep(const std::vector<SutKind> &kinds, int iterations,
                   bool attribution)
{
    return parallelSweep(kinds, [iterations, attribution](SutKind kind) {
        TestbedConfig tc;
        tc.kind = kind;
        TestbedLease tb = acquireTestbed(tc);
        CausalAnalyzer *an = nullptr;
        if (attribution) {
            an = &tb->attribution();
            an->setLabel(to_string(kind));
        }
        MicrobenchSuite suite(*tb);
        MicroSweepColumn col{kind, suite.runAll(iterations), {}, {}};
        col.metrics = tb->metrics().snapshot();
        if (an)
            col.blame = an->report(&tb->trace());
        return col;
    });
}

} // namespace virtsim
