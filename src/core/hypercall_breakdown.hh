/**
 * @file
 * Table III: per-register-class attribution of the KVM ARM hypercall
 * cost.
 *
 * The paper instruments KVM ARM's world switch to attribute the
 * 6,500-cycle hypercall to saving and restoring each class of
 * register state, showing that "context switching state is the
 * primary cost due to KVM ARM's design, not the cost of extra traps"
 * — and that the VGIC read-back alone costs 3,250 cycles. We do the
 * same: the WorldSwitchEngine records each class it moves during a
 * real hypercall issued through the normal path.
 */

#ifndef VIRTSIM_CORE_HYPERCALL_BREAKDOWN_HH
#define VIRTSIM_CORE_HYPERCALL_BREAKDOWN_HH

#include <vector>

#include "core/testbed.hh"
#include "hw/arch.hh"

namespace virtsim {

/** One Table III row. */
struct BreakdownRow
{
    RegClass cls;
    Cycles save = 0;
    Cycles restore = 0;
};

/** The full breakdown plus the containing hypercall cost. */
struct HypercallBreakdown
{
    std::vector<BreakdownRow> rows; ///< in Table III order
    Cycles totalSave = 0;
    Cycles totalRestore = 0;
    Cycles hypercallCycles = 0; ///< end-to-end measured hypercall

    /** Cycles not attributed to register movement: traps, Stage-2
     *  toggles, dispatch, handler. */
    Cycles unattributed() const
    {
        return hypercallCycles - totalSave - totalRestore;
    }
};

/**
 * Measure the breakdown on a KVM ARM (or VHE) testbed by recording a
 * live hypercall.
 * @pre tb runs KvmArm or KvmArmVhe.
 */
HypercallBreakdown measureHypercallBreakdown(Testbed &tb);

} // namespace virtsim

#endif // VIRTSIM_CORE_HYPERCALL_BREAKDOWN_HH
