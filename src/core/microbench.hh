/**
 * @file
 * The seven microbenchmarks of the paper's Table I, measured exactly
 * as described in Section IV: each quantifies one low-level
 * interaction between the hypervisor and the hardware virtualization
 * support, with VCPUs pinned and virtual interrupts steered away from
 * the measured VCPU. Results are reported in cycles so the 2.4 GHz
 * ARM and 2.1 GHz x86 testbeds are comparable (Table II).
 *
 * The suite drives the *same* hypervisor entry points the application
 * benchmarks use — the numbers are emergent, not tabulated.
 */

#ifndef VIRTSIM_CORE_MICROBENCH_HH
#define VIRTSIM_CORE_MICROBENCH_HH

#include <string>
#include <vector>

#include "core/testbed.hh"
#include "sim/attrib.hh"
#include "sim/probe.hh"
#include "sim/stats.hh"

namespace virtsim {

/** The Table I operations, in row order. */
enum class MicroOp
{
    Hypercall,
    InterruptControllerTrap,
    VirtualIpi,
    VirtualIrqCompletion,
    VmSwitch,
    IoLatencyOut,
    IoLatencyIn,
};

inline constexpr std::array<MicroOp, 7> allMicroOps = {
    MicroOp::Hypercall,
    MicroOp::InterruptControllerTrap,
    MicroOp::VirtualIpi,
    MicroOp::VirtualIrqCompletion,
    MicroOp::VmSwitch,
    MicroOp::IoLatencyOut,
    MicroOp::IoLatencyIn,
};

std::string to_string(MicroOp op);

/** Description of one microbenchmark (the Table I text). */
std::string describe(MicroOp op);

/** Result of one microbenchmark on one configuration. */
struct MicroResult
{
    MicroOp op;
    SampleStat cycles; ///< per-iteration cost in cycles
};

/** One configuration's full Table I column. */
struct MicroSweepColumn
{
    SutKind kind = SutKind::KvmArm;
    std::vector<MicroResult> results;
    /** Metrics captured after the column ran (trap counts, world
     *  switches, vIRQ injections per VM). */
    MetricsSnapshot metrics;
    /** Causal blame across the whole column: every span cycle the
     *  suite's operations emitted, attributed per primitive. Name
     *  keyed, so columns diff against each other directly. */
    BlameReport blame;
};

/**
 * Run the full microbenchmark suite on each configuration, one
 * independent testbed per column, farmed out across host threads
 * (sim/sweep.hh; VIRTSIM_JOBS controls the width). Columns come back
 * in input order and are byte-identical to a serial run.
 *
 * Attribution (the per-column BlameReport) is pay-for-what-you-ask:
 * with attribution=false the columns' blame reports stay empty and
 * the probe stamping inside each cell remains on its dead-probe fast
 * path. Cycle results and metrics snapshots are identical either way
 * — observability never alters simulated timing.
 */
std::vector<MicroSweepColumn>
runMicrobenchSweep(const std::vector<SutKind> &kinds,
                   int iterations = 50, bool attribution = false);

/**
 * Runs the microbenchmark suite against one virtualized testbed.
 */
class MicrobenchSuite
{
  public:
    /** @pre tb is a virtualized configuration. */
    explicit MicrobenchSuite(Testbed &tb);

    /** Run one operation for the given number of iterations. */
    MicroResult run(MicroOp op, int iterations = 50);

    /** Run the full Table I suite. */
    std::vector<MicroResult> runAll(int iterations = 50);

  private:
    /** Make sure the second VM needed by VM Switch exists. */
    Vm &secondVm();

    /** Pre-iteration state setup per operation. */
    void setUp(MicroOp op);

    /** Issue one iteration; done(t_end). */
    void issue(MicroOp op, Cycles t, Done done);

    Testbed &tb;
    Vm *vm1 = nullptr;
    bool vm1Loaded = false;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_MICROBENCH_HH
