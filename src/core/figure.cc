#include "core/figure.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/report.hh"
#include "sim/log.hh"

namespace virtsim {

BarFigure::BarFigure(std::vector<std::string> series_names,
                     double max_value, int width)
    : series(std::move(series_names)), maxValue(max_value), width(width)
{
    VIRTSIM_ASSERT(!series.empty(), "figure needs at least one series");
    VIRTSIM_ASSERT(maxValue > 0 && width > 4, "bad figure geometry");
}

void
BarFigure::addGroup(const std::string &label,
                    std::vector<std::optional<double>> values)
{
    VIRTSIM_ASSERT(values.size() == series.size(),
                   "group width ", values.size(), " != series count ",
                   series.size());
    body.push_back(Group{label, std::move(values)});
}

std::string
BarFigure::renderBar(double value) const
{
    const double frac = value / maxValue;
    const bool clipped = frac > 1.0;
    // A zero/negligible value renders as an empty bar — padding it to
    // one '#' would visually inflate overheads that round to nothing.
    const int cells = clipped
        ? width
        : std::max(static_cast<int>(std::lround(frac * width)), 0);
    std::string bar(static_cast<std::size_t>(cells), '#');
    if (clipped)
        bar.back() = '>';
    return bar;
}

std::string
BarFigure::render() const
{
    std::size_t label_w = 0;
    for (const auto &g : body)
        label_w = std::max(label_w, g.label.size());
    for (const auto &s : series)
        label_w = std::max(label_w, s.size() + 2);

    std::ostringstream oss;
    for (const auto &g : body) {
        oss << g.label << "\n";
        for (std::size_t i = 0; i < series.size(); ++i) {
            oss << "  " << series[i]
                << std::string(label_w - series[i].size() - 2, ' ')
                << " |";
            if (!g.values[i]) {
                oss << " N/A\n";
                continue;
            }
            oss << renderBar(*g.values[i]) << " "
                << formatFixed(*g.values[i], 2) << "\n";
        }
    }
    // Scale ruler.
    oss << std::string(label_w, ' ') << " |"
        << std::string(static_cast<std::size_t>(width), '-') << "|\n"
        << std::string(label_w, ' ') << " 0"
        << std::string(static_cast<std::size_t>(width - 3), ' ')
        << formatFixed(maxValue, 1) << "+\n";
    return oss.str();
}

} // namespace virtsim
