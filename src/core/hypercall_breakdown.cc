#include "core/hypercall_breakdown.hh"

#include <map>

#include "hv/world_switch.hh"
#include "sim/log.hh"

namespace virtsim {

HypercallBreakdown
measureHypercallBreakdown(Testbed &tb)
{
    auto *kvm = dynamic_cast<KvmArm *>(tb.hypervisor());
    VIRTSIM_ASSERT(kvm, "hypercall breakdown requires KVM ARM");

    Vcpu &v = tb.guest()->vcpu(0);
    TraceSink &sink = tb.machine().trace();
    const bool was_enabled = sink.enabled();
    sink.enable();
    const std::uint64_t mark = sink.total();

    HypercallBreakdown out;
    const Cycles t0 = std::max(tb.queue().now(), tb.frontier(0));
    kvm->hypercall(t0, v, [&out, t0](Cycles t1) {
        out.hypercallCycles = t1 - t0;
    });
    tb.run();
    if (!was_enabled)
        sink.disable();

    // Each world-switch span carries its per-class cycle cost as the
    // span argument, so the Begin record alone attributes the class.
    std::map<RegClass, BreakdownRow> agg;
    sink.forEachSince(mark, [&agg](const TraceRecord &r) {
        if (r.kind != TraceKind::Begin || r.cat != TraceCat::Switch)
            return;
        const auto info = switchTapInfo(r.tap);
        if (!info)
            return;
        auto &row = agg[info->cls];
        row.cls = info->cls;
        if (info->isSave)
            row.save += r.arg;
        else
            row.restore += r.arg;
    });
    for (RegClass cls : armRegClasses) {
        auto it = agg.find(cls);
        if (it == agg.end())
            continue;
        out.rows.push_back(it->second);
        out.totalSave += it->second.save;
        out.totalRestore += it->second.restore;
    }
    return out;
}

} // namespace virtsim
