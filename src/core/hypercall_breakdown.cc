#include "core/hypercall_breakdown.hh"

#include <map>

#include "sim/log.hh"

namespace virtsim {

HypercallBreakdown
measureHypercallBreakdown(Testbed &tb)
{
    auto *kvm = dynamic_cast<KvmArm *>(tb.hypervisor());
    VIRTSIM_ASSERT(kvm, "hypercall breakdown requires KVM ARM");

    WorldSwitchEngine &wse = kvm->switchEngine();
    Vcpu &v = tb.guest()->vcpu(0);

    HypercallBreakdown out;
    wse.startRecording();
    const Cycles t0 = std::max(tb.queue().now(), tb.frontier(0));
    kvm->hypercall(t0, v, [&out, t0](Cycles t1) {
        out.hypercallCycles = t1 - t0;
    });
    tb.run();
    wse.stopRecording();

    std::map<RegClass, BreakdownRow> agg;
    for (const SwitchRecord &r : wse.records()) {
        auto &row = agg[r.cls];
        row.cls = r.cls;
        if (r.isSave)
            row.save += r.cost;
        else
            row.restore += r.cost;
    }
    for (RegClass cls : armRegClasses) {
        auto it = agg.find(cls);
        if (it == agg.end())
            continue;
        out.rows.push_back(it->second);
        out.totalSave += it->second.save;
        out.totalRestore += it->second.restore;
    }
    return out;
}

} // namespace virtsim
