#include "core/appbench.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/sweep.hh"

namespace virtsim {

namespace {

TestbedConfig
configFor(SutKind kind, const AppBenchOptions &opt)
{
    TestbedConfig tc;
    tc.kind = kind;
    tc.virqDist = opt.virqDist;
    tc.zeroCopyGrants = opt.zeroCopyGrants;
    tc.tsoRegression = opt.tsoRegression;
    tc.seed = opt.seed;
    return tc;
}

} // namespace

AppBenchRow
runAppBenchRow(Workload &w, const AppBenchOptions &opt)
{
    AppBenchRow row;
    row.workload = w.name();

    bool need_arm = false;
    bool need_x86 = false;
    for (SutKind k : opt.kinds) {
        if (archOf(k) == Arch::Arm)
            need_arm = true;
        else
            need_x86 = true;
    }

    if (need_arm) {
        TestbedLease tb =
            acquireTestbed(configFor(SutKind::Native, opt));
        row.nativeScoreArm = w.run(*tb);
        VIRTSIM_ASSERT(row.nativeScoreArm > 0,
                       w.name(), ": zero native ARM score");
    }
    if (need_x86) {
        TestbedLease tb =
            acquireTestbed(configFor(SutKind::NativeX86, opt));
        row.nativeScoreX86 = w.run(*tb);
        VIRTSIM_ASSERT(row.nativeScoreX86 > 0,
                       w.name(), ": zero native x86 score");
    }

    for (SutKind k : opt.kinds) {
        AppBenchCell cell;
        cell.kind = k;
        if (k == SutKind::XenX86 && opt.dom0MellanoxBug &&
            w.triggersDom0Bug()) {
            // The paper: "the Apache benchmark could not run on Xen
            // x86 because it caused a kernel panic in Dom0."
            row.cells.push_back(cell);
            continue;
        }
        TestbedLease tb = acquireTestbed(configFor(k, opt));
        cell.score = w.run(*tb);
        cell.metricsBrief = tb->metrics().snapshot().brief();
        const double native = archOf(k) == Arch::Arm
                                  ? row.nativeScoreArm
                                  : row.nativeScoreX86;
        VIRTSIM_ASSERT(cell.score > 0, w.name(), " on ",
                       to_string(k), ": zero score");
        cell.normalizedOverhead = native / cell.score;
        row.cells.push_back(cell);
    }
    return row;
}

std::vector<AppBenchRow>
runFigure4(const AppBenchOptions &opt)
{
    // One sweep item per Figure 4 row. Workload models are cheap
    // parameter holders, so each task materializes its own copy of
    // the suite rather than sharing mutable Workload objects across
    // threads; results commit in row order, so the output is
    // byte-identical to the serial loop for any VIRTSIM_JOBS.
    const std::size_t n = figure4Workloads().size();
    return parallelSweepIndexed(n, [&opt](std::size_t i) {
        auto suite = figure4Workloads();
        return runAppBenchRow(*suite[i], opt);
    });
}

} // namespace virtsim
