#include "core/netperf.hh"

#include <vector>

#include "os/kernel.hh"
#include "sim/latency.hh"
#include "sim/log.hh"

namespace virtsim {

namespace {

/** The Table V instrumentation points (the paper's tcpdump taps),
 *  stamped into the machine's trace sink per transaction. */
struct RrTaps
{
    TapId hostRx = internTap("host.datalink.rx");   ///< "recv"
    TapId vmRx = internTap("vm.driver.rx");         ///< "VM recv"
    TapId vmTx = internTap("vm.driver.tx");         ///< "VM send"
    TapId serverTx = internTap("host.datalink.tx"); ///< "send"
    /** Causal envelope for one server-side transaction (recv ->
     *  send), rooting its world switches and backend work in blame
     *  reports and flamegraphs. */
    TapId opTcpRr = internTap("op.tcp_rr");
};

const RrTaps &
rrTaps()
{
    static const RrTaps taps;
    return taps;
}

/** Per-transaction timestamps, rebuilt from the trace after the run. */
struct RrStamps
{
    Cycles hostRx = 0;    ///< server datalink rx ("recv")
    Cycles vmRx = 0;      ///< VM driver rx ("VM recv")
    Cycles vmSend = 0;    ///< VM driver tx ("VM send")
    Cycles serverTx = 0;  ///< server datalink tx ("send")
};

} // namespace

NetperfRrResult
runNetperfRr(Testbed &tb, NetperfRrConfig cfg)
{
    const int total = cfg.transactions + cfg.warmup;
    const NetstackCosts &net = tb.netCosts();
    const Frequency f = tb.freq();
    const RrTaps &taps = rrTaps();

    tb.beginRun();

    // The Table V decomposition is computed from trace records, so
    // recording must be on for this run even when VIRTSIM_TRACE is
    // unset. A virtualized transaction emits a few dozen records
    // (world-switch spans, vIRQ instants, I/O instants) on top of the
    // four taps; size the ring so nothing this run needs is dropped.
    TraceSink &sink = tb.trace();
    const bool was_enabled = sink.enabled();
    // A fully instrumented transaction writes ~62 records (measured
    // on KVM and Xen); 96 leaves headroom without over-allocating.
    const std::size_t needed =
        static_cast<std::size_t>(total + 16) * 96;
    if (sink.capacity() < needed)
        sink.setCapacity(needed);
    sink.enable();
    const std::uint64_t mark = sink.total();

    // The netperf server blocks in recv() between transactions.
    tb.setIdle(0, true);

    std::uint64_t current = 0; // transaction id
    // Server-side arrival time per in-flight transaction, for the
    // op.tcp_rr envelope emitted when the reply hits the datalink.
    std::vector<Cycles> rxAt(static_cast<std::size_t>(total), 0);

    tb.onHostRx = [&](Cycles t, const Packet &pkt) {
        sink.stamp(t, pkt.flow, taps.hostRx);
        if (pkt.flow < rxAt.size())
            rxAt[static_cast<std::size_t>(pkt.flow)] = t;
    };

    tb.onVmRx = [&](Cycles t, const Packet &pkt) {
        const std::uint64_t id = pkt.flow;
        sink.stamp(t, id, taps.vmRx);
        tb.setIdle(0, false);
        // Guest side: stack rx, wake netserver, echo, stack tx.
        Cycles work = net.rxStack + net.socketWake +
                      f.cycles(cfg.appEchoUs) + net.txStack;
        if (tb.virtualized())
            work += net.guestResidual;
        const Cycles t1 = tb.charge(t, 0, work);
        tb.queue().scheduleAt(t1, [&tb, &sink, &taps, &rxAt, id, t1] {
            sink.stamp(t1, id, taps.vmTx);
            Packet reply;
            reply.flow = id;
            reply.bytes = 1;
            reply.born = t1;
            tb.send(t1, 0, reply,
                    [&tb, &sink, &taps, &rxAt, id](Cycles t2) {
                sink.stamp(t2, id, taps.serverTx);
                if (id < rxAt.size() && rxAt[id] > 0)
                    sink.span(rxAt[id], t2, taps.opTcpRr, TraceCat::Op,
                              noTrack, id);
                // Server application blocks in recv() again.
                tb.setIdle(0, true);
            });
        });
    };

    // Request-latency tracker (armed by VIRTSIM_LATENCY through
    // Testbed::applyObservability; a predicted branch otherwise).
    // The client-side stamps live here: RTT from the departure
    // bookkeeping below, think time when the next request is
    // scheduled. Warmup transactions are excluded, matching the
    // Table V window.
    RequestTracker &lat = tb.machine().probe().latency;
    const auto warmupU = static_cast<std::uint64_t>(cfg.warmup);
    Cycles lastSend = 0; ///< client departure of the in-flight txn

    // The client: receives the echo, thinks, sends the next request.
    auto send_request = [&tb, &current, &lastSend](Cycles t) {
        Packet req;
        req.flow = current;
        req.bytes = 1;
        req.born = t;
        lastSend = t;
        tb.clientSend(t, req);
    };

    tb.onClientRx = [&](Cycles t, const Packet &) {
        if (current >= warmupU && lastSend > 0)
            lat.record(0, LatencyPhase::Rtt, t - lastSend);
        ++current;
        if (current >= static_cast<std::uint64_t>(total))
            return;
        const Cycles think = f.cycles(cfg.clientProcessUs);
        if (current >= warmupU)
            lat.record(0, LatencyPhase::ClientThink, think);
        tb.queue().scheduleAt(t + think, [&send_request, t, think] {
            send_request(t + think);
        });
    };

    // Kick off after a settling period.
    const Cycles t_start = f.cycles(100.0);
    tb.queue().scheduleAt(t_start,
                          [&send_request, t_start] {
                              send_request(t_start);
                          });
    tb.run();

    VIRTSIM_ASSERT(current >= static_cast<std::uint64_t>(total),
                   "TCP_RR incomplete: ", current, " of ", total);
    if (sink.dropped() > 0) {
        warn("TCP_RR trace ring overflowed (", sink.dropped(),
             " records dropped); Table V legs may be incomplete");
    }

    // Rebuild the per-transaction timestamps from the trace.
    std::vector<RrStamps> stamps(static_cast<std::size_t>(total));
    sink.forEachSince(mark, [&stamps, &taps](const TraceRecord &r) {
        if (r.kind != TraceKind::Instant || r.cat != TraceCat::Tap)
            return;
        if (r.arg >= stamps.size())
            return;
        RrStamps &s = stamps[static_cast<std::size_t>(r.arg)];
        if (r.tap == taps.hostRx)
            s.hostRx = r.when;
        else if (r.tap == taps.vmRx)
            s.vmRx = r.when;
        else if (r.tap == taps.vmTx)
            s.vmSend = r.when;
        else if (r.tap == taps.serverTx)
            s.serverTx = r.when;
    });
    if (!was_enabled)
        sink.disable();

    // Aggregate the measured window (skip warmup). Legs accumulate
    // in cycle-valued LatencyHistograms rather than SampleStat: the
    // sums (and so the Table V means) stay exact integers, memory
    // stays bounded at any transaction count, and the same
    // histograms answer tail-quantile queries.
    NetperfRrResult out;
    LatencyHistogram s2r, r2s, r2vr, vr2vs, vs2s;
    const auto meanUs = [&f](const LatencyHistogram &h) {
        return h.empty() ? 0.0
                         : f.us(h.sum()) /
                               static_cast<double>(h.count());
    };
    for (int i = cfg.warmup; i < total; ++i) {
        const auto &s = stamps[static_cast<std::size_t>(i)];
        VIRTSIM_ASSERT(s.serverTx > 0,
                       "TCP_RR txn ", i, " missing from trace");
        VIRTSIM_ASSERT(s.serverTx >= s.vmSend &&
                       s.vmSend >= s.vmRx && s.vmRx >= s.hostRx,
                       "TCP_RR stamp ordering broken at txn ", i);
        r2s.add(s.serverTx - s.hostRx);
        r2vr.add(s.vmRx - s.hostRx);
        vr2vs.add(s.vmSend - s.vmRx);
        vs2s.add(s.serverTx - s.vmSend);
        // Request-phase view of the same stamps: hypervisor delivery
        // to the VM driver is the queueing leg, the VM-internal echo
        // is the service leg.
        lat.record(0, LatencyPhase::ServerQueue, s.vmRx - s.hostRx);
        lat.record(0, LatencyPhase::Service, s.vmSend - s.vmRx);
        if (i > cfg.warmup) {
            const auto &prev = stamps[static_cast<std::size_t>(i - 1)];
            s2r.add(s.hostRx - prev.serverTx);
        }
    }
    const auto &first = stamps[static_cast<std::size_t>(cfg.warmup)];
    const auto &last = stamps[static_cast<std::size_t>(total - 1)];
    const double span_us = f.us(last.serverTx - first.serverTx);
    out.timePerTransUs = span_us / (cfg.transactions - 1);
    out.transPerSec = 1e6 / out.timePerTransUs;
    out.sendToRecvUs = meanUs(s2r);
    out.recvToSendUs = meanUs(r2s);
    if (tb.virtualized()) {
        out.recvToVmRecvUs = meanUs(r2vr);
        out.vmRecvToVmSendUs = meanUs(vr2vs);
        out.vmSendToSendUs = meanUs(vs2s);
    }
    return out;
}

NetperfStreamResult
runNetperfStream(Testbed &tb, NetperfStreamConfig cfg)
{
    tb.beginRun();
    const NetstackCosts &net = tb.netCosts();
    const Frequency f = tb.freq();

    const Cycles t_start = f.cycles(200.0);
    const Cycles window = f.cyclesFromSeconds(cfg.windowSeconds);
    std::uint64_t delivered_bytes = 0;
    tb.onVmRx = [&](Cycles t, const Packet &pkt) {
        if (t >= t_start + window)
            return;
        // Guest stack processes the (possibly GRO-coalesced)
        // aggregate and delivers to the netperf sink.
        const int frames = framesFor(pkt.bytes);
        Cycles work = net.rxStack +
                      static_cast<Cycles>(frames - 1) * net.perGroFrame +
                      f.cycles(cfg.appConsumeUs);
        if (tb.virtualized())
            work += net.guestResidual / 4; // amortized, no wakeups
        tb.charge(t, 0, work);
        delivered_bytes += pkt.bytes;
    };

    // The client saturates the wire with MTU frames for the window.
    // All frames belong to the single netperf TCP connection (one
    // flow), which is what lets GRO coalesce them.
    const Cycles frame_gap =
        f.cyclesFromNs(NetstackCosts::mtuBytes * 8.0 / 10.0);
    std::uint64_t seq = 0;
    for (Cycles t = t_start; t < t_start + window; t += frame_gap) {
        Packet pkt;
        pkt.flow = 1;
        pkt.seq = seq++;
        pkt.bytes = NetstackCosts::mtuBytes;
        pkt.born = t;
        tb.clientSend(t, pkt);
    }
    tb.run();

    NetperfStreamResult out;
    out.bytesDelivered = delivered_bytes;
    out.seconds = cfg.windowSeconds;
    out.gbps = static_cast<double>(delivered_bytes) * 8.0 /
               cfg.windowSeconds / 1e9;
    out.framesDropped =
        tb.machine().stats().counterValue("nic.rx_dropped") +
        tb.machine().stats().counterValue("netback.rx_no_request") +
        tb.machine().stats().counterValue(
            "netback.rx_backlog_dropped") +
        tb.machine().stats().counterValue("vhost.rx_no_descriptor") +
        tb.machine().stats().counterValue("vhost.rx_backlog_dropped");
    return out;
}

NetperfStreamResult
runNetperfMaerts(Testbed &tb, NetperfStreamConfig cfg)
{
    tb.beginRun();
    const NetstackCosts &net = tb.netCosts();
    const Frequency f = tb.freq();
    const std::uint32_t seg_bytes = tb.tsoBytes();

    std::uint64_t client_bytes = 0;
    std::uint64_t flow = 0;
    const Cycles t_start = f.cycles(200.0);
    const Cycles window = f.cyclesFromSeconds(cfg.windowSeconds);
    bool stop = false;

    // Server transmit routine: TCP segmentation + stack + send.
    std::function<void(Cycles)> send_segment = [&](Cycles t) {
        if (stop)
            return;
        Packet seg;
        seg.flow = flow++;
        seg.bytes = seg_bytes;
        seg.born = t;
        const int frames = framesFor(seg.bytes);
        // The first send pays the cold socket path; a hot
        // tcp_sendmsg loop on small (regressed) segments costs far
        // less per call.
        const Cycles stack = flow == 0 ? net.txStack : f.cycles(2.2);
        Cycles work = stack +
                      static_cast<Cycles>(frames - 1) * net.perTsoFrame;
        if (tb.virtualized())
            work += net.guestResidual / 4;
        const Cycles t1 = tb.charge(t, 0, work);
        tb.queue().scheduleAt(t1, [&, t1, seg] {
            tb.send(t1, 0, seg, [](Cycles) {});
        });
    };

    tb.onClientRx = [&](Cycles t, const Packet &pkt) {
        if (t >= t_start + window) {
            stop = true;
            return;
        }
        client_bytes += pkt.bytes;
        // TCP self-clocking: an ack opens window for the next
        // segment.
        send_segment(t);
    };

    tb.queue().scheduleAt(t_start, [&, t_start] {
        for (int i = 0; i < cfg.inflightSegments; ++i)
            send_segment(t_start);
    });
    tb.run();

    NetperfStreamResult out;
    out.bytesDelivered = client_bytes;
    out.seconds = cfg.windowSeconds;
    out.gbps = static_cast<double>(client_bytes) * 8.0 /
               cfg.windowSeconds / 1e9;
    return out;
}

} // namespace virtsim
