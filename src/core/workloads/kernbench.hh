/**
 * @file
 * Kernbench: compilation of the Linux 3.17.0 kernel (allnoconfig,
 * GCC 4.8.2) — fork/exec-heavy compute with constant fresh-page
 * faults (paper Table IV).
 */

#ifndef VIRTSIM_CORE_WORKLOADS_KERNBENCH_HH
#define VIRTSIM_CORE_WORKLOADS_KERNBENCH_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** Kernel-compile workload model. */
class KernbenchWorkload : public Workload
{
  public:
    std::string name() const override { return "Kernbench"; }
    double run(Testbed &tb) override;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_KERNBENCH_HH
