/**
 * @file
 * Hackbench: 100 process groups x 500 loops over Unix domain
 * sockets (paper Table IV) — extreme scheduler wakeup (IPI) traffic,
 * the workload where Xen ARM gains most on KVM ARM (Section V).
 */

#ifndef VIRTSIM_CORE_WORKLOADS_HACKBENCH_HH
#define VIRTSIM_CORE_WORKLOADS_HACKBENCH_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** Scheduler-stress workload model. */
class HackbenchWorkload : public Workload
{
  public:
    std::string name() const override { return "Hackbench"; }
    double run(Testbed &tb) override;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_HACKBENCH_HH
