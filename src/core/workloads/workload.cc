#include "core/workloads/workload.hh"

#include <algorithm>

#include "core/workloads/apache.hh"
#include "core/workloads/hackbench.hh"
#include "core/workloads/kernbench.hh"
#include "core/workloads/memcached.hh"
#include "core/workloads/mysql.hh"
#include "core/workloads/netperf_workloads.hh"
#include "core/workloads/specjvm.hh"
#include "os/kernel.hh"
#include "sim/log.hh"

namespace virtsim {

double
runCpuWorkload(Testbed &tb, const CpuWorkloadParams &p)
{
    tb.beginRun();
    const Frequency f = tb.freq();
    Random &rng = tb.random();
    const Cycles window = f.cyclesFromSeconds(p.windowSeconds);
    Hypervisor *hv = tb.hypervisor();
    const NetstackCosts &net = tb.netCosts();

    // Saturate every logical CPU with the useful work for the whole
    // window; kernel events then charge on top, pushing completion
    // out. (Charges on a busy CPU are additive, so this composes
    // exactly.)
    for (int c = 0; c < tb.width(); ++c)
        tb.charge(0, c, window);

    // Timer ticks: periodic per CPU. Virtualized, the virtual timer
    // fires a physical interrupt the hypervisor translates and
    // injects (Section II); the guest then completes the virtual
    // interrupt.
    const Cycles tick_gap =
        static_cast<Cycles>(f.cyclesFromSeconds(1.0 / p.tickHz));
    for (int c = 0; c < tb.width(); ++c) {
        for (Cycles t = tick_gap; t < window; t += tick_gap) {
            const int lcpu = c;
            tb.queue().scheduleAt(t, [&tb, hv, lcpu, t, &net] {
                if (tb.virtualized()) {
                    hv->injectVirq(t, tb.guest()->vcpu(lcpu),
                                   ppiVtimerIrq,
                                   [&tb, lcpu](Cycles ti) {
                                       tb.completeVirq(ti, lcpu,
                                                       [](Cycles) {});
                                   });
                } else {
                    tb.charge(t, lcpu, net.irqPath);
                }
            });
        }
    }

    // Sensitive traps (fresh-page faults, emulated instructions):
    // handled by the hypervisor when virtualized (a full transition
    // on KVM, an EL2-local one on Xen), by the kernel natively.
    const Cycles trap_work = f.cycles(p.trapWorkUs);
    for (int c = 0; c < tb.width(); ++c) {
        if (p.sensitiveTrapsPerSec <= 0)
            break;
        const double mean_gap_us = 1e6 / p.sensitiveTrapsPerSec;
        double t_us = rng.exponential(mean_gap_us);
        while (f.cycles(t_us) < window) {
            const Cycles t = f.cycles(t_us);
            const int lcpu = c;
            tb.queue().scheduleAt(t, [&tb, hv, lcpu, t, trap_work] {
                if (tb.virtualized()) {
                    hv->hypercall(t, tb.guest()->vcpu(lcpu),
                                  [&tb, lcpu, trap_work](Cycles t1) {
                                      tb.charge(t1, lcpu, trap_work);
                                  });
                } else {
                    tb.charge(t, lcpu, trap_work);
                }
            });
            t_us += rng.exponential(mean_gap_us);
        }
    }

    // Rescheduling IPIs between CPUs (wakeups across cores).
    for (int c = 0; c < tb.width(); ++c) {
        if (p.ipisPerSec <= 0)
            break;
        const double mean_gap_us = 1e6 / p.ipisPerSec;
        double t_us = rng.exponential(mean_gap_us);
        while (f.cycles(t_us) < window) {
            const Cycles t = f.cycles(t_us);
            const int src = c;
            const int dst = (c + 1) % tb.width();
            tb.queue().scheduleAt(t, [&tb, src, dst, t] {
                tb.sendIpi(t, src, dst, [&tb, dst](Cycles ti) {
                    tb.completeVirq(ti, dst, [](Cycles) {});
                });
            });
            t_us += rng.exponential(mean_gap_us);
        }
    }

    tb.run();

    // Completion time = the slowest CPU's frontier.
    Cycles done = 0;
    for (int c = 0; c < tb.width(); ++c)
        done = std::max(done, tb.frontier(c));
    VIRTSIM_ASSERT(done >= window, "cpu workload finished early");
    // Useful work per second of wall time.
    return static_cast<double>(window) / f.seconds(done);
}

double
runRequestResponse(Testbed &tb, const ServerAppParams &p)
{
    tb.beginRun();
    const Frequency f = tb.freq();
    const NetstackCosts &net = tb.netCosts();
    const Cycles t_start = f.cycles(300.0);
    const Cycles window = f.cyclesFromSeconds(p.windowSeconds);
    const Cycles t_end = t_start + window;

    std::uint64_t next_flow = 1;
    std::uint64_t completed = 0;
    std::uint64_t completed_in_window = 0;
    std::uint64_t retransmits = 0;
    // Remaining response bytes the client expects, per flow.
    std::map<std::uint64_t, std::int64_t> expecting;
    // Last time each outstanding flow made progress (for RTO).
    std::map<std::uint64_t, Cycles> lastProgress;

    auto issue_request = [&](Cycles t) {
        Packet req;
        req.flow = next_flow++;
        req.bytes = p.requestBytes;
        req.born = t;
        expecting[req.flow] =
            static_cast<std::int64_t>(p.responseBytes);
        lastProgress[req.flow] = t;
        tb.clientSend(t, req);
    };

    // TCP retransmission: a request or response lost to a queue
    // overflow would otherwise strand its client slot forever. The
    // RTO adapts to the workload's round-trip scale, as TCP's does.
    const Cycles rto = f.cycles(
        4000.0 + 8.0 * p.concurrency * p.appWorkUs / tb.width());
    std::function<void(Cycles)> rto_sweep = [&](Cycles t) {
        for (auto &kv : expecting) {
            if (t - lastProgress[kv.first] > rto) {
                Packet req;
                req.flow = kv.first;
                req.bytes = p.requestBytes;
                req.born = t;
                kv.second =
                    static_cast<std::int64_t>(p.responseBytes);
                lastProgress[kv.first] = t;
                ++retransmits;
                tb.machine().stats().counter("app.retransmits").inc();
                tb.clientSend(t, req);
            }
        }
        if (t < t_end + rto) {
            tb.queue().scheduleAt(t + rto / 2, [&rto_sweep, t, rto] {
                rto_sweep(t + rto / 2);
            });
        }
    };

    // Server: inbound events land on the interrupt-target VCPU; the
    // request is then serviced on a worker chosen round-robin, and
    // the response streams back in TSO segments.
    // Per-flow rx processing spreads across CPUs (RSS/RPS), which is
    // why the paper found native performance insensitive to device
    // IRQ placement. What the E5 ablation moves is the *virtual
    // interrupt delivery* cost, which the hypervisor places on VCPU0
    // by default — the paper's identified bottleneck.
    auto rx_lcpu = [&](const Packet &pkt) {
        return static_cast<int>(
            pkt.flow % static_cast<std::uint64_t>(tb.width()));
    };
    constexpr std::uint64_t ackFlag = 1ULL << 62;
    tb.onVmRx = [&](Cycles t, const Packet &pkt) {
        if (pkt.flow & ackFlag) {
            // Client ACK: rx processing only.
            tb.charge(t, rx_lcpu(pkt), f.cycles(0.35));
            return;
        }
        // Request: softirq + socket delivery on the irq VCPU...
        const Cycles t1 = tb.charge(
            t, rx_lcpu(pkt), net.rxStack + f.cycles(p.rxSoftirqUs));
        // ... then application work on a worker.
        const int worker = static_cast<int>(pkt.flow %
                                            static_cast<std::uint64_t>(
                                                tb.width()));
        const std::uint64_t flow = pkt.flow;
        tb.queue().scheduleAt(t1, [&, t1, worker, flow] {
            const Cycles t2 = tb.charge(
                t1, worker, net.socketWake + f.cycles(p.appWorkUs));
            // Response: segment and transmit from the worker. The
            // TSO-autosizing regression needs a sustained rate
            // estimate to bite; short per-connection response bursts
            // still go out at full TSO size (unlike the MAERTS
            // stream).
            auto segs = tsoSegments(p.responseBytes, net.tsoBytes);
            tb.queue().scheduleAt(t2, [&, t2, worker, flow,
                                       segs = std::move(segs)] {
                Cycles t_tx = t2;
                for (const std::uint32_t bytes : segs) {
                    const int frames = framesFor(bytes);
                    t_tx = tb.charge(
                        t_tx, worker,
                        net.txStack / 2 +
                            static_cast<Cycles>(frames) *
                                net.perTsoFrame);
                    Packet seg;
                    seg.flow = flow;
                    seg.bytes = bytes;
                    seg.born = t_tx;
                    tb.send(t_tx, worker, seg, [](Cycles) {});
                }
            });
        });
    };

    // Client: tracks response completion, sends delayed acks, and
    // keeps the closed loop going. Fully deterministic so native and
    // virtualized runs are exactly comparable.
    std::map<std::uint64_t, std::uint64_t> acked;
    tb.onClientRx = [&](Cycles t, const Packet &pkt) {
        auto it = expecting.find(pkt.flow);
        if (it == expecting.end())
            return;
        it->second -= static_cast<std::int64_t>(pkt.bytes);
        lastProgress[pkt.flow] = t;
        // Delayed-ack traffic back to the server: one ack per
        // 1/acksPerResponse of the response.
        if (p.acksPerResponse > 0 && p.responseBytes > 0) {
            const std::uint64_t ack_every =
                p.responseBytes /
                static_cast<std::uint64_t>(p.acksPerResponse);
            auto &a = acked[pkt.flow];
            a += pkt.bytes;
            int nth = 0;
            while (a >= ack_every && ack_every > 0) {
                a -= ack_every;
                // Acks pace out as the response data drains off the
                // wire, each arriving as its own event at the server.
                const Cycles when = t + f.cycles(4.0 * nth++);
                Packet ack;
                ack.flow = pkt.flow | ackFlag;
                ack.bytes = 60;
                ack.born = when;
                tb.queue().scheduleAt(when, [&tb, when, ack] {
                    tb.clientSend(when, ack);
                });
            }
        }
        if (it->second > 0)
            return;
        expecting.erase(it);
        acked.erase(pkt.flow);
        lastProgress.erase(pkt.flow);
        ++completed;
        tb.machine().stats().counter("app.completed").inc();
        if (t >= t_start && t < t_end)
            ++completed_in_window;
        if (t < t_end + tb.wireLatency()) {
            // Deterministic per-flow jitter keeps the client
            // population desynchronized (a synchronized closed loop
            // convoys and under-utilizes the server).
            const std::uint64_t h =
                (pkt.flow & ~ackFlag) * 2654435761ULL;
            const double factor =
                0.5 + static_cast<double>((h >> 16) & 1023) / 1024.0;
            const Cycles think = f.cycles(p.clientThinkUs * factor);
            tb.queue().scheduleAt(t + think, [&, t, think] {
                issue_request(t + think);
            });
        }
    };

    // Stagger the initial population across one service period so
    // the loop starts desynchronized.
    tb.queue().scheduleAt(t_start, [&, t_start] {
        // Arrive at twice the service capacity so queues form
        // immediately and the servers never starve during ramp-up.
        const Cycles stride =
            f.cycles(p.appWorkUs / tb.width() / 2.0) + 1;
        for (int i = 0; i < p.concurrency; ++i) {
            const Cycles at = t_start + stride * static_cast<Cycles>(i);
            tb.queue().scheduleAt(at, [&, at] { issue_request(at); });
        }
        rto_sweep(t_start + rto);
    });
    tb.run();

    VIRTSIM_ASSERT(completed > 0, "server workload completed nothing");
    return static_cast<double>(completed_in_window) / p.windowSeconds;
}

std::vector<std::unique_ptr<Workload>>
standardAppWorkloads()
{
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<KernbenchWorkload>());
    v.push_back(std::make_unique<HackbenchWorkload>());
    v.push_back(std::make_unique<SpecJvmWorkload>());
    v.push_back(std::make_unique<ApacheWorkload>());
    v.push_back(std::make_unique<MemcachedWorkload>());
    v.push_back(std::make_unique<MySqlWorkload>());
    return v;
}

std::vector<std::unique_ptr<Workload>>
figure4Workloads()
{
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<KernbenchWorkload>());
    v.push_back(std::make_unique<HackbenchWorkload>());
    v.push_back(std::make_unique<SpecJvmWorkload>());
    v.push_back(std::make_unique<TcpRrWorkload>());
    v.push_back(std::make_unique<TcpStreamWorkload>());
    v.push_back(std::make_unique<TcpMaertsWorkload>());
    v.push_back(std::make_unique<ApacheWorkload>());
    v.push_back(std::make_unique<MemcachedWorkload>());
    v.push_back(std::make_unique<MySqlWorkload>());
    return v;
}

} // namespace virtsim
