/**
 * @file
 * Memcached 1.4.14 under memtier defaults (paper Table IV): tiny
 * requests at high rate — per-request virtualization cost dominates.
 */

#ifndef VIRTSIM_CORE_WORKLOADS_MEMCACHED_HH
#define VIRTSIM_CORE_WORKLOADS_MEMCACHED_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** Memcached workload model. */
class MemcachedWorkload : public Workload
{
  public:
    std::string name() const override { return "Memcached"; }
    double run(Testbed &tb) override;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_MEMCACHED_HH
