/**
 * @file
 * Application workload models (paper Table IV).
 *
 * Each workload is characterized by the virtualization-sensitive
 * event mix it generates — traps, faults, virtual IPIs, timer ticks,
 * network packets — plus its plain CPU work. Native scores come from
 * running the identical model on the native testbed; Figure 4's
 * normalized overhead is the ratio. Two engines cover the suite:
 *
 *  - runCpuWorkload: compute-bound jobs (kernbench, hackbench,
 *    SPECjvm2008) = saturating CPU work + a stochastic stream of
 *    kernel events (timer ticks, page faults / sensitive traps,
 *    rescheduling IPIs).
 *
 *  - runRequestResponse: network servers (Apache, Memcached, MySQL)
 *    = a closed-loop client population driving request/response
 *    traffic through the full (para)virtual I/O path, with rx
 *    processing concentrated on the interrupt-target VCPU — the
 *    paper's identified bottleneck.
 */

#ifndef VIRTSIM_CORE_WORKLOADS_WORKLOAD_HH
#define VIRTSIM_CORE_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hh"
#include "sim/random.hh"

namespace virtsim {

/** A runnable application benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * Run on a testbed; @return a score where higher is better
     * (requests/s, jobs/s, ...). Scores are only comparable between
     * runs of the *same* workload.
     */
    virtual double run(Testbed &tb) = 0;

    /** Whether the workload trips the Xen x86 Dom0 Mellanox driver
     *  panic the paper hit with Apache (reported as N/A). */
    virtual bool triggersDom0Bug() const { return false; }
};

/** Parameters of a compute-bound workload. */
struct CpuWorkloadParams
{
    double windowSeconds = 0.08;
    /** Scheduler tick frequency per (V)CPU (CONFIG_HZ=250). */
    double tickHz = 250.0;
    /** Hypervisor-sensitive traps (page faults on fresh memory,
     *  instruction emulation) per second per CPU. */
    double sensitiveTrapsPerSec = 0.0;
    /** Handler work per sensitive trap beyond the transition. */
    double trapWorkUs = 0.8;
    /** Cross-CPU rescheduling IPIs per second per CPU. */
    double ipisPerSec = 0.0;
};

/**
 * Run a compute-bound workload.
 * @return score = useful work per second of completion time (so the
 *         native/virtualized ratio is the Figure 4 overhead).
 */
double runCpuWorkload(Testbed &tb, const CpuWorkloadParams &p);

/** Parameters of a request/response server workload. */
struct ServerAppParams
{
    /** Outstanding client requests (closed loop). */
    int concurrency = 100;
    std::uint32_t requestBytes = 120;
    std::uint32_t responseBytes = 0;
    /** Application processing per request, on a worker CPU. */
    double appWorkUs = 100.0;
    /** rx softirq work per inbound event on the interrupt CPU. */
    double rxSoftirqUs = 1.6;
    /** Client ACK frames generated per response (delayed acks). */
    int acksPerResponse = 0;
    double windowSeconds = 0.25;
    double clientThinkUs = 30.0;
};

/** Run a server workload. @return completed requests per second. */
double runRequestResponse(Testbed &tb, const ServerAppParams &p);

/** The six non-netperf applications of Table IV, in order. */
std::vector<std::unique_ptr<Workload>> standardAppWorkloads();

/** All twelve Figure 4 workloads (apps + netperf), in figure order. */
std::vector<std::unique_ptr<Workload>> figure4Workloads();

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_WORKLOAD_HH
