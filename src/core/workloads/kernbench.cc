#include "core/workloads/kernbench.hh"

namespace virtsim {

double
KernbenchWorkload::run(Testbed &tb)
{
    CpuWorkloadParams p;
    // [calibrated] compile processes fault on fresh pages constantly;
    // the per-trap transition-cost difference is what separates the
    // hypervisors here (tiny everywhere, per Figure 4).
    p.sensitiveTrapsPerSec = 10500.0;
    p.trapWorkUs = 0.8;
    p.ipisPerSec = 900.0; // make/exec wakeups
    return runCpuWorkload(tb, p);
}

} // namespace virtsim
