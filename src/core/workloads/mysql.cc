#include "core/workloads/mysql.hh"

namespace virtsim {

double
MySqlWorkload::run(Testbed &tb)
{
    ServerAppParams p;
    p.concurrency = 200;
    p.requestBytes = 400;
    p.responseBytes = 2200;
    p.appWorkUs = 620.0;
    p.rxSoftirqUs = 1.4;
    p.acksPerResponse = 1;
    p.clientThinkUs = 120.0;
    p.windowSeconds = 0.3;
    return runRequestResponse(tb, p);
}

} // namespace virtsim
