/**
 * @file
 * SPECjvm2008 on the Linaro AArch64 OpenJDK port (paper Table IV):
 * steady compute, little kernel interaction once warmed up.
 */

#ifndef VIRTSIM_CORE_WORKLOADS_SPECJVM_HH
#define VIRTSIM_CORE_WORKLOADS_SPECJVM_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** JVM compute workload model. */
class SpecJvmWorkload : public Workload
{
  public:
    std::string name() const override { return "SPECjvm2008"; }
    double run(Testbed &tb) override;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_SPECJVM_HH
