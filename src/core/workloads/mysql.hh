/**
 * @file
 * MySQL 5.5.41 under SysBench with 200 parallel transactions
 * (paper Table IV): compute-heavy per request, light network
 * traffic, so overhead stays modest everywhere.
 */

#ifndef VIRTSIM_CORE_WORKLOADS_MYSQL_HH
#define VIRTSIM_CORE_WORKLOADS_MYSQL_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** MySQL/SysBench workload model. */
class MySqlWorkload : public Workload
{
  public:
    std::string name() const override { return "MySQL"; }
    double run(Testbed &tb) override;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_MYSQL_HH
