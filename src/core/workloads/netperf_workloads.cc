#include "core/workloads/netperf_workloads.hh"

#include "core/netperf.hh"

namespace virtsim {

double
TcpRrWorkload::run(Testbed &tb)
{
    return runNetperfRr(tb).transPerSec;
}

double
TcpStreamWorkload::run(Testbed &tb)
{
    return runNetperfStream(tb).gbps;
}

double
TcpMaertsWorkload::run(Testbed &tb)
{
    return runNetperfMaerts(tb).gbps;
}

} // namespace virtsim
