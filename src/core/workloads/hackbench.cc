#include "core/workloads/hackbench.hh"

namespace virtsim {

double
HackbenchWorkload::run(Testbed &tb)
{
    CpuWorkloadParams p;
    // [calibrated] hackbench's defining behaviour: "lots of threads
    // that are sleeping and waking up, requiring frequent IPIs for
    // rescheduling" (Section V).
    p.ipisPerSec = 16500.0;
    p.sensitiveTrapsPerSec = 1200.0;
    p.windowSeconds = 0.06;
    return runCpuWorkload(tb, p);
}

} // namespace virtsim
