/**
 * @file
 * Apache 2.4.7 serving the 41 KB GCC manual index to ApacheBench
 * with 100 concurrent requests (paper Table IV). The response stream
 * plus client acks concentrate virtual-interrupt work on VCPU0 —
 * the saturation the E5 ablation relieves. This workload pattern is
 * also what exposed the Dom0 Mellanox driver panic on Xen x86.
 */

#ifndef VIRTSIM_CORE_WORKLOADS_APACHE_HH
#define VIRTSIM_CORE_WORKLOADS_APACHE_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** Apache web-server workload model. */
class ApacheWorkload : public Workload
{
  public:
    std::string name() const override { return "Apache"; }
    double run(Testbed &tb) override;
    bool triggersDom0Bug() const override { return true; }
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_APACHE_HH
