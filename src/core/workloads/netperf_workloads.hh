/**
 * @file
 * The three netperf modes of Table IV wrapped as Figure 4 workloads.
 */

#ifndef VIRTSIM_CORE_WORKLOADS_NETPERF_WORKLOADS_HH
#define VIRTSIM_CORE_WORKLOADS_NETPERF_WORKLOADS_HH

#include "core/workloads/workload.hh"

namespace virtsim {

/** Netperf TCP_RR (score = transactions/s). */
class TcpRrWorkload : public Workload
{
  public:
    std::string name() const override { return "TCP_RR"; }
    double run(Testbed &tb) override;
};

/** Netperf TCP_STREAM (score = Gbps into the VM). */
class TcpStreamWorkload : public Workload
{
  public:
    std::string name() const override { return "TCP_STREAM"; }
    double run(Testbed &tb) override;
};

/** Netperf TCP_MAERTS (score = Gbps out of the VM). */
class TcpMaertsWorkload : public Workload
{
  public:
    std::string name() const override { return "TCP_MAERTS"; }
    double run(Testbed &tb) override;
};

} // namespace virtsim

#endif // VIRTSIM_CORE_WORKLOADS_NETPERF_WORKLOADS_HH
