#include "core/workloads/memcached.hh"

namespace virtsim {

double
MemcachedWorkload::run(Testbed &tb)
{
    ServerAppParams p;
    p.concurrency = 64;
    p.requestBytes = 150;
    p.responseBytes = 1100;
    p.appWorkUs = 36.0;
    p.rxSoftirqUs = 1.4;
    p.acksPerResponse = 0;
    p.clientThinkUs = 12.0;
    p.windowSeconds = 0.12;
    return runRequestResponse(tb, p);
}

} // namespace virtsim
