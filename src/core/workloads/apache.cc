#include "core/workloads/apache.hh"

namespace virtsim {

double
ApacheWorkload::run(Testbed &tb)
{
    ServerAppParams p;
    p.concurrency = 100;
    p.requestBytes = 180;
    p.responseBytes = 41 * 1024;
    p.appWorkUs = 60.0;
    p.rxSoftirqUs = 2.2;
    p.acksPerResponse = 9;
    p.clientThinkUs = 25.0;
    return runRequestResponse(tb, p);
}

} // namespace virtsim
