#include "core/workloads/specjvm.hh"

namespace virtsim {

double
SpecJvmWorkload::run(Testbed &tb)
{
    CpuWorkloadParams p;
    p.sensitiveTrapsPerSec = 2400.0; // GC page churn
    p.trapWorkUs = 0.5;
    p.ipisPerSec = 350.0;
    return runCpuWorkload(tb, p);
}

} // namespace virtsim
