#include "core/testbed.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "core/report.hh"
#include "os/kernel.hh"
#include "sim/env.hh"
#include "sim/log.hh"

namespace virtsim {

namespace {

/** One-way wire latency between server and client, in microseconds.
 *  [calibrated] so native send-to-recv lands at 29.7 us (Table V)
 *  with the NIC DMA and client processing of the netperf model. */
constexpr double wireOneWayUs = 12.0;

/** Default p99 round-trip SLO for testbed workloads, in
 *  microseconds. Like the watchdog thresholds, it sits well above
 *  every paper-configuration round trip (tens of microseconds,
 *  Table V), so a breach flags a genuinely pathological run rather
 *  than normal virtualization overhead. VIRTSIM_SLO_P99_US
 *  overrides. */
constexpr double testbedDefaultSloP99Us = 500.0;

} // namespace

std::string
to_string(SutKind k)
{
    switch (k) {
      case SutKind::Native:
        return "Native";
      case SutKind::NativeX86:
        return "Native x86";
      case SutKind::KvmArm:
        return "KVM ARM";
      case SutKind::XenArm:
        return "Xen ARM";
      case SutKind::KvmX86:
        return "KVM x86";
      case SutKind::XenX86:
        return "Xen x86";
      case SutKind::KvmArmVhe:
        return "KVM ARM (VHE)";
    }
    panic("bad SutKind");
}

bool
isVirtualized(SutKind k)
{
    return k != SutKind::Native && k != SutKind::NativeX86;
}

Arch
archOf(SutKind k)
{
    switch (k) {
      case SutKind::KvmX86:
      case SutKind::XenX86:
      case SutKind::NativeX86:
        return Arch::X86;
      default:
        return Arch::Arm;
    }
}

Testbed::Testbed(TestbedConfig config)
    : cfg(config), kern(shardLanes()), eq(kern.lane(0)),
      rng(config.seed),
      net(NetstackCosts::linux(
          (archOf(config.kind) == Arch::Arm ? CostModel::armAtlas()
                                            : CostModel::x86Xeon())
              .freq))
{
    MachineConfig mc = archOf(cfg.kind) == Arch::Arm
                           ? MachineConfig::hpMoonshotM400()
                           : MachineConfig::dellR320();
    // Default plan: every CPU on the device lane. A classic testbed
    // world is coupled end to end through zero-latency shared state
    // (hypervisor run queues, backend rings, workload frontiers), so
    // it must collapse onto one lane whatever VIRTSIM_SHARDS says;
    // the declared channels then degenerate to plain scheduleAt and
    // results stay byte-identical. core/fleet.hh builds the plan
    // that spreads CPUs across lanes.
    server = std::make_unique<Machine>(kern, MachineShardPlan{}, mc);
    wire_ = std::make_unique<Wire>(
        eq, server->stats(), server->freq().cycles(wireOneWayUs),
        &server->probe());
    // Both wire legs are declared channels (the NIC-to-client edge
    // of the shard model); with client and NIC on the device shard
    // they resolve same-lane here.
    wire_->bindChannels(
        &kern.channel("wire.to_server", deviceShard, deviceShard,
                      wire_->oneWayLatency()),
        &kern.channel("wire.to_client", deviceShard, deviceShard,
                      wire_->oneWayLatency()));

    wire_->setServerEndpoint([this](Cycles t, const Packet &pkt) {
        server->nic().receiveFromWire(t, pkt);
    });
    wire_->setClientEndpoint([this](Cycles t, const Packet &pkt) {
        if (onClientRx)
            onClientRx(t, pkt);
    });
    server->nic().onWireTx = [this](Cycles t, const Packet &pkt) {
        wire_->sendToClient(t, pkt);
    };

    if (isVirtualized(cfg.kind))
        buildVirtualized();
    else
        buildNative();

    // Observability opt-in: VIRTSIM_TRACE=<file> records and exports
    // a Perfetto-loadable trace; VIRTSIM_METRICS=<file> dumps the
    // metrics snapshot as JSON. Either also attaches the event-kernel
    // dispatch profiler.
    // VIRTSIM_TRACE_CAPACITY=<records> resizes the ring before it is
    // enabled (rounded up to a power of two; 24 bytes per record).
    // Numeric knobs parse through envPositiveCount, which fatal()s on
    // garbage instead of silently keeping the default.
    if (const auto cap = envPositiveCount("VIRTSIM_TRACE_CAPACITY",
                                          std::uint64_t{1} << 32)) {
        server->trace().setCapacity(static_cast<std::size_t>(*cap));
    }
    if (const char *p = std::getenv("VIRTSIM_TRACE")) {
        if (*p)
            tracePath = p;
    }
    if (const char *p = std::getenv("VIRTSIM_METRICS")) {
        if (*p)
            metricsPath = p;
    }
    // VIRTSIM_FLAME=<file> streams blame through the causal analyzer
    // and writes a folded-stack file (flamegraph.pl input) at
    // teardown.
    if (const char *p = std::getenv("VIRTSIM_FLAME")) {
        if (*p)
            flamePath = p;
    }
    // VIRTSIM_TIMELINE=<file> samples gauges and writes the series
    // (JSON, or CSV when the path ends in .csv) at teardown;
    // VIRTSIM_TIMELINE_HZ tunes the simulated-time sampling rate.
    if (const char *p = std::getenv("VIRTSIM_TIMELINE")) {
        if (*p)
            timelinePath = p;
    }
    if (const auto hz = envPositiveCount("VIRTSIM_TIMELINE_HZ",
                                         std::uint64_t{1} << 40)) {
        timelineHz = static_cast<double>(*hz);
    }
    // VIRTSIM_SHARD_PROFILE=<file> records the parallel-kernel wall
    // time profile (per-lane busy/wait/stall, critical channels) and
    // writes it as JSON at teardown. Host-clock measurements — not
    // part of the byte-identity guarantee the other exports meet.
    if (const char *p = std::getenv("VIRTSIM_SHARD_PROFILE")) {
        if (*p)
            shardProfilePath = p;
    }
    // VIRTSIM_LATENCY=<file> arms per-request phase histograms and
    // the SLO engine, and writes the virtsim-latency-1 JSON at
    // teardown. VIRTSIM_SLO_P99_US / VIRTSIM_SLO_MAX_VIOLATION
    // override the objective's threshold / tolerated fraction.
    if (const char *p = std::getenv("VIRTSIM_LATENCY")) {
        if (*p)
            latencyPath = p;
    }
    // VIRTSIM_INCIDENTS=<dir> arms the always-on flight recorder and
    // writes one virtsim-incident-1 JSON per captured incident into
    // the directory at teardown. VIRTSIM_INCIDENT_WINDOW_US /
    // VIRTSIM_INCIDENT_CAP size the frozen window and the capture cap.
    if (const char *p = std::getenv("VIRTSIM_INCIDENTS")) {
        if (*p)
            incidentsDir = p;
    }
    applyObservability();
}

void
Testbed::applyObservability()
{
    // Incident forensics needs both the stamping tee (trace sink) and
    // the timeline tick chain, so arming it arms both.
    const bool incidentsOn = !incidentsDir.empty();
    if (!tracePath.empty() || incidentsOn)
        server->trace().enable();
    if (!flamePath.empty())
        attribution();
    const bool latencyOn = latencyWanted || !latencyPath.empty();
    if (latencyOn) {
        Probe &p = server->probe();
        // Machine::reset() returns the tracker to the unconfigured
        // state; re-arm it the way the other sinks re-arm here.
        if (!p.latency.enabled()) {
            p.latency.configure(server->numCpus());
            p.latency.enable();
        }
        if (!slo.armed()) {
            SloSpec def;
            def.name = "rtt_p99";
            def.phase = LatencyPhase::Rtt;
            def.quantile = 0.99;
            def.thresholdCycles =
                server->freq().cycles(testbedDefaultSloP99Us);
            def.maxViolationFraction = 0.01;
            def.burnWindow = server->freq().cycles(2000.0);
            if (const auto us =
                    envPositiveReal("VIRTSIM_SLO_P99_US", 1e12))
                def.thresholdCycles = server->freq().cycles(*us);
            if (const auto f =
                    envUnitFraction("VIRTSIM_SLO_MAX_VIOLATION"))
                def.maxViolationFraction = *f;
            slo.addSpec(std::move(def));
            slo.bind(&p.latency);
            // The testbed never freezes its metric domains
            // (classic worlds stay serial), but keep the fleet's
            // intern-before-use discipline anyway.
            slo.warmTaps();
        }
    }
    // Sampling also arms under VIRTSIM_TRACE alone so the Perfetto
    // export carries counter tracks next to its spans and flows, and
    // under latency tracking: SLO burn windows evaluate in the
    // timeline sample hook.
    if (timelineWanted || !timelinePath.empty() ||
        !tracePath.empty() || latencyOn || incidentsOn) {
        const Cycles period = std::max<Cycles>(
            1, server->freq().cyclesFromSeconds(1.0 / timelineHz));
        TimelineSampler &tl = server->probe().timeline;
        tl.enable(period);
        installWatchdogRules();
        // Gauges/rules/hook survive within a world; only (re)install
        // on a freshly built or reset one (reset clears the sampler).
        if (slo.armed() &&
            tl.findGauge("slo." + slo.specs().front().name +
                         ".q_us") < 0) {
            slo.installTimeline(tl, server->freq());
        }
        // Shard health on the timeline rides the same explicit
        // opt-in as the counter snapshot below: gauge values are
        // lane-dependent, so the default timeline export must stay
        // byte-identical at every VIRTSIM_SHARDS. registerGauges
        // itself stays lane-count safe — three aggregates always,
        // per-lane depth/horizon/lag only below its per-lane cap.
        if (envPositiveCount("VIRTSIM_SHARD_STATS", 1) &&
            tl.findGauge("shard.lanes_live") < 0) {
            kern.registerGauges(tl);
        }
        if (incidentsOn && !flightArmed) {
            // Arm last — enable() sizes tick-row storage from the
            // gauge count, so every registration above must be done.
            // Classic worlds stamp from lane 0 only, so the default
            // single-segment window ring suffices (the trace sink is
            // not lane-partitioned here either).
            flightArmed = true;
            const double winUs =
                envPositiveReal("VIRTSIM_INCIDENT_WINDOW_US", 1e9)
                    .value_or(100.0);
            const std::uint32_t icap = static_cast<std::uint32_t>(
                envPositiveCount("VIRTSIM_INCIDENT_CAP",
                                 std::uint64_t{1} << 20)
                    .value_or(16));
            Probe &p = server->probe();
            flight.configure(
                std::max<Cycles>(1, server->freq().cycles(winUs)),
                tl.period(), icap);
            flight.bind(&tl, p.latency.enabled() ? &p.latency
                                                 : nullptr);
            flight.enable();
            server->trace().setFlightRecorder(&flight);
            FlightRecorder *fr = &flight;
            tl.addPostSampleHook(
                [fr](Cycles now) { fr->onSample(now); });
            const TimelineSampler *tlp = &tl;
            tl.setAnomalyHook(
                [fr, tlp](Cycles now, std::uint32_t ri, bool open) {
                    fr->onAnomaly(now, tlp->ruleName(ri), open);
                });
            if (slo.armed()) {
                SloEngine *se = &slo;
                slo.setBreachHook(
                    [fr, se](Cycles now, std::size_t i) {
                        fr->trigger(now, "slo." + se->specs()[i].name +
                                             ".burn");
                    });
            }
        }
    }
    if (!tracePath.empty() || !metricsPath.empty() ||
        !flamePath.empty() || !timelinePath.empty()) {
        eq.setProfiler(&server->probe().profiler);
    }
    if (!shardProfilePath.empty())
        kern.enableShardProfile();
    // No serial fallback: sinks are lane-partitioned and exports
    // merge them in canonical order (sim/probe), so the parallel
    // round path and the serial path produce identical bytes. Classic
    // worlds place every model component on lane 0 (default
    // MachineShardPlan), so all stamping lands in segment 0 and the
    // in-queue timeline tick chain keeps its exact semantics at any
    // VIRTSIM_SHARDS.
}

void
Testbed::installWatchdogRules()
{
    TimelineSampler &tl = server->probe().timeline;
    if (tl.ruleCount() > 0)
        return;
    const Frequency &f = server->freq();
    // Thresholds sit well above anything the paper-config workloads
    // produce, so anomalies flag genuinely pathological states (a
    // wedged VCPU, a saturated LR file held across samples, drop
    // bursts) rather than normal bursts.
    for (std::size_t g = 0; g < tl.gaugeCount(); ++g) {
        const std::string &name = tl.gaugeName(g);
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".state") == 0) {
            // VcpuState::InHyp sustained: an exit being handled for
            // 200 us straight means the VCPU is wedged in the
            // hypervisor (every Table I operation is tens of us at
            // worst).
            tl.addRule("stalled." + name, name,
                       static_cast<std::int64_t>(VcpuState::InHyp),
                       f.cycles(200.0));
        } else if (name.size() > 12 &&
                   name.compare(name.size() - 12, 12,
                                ".gic.lr_used") == 0) {
            // All four list registers occupied across consecutive
            // samples: virtual interrupts are backing up faster than
            // the guest acknowledges them.
            tl.addRule("lr_saturation." + name, name,
                       static_cast<std::int64_t>(numListRegs),
                       f.cycles(100.0));
        }
    }
    if (tl.findGauge("nic.rx_queue") >= 0) {
        tl.addRule("rx_queue_depth", "nic.rx_queue", 1024,
                   f.cycles(100.0));
    }
    if (tl.findGauge("nic.rx_drop.rate") >= 0)
        tl.addRule("rx_drop_burst", "nic.rx_drop.rate", 8, 0);
}

namespace {

/** "out.json" + KVM ARM -> "out.kvm_arm.json": benches that build
 *  several testbeds export one distinct file per configuration
 *  instead of clobbering a shared path. */
std::string
perKindPath(const std::string &path, SutKind kind)
{
    std::string tag = to_string(kind);
    for (char &c : tag)
        c = std::isalnum(static_cast<unsigned char>(c))
                ? static_cast<char>(
                      std::tolower(static_cast<unsigned char>(c)))
                : '_';
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || path.find('/', dot) !=
                                        std::string::npos)
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

} // namespace

Testbed::~Testbed()
{
    exportObservability();
}

void
Testbed::exportObservability()
{
    if (tracePath.empty() && metricsPath.empty() &&
        flamePath.empty() && timelinePath.empty() &&
        shardProfilePath.empty() && latencyPath.empty() &&
        incidentsDir.empty()) {
        return;
    }
    // Once per run: a cached testbed exports when its lease is
    // released, and must not clobber those files with post-reset
    // emptiness when the cache is finally destroyed. reset() re-arms.
    if (observabilityExported)
        return;
    observabilityExported = true;
    // Parallel sweeps tear testbeds down from worker threads; exports
    // go one at a time. Same-kind testbeds still share a path (last
    // writer wins); distinct configurations never clobber each other.
    static std::mutex export_mutex;
    std::lock_guard<std::mutex> lock(export_mutex);
    const TimelineSampler &tl = server->probe().timeline;
    // The shard profile merges into the Perfetto export as counter
    // tracks only when explicitly armed, keeping the default trace
    // free of host-timing noise.
    const ShardProfile *sp =
        kern.shardProfile().enabled() ? &kern.shardProfile() : nullptr;
    // Capture incident windows still waiting on their post-trigger
    // half before the trace annotations and incident files write.
    if (flight.enabled())
        flight.finalize(eq.now());
    if (!tracePath.empty()) {
        exportChromeTrace(perKindPath(tracePath, cfg.kind),
                          server->trace(), server->freq(),
                          to_string(cfg.kind), &tl, sp,
                          flight.enabled() ? &flight : nullptr);
    }
    if (!incidentsDir.empty() && flight.enabled()) {
        std::string tag = to_string(cfg.kind);
        for (char &c : tag)
            c = std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)))
                    : '_';
        flight.exportIncidents(incidentsDir, server->freq(), tag);
        const std::string s =
            renderIncidentSummary(flight, server->freq());
        if (!s.empty())
            inform("\n", s);
    }
    if (!shardProfilePath.empty()) {
        exportShardProfile(perKindPath(shardProfilePath, cfg.kind),
                           kern.shardProfile());
        inform("\n", renderShardSummary(kern.shardProfile()));
    }
    if (!flamePath.empty() && _attrib) {
        _attrib->writeFoldedFile(perKindPath(flamePath, cfg.kind),
                                 to_string(cfg.kind));
    }
    if (!timelinePath.empty()) {
        const std::string path = perKindPath(timelinePath, cfg.kind);
        std::ofstream os(path);
        if (!os) {
            warn("cannot open timeline file ", path);
        } else if (path.size() > 4 &&
                   path.compare(path.size() - 4, 4, ".csv") == 0) {
            os << tl.renderCsv(server->freq());
        } else {
            os << tl.renderJson(server->freq()) << "\n";
        }
    }
    if (!latencyPath.empty()) {
        const std::string path = perKindPath(latencyPath, cfg.kind);
        std::ofstream os(path);
        if (!os) {
            warn("cannot open latency file ", path);
        } else {
            os << renderLatencyJson(
                      server->probe().latency, server->freq(),
                      to_string(cfg.kind),
                      slo.armed() ? slo.verdictsJson(server->freq())
                                  : std::string())
               << "\n";
        }
        inform("\n", renderLatencySummary(server->probe().latency,
                                          server->freq()));
    }
    if (!metricsPath.empty()) {
        server->probe().syncTraceHealth();
        // Watchdog findings land in the snapshot too, so a metrics
        // dump carries the anomaly verdict even when nobody keeps
        // the timeline file.
        tl.publishAnomalies(server->metrics());
        if (slo.armed())
            slo.publish(server->metrics());
        // Shard health is lane-dependent by nature (round counts,
        // per-lane horizons), so it only enters the snapshot on
        // explicit request — the default export stays byte-identical
        // at every VIRTSIM_SHARDS setting.
        if (envPositiveCount("VIRTSIM_SHARD_STATS", 1))
            kern.publishStats(server->metrics());
        const std::string path = perKindPath(metricsPath, cfg.kind);
        std::ofstream os(path);
        if (!os) {
            warn("cannot open metrics file ", path);
        } else {
            os << server->metrics().snapshot().toJson() << "\n";
        }
    }
}

CausalAnalyzer &
Testbed::attribution()
{
    if (!_attrib)
        _attrib = std::make_unique<CausalAnalyzer>();
    // (Re)attach every call, not just on creation: reset() detaches
    // the analyzer and disables the sink to restore the fresh state,
    // and the next attribution() user must get a live pipeline again.
    server->trace().enable();
    server->trace().setObserver(_attrib.get());
    return *_attrib;
}

void
Testbed::beginRun()
{
    server->stats().reset();
    server->probe().reset();
    // Histogram counts went back to zero; the burn-window bases the
    // live SLO state holds would be stale against them.
    slo.reset();
    flight.reset();
    if (_attrib)
        _attrib->reset();
}

void
Testbed::reset()
{
    // Order matters: the hypervisor references the machine, so tear
    // it down before rewinding machine state. Pending events may hold
    // captures pointing at the old hypervisor; dropping them via
    // eq.reset() only runs capture destructors, never the callbacks.
    hv.reset();
    guestVm = nullptr;
    kern.reset();
    server->reset();

    // An attribution() user enabled the sink and attached the
    // analyzer; a fresh testbed has neither. (Machine::reset leaves
    // the sink's wiring alone precisely so this stays the testbed's
    // call.)
    server->trace().setObserver(nullptr);
    server->trace().disable();
    if (_attrib)
        _attrib->reset();

    rng = Random(cfg.seed);
    txSeq = 0;
    onHostRx = nullptr;
    onVmRx = nullptr;
    onClientRx = nullptr;
    for (auto &q : nativeIpiDone)
        q.clear();

    // The wire, its endpoints, and the NIC's onWireTx hook capture
    // `this` and survive as-is; only the world on top is rebuilt.
    if (isVirtualized(cfg.kind))
        buildVirtualized();
    else
        buildNative();
    observabilityExported = false; // the next run exports again
    slo.reset();
    // The rebuilt sampler lost its hooks; disarm so the block in
    // applyObservability() reinstalls them (and resizes the tick
    // rows against the fresh gauge registration).
    flight.reset();
    flight.disable();
    flightArmed = false;
    applyObservability();
}

void
Testbed::buildNative()
{
    // Native Linux capped at 4 cores; all device interrupts on CPU 0
    // (the paper verified native performance is unchanged by
    // single-CPU interrupt affinity).
    server->irqChip().routeExternal(spiNicIrq, 0);
    server->irqChip().setPhysIrqHandler(
        [this](Cycles t, PcpuId cpu, IrqId irq) {
            if (irq == spiNicIrq) {
                PhysicalCpu &c = server->cpu(cpu);
                const Cycles t1 = c.charge(t, net.irqPath);
                const auto aggs = groDrain(server->nic(),
                                           net.groFrames);
                for (const auto &agg : aggs) {
                    if (onHostRx)
                        onHostRx(t1, agg);
                    if (onVmRx)
                        onVmRx(t1, agg);
                }
                return;
            }
            if (irq == sgiRescheduleIrq) {
                // Native IPI: receiver runs the scheduler IPI
                // handler; the registered completion fires.
                PhysicalCpu &c = server->cpu(cpu);
                const Cycles t1 =
                    c.charge(t, server->costs().irqEntryExit);
                auto &q =
                    nativeIpiDone[static_cast<std::size_t>(cpu)];
                if (!q.empty()) {
                    Done d = std::move(q.front());
                    q.pop_front();
                    eq.scheduleAt(t1, [t1, d] { d(t1); });
                }
                return;
            }
        });
}

void
Testbed::buildVirtualized()
{
    switch (cfg.kind) {
      case SutKind::KvmArm:
        hv = std::make_unique<KvmArm>(*server);
        break;
      case SutKind::KvmArmVhe:
        hv = std::make_unique<KvmArmVhe>(*server);
        break;
      case SutKind::XenArm:
        hv = std::make_unique<XenArm>(*server);
        break;
      case SutKind::KvmX86:
        hv = std::make_unique<KvmX86>(*server);
        break;
      case SutKind::XenX86:
        hv = std::make_unique<XenX86>(*server);
        break;
      case SutKind::Native:
      case SutKind::NativeX86:
        panic("buildVirtualized on native config");
    }
    hv->setVirqDistribution(cfg.virqDist);

    // The measured VM: 4 VCPUs / 12 GB, one VCPU per dedicated PCPU
    // (Section III).
    Vm &vm = hv->createVm("vm0", width(), {0, 1, 2, 3});
    guestVm = &vm;

    if (cfg.vApic && server->arch() == Arch::X86)
        server->apic().setVApic(true);

    // Paravirtual networking, per Section III ("All VMs used
    // paravirtualized I/O, typical of cloud infrastructure
    // deployments such as Amazon EC2").
    if (auto *kvm_arm = dynamic_cast<KvmArm *>(hv.get())) {
        VhostBackend::Params vp;
        vp.workerPcpu = 4;
        vp.hostIrqPcpu = 5;
        kvm_arm->attachVirtualNic(vm, vp);
    } else if (auto *xen_arm = dynamic_cast<XenArm *>(hv.get())) {
        NetbackBackend::Params np;
        np.dom0Pcpu = 4;
        np.zeroCopyGrants = cfg.zeroCopyGrants;
        xen_arm->attachVirtualNic(vm, np);
    } else if (auto *kvm_x86 = dynamic_cast<KvmX86 *>(hv.get())) {
        VhostBackend::Params vp;
        vp.workerPcpu = 4;
        vp.hostIrqPcpu = 5;
        kvm_x86->attachVirtualNic(vm, vp);
    } else if (auto *xen_x86 = dynamic_cast<XenX86 *>(hv.get())) {
        NetbackBackend::Params np;
        np.dom0Pcpu = 4;
        np.zeroCopyGrants = cfg.zeroCopyGrants;
        xen_x86->attachVirtualNic(vm, np);
    }

    hv->onHostDatalinkRx = [this](Cycles t, const Packet &pkt) {
        if (onHostRx)
            onHostRx(t, pkt);
    };
    hv->onGuestRx = [this](Cycles t, Vm &, const Packet &pkt) {
        if (onVmRx)
            onVmRx(t, pkt);
    };

    // Backend wake and kick edges join the kernel's channel table
    // (idempotent across reset rebuilds).
    hv->declareShardChannels(kern);
    hv->start();
}

PhysicalCpu &
Testbed::lcpuOf(int lcpu)
{
    VIRTSIM_ASSERT(lcpu >= 0 && lcpu < width(), "bad lcpu ", lcpu);
    if (!virtualized())
        return server->cpu(lcpu);
    return server->cpu(guestVm->vcpu(lcpu).pcpu());
}

Vcpu &
Testbed::vcpuOf(int lcpu)
{
    VIRTSIM_ASSERT(virtualized(), "vcpuOf on native testbed");
    VIRTSIM_ASSERT(lcpu >= 0 && lcpu < width(), "bad lcpu ", lcpu);
    return guestVm->vcpu(lcpu);
}

Cycles
Testbed::charge(Cycles t, int lcpu, Cycles work)
{
    return lcpuOf(lcpu).charge(t, work);
}

Cycles
Testbed::frontier(int lcpu)
{
    return lcpuOf(lcpu).frontier();
}

void
Testbed::setIdle(int lcpu, bool idle)
{
    if (!virtualized())
        return;
    Vcpu &v = vcpuOf(lcpu);
    if (idle) {
        if (v.state() != VcpuState::Idle)
            hv->blockVcpu(v);
    } else if (v.state() == VcpuState::Idle) {
        // The wake itself happens (and is charged) on the next
        // injection; this only reverses a premature block.
        v.setState(VcpuState::Running);
    }
}

void
Testbed::send(Cycles t, int lcpu, const Packet &pkt, Done on_datalink_tx)
{
    Packet p = pkt;
    p.seq = ++txSeq;
    if (virtualized()) {
        hv->guestTransmit(t, vcpuOf(lcpu), p,
                          std::move(on_datalink_tx));
        return;
    }
    // Native: the driver hands the frame straight to the NIC.
    PhysicalCpu &c = lcpuOf(lcpu);
    const Cycles t1 = c.charge(t, net.doorbell);
    server->nic().transmit(t1, p);
    eq.scheduleAt(t1, [t1, d = std::move(on_datalink_tx)] { d(t1); });
}

void
Testbed::sendIpi(Cycles t, int from_lcpu, int to_lcpu, Done done)
{
    if (virtualized()) {
        hv->virtualIpi(t, vcpuOf(from_lcpu), vcpuOf(to_lcpu),
                       std::move(done));
        return;
    }
    // Native SGI: sender writes the distributor, hardware delivers,
    // receiver runs the scheduler-IPI handler.
    PhysicalCpu &src = lcpuOf(from_lcpu);
    const Cycles t1 = src.charge(t, server->costs().irqChipRegAccess);
    nativeIpiDone[static_cast<std::size_t>(to_lcpu)].push_back(
        std::move(done));
    server->irqChip().sendIpi(t1, to_lcpu, sgiRescheduleIrq);
}

void
Testbed::completeVirq(Cycles t, int lcpu, Done done)
{
    if (virtualized()) {
        hv->virqComplete(t, vcpuOf(lcpu), std::move(done));
        return;
    }
    // Native: the EOI write to the physical controller.
    PhysicalCpu &c = lcpuOf(lcpu);
    const Cycles t1 = c.charge(t, server->costs().irqChipRegAccess);
    eq.scheduleAt(t1, [t1, d = std::move(done)] { d(t1); });
}

std::uint32_t
Testbed::tsoBytes() const
{
    const bool xen =
        cfg.kind == SutKind::XenArm || cfg.kind == SutKind::XenX86;
    if (xen && cfg.tsoRegression)
        return net.tsoBytesRegressed;
    return net.tsoBytes;
}

void
Testbed::clientSend(Cycles t, const Packet &pkt)
{
    wire_->sendToServer(t, pkt);
}

namespace {

/**
 * Per-thread testbed cache. thread_local so sweep workers — which
 * persist across sweeps — each keep their own worlds and never
 * contend; a worker revisiting a sweep cell with an equal config
 * resets instead of reconstructing. Entries are held by unique_ptr so
 * Testbed addresses handed out in leases survive vector growth and
 * eviction of *other* entries.
 */
struct CacheEntry
{
    TestbedConfig cfg;
    std::unique_ptr<Testbed> tb;
    bool inUse = false;       ///< leased out right now
    std::uint64_t lastUse = 0; ///< for LRU eviction
};

struct TestbedCache
{
    std::vector<std::unique_ptr<CacheEntry>> entries;
    std::uint64_t tick = 0;
    TestbedCacheStats stats;
};

thread_local TestbedCache tl_cache;

/** Worlds kept per thread; enough for one SUT-kind sweep axis (seven
 *  kinds) plus an ablation variant without eviction churn. */
constexpr std::size_t cacheCapacity = 8;

} // namespace

TestbedCacheStats
testbedCacheStats()
{
    return tl_cache.stats;
}

bool
testbedCacheEnabled()
{
    // Observability no longer bypasses the cache: exports fire when a
    // lease is released (TestbedLease::~TestbedLease ->
    // exportObservability()), not only in ~Testbed, and reset()
    // rebuilds every sink to its fresh state — so a cached world's
    // exports are byte-identical to a cold build's.
    if (const char *v = std::getenv("VIRTSIM_POOL_CACHE"))
        return !(v[0] == '0' && v[1] == '\0');
    return true;
}

TestbedLease
acquireTestbed(const TestbedConfig &cfg)
{
    if (!testbedCacheEnabled())
        return TestbedLease(std::make_unique<Testbed>(cfg));

    TestbedCache &cache = tl_cache;
    ++cache.tick;
    for (auto &e : cache.entries) {
        if (!e->inUse && e->cfg == cfg) {
            ++cache.stats.hits;
            e->inUse = true;
            e->lastUse = cache.tick;
            e->tb->reset();
            return TestbedLease(e->tb.get(), &e->inUse);
        }
    }

    ++cache.stats.misses;
    if (cache.entries.size() >= cacheCapacity) {
        // Evict the least-recently-used idle entry. If every entry is
        // leased (nested acquires of 8+ distinct configs), grow past
        // capacity rather than fail.
        auto victim = cache.entries.end();
        for (auto it = cache.entries.begin(); it != cache.entries.end();
             ++it) {
            if ((*it)->inUse)
                continue;
            if (victim == cache.entries.end() ||
                (*it)->lastUse < (*victim)->lastUse) {
                victim = it;
            }
        }
        if (victim != cache.entries.end())
            cache.entries.erase(victim);
    }

    auto entry = std::make_unique<CacheEntry>();
    entry->cfg = cfg;
    entry->tb = std::make_unique<Testbed>(cfg);
    entry->inUse = true;
    entry->lastUse = cache.tick;
    cache.entries.push_back(std::move(entry));
    CacheEntry &e = *cache.entries.back();
    return TestbedLease(e.tb.get(), &e.inUse);
}

} // namespace virtsim
