/**
 * @file
 * Testbed construction: the experiment configurations of Section III.
 *
 * A Testbed is one server (ARM m400 or x86 r320) in one of the
 * paper's three software configurations —
 *
 *   (1) native Linux capped at 4 cores / 12 GB,
 *   (2) a KVM VM: 8-core host, VM capped at 4 VCPUs / 12 GB, VCPUs
 *       pinned to dedicated PCPUs, host interrupts and threads on a
 *       separate PCPU set,
 *   (3) a Xen VM: Dom0 with 4 VCPUs / 4 GB on its own PCPUs, DomU
 *       with 4 VCPUs / 12 GB,
 *
 * — plus the 10 GbE wire to a dedicated, never-saturated client.
 *
 * The class exposes the uniform surface workloads program against
 * (charge work, send packets, observe taps) so every workload runs
 * unmodified on all configurations, exactly like the paper's
 * benchmarks did.
 */

#ifndef VIRTSIM_CORE_TESTBED_HH
#define VIRTSIM_CORE_TESTBED_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "hv/hypervisor.hh"
#include "hv/kvm_arm.hh"
#include "hv/kvm_arm_vhe.hh"
#include "hv/kvm_x86.hh"
#include "hv/xen_arm.hh"
#include "hv/xen_x86.hh"
#include "hw/machine.hh"
#include "hw/wire.hh"
#include "os/netstack.hh"
#include "sim/attrib.hh"
#include "sim/flight.hh"
#include "sim/random.hh"
#include "sim/slo.hh"

namespace virtsim {

/** The software stack under test. */
enum class SutKind
{
    Native,    ///< bare-metal Linux on the ARM server (baseline)
    NativeX86, ///< bare-metal Linux on the x86 server (baseline)
    KvmArm,
    XenArm,
    KvmX86,
    XenX86,
    KvmArmVhe, ///< Section VI projection
};

std::string to_string(SutKind k);

/** @return true if the configuration runs inside a VM. */
bool isVirtualized(SutKind k);

/** @return the architecture of the configuration. */
Arch archOf(SutKind k);

/** Full experiment configuration. */
struct TestbedConfig
{
    SutKind kind = SutKind::KvmArm;
    /** Virtual-interrupt routing policy (E5 ablation). */
    VirqDistribution virqDist = VirqDistribution::SingleVcpu;
    /** Xen zero-copy grant mapping instead of copies (E6). */
    bool zeroCopyGrants = false;
    /** x86 vAPIC available (Table II discussion ablation). */
    bool vApic = false;
    /** Linux TSO-autosizing regression active (E8). */
    bool tsoRegression = true;
    /** PRNG seed; equal seeds give bit-identical runs. */
    std::uint64_t seed = 42;

    /** Cells with equal configs are interchangeable worlds — the
     *  testbed cache keys on this. */
    bool operator==(const TestbedConfig &) const = default;
};

/**
 * One ready-to-run system under test.
 */
class Testbed
{
  public:
    explicit Testbed(TestbedConfig config);
    ~Testbed();

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    const TestbedConfig &config() const { return cfg; }
    EventQueue &queue() { return eq; }

    /** The sharded event kernel the testbed runs on (lane count from
     *  VIRTSIM_SHARDS). Every component of a classic testbed world
     *  lives on lane 0 — hypervisor run queues, backend rings and the
     *  workload surface share state at zero latency, which the
     *  sharding model only permits within one lane — so execution and
     *  output are byte-identical at every VIRTSIM_SHARDS value. The
     *  multi-lane fleet world (core/fleet.hh) is where extra lanes
     *  carry real work. */
    ShardedEventKernel &kernel() { return kern; }
    Machine &machine() { return *server; }
    Random &random() { return rng; }
    Probe &probe() { return server->probe(); }
    TraceSink &trace() { return server->trace(); }
    MetricsRegistry &metrics() { return server->metrics(); }

    /**
     * The streaming causal analyzer for this testbed. First call
     * enables the trace sink and attaches the analyzer as its
     * observer; blame accumulates online from then on, so the ring
     * never needs to retain the whole run. One analyzer per testbed
     * keeps sweep workers lock-free and reports deterministic
     * regardless of VIRTSIM_JOBS.
     */
    CausalAnalyzer &attribution();
    const NetstackCosts &netCosts() const { return net; }

    /**
     * Reset run-scoped observability (stats, counters, trace records,
     * profiler) so back-to-back workloads on one testbed report
     * independent numbers. Workload entry points call this; tap
     * registrations and the trace-enabled flag survive.
     */
    void beginRun();

    /**
     * Return the testbed to its just-constructed state: hypervisor
     * and VMs rebuilt from the config, event queue rewound to cycle
     * zero, machine hardware and registries restored, PRNG reseeded,
     * workload callbacks dropped. A reset testbed is
     * *fresh-equivalent*: any workload run on it produces bytes
     * identical to the same workload on a newly constructed
     * Testbed{config()} — the property the testbed cache and the
     * VIRTSIM_JOBS determinism guarantee rest on.
     */
    void reset();

    /** Null for the native configuration. */
    Hypervisor *hypervisor() { return hv.get(); }

    /** The measured VM; null for native. */
    Vm *guest() { return guestVm; }

    bool virtualized() const { return hv != nullptr; }

    /** @name Workload surface (uniform across configurations) */
    ///@{
    /** Logical CPUs available to the workload (always 4, per the
     *  Section III capping). */
    int width() const { return 4; }

    Frequency freq() const { return server->freq(); }

    /** Reserve work cycles on logical CPU lcpu. @return finish time. */
    Cycles charge(Cycles t, int lcpu, Cycles work);

    /** Completion frontier of a logical CPU. */
    Cycles frontier(int lcpu);

    /** Mark a logical CPU's (V)CPU blocked/runnable — drives the
     *  hypervisor's wake-vs-kick decision on injection. */
    void setIdle(int lcpu, bool idle);

    /**
     * Transmit a packet from the server application at the "VM send"
     * point. on_datalink_tx fires when the frame reaches the physical
     * datalink (Table V "send" tap); the frame then serializes onto
     * the wire to the client.
     */
    void send(Cycles t, int lcpu, const Packet &pkt, Done on_datalink_tx);

    /**
     * Inter-processor interrupt between logical CPUs (virtual IPI
     * when virtualized, physical SGI natively). done fires when the
     * receiver's handler runs.
     */
    void sendIpi(Cycles t, int from_lcpu, int to_lcpu, Done done);

    /** Cost of completing one received (virtual) interrupt; the
     *  workload charges it where its handler runs. On ARM this is
     *  the 71-cycle fast path; on x86 without vAPIC, a full trap. */
    void completeVirq(Cycles t, int lcpu, Done done);

    /** Packet reached the server's physical driver (host/Dom0
     *  datalink rx — Table V "recv" tap). */
    std::function<void(Cycles, const Packet &)> onHostRx;

    /** Packet reached the VM's driver (Table V "VM recv" tap;
     *  natively identical to onHostRx timing plus IRQ path). */
    std::function<void(Cycles, const Packet &)> onVmRx;

    /** TSO segment size the guest TCP stack uses on this
     *  configuration (captures the E8 regression on Xen PV). */
    std::uint32_t tsoBytes() const;
    ///@}

    /** @name Client side */
    ///@{
    /** Client machine sends a packet toward the server. */
    void clientSend(Cycles t, const Packet &pkt);

    /** A server frame arrived at the client machine. */
    std::function<void(Cycles, const Packet &)> onClientRx;

    /** One-way wire latency (both directions equal). */
    Cycles wireLatency() const { return wire_->oneWayLatency(); }
    ///@}

    /** Drain the event kernel. @return final simulated time. */
    Cycles
    run()
    {
        // One predicted branch when sampling is off; otherwise arm
        // the first sampling tick before the queue starts draining.
        server->probe().timeline.ensureScheduled(eq);
        return kern.run();
    }

    /** The machine's timeline sampler (gauge series + watchdog). */
    TimelineSampler &timeline() { return server->probe().timeline; }

    /**
     * Write every export armed at construction (VIRTSIM_TRACE /
     * METRICS / FLAME / TIMELINE / SHARD_PROFILE / LATENCY). Runs at
     * most once
     * per run: the destructor calls it, and so does TestbedLease
     * release, so cached worlds parked in persistent pool workers
     * export without waiting for process teardown; reset() re-arms
     * for the next run. No-op with no export armed.
     */
    void exportObservability();

    /**
     * Programmatically arm timeline sampling at the given rate, as if
     * VIRTSIM_TIMELINE_HZ were set (no file export unless a path was
     * configured too). For tests and benches that want the series or
     * the watchdog in-process; survives reset() like the env opt-ins.
     * Note: acquireTestbed()'s cache only bypasses on the env vars,
     * so call this on directly constructed testbeds only.
     */
    void
    enableTimeline(double hz)
    {
        timelineWanted = true;
        timelineHz = hz;
        applyObservability();
    }

    /**
     * Programmatically arm request-latency tracking and the SLO
     * engine, as if VIRTSIM_LATENCY were set (no file export unless a
     * path was configured too). Also arms timeline sampling — the SLO
     * burn windows evaluate in the sample hook. Survives reset() like
     * the env opt-ins; same cache caveat as enableTimeline().
     */
    void
    enableLatency()
    {
        latencyWanted = true;
        applyObservability();
    }

    /** The per-request phase histograms (sim/latency). Disabled until
     *  VIRTSIM_LATENCY or enableLatency() arms tracking. */
    RequestTracker &latency() { return server->probe().latency; }

    /** The SLO engine judging this testbed's request latency; unarmed
     *  (no specs) until latency tracking is enabled. */
    SloEngine &sloEngine() { return slo; }

    /** Failing end-of-run SLO verdicts so far; 0 when unarmed. */
    std::uint64_t
    sloBreaches() const
    {
        return slo.armed() ? slo.breaches() : 0;
    }

  private:
    void buildNative();
    void buildVirtualized();
    /** Re-apply the VIRTSIM_TRACE/METRICS/FLAME/TIMELINE opt-ins
     *  captured at construction (trace enable, analyzer attach,
     *  profiler hookup, sampler arming + watchdog rules) on a freshly
     *  built or reset world. */
    void applyObservability();
    /** Install the default watchdog rule set over the registered
     *  gauges (stalled VCPU, sustained LR saturation, NIC queue
     *  bound, rx-drop burst). No-op if rules are already present. */
    void installWatchdogRules();
    PhysicalCpu &lcpuOf(int lcpu);
    Vcpu &vcpuOf(int lcpu);

    TestbedConfig cfg;
    /** Declared before eq: eq aliases lane 0. */
    ShardedEventKernel kern;
    EventQueue &eq;
    Random rng;
    std::unique_ptr<Machine> server;
    std::unique_ptr<Hypervisor> hv;
    std::unique_ptr<Wire> wire_;
    Vm *guestVm = nullptr;
    NetstackCosts net;
    std::string tracePath;   ///< VIRTSIM_TRACE destination, if set
    std::string metricsPath; ///< VIRTSIM_METRICS destination, if set
    std::string flamePath;   ///< VIRTSIM_FLAME destination, if set
    std::string timelinePath; ///< VIRTSIM_TIMELINE destination, if set
    /** VIRTSIM_SHARD_PROFILE destination, if set. */
    std::string shardProfilePath;
    std::string latencyPath; ///< VIRTSIM_LATENCY destination, if set
    bool latencyWanted = false; ///< enableLatency() was called
    /** VIRTSIM_INCIDENTS destination directory, if set. */
    std::string incidentsDir;
    /** Judges request latency against the configured objectives (the
     *  default netperf-RR contract unless env overrides apply). */
    SloEngine slo;
    /** Incident forensics: armed by applyObservability() under
     *  VIRTSIM_INCIDENTS, flushed in exportObservability(). */
    FlightRecorder flight;
    /** flight's hooks are installed on the current world (cleared by
     *  reset(): the rebuilt sampler starts hookless). */
    bool flightArmed = false;
    /** exportObservability() already ran for the current run. */
    bool observabilityExported = false;
    /** Sampling rate in simulated Hz (VIRTSIM_TIMELINE_HZ or
     *  enableTimeline()); 100 kHz default keeps a Table V run well
     *  inside the per-series capacity. */
    double timelineHz = 100000.0;
    bool timelineWanted = false; ///< enableTimeline() was called
    std::unique_ptr<CausalAnalyzer> _attrib;
    std::uint64_t txSeq = 0;
    /** Native-mode pending IPI completions per CPU. */
    std::array<std::deque<Done>, 8> nativeIpiDone;
};

/**
 * RAII handle to a testbed obtained from acquireTestbed(). When the
 * testbed came from the per-thread cache the lease releases it for
 * reuse on destruction; when the cache is bypassed the lease owns the
 * testbed outright and destroys it.
 */
class TestbedLease
{
  public:
    /** Owning lease (cache bypassed). */
    explicit TestbedLease(std::unique_ptr<Testbed> owned)
        : owning(std::move(owned)), cached(nullptr), inUse(nullptr)
    {
    }

    /** Cached lease: tb stays alive in the cache, *in_use flips back
     *  to false on release. */
    TestbedLease(Testbed *tb, bool *in_use)
        : cached(tb), inUse(in_use)
    {
    }

    TestbedLease(TestbedLease &&other) noexcept
        : owning(std::move(other.owning)), cached(other.cached),
          inUse(other.inUse)
    {
        other.cached = nullptr;
        other.inUse = nullptr;
    }

    TestbedLease(const TestbedLease &) = delete;
    TestbedLease &operator=(const TestbedLease &) = delete;
    TestbedLease &operator=(TestbedLease &&) = delete;

    ~TestbedLease()
    {
        if (inUse) {
            // Cached worlds outlive the lease inside the pool worker;
            // flush their exports now, not at process teardown.
            cached->exportObservability();
            *inUse = false;
        }
    }

    Testbed *get() { return owning ? owning.get() : cached; }
    Testbed &operator*() { return *get(); }
    Testbed *operator->() { return get(); }

  private:
    std::unique_ptr<Testbed> owning;
    Testbed *cached;
    bool *inUse;
};

/** Per-thread testbed cache counters (cumulative for the calling
 *  thread; sweep workers each have their own). */
struct TestbedCacheStats
{
    std::uint64_t hits = 0;   ///< acquires served by reset-and-reuse
    std::uint64_t misses = 0; ///< acquires that cold-built a world
};

/** Counters for the calling thread's cache. */
TestbedCacheStats testbedCacheStats();

/**
 * Whether acquireTestbed() may serve cached worlds. False only when
 * VIRTSIM_POOL_CACHE=0 (force cold-build, e.g. to bisect a suspected
 * reset bug). Observability opt-ins no longer bypass the cache:
 * exports flush on lease release (exportObservability) and reset()
 * restores every sink to its fresh state, so cached runs export
 * byte-identically to cold builds. Re-read per call.
 */
bool testbedCacheEnabled();

/**
 * Get a ready-to-use testbed for cfg: a reset() cached instance from
 * the calling thread's cache when one with an equal config is idle,
 * else a freshly built one (cached for next time when caching is
 * enabled). The cache is thread_local — sweep workers persist across
 * sweeps (sim/sweep.hh), so a worker re-entering the same sweep cell
 * skips world construction entirely. Reset guarantees
 * fresh-equivalence, so results are byte-identical whether or not a
 * cache hit occurred — and therefore across VIRTSIM_JOBS values and
 * VIRTSIM_POOL_CACHE settings.
 */
TestbedLease acquireTestbed(const TestbedConfig &cfg);

} // namespace virtsim

#endif // VIRTSIM_CORE_TESTBED_HH
