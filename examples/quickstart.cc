/**
 * @file
 * Quickstart: build a testbed, run one microbenchmark, and reproduce
 * the paper's headline microbenchmark contrast — a hypercall on a
 * Type 1 vs a split-mode Type 2 hypervisor on ARM.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/microbench.hh"
#include "core/report.hh"
#include "core/testbed.hh"

using namespace virtsim;

int
main()
{
    std::cout << "virtsim quickstart: the cost of reaching the "
                 "hypervisor\n\n";

    TextTable table({"Configuration", "Hypercall (cycles)",
                     "vs Xen ARM"});
    double xen_arm = 0;
    for (SutKind kind : {SutKind::XenArm, SutKind::KvmArm,
                         SutKind::KvmX86, SutKind::XenX86,
                         SutKind::KvmArmVhe}) {
        // A Testbed is one server machine + hypervisor + VM wired to
        // a client, per the paper's Section III setup.
        TestbedConfig config;
        config.kind = kind;
        Testbed tb(config);

        MicrobenchSuite suite(tb);
        const MicroResult r = suite.run(MicroOp::Hypercall, 20);
        const double mean = r.cycles.mean();
        if (kind == SutKind::XenArm)
            xen_arm = mean;
        table.addRow({to_string(kind), formatCycles(mean),
                      formatFixed(mean / xen_arm, 1) + "x"});
    }
    std::cout << table.render() << "\n"
              << "ARM gives a Type 1 hypervisor a register-banked EL2\n"
              << "fast path; split-mode KVM pays a ~17x penalty to\n"
              << "reach its EL1 half — until ARMv8.1 VHE (last row)\n"
              << "moves the whole host kernel into EL2.\n";
    return 0;
}
