/**
 * @file
 * Capacity planning for a virtualized web tier: which hypervisor,
 * and should you distribute virtual interrupts?
 *
 * Uses the application-benchmark machinery (paper Figure 4 + the
 * Section V interrupt-distribution experiment) to compare deployment
 * options for an Apache-like workload on the ARM server.
 */

#include <iostream>

#include "core/appbench.hh"
#include "core/report.hh"
#include "core/workloads/apache.hh"

using namespace virtsim;

namespace {

double
throughput(SutKind kind, VirqDistribution dist)
{
    ApacheWorkload apache;
    AppBenchOptions opt;
    opt.kinds = {kind};
    opt.virqDist = dist;
    const AppBenchRow row = runAppBenchRow(apache, opt);
    return row.cells.at(0).score;
}

} // namespace

int
main()
{
    std::cout << "Web-tier deployment study (Apache, 100 concurrent "
                 "clients, 10 GbE)\n\n";

    ApacheWorkload apache;
    AppBenchOptions base;
    base.kinds = {SutKind::KvmArm};
    const AppBenchRow native_row = runAppBenchRow(apache, base);
    const double native = native_row.nativeScoreArm;

    TextTable t({"Deployment", "req/s", "vs native"});
    t.addRow({"Bare metal (4 cores)", formatFixed(native, 0), "1.00"});
    struct Option
    {
        const char *label;
        SutKind kind;
        VirqDistribution dist;
    };
    const Option options[] = {
        {"KVM ARM, default vIRQ policy", SutKind::KvmArm,
         VirqDistribution::SingleVcpu},
        {"KVM ARM, vIRQs distributed", SutKind::KvmArm,
         VirqDistribution::Spread},
        {"Xen ARM, default vIRQ policy", SutKind::XenArm,
         VirqDistribution::SingleVcpu},
        {"Xen ARM, vIRQs distributed", SutKind::XenArm,
         VirqDistribution::Spread},
        {"KVM ARM on ARMv8.1 VHE hardware", SutKind::KvmArmVhe,
         VirqDistribution::SingleVcpu},
    };
    for (const auto &o : options) {
        const double r = throughput(o.kind, o.dist);
        t.addRow({o.label, formatFixed(r, 0),
                  formatFixed(native / r, 2)});
    }
    std::cout << t.render() << "\n"
              << "Takeaways: interrupt placement matters more than\n"
              << "hypervisor type; spreading virtual interrupts\n"
              << "relieves the VCPU0 bottleneck on both designs, and\n"
              << "VHE closes most of the remaining Type 2 gap.\n";
    return 0;
}
