/**
 * @file
 * Follow one netperf TCP_RR transaction through the virtualization
 * stack, KVM vs Xen — the paper's Table V methodology as a guided
 * tour. Shows where a 1-byte round trip spends its 86-98
 * microseconds, and why the Type 1 hypervisor with the 17x-faster
 * hypercall is the slower server.
 */

#include <iostream>

#include "core/netperf.hh"
#include "core/report.hh"

using namespace virtsim;

namespace {

NetperfRrResult
runOn(SutKind kind)
{
    TestbedConfig config;
    config.kind = kind;
    Testbed tb(config);
    NetperfRrConfig cfg;
    cfg.transactions = 100;
    return runNetperfRr(tb, cfg);
}

} // namespace

int
main()
{
    std::cout << "One TCP_RR transaction, three ways "
                 "(paper Table V)\n\n";
    const NetperfRrResult native = runOn(SutKind::Native);
    const NetperfRrResult kvm = runOn(SutKind::KvmArm);
    const NetperfRrResult xen = runOn(SutKind::XenArm);

    TextTable t({"Leg", "Native", "KVM ARM", "Xen ARM"});
    t.addRow({"wire + client (send->recv, us)",
              formatFixed(native.sendToRecvUs, 1),
              formatFixed(kvm.sendToRecvUs, 1),
              formatFixed(xen.sendToRecvUs, 1)});
    t.addRow({"driver -> VM driver (us)", "-",
              formatFixed(kvm.recvToVmRecvUs, 1),
              formatFixed(xen.recvToVmRecvUs, 1)});
    t.addRow({"inside the VM (us)",
              formatFixed(native.recvToSendUs, 1),
              formatFixed(kvm.vmRecvToVmSendUs, 1),
              formatFixed(xen.vmRecvToVmSendUs, 1)});
    t.addRow({"VM driver -> wire (us)", "-",
              formatFixed(kvm.vmSendToSendUs, 1),
              formatFixed(xen.vmSendToSendUs, 1)});
    t.addRow({"time per transaction (us)",
              formatFixed(native.timePerTransUs, 1),
              formatFixed(kvm.timePerTransUs, 1),
              formatFixed(xen.timePerTransUs, 1)});
    t.addRow({"transactions/s", formatFixed(native.transPerSec, 0),
              formatFixed(kvm.transPerSec, 0),
              formatFixed(xen.transPerSec, 0)});
    std::cout << t.render() << "\n";

    std::cout
        << "What to notice (Section V):\n"
        << "  * The VM-internal leg is nearly identical for both\n"
        << "    hypervisors and close to native: CPU/memory\n"
        << "    virtualization is a hardware solved problem.\n"
        << "  * Xen loses on the delivery legs — every packet means\n"
        << "    an idle-domain switch, an event channel round, and a\n"
        << "    grant copy that costs >3 us for a single byte.\n"
        << "  * Xen even inflates the wire leg: the packet's\n"
        << "    timestamp waits for the idle->Dom0 switch.\n";
    return 0;
}
