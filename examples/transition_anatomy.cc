/**
 * @file
 * Anatomy of a world switch: where do 6,500 cycles go?
 *
 * Reproduces the paper's Table III instrumentation through the public
 * API: record a live KVM ARM hypercall, attribute its cost per
 * register class, then show what the same transition costs once the
 * VGIC is hypothetically cheap, and under ARMv8.1 VHE.
 */

#include <iostream>

#include "core/hypercall_breakdown.hh"
#include "core/report.hh"
#include "core/testbed.hh"

using namespace virtsim;

namespace {

HypercallBreakdown
measure(SutKind kind, bool cheap_vgic = false)
{
    TestbedConfig config;
    config.kind = kind;
    Testbed tb(config);
    if (cheap_vgic) {
        // What-if: GIC virtual-interface registers reachable at
        // system-register speed instead of over the X-Gene's slow
        // interconnect.
        const_cast<CostModel &>(tb.machine().costs())
            .cost(RegClass::Vgic) = {230, 181};
    }
    return measureHypercallBreakdown(tb);
}

void
show(const std::string &title, const HypercallBreakdown &b)
{
    std::cout << title << "\n";
    TextTable t({"Register State", "Save", "Restore"});
    for (const auto &row : b.rows) {
        t.addRow({to_string(row.cls),
                  formatCycles(static_cast<double>(row.save)),
                  formatCycles(static_cast<double>(row.restore))});
    }
    std::cout << t.render();
    std::cout << "  hypercall total: "
              << formatCycles(static_cast<double>(b.hypercallCycles))
              << " cycles ("
              << formatCycles(static_cast<double>(b.unattributed()))
              << " in traps/toggles/dispatch)\n\n";
}

} // namespace

int
main()
{
    std::cout << "Anatomy of the split-mode world switch "
                 "(paper Table III)\n\n";
    show("KVM ARM, split-mode (as shipped):",
         measure(SutKind::KvmArm));
    show("KVM ARM, if VGIC access were core-speed:",
         measure(SutKind::KvmArm, true));
    show("KVM ARM with ARMv8.1 VHE (host lives in EL2):",
         measure(SutKind::KvmArmVhe));
    std::cout
        << "Reading the tables top to bottom is the paper's Section\n"
        << "VI argument: the transition cost is state movement, the\n"
        << "biggest term is the interrupt controller, and adding\n"
        << "hardware register state (VHE) removes the movement\n"
        << "entirely.\n";
    return 0;
}
