
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/appbench.cc" "src/CMakeFiles/virtsim.dir/core/appbench.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/appbench.cc.o.d"
  "/root/repo/src/core/figure.cc" "src/CMakeFiles/virtsim.dir/core/figure.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/figure.cc.o.d"
  "/root/repo/src/core/hypercall_breakdown.cc" "src/CMakeFiles/virtsim.dir/core/hypercall_breakdown.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/hypercall_breakdown.cc.o.d"
  "/root/repo/src/core/microbench.cc" "src/CMakeFiles/virtsim.dir/core/microbench.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/microbench.cc.o.d"
  "/root/repo/src/core/netperf.cc" "src/CMakeFiles/virtsim.dir/core/netperf.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/netperf.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/virtsim.dir/core/report.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/report.cc.o.d"
  "/root/repo/src/core/testbed.cc" "src/CMakeFiles/virtsim.dir/core/testbed.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/testbed.cc.o.d"
  "/root/repo/src/core/workloads/apache.cc" "src/CMakeFiles/virtsim.dir/core/workloads/apache.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/apache.cc.o.d"
  "/root/repo/src/core/workloads/hackbench.cc" "src/CMakeFiles/virtsim.dir/core/workloads/hackbench.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/hackbench.cc.o.d"
  "/root/repo/src/core/workloads/kernbench.cc" "src/CMakeFiles/virtsim.dir/core/workloads/kernbench.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/kernbench.cc.o.d"
  "/root/repo/src/core/workloads/memcached.cc" "src/CMakeFiles/virtsim.dir/core/workloads/memcached.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/memcached.cc.o.d"
  "/root/repo/src/core/workloads/mysql.cc" "src/CMakeFiles/virtsim.dir/core/workloads/mysql.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/mysql.cc.o.d"
  "/root/repo/src/core/workloads/netperf_workloads.cc" "src/CMakeFiles/virtsim.dir/core/workloads/netperf_workloads.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/netperf_workloads.cc.o.d"
  "/root/repo/src/core/workloads/specjvm.cc" "src/CMakeFiles/virtsim.dir/core/workloads/specjvm.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/specjvm.cc.o.d"
  "/root/repo/src/core/workloads/workload.cc" "src/CMakeFiles/virtsim.dir/core/workloads/workload.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/core/workloads/workload.cc.o.d"
  "/root/repo/src/hv/grant_table.cc" "src/CMakeFiles/virtsim.dir/hv/grant_table.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/grant_table.cc.o.d"
  "/root/repo/src/hv/hypervisor.cc" "src/CMakeFiles/virtsim.dir/hv/hypervisor.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/hypervisor.cc.o.d"
  "/root/repo/src/hv/kvm_arm.cc" "src/CMakeFiles/virtsim.dir/hv/kvm_arm.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/kvm_arm.cc.o.d"
  "/root/repo/src/hv/kvm_arm_vhe.cc" "src/CMakeFiles/virtsim.dir/hv/kvm_arm_vhe.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/kvm_arm_vhe.cc.o.d"
  "/root/repo/src/hv/kvm_x86.cc" "src/CMakeFiles/virtsim.dir/hv/kvm_x86.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/kvm_x86.cc.o.d"
  "/root/repo/src/hv/virtio.cc" "src/CMakeFiles/virtsim.dir/hv/virtio.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/virtio.cc.o.d"
  "/root/repo/src/hv/vm.cc" "src/CMakeFiles/virtsim.dir/hv/vm.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/vm.cc.o.d"
  "/root/repo/src/hv/world_switch.cc" "src/CMakeFiles/virtsim.dir/hv/world_switch.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/world_switch.cc.o.d"
  "/root/repo/src/hv/xen_arm.cc" "src/CMakeFiles/virtsim.dir/hv/xen_arm.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/xen_arm.cc.o.d"
  "/root/repo/src/hv/xen_pv.cc" "src/CMakeFiles/virtsim.dir/hv/xen_pv.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/xen_pv.cc.o.d"
  "/root/repo/src/hv/xen_x86.cc" "src/CMakeFiles/virtsim.dir/hv/xen_x86.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hv/xen_x86.cc.o.d"
  "/root/repo/src/hw/arch.cc" "src/CMakeFiles/virtsim.dir/hw/arch.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/arch.cc.o.d"
  "/root/repo/src/hw/cost_model.cc" "src/CMakeFiles/virtsim.dir/hw/cost_model.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/cost_model.cc.o.d"
  "/root/repo/src/hw/cpu.cc" "src/CMakeFiles/virtsim.dir/hw/cpu.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/cpu.cc.o.d"
  "/root/repo/src/hw/gic.cc" "src/CMakeFiles/virtsim.dir/hw/gic.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/gic.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/CMakeFiles/virtsim.dir/hw/machine.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/machine.cc.o.d"
  "/root/repo/src/hw/memory.cc" "src/CMakeFiles/virtsim.dir/hw/memory.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/memory.cc.o.d"
  "/root/repo/src/hw/mmu.cc" "src/CMakeFiles/virtsim.dir/hw/mmu.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/mmu.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/CMakeFiles/virtsim.dir/hw/nic.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/nic.cc.o.d"
  "/root/repo/src/hw/vtimer.cc" "src/CMakeFiles/virtsim.dir/hw/vtimer.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/vtimer.cc.o.d"
  "/root/repo/src/hw/wire.cc" "src/CMakeFiles/virtsim.dir/hw/wire.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/hw/wire.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/CMakeFiles/virtsim.dir/os/kernel.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/os/kernel.cc.o.d"
  "/root/repo/src/os/netback.cc" "src/CMakeFiles/virtsim.dir/os/netback.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/os/netback.cc.o.d"
  "/root/repo/src/os/netstack.cc" "src/CMakeFiles/virtsim.dir/os/netstack.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/os/netstack.cc.o.d"
  "/root/repo/src/os/vhost.cc" "src/CMakeFiles/virtsim.dir/os/vhost.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/os/vhost.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/virtsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/virtsim.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/virtsim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/virtsim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/virtsim.dir/sim/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
