# Empty compiler generated dependencies file for transition_anatomy.
# This may be replaced when dependencies are built.
