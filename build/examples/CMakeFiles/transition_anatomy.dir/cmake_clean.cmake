file(REMOVE_RECURSE
  "CMakeFiles/transition_anatomy.dir/transition_anatomy.cc.o"
  "CMakeFiles/transition_anatomy.dir/transition_anatomy.cc.o.d"
  "transition_anatomy"
  "transition_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
