file(REMOVE_RECURSE
  "CMakeFiles/latency_tour.dir/latency_tour.cc.o"
  "CMakeFiles/latency_tour.dir/latency_tour.cc.o.d"
  "latency_tour"
  "latency_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
