# Empty compiler generated dependencies file for latency_tour.
# This may be replaced when dependencies are built.
