# Empty compiler generated dependencies file for bench_ablation_zero_copy.
# This may be replaced when dependencies are built.
