file(REMOVE_RECURSE
  "../bench/bench_ablation_virq_distribution"
  "../bench/bench_ablation_virq_distribution.pdb"
  "CMakeFiles/bench_ablation_virq_distribution.dir/bench_ablation_virq_distribution.cc.o"
  "CMakeFiles/bench_ablation_virq_distribution.dir/bench_ablation_virq_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_virq_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
