# Empty dependencies file for bench_table5_netperf_rr.
# This may be replaced when dependencies are built.
