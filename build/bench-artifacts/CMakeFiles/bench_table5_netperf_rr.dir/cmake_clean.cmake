file(REMOVE_RECURSE
  "../bench/bench_table5_netperf_rr"
  "../bench/bench_table5_netperf_rr.pdb"
  "CMakeFiles/bench_table5_netperf_rr.dir/bench_table5_netperf_rr.cc.o"
  "CMakeFiles/bench_table5_netperf_rr.dir/bench_table5_netperf_rr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_netperf_rr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
