file(REMOVE_RECURSE
  "../bench/bench_ablation_gic_latency"
  "../bench/bench_ablation_gic_latency.pdb"
  "CMakeFiles/bench_ablation_gic_latency.dir/bench_ablation_gic_latency.cc.o"
  "CMakeFiles/bench_ablation_gic_latency.dir/bench_ablation_gic_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gic_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
