# Empty compiler generated dependencies file for bench_ablation_gic_latency.
# This may be replaced when dependencies are built.
