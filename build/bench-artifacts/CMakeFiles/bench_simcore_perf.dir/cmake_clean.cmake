file(REMOVE_RECURSE
  "../bench/bench_simcore_perf"
  "../bench/bench_simcore_perf.pdb"
  "CMakeFiles/bench_simcore_perf.dir/bench_simcore_perf.cc.o"
  "CMakeFiles/bench_simcore_perf.dir/bench_simcore_perf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simcore_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
