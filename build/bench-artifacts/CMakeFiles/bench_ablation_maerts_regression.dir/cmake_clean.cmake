file(REMOVE_RECURSE
  "../bench/bench_ablation_maerts_regression"
  "../bench/bench_ablation_maerts_regression.pdb"
  "CMakeFiles/bench_ablation_maerts_regression.dir/bench_ablation_maerts_regression.cc.o"
  "CMakeFiles/bench_ablation_maerts_regression.dir/bench_ablation_maerts_regression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maerts_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
