file(REMOVE_RECURSE
  "../bench/bench_table2_microbenchmarks"
  "../bench/bench_table2_microbenchmarks.pdb"
  "CMakeFiles/bench_table2_microbenchmarks.dir/bench_table2_microbenchmarks.cc.o"
  "CMakeFiles/bench_table2_microbenchmarks.dir/bench_table2_microbenchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_microbenchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
