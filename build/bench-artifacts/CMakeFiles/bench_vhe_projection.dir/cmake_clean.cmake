file(REMOVE_RECURSE
  "../bench/bench_vhe_projection"
  "../bench/bench_vhe_projection.pdb"
  "CMakeFiles/bench_vhe_projection.dir/bench_vhe_projection.cc.o"
  "CMakeFiles/bench_vhe_projection.dir/bench_vhe_projection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vhe_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
