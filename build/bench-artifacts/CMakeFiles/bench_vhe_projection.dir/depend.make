# Empty dependencies file for bench_vhe_projection.
# This may be replaced when dependencies are built.
