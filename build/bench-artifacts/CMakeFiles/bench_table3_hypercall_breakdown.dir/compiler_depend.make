# Empty compiler generated dependencies file for bench_table3_hypercall_breakdown.
# This may be replaced when dependencies are built.
