file(REMOVE_RECURSE
  "../bench/bench_figure4_applications"
  "../bench/bench_figure4_applications.pdb"
  "CMakeFiles/bench_figure4_applications.dir/bench_figure4_applications.cc.o"
  "CMakeFiles/bench_figure4_applications.dir/bench_figure4_applications.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
