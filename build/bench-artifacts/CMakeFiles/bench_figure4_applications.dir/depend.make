# Empty dependencies file for bench_figure4_applications.
# This may be replaced when dependencies are built.
