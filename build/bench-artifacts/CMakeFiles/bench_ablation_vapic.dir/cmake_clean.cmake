file(REMOVE_RECURSE
  "../bench/bench_ablation_vapic"
  "../bench/bench_ablation_vapic.pdb"
  "CMakeFiles/bench_ablation_vapic.dir/bench_ablation_vapic.cc.o"
  "CMakeFiles/bench_ablation_vapic.dir/bench_ablation_vapic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vapic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
