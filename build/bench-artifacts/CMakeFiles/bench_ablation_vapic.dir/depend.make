# Empty dependencies file for bench_ablation_vapic.
# This may be replaced when dependencies are built.
