# Empty dependencies file for test_cpu_costmodel.
# This may be replaced when dependencies are built.
