file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_costmodel.dir/test_cpu_costmodel.cc.o"
  "CMakeFiles/test_cpu_costmodel.dir/test_cpu_costmodel.cc.o.d"
  "test_cpu_costmodel"
  "test_cpu_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
