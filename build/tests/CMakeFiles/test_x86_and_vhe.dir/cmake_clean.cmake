file(REMOVE_RECURSE
  "CMakeFiles/test_x86_and_vhe.dir/test_x86_and_vhe.cc.o"
  "CMakeFiles/test_x86_and_vhe.dir/test_x86_and_vhe.cc.o.d"
  "test_x86_and_vhe"
  "test_x86_and_vhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_and_vhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
