# Empty compiler generated dependencies file for test_x86_and_vhe.
# This may be replaced when dependencies are built.
