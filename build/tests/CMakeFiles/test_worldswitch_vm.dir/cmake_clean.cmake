file(REMOVE_RECURSE
  "CMakeFiles/test_worldswitch_vm.dir/test_worldswitch_vm.cc.o"
  "CMakeFiles/test_worldswitch_vm.dir/test_worldswitch_vm.cc.o.d"
  "test_worldswitch_vm"
  "test_worldswitch_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worldswitch_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
