# Empty compiler generated dependencies file for test_worldswitch_vm.
# This may be replaced when dependencies are built.
