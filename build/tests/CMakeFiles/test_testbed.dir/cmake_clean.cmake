file(REMOVE_RECURSE
  "CMakeFiles/test_testbed.dir/test_testbed.cc.o"
  "CMakeFiles/test_testbed.dir/test_testbed.cc.o.d"
  "test_testbed"
  "test_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
