file(REMOVE_RECURSE
  "CMakeFiles/test_integration_failures.dir/test_integration_failures.cc.o"
  "CMakeFiles/test_integration_failures.dir/test_integration_failures.cc.o.d"
  "test_integration_failures"
  "test_integration_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
