# Empty compiler generated dependencies file for test_integration_failures.
# This may be replaced when dependencies are built.
