file(REMOVE_RECURSE
  "CMakeFiles/test_gic_mmu.dir/test_gic_mmu.cc.o"
  "CMakeFiles/test_gic_mmu.dir/test_gic_mmu.cc.o.d"
  "test_gic_mmu"
  "test_gic_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gic_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
