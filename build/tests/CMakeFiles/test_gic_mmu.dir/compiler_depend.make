# Empty compiler generated dependencies file for test_gic_mmu.
# This may be replaced when dependencies are built.
