# Empty compiler generated dependencies file for test_workloads_appbench.
# This may be replaced when dependencies are built.
