file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_appbench.dir/test_workloads_appbench.cc.o"
  "CMakeFiles/test_workloads_appbench.dir/test_workloads_appbench.cc.o.d"
  "test_workloads_appbench"
  "test_workloads_appbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_appbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
