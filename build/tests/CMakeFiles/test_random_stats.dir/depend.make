# Empty dependencies file for test_random_stats.
# This may be replaced when dependencies are built.
