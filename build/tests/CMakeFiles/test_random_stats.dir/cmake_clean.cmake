file(REMOVE_RECURSE
  "CMakeFiles/test_random_stats.dir/test_random_stats.cc.o"
  "CMakeFiles/test_random_stats.dir/test_random_stats.cc.o.d"
  "test_random_stats"
  "test_random_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
