file(REMOVE_RECURSE
  "CMakeFiles/test_kvm_arm.dir/test_kvm_arm.cc.o"
  "CMakeFiles/test_kvm_arm.dir/test_kvm_arm.cc.o.d"
  "test_kvm_arm"
  "test_kvm_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvm_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
