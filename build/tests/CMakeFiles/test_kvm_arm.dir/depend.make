# Empty dependencies file for test_kvm_arm.
# This may be replaced when dependencies are built.
