file(REMOVE_RECURSE
  "CMakeFiles/test_netperf.dir/test_netperf.cc.o"
  "CMakeFiles/test_netperf.dir/test_netperf.cc.o.d"
  "test_netperf"
  "test_netperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
