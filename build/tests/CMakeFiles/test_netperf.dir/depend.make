# Empty dependencies file for test_netperf.
# This may be replaced when dependencies are built.
