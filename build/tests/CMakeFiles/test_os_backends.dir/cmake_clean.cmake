file(REMOVE_RECURSE
  "CMakeFiles/test_os_backends.dir/test_os_backends.cc.o"
  "CMakeFiles/test_os_backends.dir/test_os_backends.cc.o.d"
  "test_os_backends"
  "test_os_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
