# Empty dependencies file for test_os_backends.
# This may be replaced when dependencies are built.
