file(REMOVE_RECURSE
  "CMakeFiles/test_xen_arm.dir/test_xen_arm.cc.o"
  "CMakeFiles/test_xen_arm.dir/test_xen_arm.cc.o.d"
  "test_xen_arm"
  "test_xen_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xen_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
