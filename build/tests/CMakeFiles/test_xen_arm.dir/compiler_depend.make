# Empty compiler generated dependencies file for test_xen_arm.
# This may be replaced when dependencies are built.
