file(REMOVE_RECURSE
  "CMakeFiles/test_nic_machine.dir/test_nic_machine.cc.o"
  "CMakeFiles/test_nic_machine.dir/test_nic_machine.cc.o.d"
  "test_nic_machine"
  "test_nic_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
