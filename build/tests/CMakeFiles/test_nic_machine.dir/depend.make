# Empty dependencies file for test_nic_machine.
# This may be replaced when dependencies are built.
