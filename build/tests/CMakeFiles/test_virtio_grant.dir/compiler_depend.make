# Empty compiler generated dependencies file for test_virtio_grant.
# This may be replaced when dependencies are built.
