file(REMOVE_RECURSE
  "CMakeFiles/test_virtio_grant.dir/test_virtio_grant.cc.o"
  "CMakeFiles/test_virtio_grant.dir/test_virtio_grant.cc.o.d"
  "test_virtio_grant"
  "test_virtio_grant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtio_grant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
