/**
 * @file
 * E9 ablation (Sections II/VI): how transition cost scales with the
 * amount of state that must move, across the three architectural
 * state-switching designs the paper contrasts —
 *
 *  - ARM software-managed switching (flexible: pay only for what you
 *    switch; split-mode KVM pays for everything, Xen for almost
 *    nothing),
 *  - x86 hardware VMCS switching (fixed cost, regardless of need),
 *  - ARMv8.1 VHE (extra hardware register state: nothing to move).
 *
 * Also isolates the "what if the VGIC were cheap to read?" question:
 * X-Gene's slow interrupt-controller access is a large part of the
 * split-mode penalty.
 */

#include <iostream>

#include "core/microbench.hh"
#include "core/report.hh"
#include "core/testbed.hh"
#include "hw/cost_model.hh"

using namespace virtsim;

namespace {

double
hypercallCycles(SutKind kind)
{
    TestbedConfig tc;
    tc.kind = kind;
    TestbedLease tb = acquireTestbed(tc);
    MicrobenchSuite suite(*tb);
    return suite.run(MicroOp::Hypercall, 20).cycles.mean();
}

/** KVM ARM hypercall with a hypothetical fast (core-speed) VGIC. */
double
hypercallCyclesFastVgic()
{
    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;
    // Not acquireTestbed(): the cost-table patch below would leak
    // into cached same-config worlds.
    Testbed tb(tc);
    auto *kvm = dynamic_cast<KvmArm *>(tb.hypervisor());
    // What if reading back VGIC state cost no more than system
    // registers? Patch the machine's cost table before measuring.
    const_cast<CostModel &>(tb.machine().costs())
        .cost(RegClass::Vgic) = {230, 181};
    (void)kvm;
    MicrobenchSuite suite(tb);
    return suite.run(MicroOp::Hypercall, 20).cycles.mean();
}

} // namespace

int
main()
{
    std::cout << "Ablation E9: state-switching architecture vs "
                 "transition cost\n\n";

    const double xen_arm = hypercallCycles(SutKind::XenArm);
    const double kvm_arm = hypercallCycles(SutKind::KvmArm);
    const double kvm_x86 = hypercallCycles(SutKind::KvmX86);
    const double xen_x86 = hypercallCycles(SutKind::XenX86);
    const double vhe = hypercallCycles(SutKind::KvmArmVhe);
    const double kvm_fast_vgic = hypercallCyclesFastVgic();

    TextTable table({"Design point", "Hypercall cycles",
                     "state switched"});
    table.addRow({"ARM sw-managed, minimal (Xen ARM)",
                  formatCycles(xen_arm), "GP regs only"});
    table.addRow({"ARM sw-managed, full (split-mode KVM ARM)",
                  formatCycles(kvm_arm), "all EL1+VGIC+timer state"});
    table.addRow({"ARM sw-managed, full, core-speed VGIC "
                  "(hypothetical)",
                  formatCycles(kvm_fast_vgic),
                  "all EL1 state, cheap VGIC"});
    table.addRow({"x86 hw VMCS (KVM x86)", formatCycles(kvm_x86),
                  "fixed hardware block"});
    table.addRow({"x86 hw VMCS (Xen x86)", formatCycles(xen_x86),
                  "fixed hardware block"});
    table.addRow({"ARMv8.1 VHE (KVM ARM + E2H)", formatCycles(vhe),
                  "GP regs only (extra hw state)"});
    std::cout << table.render() << "\n";

    const bool flexibility_both_ways =
        xen_arm < 0.5 * kvm_x86 && kvm_arm > 2.0 * kvm_x86;
    const bool vgic_large_share =
        kvm_fast_vgic < kvm_arm - 2500;
    const bool vhe_closes_gap = vhe < 2.0 * xen_arm;

    std::cout << "Key findings reproduced:\n"
              << "  ARM software switching can be much faster AND "
                 "much slower than x86: "
              << (flexibility_both_ways ? "yes" : "NO") << "\n"
              << "  Slow VGIC access is a major part of the "
                 "split-mode penalty: "
              << (vgic_large_share ? "yes" : "NO") << "\n"
              << "  VHE brings Type 2 transitions near the Type 1 "
                 "fast path: "
              << (vhe_closes_gap ? "yes" : "NO") << "\n";
    return (flexibility_both_ways && vgic_large_share &&
            vhe_closes_gap)
               ? 0
               : 1;
}
