/**
 * @file
 * Google-benchmark microbenchmarks of the simulator infrastructure
 * itself — event queue throughput, world-switch engine, and
 * end-to-end simulation rates — to keep the harness fast enough for
 * the large Figure 4 sweeps.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/appbench.hh"
#include "core/fleet.hh"
#include "core/microbench.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "hv/world_switch.hh"
#include "sim/event_queue.hh"
#include "sim/flight.hh"
#include "sim/latency.hh"
#include "sim/probe.hh"
#include "sim/sweep.hh"
#include "sim/timeline.hh"

using namespace virtsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAt(static_cast<Cycles>(i), [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

/** Timer-like usage: most scheduled events are cancelled before they
 *  fire (TCP retransmit timers, watchdogs). Schedules 1000 events,
 *  cancels three of every four, drains the rest. */
void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        std::vector<EventId> ids;
        ids.reserve(1000);
        for (int i = 0; i < 1000; ++i) {
            ids.push_back(eq.scheduleAt(static_cast<Cycles>(i),
                                        [&fired] { ++fired; }));
        }
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (i % 4 != 0)
                eq.cancel(ids[i]);
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleCancel);

/** Steady-state churn: a fixed population of self-rescheduling event
 *  chains, the shape of a long simulation (every handler schedules
 *  its successor). Exercises slot recycling with a warm arena. */
void
BM_EventQueueChurn(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    constexpr int chains = 64;
    constexpr Cycles horizon = 4000;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *fired;
        Cycles stride;
        void
        operator()() const
        {
            ++*fired;
            Chain next = *this;
            eq->scheduleAfter(stride, next);
        }
    };
    for (int c = 0; c < chains; ++c)
        eq.scheduleAfter(static_cast<Cycles>(c),
                         Chain{&eq, &fired,
                               static_cast<Cycles>(16 + c % 7)});
    for (auto _ : state) {
        const std::uint64_t before = fired;
        eq.runUntil(eq.now() + horizon);
        benchmark::DoNotOptimize(fired - before);
    }
    // ~250 events per chain per horizon window.
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_EventQueueChurn);

/** clear()-then-reschedule between repetitions, as the experiment
 *  harness does; checks arena recycling after bulk teardown. */
void
BM_EventQueueClearReschedule(benchmark::State &state)
{
    EventQueue eq;
    int fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i)
            eq.scheduleAfter(static_cast<Cycles>(i + 1),
                             [&fired] { ++fired; });
        eq.clear();
        for (int i = 0; i < 256; ++i)
            eq.scheduleAfter(static_cast<Cycles>(i + 1),
                             [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_EventQueueClearReschedule);

void
BM_WorldSwitchSaveRestore(benchmark::State &state)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    RegFile save_area;
    WorldSwitchEngine wse(cm);
    for (auto _ : state) {
        Cycles c = wse.save(cpu, save_area, kvmArmSwitchedState);
        c += wse.restore(cpu, save_area, kvmArmSwitchedState);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldSwitchSaveRestore);

void
BM_HypercallMicrobench(benchmark::State &state)
{
    for (auto _ : state) {
        TestbedConfig tc;
        tc.kind = SutKind::KvmArm;
        Testbed tb(tc);
        MicrobenchSuite suite(tb);
        const MicroResult r = suite.run(MicroOp::Hypercall, 50);
        benchmark::DoNotOptimize(r.cycles.mean());
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_HypercallMicrobench);

void
BM_NetperfRrTransaction(benchmark::State &state)
{
    for (auto _ : state) {
        TestbedConfig tc;
        tc.kind = SutKind::KvmArm;
        Testbed tb(tc);
        NetperfRrConfig cfg;
        cfg.transactions = 50;
        const NetperfRrResult r = runNetperfRr(tb, cfg);
        benchmark::DoNotOptimize(r.transPerSec);
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_NetperfRrTransaction);

/** The Figure 4 application sweep, end to end, at a fixed thread
 *  count. Compare Serial vs Parallel to see the sweep-runner win on
 *  a multicore host (identical output is asserted in the tests). */
void
figure4Sweep(benchmark::State &state, int jobs)
{
    const std::string jobstr = std::to_string(jobs);
    setenv("VIRTSIM_JOBS", jobstr.c_str(), 1);
    AppBenchOptions opt;
    std::size_t rows = 0;
    for (auto _ : state) {
        const auto result = runFigure4(opt);
        rows = result.size();
        benchmark::DoNotOptimize(result.data());
    }
    unsetenv("VIRTSIM_JOBS");
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(rows));
}

void
BM_Figure4SweepSerial(benchmark::State &state)
{
    figure4Sweep(state, 1);
}
BENCHMARK(BM_Figure4SweepSerial)->Unit(benchmark::kMillisecond);

void
BM_Figure4SweepParallel(benchmark::State &state)
{
    figure4Sweep(state, sweepJobs() > 1 ? sweepJobs() : 4);
}
BENCHMARK(BM_Figure4SweepParallel)->Unit(benchmark::kMillisecond);

/** Repeated small sweeps over a fixed configuration set: the
 *  persistent-pool + testbed-cache case. After the first iteration
 *  every cell is a pool-thread wake plus a Testbed::reset() instead
 *  of a thread spawn plus full world construction. */
void
BM_SweepPoolReuse(benchmark::State &state)
{
    setenv("VIRTSIM_JOBS", "4", 1);
    const std::vector<SutKind> kinds = {
        SutKind::KvmArm, SutKind::XenArm,
        SutKind::KvmX86, SutKind::XenX86};
    for (auto _ : state) {
        const auto cells = parallelSweep(kinds, [](SutKind kind) {
            TestbedConfig tc;
            tc.kind = kind;
            TestbedLease tb = acquireTestbed(tc);
            MicrobenchSuite suite(*tb);
            return suite.run(MicroOp::Hypercall, 20).cycles.mean();
        });
        benchmark::DoNotOptimize(cells.data());
    }
    unsetenv("VIRTSIM_JOBS");
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kinds.size()));
}
BENCHMARK(BM_SweepPoolReuse)->Unit(benchmark::kMillisecond);

/** The dead-probe fast path: stamping against a disabled sink must
 *  cost one predictable branch per call (and allocate nothing — the
 *  tests assert that part). This is the per-event overhead every
 *  un-traced sweep cell pays. */
void
BM_DeadProbeStamp(benchmark::State &state)
{
    TraceSink sink; // never enabled
    const TapId tap = internTap("bench.deadprobe");
    Cycles t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            ++t;
            sink.stamp(t, 1, tap);
            sink.span(t, t + 2, tap, TraceCat::Op);
            sink.edgeIn(t, sink.edgeOut(t, tap, TraceCat::Irq), tap,
                        TraceCat::Irq);
        }
        benchmark::DoNotOptimize(t);
    }
    // Four stamping calls per inner loop turn.
    state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_DeadProbeStamp);

/** The dead-timeline fast path: ensureScheduled() against a disabled
 *  sampler is the per-run cost every un-sampled workload pays. Like
 *  BM_DeadProbeStamp it must stay one predictable branch per call;
 *  the tests assert the allocation-free part. */
void
BM_DeadTimelineTick(benchmark::State &state)
{
    EventQueue eq;
    TimelineSampler timeline; // never enabled
    std::int64_t level = 0;
    timeline.addGauge("bench.deadtimeline",
                      [&level] { return level; });
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            timeline.ensureScheduled(eq);
        benchmark::DoNotOptimize(timeline);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DeadTimelineTick);

/** The dead-latency fast path: record() against a disabled tracker is
 *  the per-phase cost every un-tracked run pays — it must stay one
 *  predicted branch per call (the tests assert the allocation-free
 *  part). */
void
BM_DeadLatencyStamp(benchmark::State &state)
{
    RequestTracker tracker;
    tracker.configure(4); // sized but never enabled
    Cycles t = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            t += 7;
            tracker.record(i & 3, LatencyPhase::Rtt, t);
            tracker.record(i & 3, LatencyPhase::Service, t >> 1);
        }
        benchmark::DoNotOptimize(tracker);
        benchmark::DoNotOptimize(t);
    }
    // Two stamping calls per inner loop turn.
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DeadLatencyStamp);

/** The dead-flight fast path: the flight-recorder tee fires on every
 *  TraceSink push, so with no VIRTSIM_INCIDENTS armed record() must
 *  stay one predicted branch per call (the tests assert the
 *  allocation-free part). */
void
BM_DeadFlightStamp(benchmark::State &state)
{
    FlightRecorder fr; // never enabled
    const TraceRecord r{0, 0, internTap("bench.deadflight"), 0,
                        TraceKind::Instant, TraceCat::Op};
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            fr.record(r);
        benchmark::DoNotOptimize(fr);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DeadFlightStamp);

/** The live stamp path: lane-local bucket increments on pre-sized
 *  arrays — the per-transaction observability cost a latency-tracked
 *  fleet pays, times five phases. */
void
BM_LatencyHistogramAdd(benchmark::State &state)
{
    RequestTracker tracker;
    tracker.configure(4);
    tracker.enable();
    Cycles t = 1;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i) {
            t = t * 2862933555777941757ULL + 3037000493ULL;
            tracker.record(i & 3, LatencyPhase::Rtt, t >> 24);
        }
        benchmark::DoNotOptimize(tracker);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LatencyHistogramAdd);

/** Cancel-heavy phases (timer retargets, teardown bursts) leave dead
 *  entries in the heap; past the half-dead threshold cancel()
 *  compacts in place. This measures the full churn cycle: bulk
 *  schedule, 3/4 cancelled (crossing the compaction threshold), then
 *  draining the survivors against a heap whose sift depth tracks the
 *  live population. */
void
BM_EventQueueCancelCompact(benchmark::State &state)
{
    EventQueue eq;
    std::vector<EventId> ids;
    ids.reserve(4096);
    std::uint64_t compactions = 0;
    for (auto _ : state) {
        ids.clear();
        const Cycles base = eq.now() + 1;
        for (int i = 0; i < 4096; ++i) {
            ids.push_back(eq.scheduleAt(
                base + static_cast<Cycles>(i), [] {}));
        }
        for (int i = 0; i < 4096; ++i) {
            if (i % 4 != 0)
                eq.cancel(ids[static_cast<std::size_t>(i)]);
        }
        eq.run();
        compactions = eq.compactions();
    }
    benchmark::DoNotOptimize(compactions);
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EventQueueCancelCompact);

/** The sharded kernel on the 4-CPU netperf RR fleet world. Serial
 *  (one lane) vs four lanes; the modelled results are byte-identical
 *  (asserted in test_shard), so the pair isolates the wall-clock
 *  effect of conservative-lookahead parallel rounds.
 *  bench_compare.sh reports the serial/sharded ratio as its speedup
 *  line; the parallel win only materializes on a multicore host. */
void
shardedFleetBench(benchmark::State &state, int lanes)
{
    FleetConfig cfg; // 4 CPUs x 32 conns x 250 transactions
    std::uint64_t tx = 0;
    for (auto _ : state) {
        const FleetResult r = runNetperfRrFleet(cfg, lanes);
        tx = r.transactions;
        benchmark::DoNotOptimize(tx);
        benchmark::DoNotOptimize(r.checksum);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(tx));
}

void
BM_ShardedKernelSerial(benchmark::State &state)
{
    shardedFleetBench(state, 1);
}
BENCHMARK(BM_ShardedKernelSerial)->Unit(benchmark::kMillisecond);

void
BM_ShardedKernelShards4(benchmark::State &state)
{
    shardedFleetBench(state, 4);
}
BENCHMARK(BM_ShardedKernelShards4)->Unit(benchmark::kMillisecond);

/** Four lanes with trace recording forced on (lane-local ring
 *  segments, per-lane profiler histograms — no export). Against
 *  BM_ShardedKernelShards4 this isolates the stamping overhead of
 *  the lane-partitioned observability path; bench_compare.sh reports
 *  the ratio as its traced-overhead line. */
void
BM_ShardedKernelTraced(benchmark::State &state)
{
    FleetConfig cfg;
    cfg.trace = true;
    std::uint64_t tx = 0;
    for (auto _ : state) {
        const FleetResult r = runNetperfRrFleet(cfg, 4);
        tx = r.transactions;
        benchmark::DoNotOptimize(tx);
        benchmark::DoNotOptimize(r.checksum);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(tx));
}
BENCHMARK(BM_ShardedKernelTraced)->Unit(benchmark::kMillisecond);

/** Fleet-scale round loops: hundreds of VM lanes, skewed load. VM 0
 *  is a hot spot (24 connections); the rest serve one connection
 *  each and go idle early, so most rounds run with a handful of
 *  runnable lanes out of hundreds. This is the shape the sparse
 *  coordinator exists for — per-round cost O(active lanes + traffic
 *  edges) — and the Dense variants rerun the identical world on the
 *  O(lanes^2) reference coordinator (byte-identical results,
 *  asserted in test_fleet_scale). bench_compare.sh reports the
 *  dense/sparse ratio as the fleet-scale speedup line; unlike the
 *  crew-parallelism lines it does not need a multicore host, since
 *  the win is coordinator arithmetic, not thread count. */
void
fleetScaleBench(benchmark::State &state, int vms, bool dense)
{
    FleetConfig cfg;
    cfg.nVms = vms;
    cfg.transactionsPerConn = 8;
    cfg.connsByVm.assign(static_cast<std::size_t>(vms), 1);
    cfg.connsByVm[0] = 24;
    if (dense)
        ::setenv("VIRTSIM_SHARD_DENSE", "1", 1);
    std::uint64_t tx = 0;
    for (auto _ : state) {
        const FleetResult r = runNetperfRrFleet(cfg, vms);
        tx = r.transactions;
        benchmark::DoNotOptimize(tx);
        benchmark::DoNotOptimize(r.checksum);
    }
    if (dense)
        ::unsetenv("VIRTSIM_SHARD_DENSE");
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(tx));
}

void
BM_FleetScale64(benchmark::State &state)
{
    fleetScaleBench(state, 64, false);
}
BENCHMARK(BM_FleetScale64)->Unit(benchmark::kMillisecond);

void
BM_FleetScale64Dense(benchmark::State &state)
{
    fleetScaleBench(state, 64, true);
}
BENCHMARK(BM_FleetScale64Dense)->Unit(benchmark::kMillisecond);

void
BM_FleetScale256(benchmark::State &state)
{
    fleetScaleBench(state, 256, false);
}
BENCHMARK(BM_FleetScale256)->Unit(benchmark::kMillisecond);

void
BM_FleetScale256Dense(benchmark::State &state)
{
    fleetScaleBench(state, 256, true);
}
BENCHMARK(BM_FleetScale256Dense)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
