/**
 * @file
 * Google-benchmark microbenchmarks of the simulator infrastructure
 * itself — event queue throughput, world-switch engine, and
 * end-to-end simulation rates — to keep the harness fast enough for
 * the large Figure 4 sweeps.
 */

#include <benchmark/benchmark.h>

#include "core/microbench.hh"
#include "core/netperf.hh"
#include "core/testbed.hh"
#include "hv/world_switch.hh"
#include "sim/event_queue.hh"

using namespace virtsim;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAt(static_cast<Cycles>(i), [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_WorldSwitchSaveRestore(benchmark::State &state)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    RegFile save_area;
    WorldSwitchEngine wse(cm);
    for (auto _ : state) {
        Cycles c = wse.save(cpu, save_area, kvmArmSwitchedState);
        c += wse.restore(cpu, save_area, kvmArmSwitchedState);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldSwitchSaveRestore);

void
BM_HypercallMicrobench(benchmark::State &state)
{
    for (auto _ : state) {
        TestbedConfig tc;
        tc.kind = SutKind::KvmArm;
        Testbed tb(tc);
        MicrobenchSuite suite(tb);
        const MicroResult r = suite.run(MicroOp::Hypercall, 50);
        benchmark::DoNotOptimize(r.cycles.mean());
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_HypercallMicrobench);

void
BM_NetperfRrTransaction(benchmark::State &state)
{
    for (auto _ : state) {
        TestbedConfig tc;
        tc.kind = SutKind::KvmArm;
        Testbed tb(tc);
        NetperfRrConfig cfg;
        cfg.transactions = 50;
        const NetperfRrResult r = runNetperfRr(tb, cfg);
        benchmark::DoNotOptimize(r.transPerSec);
    }
    state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_NetperfRrTransaction);

} // namespace

BENCHMARK_MAIN();
