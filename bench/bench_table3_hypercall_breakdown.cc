/**
 * @file
 * Regenerates Table III: "KVM ARM Hypercall Analysis (cycle counts)"
 * — the per-register-class save/restore attribution of the
 * split-mode world switch — and checks the paper's conclusions:
 * state movement, not trapping, dominates; the VGIC read-back is the
 * single largest term; saving costs more than restoring.
 */

#include <iostream>
#include <map>

#include "core/hypercall_breakdown.hh"
#include "core/report.hh"

using namespace virtsim;

namespace {

/** Table III as published. */
const std::map<RegClass, std::pair<double, double>> paperTable3 = {
    {RegClass::Gp, {152, 184}},
    {RegClass::Fp, {282, 310}},
    {RegClass::El1Sys, {230, 511}},
    {RegClass::Vgic, {3250, 181}},
    {RegClass::Timer, {104, 106}},
    {RegClass::El2Config, {92, 107}},
    {RegClass::El2VirtMem, {92, 107}},
};

} // namespace

int
main()
{
    std::cout << "Table III: KVM ARM Hypercall Analysis (cycle "
                 "counts)\n"
              << "Simulated reproduction of Dall et al., ISCA 2016.\n\n";

    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;
    Testbed tb(tc);
    const HypercallBreakdown b = measureHypercallBreakdown(tb);

    TextTable table({"Register State", "Save", "Restore",
                     "Paper Save", "Paper Restore"});
    for (const auto &row : b.rows) {
        const auto &paper = paperTable3.at(row.cls);
        table.addRow({to_string(row.cls),
                      formatCycles(static_cast<double>(row.save)),
                      formatCycles(static_cast<double>(row.restore)),
                      formatCycles(paper.first),
                      formatCycles(paper.second)});
    }
    std::cout << table.render() << "\n";

    std::cout << "Total save:        "
              << formatCycles(static_cast<double>(b.totalSave)) << "\n"
              << "Total restore:     "
              << formatCycles(static_cast<double>(b.totalRestore))
              << "\n"
              << "Hypercall total:   "
              << formatCycles(static_cast<double>(b.hypercallCycles))
              << "\n"
              << "Unattributed (traps, Stage-2 toggles, dispatch, "
                 "handler): "
              << formatCycles(static_cast<double>(b.unattributed()))
              << "\n\n";

    std::cout << "Metrics snapshot:\n  "
              << tb.metrics().snapshot().brief() << "\n";

    Cycles vgic_save = 0;
    Cycles max_other = 0;
    for (const auto &row : b.rows) {
        if (row.cls == RegClass::Vgic)
            vgic_save = row.save;
        else
            max_other = std::max(max_other, row.save);
    }
    const bool state_dominates =
        b.totalSave + b.totalRestore >
        4 * b.unattributed(); // "accounts for almost all"
    const bool vgic_dominates = vgic_save > 3 * max_other;
    const bool save_gt_restore = b.totalSave > 2 * b.totalRestore;

    std::cout << "Key findings reproduced:\n"
              << "  Context switching state is the primary cost "
                 "(not traps): "
              << (state_dominates ? "yes" : "NO") << "\n"
              << "  VGIC read-back dominates the save cost: "
              << (vgic_dominates ? "yes" : "NO") << "\n"
              << "  Saving (VM->hyp) much more expensive than "
                 "restoring: "
              << (save_gt_restore ? "yes" : "NO") << "\n";

    return (state_dominates && vgic_dominates && save_gt_restore) ? 0
                                                                  : 1;
}
