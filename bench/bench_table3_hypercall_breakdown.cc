/**
 * @file
 * Regenerates Table III: "KVM ARM Hypercall Analysis (cycle counts)"
 * — the per-register-class save/restore attribution of the
 * split-mode world switch — and checks the paper's conclusions:
 * state movement, not trapping, dominates; the VGIC read-back is the
 * single largest term; saving costs more than restoring.
 *
 * The same hypercall is also fed through the streaming causal
 * analyzer (sim/attrib): the resulting BlameReport must reproduce the
 * breakdown's per-class totals exactly, and diffing it against a VHE
 * run must rank register save/restore elimination as the top delta —
 * the paper's Section VI argument, machine-checked.
 */

#include <iostream>
#include <map>
#include <string>

#include "core/hypercall_breakdown.hh"
#include "core/report.hh"
#include "sim/attrib.hh"

using namespace virtsim;

namespace {

/** Table III as published. */
const std::map<RegClass, std::pair<double, double>> paperTable3 = {
    {RegClass::Gp, {152, 184}},
    {RegClass::Fp, {282, 310}},
    {RegClass::El1Sys, {230, 511}},
    {RegClass::Vgic, {3250, 181}},
    {RegClass::Timer, {104, 106}},
    {RegClass::El2Config, {92, 107}},
    {RegClass::El2VirtMem, {92, 107}},
};

/**
 * Check the analyzer's blame terms against the breakdown the trace
 * records attribute directly: every ws.save/ws.restore term must
 * match the per-class totals cycle for cycle.
 */
bool
blameMatchesBreakdown(const BlameReport &rep,
                      const HypercallBreakdown &b)
{
    bool ok = true;
    for (const auto &row : b.rows) {
        const std::string save = "ws.save." + to_string(row.cls);
        const std::string restore =
            "ws.restore." + to_string(row.cls);
        const BlameTerm *s = rep.find(save);
        const BlameTerm *r = rep.find(restore);
        const Cycles sc = s ? s->cycles : 0;
        const Cycles rc = r ? r->cycles : 0;
        if (sc != row.save || rc != row.restore) {
            std::cout << "  MISMATCH " << to_string(row.cls)
                      << ": blame save/restore " << sc << "/" << rc
                      << " vs breakdown " << row.save << "/"
                      << row.restore << "\n";
            ok = false;
        }
    }
    return ok;
}

} // namespace

int
main()
{
    std::cout << "Table III: KVM ARM Hypercall Analysis (cycle "
                 "counts)\n"
              << "Simulated reproduction of Dall et al., ISCA 2016.\n\n";

    TestbedConfig tc;
    tc.kind = SutKind::KvmArm;
    Testbed tb(tc);
    CausalAnalyzer &attrib = tb.attribution();
    attrib.setLabel(to_string(tc.kind));
    const HypercallBreakdown b = measureHypercallBreakdown(tb);
    const BlameReport blame = attrib.report(&tb.trace());

    TextTable table({"Register State", "Save", "Restore",
                     "Paper Save", "Paper Restore"});
    for (const auto &row : b.rows) {
        const auto &paper = paperTable3.at(row.cls);
        table.addRow({to_string(row.cls),
                      formatCycles(static_cast<double>(row.save)),
                      formatCycles(static_cast<double>(row.restore)),
                      formatCycles(paper.first),
                      formatCycles(paper.second)});
    }
    std::cout << table.render() << "\n";

    std::cout << "Total save:        "
              << formatCycles(static_cast<double>(b.totalSave)) << "\n"
              << "Total restore:     "
              << formatCycles(static_cast<double>(b.totalRestore))
              << "\n"
              << "Hypercall total:   "
              << formatCycles(static_cast<double>(b.hypercallCycles))
              << "\n"
              << "Unattributed (traps, Stage-2 toggles, dispatch, "
                 "handler): "
              << formatCycles(static_cast<double>(b.unattributed()))
              << "\n\n";

    std::cout << "Metrics snapshot:\n  "
              << tb.metrics().snapshot().brief() << "\n";

    Cycles vgic_save = 0;
    Cycles max_other = 0;
    for (const auto &row : b.rows) {
        if (row.cls == RegClass::Vgic)
            vgic_save = row.save;
        else
            max_other = std::max(max_other, row.save);
    }
    const bool state_dominates =
        b.totalSave + b.totalRestore >
        4 * b.unattributed(); // "accounts for almost all"
    const bool vgic_dominates = vgic_save > 3 * max_other;
    const bool save_gt_restore = b.totalSave > 2 * b.totalRestore;

    std::cout << "Key findings reproduced:\n"
              << "  Context switching state is the primary cost "
                 "(not traps): "
              << (state_dominates ? "yes" : "NO") << "\n"
              << "  VGIC read-back dominates the save cost: "
              << (vgic_dominates ? "yes" : "NO") << "\n"
              << "  Saving (VM->hyp) much more expensive than "
                 "restoring: "
              << (save_gt_restore ? "yes" : "NO") << "\n\n";

    // Causal attribution cross-check: the streaming analyzer, fed the
    // same trace stream, must blame exactly the cycles the breakdown
    // attributes to each register class.
    std::cout << blame.render() << "\n";
    const bool blame_exact = blameMatchesBreakdown(blame, b);
    std::cout << "Blame report reproduces Table III totals exactly: "
              << (blame_exact ? "yes" : "NO") << "\n\n";

    // Section VI differential: the same hypercall on a VHE testbed,
    // then a ranked "why is KVM ARM slower" table. The top-ranked
    // delta must be a register save/restore term — VHE's entire win
    // is eliminating that state movement.
    TestbedConfig vc;
    vc.kind = SutKind::KvmArmVhe;
    Testbed vtb(vc);
    CausalAnalyzer &vattrib = vtb.attribution();
    vattrib.setLabel(to_string(vc.kind));
    measureHypercallBreakdown(vtb);
    const BlameReport vblame = vattrib.report(&vtb.trace());

    const DiffReport diff = diffBlame(blame, vblame);
    std::cout << diff.render() << "\n";
    const DiffRow *worst = diff.top();
    const bool vhe_savings_top =
        worst && worst->delta() > 0 &&
        worst->name.rfind("ws.", 0) == 0;
    std::cout << "Top KVM-ARM-vs-VHE delta is register "
                 "save/restore: "
              << (vhe_savings_top ? "yes" : "NO");
    if (worst)
        std::cout << "  (" << worst->name << ", +" << worst->delta()
                  << " cy)";
    std::cout << "\n";

    return (state_dominates && vgic_dominates && save_gt_restore &&
            blame_exact && vhe_savings_top)
               ? 0
               : 1;
}
