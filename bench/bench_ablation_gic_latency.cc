/**
 * @file
 * Extension study: how sensitive are the paper's results to the
 * interrupt controller's register-access latency?
 *
 * The X-Gene's GIC sits across a slow interconnect (~295 cycles per
 * access — derived from the 3,250-cycle VGIC save in Table III). The
 * paper identifies the VGIC read-back as the dominant split-mode
 * cost; this sweep quantifies the architectural implication: what a
 * core-speed interrupt controller (as in later server SoCs, or a
 * system-register GIC a la GICv3) would have done to every Table II
 * row, without any software change.
 */

#include <iostream>
#include <vector>

#include "core/microbench.hh"
#include "core/report.hh"
#include "core/testbed.hh"
#include "sim/sweep.hh"

using namespace virtsim;

namespace {

/** Scale all GIC access costs of an ARM testbed by factor. */
void
scaleGic(Testbed &tb, double factor)
{
    auto &cm = const_cast<CostModel &>(tb.machine().costs());
    cm.irqChipRegAccess =
        static_cast<Cycles>(cm.irqChipRegAccess * factor);
    // The VGIC save is ~11 reads of the virtual interface; scale the
    // measured block the same way. Restore stays register-write
    // cheap.
    cm.cost(RegClass::Vgic).save = static_cast<Cycles>(
        cm.cost(RegClass::Vgic).save * factor);
    cm.listRegWrite =
        static_cast<Cycles>(cm.listRegWrite * factor);
}

double
micro(SutKind kind, MicroOp op, double gic_scale)
{
    TestbedConfig tc;
    tc.kind = kind;
    // Deliberately not acquireTestbed(): scaleGic mutates the world's
    // cost model behind the config's back, so a cached instance would
    // leak the scaling into later same-config cells.
    Testbed tb(tc);
    scaleGic(tb, gic_scale);
    MicrobenchSuite suite(tb);
    return suite.run(op, 20).cycles.mean();
}

} // namespace

int
main()
{
    std::cout << "Extension: GIC register-access latency sweep "
                 "(ARM)\n"
              << "1.00x = X-Gene as measured (~295 cycles/access); "
                 "0.1x ~ core-speed GIC\n\n";

    const double scales[] = {1.0, 0.5, 0.25, 0.1};
    const MicroOp ops[] = {MicroOp::Hypercall,
                           MicroOp::InterruptControllerTrap,
                           MicroOp::VirtualIpi, MicroOp::VmSwitch};
    const SutKind kinds[] = {SutKind::KvmArm, SutKind::XenArm};

    // Flatten the (kind x op x scale) grid into one parallel sweep:
    // 32 independent testbeds measured concurrently, results
    // committed in grid order.
    struct GridCell
    {
        SutKind kind;
        MicroOp op;
        double scale;
    };
    std::vector<GridCell> grid;
    for (SutKind kind : kinds)
        for (MicroOp op : ops)
            for (double s : scales)
                grid.push_back({kind, op, s});
    const auto cycles = parallelSweep(grid, [](const GridCell &c) {
        return micro(c.kind, c.op, c.scale);
    });
    auto cellAt = [&](SutKind kind, MicroOp op, double scale) {
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (grid[i].kind == kind && grid[i].op == op &&
                grid[i].scale == scale)
                return cycles[i];
        }
        return -1.0;
    };

    std::size_t i = 0;
    for (SutKind kind : kinds) {
        TextTable t({to_string(kind) + " microbenchmark", "1.00x",
                     "0.50x", "0.25x", "0.10x"});
        for (MicroOp op : ops) {
            std::vector<std::string> row{to_string(op)};
            for (double s : scales) {
                (void)s;
                row.push_back(formatCycles(cycles[i++]));
            }
            t.addRow(row);
        }
        std::cout << t.render() << "\n";
    }

    // Findings: a core-speed GIC halves the split-mode hypercall but
    // cannot reach the Xen ARM fast path (the EL1 system-register
    // switch remains), while Xen ARM's hypercall is insensitive (it
    // never touches the GIC).
    const double kvm_slow = cellAt(SutKind::KvmArm,
                                   MicroOp::Hypercall, 1.0);
    const double kvm_fast = cellAt(SutKind::KvmArm,
                                   MicroOp::Hypercall, 0.1);
    const double xen_slow = cellAt(SutKind::XenArm,
                                   MicroOp::Hypercall, 1.0);
    const double xen_fast = cellAt(SutKind::XenArm,
                                   MicroOp::Hypercall, 0.1);

    const bool kvm_halves = kvm_fast < 0.60 * kvm_slow;
    const bool gap_remains = kvm_fast > 4.0 * xen_slow;
    const bool xen_insensitive = xen_fast == xen_slow;

    std::cout << "Key findings:\n"
              << "  A fast GIC removes ~half the split-mode "
                 "hypercall cost: "
              << (kvm_halves ? "yes" : "NO") << "\n"
              << "  ...but the EL1 state switch keeps Type 2 >4x "
                 "behind Type 1: "
              << (gap_remains ? "yes" : "NO") << "\n"
              << "  Xen ARM's fast path never touches the GIC: "
              << (xen_insensitive ? "yes" : "NO") << "\n";
    return (kvm_halves && gap_remains && xen_insensitive) ? 0 : 1;
}
