/**
 * @file
 * Fleet tail-latency and SLO bench: the request-level observability
 * acceptance harness.
 *
 * Two scenarios on the same 4-CPU netperf TCP_RR fleet:
 *
 *  1. nominal — the default closed-loop fleet. The closed loop
 *     self-limits (each connection waits for its response before
 *     thinking and sending again), so steady-state RTT is governed by
 *     connsPerCpu * service time and the default SLO (p99 RTT within
 *     fleetDefaultSloP99Us) must hold: zero breaches, zero watchdog
 *     anomalies.
 *
 *  2. overload — open-loop MMPP arrivals beyond the service capacity
 *     (plus 4x bursts). Without the closed loop's self-limiting the
 *     server queues grow, the tail blows past the threshold, and the
 *     run MUST trip the SLO: a failed rtt_p99 verdict in the latency
 *     export and a named "slo.rtt_p99" watchdog anomaly.
 *
 * Exit status is 0 only when the nominal run passes AND the overload
 * run breaches — this bench guards both directions: an SLO engine
 * that never fires is as broken as one that always does.
 *
 * The overload scenario additionally arms the flight recorder
 * (VIRTSIM_INCIDENTS=incidents): the SLO burn breach must freeze at
 * least one incident whose report names the breached slo.* rule —
 * guarding the trigger wiring, the window capture and the export in
 * one pass.
 *
 * Artifacts: virtsim-latency-1 JSON exports land in the working
 * directory (latency_nominal.fleet.json / latency_overload.fleet.json)
 * and virtsim-incident-1 reports under incidents/ for CI upload,
 * scripts/validate_latency.py and scripts/validate_incident.py.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/fleet.hh"
#include "core/report.hh"
#include "hw/machine.hh"
#include "sim/env.hh"

using namespace virtsim;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

bool
contains(const std::string &hay, const std::string &needle)
{
    return hay.find(needle) != std::string::npos;
}

FleetResult
runScenario(const char *name, const FleetConfig &cfg, int lanes,
            const Frequency &freq)
{
    const std::string path = std::string("latency_") + name + ".json";
    setenv("VIRTSIM_LATENCY", path.c_str(), 1);
    std::cout << "== " << name << " ==\n";
    const FleetResult r = runNetperfRrFleet(cfg, lanes);
    const double meanRttUs =
        r.transactions == 0
            ? 0.0
            : freq.us(r.totalRttCycles) /
                  static_cast<double>(r.transactions);
    std::cout << "transactions " << r.transactions << ", mean RTT "
              << formatFixed(meanRttUs, 2) << " us, final time "
              << formatFixed(freq.us(r.finalTime) / 1000.0, 2)
              << " ms, SLO breaches " << r.sloBreaches
              << ", watchdog anomalies " << r.anomalies << "\n\n";
    return r;
}

} // namespace

int
main()
{
    std::cout << "Fleet tail latency & SLOs\n"
              << "Request-level observability acceptance: HDR"
                 " histograms, phase decomposition, SLO engine.\n\n";

    const int lanes = static_cast<int>(
        envPositiveCount("VIRTSIM_SHARDS", 64).value_or(2));
    const Frequency freq =
        MachineConfig::hpMoonshotM400().costs.freq;

    // The bench owns its export paths; the fleet tags them ".fleet".
    FleetConfig nominal;
    const FleetResult rNominal =
        runScenario("nominal", nominal, lanes, freq);

    FleetConfig over;
    // Freeze forensic context around the breach: one incident per
    // trigger instant, windows annotated into any VIRTSIM_TRACE.
    setenv("VIRTSIM_INCIDENTS", "incidents", 1);
    over.transactionsPerConn = 150;
    over.openLoop = true;
    // Per-CPU offered load: connsPerCpu / meanInterarrivalUs
    // ~= 0.53 req/us against ~0.25 req/us of service capacity —
    // about 2x overcommit even between bursts, 8x inside them.
    over.meanInterarrivalUs = 60.0;
    over.burstRateFactor = 4.0;
    const FleetResult rOver =
        runScenario("overload", over, lanes, freq);

    const std::string overJson = slurp("latency_overload.fleet.json");

    // At least one exported incident must name the breached SLO rule
    // as a trigger source and carry a nonempty critical path.
    bool incidentNamesRule = false;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator("incidents", ec)) {
        const std::string body = slurp(de.path().string());
        if (contains(body, "\"schema\":\"virtsim-incident-1\"") &&
            contains(body, "slo.rtt_p99") &&
            !contains(body, "\"steps\":[]")) {
            incidentNamesRule = true;
        }
    }
    const bool nominalPass =
        rNominal.sloBreaches == 0 && rNominal.anomalies == 0;
    const bool overloadTripped =
        rOver.sloBreaches > 0 && rOver.anomalies > 0 &&
        contains(overJson, "\"name\":\"rtt_p99\"") &&
        contains(overJson, "\"pass\":false") && incidentNamesRule;

    std::cout << "Nominal fleet meets the SLO (no breach, no"
                 " anomaly): "
              << (nominalPass ? "yes" : "NO") << "\n"
              << "Overload trips the SLO (breach + named"
                 " slo.rtt_p99 anomaly + incident report): "
              << (overloadTripped ? "yes" : "NO") << "\n";

    return (nominalPass && overloadTripped) ? 0 : 1;
}
