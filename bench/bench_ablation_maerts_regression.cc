/**
 * @file
 * E8 ablation (Section V): the Linux 4.0-rc1 TSO-autosizing
 * regression behind the Xen TCP_MAERTS result.
 *
 * Paper: "the Xen performance problem is due to a regression in
 * Linux introduced in Linux v4.0-rc1 in an attempt to fight
 * bufferbloat ... We confirmed that using an earlier version of
 * Linux or tuning the TCP configuration in the guest using sysfs
 * significantly reduced the overhead of Xen on the TCP MAERTS
 * benchmark."
 */

#include <iostream>
#include <utility>
#include <vector>

#include "core/netperf.hh"
#include "core/report.hh"
#include "sim/sweep.hh"

using namespace virtsim;

int
main()
{
    std::cout << "Ablation E8: TSO-autosizing regression on Xen "
                 "TCP_MAERTS (Section V)\n\n";

    const std::vector<std::pair<SutKind, bool>> cells = {
        {SutKind::Native, true},
        {SutKind::XenArm, true},
        {SutKind::XenArm, false},
        {SutKind::KvmArm, true},
    };
    const auto gbps =
        parallelSweep(cells, [](const std::pair<SutKind, bool> &c) {
            TestbedConfig tc;
            tc.kind = c.first;
            tc.tsoRegression = c.second;
            TestbedLease tb = acquireTestbed(tc);
            return runNetperfMaerts(*tb).gbps;
        });
    const double native = gbps[0];
    const double xen_regressed = gbps[1];
    const double xen_fixed = gbps[2];
    const double kvm = gbps[3];

    TextTable table({"Configuration", "Gbps", "normalized overhead"});
    table.addRow({"Native ARM", formatFixed(native, 2), "1.00"});
    table.addRow({"KVM ARM (regression active, unaffected path)",
                  formatFixed(kvm, 2),
                  formatFixed(native / kvm, 2)});
    table.addRow({"Xen ARM, Linux 4.0-rc4 (regression active)",
                  formatFixed(xen_regressed, 2),
                  formatFixed(native / xen_regressed, 2)});
    table.addRow({"Xen ARM, tuned/older TCP (regression off)",
                  formatFixed(xen_fixed, 2),
                  formatFixed(native / xen_fixed, 2)});
    std::cout << table.render() << "\n";

    const bool xen_bad_with_regression =
        native / xen_regressed > 1.7;
    const bool tuning_recovers =
        xen_fixed > 1.5 * xen_regressed;
    const bool kvm_unaffected = native / kvm < 1.15;

    std::cout << "Key findings reproduced:\n"
              << "  Xen MAERTS shows substantially higher overhead "
                 "under the regression: "
              << (xen_bad_with_regression ? "yes" : "NO") << "\n"
              << "  Tuning the guest TCP configuration recovers most "
                 "of it: "
              << (tuning_recovers ? "yes" : "NO") << "\n"
              << "  KVM's transmit path is unaffected: "
              << (kvm_unaffected ? "yes" : "NO") << "\n";
    return (xen_bad_with_regression && tuning_recovers &&
            kvm_unaffected)
               ? 0
               : 1;
}
