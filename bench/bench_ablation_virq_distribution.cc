/**
 * @file
 * E5 ablation (Section V): distributing virtual interrupts across
 * VCPUs instead of funneling everything through VCPU0.
 *
 * Paper: "distributing virtual interrupts across multiple VCPUs ...
 * causes performance overhead to drop on KVM from 35% to 14% on
 * Apache and from 26% to 8% on Memcached, and on Xen from 84% to 16%
 * on Apache and from 32% to 9% on Memcached."
 */

#include <iostream>
#include <memory>

#include "core/appbench.hh"
#include "core/report.hh"
#include "core/workloads/apache.hh"
#include "core/workloads/memcached.hh"
#include "sim/sweep.hh"

using namespace virtsim;

namespace {

/** One (workload, hypervisor, routing) cell of the ablation grid.
 *  Each sweep task builds its own Workload instance so nothing
 *  mutable is shared across threads. */
struct Cell
{
    bool memcached;
    SutKind kind;
    VirqDistribution dist;
};

double
overheadOf(const Cell &c)
{
    std::unique_ptr<Workload> w;
    if (c.memcached)
        w = std::make_unique<MemcachedWorkload>();
    else
        w = std::make_unique<ApacheWorkload>();
    AppBenchOptions opt;
    opt.kinds = {c.kind};
    opt.virqDist = c.dist;
    const AppBenchRow row = runAppBenchRow(*w, opt);
    return row.cells.at(0).normalizedOverhead.value_or(-1.0);
}

} // namespace

int
main()
{
    std::cout << "Ablation E5: virtual-interrupt distribution "
                 "(Section V)\n"
              << "Overhead vs native with all vIRQs on VCPU0 "
                 "(paper default)\nversus spread across VCPUs.\n\n";

    TextTable table({"Workload / HV", "single VCPU0", "distributed",
                     "paper single", "paper distributed"});

    struct Case
    {
        bool memcached;
        SutKind kind;
        const char *label;
        const char *paper_single;
        const char *paper_spread;
    };
    const Case cases[] = {
        {false, SutKind::KvmArm, "Apache / KVM ARM", "1.35", "1.14"},
        {false, SutKind::XenArm, "Apache / Xen ARM", "1.84", "1.16"},
        {true, SutKind::KvmArm, "Memcached / KVM ARM", "1.26",
         "1.08"},
        {true, SutKind::XenArm, "Memcached / Xen ARM", "1.32",
         "1.09"},
    };

    // Flatten to one sweep cell per (case, routing); all eight
    // measurements run concurrently.
    std::vector<Cell> cells;
    for (const auto &c : cases) {
        cells.push_back({c.memcached, c.kind,
                         VirqDistribution::SingleVcpu});
        cells.push_back({c.memcached, c.kind,
                         VirqDistribution::Spread});
    }
    const auto overhead = parallelSweep(
        cells, [](const Cell &c) { return overheadOf(c); });

    bool all_improve = true;
    double reduction_sum = 0;
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        const Case &c = cases[i];
        const double single = overhead[2 * i];
        const double spread = overhead[2 * i + 1];
        table.addRow({c.label, formatFixed(single, 2),
                      formatFixed(spread, 2), c.paper_single,
                      c.paper_spread});
        if (spread >= single)
            all_improve = false;
        reduction_sum += (single - spread) / (single - 1.0 + 1e-9);
    }
    const double mean_reduction = reduction_sum / 4.0;
    std::cout << table.render() << "\n";

    const bool sharp = all_improve && mean_reduction > 0.25;
    std::cout << "Key finding reproduced:\n"
              << "  Distributing vIRQs reduces overhead in every "
                 "case (mean overhead reduction "
              << formatFixed(mean_reduction * 100.0, 0) << "%): "
              << (sharp ? "yes" : "NO") << "\n";
    return sharp ? 0 : 1;
}
