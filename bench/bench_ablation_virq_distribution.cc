/**
 * @file
 * E5 ablation (Section V): distributing virtual interrupts across
 * VCPUs instead of funneling everything through VCPU0.
 *
 * Paper: "distributing virtual interrupts across multiple VCPUs ...
 * causes performance overhead to drop on KVM from 35% to 14% on
 * Apache and from 26% to 8% on Memcached, and on Xen from 84% to 16%
 * on Apache and from 32% to 9% on Memcached."
 */

#include <iostream>

#include "core/appbench.hh"
#include "core/report.hh"
#include "core/workloads/apache.hh"
#include "core/workloads/memcached.hh"

using namespace virtsim;

namespace {

double
overheadOf(Workload &w, SutKind kind, VirqDistribution dist)
{
    AppBenchOptions opt;
    opt.kinds = {kind};
    opt.virqDist = dist;
    const AppBenchRow row = runAppBenchRow(w, opt);
    return row.cells.at(0).normalizedOverhead.value_or(-1.0);
}

} // namespace

int
main()
{
    std::cout << "Ablation E5: virtual-interrupt distribution "
                 "(Section V)\n"
              << "Overhead vs native with all vIRQs on VCPU0 "
                 "(paper default)\nversus spread across VCPUs.\n\n";

    ApacheWorkload apache;
    MemcachedWorkload memcached;

    TextTable table({"Workload / HV", "single VCPU0", "distributed",
                     "paper single", "paper distributed"});

    struct Case
    {
        Workload *w;
        SutKind kind;
        const char *label;
        const char *paper_single;
        const char *paper_spread;
    };
    const Case cases[] = {
        {&apache, SutKind::KvmArm, "Apache / KVM ARM", "1.35", "1.14"},
        {&apache, SutKind::XenArm, "Apache / Xen ARM", "1.84", "1.16"},
        {&memcached, SutKind::KvmArm, "Memcached / KVM ARM", "1.26",
         "1.08"},
        {&memcached, SutKind::XenArm, "Memcached / Xen ARM", "1.32",
         "1.09"},
    };

    bool all_improve = true;
    double reduction_sum = 0;
    for (const auto &c : cases) {
        const double single =
            overheadOf(*c.w, c.kind, VirqDistribution::SingleVcpu);
        const double spread =
            overheadOf(*c.w, c.kind, VirqDistribution::Spread);
        table.addRow({c.label, formatFixed(single, 2),
                      formatFixed(spread, 2), c.paper_single,
                      c.paper_spread});
        if (spread >= single)
            all_improve = false;
        reduction_sum += (single - spread) / (single - 1.0 + 1e-9);
    }
    const double mean_reduction = reduction_sum / 4.0;
    std::cout << table.render() << "\n";

    const bool sharp = all_improve && mean_reduction > 0.25;
    std::cout << "Key finding reproduced:\n"
              << "  Distributing vIRQs reduces overhead in every "
                 "case (mean overhead reduction "
              << formatFixed(mean_reduction * 100.0, 0) << "%): "
              << (sharp ? "yes" : "NO") << "\n";
    return sharp ? 0 : 1;
}
