/**
 * @file
 * The paper's vAPIC remark, quantified: "More recently, vAPIC support
 * has been added to x86 with similar functionality to avoid the need
 * to trap to the hypervisor so that newer x86 hardware with vAPIC
 * support should perform more comparably to ARM" (Section IV).
 *
 * This bench runs the interrupt-heavy rows of Table II and the
 * interrupt-bound Memcached workload on x86 with and without vAPIC,
 * next to the ARM fast path.
 */

#include <iostream>

#include "core/appbench.hh"
#include "core/microbench.hh"
#include "core/report.hh"
#include "core/workloads/memcached.hh"

using namespace virtsim;

namespace {

double
micro(SutKind kind, bool vapic, MicroOp op)
{
    TestbedConfig tc;
    tc.kind = kind;
    tc.vApic = vapic;
    TestbedLease tb = acquireTestbed(tc);
    MicrobenchSuite suite(*tb);
    return suite.run(op, 20).cycles.mean();
}

double
memcachedOverhead(SutKind kind, bool vapic)
{
    MemcachedWorkload mem;
    AppBenchOptions opt;
    opt.kinds = {kind};
    // vApic is a testbed knob; runAppBenchRow builds testbeds from
    // options, so thread it through a one-off row run.
    AppBenchRow row;
    TestbedConfig nat;
    nat.kind = SutKind::NativeX86;
    TestbedLease nat_tb = acquireTestbed(nat);
    const double native = mem.run(*nat_tb);
    TestbedConfig tc;
    tc.kind = kind;
    tc.vApic = vapic;
    TestbedLease tb = acquireTestbed(tc);
    return native / mem.run(*tb);
}

} // namespace

int
main()
{
    std::cout << "Ablation: x86 vAPIC (Section IV discussion)\n\n";

    TextTable t({"Virtual IRQ Completion (cycles)", "value"});
    const double x86_plain =
        micro(SutKind::KvmX86, false, MicroOp::VirtualIrqCompletion);
    const double x86_vapic =
        micro(SutKind::KvmX86, true, MicroOp::VirtualIrqCompletion);
    const double arm =
        micro(SutKind::KvmArm, false, MicroOp::VirtualIrqCompletion);
    t.addRow({"KVM x86, testbed hardware (EOI traps)",
              formatCycles(x86_plain)});
    t.addRow({"KVM x86 with vAPIC", formatCycles(x86_vapic)});
    t.addRow({"KVM ARM (GIC virtual interface)", formatCycles(arm)});
    std::cout << t.render() << "\n";

    const double o_plain = memcachedOverhead(SutKind::KvmX86, false);
    const double o_vapic = memcachedOverhead(SutKind::KvmX86, true);
    TextTable t2({"Memcached overhead (x86)", "value"});
    t2.addRow({"KVM x86, no vAPIC", formatFixed(o_plain, 2)});
    t2.addRow({"KVM x86, vAPIC", formatFixed(o_vapic, 2)});
    std::cout << t2.render() << "\n";

    const bool comparable_to_arm = x86_vapic < 3 * arm;
    const bool removes_traps = x86_plain > 10 * x86_vapic;
    const bool helps_apps = o_vapic <= o_plain + 1e-9;
    std::cout << "Key findings:\n"
              << "  vAPIC removes the EOI trap (>10x cheaper "
                 "completion): "
              << (removes_traps ? "yes" : "NO") << "\n"
              << "  ...bringing x86 within range of ARM's 71-cycle "
                 "fast path: "
              << (comparable_to_arm ? "yes" : "NO") << "\n"
              << "  Interrupt-bound application overhead does not "
                 "get worse: "
              << (helps_apps ? "yes" : "NO") << "\n";
    return (comparable_to_arm && removes_traps && helps_apps) ? 0 : 1;
}
