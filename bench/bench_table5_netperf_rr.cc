/**
 * @file
 * Regenerates Table V: "Netperf TCP RR Analysis on ARM" — the
 * tcpdump-style decomposition of a 1-byte request/response
 * transaction into wire/client, hypervisor-delivery and VM-internal
 * legs, for native, KVM and Xen on the ARM testbed.
 *
 * Each virtualized run also feeds the causal analyzer: the op.tcp_rr
 * envelope roots every transaction's world switches and backend work,
 * and the Xen-vs-KVM differential ranks where Xen's extra
 * per-transaction latency comes from.
 */

#include <iostream>
#include <vector>

#include "core/netperf.hh"
#include "core/report.hh"
#include "sim/attrib.hh"
#include "sim/timeline.hh"

using namespace virtsim;

namespace {

struct PaperColumn
{
    double trans_s;
    double time_trans;
    double send_to_recv;
    double recv_to_send;
    double recv_to_vm_recv;
    double vm_recv_to_vm_send;
    double vm_send_to_send;
};

const PaperColumn paperNative = {23911, 41.8, 29.7, 14.5, 0, 0, 0};
const PaperColumn paperKvm = {11591, 86.3, 29.8, 53.0, 21.1, 16.9,
                              15.0};
const PaperColumn paperXen = {10253, 97.5, 33.9, 64.6, 25.9, 17.4,
                              21.4};

} // namespace

int
main()
{
    std::cout << "Table V: Netperf TCP RR Analysis on ARM\n"
              << "Simulated reproduction of Dall et al., ISCA 2016.\n\n";

    const std::vector<std::pair<SutKind, const PaperColumn *>> cols = {
        {SutKind::Native, &paperNative},
        {SutKind::KvmArm, &paperKvm},
        {SutKind::XenArm, &paperXen},
    };

    std::vector<NetperfRrResult> results;
    std::vector<std::string> briefs;
    std::vector<BlameReport> blames;
    std::vector<std::string> timelines;
    std::uint64_t anomalies = 0;
    std::uint64_t sloBreaches = 0;
    for (const auto &[kind, paper] : cols) {
        (void)paper;
        TestbedConfig tc;
        tc.kind = kind;
        TestbedLease tb = acquireTestbed(tc);
        CausalAnalyzer &an = tb->attribution();
        an.setLabel(to_string(kind));
        results.push_back(runNetperfRr(*tb));
        briefs.push_back(tb->metrics().snapshot().brief());
        blames.push_back(an.report(&tb->trace()));
        // When VIRTSIM_TIMELINE / VIRTSIM_TRACE armed the sampler,
        // gate on the watchdog: a paper-config run must be
        // anomaly-free or the table's numbers are suspect.
        const TimelineSampler &tl = tb->timeline();
        if (tl.enabled()) {
            anomalies += tl.anomalyCount();
            timelines.push_back(
                to_string(kind) + "\n" +
                renderTimelineSummary(
                    tl, tb->freq(),
                    {"cpu0.el", "cpu0.gic.lr_used", "nic.rx_queue",
                     "virtio.rx.avail", "vhost.rx_backlog",
                     "xenring.rx.requests", "event_queue.depth"}));
        }
        // When VIRTSIM_LATENCY armed request tracking, gate on the
        // SLO engine too: every paper configuration must meet the
        // round-trip objective (default or VIRTSIM_SLO_P99_US).
        if (tb->latency().enabled())
            sloBreaches += tb->sloBreaches();
    }

    TextTable table({"", "Native", "KVM", "Xen"});
    auto row3 = [&](const std::string &label, auto get, int digits) {
        table.addRow({label, formatFixed(get(results[0]), digits),
                      formatFixed(get(results[1]), digits),
                      formatFixed(get(results[2]), digits)});
    };
    row3("Trans/s",
         [](const NetperfRrResult &r) { return r.transPerSec; }, 0);
    row3("Time/trans (us)",
         [](const NetperfRrResult &r) { return r.timePerTransUs; }, 1);
    table.addRow(
        {"Overhead (us)", "-",
         formatFixed(results[1].timePerTransUs -
                         results[0].timePerTransUs, 1),
         formatFixed(results[2].timePerTransUs -
                         results[0].timePerTransUs, 1)});
    row3("send to recv (us)",
         [](const NetperfRrResult &r) { return r.sendToRecvUs; }, 1);
    row3("recv to send (us)",
         [](const NetperfRrResult &r) { return r.recvToSendUs; }, 1);
    row3("recv to VM recv (us)",
         [](const NetperfRrResult &r) { return r.recvToVmRecvUs; }, 1);
    row3("VM recv to VM send (us)",
         [](const NetperfRrResult &r) { return r.vmRecvToVmSendUs; },
         1);
    row3("VM send to send (us)",
         [](const NetperfRrResult &r) { return r.vmSendToSendUs; }, 1);
    std::cout << table.render() << "\n";

    std::cout << "Paper reference:\n";
    TextTable ref({"", "Native", "KVM", "Xen"});
    ref.addRow({"Trans/s", "23,911", "11,591", "10,253"});
    ref.addRow({"Time/trans (us)", "41.8", "86.3", "97.5"});
    ref.addRow({"send to recv (us)", "29.7", "29.8", "33.9"});
    ref.addRow({"recv to send (us)", "14.5", "53.0", "64.6"});
    ref.addRow({"recv to VM recv (us)", "-", "21.1", "25.9"});
    ref.addRow({"VM recv to VM send (us)", "-", "16.9", "17.4"});
    ref.addRow({"VM send to send (us)", "-", "15.0", "21.4"});
    std::cout << ref.render() << "\n";

    std::cout << "Metrics snapshot (per configuration):\n";
    for (std::size_t i = 0; i < cols.size(); ++i) {
        std::cout << "  " << to_string(cols[i].first) << ": "
                  << briefs[i];
    }
    std::cout << "\n";

    std::cout << "Causal attribution (per configuration):\n";
    for (std::size_t i = 0; i < cols.size(); ++i) {
        const BlameReport &b = blames[i];
        std::cout << "  " << to_string(cols[i].first) << ": "
                  << b.operations << " transactions, "
                  << b.edgesLinked << " causal edges, "
                  << b.attributed() << " cy attributed\n";
    }
    std::cout << "\n";

    // Where Xen's extra per-transaction latency goes, ranked.
    const DiffReport diff = diffBlame(blames[2], blames[1]);
    std::cout << diff.render() << "\n";

    if (!timelines.empty()) {
        std::cout << "Timeline summary (per configuration):\n";
        for (const std::string &t : timelines)
            std::cout << t << "\n";
    }
    if (anomalies > 0) {
        std::cout << "WATCHDOG: " << anomalies
                  << " anomalies recorded across configurations\n";
    }
    if (sloBreaches > 0) {
        std::cout << "SLO: " << sloBreaches
                  << " objectives breached across configurations\n";
    }

    // The paper's qualitative conclusions from this table.
    const auto &nat = results[0];
    const auto &kvm = results[1];
    const auto &xen = results[2];
    const bool both_high_overhead =
        kvm.timePerTransUs > 1.6 * nat.timePerTransUs &&
        xen.timePerTransUs > 1.8 * nat.timePerTransUs;
    const bool xen_worse = xen.timePerTransUs > kvm.timePerTransUs;
    const bool kvm_send_recv_native =
        kvm.sendToRecvUs < 1.08 * nat.sendToRecvUs;
    const bool xen_send_recv_slower =
        xen.sendToRecvUs > 1.08 * nat.sendToRecvUs;
    const bool vm_internal_similar =
        xen.vmRecvToVmSendUs < 1.25 * kvm.vmRecvToVmSendUs &&
        kvm.vmRecvToVmSendUs < 1.4 * nat.recvToSendUs;
    const bool xen_delivery_slower =
        xen.recvToVmRecvUs + xen.vmSendToSendUs >
        kvm.recvToVmRecvUs + kvm.vmSendToSendUs + 5.0;

    std::cout << "Key findings reproduced:\n"
              << "  Both hypervisors add large per-transaction "
                 "overhead: "
              << (both_high_overhead ? "yes" : "NO") << "\n"
              << "  Xen noticeably worse than KVM: "
              << (xen_worse ? "yes" : "NO") << "\n"
              << "  KVM send-to-recv equals native (no interference): "
              << (kvm_send_recv_native ? "yes" : "NO") << "\n"
              << "  Xen send-to-recv slower (idle->Dom0 before "
                 "stamp): "
              << (xen_send_recv_slower ? "yes" : "NO") << "\n"
              << "  VM-internal time similar across hypervisors: "
              << (vm_internal_similar ? "yes" : "NO") << "\n"
              << "  Xen loses on the delivery legs (grant copies + "
                 "domain switches): "
              << (xen_delivery_slower ? "yes" : "NO") << "\n";

    return (both_high_overhead && xen_worse && kvm_send_recv_native &&
            xen_send_recv_slower && vm_internal_similar &&
            xen_delivery_slower && anomalies == 0 &&
            sloBreaches == 0)
               ? 0
               : 1;
}
