/**
 * @file
 * Regenerates Figure 4: "Application Benchmark Performance" —
 * normalized overhead (1.0 = native, lower is better) for the twelve
 * Table IV workloads across KVM and Xen on ARM and x86. Reproduces
 * the paper's headline result: application performance does NOT
 * follow microbenchmark performance — KVM ARM meets or beats Xen ARM
 * on most I/O workloads despite Xen's 17x cheaper hypercall.
 *
 * Application runs emit far more trace records than the ring's
 * default holds; set VIRTSIM_TRACE_CAPACITY (records, rounded up to a
 * power of two, 24 bytes each) when collecting flamegraphs
 * (VIRTSIM_FLAME) or Perfetto traces (VIRTSIM_TRACE) from this bench
 * so spans are not truncated at the ring wrap.
 */

#include <iostream>
#include <optional>

#include "core/appbench.hh"
#include "core/figure.hh"
#include "core/report.hh"

using namespace virtsim;

namespace {

std::string
cellText(const std::optional<double> &v)
{
    if (!v)
        return "N/A";
    return formatFixed(*v, 2);
}

std::optional<double>
cellOf(const AppBenchRow &row, SutKind k)
{
    for (const auto &c : row.cells) {
        if (c.kind == k)
            return c.normalizedOverhead;
    }
    return std::nullopt;
}

} // namespace

int
main()
{
    std::cout << "Figure 4: Application Benchmark Performance\n"
              << "(normalized overhead; 1.00 = native, lower is "
                 "better)\n"
              << "Simulated reproduction of Dall et al., ISCA 2016.\n\n";

    AppBenchOptions opt;
    const auto rows = runFigure4(opt);

    TextTable table({"Workload", "KVM ARM", "Xen ARM", "KVM x86",
                     "Xen x86"});
    for (const auto &row : rows) {
        table.addRow({row.workload,
                      cellText(cellOf(row, SutKind::KvmArm)),
                      cellText(cellOf(row, SutKind::XenArm)),
                      cellText(cellOf(row, SutKind::KvmX86)),
                      cellText(cellOf(row, SutKind::XenX86))});
    }
    std::cout << table.render() << "\n";

    // The figure itself: grouped overhead bars, clipped at 3.5x like
    // the paper's axis.
    BarFigure fig({"KVM ARM", "Xen ARM", "KVM x86", "Xen x86"}, 3.5);
    for (const auto &row : rows) {
        fig.addGroup(row.workload,
                     {cellOf(row, SutKind::KvmArm),
                      cellOf(row, SutKind::XenArm),
                      cellOf(row, SutKind::KvmX86),
                      cellOf(row, SutKind::XenX86)});
    }
    std::cout << fig.render() << "\n";

    std::cout << "Metrics snapshots (per workload x configuration):\n";
    for (const auto &row : rows) {
        for (const auto &c : row.cells) {
            if (c.metricsBrief.empty())
                continue;
            std::cout << "  " << row.workload << " / "
                      << to_string(c.kind) << ": " << c.metricsBrief;
        }
    }
    std::cout << "\n";

    auto get = [&rows](const std::string &name,
                       SutKind k) -> double {
        for (const auto &row : rows) {
            if (row.workload == name) {
                const auto v = cellOf(row, k);
                return v ? *v : -1.0;
            }
        }
        return -1.0;
    };

    // The paper's qualitative findings from Figure 4 / Section V.
    const bool cpu_small =
        get("Kernbench", SutKind::KvmArm) < 1.10 &&
        get("Kernbench", SutKind::XenArm) < 1.10 &&
        get("SPECjvm2008", SutKind::KvmArm) < 1.10 &&
        get("SPECjvm2008", SutKind::XenArm) < 1.10;
    const bool xen_wins_hackbench =
        get("Hackbench", SutKind::XenArm) <
            get("Hackbench", SutKind::KvmArm) &&
        get("Hackbench", SutKind::KvmArm) -
                get("Hackbench", SutKind::XenArm) <
            0.12;
    const bool kvm_beats_xen_netperf =
        get("TCP_RR", SutKind::KvmArm) <
            get("TCP_RR", SutKind::XenArm) &&
        get("TCP_STREAM", SutKind::KvmArm) <
            get("TCP_STREAM", SutKind::XenArm) &&
        get("TCP_MAERTS", SutKind::KvmArm) <
            get("TCP_MAERTS", SutKind::XenArm);
    const bool xen_stream_250 =
        get("TCP_STREAM", SutKind::XenArm) > 2.5;
    const bool kvm_stream_native =
        get("TCP_STREAM", SutKind::KvmArm) < 1.15 &&
        get("TCP_STREAM", SutKind::KvmX86) < 1.15;
    const bool kvm_beats_xen_apps =
        get("Apache", SutKind::KvmArm) <
            get("Apache", SutKind::XenArm) &&
        get("Memcached", SutKind::KvmArm) <
            get("Memcached", SutKind::XenArm);
    const bool xen_x86_apache_na =
        get("Apache", SutKind::XenX86) < 0;

    std::cout << "Key findings reproduced:\n"
              << "  CPU-bound workloads show small overhead "
                 "everywhere: "
              << (cpu_small ? "yes" : "NO") << "\n"
              << "  Xen ARM's biggest (but small) win is Hackbench: "
              << (xen_wins_hackbench ? "yes" : "NO") << "\n"
              << "  KVM ARM beats Xen ARM on all netperf modes: "
              << (kvm_beats_xen_netperf ? "yes" : "NO") << "\n"
              << "  Xen ARM TCP_STREAM overhead exceeds 250%: "
              << (xen_stream_250 ? "yes" : "NO") << "\n"
              << "  KVM TCP_STREAM is near native on ARM and x86: "
              << (kvm_stream_native ? "yes" : "NO") << "\n"
              << "  KVM ARM beats Xen ARM on Apache and Memcached: "
              << (kvm_beats_xen_apps ? "yes" : "NO") << "\n"
              << "  Xen x86 Apache is N/A (Dom0 panic): "
              << (xen_x86_apache_na ? "yes" : "NO") << "\n";

    return (cpu_small && xen_wins_hackbench && kvm_beats_xen_netperf &&
            xen_stream_250 && kvm_stream_native && kvm_beats_xen_apps &&
            xen_x86_apache_na)
               ? 0
               : 1;
}
