/**
 * @file
 * E7: the Section VI VHE projection. The paper could not measure
 * ARMv8.1 hardware ("The code to support VHE has been developed
 * using ARM software models as ARMv8.1 hardware is not yet
 * available") and projected that VHE could improve "Hypercall and
 * I/O Latency Out performance by more than an order of magnitude,
 * improving more realistic I/O workloads by 10% to 20%, and yielding
 * superior performance to a Type 1 hypervisor such as Xen which must
 * still rely on Dom0".
 */

#include <iostream>

#include "core/appbench.hh"
#include "core/microbench.hh"
#include "core/report.hh"
#include "core/workloads/apache.hh"
#include "core/workloads/memcached.hh"
#include "core/workloads/netperf_workloads.hh"

using namespace virtsim;

namespace {

double
micro(SutKind kind, MicroOp op)
{
    TestbedConfig tc;
    tc.kind = kind;
    TestbedLease tb = acquireTestbed(tc);
    MicrobenchSuite suite(*tb);
    return suite.run(op, 30).cycles.mean();
}

double
appOverhead(Workload &w, SutKind kind)
{
    AppBenchOptions opt;
    opt.kinds = {kind};
    const AppBenchRow row = runAppBenchRow(w, opt);
    return row.cells.at(0).normalizedOverhead.value_or(-1.0);
}

} // namespace

int
main()
{
    std::cout << "E7: ARMv8.1 VHE projection (Section VI)\n\n";

    TextTable mt({"Microbenchmark", "KVM ARM", "KVM ARM (VHE)",
                  "Xen ARM", "VHE speedup vs KVM"});
    const MicroOp ops[] = {MicroOp::Hypercall,
                           MicroOp::InterruptControllerTrap,
                           MicroOp::VirtualIpi,
                           MicroOp::IoLatencyOut,
                           MicroOp::IoLatencyIn};
    double kvm_hc = 0, vhe_hc = 0, xen_hc = 0;
    double kvm_out = 0, vhe_out = 0;
    for (MicroOp op : ops) {
        const double kvm = micro(SutKind::KvmArm, op);
        const double vhe = micro(SutKind::KvmArmVhe, op);
        const double xen = micro(SutKind::XenArm, op);
        if (op == MicroOp::Hypercall) {
            kvm_hc = kvm;
            vhe_hc = vhe;
            xen_hc = xen;
        }
        if (op == MicroOp::IoLatencyOut) {
            kvm_out = kvm;
            vhe_out = vhe;
        }
        mt.addRow({to_string(op), formatCycles(kvm),
                   formatCycles(vhe), formatCycles(xen),
                   formatFixed(kvm / vhe, 1) + "x"});
    }
    std::cout << mt.render() << "\n";

    ApacheWorkload apache;
    MemcachedWorkload memcached;
    TcpRrWorkload rr;

    TextTable at({"I/O workload overhead", "KVM ARM", "KVM ARM (VHE)",
                  "Xen ARM"});
    struct Row
    {
        Workload *w;
        double kvm, vhe, xen;
    };
    Row rows[] = {{&apache, 0, 0, 0},
                  {&memcached, 0, 0, 0},
                  {&rr, 0, 0, 0}};
    for (auto &r : rows) {
        r.kvm = appOverhead(*r.w, SutKind::KvmArm);
        r.vhe = appOverhead(*r.w, SutKind::KvmArmVhe);
        r.xen = appOverhead(*r.w, SutKind::XenArm);
        at.addRow({r.w->name(), formatFixed(r.kvm, 2),
                   formatFixed(r.vhe, 2), formatFixed(r.xen, 2)});
    }
    std::cout << at.render() << "\n";

    const bool hypercall_order_of_magnitude = kvm_hc / vhe_hc > 8.0;
    const bool near_type1 = vhe_hc < 2.0 * xen_hc;
    const bool io_out_improves = kvm_out / vhe_out > 2.5;
    bool workloads_improve = true;
    bool beats_xen = true;
    for (const auto &r : rows) {
        const double gain = (r.kvm - r.vhe) / r.kvm;
        if (gain < 0.02)
            workloads_improve = false;
        if (r.vhe > r.xen)
            beats_xen = false;
    }

    std::cout << "Key projections reproduced:\n"
              << "  VHE hypercall ~order of magnitude below "
                 "split-mode KVM: "
              << (hypercall_order_of_magnitude ? "yes" : "NO") << "\n"
              << "  VHE reaches the Type 1 transition fast path: "
              << (near_type1 ? "yes" : "NO") << "\n"
              << "  I/O Latency Out improves dramatically: "
              << (io_out_improves ? "yes" : "NO") << "\n"
              << "  Realistic I/O workloads improve measurably: "
              << (workloads_improve ? "yes" : "NO") << "\n"
              << "  VHE KVM outperforms Xen (still Dom0-bound) on "
                 "I/O workloads: "
              << (beats_xen ? "yes" : "NO") << "\n";

    return (hypercall_order_of_magnitude && near_type1 &&
            io_out_improves && workloads_improve && beats_xen)
               ? 0
               : 1;
}
