/**
 * @file
 * Regenerates Table II: "Microbenchmark Measurements (cycle counts)"
 * for KVM and Xen on ARM and x86, and compares each cell against the
 * paper's published values.
 *
 * Each column carries a causal BlameReport from the streaming
 * analyzer (sim/attrib); the KVM-ARM-vs-Xen-ARM differential ranks
 * why split-mode KVM pays more per operation — the top A-excess must
 * be a world-switch save/restore term.
 */

#include <array>
#include <iostream>
#include <map>

#include "core/microbench.hh"
#include "core/report.hh"
#include "core/testbed.hh"
#include "sim/attrib.hh"

using namespace virtsim;

namespace {

/** Table II as published (cycle counts). */
const std::map<MicroOp, std::array<double, 4>> paperTable2 = {
    // {KVM ARM, Xen ARM, KVM x86, Xen x86}
    {MicroOp::Hypercall, {6500, 376, 1300, 1228}},
    {MicroOp::InterruptControllerTrap, {7370, 1356, 2384, 1734}},
    {MicroOp::VirtualIpi, {11557, 5978, 5230, 5562}},
    {MicroOp::VirtualIrqCompletion, {71, 71, 1556, 1464}},
    {MicroOp::VmSwitch, {10387, 8799, 4812, 10534}},
    {MicroOp::IoLatencyOut, {6024, 16491, 560, 11262}},
    {MicroOp::IoLatencyIn, {13872, 15650, 18923, 10050}},
};

const std::array<SutKind, 4> columns = {
    SutKind::KvmArm, SutKind::XenArm, SutKind::KvmX86, SutKind::XenX86};

} // namespace

int
main()
{
    std::cout << "Table II: Microbenchmark Measurements (cycle "
                 "counts)\n"
              << "Simulated reproduction of Dall et al., ISCA 2016.\n\n";

    // Measure every (operation x configuration) cell; each column is
    // an independent testbed, so the four run concurrently
    // (VIRTSIM_JOBS wide) with results committed in column order.
    std::map<MicroOp, std::array<double, 4>> measured;
    // Attribution on: the split-mode finding below reads the blame
    // reports, which default off so plain sweeps stay on the
    // dead-probe fast path.
    const auto sweep = runMicrobenchSweep(
        {columns.begin(), columns.end()}, 50, true);
    for (std::size_t col = 0; col < sweep.size(); ++col) {
        for (const MicroResult &r : sweep[col].results)
            measured[r.op][col] = r.cycles.mean();
    }

    TextTable table({"Microbenchmark", "KVM ARM", "Xen ARM",
                     "KVM x86", "Xen x86"});
    for (MicroOp op : allMicroOps) {
        table.addRow({to_string(op),
                      formatCycles(measured[op][0]),
                      formatCycles(measured[op][1]),
                      formatCycles(measured[op][2]),
                      formatCycles(measured[op][3])});
    }
    std::cout << table.render() << "\n";

    TextTable cmp({"Microbenchmark (vs paper)", "KVM ARM", "Xen ARM",
                   "KVM x86", "Xen x86"});
    for (MicroOp op : allMicroOps) {
        const auto &paper = paperTable2.at(op);
        cmp.addRow({to_string(op),
                    formatDelta(measured[op][0], paper[0]),
                    formatDelta(measured[op][1], paper[1]),
                    formatDelta(measured[op][2], paper[2]),
                    formatDelta(measured[op][3], paper[3])});
    }
    std::cout << cmp.render() << "\n";

    std::cout << "Metrics snapshot (per configuration):\n";
    for (const auto &col : sweep)
        std::cout << "  " << to_string(col.kind) << ": "
                  << col.metrics.brief();
    std::cout << "\n";

    // Per-column causal attribution: where every cycle of the suite
    // went, ranked by blame.
    std::cout << "Top blame terms (per configuration):\n";
    for (const auto &col : sweep) {
        const BlameTerm *t = col.blame.top();
        std::cout << "  " << to_string(col.kind) << ": "
                  << col.blame.operations << " ops, "
                  << col.blame.attributed() << " cy attributed";
        if (t)
            std::cout << "; top " << t->name << " (" << t->cycles
                      << " cy)";
        std::cout << "\n";
    }
    std::cout << "\n";

    // The paper's split-mode argument as a ranked differential: KVM
    // ARM against Xen ARM over the identical operation mix.
    const DiffReport diff = diffBlame(sweep[0].blame, sweep[1].blame);
    std::cout << diff.render() << "\n";

    // The qualitative findings the paper draws from this table.
    const bool xen_arm_fast_hypercall =
        measured[MicroOp::Hypercall][1] * 3 <
        measured[MicroOp::Hypercall][2];
    const bool kvm_arm_slow_hypercall =
        measured[MicroOp::Hypercall][0] >
        10 * measured[MicroOp::Hypercall][1];
    const bool arm_virq_completion_fast =
        measured[MicroOp::VirtualIrqCompletion][0] * 10 <
        measured[MicroOp::VirtualIrqCompletion][2];
    const bool xen_io_out_slow =
        measured[MicroOp::IoLatencyOut][1] >
        2 * measured[MicroOp::IoLatencyOut][0];
    const DiffRow *worst = diff.top();
    const bool split_mode_top =
        worst && worst->delta() > 0 &&
        worst->name.rfind("ws.", 0) == 0;
    std::cout << "Key findings reproduced:\n"
              << "  Xen ARM hypercall < 1/3 of x86 hypercalls: "
              << (xen_arm_fast_hypercall ? "yes" : "NO") << "\n"
              << "  KVM ARM hypercall > 10x Xen ARM (split-mode "
                 "cost): "
              << (kvm_arm_slow_hypercall ? "yes" : "NO") << "\n"
              << "  ARM virtual IRQ completion ~2 orders below x86: "
              << (arm_virq_completion_fast ? "yes" : "NO") << "\n"
              << "  Xen ARM I/O Latency Out > 2x KVM ARM (Dom0 "
                 "wakeup): "
              << (xen_io_out_slow ? "yes" : "NO") << "\n"
              << "  Top KVM-ARM-vs-Xen-ARM blame delta is "
                 "save/restore: "
              << (split_mode_top ? "yes" : "NO");
    if (worst)
        std::cout << "  (" << worst->name << ", +" << worst->delta()
                  << " cy)";
    std::cout << "\n";

    return (xen_arm_fast_hypercall && kvm_arm_slow_hypercall &&
            arm_virq_completion_fast && xen_io_out_slow &&
            split_mode_top)
               ? 0
               : 1;
}
