/**
 * @file
 * E6 ablation (Section V): Xen grant copies vs zero-copy grant
 * mapping.
 *
 * Paper: zero copy was abandoned on Xen x86 because unmapping a
 * grant requires signalling all physical CPUs to invalidate TLBs,
 * "which proved more expensive than simply copying the data".
 * "Whether zero copy support for Xen can be implemented efficiently
 * on ARM, which has hardware support for broadcast TLB invalidate
 * requests across multiple PCPUs, remains to be investigated." —
 * this bench investigates it.
 */

#include <iostream>
#include <utility>
#include <vector>

#include "core/netperf.hh"
#include "core/report.hh"
#include "sim/sweep.hh"

using namespace virtsim;

int
main()
{
    std::cout << "Ablation E6: Xen grant copies vs zero-copy grant "
                 "mapping (Section V)\n"
              << "TCP_STREAM receive throughput into the DomU.\n\n";

    // Six independent testbeds; measured concurrently, committed in
    // input order.
    const std::vector<std::pair<SutKind, bool>> cells = {
        {SutKind::Native, false},  {SutKind::NativeX86, false},
        {SutKind::XenArm, false},  {SutKind::XenArm, true},
        {SutKind::XenX86, false},  {SutKind::XenX86, true},
    };
    const auto gbps =
        parallelSweep(cells, [](const std::pair<SutKind, bool> &c) {
            TestbedConfig tc;
            tc.kind = c.first;
            tc.zeroCopyGrants = c.second;
            TestbedLease tb = acquireTestbed(tc);
            return runNetperfStream(*tb).gbps;
        });
    const double native_arm = gbps[0];
    const double native_x86 = gbps[1];
    const double xen_arm_copy = gbps[2];
    const double xen_arm_zc = gbps[3];
    const double xen_x86_copy = gbps[4];
    const double xen_x86_zc = gbps[5];

    TextTable table({"Configuration", "Gbps", "normalized overhead"});
    table.addRow({"Native ARM", formatFixed(native_arm, 2), "1.00"});
    table.addRow({"Xen ARM, grant copy (shipping)",
                  formatFixed(xen_arm_copy, 2),
                  formatFixed(native_arm / xen_arm_copy, 2)});
    table.addRow({"Xen ARM, zero-copy map/unmap (hw broadcast TLBI)",
                  formatFixed(xen_arm_zc, 2),
                  formatFixed(native_arm / xen_arm_zc, 2)});
    table.addRow({"Native x86", formatFixed(native_x86, 2), "1.00"});
    table.addRow({"Xen x86, grant copy (shipping)",
                  formatFixed(xen_x86_copy, 2),
                  formatFixed(native_x86 / xen_x86_copy, 2)});
    table.addRow({"Xen x86, zero-copy map/unmap (IPI shootdown)",
                  formatFixed(xen_x86_zc, 2),
                  formatFixed(native_x86 / xen_x86_zc, 2)});
    std::cout << table.render() << "\n";

    // x86: zero copy must NOT beat copying (the documented reason it
    // was abandoned). ARM: hardware broadcast invalidation should
    // make mapping at least competitive with copying.
    const bool x86_zc_loses = xen_x86_zc <= xen_x86_copy * 1.02;
    const bool arm_zc_competitive = xen_arm_zc >= xen_arm_copy * 0.95;

    std::cout << "Key findings reproduced:\n"
              << "  Zero copy loses (or fails to win) on x86 due to "
                 "IPI shootdowns: "
              << (x86_zc_loses ? "yes" : "NO") << "\n"
              << "  ARM broadcast TLBI makes zero copy competitive "
                 "(open question answered): "
              << (arm_zc_competitive ? "yes" : "NO") << "\n";
    return (x86_zc_loses && arm_zc_competitive) ? 0 : 1;
}
