/**
 * @file
 * Tests for the Xen ARM model: EL2-resident fast paths, Dom0/idle
 * domain scheduling, and the Dom0-mediated I/O architecture.
 */

#include <gtest/gtest.h>

#include "core/testbed.hh"

using namespace virtsim;

namespace {

struct XenArmFixture : public ::testing::Test
{
    XenArmFixture() : tb(TestbedConfig{.kind = SutKind::XenArm})
    {
        xen = dynamic_cast<XenArm *>(tb.hypervisor());
    }

    Testbed tb;
    XenArm *xen = nullptr;
};

} // namespace

TEST_F(XenArmFixture, IdentifiesAsType1WithDom0)
{
    ASSERT_NE(xen, nullptr);
    EXPECT_EQ(xen->type(), HvType::Type1);
    EXPECT_EQ(xen->dom0().kind(), VmKind::Dom0);
    EXPECT_EQ(xen->dom0().numVcpus(), 4);
    // Dom0 pinned to the upper half, away from the DomU (Section III).
    EXPECT_EQ(xen->dom0().vcpu(0).pcpu(), 4);
    // Dom0 starts blocked: its PCPUs run the idle domain.
    EXPECT_EQ(xen->dom0().vcpu(0).state(), VcpuState::Idle);
}

TEST_F(XenArmFixture, HypercallCosts376Cycles)
{
    Cycles done_at = 0;
    xen->hypercall(0, tb.guest()->vcpu(0),
                   [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 376u); // Table II: the Type 1 fast path
}

TEST_F(XenArmFixture, HypercallTouchesOnlyGpState)
{
    // "little more than context switching the general purpose
    // registers" — the guest's FP/EL1/VGIC state stays live.
    Vcpu &v = tb.guest()->vcpu(0);
    tb.machine().cpu(0).regs().fillPattern(0x7e4);
    bool intact = false;
    xen->hypercall(0, v, [&](Cycles) {
        intact = tb.machine().cpu(0).regs().matchesPattern(0x7e4);
    });
    tb.run();
    EXPECT_TRUE(intact);
}

TEST_F(XenArmFixture, IrqTrapStaysInEl2)
{
    Cycles done_at = 0;
    xen->irqControllerTrap(0, tb.guest()->vcpu(0),
                           [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 1356u); // Table II
    // No domain switches: the distributor is emulated in EL2.
    EXPECT_EQ(tb.machine().stats().counterValue("xen.domain_switches"),
              0u);
}

TEST_F(XenArmFixture, VmSwitchMovesFullEl1State)
{
    Vm &vm1 = xen->createVm("vm1", 4, {0, 1, 2, 3});
    Cycles done_at = 0;
    xen->vmSwitch(0, tb.guest()->vcpu(0), vm1.vcpu(0),
                  [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 8799u); // Table II: barely better than KVM
}

TEST_F(XenArmFixture, IoSignalOutWakesDom0FromIdle)
{
    xen->forceDom0Idle();
    Cycles done_at = 0;
    xen->ioSignalOut(0, tb.guest()->vcpu(0),
                     [&](Cycles t) { done_at = t; });
    tb.run();
    // Table II: 16,491 — dominated by the idle-domain switch.
    EXPECT_NEAR(static_cast<double>(done_at), 16491.0, 16491.0 * 0.05);
    EXPECT_EQ(
        tb.machine().stats().counterValue("xen.idle_domain_switches"),
        1u);
    EXPECT_EQ(xen->dom0().vcpu(0).state(), VcpuState::Running);
}

TEST_F(XenArmFixture, IoSignalInWakesDomU)
{
    xen->forceDom0Running();
    tb.setIdle(0, true);
    const Cycles t0 = tb.queue().now();
    Cycles done_at = 0;
    xen->ioSignalIn(t0, tb.guest()->vcpu(0),
                    [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_NEAR(static_cast<double>(done_at - t0), 15650.0,
                15650.0 * 0.05);
}

TEST_F(XenArmFixture, Dom0BlocksAfterQuiescence)
{
    xen->forceDom0Running();
    // A packet through the NIC puts Dom0 to work, after which the
    // idle check should put its PCPU back on the idle domain.
    Packet p;
    p.flow = 1;
    p.bytes = 1500;
    tb.setIdle(0, true);
    tb.clientSend(1000, p);
    tb.run();
    EXPECT_EQ(xen->dom0().vcpu(0).state(), VcpuState::Idle);
    EXPECT_GT(tb.machine().stats().counterValue("xen.dom0_blocked"),
              0u);
}

TEST_F(XenArmFixture, RxPathUsesGrantCopies)
{
    Packet p;
    p.flow = 3;
    p.bytes = 1500;
    tb.setIdle(0, true);
    int vm_rx = 0;
    tb.onVmRx = [&](Cycles, const Packet &) { ++vm_rx; };
    tb.clientSend(1000, p);
    tb.run();
    EXPECT_EQ(vm_rx, 1);
    EXPECT_GE(tb.machine().stats().counterValue("grant.copies"), 1u);
    EXPECT_GE(tb.machine().stats().counterValue("mem.bytes_copied"),
              1500u);
}

TEST_F(XenArmFixture, TransmitFlowsThroughDom0ToWire)
{
    Vcpu &v = tb.guest()->vcpu(0);
    Packet p;
    p.flow = 4;
    p.bytes = 1500;
    p.seq = 1;
    Cycles sent = 0;
    xen->guestTransmit(0, v, p, [&](Cycles t) { sent = t; });
    tb.run();
    EXPECT_GT(sent, 0u);
    EXPECT_EQ(tb.machine().stats().counterValue("nic.tx_packets"), 1u);
    // The payload crossed the isolation boundary via a grant.
    EXPECT_GE(tb.machine().stats().counterValue("grant.copies") +
                  tb.machine().stats().counterValue(
                      "grant.copies_batched"),
              1u);
}

TEST_F(XenArmFixture, VirqCompletionSharesTheArmFastPath)
{
    Vcpu &v = tb.guest()->vcpu(0);
    tb.machine().gic().injectVirq(0, v.pcpu(), spiNicIrq);
    tb.machine().gic().guestAckVirq(v.pcpu());
    Cycles done_at = 0;
    xen->virqComplete(0, v, [&](Cycles t) { done_at = t; });
    tb.run();
    EXPECT_EQ(done_at, 71u); // identical to KVM (Table II)
}

TEST_F(XenArmFixture, TrapRequiresExecutingVcpu)
{
    Vcpu &v = tb.guest()->vcpu(0);
    xen->blockVcpu(v);
    EXPECT_DEATH(xen->trapToXen(0, v), "not executing");
}
