/**
 * @file
 * Tests for the deterministic parallel sweep runner: results must be
 * committed in input order and be bit-identical to a serial run, no
 * matter how many worker threads the environment requests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/appbench.hh"
#include "sim/sweep.hh"

using namespace virtsim;

namespace {

/** Scoped VIRTSIM_JOBS override; restores the prior value on exit. */
class ScopedJobs
{
  public:
    explicit ScopedJobs(const char *value)
    {
        const char *prev = std::getenv("VIRTSIM_JOBS");
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv("VIRTSIM_JOBS", value, 1);
        else
            ::unsetenv("VIRTSIM_JOBS");
    }

    ~ScopedJobs()
    {
        if (had)
            ::setenv("VIRTSIM_JOBS", saved.c_str(), 1);
        else
            ::unsetenv("VIRTSIM_JOBS");
    }

  private:
    std::string saved;
    bool had = false;
};

} // namespace

TEST(Sweep, ResultsCommittedInInputOrder)
{
    const std::vector<int> items = {7, 1, 9, 4, 4, 0, 3};
    for (int jobs : {1, 2, 8}) {
        auto out = parallelSweep(
            items, [](const int &v) { return v * 10; }, jobs);
        ASSERT_EQ(out.size(), items.size());
        for (std::size_t i = 0; i < items.size(); ++i)
            EXPECT_EQ(out[i], items[i] * 10) << "jobs=" << jobs;
    }
}

TEST(Sweep, IndexedVariantCoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 100;
    std::vector<std::atomic<int>> calls(n);
    auto out = parallelSweepIndexed(
        n,
        [&calls](std::size_t i) {
            calls[i].fetch_add(1);
            return i * i;
        },
        4);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(calls[i].load(), 1);
        EXPECT_EQ(out[i], i * i);
    }
}

TEST(Sweep, EmptyAndSingleItemInputs)
{
    const std::vector<int> none;
    EXPECT_TRUE(
        parallelSweep(none, [](const int &v) { return v; }, 8).empty());
    const std::vector<int> one = {42};
    auto out = parallelSweep(one, [](const int &v) { return v + 1; }, 8);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 43);
}

TEST(Sweep, ExceptionFromWorkerPropagates)
{
    EXPECT_THROW(parallelSweepIndexed(
                     16,
                     [](std::size_t i) {
                         if (i == 9)
                             throw std::runtime_error("boom");
                         return i;
                     },
                     4),
                 std::runtime_error);
}

TEST(Sweep, JobsEnvControlsWorkerCount)
{
    {
        ScopedJobs env("3");
        EXPECT_EQ(sweepJobs(), 3);
    }
    {
        ScopedJobs env("1");
        EXPECT_EQ(sweepJobs(), 1);
    }
    {
        ScopedJobs env(nullptr);
        EXPECT_GE(sweepJobs(), 1);
    }
}

namespace {

void
expectIdenticalRows(const std::vector<AppBenchRow> &a,
                    const std::vector<AppBenchRow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("row " + a[i].workload);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].nativeScoreArm, b[i].nativeScoreArm);
        EXPECT_EQ(a[i].nativeScoreX86, b[i].nativeScoreX86);
        ASSERT_EQ(a[i].cells.size(), b[i].cells.size());
        for (std::size_t c = 0; c < a[i].cells.size(); ++c) {
            EXPECT_EQ(a[i].cells[c].kind, b[i].cells[c].kind);
            EXPECT_EQ(a[i].cells[c].score, b[i].cells[c].score);
            EXPECT_EQ(a[i].cells[c].normalizedOverhead,
                      b[i].cells[c].normalizedOverhead);
        }
    }
}

} // namespace

TEST(Sweep, Figure4IsDeterministicAcrossJobCounts)
{
    AppBenchOptions opt;
    opt.seed = 42;

    std::vector<AppBenchRow> serial;
    {
        ScopedJobs env("1");
        serial = runFigure4(opt);
    }
    std::vector<AppBenchRow> parallel;
    {
        ScopedJobs env("8");
        parallel = runFigure4(opt);
    }
    ASSERT_FALSE(serial.empty());
    expectIdenticalRows(serial, parallel);
}
