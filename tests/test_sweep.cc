/**
 * @file
 * Tests for the deterministic parallel sweep runner: results must be
 * committed in input order and be bit-identical to a serial run, no
 * matter how many worker threads the environment requests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/appbench.hh"
#include "sim/sweep.hh"

using namespace virtsim;

namespace {

/** Scoped environment override; restores the prior value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *prev = std::getenv(name);
        if (prev)
            saved = prev;
        had = prev != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had)
            ::setenv(name.c_str(), saved.c_str(), 1);
        else
            ::unsetenv(name.c_str());
    }

  private:
    std::string name;
    std::string saved;
    bool had = false;
};

/** Scoped VIRTSIM_JOBS override; restores the prior value on exit. */
class ScopedJobs : public ScopedEnv
{
  public:
    explicit ScopedJobs(const char *value)
        : ScopedEnv("VIRTSIM_JOBS", value)
    {
    }
};

} // namespace

TEST(Sweep, ResultsCommittedInInputOrder)
{
    const std::vector<int> items = {7, 1, 9, 4, 4, 0, 3};
    for (int jobs : {1, 2, 8}) {
        auto out = parallelSweep(
            items, [](const int &v) { return v * 10; }, jobs);
        ASSERT_EQ(out.size(), items.size());
        for (std::size_t i = 0; i < items.size(); ++i)
            EXPECT_EQ(out[i], items[i] * 10) << "jobs=" << jobs;
    }
}

TEST(Sweep, IndexedVariantCoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 100;
    std::vector<std::atomic<int>> calls(n);
    auto out = parallelSweepIndexed(
        n,
        [&calls](std::size_t i) {
            calls[i].fetch_add(1);
            return i * i;
        },
        4);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(calls[i].load(), 1);
        EXPECT_EQ(out[i], i * i);
    }
}

TEST(Sweep, EmptyAndSingleItemInputs)
{
    const std::vector<int> none;
    EXPECT_TRUE(
        parallelSweep(none, [](const int &v) { return v; }, 8).empty());
    const std::vector<int> one = {42};
    auto out = parallelSweep(one, [](const int &v) { return v + 1; }, 8);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 43);
}

TEST(Sweep, ExceptionFromWorkerPropagates)
{
    EXPECT_THROW(parallelSweepIndexed(
                     16,
                     [](std::size_t i) {
                         if (i == 9)
                             throw std::runtime_error("boom");
                         return i;
                     },
                     4),
                 std::runtime_error);
}

TEST(Sweep, JobsEnvControlsWorkerCount)
{
    {
        ScopedJobs env("3");
        EXPECT_EQ(sweepJobs(), 3);
    }
    {
        ScopedJobs env("1");
        EXPECT_EQ(sweepJobs(), 1);
    }
    {
        ScopedJobs env(nullptr);
        EXPECT_GE(sweepJobs(), 1);
    }
}

TEST(Sweep, InvalidJobsEnvIsFatal)
{
    // Earlier tests may have started persistent pool workers;
    // threadsafe style re-executes the death test from scratch
    // instead of forking a multithreaded process.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    // fatal() exits with status 1 after printing the offending value;
    // zero, negative, non-numeric and empty are all rejected.
    for (const char *bad : {"0", "-3", "abc", "", "4x"}) {
        ScopedJobs env(bad);
        EXPECT_EXIT(sweepJobs(), testing::ExitedWithCode(1),
                    "VIRTSIM_JOBS")
            << "value \"" << bad << "\"";
    }
}

TEST(Sweep, PoolPersistsAcrossBackToBackSweeps)
{
    ScopedJobs env("4");
    auto task = [](std::size_t i) { return i + 1; };

    (void)parallelSweepIndexed(32, task);
    const SweepPoolStats after_first = sweepPoolStats();
    EXPECT_GE(after_first.threads, 3u); // caller + 3 helpers at jobs=4
    EXPECT_GE(after_first.parallelSweeps, 1u);

    (void)parallelSweepIndexed(32, task);
    (void)parallelSweepIndexed(32, task);
    const SweepPoolStats after_more = sweepPoolStats();

    // Reuse, not respawn: two more sweeps ran without growing the
    // pool, and every task completed.
    EXPECT_EQ(after_more.threads, after_first.threads);
    EXPECT_EQ(after_more.parallelSweeps, after_first.parallelSweeps + 2);
    EXPECT_EQ(after_more.tasksExecuted, after_first.tasksExecuted + 64);
}

TEST(Sweep, SerialPathIsCountedSeparately)
{
    const SweepPoolStats before = sweepPoolStats();
    (void)parallelSweepIndexed(8, [](std::size_t i) { return i; }, 1);
    const SweepPoolStats after = sweepPoolStats();
    EXPECT_EQ(after.serialSweeps, before.serialSweeps + 1);
    EXPECT_EQ(after.parallelSweeps, before.parallelSweeps);
    EXPECT_EQ(after.tasksExecuted, before.tasksExecuted + 8);
}

TEST(Sweep, ThrowAbortsRemainingTasks)
{
    // Every task throws immediately, so each participating thread
    // claims at most one index before the abort flag stops the drain:
    // far fewer than n tasks may start.
    constexpr std::size_t n = 1000;
    constexpr int jobs = 4;
    std::atomic<std::size_t> started{0};
    EXPECT_THROW(parallelSweepIndexed(
                     n,
                     [&started](std::size_t) -> int {
                         started.fetch_add(1);
                         throw std::runtime_error("each task throws");
                     },
                     jobs),
                 std::runtime_error);
    EXPECT_LE(started.load(), static_cast<std::size_t>(jobs));
    EXPECT_LT(started.load(), n);
}

namespace {

void
expectIdenticalRows(const std::vector<AppBenchRow> &a,
                    const std::vector<AppBenchRow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("row " + a[i].workload);
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].nativeScoreArm, b[i].nativeScoreArm);
        EXPECT_EQ(a[i].nativeScoreX86, b[i].nativeScoreX86);
        ASSERT_EQ(a[i].cells.size(), b[i].cells.size());
        for (std::size_t c = 0; c < a[i].cells.size(); ++c) {
            EXPECT_EQ(a[i].cells[c].kind, b[i].cells[c].kind);
            EXPECT_EQ(a[i].cells[c].score, b[i].cells[c].score);
            EXPECT_EQ(a[i].cells[c].normalizedOverhead,
                      b[i].cells[c].normalizedOverhead);
        }
    }
}

} // namespace

TEST(Sweep, Figure4IsDeterministicAcrossJobCounts)
{
    AppBenchOptions opt;
    opt.seed = 42;

    std::vector<AppBenchRow> serial;
    {
        ScopedJobs env("1");
        serial = runFigure4(opt);
    }
    std::vector<AppBenchRow> parallel;
    {
        ScopedJobs env("8");
        parallel = runFigure4(opt);
    }
    ASSERT_FALSE(serial.empty());
    expectIdenticalRows(serial, parallel);
}

TEST(Sweep, Figure4IsIdenticalWithTestbedCacheDisabled)
{
    // The per-worker testbed cache serves reset() worlds on repeat
    // configurations; fresh-equivalence of the reset means cold-built
    // and recycled runs must produce the same bytes. Run the sweep
    // twice cached (the second pass is all cache hits) and once with
    // VIRTSIM_POOL_CACHE=0, at different job counts.
    AppBenchOptions opt;
    opt.seed = 42;

    std::vector<AppBenchRow> cached_warm;
    {
        ScopedJobs env("8");
        (void)runFigure4(opt); // warm the per-worker caches
        cached_warm = runFigure4(opt);
    }
    std::vector<AppBenchRow> cold;
    {
        ScopedJobs env("1");
        ScopedEnv cache("VIRTSIM_POOL_CACHE", "0");
        cold = runFigure4(opt);
    }
    ASSERT_FALSE(cold.empty());
    expectIdenticalRows(cold, cached_warm);
}
