/**
 * @file
 * Tests for the physical CPU time accounting, register files, and
 * the calibrated cost model (including every Table III constant).
 */

#include <gtest/gtest.h>

#include "hw/cost_model.hh"
#include "hw/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/units.hh"

using namespace virtsim;

TEST(Frequency, Conversions)
{
    Frequency f(2.4);
    EXPECT_DOUBLE_EQ(f.cyclesPerUs(), 2400.0);
    EXPECT_EQ(f.cycles(1.0), 2400u);
    EXPECT_EQ(f.cyclesFromNs(500.0), 1200u);
    EXPECT_DOUBLE_EQ(f.us(4800), 2.0);
    EXPECT_DOUBLE_EQ(f.seconds(2400000000ull), 1.0);
    EXPECT_EQ(f.cyclesFromSeconds(0.5), 1200000000u);
}

TEST(CostModel, Table3ConstantsVerbatim)
{
    const CostModel m = CostModel::armAtlas();
    EXPECT_EQ(m.cost(RegClass::Gp).save, 152u);
    EXPECT_EQ(m.cost(RegClass::Gp).restore, 184u);
    EXPECT_EQ(m.cost(RegClass::Fp).save, 282u);
    EXPECT_EQ(m.cost(RegClass::Fp).restore, 310u);
    EXPECT_EQ(m.cost(RegClass::El1Sys).save, 230u);
    EXPECT_EQ(m.cost(RegClass::El1Sys).restore, 511u);
    EXPECT_EQ(m.cost(RegClass::Vgic).save, 3250u);
    EXPECT_EQ(m.cost(RegClass::Vgic).restore, 181u);
    EXPECT_EQ(m.cost(RegClass::Timer).save, 104u);
    EXPECT_EQ(m.cost(RegClass::Timer).restore, 106u);
    EXPECT_EQ(m.cost(RegClass::El2Config).save, 92u);
    EXPECT_EQ(m.cost(RegClass::El2Config).restore, 107u);
    EXPECT_EQ(m.cost(RegClass::El2VirtMem).save, 92u);
    EXPECT_EQ(m.cost(RegClass::El2VirtMem).restore, 107u);
}

TEST(CostModel, Table3TotalsMatchPaper)
{
    const CostModel m = CostModel::armAtlas();
    const auto all = {RegClass::Gp,        RegClass::Fp,
                      RegClass::El1Sys,    RegClass::Vgic,
                      RegClass::Timer,     RegClass::El2Config,
                      RegClass::El2VirtMem};
    EXPECT_EQ(m.saveCost(all), 4202u);
    EXPECT_EQ(m.restoreCost(all), 1506u);
}

TEST(CostModel, XenHypercallComponentsSumTo376)
{
    // Paper: Xen ARM hypercall = trap + GP save + handler + GP
    // restore + eret = 376 cycles. The handler (16 cycles) lives in
    // XenArmParams; the hardware parts must leave room for it.
    const CostModel m = CostModel::armAtlas();
    EXPECT_EQ(m.trapToEl2 + m.cost(RegClass::Gp).save +
                  m.cost(RegClass::Gp).restore + m.eretToEl1,
              360u);
}

TEST(CostModel, VirqCompletionIs71OnArm)
{
    EXPECT_EQ(CostModel::armAtlas().virqCompletionInVm, 71u);
}

TEST(CostModel, X86ExitCheaperThanEntry)
{
    // Section IV: the exit is ~40% of the x86 hypercall; entry is
    // the majority.
    const CostModel m = CostModel::x86Xeon();
    EXPECT_LT(m.vmexitHw, m.vmentryHw);
    EXPECT_EQ(m.vmexitHw + m.vmentryHw, 1140u);
}

TEST(CostModel, ArmBroadcastTlbiCheaperThanX86Shootdown)
{
    const CostModel arm = CostModel::armAtlas();
    const CostModel x86 = CostModel::x86Xeon();
    EXPECT_LT(arm.tlbInvalidateBroadcast, x86.tlbInvalidateBroadcast);
}

TEST(CostModel, ArchAndFrequency)
{
    EXPECT_EQ(CostModel::armAtlas().arch, Arch::Arm);
    EXPECT_DOUBLE_EQ(CostModel::armAtlas().freq.ghz(), 2.4);
    EXPECT_EQ(CostModel::x86Xeon().arch, Arch::X86);
    EXPECT_DOUBLE_EQ(CostModel::x86Xeon().freq.ghz(), 2.1);
}

TEST(PhysicalCpu, ChargeSerializes)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    EXPECT_EQ(cpu.charge(0, 100), 100u);
    // Ready earlier than the frontier: work queues behind.
    EXPECT_EQ(cpu.charge(50, 100), 200u);
    // Ready later than the frontier: idle gap, then work.
    EXPECT_EQ(cpu.charge(500, 100), 600u);
    EXPECT_EQ(cpu.busyCycles(), 300u);
    EXPECT_EQ(cpu.frontier(), 600u);
}

TEST(PhysicalCpu, UtilizationIsBusyOverNow)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(1, eq, cm);
    cpu.charge(0, 250);
    EXPECT_DOUBLE_EQ(cpu.utilization(1000), 0.25);
    EXPECT_DOUBLE_EQ(cpu.utilization(0), 0.0);
}

TEST(PhysicalCpu, RunFiresAtCompletion)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    Cycles fired_at = 0;
    cpu.run(10, 90, [&] { fired_at = eq.now(); });
    eq.run();
    EXPECT_EQ(fired_at, 100u);
}

TEST(RegFile, PatternRoundTrip)
{
    RegFile f;
    f.fillPattern(0xabc);
    EXPECT_TRUE(f.matchesPattern(0xabc));
    EXPECT_FALSE(f.matchesPattern(0xabd));
}

TEST(RegFile, CopyClassMovesOnlyThatClass)
{
    RegFile a, b;
    a.fillPattern(1);
    b.fillPattern(2);
    b.copyClassFrom(a, RegClass::Gp);
    EXPECT_EQ(b.bank(RegClass::Gp), a.bank(RegClass::Gp));
    EXPECT_NE(b.bank(RegClass::Fp), a.bank(RegClass::Fp));
}

/** Property: every register class has a non-empty, stable bank. */
class RegBankTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RegBankTest, BankSizesArePositiveAndArchitectural)
{
    const auto cls = static_cast<RegClass>(GetParam());
    EXPECT_GT(RegFile::bankSize(cls), 0u);
    RegFile f;
    EXPECT_EQ(f.bank(cls).size(), RegFile::bankSize(cls));
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, RegBankTest,
    ::testing::Range(0, static_cast<int>(numRegClasses)));

TEST(ArchStrings, RegClassNamesMatchTable3Rows)
{
    EXPECT_EQ(to_string(RegClass::Gp), "GP Regs");
    EXPECT_EQ(to_string(RegClass::Vgic), "VGIC Regs");
    EXPECT_EQ(to_string(RegClass::El2VirtMem),
              "EL2 Virtual Memory Regs");
}

TEST(ArchModes, GuestModeClassification)
{
    EXPECT_TRUE(isGuestMode(CpuMode::El1));
    EXPECT_TRUE(isGuestMode(CpuMode::KernelNonRoot));
    EXPECT_FALSE(isGuestMode(CpuMode::El2));
    EXPECT_FALSE(isGuestMode(CpuMode::KernelRoot));
    EXPECT_TRUE(modeBelongsTo(CpuMode::El2, Arch::Arm));
    EXPECT_FALSE(modeBelongsTo(CpuMode::El2, Arch::X86));
}
