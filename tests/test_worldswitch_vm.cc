/**
 * @file
 * Tests for VMs, VCPUs and the world-switch engine — including the
 * functional property underlying the paper's split-mode analysis:
 * register state must survive switch round trips intact and never
 * leak between contexts.
 */

#include <gtest/gtest.h>

#include "hv/vm.hh"
#include "hv/world_switch.hh"
#include "hw/cpu.hh"
#include "sim/event_queue.hh"

using namespace virtsim;

TEST(Vm, ConstructionAndPinning)
{
    Vm vm(1, "vm1", VmKind::Guest, 4, {0, 1, 2, 3});
    EXPECT_EQ(vm.numVcpus(), 4);
    EXPECT_EQ(vm.vcpu(2).pcpu(), 2);
    EXPECT_EQ(vm.vcpu(0).name(), "vm1/vcpu0");
    EXPECT_EQ(vm.stage2().vmid(), 1);
    EXPECT_EQ(vm.vcpu(0).state(), VcpuState::Idle);
}

TEST(VmDeath, PinningSizeMismatchPanics)
{
    EXPECT_DEATH(Vm(1, "bad", VmKind::Guest, 4, {0, 1}),
                 "pinning size");
}

TEST(VmDeath, BadVcpuIndexPanics)
{
    Vm vm(1, "vm1", VmKind::Guest, 2, {0, 1});
    EXPECT_DEATH((void)vm.vcpu(5), "bad vcpu id");
}

TEST(WorldSwitch, CostsMatchCostModel)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    RegFile area;
    WorldSwitchEngine wse(cm);

    EXPECT_EQ(wse.save(cpu, area, kvmArmSwitchedState), 4202u);
    EXPECT_EQ(wse.restore(cpu, area, kvmArmSwitchedState), 1506u);
    EXPECT_EQ(wse.save(cpu, area, xenHypercallState), 152u);
    EXPECT_EQ(wse.restore(cpu, area, xenHypercallState), 184u);
}

namespace {

/** Compare only the register classes a given switch set moves. */
bool
classesEqual(const RegFile &a, const RegFile &b,
             std::initializer_list<RegClass> classes)
{
    for (RegClass c : classes) {
        if (a.bank(c) != b.bank(c))
            return false;
    }
    return true;
}

} // namespace

TEST(WorldSwitch, MovesActualValues)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    WorldSwitchEngine wse(cm);

    cpu.regs().fillPattern(0x111);
    RegFile expected = cpu.regs();
    RegFile saved;
    wse.save(cpu, saved, kvmArmSwitchedState);

    cpu.regs().fillPattern(0x222); // another context runs
    wse.restore(cpu, saved, kvmArmSwitchedState);
    EXPECT_TRUE(classesEqual(cpu.regs(), expected,
                             kvmArmSwitchedState));
    // Classes outside the switch set (x86 VMCS block) were not
    // touched — ARM software-managed switching moves only what it
    // is asked to.
    EXPECT_FALSE(cpu.regs().matchesPattern(0x111));
}

TEST(WorldSwitch, SpansCapturePerClassCosts)
{
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    RegFile area;
    WorldSwitchEngine wse(cm);
    TraceSink sink;
    wse.attachTrace(&sink);

    sink.enable();
    wse.save(cpu, area, {RegClass::Vgic});
    wse.restore(cpu, area, {RegClass::Gp});
    sink.disable();
    // Not recorded while the sink is disabled.
    wse.save(cpu, area, {RegClass::Fp});

    struct Leg
    {
        RegClass cls;
        bool isSave;
        Cycles cost;
    };
    std::vector<Leg> legs;
    sink.forEach([&legs](const TraceRecord &r) {
        if (r.kind != TraceKind::Begin)
            return;
        const auto info = switchTapInfo(r.tap);
        ASSERT_TRUE(info.has_value());
        legs.push_back({info->cls, info->isSave, r.arg});
    });
    ASSERT_EQ(legs.size(), 2u);
    EXPECT_EQ(legs[0].cls, RegClass::Vgic);
    EXPECT_TRUE(legs[0].isSave);
    EXPECT_EQ(legs[0].cost, 3250u);
    EXPECT_EQ(legs[1].cls, RegClass::Gp);
    EXPECT_FALSE(legs[1].isSave);
    EXPECT_EQ(legs[1].cost, 184u);
}

/**
 * The isolation property: N contexts ping-pong on one physical CPU
 * through full world switches; every context's state must be exactly
 * what it last wrote, regardless of interleaving.
 */
class IsolationTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IsolationTest, NoStateLeaksAcrossSwitches)
{
    const int n_ctx = GetParam();
    EventQueue eq;
    const CostModel cm = CostModel::armAtlas();
    PhysicalCpu cpu(0, eq, cm);
    WorldSwitchEngine wse(cm);

    std::vector<RegFile> saved(static_cast<std::size_t>(n_ctx));
    std::vector<RegFile> expected(static_cast<std::size_t>(n_ctx));
    // Round-robin twice through every context.
    int live = -1;
    for (int round = 0; round < 2; ++round) {
        for (int c = 0; c < n_ctx; ++c) {
            if (live >= 0) {
                wse.save(cpu, saved[static_cast<std::size_t>(live)],
                         kvmArmSwitchedState);
            }
            wse.restore(cpu, saved[static_cast<std::size_t>(c)],
                        kvmArmSwitchedState);
            if (round == 0) {
                // First visit: the context writes its signature.
                cpu.regs().fillPattern(0xbeef00u +
                                       static_cast<std::uint64_t>(c));
                expected[static_cast<std::size_t>(c)] = cpu.regs();
            } else {
                // Second visit: signature must have survived.
                EXPECT_TRUE(classesEqual(
                    cpu.regs(),
                    expected[static_cast<std::size_t>(c)],
                    kvmArmSwitchedState))
                    << "context " << c << " state corrupted";
            }
            live = c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ContextCounts, IsolationTest,
                         ::testing::Values(2, 3, 5, 8));
