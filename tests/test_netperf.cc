/**
 * @file
 * Integration tests for the Netperf simulations: the Table V
 * decomposition invariants and the throughput benchmarks' shapes.
 */

#include <gtest/gtest.h>

#include "core/hypercall_breakdown.hh"
#include "core/netperf.hh"

using namespace virtsim;

namespace {

NetperfRrResult
rr(SutKind kind)
{
    Testbed tb(TestbedConfig{.kind = kind});
    NetperfRrConfig cfg;
    cfg.transactions = 60;
    return runNetperfRr(tb, cfg);
}

double
streamGbps(SutKind kind)
{
    Testbed tb(TestbedConfig{.kind = kind});
    NetperfStreamConfig cfg;
    cfg.windowSeconds = 0.01;
    return runNetperfStream(tb, cfg).gbps;
}

} // namespace

TEST(NetperfRr, NativeMatchesTable5)
{
    const NetperfRrResult r = rr(SutKind::Native);
    EXPECT_NEAR(r.sendToRecvUs, 29.7, 1.0);
    EXPECT_NEAR(r.recvToSendUs, 14.5, 0.8);
    EXPECT_EQ(r.recvToVmRecvUs, 0.0);
    EXPECT_GT(r.transPerSec, 20000.0);
}

TEST(NetperfRr, KvmMatchesTable5Decomposition)
{
    const NetperfRrResult r = rr(SutKind::KvmArm);
    EXPECT_NEAR(r.recvToVmRecvUs, 21.1, 2.1);
    EXPECT_NEAR(r.vmRecvToVmSendUs, 16.9, 1.7);
    EXPECT_NEAR(r.vmSendToSendUs, 15.0, 1.5);
    // KVM does not interfere with wire+client time.
    EXPECT_NEAR(r.sendToRecvUs, 29.7, 1.0);
}

TEST(NetperfRr, XenMatchesTable5Decomposition)
{
    const NetperfRrResult r = rr(SutKind::XenArm);
    EXPECT_NEAR(r.recvToVmRecvUs, 25.9, 2.6);
    EXPECT_NEAR(r.vmRecvToVmSendUs, 17.4, 1.7);
    EXPECT_NEAR(r.vmSendToSendUs, 21.4, 2.2);
    // Xen inflates send-to-recv: the idle->Dom0 switch happens
    // before the datalink timestamp.
    EXPECT_GT(r.sendToRecvUs, 33.0);
}

TEST(NetperfRr, LegsComposeIntoRecvToSend)
{
    for (SutKind k : {SutKind::KvmArm, SutKind::XenArm}) {
        const NetperfRrResult r = rr(k);
        EXPECT_NEAR(r.recvToVmRecvUs + r.vmRecvToVmSendUs +
                        r.vmSendToSendUs,
                    r.recvToSendUs, 0.1)
            << to_string(k);
    }
}

TEST(NetperfRr, VmInternalTimeSimilarAcrossHypervisors)
{
    // The paper's key decomposition insight: the VM spends about the
    // same time either way; delivery differs.
    const NetperfRrResult kvm = rr(SutKind::KvmArm);
    const NetperfRrResult xen = rr(SutKind::XenArm);
    EXPECT_NEAR(kvm.vmRecvToVmSendUs, xen.vmRecvToVmSendUs, 1.5);
    EXPECT_GT(xen.recvToVmRecvUs, kvm.recvToVmRecvUs);
    EXPECT_GT(xen.vmSendToSendUs, kvm.vmSendToSendUs);
}

TEST(NetperfRr, OrderingNativeKvmXen)
{
    const double nat = rr(SutKind::Native).transPerSec;
    const double kvm = rr(SutKind::KvmArm).transPerSec;
    const double xen = rr(SutKind::XenArm).transPerSec;
    EXPECT_GT(nat, kvm);
    EXPECT_GT(kvm, xen);
}

TEST(NetperfStream, NativeSaturatesTheWire)
{
    EXPECT_GT(streamGbps(SutKind::Native), 9.5);
}

TEST(NetperfStream, KvmZeroCopyKeepsLineRate)
{
    // Figure 4 / Section V: "KVM has almost no overhead for x86 and
    // ARM".
    EXPECT_GT(streamGbps(SutKind::KvmArm), 9.0);
    EXPECT_GT(streamGbps(SutKind::KvmX86), 9.0);
}

TEST(NetperfStream, XenGrantCopiesCollapseThroughput)
{
    // Section V: "more than 250% overhead" on Xen.
    const double nat = streamGbps(SutKind::Native);
    const double xen = streamGbps(SutKind::XenArm);
    EXPECT_GT(nat / xen, 2.5);
}

TEST(NetperfMaerts, RegressionShapesXenOnly)
{
    NetperfStreamConfig cfg;
    cfg.windowSeconds = 0.01;

    Testbed nat(TestbedConfig{.kind = SutKind::Native});
    Testbed kvm(TestbedConfig{.kind = SutKind::KvmArm});
    Testbed xen(TestbedConfig{.kind = SutKind::XenArm});
    TestbedConfig fixed_cfg;
    fixed_cfg.kind = SutKind::XenArm;
    fixed_cfg.tsoRegression = false;
    Testbed xen_fixed(fixed_cfg);

    const double g_nat = runNetperfMaerts(nat, cfg).gbps;
    const double g_kvm = runNetperfMaerts(kvm, cfg).gbps;
    const double g_xen = runNetperfMaerts(xen, cfg).gbps;
    const double g_fixed = runNetperfMaerts(xen_fixed, cfg).gbps;

    EXPECT_GT(g_kvm, 0.9 * g_nat);   // KVM unaffected
    EXPECT_GT(g_nat / g_xen, 1.7);   // regression bites Xen
    EXPECT_GT(g_fixed, 1.5 * g_xen); // tuning recovers it
}

TEST(HypercallBreakdown, MatchesTable3AndSumsUp)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    const HypercallBreakdown b = measureHypercallBreakdown(tb);
    ASSERT_EQ(b.rows.size(), 7u);
    EXPECT_EQ(b.totalSave, 4202u);
    EXPECT_EQ(b.totalRestore, 1506u);
    EXPECT_EQ(b.hypercallCycles, 6500u);
    // "context switching state is the primary cost ... not the cost
    // of extra traps"
    EXPECT_GT(b.totalSave + b.totalRestore, 4 * b.unattributed());
    // VGIC save dominates.
    Cycles vgic = 0;
    for (const auto &row : b.rows) {
        if (row.cls == RegClass::Vgic)
            vgic = row.save;
    }
    EXPECT_EQ(vgic, 3250u);
}

TEST(HypercallBreakdown, WorksOnVheToo)
{
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArmVhe});
    const HypercallBreakdown b = measureHypercallBreakdown(tb);
    ASSERT_EQ(b.rows.size(), 1u); // GP only
    EXPECT_EQ(b.rows[0].cls, RegClass::Gp);
}
