/**
 * @file
 * Tests for the causal attribution engine (sim/attrib): cross-CPU
 * edge linking, critical-path extraction on a hand-built trace with
 * known blame totals, differential report sign and ordering, the
 * Table III exactness contract, and byte-identical reports across
 * sweep widths.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/hypercall_breakdown.hh"
#include "core/microbench.hh"
#include "core/testbed.hh"
#include "sim/attrib.hh"
#include "sim/sweep.hh"

using namespace virtsim;

TEST(CausalAnalyzer, HandBuiltTwoCpuTraceHasKnownBlameAndPath)
{
    // Track 0 runs a root span with one child; the child's completion
    // launches work onto track 1 through a causal edge:
    //
    //   cpu0: root  [100......................200]
    //   cpu0:    child [120..150]
    //   cpu0:              `~~ edge (20 cy) ~~.
    //   cpu1:                            remote [170........260]
    const TapId root = internTap("attrib.test.root");
    const TapId child = internTap("attrib.test.child");
    const TapId remote = internTap("attrib.test.remote");

    TraceSink sink;
    CausalAnalyzer an("hand-built");
    sink.setObserver(&an);
    sink.enable();

    sink.begin(100, root, TraceCat::Switch, 0);
    sink.begin(120, child, TraceCat::Switch, 0);
    sink.end(150, child, TraceCat::Switch, 0);
    const std::uint64_t token =
        sink.edgeOut(150, edgeIpiTap(), TraceCat::Irq, 0);
    EXPECT_NE(token, 0u);
    sink.end(200, root, TraceCat::Switch, 0);
    sink.edgeIn(170, token, edgeIpiTap(), TraceCat::Irq, 1);
    sink.span(170, 260, remote, TraceCat::Switch, 1);

    const BlameReport rep = an.report(&sink);
    // Self times: child 30, root 100 - 30 = 70, remote 90, the IPI
    // flight 20 — exact, no heuristics.
    ASSERT_NE(rep.find("attrib.test.child"), nullptr);
    EXPECT_EQ(rep.find("attrib.test.child")->cycles, 30u);
    EXPECT_EQ(rep.find("attrib.test.root")->cycles, 70u);
    EXPECT_EQ(rep.find("attrib.test.remote")->cycles, 90u);
    ASSERT_NE(rep.find("edge.ipi"), nullptr);
    EXPECT_EQ(rep.find("edge.ipi")->cycles, 20u);
    EXPECT_EQ(rep.edgesLinked, 1u);
    EXPECT_EQ(rep.edgesDangling, 0u);
    EXPECT_EQ(rep.truncatedSpans, 0u);

    // The post-hoc graph parents child under root and anchors the
    // edge child -> remote; the critical path walks remote back over
    // the edge onto cpu0, covering the window completely.
    const CausalGraph g = buildCausalGraph(sink);
    ASSERT_EQ(g.nodes.size(), 3u);
    ASSERT_EQ(g.edges.size(), 1u);
    EXPECT_EQ(g.edges[0].fromTrack, 0);
    EXPECT_EQ(g.edges[0].toTrack, 1);
    EXPECT_GE(g.edges[0].fromNode, 0);
    EXPECT_GE(g.edges[0].toNode, 0);

    const CriticalPath path = extractCriticalPath(g);
    ASSERT_EQ(path.steps.size(), 3u);
    EXPECT_EQ(path.steps[0].name, "attrib.test.child");
    EXPECT_TRUE(path.steps[1].isEdge);
    EXPECT_EQ(path.steps[1].name, "edge.ipi");
    EXPECT_EQ(path.steps[2].name, "attrib.test.remote");
    EXPECT_EQ(path.span, 140u);       // 260 - 120
    EXPECT_EQ(path.attributed, 140u); // 30 + 20 + 90
    EXPECT_EQ(path.unattributed(), 0u);
    EXPECT_NE(path.render().find("~>"), std::string::npos);
}

TEST(CausalAnalyzer, VirtualIpiLinksCrossCpuEdges)
{
    // A live virtual IPI on KVM ARM: the physical IPI (send ->
    // delivery) and the LR write -> guest ack must both pair up, and
    // the op envelope must finalize.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    CausalAnalyzer &an = tb.attribution();
    tb.beginRun();

    const Cycles t0 = std::max(tb.queue().now(), tb.frontier(0));
    bool done = false;
    tb.hypervisor()->virtualIpi(t0, tb.guest()->vcpu(0),
                                tb.guest()->vcpu(1),
                                [&done](Cycles) { done = true; });
    tb.run();
    ASSERT_TRUE(done);

    const BlameReport rep = an.report(&tb.trace());
    EXPECT_GE(rep.operations, 1u);
    EXPECT_GE(rep.edgesLinked, 2u); // edge.ipi + edge.lr at least
    const BlameTerm *ipi = rep.find("edge.ipi");
    ASSERT_NE(ipi, nullptr);
    EXPECT_GE(ipi->count, 1u);
    const BlameTerm *lr = rep.find("edge.lr");
    ASSERT_NE(lr, nullptr);
    EXPECT_GE(lr->count, 1u);
    const BlameTerm *op = rep.find("op.vipi");
    ASSERT_NE(op, nullptr);
    EXPECT_EQ(op->count, 1u);
}

TEST(CausalAnalyzer, BlameReproducesTableThreeExactly)
{
    // The streaming analyzer and the direct trace-record aggregation
    // must attribute identical per-class cycles to the same
    // hypercall — the Table III contract.
    Testbed tb(TestbedConfig{.kind = SutKind::KvmArm});
    CausalAnalyzer &an = tb.attribution();
    const HypercallBreakdown b = measureHypercallBreakdown(tb);
    const BlameReport rep = an.report(&tb.trace());

    ASSERT_FALSE(b.rows.empty());
    for (const auto &row : b.rows) {
        const BlameTerm *s =
            rep.find("ws.save." + to_string(row.cls));
        const BlameTerm *r =
            rep.find("ws.restore." + to_string(row.cls));
        ASSERT_NE(s, nullptr) << to_string(row.cls);
        ASSERT_NE(r, nullptr) << to_string(row.cls);
        EXPECT_EQ(s->cycles, row.save) << to_string(row.cls);
        EXPECT_EQ(r->cycles, row.restore) << to_string(row.cls);
    }
    // The published headline number.
    const BlameTerm *vgic = rep.find("ws.save.VGIC Regs");
    ASSERT_NE(vgic, nullptr);
    EXPECT_EQ(vgic->cycles, 3250u);
    // Every cycle of the operation lands in some term: op envelope
    // self + children sum to the measured hypercall.
    EXPECT_EQ(rep.attributed(), b.hypercallCycles);
}

TEST(DiffReport, SignAndOrderingAreExact)
{
    BlameReport a, b;
    a.label = "A";
    b.label = "B";
    a.terms = {{"x.big", 1000, 1}, {"x.equal", 50, 1},
               {"x.small", 10, 1}};
    b.terms = {{"x.big", 100, 1}, {"x.equal", 50, 1},
               {"x.only_b", 400, 1}};

    const DiffReport d = diffBlame(a, b);
    ASSERT_EQ(d.rows.size(), 4u);
    // Rows ranked by signed delta, largest A-excess first; terms
    // missing on one side contribute zero there.
    EXPECT_EQ(d.rows[0].name, "x.big");
    EXPECT_EQ(d.rows[0].delta(), 900);
    EXPECT_EQ(d.rows[1].name, "x.small");
    EXPECT_EQ(d.rows[1].delta(), 10);
    EXPECT_EQ(d.rows[2].name, "x.equal");
    EXPECT_EQ(d.rows[2].delta(), 0);
    EXPECT_EQ(d.rows[3].name, "x.only_b");
    EXPECT_EQ(d.rows[3].delta(), -400);
    ASSERT_NE(d.top(), nullptr);
    EXPECT_EQ(d.top()->name, "x.big");
    EXPECT_NE(d.render().find("why is A slower than B"),
              std::string::npos);
}

TEST(DiffReport, VheDifferentialNamesSaveRestoreElimination)
{
    // Section VI machine-checked: diffing KVM ARM against VHE on the
    // same hypercall must rank a world-switch save/restore term as
    // the top A-excess — VHE's win is eliminating state movement.
    auto blame_for = [](SutKind kind) {
        TestbedConfig tc;
        tc.kind = kind;
        Testbed tb(tc);
        CausalAnalyzer &an = tb.attribution();
        an.setLabel(to_string(kind));
        measureHypercallBreakdown(tb);
        return an.report(&tb.trace());
    };
    const BlameReport arm = blame_for(SutKind::KvmArm);
    const BlameReport vhe = blame_for(SutKind::KvmArmVhe);
    const DiffReport d = diffBlame(arm, vhe);
    ASSERT_NE(d.top(), nullptr);
    EXPECT_GT(d.top()->delta(), 0);
    EXPECT_EQ(d.top()->name.rfind("ws.", 0), 0u) << d.top()->name;
}

TEST(CausalAnalyzer, ReportsAreIdenticalAcrossSweepWidths)
{
    // Raw TapIds intern in nondeterministic order under parallel
    // sweeps; reports are keyed and sorted by name, so the rendered
    // JSON must come out byte-identical for any VIRTSIM_JOBS width.
    const std::vector<SutKind> kinds = {
        SutKind::KvmArm, SutKind::XenArm, SutKind::KvmX86,
        SutKind::KvmArmVhe};
    auto run_cols = [&kinds](int jobs) {
        return parallelSweepIndexed(
            kinds.size(),
            [&kinds](std::size_t i) {
                TestbedConfig tc;
                tc.kind = kinds[i];
                Testbed tb(tc);
                CausalAnalyzer &an = tb.attribution();
                an.setLabel(to_string(tc.kind));
                MicrobenchSuite suite(tb);
                suite.run(MicroOp::Hypercall, 10);
                suite.run(MicroOp::VirtualIpi, 10);
                return an.report(&tb.trace()).toJson();
            },
            jobs);
    };
    const auto serial = run_cols(1);
    const auto wide = run_cols(8);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], wide[i]) << "column " << i;
    }
}

TEST(CausalAnalyzer, FoldedExportIsSortedAndResetForgets)
{
    const TapId outer = internTap("attrib.test.fold.outer");
    const TapId inner = internTap("attrib.test.fold.inner");
    TraceSink sink;
    CausalAnalyzer an;
    sink.setObserver(&an);
    sink.enable();
    sink.begin(0, outer, TraceCat::Switch, 0);
    sink.span(10, 40, inner, TraceCat::Switch, 0);
    sink.end(100, outer, TraceCat::Switch, 0);

    std::ostringstream os;
    an.writeFolded(os, "sut");
    const std::string folded = os.str();
    // Root-prefixed, child stacked under parent, self cycles after
    // the path.
    EXPECT_NE(folded.find("sut;attrib.test.fold.outer 70"),
              std::string::npos);
    EXPECT_NE(folded.find("sut;attrib.test.fold.outer;"
                          "attrib.test.fold.inner 30"),
              std::string::npos);

    an.reset();
    const BlameReport rep = an.report();
    EXPECT_TRUE(rep.terms.empty());
    EXPECT_EQ(rep.operations, 0u);
}
